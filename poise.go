// Package poise is the public API of the Poise reproduction: a
// cycle-level GPU simulator with a machine-learning warp scheduler that
// balances thread-level parallelism against memory-system performance,
// after Dublish, Nagarajan & Topham, "Poise: Balancing Thread-Level
// Parallelism and Memory System Performance in GPUs using Machine
// Learning" (HPCA 2019).
//
// The facade wraps the internal packages into a small surface:
//
//   - Config / DefaultConfig describe the simulated GPU (paper Table
//     IIIb) and Params the Poise algorithm constants (Table IV).
//   - Workloads returns the synthetic benchmark catalogue standing in
//     for the paper's CUDA suites (Table IIIa).
//   - Run simulates one workload under a named scheduling policy.
//   - SweepSolutionSpace profiles a kernel across the {N, p} space.
//   - Train runs the offline learning pipeline; TrainedWeights returns
//     the embedded model.
//   - NewHarness exposes the per-figure experiment runners. Experiments
//     fan out across HarnessOptions.Workers goroutines and are
//     bit-identical at any worker count; HarnessOptions.Seed reseeds
//     the suite reproducibly.
//
// See the examples directory for runnable walkthroughs and cmd/ for the
// CLI tools.
package poise

import (
	"fmt"

	"poise/internal/config"
	"poise/internal/experiments"
	"poise/internal/glm"
	corepoise "poise/internal/poise"
	"poise/internal/profile"
	"poise/internal/sched"
	"poise/internal/sim"
	"poise/internal/trace"
	"poise/internal/workloads"
)

// Re-exported core types. The internal packages remain the
// implementation; these aliases are the supported names.
type (
	// Config is the architectural configuration (paper Table IIIb).
	Config = config.Config
	// Params carries Poise's algorithm parameters (paper Table IV).
	Params = config.PoiseParams
	// Workload is a named multi-kernel application.
	Workload = sim.Workload
	// WorkloadResult aggregates one simulated run.
	WorkloadResult = sim.WorkloadResult
	// KernelResult is the measurement of a single kernel.
	KernelResult = sim.KernelResult
	// Kernel is a launchable instruction-stream description.
	Kernel = trace.Kernel
	// Policy steers warp-tuples at runtime.
	Policy = sim.Policy
	// Weights is a trained Poise model (Table II analogue).
	Weights = corepoise.Weights
	// FeatureVector is the 8-element Table II feature vector.
	FeatureVector = corepoise.Vector
	// Profile is a profiled {N, p} solution space.
	Profile = profile.Profile
	// ProfilePoint is one profiled warp-tuple.
	ProfilePoint = profile.Point
	// Catalogue is the named workload suite.
	Catalogue = workloads.Catalogue
	// Size scales workload iteration counts.
	Size = workloads.Size
	// Harness runs the paper's evaluation experiments.
	Harness = experiments.Harness
	// HarnessOptions configures the experiment harness.
	HarnessOptions = experiments.Options
)

// Workload sizes.
const (
	Small  = workloads.Small
	Medium = workloads.Medium
	Large  = workloads.Large
)

// DefaultConfig returns the paper's 32-SM baseline. Scale it with
// Config.Scale for laptop-sized runs.
func DefaultConfig() Config { return config.Default() }

// DefaultParams returns the paper's Table IV parameters.
func DefaultParams() Params { return config.DefaultPoise() }

// Workloads builds the full benchmark catalogue at the given size.
func Workloads(size Size) *Catalogue { return workloads.NewCatalogue(size) }

// NewHarness constructs the experiment harness reproducing the paper's
// figures and tables.
func NewHarness(opt HarnessOptions) *Harness { return experiments.NewHarness(opt) }

// PolicySpec names a scheduling policy for Run.
type PolicySpec struct {
	// Name: "gto", "fixed", "swl", "static-best", "pcal-swl", "ccws",
	// "apcm", "random-restart" or "poise".
	Name string
	// N, P pin the tuple for the "fixed" policy.
	N, P int
	// Profiles supplies per-kernel solution-space profiles ("swl",
	// "static-best", "pcal-swl").
	Profiles map[string]*Profile
	// Weights supplies the trained model ("poise"); nil uses the
	// embedded default.
	Weights *Weights
	// Params overrides the Table IV constants; zero value uses defaults.
	Params *Params
	// Seed seeds "random-restart".
	Seed int64
}

// NewPolicy materialises a policy from its spec.
func NewPolicy(spec PolicySpec) (Policy, error) {
	params := config.DefaultPoise()
	if spec.Params != nil {
		params = *spec.Params
	}
	switch spec.Name {
	case "gto", "":
		return sim.GTO{}, nil
	case "fixed":
		return sim.Fixed{N: spec.N, P: spec.P}, nil
	case "swl":
		return sched.SWL(spec.Profiles), nil
	case "static-best":
		return sched.StaticBest(spec.Profiles), nil
	case "pcal-swl":
		return sched.NewPCALSWL(sched.SWLFromProfiles(spec.Profiles),
			params.TWarmup, params.TFeature, params.TPeriod), nil
	case "ccws":
		return sched.NewCCWS(params.TFeature), nil
	case "apcm":
		return sched.NewAPCM(params.TFeature), nil
	case "random-restart":
		return sched.NewRandomRestart(spec.Seed, params.TWarmup,
			params.TSearch, params.TPeriod, params.StrideN, params.StrideP), nil
	case "poise":
		w := Weights{}
		if spec.Weights != nil {
			w = *spec.Weights
		} else if dw, ok := corepoise.DefaultWeights(); ok {
			w = dw
		} else {
			return nil, fmt.Errorf("poise: no trained weights available; train first or pass Weights")
		}
		return corepoise.NewPolicy(params, w), nil
	default:
		return nil, fmt.Errorf("poise: unknown policy %q", spec.Name)
	}
}

// Run simulates workload w on cfg under the given policy.
func Run(cfg Config, w *Workload, p Policy) (WorkloadResult, error) {
	return sim.RunWorkload(cfg, w, p, sim.RunOptions{})
}

// SweepSolutionSpace profiles kernel k across the {N, p} space at the
// given grid resolution (1 = exhaustive).
func SweepSolutionSpace(cfg Config, k *Kernel, stepN, stepP int) (*Profile, error) {
	return profile.Sweep(cfg, k, profile.SweepOptions{StepN: stepN, StepP: stepP})
}

// TrainOptions configures Train.
type TrainOptions struct {
	// StepN/StepP set the training sweep grid (coarse is fine).
	StepN, StepP int
	// CacheDir caches kernel profiles between runs.
	CacheDir string
	// Drop ablates one feature index (0 or -1 = none; the paper's
	// Fig. 13 ablates x3..x7, i.e. indices 2..6).
	Drop int
}

// Train runs the full offline pipeline — profile, score, scale, fit —
// on the catalogue's training workloads and returns the learned model.
func Train(cfg Config, size Size, opt TrainOptions) (Weights, error) {
	if opt.StepN <= 0 {
		opt.StepN = 3
	}
	if opt.StepP <= 0 {
		opt.StepP = 3
	}
	params := config.DefaultPoise()
	cat := workloads.NewCatalogue(size)
	store := profile.Store{Dir: opt.CacheDir}
	tag := fmt.Sprintf("train-%d-%d-%d", cfg.NumSMs, opt.StepN, opt.StepP)
	ds, err := corepoise.BuildDataset(cfg, params, cat.TrainingSet(),
		profile.SweepOptions{StepN: opt.StepN, StepP: opt.StepP}, store, tag)
	if err != nil {
		return Weights{}, err
	}
	drop := opt.Drop
	if drop == 0 {
		drop = -1
	}
	return corepoise.Train(ds, corepoise.TrainOptions{Drop: drop, GLM: glm.Options{}})
}

// TrainedWeights returns the embedded default model, if one has been
// generated (see cmd/poisetrain).
func TrainedWeights() (Weights, bool) { return corepoise.DefaultWeights() }
