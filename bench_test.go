// Benchmarks regenerating the paper's evaluation: one benchmark per
// table/figure of §VII. Each reports the figure's headline statistic
// via b.ReportMetric, so `go test -bench=. -benchmem` doubles as the
// reproduction harness. Profiles are cached under .poise-cache: the
// first run sweeps the {N, p} spaces (minutes), later runs are fast.
//
// The full pretty-printed tables come from `go run ./cmd/poisebench`.
package poise_test

import (
	"sync"
	"testing"

	"poise/internal/experiments"
)

var (
	benchOnce sync.Once
	benchH    *experiments.Harness
)

// benchHarness shares one harness (and its profile/weight caches)
// across all benchmarks in the binary.
func benchHarness() *experiments.Harness {
	benchOnce.Do(func() {
		benchH = experiments.NewHarness(experiments.Options{
			SMs:      8,
			CacheDir: ".poise-cache",
		})
	})
	return benchH
}

func BenchmarkTableIIIPbest(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		rows, err := h.TableIII()
		if err != nil {
			b.Fatal(err)
		}
		var maxPb float64
		sensitive := 0
		for _, r := range rows {
			if r.Pbest > maxPb {
				maxPb = r.Pbest
			}
			if r.MemorySensitive {
				sensitive++
			}
		}
		b.ReportMetric(maxPb, "max-Pbest")
		b.ReportMetric(float64(sensitive), "memory-sensitive")
	}
}

func BenchmarkFig2SolutionSpace(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		sp, err := h.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sp.CCWS.Speedup, "ccws-x")
		b.ReportMetric(sp.PCAL.Speedup, "pcal-x")
		b.ReportMetric(sp.Max.Speedup, "max-x")
	}
}

func BenchmarkFig4HitRates(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		rows, err := h.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Workload == "ii" {
				b.ReportMetric(100*r.Hp, "ii-hp-%")
				b.ReportMetric(r.IntraPct, "ii-intra-%")
			}
			if r.Workload == "cfd" {
				b.ReportMetric(r.InterPct, "cfd-inter-%")
			}
		}
	}
}

func BenchmarkFig5Scoring(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		rows, err := h.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].PerfAtMaxScore, "scored-x")
		b.ReportMetric(rows[0].MaxPerf.Speedup, "peak-x")
	}
}

func BenchmarkTableIIWeights(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		res, err := h.TableII()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.ErrN, "errN-%")
		b.ReportMetric(100*res.ErrP, "errP-%")
		b.ReportMetric(float64(res.Admitted), "kernels")
	}
}

// BenchmarkFig7Performance also covers Figs. 8-10 and 14 (they share
// the same runs).
func BenchmarkFig7Performance(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		sum, err := h.Performance()
		if err != nil {
			b.Fatal(err)
		}
		for si, name := range experiments.SchemeNames {
			b.ReportMetric(sum.HMeanSpeedup[si], "hmean-"+name)
		}
		b.ReportMetric(sum.MeanDispE, "fig10-euclid")
		b.ReportMetric(sum.MeanEnergyRatio, "fig14-energy")
	}
}

func BenchmarkFig11Stride(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		res, err := h.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		for si, st := range res.Strides {
			b.ReportMetric(res.HMean[si],
				"hmean-"+experimentsStrideName(st))
		}
	}
}

func experimentsStrideName(st [2]int) string {
	return string(rune('0'+st[0])) + "." + string(rune('0'+st[1]))
}

func BenchmarkFig12CacheSize(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		res, err := h.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		for si, kb := range res.SizesKB {
			b.ReportMetric(res.HMean[si], "hmean-"+kbName(kb))
		}
	}
}

func kbName(kb int) string {
	switch kb {
	case 16:
		return "16KB"
	case 32:
		return "32KB"
	default:
		return "64KB"
	}
}

func BenchmarkFig13Features(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		res, err := h.Fig13()
		if err != nil {
			b.Fatal(err)
		}
		worst := 1.0
		for _, hm := range res.HMean {
			if hm < worst {
				worst = hm
			}
		}
		b.ReportMetric(worst, "worst-ablation")
	}
}

func BenchmarkFig15Alternatives(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		res, err := h.Fig15()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.HMean[0], "hmean-APCM")
		b.ReportMetric(res.HMean[1], "hmean-Random")
		b.ReportMetric(res.HMean[2], "hmean-Poise")
	}
}

func BenchmarkFig16ComputeIntensive(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		res, err := h.Fig16()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.HMeanPoise, "hmean-Poise")
	}
}

func BenchmarkFig17CaseStudy(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		res, err := h.Fig17()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Predicted)), "predictions")
		b.ReportMetric(float64(len(res.Converged)), "converged")
	}
}
