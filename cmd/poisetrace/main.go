// Command poisetrace generates and inspects poisetrace containers.
//
// -gen writes a synthetic trace of roughly -size-mb megabytes without
// ever holding the address data in memory (every warp's stream is a
// view into one shared random-walk buffer, and Write streams the
// encoding), so CI can cheaply materialise traces far larger than the
// memory it grants the reader.
//
// -stat drains a container through the streaming Scanner and prints a
// deterministic digest: workload identity, record and access counts,
// and an FNV-1a checksum over every record in stream order. With
// -whole the same digest is computed from the whole-trace Read path
// instead — diffing the two outputs pins the streaming reader to the
// materialising one on any input. -max-heap-mb turns the bounded-
// memory claim into an enforced assertion: the process fails if the
// Go heap ever grew past the bound.
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"os"
	"runtime"
	"strings"

	"poise/internal/trace"
	"poise/internal/traceio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("poisetrace: ")
	var (
		gen     = flag.Bool("gen", false, "generate a synthetic container to -o")
		out     = flag.String("o", "", "-gen output path (.gz compresses)")
		sizeMB  = flag.Int("size-mb", 100, "-gen approximate uncompressed container size")
		warps   = flag.Int("warps", 16384, "-gen total warps per kernel")
		kernels = flag.Int("kernels", 1, "-gen kernel count")
		stat    = flag.String("stat", "", "scan this container and print its digest")
		whole   = flag.Bool("whole", false, "-stat: use the materialising Read path instead of the Scanner")
		maxHeap = flag.Int("max-heap-mb", 0, "-stat: fail if the Go heap grows past this many MB (0 = unchecked)")
	)
	flag.Parse()

	switch {
	case *gen:
		if *out == "" {
			log.Fatal("-gen needs -o")
		}
		if err := generate(*out, *sizeMB, *warps, *kernels); err != nil {
			log.Fatal(err)
		}
	case *stat != "":
		if err := digest(*stat, *whole, *maxHeap); err != nil {
			log.Fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// generate builds a -size-mb container: kernels of -warps warps whose
// streams are overlapping views into one shared pseudo-random line
// walk, so the trace encodes size-mb worth of varint deltas while the
// generator holds only the walk buffer.
func generate(path string, sizeMB, warps, kernels int) error {
	if sizeMB <= 0 || warps <= 0 || kernels <= 0 || warps%8 != 0 {
		return fmt.Errorf("-size-mb, -warps and -kernels must be positive, -warps a multiple of 8")
	}
	// A random walk over 2^20 lines yields ~3-byte zigzag deltas, so
	// accesses ≈ bytes/3.
	iters := sizeMB * 1_000_000 / 3 / warps / kernels
	if iters < 1 {
		return fmt.Errorf("size %dMB too small for %d warps x %d kernels", sizeMB, warps, kernels)
	}
	tr := &traceio.Trace{Name: "synthetic", MemorySensitive: true}
	for ki := 0; ki < kernels; ki++ {
		base := make([]uint64, warps+iters)
		x := uint64(ki)*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3
		for j := range base {
			x = x*6364136223846793005 + 1442695040888963407
			base[j] = (x >> 33 % (1 << 20)) * trace.LineBytes
		}
		b := &trace.BodyBuilder{}
		b.Load(1)
		b.ALU(2)
		kt := &traceio.KernelTrace{
			Name:          fmt.Sprintf("synthetic#%d", ki),
			Body:          b.Body(),
			Slots:         1,
			WarpsPerBlock: 8,
			Blocks:        warps / 8,
			WarpIters:     make([]int, warps),
			Streams:       [][][]uint64{make([][]uint64, warps)},
		}
		for g := 0; g < warps; g++ {
			kt.WarpIters[g] = iters
			kt.Streams[0][g] = base[g : g+iters]
		}
		tr.Kernels = append(tr.Kernels, kt)
	}
	if err := traceio.WriteFile(path, tr); err != nil {
		return err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d kernels, %d records, %d accesses, %d bytes\n",
		path, kernels, kernels*warps, kernels*warps*iters, fi.Size())
	return nil
}

// digest prints the canonical stream digest of a container. The
// streaming and whole-trace paths visit records in the same
// (kernel, slot, warp) order, so their output is byte-identical
// whenever both succeed.
func digest(path string, whole bool, maxHeapMB int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	var name string
	var nkernels, records, accesses int64
	if whole {
		t, err := traceio.Read(f)
		if err != nil {
			return err
		}
		name, nkernels = t.Name, int64(len(t.Kernels))
		for ki, kt := range t.Kernels {
			for slot, streams := range kt.Streams {
				for g, stream := range streams {
					put(uint64(ki))
					put(uint64(slot))
					put(uint64(g))
					put(uint64(len(stream)))
					records++
					accesses += int64(len(stream))
					for _, a := range stream {
						put(a)
					}
				}
			}
		}
	} else {
		sc, err := traceio.NewScanner(f)
		if err != nil {
			return err
		}
		name, nkernels = sc.Name(), int64(len(sc.Kernels()))
		for {
			rec, ok := sc.Next()
			if !ok {
				break
			}
			put(uint64(rec.Kernel))
			put(uint64(rec.Slot))
			put(uint64(rec.Warp))
			put(uint64(len(rec.Addrs)))
			records++
			accesses += int64(len(rec.Addrs))
			for _, a := range rec.Addrs {
				put(a)
			}
		}
		if err := sc.Err(); err != nil {
			return err
		}
	}
	fmt.Printf("workload %s kernels %d records %d accesses %d checksum %016x\n",
		name, nkernels, records, accesses, h.Sum64())

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	heapMB := ms.HeapSys >> 20
	mode := "stream"
	if whole {
		mode = "whole"
	}
	fmt.Fprintf(os.Stderr, "%s scan peak heap %d MB (GOMEMLIMIT=%s)\n",
		mode, heapMB, orUnset(os.Getenv("GOMEMLIMIT")))
	if maxHeapMB > 0 && heapMB > uint64(maxHeapMB) {
		return fmt.Errorf("heap grew to %d MB, over the %d MB bound", heapMB, maxHeapMB)
	}
	return nil
}

func orUnset(s string) string {
	if strings.TrimSpace(s) == "" {
		return "unset"
	}
	return s
}
