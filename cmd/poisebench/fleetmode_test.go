package main

import (
	"strings"
	"testing"
	"time"
)

// TestValidateBenchFleetFlags: the -serve/-worker combination rules —
// bad mixes with the file-based flow, bad -run selections and missing
// -cache must all fail fast with a message naming the offending flag.
func TestValidateBenchFleetFlags(t *testing.T) {
	serve := func(mut func(*benchFleetFlags)) benchFleetFlags {
		f := benchFleetFlags{serve: ":0", run: "all", cacheDir: "c"}
		if mut != nil {
			mut(&f)
		}
		return f
	}
	worker := func(mut func(*benchFleetFlags)) benchFleetFlags {
		f := benchFleetFlags{worker: "http://host:9444", run: "all"}
		if mut != nil {
			mut(&f)
		}
		return f
	}
	cases := []struct {
		name    string
		flags   benchFleetFlags
		wantErr string // "" = must pass
	}{
		{"serve profile sweeps", serve(nil), ""},
		{"serve refinement", serve(func(f *benchFleetFlags) { f.prune = true }), ""},
		{"serve one grid experiment", serve(func(f *benchFleetFlags) { f.run = "fig7" }), ""},
		{"serve grid experiment, mixed case", serve(func(f *benchFleetFlags) { f.run = " Fig16 " }), ""},
		{"serve with lease knobs", serve(func(f *benchFleetFlags) { f.leaseTasks = 4; f.leaseTTL = time.Minute }), ""},
		{"plain worker", worker(nil), ""},
		{"worker ignores run", worker(func(f *benchFleetFlags) { f.run = "fig4" }), ""},

		{"neither serve nor worker", benchFleetFlags{run: "all"}, "-serve or -worker"},
		{"both serve and worker", benchFleetFlags{serve: ":0", worker: "http://h", run: "all", cacheDir: "c"}, "mutually exclusive"},
		{"serve with emit-plan", serve(func(f *benchFleetFlags) { f.emitPlan = "p.jsonl" }), "file-based"},
		{"worker with shard", worker(func(f *benchFleetFlags) { f.shard = "0/2" }), "file-based"},
		{"serve with merge-shards", serve(func(f *benchFleetFlags) { f.merge = true }), "file-based"},
		{"serve without cache", serve(func(f *benchFleetFlags) { f.cacheDir = "" }), "-cache"},
		{"serve with experiment list", serve(func(f *benchFleetFlags) { f.run = "fig7,fig11" }), "single experiment"},
		{"serve with non-grid experiment", serve(func(f *benchFleetFlags) { f.run = "fig4" }), "not grid-backed"},
		{"serve with unknown experiment", serve(func(f *benchFleetFlags) { f.run = "fig99" }), "not grid-backed"},
		{"worker with lease-tasks", worker(func(f *benchFleetFlags) { f.leaseTasks = 4 }), "coordinator flags"},
		{"worker with lease-ttl", worker(func(f *benchFleetFlags) { f.leaseTTL = time.Minute }), "coordinator flags"},
		{"negative lease-tasks", serve(func(f *benchFleetFlags) { f.leaseTasks = -1 }), "-lease-tasks"},
		{"negative lease-ttl", serve(func(f *benchFleetFlags) { f.leaseTTL = -time.Second }), "-lease-ttl"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateBenchFleetFlags(tc.flags)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateBenchFleetFlags(%+v) = %v, want nil", tc.flags, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validateBenchFleetFlags(%+v) = nil, want error containing %q", tc.flags, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validateBenchFleetFlags(%+v) = %q, want it to contain %q", tc.flags, err, tc.wantErr)
			}
		})
	}
}
