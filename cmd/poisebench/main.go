// Command poisebench regenerates the paper's evaluation: every figure
// and table of §VII, printed as aligned text tables and ASCII solution-
// space plots.
//
// Usage:
//
//	poisebench -run all                # everything (minutes)
//	poisebench -run fig7,fig8,fig9    # the headline comparison
//	poisebench -run tableiii          # Pbest classification
//	poisebench -parallel 4 -run fig7  # bound the worker pool
//
// Experiments fan out across -parallel worker goroutines (default:
// GOMAXPROCS); every table is bit-identical at any worker count, and
// -seed reseeds the whole suite reproducibly. Profiles are cached
// under -cache; delete the directory to force fresh sweeps.
//
// -trace ingests recorded workloads (poisetrace containers or
// simplified Accel-Sim kernel traces; a file or directory) and
// appends them to the evaluation set, so profile sweeps and the
// figure/table experiments run over real traces unchanged.
//
// Sharded campaigns (-emit-plan / -shard i/N / -merge-shards) cover
// both plan kinds. With -run all they split the profile sweeps (the
// PR-3 flow); with -run naming one grid-backed experiment they split
// that experiment's workload x scheme cell grid:
//
//	poisebench -run fig7 -cache c -emit-plan cells.jsonl   # document/ship
//	poisebench -run fig7 -cache c -shard 0/2               # worker 0
//	poisebench -run fig7 -cache c -shard 1/2               # worker 1
//	poisebench -run fig7 -cache c -merge-shards            # coordinator
//	poisebench -run fig7 -cache c                          # loads merged cells
//
// Merging any shard split is reflect.DeepEqual-identical to the
// in-process grid, so the final tables are byte-identical to an
// unsharded run with the cache disabled (CI asserts exactly that).
//
// The fleet service mode serves the same campaigns over HTTP instead
// of files — one coordinator (-serve), any number of long-lived
// workers (-worker), crash recovery via lease expiry, work stealing
// for stragglers, and merged results landing directly in -cache:
//
//	poisebench -run fig7 -cache c -serve :9444     # coordinator
//	poisebench -worker http://host:9444 -cache c   # terminal 2..N
//	poisebench -run fig7 -cache c                  # loads merged cells
//
// -prune switches every profile sweep to adaptive coarse-to-fine
// refinement: a fraction of each {N,p} grid is simulated while the
// Static-Best, SWL and scored tuples — all any experiment consumes —
// match the exhaustive sweep. Combined with the three sharding flags
// and -run all, the sweep campaign proceeds in refinement rounds
// (emit, shard, merge, repeat until "refinement complete"); pruned
// profiles cache under their own tag, so pruned and exhaustive
// campaigns never mix.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"poise/internal/experiments"
	"poise/internal/gridplan"
	"poise/internal/profiling"
	"poise/internal/sim"
	"poise/internal/traceio"
	"poise/internal/workloads"
)

var runners = []struct {
	name string
	desc string
	run  func(*experiments.Harness) error
}{
	{"tableiii", "Table IIIa: Pbest per workload (64x L1 speedup)", runTableIII},
	{"fig2", "Fig. 2: {N,p} solution space of an ii kernel; CCWS/PCAL/MAX", runFig2},
	{"fig4", "Fig. 4: L1 hit-rate split and reuse distance", runFig4},
	{"fig5", "Fig. 5: scoring performance peaks (Eq. 12)", runFig5},
	{"tableii", "Table II: trained feature weights + offline error", runTableII},
	{"fig7", "Fig. 7-10, 14: performance, hit rate, AML, displacement, energy", runPerf},
	{"fig11", "Fig. 11: local-search stride sensitivity", runFig11},
	{"fig12", "Fig. 12: L1 cache-size sensitivity", runFig12},
	{"fig13", "Fig. 13: feature-ablation sensitivity", runFig13},
	{"fig15", "Fig. 15: APCM and random-restart comparison", runFig15},
	{"fig16", "Fig. 16: compute-intensive workloads", runFig16},
	{"fig17", "Fig. 17: bfs case study", runFig17},
	{"cost", "Sec. VII-I: hardware cost accounting", runCost},
}

func main() {
	var (
		run      = flag.String("run", "all", "comma-separated experiment list or 'all' (see -listexp)")
		sms      = flag.Int("sms", 8, "number of SMs (scaled memory system)")
		size     = flag.String("size", "small", "workload size: small | medium | large")
		cacheDir = flag.String("cache", ".poise-cache", "profile cache directory ('' disables)")
		seeds    = flag.Int("seeds", 3, "random-restart seeds (paper uses 20)")
		prune    = flag.Bool("prune", false, "adaptive coarse-to-fine profile sweeps: simulate a fraction of each {N,p} grid while selecting the same Static-Best/SWL/scored tuples (with -emit-plan/-shard/-merge-shards and -run all, drives the sweep campaign in refinement rounds)")
		snapDir  = flag.String("snapshot-dir", "", "kernel-boundary snapshot directory: experiment-grid cells whose schemes share a tuple prefix resume at the first divergent kernel instead of re-simulating it (warm start; results are bit-identical either way, and a stats line reports the simulated cycles saved; '' = off)")
		parallel = flag.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS, 1 = sequential); results are identical at any setting")
		seed     = flag.Int64("seed", 0, "experiment seed (perturbs workload jitter and random-restart; 0 = canonical)")
		listExp  = flag.Bool("listexp", false, "list experiments and exit")
		tracePth = flag.String("trace", "", "ingest trace workloads (a .ptrace/.ptrace.gz/.trace file or a directory) into the evaluation set")

		// Sharded campaign flow. With -run all (the default) the three
		// flags drive the profile-sweep plan; with -run naming one
		// grid-backed experiment (fig7, fig11, fig12, fig13, fig15,
		// fig16, tableiii) they drive that experiment's workload x
		// scheme cell grid instead: -emit-plan documents/ships the plan;
		// -shard i/N runs this process's slice and persists partials in
		// -cache; -merge-shards folds the partials into the cache, after
		// which normal runs load them instead of simulating.
		emitPlan = flag.String("emit-plan", "", "write the profile sweep plan (-run all) or one experiment's cell grid plan (-run <exp>) as JSONL to this file and exit")
		shardStr = flag.String("shard", "", "run shard i/N of the profile sweeps or of -run's experiment grid, persist partials in -cache, and exit (format \"i/N\")")
		mergeSh  = flag.Bool("merge-shards", false, "merge shard partials in -cache into full cached profiles (-run all) or merged experiment cells (-run <exp>) and exit")

		// Fleet coordinator/worker service (package fleet): the same
		// campaigns over HTTP, with crash recovery and work stealing.
		serveAddr = flag.String("serve", "", "run the fleet coordinator on this listen address, serving -run's campaign (profile sweeps, -prune refinement rounds, or one experiment grid) and merging results into -cache")
		workerURL = flag.String("worker", "", "run a fleet worker pulling task leases from the coordinator at this base URL")
		leaseN    = flag.Int("lease-tasks", 0, "-serve: tasks per lease batch (0 = default)")
		leaseTTL  = flag.Duration("lease-ttl", 0, "-serve: lease expiry deadline, renewed on each completed task (0 = default)")

		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := profiling.Start(profiling.Flags{CPUProfile: *cpuProf, MemProfile: *memProf})
	if err != nil {
		fmt.Fprintln(os.Stderr, "poisebench:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "poisebench:", err)
		}
	}()

	if *listExp {
		for _, r := range runners {
			fmt.Printf("%-9s %s\n", r.name, r.desc)
		}
		return
	}

	var extra []*sim.Workload
	if *tracePth != "" {
		ws, err := traceio.LoadWorkloads(*tracePth)
		if err != nil {
			fmt.Fprintln(os.Stderr, "poisebench:", err)
			os.Exit(1)
		}
		extra = ws
		for _, w := range ws {
			fmt.Printf("ingested trace workload %s (%d kernels)\n", w.Name, len(w.Kernels))
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opt := experiments.Options{
		SMs:            *sms,
		Size:           parseSize(*size),
		CacheDir:       *cacheDir,
		RandomSeeds:    *seeds,
		Workers:        *parallel,
		Seed:           *seed,
		Ctx:            ctx,
		ExtraWorkloads: extra,
		Prune:          *prune,
		SnapshotDir:    *snapDir,
	}
	if *shardStr != "" {
		i, n, err := gridplan.ParseShard(*shardStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "poisebench:", err)
			os.Exit(1)
		}
		opt.ShardIndex, opt.ShardCount = i, n
	}
	h := experiments.NewHarness(opt)

	if *serveAddr != "" || *workerURL != "" {
		err := runFleetMode(ctx, h, benchFleetFlags{
			serve: *serveAddr, worker: *workerURL,
			leaseTasks: *leaseN, leaseTTL: *leaseTTL,
			run: *run, cacheDir: *cacheDir,
			emitPlan: *emitPlan, shard: *shardStr, merge: *mergeSh,
			prune: *prune,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "poisebench:", err)
			os.Exit(1)
		}
		return
	}

	if *emitPlan != "" || *shardStr != "" || *mergeSh {
		if err := runShardMode(h, *run, *emitPlan, *shardStr, *mergeSh); err != nil {
			fmt.Fprintln(os.Stderr, "poisebench:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("running on %d workers (seed %d)\n", h.Workers(), *seed)

	want := map[string]bool{}
	all := *run == "all"
	for _, n := range strings.Split(*run, ",") {
		want[strings.TrimSpace(strings.ToLower(n))] = true
	}
	ran := 0
	for _, r := range runners {
		if !all && !want[r.name] {
			continue
		}
		fmt.Printf("\n===== %s =====\n", r.desc)
		start := time.Now()
		if err := r.run(h); err != nil {
			fmt.Fprintf(os.Stderr, "poisebench: %s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s in %v]\n", r.name, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "poisebench: no experiment matched %q (see -listexp)\n", *run)
		os.Exit(1)
	}
	if pc := h.PrefixCache(); pc != nil {
		// CI's warm-start step asserts cycles-saved > 0 on this line.
		fmt.Printf("\nprefix cache: %d hits, %d misses, %d kernels skipped, %d simulated cycles saved\n",
			pc.Hits.Load(), pc.Misses.Load(), pc.KernelsSkipped.Load(), pc.CyclesSaved.Load())
	}
}

func runTableIII(h *experiments.Harness) error {
	rows, err := h.TableIII()
	if err != nil {
		return err
	}
	t := &experiments.Table{Header: []string{"workload", "kernels", "Pbest", "memory-sensitive"}}
	for _, r := range rows {
		t.Add(r.Workload, fmt.Sprint(r.Kernels), fmt.Sprintf("%.2fx", r.Pbest),
			fmt.Sprint(r.MemorySensitive))
	}
	t.Render(os.Stdout)
	return nil
}

func runFig2(h *experiments.Harness) error {
	sp, err := h.Fig2()
	if err != nil {
		return err
	}
	experiments.RenderSpace(os.Stdout, sp.Profile, map[string][2]int{
		"C": {sp.CCWS.N, sp.CCWS.P},
		"L": {sp.PCAL.N, sp.PCAL.P},
		"M": {sp.Max.N, sp.Max.P},
	})
	fmt.Printf("CCWS  (%2d,%2d) %.3fx\nPCAL  (%2d,%2d) %.3fx\nMAX   (%2d,%2d) %.3fx\n",
		sp.CCWS.N, sp.CCWS.P, sp.CCWS.Speedup,
		sp.PCAL.N, sp.PCAL.P, sp.PCAL.Speedup,
		sp.Max.N, sp.Max.P, sp.Max.Speedup)
	t := &experiments.Table{Header: []string{"N", "speedup p=N", "speedup p=1"}}
	p1 := map[int]float64{}
	for i, n := range sp.P1N {
		p1[n] = sp.P1[i]
	}
	for i, n := range sp.DiagonalN {
		cell := "-"
		if v, ok := p1[n]; ok {
			cell = fmt.Sprintf("%.3f", v)
		}
		t.Add(fmt.Sprint(n), fmt.Sprintf("%.3f", sp.Diagonal[i]), cell)
	}
	t.Render(os.Stdout)
	return nil
}

func runFig4(h *experiments.Harness) error {
	rows, err := h.Fig4()
	if err != nil {
		return err
	}
	t := &experiments.Table{Header: []string{"workload", "hp", "hnp", "ho", "intra%", "inter%", "R"}}
	for _, r := range rows {
		t.Add(r.Workload,
			fmt.Sprintf("%.3f", r.Hp), fmt.Sprintf("%.3f", r.Hnp), fmt.Sprintf("%.3f", r.Ho),
			fmt.Sprintf("%.1f", r.IntraPct), fmt.Sprintf("%.1f", r.InterPct),
			fmt.Sprintf("%.0f", r.ReuseDist))
	}
	t.Render(os.Stdout)
	return nil
}

func runFig5(h *experiments.Harness) error {
	rows, err := h.Fig5()
	if err != nil {
		return err
	}
	t := &experiments.Table{Header: []string{"kernel", "max-perf", "speedup", "max-score", "speedup@score"}}
	for _, r := range rows {
		t.Add(r.Kernel,
			fmt.Sprintf("(%d,%d)", r.MaxPerf.N, r.MaxPerf.P),
			fmt.Sprintf("%.3fx", r.MaxPerf.Speedup),
			fmt.Sprintf("(%d,%d)", r.MaxScore.N, r.MaxScore.P),
			fmt.Sprintf("%.3fx", r.PerfAtMaxScore))
	}
	t.Render(os.Stdout)
	return nil
}

func runTableII(h *experiments.Harness) error {
	res, err := h.TableII()
	if err != nil {
		return err
	}
	experiments.RenderWeights(os.Stdout, res.Weights)
	fmt.Printf("admitted %d kernels (rejected: %d speedup, %d cycles, %d hitrate)\n",
		res.Admitted, res.RejSpeedup, res.RejCycles, res.RejHitRate)
	fmt.Printf("offline prediction error on unseen kernels: N %.1f%% (paper: 16%%), p %.1f%% (paper: 26%%)\n",
		100*res.ErrN, 100*res.ErrP)
	return nil
}

func runPerf(h *experiments.Harness) error {
	sum, err := h.Performance()
	if err != nil {
		return err
	}
	t := &experiments.Table{Header: append([]string{"workload"}, experiments.SchemeNames...)}
	for _, r := range sum.Rows {
		t.AddF(r.Workload, 3, r.Speedup...)
	}
	t.AddF("H-Mean", 3, sum.HMeanSpeedup...)
	fmt.Println("Fig. 7 — IPC normalised to GTO:")
	t.Render(os.Stdout)

	t = &experiments.Table{Header: append([]string{"workload"}, experiments.SchemeNames...)}
	for _, r := range sum.Rows {
		row := make([]float64, len(r.HitRate))
		for i, v := range r.HitRate {
			row[i] = 100 * v
		}
		t.AddF(r.Workload, 1, row...)
	}
	means := make([]float64, len(sum.AMeanHitRate))
	for i, v := range sum.AMeanHitRate {
		means[i] = 100 * v
	}
	t.AddF("A-Mean", 1, means...)
	fmt.Println("\nFig. 8 — L1 hit rate (%):")
	t.Render(os.Stdout)

	t = &experiments.Table{Header: append([]string{"workload"}, experiments.SchemeNames...)}
	for _, r := range sum.Rows {
		t.AddF(r.Workload, 3, r.AML...)
	}
	t.AddF("A-Mean", 3, sum.AMeanAML...)
	fmt.Println("\nFig. 9 — AML normalised to GTO:")
	t.Render(os.Stdout)

	t = &experiments.Table{Header: []string{"workload", "N-axis", "p-axis", "euclidean"}}
	for _, r := range sum.Rows {
		t.AddF(r.Workload, 2, r.DispN, r.DispP, r.DispE)
	}
	t.AddF("A-Mean", 2, sum.MeanDispN, sum.MeanDispP, sum.MeanDispE)
	fmt.Println("\nFig. 10 — displacement between predicted and converged tuples:")
	t.Render(os.Stdout)

	t = &experiments.Table{Header: []string{"workload", "GTO mJ", "Poise mJ", "Poise/GTO"}}
	for _, r := range sum.Rows {
		t.AddF(r.Workload, 3, r.EnergyGTO, r.EnergyPoise, ratioOr0(r.EnergyPoise, r.EnergyGTO))
	}
	fmt.Println("\nFig. 14 — energy consumption:")
	t.Render(os.Stdout)
	fmt.Printf("mean Poise/GTO energy: %.3f (paper: 0.484)\n", sum.MeanEnergyRatio)
	return nil
}

func runFig11(h *experiments.Harness) error {
	res, err := h.Fig11()
	if err != nil {
		return err
	}
	hdr := []string{"workload"}
	for _, s := range res.Strides {
		hdr = append(hdr, fmt.Sprintf("(%d,%d)", s[0], s[1]))
	}
	t := &experiments.Table{Header: hdr}
	for i, w := range res.Workloads {
		t.AddF(w, 3, res.PerWorkload[i]...)
	}
	t.AddF("H-Mean", 3, res.HMean...)
	t.Render(os.Stdout)
	return nil
}

func runFig12(h *experiments.Harness) error {
	res, err := h.Fig12()
	if err != nil {
		return err
	}
	hdr := []string{"workload"}
	for _, kb := range res.SizesKB {
		hdr = append(hdr, fmt.Sprintf("Poise+%dKB", kb))
	}
	t := &experiments.Table{Header: hdr}
	for i, w := range res.Workloads {
		t.AddF(w, 3, res.Speedup[i]...)
	}
	t.AddF("H-Mean", 3, res.HMean...)
	t.Render(os.Stdout)
	return nil
}

func runFig13(h *experiments.Harness) error {
	res, err := h.Fig13()
	if err != nil {
		return err
	}
	hdr := []string{"workload"}
	for _, d := range res.Dropped {
		hdr = append(hdr, fmt.Sprintf("-x%d", d+1))
	}
	t := &experiments.Table{Header: hdr}
	for i, w := range res.Workloads {
		t.AddF(w, 3, res.Relative[i]...)
	}
	t.AddF("H-Mean", 3, res.HMean...)
	t.Render(os.Stdout)
	return nil
}

func runFig15(h *experiments.Harness) error {
	res, err := h.Fig15()
	if err != nil {
		return err
	}
	t := &experiments.Table{Header: []string{"workload", "APCM", "Random-restart", "Poise"}}
	for i, w := range res.Workloads {
		t.AddF(w, 3, res.APCM[i], res.Random[i], res.Poise[i])
	}
	t.AddF("H-Mean", 3, res.HMean[0], res.HMean[1], res.HMean[2])
	t.Render(os.Stdout)
	return nil
}

func runFig16(h *experiments.Harness) error {
	res, err := h.Fig16()
	if err != nil {
		return err
	}
	t := &experiments.Table{Header: []string{"workload", "Poise", "Pbest"}}
	for i, w := range res.Workloads {
		t.AddF(w, 3, res.Poise[i], res.Pbest[i])
	}
	t.Render(os.Stdout)
	fmt.Printf("H-Mean Poise vs GTO: %.3f (paper: 0.984, i.e. 1.6%% overhead)\n", res.HMeanPoise)
	return nil
}

func runFig17(h *experiments.Harness) error {
	res, err := h.Fig17()
	if err != nil {
		return err
	}
	fmt.Println("Fig. 17a — static profile of bfs:")
	experiments.RenderSpace(os.Stdout, res.Profile, map[string][2]int{
		"M": {res.Profile.Best().N, res.Profile.Best().P},
	})
	fmt.Println("\nFig. 17b — Poise runtime tuples on bfs:")
	experiments.RenderTuples(os.Stdout, res.Predicted, res.Converged, res.Profile.MaxN)
	fmt.Printf("%d predictions, %d converged tuples\n", len(res.Predicted), len(res.Converged))
	return nil
}

func runCost(h *experiments.Harness) error {
	c := h.Cost()
	fmt.Printf("performance counters: %d B/SM\n", c.CounterBytes)
	fmt.Printf("HIE FSM state:        %d B/SM\n", c.FSMBytes)
	fmt.Printf("vital bits:           %d b/SM\n", c.VitalBits)
	fmt.Printf("pollute bits:         %d b/SM\n", c.PolluteBits)
	fmt.Printf("total per SM:         %.2f B (paper: 40.75 B)\n", c.TotalPerSM)
	fmt.Printf("total chip (%d SMs):  %.0f B (paper: 1304 B at 32 SMs)\n", c.SMs, c.TotalChipBytes)
	fmt.Printf("weights via constant memory: %d B\n", c.WeightBytes)
	return nil
}

// gridForExp maps the grid-backed experiment names to their
// experiment grid (fig7 covers Figs. 7-10 and 14, which share one
// grid).
var gridForExp = map[string]string{
	"fig7":     "scheme",
	"fig11":    "stride",
	"fig12":    "cachesize",
	"fig13":    "ablation",
	"fig15":    "alternatives",
	"fig16":    "compute",
	"tableiii": "pbest",
}

func gridBackedNames() string {
	var names []string
	for _, r := range runners {
		if _, ok := gridForExp[r.name]; ok {
			names = append(names, r.name)
		}
	}
	return strings.Join(names, ", ")
}

// runShardMode executes the sharded-campaign subcommands. Exactly one
// of the three is active per invocation (emit, then shard workers,
// then merge — each typically a separate process); -run selects the
// profile-sweep plan ("all") or one experiment's cell grid.
func runShardMode(h *experiments.Harness, run, emitPlan, shard string, merge bool) error {
	run = strings.TrimSpace(strings.ToLower(run))
	grid := ""
	if run != "all" {
		if strings.Contains(run, ",") {
			return fmt.Errorf("-emit-plan/-shard/-merge-shards take a single experiment in -run, got %q", run)
		}
		var ok bool
		if grid, ok = gridForExp[run]; !ok {
			return fmt.Errorf("experiment %q is not grid-backed; use -run all for profile sweeps, or one of: %s",
				run, gridBackedNames())
		}
	}
	switch {
	case emitPlan != "":
		if grid != "" {
			plan, err := h.CellPlan(grid)
			if err != nil {
				return err
			}
			if len(plan.Cells) == 0 {
				return fmt.Errorf("grid %s enumerated no cells", grid)
			}
			plan.Sort()
			if err := gridplan.WriteCellPlanFile(emitPlan, plan); err != nil {
				return err
			}
			fmt.Printf("cell plan %s: %d cells of grid %s (tag %s)\n",
				emitPlan, len(plan.Cells), grid, plan.Cells[0].Tag)
			return nil
		}
		if h.Opt.Prune {
			plan, done, err := h.RefinePlan()
			if err != nil {
				return err
			}
			if done {
				fmt.Println("refinement complete: merged profiles are in the cache")
				return nil
			}
			plan.Sort()
			if err := gridplan.WritePlanFile(emitPlan, plan); err != nil {
				return err
			}
			fmt.Printf("refine round plan %s: %d tasks over %d kernels\n",
				emitPlan, len(plan.Tasks), len(plan.Kernels()))
			return nil
		}
		plan, err := h.EvalPlan()
		if err != nil {
			return err
		}
		plan.Sort()
		if err := gridplan.WritePlanFile(emitPlan, plan); err != nil {
			return err
		}
		fmt.Printf("plan %s: %d tasks over %d kernels\n", emitPlan, len(plan.Tasks), len(plan.Kernels()))
	case shard != "":
		if grid != "" {
			f, err := h.RunCellShard(grid)
			if err != nil {
				return err
			}
			fmt.Printf("shard %s of grid %s -> %s\n", shard, grid, f)
			return nil
		}
		if h.Opt.Prune {
			files, err := h.RunRefineShard()
			if err != nil {
				return err
			}
			if len(files) == 0 {
				fmt.Println("refinement complete: nothing to simulate")
				return nil
			}
			for _, f := range files {
				fmt.Println("wrote", f)
			}
			fmt.Printf("refine shard %s: %d partial files\n", shard, len(files))
			return nil
		}
		files, err := h.RunShard()
		if err != nil {
			return err
		}
		for _, f := range files {
			fmt.Println("wrote", f)
		}
		fmt.Printf("shard %s: %d partial files\n", shard, len(files))
	case merge:
		if grid != "" {
			n, err := h.MergeCellPartials(grid)
			if err != nil {
				return err
			}
			fmt.Printf("merged %d cells of grid %s into the cache\n", n, grid)
			return nil
		}
		if h.Opt.Prune {
			done, err := h.MergeRefinePartials()
			if err != nil {
				return err
			}
			if done {
				fmt.Println("refinement complete: merged profiles into the cache")
			} else {
				fmt.Println("round merged; refinement continues (emit/shard/merge again)")
			}
			return nil
		}
		names, err := h.MergeShardPartials()
		if err != nil {
			return err
		}
		fmt.Printf("merged %d kernel profiles into the cache: %s\n", len(names), strings.Join(names, ", "))
	}
	return nil
}

func ratioOr0(x, base float64) float64 {
	if base == 0 {
		return 0
	}
	return x / base
}

func parseSize(s string) workloads.Size {
	switch strings.ToLower(s) {
	case "small":
		return workloads.Small
	case "medium":
		return workloads.Medium
	case "large":
		return workloads.Large
	default:
		fmt.Fprintf(os.Stderr, "poisebench: unknown size %q\n", s)
		os.Exit(1)
		return workloads.Small
	}
}
