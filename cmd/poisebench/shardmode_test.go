package main

import (
	"strings"
	"testing"
)

// TestRunShardModeRejectsBadRunSelections: the file-based shard flow
// must reject experiment lists and non-grid-backed experiments before
// touching the harness (the nil harness below proves nothing else
// runs).
func TestRunShardModeRejectsBadRunSelections(t *testing.T) {
	cases := []struct {
		name    string
		run     string
		wantErr string
	}{
		{"experiment list", "fig7,fig11", "single experiment"},
		{"non-grid experiment", "fig2", "not grid-backed"},
		{"unknown experiment", "fig99", "not grid-backed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := runShardMode(nil, tc.run, "p.jsonl", "", false)
			if err == nil {
				t.Fatalf("runShardMode(run=%q) = nil, want error containing %q", tc.run, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("runShardMode(run=%q) = %q, want it to contain %q", tc.run, err, tc.wantErr)
			}
		})
	}
}
