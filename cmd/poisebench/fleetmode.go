package main

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"poise/internal/experiments"
	"poise/internal/fleet"
	"poise/internal/gridplan"
	"poise/internal/trace"
)

// The fleet service flow for poisebench: the coordinator serves the
// same plans the file-based -emit-plan/-shard/-merge-shards flow
// ships, but over HTTP to long-lived workers, with crash recovery
// (lease expiry), load rebalancing (work stealing) and the merged
// results landing directly in -cache — so the follow-up
// `poisebench -run ...` assembles its figures without re-simulating:
//
//	poisebench -run all -cache c -serve :9444      # profile sweeps
//	poisebench -run fig7 -cache c -serve :9444     # one experiment grid
//	poisebench -worker http://HOST:9444 -cache c   # terminal 2..N
//
// With -prune -run all the coordinator drives the whole refinement
// loop as one campaign, publishing each round's plan as the next
// generation instead of requiring the emit/shard/merge round-trip.

// benchFleetFlags carries the -serve/-worker flags plus the flags they
// constrain, so the combination rules live in one testable function.
type benchFleetFlags struct {
	serve  string
	worker string

	leaseTasks int
	leaseTTL   time.Duration

	run      string
	cacheDir string
	emitPlan string
	shard    string
	merge    bool
	prune    bool
}

// validateBenchFleetFlags rejects inconsistent combinations before
// anything listens or simulates.
func validateBenchFleetFlags(f benchFleetFlags) error {
	switch {
	case f.serve == "" && f.worker == "":
		return fmt.Errorf("fleet mode needs -serve or -worker")
	case f.serve != "" && f.worker != "":
		return fmt.Errorf("-serve and -worker are mutually exclusive")
	case f.emitPlan != "" || f.shard != "" || f.merge:
		return fmt.Errorf("-serve/-worker cannot combine with the file-based -emit-plan/-shard/-merge-shards flow")
	case f.leaseTasks < 0:
		return fmt.Errorf("-lease-tasks must be positive")
	case f.leaseTTL < 0:
		return fmt.Errorf("-lease-ttl must be positive")
	}
	if f.worker != "" {
		if f.leaseTasks != 0 || f.leaseTTL != 0 {
			return fmt.Errorf("-lease-tasks and -lease-ttl are coordinator flags (use with -serve)")
		}
		return nil
	}
	// Coordinator: merged results land in the cache, and -run selects
	// the campaign exactly as it selects the file-based plan kind.
	if f.cacheDir == "" {
		return fmt.Errorf("-serve needs -cache for the merged output")
	}
	run := strings.TrimSpace(strings.ToLower(f.run))
	if run != "all" {
		if strings.Contains(run, ",") {
			return fmt.Errorf("-serve takes a single experiment in -run, got %q", f.run)
		}
		if _, ok := gridForExp[run]; !ok {
			return fmt.Errorf("experiment %q is not grid-backed; use -run all for profile sweeps, or one of: %s",
				run, gridBackedNames())
		}
	}
	return nil
}

// runFleetMode dispatches poisebench's -serve/-worker modes.
func runFleetMode(ctx context.Context, h *experiments.Harness, f benchFleetFlags) error {
	if err := validateBenchFleetFlags(f); err != nil {
		return err
	}
	if f.worker != "" {
		return runFleetWorker(ctx, h, f)
	}
	return runFleetServe(ctx, h, f)
}

// runFleetServe builds the campaign -run selects, serves it to
// completion, and saves the merged results into the harness's own
// cache stores — the same directories the file-based merge writes, so
// figure assembly loads them identically.
func runFleetServe(ctx context.Context, h *experiments.Harness, f benchFleetFlags) error {
	camp, save, err := benchCampaign(h, f)
	if err != nil {
		return err
	}
	coord, err := fleet.NewCoordinator(camp, fleet.Options{
		LeaseTasks: f.leaseTasks,
		LeaseTTL:   f.leaseTTL,
		Logf:       stdoutLogf,
	})
	if err != nil {
		return err
	}
	addrCh := make(chan string, 1)
	go func() { fmt.Printf("fleet: serving on %s\n", <-addrCh) }()
	res, err := coord.Serve(ctx, f.serve, addrCh)
	if err != nil {
		return err
	}
	return save(res)
}

// benchCampaign maps -run (and -prune) to a fleet campaign plus its
// save step: the evaluation profile sweep, the staged refinement loop,
// or one experiment's cell grid.
func benchCampaign(h *experiments.Harness, f benchFleetFlags) (fleet.Campaign, func([]fleet.Result) error, error) {
	run := strings.TrimSpace(strings.ToLower(f.run))
	if grid, ok := gridForExp[run]; ok {
		plan, err := h.CellPlan(grid)
		if err != nil {
			return nil, nil, err
		}
		if len(plan.Cells) == 0 {
			return nil, nil, fmt.Errorf("grid %s enumerated no cells", grid)
		}
		plan.Sort()
		save := func(res []fleet.Result) error {
			_, g, n, err := fleet.SaveCells(h.CellStore(), res)
			if err != nil {
				return err
			}
			fmt.Printf("fleet: merged %d cells of grid %s into the cache\n", n, g)
			return nil
		}
		return fleet.CellCampaign{Plan: plan}, save, nil
	}
	if f.prune {
		camp, err := fleet.NewRefineCampaign(h.Cfg, evalKernelList(h), h.ProfileTags(),
			h.EvalSweepOptions(), h.ProfileStore())
		if err != nil {
			return nil, nil, err
		}
		save := func([]fleet.Result) error {
			names, err := camp.SaveTo(h.ProfileStore())
			if err != nil {
				return err
			}
			fmt.Printf("fleet: assembled %d pruned profiles into the cache\n", len(names))
			return nil
		}
		return camp, save, nil
	}
	plan, err := h.EvalPlan()
	if err != nil {
		return nil, nil, err
	}
	plan.Sort()
	save := func(res []fleet.Result) error {
		names, err := fleet.SaveProfiles(h.ProfileStore(), res)
		if err != nil {
			return err
		}
		fmt.Printf("fleet: merged %d kernel profiles into the cache\n", len(names))
		return nil
	}
	return fleet.ProfileCampaign{Plan: plan}, save, nil
}

// runFleetWorker serves leases from the coordinator with both
// executors registered; the coordinator's plan format picks the
// pipeline, and the plan's tag and digests verify this process's
// flags reproduce the coordinator's configuration.
func runFleetWorker(ctx context.Context, h *experiments.Harness, f benchFleetFlags) error {
	host, _ := os.Hostname()
	name := fmt.Sprintf("%s-%d", host, os.Getpid())
	w := &fleet.Worker{
		Base: f.worker,
		Name: name,
		Executors: map[string]fleet.Executor{
			gridplan.ProfilePlanFormat: fleet.ProfileExecutor{
				Cfg: h.Cfg, Kernels: h.EvalKernels(), Opts: h.EvalSweepOptions(),
			},
			gridplan.CellPlanFormat: fleet.CellExecutor{H: h},
		},
		Logf: stdoutLogf,
	}
	if err := w.Run(ctx); err != nil {
		return err
	}
	fmt.Printf("worker %s: campaign complete\n", name)
	return nil
}

// evalKernelList flattens the evaluation kernel index in name order —
// campaigns iterate it, so the order must be deterministic.
func evalKernelList(h *experiments.Harness) []*trace.Kernel {
	idx := h.EvalKernels()
	names := make([]string, 0, len(idx))
	for name := range idx {
		names = append(names, name)
	}
	sort.Strings(names)
	kernels := make([]*trace.Kernel, len(names))
	for i, name := range names {
		kernels[i] = idx[name]
	}
	return kernels
}

// stdoutLogf adapts fleet's Logf convention (printf format, no
// newline) to stdout lines; CI greps the coordinator's stats line.
func stdoutLogf(format string, args ...any) {
	fmt.Printf(format+"\n", args...)
}
