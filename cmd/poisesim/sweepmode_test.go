package main

import (
	"strings"
	"testing"
)

// TestValidateSweepFlags: the file-based mode combinations — every
// under-specified -shard/-merge-shards/-sweep/-best/-prune invocation
// must fail fast with a message naming the missing flag, before any
// file is read or task simulated.
func TestValidateSweepFlags(t *testing.T) {
	cases := []struct {
		name    string
		args    sweepModeArgs
		wantErr string // "" = must pass
	}{
		{"emit plan", sweepModeArgs{emitPlan: "p.jsonl"}, ""},
		{"valid shard", sweepModeArgs{shard: "0/2", planPath: "p.jsonl", shardOut: "s0.jsonl"}, ""},
		{"valid merge", sweepModeArgs{merge: "a,b", planPath: "p.jsonl", profileDir: "d"}, ""},
		{"valid sweep", sweepModeArgs{sweep: true, profileDir: "d"}, ""},
		{"valid best", sweepModeArgs{best: true, profileDir: "d"}, ""},
		{"valid prune emit", sweepModeArgs{prune: true, emitPlan: "r.jsonl", cacheDir: "rounds"}, ""},
		{"valid prune merge", sweepModeArgs{prune: true, merge: "a,b", planPath: "r.jsonl", cacheDir: "rounds"}, ""},
		{"valid prune sweep", sweepModeArgs{prune: true, sweep: true, profileDir: "d"}, ""},

		{"malformed shard spec", sweepModeArgs{shard: "two/four", planPath: "p.jsonl", shardOut: "s.jsonl"}, "shard"},
		{"shard out of range", sweepModeArgs{shard: "2/2", planPath: "p.jsonl", shardOut: "s.jsonl"}, "shard"},
		{"shard without plan", sweepModeArgs{shard: "0/2", shardOut: "s.jsonl"}, "-shard needs -plan and -shard-out"},
		{"shard without shard-out", sweepModeArgs{shard: "0/2", planPath: "p.jsonl"}, "-shard needs -plan and -shard-out"},
		{"merge without plan", sweepModeArgs{merge: "a,b", profileDir: "d"}, "-merge-shards needs -plan and -profile-out"},
		{"merge without profile-out", sweepModeArgs{merge: "a,b", planPath: "p.jsonl"}, "-merge-shards needs -plan and -profile-out"},
		{"sweep without profile-out", sweepModeArgs{sweep: true}, "-sweep needs -profile-out"},
		{"best without profile-out", sweepModeArgs{best: true}, "-best needs -profile-out"},
		{"prune emit without cache", sweepModeArgs{prune: true, emitPlan: "r.jsonl"}, "-prune -emit-plan needs -cache"},
		{"prune merge without plan", sweepModeArgs{prune: true, merge: "a,b", cacheDir: "rounds"}, "-prune -merge-shards needs -plan and -cache"},
		{"prune merge without cache", sweepModeArgs{prune: true, merge: "a,b", planPath: "r.jsonl"}, "-prune -merge-shards needs -plan and -cache"},
		{"prune sweep without profile-out", sweepModeArgs{prune: true, sweep: true}, "-prune -sweep needs -profile-out"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateSweepFlags(tc.args)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateSweepFlags = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validateSweepFlags = nil, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validateSweepFlags = %q, want it to contain %q", err, tc.wantErr)
			}
		})
	}
}
