// Command poisesim runs one or more workloads on the simulated GPU
// under a chosen warp-scheduling policy and prints the headline
// metrics.
//
// Usage:
//
//	poisesim -workload ii -policy fixed -n 8 -p 2 -sms 8 -size small
//	poisesim -workload ii,bfs,syr2k -parallel 3   # fan out across cores
//
// Policies: gto (baseline greedy-then-oldest, maximum warps) and
// fixed (pin the warp-tuple to -n/-p). The richer policies (swl, pcal,
// poise, ...) are exercised via cmd/poisebench, which also feeds them
// the profiles and trained models they need.
//
// A comma-separated -workload list fans the runs out across -parallel
// worker goroutines (0 = GOMAXPROCS); each run simulates on its own
// GPU, so results are identical at any worker count and print in the
// order given. -seed reseeds the workload generator reproducibly.
//
// Trace ingestion (package traceio):
//
//	poisesim -record traces -workload ii        # capture ii to traces/ii.ptrace.gz
//	poisesim -trace traces/ii.ptrace.gz -workload ii   # replay: identical metrics
//	poisesim -trace kernel.trace -list          # ingest + characterise
//
// -trace loads recorded workloads (poisetrace containers or simplified
// Accel-Sim kernel traces; a file or a directory of files) into the
// catalogue, shadowing same-named synthetic workloads so record/replay
// comparisons are a two-command affair. -list prints each workload's
// characterised locality signature (In, reuse distance R, per-warp
// footprint, intra/inter reuse split).
//
// Sharded {N, p} profile sweeps (package gridplan) — each step can run
// in a different process or on a different machine:
//
//	poisesim -workload ii -emit-plan plan.jsonl
//	poisesim -plan plan.jsonl -shard 0/2 -shard-out s0.jsonl
//	poisesim -plan plan.jsonl -shard 1/2 -shard-out s1.jsonl
//	poisesim -plan plan.jsonl -merge-shards s0.jsonl,s1.jsonl -profile-out profs
//	poisesim -workload ii -sweep -profile-out reference   # unsharded reference
//
// Merging any shard split is byte-identical to the in-process sweep
// (-sweep), which CI asserts with a directory diff.
//
// The same flags also execute experiment-grid cell plans (workload x
// scheme grids emitted by `poisebench -run fig7 -emit-plan ...`): the
// plan file's header selects the pipeline, -shard runs the slice of
// cells, and -merge-shards writes the merged cells into -profile-out,
// which poisebench loads as its -cache:
//
//	poisebench -run fig16 -emit-plan cells.jsonl -cache c
//	poisesim -plan cells.jsonl -shard 0/2 -shard-out c0.jsonl
//	poisesim -plan cells.jsonl -shard 1/2 -shard-out c1.jsonl
//	poisesim -plan cells.jsonl -merge-shards c0.jsonl,c1.jsonl -profile-out c
//	poisebench -run fig16 -cache c      # assembles the figure from the cells
//
// Worker flags must reproduce the coordinator's configuration (-sms,
// -size, -seed, -stepn/-stepp); the plan's configuration tag and
// workload digests are verified first, so mismatches fail fast.
//
// The fleet service mode (package fleet) replaces the file round-trip
// with a live coordinator and long-lived workers over HTTP:
//
//	poisesim -serve :9444 -plan plan.jsonl -profile-out profs   # coordinator
//	poisesim -worker http://host:9444                           # any number
//
// Workers may join late, crash mid-lease (expiry requeues their tasks)
// or run slow (idle workers steal queued tasks from loaded ones); the
// merged output is byte-identical to the single-process run in every
// case. `-serve -prune` drives the whole staged refinement loop as one
// campaign, publishing each round's plan as the next generation.
//
// Adaptive sweep pruning (-prune) replaces the exhaustive grid with a
// coarse pass plus score-ranked neighbourhood refinement, simulating a
// fraction of the points while selecting the same Static-Best, SWL and
// scored tuples. In-process:
//
//	poisesim -workload ii -prune -sweep -profile-out pruned
//
// Staged, one plan file per refinement round — each round shards with
// the unchanged -shard workers, and the loop ends when -emit-plan
// reports "refinement complete" and assembles the profiles:
//
//	poisesim -workload ii -prune -cache rounds -emit-plan r.jsonl -profile-out pruned
//	poisesim -plan r.jsonl -shard 0/2 -shard-out r0.jsonl
//	poisesim -plan r.jsonl -shard 1/2 -shard-out r1.jsonl
//	poisesim -prune -plan r.jsonl -merge-shards r0.jsonl,r1.jsonl -cache rounds
//	...repeat...
//
// -best prints the static policy table derived from a profile
// directory; pruned and exhaustive campaigns print identical tables
// (CI byte-diffs them).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"poise"

	"poise/internal/config"
	"poise/internal/profiling"
	"poise/internal/runner"
	"poise/internal/sim"
	"poise/internal/snap"
	"poise/internal/traceio"
	"poise/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "ii", "comma-separated workload names (see -list)")
		policy   = flag.String("policy", "gto", "policy: gto | fixed | poise | apcm | ccws | random-restart")
		n        = flag.Int("n", 0, "fixed policy: vital warps N (0 = max)")
		p        = flag.Int("p", 0, "fixed policy: polluting warps p (0 = N)")
		sms      = flag.Int("sms", 8, "number of SMs (scaled memory system)")
		size     = flag.String("size", "small", "workload size: small | medium | large")
		list     = flag.Bool("list", false, "list workloads with their characterised signature and exit")
		l1x      = flag.Int("l1x", 1, "multiply L1 capacity (Pbest probes use 64)")
		parallel = flag.Int("parallel", 0, "worker goroutines for multi-workload runs (0 = GOMAXPROCS)")
		seed     = flag.Int64("seed", 0, "workload seed (perturbs iteration jitter; 0 = canonical)")
		tracePth = flag.String("trace", "", "load trace workloads (a .ptrace/.ptrace.gz/.trace file or a directory) into the catalogue")
		record   = flag.String("record", "", "record each selected workload to this directory as <name>.ptrace.gz before running")

		// Sharded {N,p} sweep flow (package gridplan): emit a plan, run
		// shards of it in separate processes, merge the partials.
		emitPlan = flag.String("emit-plan", "", "write the selected workloads' sweep plan as JSONL to this file and exit")
		planPth  = flag.String("plan", "", "sweep plan file (from -emit-plan) for -shard / -merge-shards")
		shardStr = flag.String("shard", "", "run shard i/N of -plan and write measurements to -shard-out (format \"i/N\")")
		shardOut = flag.String("shard-out", "", "measurement JSONL output file for -shard")
		mergeStr = flag.String("merge-shards", "", "comma-separated shard measurement files to merge into profiles under -profile-out (needs -plan)")
		profDir  = flag.String("profile-out", "", "profile cache directory -merge-shards and -sweep write to")
		sweepRun = flag.Bool("sweep", false, "run an in-process sweep of the selected workloads and save profiles under -profile-out (the unsharded reference)")
		pruneRun = flag.Bool("prune", false, "adaptive coarse-to-fine sweep pruning: with -sweep run pruned sweeps in-process; with -emit-plan/-merge-shards drive the staged per-round plan flow (rounds cached in -cache)")
		bestRun  = flag.Bool("best", false, "print the static policy table (Static-Best/SWL/scored tuples) derived from the profiles in -profile-out and exit")
		stepN    = flag.Int("stepn", 2, "sweep grid N step for the plan/sweep modes")
		stepP    = flag.Int("stepp", 2, "sweep grid p step for the plan/sweep modes")
		cacheDir = flag.String("cache", "", "profile cache directory for cell-plan shards ('' = none; share one across workers and with the poisebench coordinator so profile-hungry grids sweep once)")
		seeds    = flag.Int("seeds", 3, "random-restart trials for alternatives-grid (fig15) cell plans; must match the coordinator's -seeds")

		// Fleet coordinator/worker service (package fleet): serve a plan
		// over HTTP, pull leases from long-lived workers, merge streamed
		// results; survives worker crashes (lease expiry) and rebalances
		// loaded workers (stealing) with byte-identical merged output.
		serveAddr = flag.String("serve", "", "run the fleet coordinator on this listen address, serving -plan (or the -prune refinement loop) to -worker processes, and save merged output under -profile-out")
		workerURL = flag.String("worker", "", "run a fleet worker pulling task leases from the coordinator at this base URL (e.g. http://host:9444)")
		leaseN    = flag.Int("lease-tasks", 0, "-serve: tasks per lease batch (0 = default)")
		leaseTTL  = flag.Duration("lease-ttl", 0, "-serve: lease expiry deadline, renewed on each completed task (0 = default)")
		dieAfter  = flag.Int("die-after", 0, "-worker: exit mid-lease after completing this many tasks (chaos/CI hook; with -snapshot-dir the death is checkpointed so another worker resumes it; 0 = never)")
		taskDelay = flag.Duration("task-delay", 0, "-worker: sleep this long before each task (chaos/CI hook to provoke stealing)")

		// Mid-run snapshots (package snap): checkpoint preempted runs
		// (SIGTERM, -ckpt-at-cycle, checkpointed -die-after) so a later
		// process resumes them bit-identically instead of restarting.
		snapDir = flag.String("snapshot-dir", "", "snapshot directory: preempted runs/sweep tasks checkpoint here and resume from here; in worker and shard modes it is probed automatically, so any process pointed at the same directory continues the work ('' = off)")
		resumeR = flag.Bool("resume", false, "resume workload runs from checkpoints in -snapshot-dir (writes still require only -snapshot-dir; results are bit-identical to an uninterrupted run)")
		ckptAt  = flag.Int64("ckpt-at-cycle", 0, "deterministically preempt + checkpoint each in-flight run at this simulated cycle (CI/chaos hook; needs -snapshot-dir)")

		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := profiling.Start(profiling.Flags{CPUProfile: *cpuProf, MemProfile: *memProf})
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "poisesim:", err)
		}
	}()

	workloadSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "workload" {
			workloadSet = true
		}
	})

	cat := workloads.NewCatalogueSeeded(parseSize(*size), *seed)
	var extra []*sim.Workload
	if *tracePth != "" {
		ws, err := traceio.LoadWorkloads(*tracePth)
		if err != nil {
			fatal(err)
		}
		extra = ws
		for _, w := range ws {
			cat.Put(w)
		}
		if !workloadSet && len(ws) > 0 {
			// Bare -trace runs default to the ingested workloads; an
			// explicit -workload (even "ii") always wins.
			names := make([]string, len(ws))
			for i, w := range ws {
				names[i] = w.Name
			}
			*workload = strings.Join(names, ",")
		}
	}
	if *list {
		listSignatures(cat)
		return
	}
	var names []string
	for _, name := range strings.Split(*workload, ",") {
		if name = strings.TrimSpace(name); name != "" {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		fatal(fmt.Errorf("no workloads given (see -list for names)"))
	}
	ws := make([]*sim.Workload, len(names))
	for i, name := range names {
		w, err := cat.Get(name)
		if err != nil {
			fatal(err)
		}
		ws[i] = w
	}

	if *record != "" {
		if err := os.MkdirAll(*record, 0o755); err != nil {
			fatal(err)
		}
		for _, w := range ws {
			tr, err := traceio.Record(w)
			if err != nil {
				fatal(err)
			}
			path := filepath.Join(*record, w.Name+".ptrace.gz")
			if err := traceio.WriteFile(path, tr); err != nil {
				fatal(err)
			}
			fmt.Printf("recorded %s (%d kernels) -> %s\n", w.Name, len(tr.Kernels), path)
		}
	}

	cfg := config.Default().Scale(*sms)
	if *l1x > 1 {
		cfg.L1.SizeBytes *= *l1x
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// -snapshot-dir arms the preemption path: SIGTERM (or the
	// deterministic -ckpt-at-cycle hook) interrupts in-flight
	// simulations at a safe point and checkpoints them to the store, so
	// a later process — this machine or another pointed at the same
	// directory — resumes bit-identically instead of restarting.
	var (
		ckpts *snap.Store
		ictl  *sim.InterruptCtl
	)
	if *snapDir != "" {
		st, err := snap.NewStore(*snapDir)
		if err != nil {
			fatal(err)
		}
		ckpts = st
		ictl = &sim.InterruptCtl{AtCycle: *ckptAt}
		go func() { <-ctx.Done(); ictl.Trigger() }()
	} else if *ckptAt > 0 {
		fatal(fmt.Errorf("-ckpt-at-cycle needs -snapshot-dir for the checkpoint"))
	} else if *resumeR {
		fatal(fmt.Errorf("-resume needs -snapshot-dir to resume from"))
	}

	if *serveAddr != "" || *workerURL != "" {
		runFleetMode(sweepModeArgs{
			cfg: cfg, cat: cat, selected: ws, ctx: ctx,
			planPath: *planPth, profileDir: *profDir, prune: *pruneRun,
			sms: *sms, size: parseSize(*size),
			cacheDir: *cacheDir, seeds: *seeds, extra: extra,
			stepN: *stepN, stepP: *stepP, workers: *parallel, seed: *seed,
			snapDir: *snapDir, ckpts: ckpts, ictl: ictl,
		}, fleetFlags{
			serve: *serveAddr, worker: *workerURL,
			leaseTasks: *leaseN, leaseTTL: *leaseTTL,
			dieAfter: *dieAfter, taskDelay: *taskDelay,
			planPath: *planPth, emitPlan: *emitPlan,
			shard: *shardStr, merge: *mergeStr,
			profileDir: *profDir, sweep: *sweepRun,
			best: *bestRun, prune: *pruneRun,
		})
		return
	}

	if *emitPlan != "" || *shardStr != "" || *mergeStr != "" || *sweepRun || *bestRun {
		runSweepMode(sweepModeArgs{
			cfg: cfg, cat: cat, selected: ws, ctx: ctx,
			emitPlan: *emitPlan, planPath: *planPth,
			shard: *shardStr, shardOut: *shardOut,
			merge: *mergeStr, profileDir: *profDir, sweep: *sweepRun,
			prune: *pruneRun, best: *bestRun,
			sms: *sms, size: parseSize(*size),
			cacheDir: *cacheDir, seeds: *seeds, extra: extra,
			stepN: *stepN, stepP: *stepP, workers: *parallel, seed: *seed,
			snapDir: *snapDir, ckpts: ckpts, ictl: ictl,
		})
		return
	}

	// Each run needs its own policy instance (the adaptive policies are
	// stateful), derived deterministically from the run's index.
	newPolicy := func(i int) (sim.Policy, error) {
		switch *policy {
		case "gto":
			return sim.GTO{}, nil
		case "fixed":
			return sim.Fixed{N: *n, P: *p}, nil
		case "poise", "apcm", "ccws", "random-restart":
			// Seed family matches the harness convention (see Fig15):
			// base seed + run index + 1, so -seed 0 on a single
			// workload reproduces the canonical stochastic-policy seed.
			return poise.NewPolicy(poise.PolicySpec{
				Name: *policy,
				Seed: *seed + int64(i) + 1,
			})
		default:
			return nil, fmt.Errorf("unknown policy %q", *policy)
		}
	}
	if _, err := newPolicy(0); err != nil {
		fatal(err)
	}

	// runKey names a run's checkpoint in -snapshot-dir by everything
	// that shapes its state, so a resume can never splice checkpoints
	// across configurations.
	runKey := func(w *sim.Workload) string {
		return fmt.Sprintf("poisesim|%s|%s|%s|sms%d|l1x%d|seed%d|n%d|p%d",
			w.Name, *policy, *size, *sms, *l1x, *seed, *n, *p)
	}
	runWorkload := func(i int, w *sim.Workload) (sim.WorkloadResult, error) {
		pol, err := newPolicy(i)
		if err != nil {
			return sim.WorkloadResult{}, err
		}
		if ckpts == nil {
			return sim.RunWorkload(cfg, w, pol, sim.RunOptions{})
		}
		ro := sim.RunOptions{Interrupt: ictl}
		key := runKey(w)
		var (
			res sim.WorkloadResult
			cp  *sim.Checkpoint
		)
		if sn, lerr := ckpts.Load(key); *resumeR && lerr == nil {
			prev, derr := sim.CheckpointFromSnapshot(sn)
			if derr != nil {
				return res, fmt.Errorf("checkpoint %s: %w", key, derr)
			}
			res, cp, err = sim.ResumeWorkload(cfg, w, pol, ro, prev)
		} else {
			res, cp, err = sim.RunWorkloadPreemptible(cfg, w, pol, ro)
		}
		if err == nil {
			_ = ckpts.Delete(key) // consumed (best effort; a stale probe only costs a read)
			return res, nil
		}
		if errors.Is(err, sim.ErrInterrupted) && cp != nil {
			if serr := ckpts.Save(cp.Snapshot(key)); serr != nil {
				return res, serr
			}
		}
		return res, err
	}

	type run struct {
		res     sim.WorkloadResult
		elapsed time.Duration
	}
	start := time.Now()
	results, err := runner.MapSlice(ctx, *parallel, ws,
		func(_ context.Context, i int, w *sim.Workload) (run, error) {
			t0 := time.Now()
			res, err := runWorkload(i, w)
			if err != nil {
				return run{}, err
			}
			return run{res: res, elapsed: time.Since(t0)}, nil
		})
	if err != nil {
		if ckpts != nil && (errors.Is(err, sim.ErrInterrupted) || errors.Is(err, context.Canceled)) {
			fmt.Printf("preempted: checkpoints saved under %s; rerun with -snapshot-dir %s -resume to continue\n",
				*snapDir, *snapDir)
			return
		}
		fatal(err)
	}
	wall := time.Since(start)

	for i, r := range results {
		if i > 0 {
			fmt.Println()
		}
		printResult(r.res, r.elapsed)
	}
	if len(results) > 1 {
		var serial time.Duration
		for _, r := range results {
			serial += r.elapsed
		}
		workers := runner.NumWorkers(*parallel)
		if workers > len(results) {
			workers = len(results)
		}
		fmt.Printf("\n%d workloads on %d workers: %v wall (%v of simulation)\n",
			len(results), workers,
			wall.Round(time.Millisecond), serial.Round(time.Millisecond))
	}
}

// listSignatures prints every workload with its characterised
// locality signature: the trace-derived In, per-warp footprint, reuse
// distance R and intra/inter reuse split (paper Fig. 4 vocabulary).
func listSignatures(cat *workloads.Catalogue) {
	fmt.Printf("%-12s %7s %8s %10s %8s %7s %7s\n",
		"workload", "kernels", "In", "footprint", "R", "intra%", "inter%")
	for _, name := range cat.Names() {
		w, err := cat.Get(name)
		if err != nil {
			fatal(err)
		}
		// A capped recording keeps the listing interactive at -size
		// large (full streams are only needed for bit-exact replay).
		tr, err := traceio.RecordWith(w, traceio.RecordOptions{MaxWarpIters: 2048})
		if err != nil {
			fatal(fmt.Errorf("characterising %s: %w", name, err))
		}
		sig := traceio.Characterise(tr, traceio.CharacteriseOptions{})
		fmt.Printf("%-12s %7d %8.2f %10.1f %8.1f %7.1f %7.1f\n",
			name, sig.Kernels, sig.In, sig.FootprintLines, sig.ReuseDist,
			sig.IntraPct, sig.InterPct)
	}
}

func printResult(res sim.WorkloadResult, elapsed time.Duration) {
	fmt.Printf("workload        %s (%d kernels)\n", res.Workload, len(res.PerKernel))
	fmt.Printf("policy          %s\n", res.Policy)
	fmt.Printf("cycles          %d\n", res.Cycles)
	fmt.Printf("instructions    %d\n", res.Instructions)
	fmt.Printf("IPC             %.4f\n", res.IPC)
	fmt.Printf("L1 hit rate     %.2f%%  (intra %.2f%% / inter %.2f%% of accesses)\n",
		100*res.L1.HitRate(), 100*res.L1.IntraWarpHitRate(),
		100*float64(res.L1.InterWarpHits)/max1(float64(res.L1.Accesses)))
	fmt.Printf("AML             %.1f cycles\n", res.AML)
	fmt.Printf("L2 accesses     %d (hit rate %.2f%%)\n", res.L2Acc,
		100*float64(res.L2Hits)/max1(float64(res.L2Acc)))
	fmt.Printf("DRAM accesses   %d\n", res.DRAMAcc)
	fmt.Printf("sim wall time   %v\n", elapsed.Round(time.Millisecond))
}

func parseSize(s string) workloads.Size {
	switch strings.ToLower(s) {
	case "small":
		return workloads.Small
	case "medium":
		return workloads.Medium
	case "large":
		return workloads.Large
	default:
		fatal(fmt.Errorf("unknown size %q", s))
		return workloads.Small
	}
}

func max1(x float64) float64 {
	if x < 1 {
		return 1
	}
	return x
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "poisesim:", err)
	os.Exit(1)
}
