// Command poisesim runs one workload on the simulated GPU under a
// chosen warp-scheduling policy and prints the headline metrics.
//
// Usage:
//
//	poisesim -workload ii -policy fixed -n 8 -p 2 -sms 8 -size small
//
// Policies: gto (baseline greedy-then-oldest, maximum warps) and
// fixed (pin the warp-tuple to -n/-p). The richer policies (swl, pcal,
// poise, ...) are exercised via cmd/poisebench, which also feeds them
// the profiles and trained models they need.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"poise"

	"poise/internal/config"
	"poise/internal/sim"
	"poise/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "ii", "workload name (see -list)")
		policy   = flag.String("policy", "gto", "policy: gto | fixed")
		n        = flag.Int("n", 0, "fixed policy: vital warps N (0 = max)")
		p        = flag.Int("p", 0, "fixed policy: polluting warps p (0 = N)")
		sms      = flag.Int("sms", 8, "number of SMs (scaled memory system)")
		size     = flag.String("size", "small", "workload size: small | medium | large")
		list     = flag.Bool("list", false, "list workloads and exit")
		l1x      = flag.Int("l1x", 1, "multiply L1 capacity (Pbest probes use 64)")
	)
	flag.Parse()

	cat := workloads.NewCatalogue(parseSize(*size))
	if *list {
		fmt.Println(strings.Join(cat.Names(), "\n"))
		return
	}
	w, err := cat.Get(*workload)
	if err != nil {
		fatal(err)
	}

	cfg := config.Default().Scale(*sms)
	if *l1x > 1 {
		cfg.L1.SizeBytes *= *l1x
	}
	var pol sim.Policy
	switch *policy {
	case "gto":
		pol = sim.GTO{}
	case "fixed":
		pol = sim.Fixed{N: *n, P: *p}
	case "poise", "apcm", "ccws", "random-restart":
		var err error
		pol, err = poise.NewPolicy(poise.PolicySpec{Name: *policy, Seed: 1})
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}

	start := time.Now()
	res, err := sim.RunWorkload(cfg, w, pol, sim.RunOptions{})
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("workload        %s (%d kernels)\n", res.Workload, len(res.PerKernel))
	fmt.Printf("policy          %s\n", res.Policy)
	fmt.Printf("cycles          %d\n", res.Cycles)
	fmt.Printf("instructions    %d\n", res.Instructions)
	fmt.Printf("IPC             %.4f\n", res.IPC)
	fmt.Printf("L1 hit rate     %.2f%%  (intra %.2f%% / inter %.2f%% of accesses)\n",
		100*res.L1.HitRate(), 100*res.L1.IntraWarpHitRate(),
		100*float64(res.L1.InterWarpHits)/max1(float64(res.L1.Accesses)))
	fmt.Printf("AML             %.1f cycles\n", res.AML)
	fmt.Printf("L2 accesses     %d (hit rate %.2f%%)\n", res.L2Acc,
		100*float64(res.L2Hits)/max1(float64(res.L2Acc)))
	fmt.Printf("DRAM accesses   %d\n", res.DRAMAcc)
	fmt.Printf("sim wall time   %v\n", elapsed.Round(time.Millisecond))
}

func parseSize(s string) workloads.Size {
	switch strings.ToLower(s) {
	case "small":
		return workloads.Small
	case "medium":
		return workloads.Medium
	case "large":
		return workloads.Large
	default:
		fatal(fmt.Errorf("unknown size %q", s))
		return workloads.Small
	}
}

func max1(x float64) float64 {
	if x < 1 {
		return 1
	}
	return x
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "poisesim:", err)
	os.Exit(1)
}
