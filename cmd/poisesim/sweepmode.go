package main

import (
	"context"
	"fmt"
	"strings"

	"poise/internal/config"
	"poise/internal/gridplan"
	"poise/internal/profile"
	"poise/internal/sim"
	"poise/internal/trace"
	"poise/internal/workloads"
)

// The sharded sweep flow, file-based so each step can run in a
// different process (or on a different machine — ship the plan out,
// ship the shard partials back):
//
//	poisesim -workload ii -emit-plan plan.jsonl            # coordinator
//	poisesim -plan plan.jsonl -shard 0/2 -shard-out s0.jsonl   # worker 0
//	poisesim -plan plan.jsonl -shard 1/2 -shard-out s1.jsonl   # worker 1
//	poisesim -plan plan.jsonl -merge-shards s0.jsonl,s1.jsonl -profile-out profs
//
// -sweep writes the unsharded reference profiles for the same grid, so
// `diff -r` between the two output directories proves the shard path
// bit-identical (CI does exactly that).

type sweepModeArgs struct {
	cfg      config.Config
	cat      *workloads.Catalogue
	selected []*sim.Workload
	ctx      context.Context

	emitPlan   string
	planPath   string
	shard      string
	shardOut   string
	merge      string
	profileDir string
	sweep      bool

	stepN, stepP int
	workers      int
	seed         int64
}

func runSweepMode(a sweepModeArgs) {
	opts := profile.SweepOptions{StepN: a.stepN, StepP: a.stepP, Workers: a.workers, Ctx: a.ctx}
	// The tag keys profiles by everything that changes them: the scaled
	// configuration, the grid resolution, and the catalogue seed (the
	// kernels' stochastic streams). All processes of one campaign agree
	// on these flags, so they agree on the tag.
	tag := profile.SweepTag(a.cfg, opts)
	if a.seed != 0 {
		tag = fmt.Sprintf("%s-seed%d", tag, a.seed)
	}

	switch {
	case a.emitPlan != "":
		plan := &gridplan.Plan{Version: gridplan.PlanVersion}
		kernels := sim.DistinctKernels(a.selected)
		for _, k := range kernels {
			kp := profile.BuildPlan(tag, a.cfg, k, opts)
			plan.Tasks = append(plan.Tasks, kp.Tasks...)
		}
		plan.Sort()
		if err := plan.Validate(); err != nil {
			fatal(err)
		}
		if err := gridplan.WritePlanFile(a.emitPlan, plan); err != nil {
			fatal(err)
		}
		fmt.Printf("plan %s: %d tasks over %d kernels (tag %s)\n",
			a.emitPlan, len(plan.Tasks), len(kernels), tag)

	case a.shard != "":
		index, count, err := gridplan.ParseShard(a.shard)
		if err != nil {
			fatal(err)
		}
		if a.planPath == "" || a.shardOut == "" {
			fatal(fmt.Errorf("-shard needs -plan and -shard-out"))
		}
		plan, err := gridplan.ReadPlanFile(a.planPath)
		if err != nil {
			fatal(err)
		}
		sp, err := plan.Shard(index, count)
		if err != nil {
			fatal(err)
		}
		ms, err := profile.RunTasks(a.cfg, catalogueKernels(a.cat), sp.Tasks, opts)
		if err != nil {
			fatal(err)
		}
		if err := gridplan.WriteMeasurementsFile(a.shardOut, index, count, ms); err != nil {
			fatal(err)
		}
		fmt.Printf("shard %d/%d: %d of %d tasks -> %s\n",
			index, count, len(ms), len(plan.Tasks), a.shardOut)

	case a.merge != "":
		if a.planPath == "" || a.profileDir == "" {
			fatal(fmt.Errorf("-merge-shards needs -plan and -profile-out"))
		}
		plan, err := gridplan.ReadPlanFile(a.planPath)
		if err != nil {
			fatal(err)
		}
		var shards [][]gridplan.Measurement
		for _, f := range strings.Split(a.merge, ",") {
			if f = strings.TrimSpace(f); f == "" {
				continue
			}
			ms, err := gridplan.ReadMeasurementsFile(f)
			if err != nil {
				fatal(err)
			}
			shards = append(shards, ms)
		}
		merged, err := gridplan.Merge(shards...)
		if err != nil {
			fatal(err)
		}
		if err := plan.Verify(merged); err != nil {
			fatal(err)
		}
		st := profile.Store{Dir: a.profileDir}
		for _, g := range plan.Kernels() {
			var ms []gridplan.Measurement
			for _, m := range merged {
				if m.Tag == g.Tag && m.Kernel == g.Kernel {
					ms = append(ms, m)
				}
			}
			pr, err := profile.MergeShards(g.Kernel, ms)
			if err != nil {
				fatal(err)
			}
			if err := st.Save(g.Tag, pr); err != nil {
				fatal(err)
			}
			fmt.Printf("merged %s: %d points -> %s\n", g.Kernel, len(pr.Points), a.profileDir)
		}

	case a.sweep:
		if a.profileDir == "" {
			fatal(fmt.Errorf("-sweep needs -profile-out"))
		}
		st := profile.Store{Dir: a.profileDir}
		for _, k := range sim.DistinctKernels(a.selected) {
			pr, err := profile.Sweep(a.cfg, k, opts)
			if err != nil {
				fatal(err)
			}
			if err := st.Save(tag, pr); err != nil {
				fatal(err)
			}
			fmt.Printf("swept %s: %d points -> %s\n", k.Name, len(pr.Points), a.profileDir)
		}
	}
}

// catalogueKernels indexes every kernel of every catalogue workload by
// name, so a shard worker resolves plan tasks regardless of its own
// -workload selection; the plan's content digests still guard against
// a catalogue that materialises different kernels.
func catalogueKernels(cat *workloads.Catalogue) map[string]*trace.Kernel {
	idx := map[string]*trace.Kernel{}
	for _, name := range cat.Names() {
		w, err := cat.Get(name)
		if err != nil {
			fatal(err)
		}
		for _, k := range w.Kernels {
			idx[k.Name] = k
		}
	}
	return idx
}
