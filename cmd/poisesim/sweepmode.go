package main

import (
	"context"
	"fmt"

	"poise/internal/config"
	"poise/internal/experiments"
	"poise/internal/gridplan"
	"poise/internal/profile"
	"poise/internal/results"
	"poise/internal/sim"
	"poise/internal/snap"
	"poise/internal/trace"
	"poise/internal/workloads"
)

// The sharded campaign flow, file-based so each step can run in a
// different process (or on a different machine — ship the plan out,
// ship the shard partials back). Profile sweep plans:
//
//	poisesim -workload ii -emit-plan plan.jsonl            # coordinator
//	poisesim -plan plan.jsonl -shard 0/2 -shard-out s0.jsonl   # worker 0
//	poisesim -plan plan.jsonl -shard 1/2 -shard-out s1.jsonl   # worker 1
//	poisesim -plan plan.jsonl -merge-shards s0.jsonl,s1.jsonl -profile-out profs
//
// -sweep writes the unsharded reference profiles for the same grid, so
// `diff -r` between the two output directories proves the shard path
// bit-identical (CI does exactly that).
//
// The same -plan/-shard/-merge-shards flags accept experiment-grid
// cell plans emitted by `poisebench -run <exp> -emit-plan` (the file's
// header says which kind it is): -shard runs the slice of workload x
// scheme cells through the experiment harness, and -merge-shards
// writes the merged cells into -profile-out, which poisebench then
// loads as its -cache. The worker's flags must reproduce the
// coordinator's configuration — the plan carries the configuration tag
// and workload digests, and mismatches fail before anything simulates.

type sweepModeArgs struct {
	cfg      config.Config
	cat      *workloads.Catalogue
	selected []*sim.Workload
	ctx      context.Context

	emitPlan   string
	planPath   string
	shard      string
	shardOut   string
	merge      string
	profileDir string
	sweep      bool
	prune      bool
	best       bool

	sms          int
	size         workloads.Size
	cacheDir     string
	seeds        int
	extra        []*sim.Workload
	stepN, stepP int
	workers      int
	seed         int64

	// Mid-run snapshot wiring (-snapshot-dir / -ckpt-at-cycle):
	// preempted tasks checkpoint into ckpts and later runs pointed at
	// the same directory resume them; cell-plan shards additionally use
	// the directory as the kernel-boundary prefix cache.
	snapDir string
	ckpts   *snap.Store
	ictl    *sim.InterruptCtl
}

// sweepOptions derives the profile.SweepOptions every mode shares,
// including the preemption wiring when -snapshot-dir is set.
func (a sweepModeArgs) sweepOptions() profile.SweepOptions {
	opts := profile.SweepOptions{StepN: a.stepN, StepP: a.stepP, Workers: a.workers, Ctx: a.ctx}
	if a.prune {
		opts.Refine = &profile.RefineOptions{}
	}
	opts.Interrupt = a.ictl
	opts.Checkpoints = a.ckpts
	return opts
}

// harness builds the experiment harness a cell plan's shard runs on,
// from the worker's own flags (tag agreement with the coordinator is
// verified against the plan before simulating). -cache shares the
// profile store across workers so profile-hungry grids (the scheme
// comparison's SWL/Static-Best cells, the ablation grid's training
// sweeps) pay for their sweeps once per campaign instead of once per
// shard; -trace workloads join the harness catalogue exactly as they
// do on the poisebench coordinator.
func (a sweepModeArgs) harness() *experiments.Harness {
	return experiments.NewHarness(experiments.Options{
		SMs: a.sms, Size: a.size, Seed: a.seed,
		CacheDir: a.cacheDir, RandomSeeds: a.seeds,
		EvalStepN: a.stepN, EvalStepP: a.stepP,
		Workers: a.workers, Ctx: a.ctx,
		ExtraWorkloads: a.extra,
		Prune:          a.prune,
		SnapshotDir:    a.snapDir,
	})
}

// validateSweepFlags rejects inconsistent file-based mode combinations
// before any file is read or task simulated. The cases mirror
// runSweepMode's dispatch order exactly, so the check always applies
// to the mode that would actually run; the table-driven cmd tests
// exercise every branch.
func validateSweepFlags(a sweepModeArgs) error {
	switch {
	case a.best:
		if a.profileDir == "" {
			return fmt.Errorf("-best needs -profile-out (the profile directory to read)")
		}
	case a.prune && a.emitPlan != "":
		if a.cacheDir == "" {
			return fmt.Errorf("-prune -emit-plan needs -cache for round partials")
		}
	case a.prune && a.merge != "":
		if a.planPath == "" || a.cacheDir == "" {
			return fmt.Errorf("-prune -merge-shards needs -plan and -cache")
		}
	case a.prune && a.sweep:
		if a.profileDir == "" {
			return fmt.Errorf("-prune -sweep needs -profile-out")
		}
	case a.emitPlan != "":
		// Plan emission needs only the workload selection.
	case a.shard != "":
		if _, _, err := gridplan.ParseShard(a.shard); err != nil {
			return err
		}
		if a.planPath == "" || a.shardOut == "" {
			return fmt.Errorf("-shard needs -plan and -shard-out")
		}
	case a.merge != "":
		if a.planPath == "" || a.profileDir == "" {
			return fmt.Errorf("-merge-shards needs -plan and -profile-out")
		}
	case a.sweep:
		if a.profileDir == "" {
			return fmt.Errorf("-sweep needs -profile-out")
		}
	}
	return nil
}

func runSweepMode(a sweepModeArgs) {
	if err := validateSweepFlags(a); err != nil {
		fatal(err)
	}
	// Default refinement parameters under -prune; folding them into the
	// tag keeps pruned and exhaustive campaigns from sharing cache
	// entries or round files.
	opts := a.sweepOptions()
	// The tag keys profiles by everything that changes them: the scaled
	// configuration, the grid resolution, the pruning mode, and the
	// catalogue seed (the kernels' stochastic streams). All processes
	// of one campaign agree on these flags, so they agree on the tag.
	tag := profile.SweepTag(a.cfg, opts)
	if a.seed != 0 {
		tag = fmt.Sprintf("%s-seed%d", tag, a.seed)
	}

	switch {
	case a.best:
		printBestTable(a.profileDir)

	case a.prune && a.emitPlan != "":
		emitRefineRound(a, tag, opts)

	case a.prune && a.merge != "":
		mergeRefineRound(a)

	case a.prune && a.sweep:
		if a.profileDir == "" {
			fatal(fmt.Errorf("-prune -sweep needs -profile-out"))
		}
		st := profile.Store{Dir: a.profileDir}
		for _, k := range sim.DistinctKernels(a.selected) {
			pr, stats, err := profile.PrunedSweep(a.cfg, k, opts)
			if err != nil {
				fatal(err)
			}
			if err := st.Save(tag, pr); err != nil {
				fatal(err)
			}
			fmt.Printf("pruned %s: %d of %d grid points (%.0f%%) in %d rounds -> %s\n",
				k.Name, stats.Simulated, stats.GridPoints, 100*stats.Fraction(),
				stats.Rounds, a.profileDir)
		}

	case a.emitPlan != "":
		plan := &gridplan.Plan{Version: gridplan.PlanVersion}
		kernels := sim.DistinctKernels(a.selected)
		for _, k := range kernels {
			kp := profile.BuildPlan(tag, a.cfg, k, opts)
			plan.Tasks = append(plan.Tasks, kp.Tasks...)
		}
		plan.Sort()
		if err := plan.Validate(); err != nil {
			fatal(err)
		}
		if err := gridplan.WritePlanFile(a.emitPlan, plan); err != nil {
			fatal(err)
		}
		fmt.Printf("plan %s: %d tasks over %d kernels (tag %s)\n",
			a.emitPlan, len(plan.Tasks), len(kernels), tag)

	case a.shard != "":
		index, count, err := gridplan.ParseShard(a.shard)
		if err != nil {
			fatal(err)
		}
		if a.planPath == "" || a.shardOut == "" {
			fatal(fmt.Errorf("-shard needs -plan and -shard-out"))
		}
		if planFormat(a.planPath) == gridplan.CellPlanFormat {
			runCellShard(a, index, count)
			return
		}
		plan, err := gridplan.ReadPlanFile(a.planPath)
		if err != nil {
			fatal(err)
		}
		sp, err := plan.Shard(index, count)
		if err != nil {
			fatal(err)
		}
		ms, err := profile.RunTasks(a.cfg, catalogueKernels(a.cat), sp.Tasks, opts)
		if err != nil {
			fatal(err)
		}
		if err := gridplan.WriteMeasurementsFile(a.shardOut, index, count, ms); err != nil {
			fatal(err)
		}
		fmt.Printf("shard %d/%d: %d of %d tasks -> %s\n",
			index, count, len(ms), len(plan.Tasks), a.shardOut)

	case a.merge != "":
		if a.planPath == "" || a.profileDir == "" {
			fatal(fmt.Errorf("-merge-shards needs -plan and -profile-out"))
		}
		files, err := gridplan.SplitFiles(a.merge)
		if err != nil {
			fatal(fmt.Errorf("-merge-shards: %w", err))
		}
		if planFormat(a.planPath) == gridplan.CellPlanFormat {
			mergeCellShards(a, files)
			return
		}
		st := profile.Store{Dir: a.profileDir}
		for _, g := range verifiedShardGroups(a.planPath, files) {
			pr, err := profile.MergeShards(g.Kernel, g.ms)
			if err != nil {
				fatal(err)
			}
			if err := st.Save(g.Tag, pr); err != nil {
				fatal(err)
			}
			fmt.Printf("merged %s: %d points -> %s\n", g.Kernel, len(pr.Points), a.profileDir)
		}

	case a.sweep:
		if a.profileDir == "" {
			fatal(fmt.Errorf("-sweep needs -profile-out"))
		}
		st := profile.Store{Dir: a.profileDir}
		for _, k := range sim.DistinctKernels(a.selected) {
			pr, err := profile.Sweep(a.cfg, k, opts)
			if err != nil {
				fatal(err)
			}
			if err := st.Save(tag, pr); err != nil {
				fatal(err)
			}
			fmt.Printf("swept %s: %d points -> %s\n", k.Name, len(pr.Points), a.profileDir)
		}
	}
}

// planFormat sniffs a -plan file's header so the shard and merge
// modes dispatch between profile sweep plans and experiment cell
// plans without a separate flag.
func planFormat(path string) string {
	format, err := gridplan.PlanFileFormat(path)
	if err != nil {
		fatal(err)
	}
	return format
}

// runCellShard executes one shard of an experiment-grid cell plan
// (emitted by poisebench -run <exp> -emit-plan) and writes the cells
// to -shard-out. The harness is rebuilt from this process's flags; the
// plan's configuration tag and workload digests must match it, so a
// worker launched with different flags than the coordinator fails
// before simulating anything.
func runCellShard(a sweepModeArgs, index, count int) {
	plan, err := gridplan.ReadCellPlanFile(a.planPath)
	if err != nil {
		fatal(err)
	}
	if len(plan.Cells) == 0 {
		fatal(fmt.Errorf("cell plan %s is empty", a.planPath))
	}
	sp, err := plan.Shard(index, count)
	if err != nil {
		fatal(err)
	}
	grid := plan.Cells[0].Grid
	h := a.harness()
	// Validate the whole plan, not just this shard: a worker launched
	// with mismatched flags must fail fast even if its own slice is
	// empty or misses the drifted workload.
	if err := h.ValidateCellPlan(grid, plan); err != nil {
		fatal(err)
	}
	cells, err := h.RunCellTasks(grid, sp.Cells)
	if err != nil {
		fatal(err)
	}
	if err := results.WriteShardFile(a.shardOut, index, count, cells); err != nil {
		fatal(err)
	}
	fmt.Printf("cell shard %d/%d: %d of %d cells of grid %s -> %s\n",
		index, count, len(cells), len(plan.Cells), grid, a.shardOut)
}

// mergeCellShards merges cell shard files against their plan and
// writes the merged entry into the -profile-out results store — the
// directory poisebench then loads as its -cache, so figures assemble
// from the sharded campaign without re-simulating.
func mergeCellShards(a sweepModeArgs, files []string) {
	plan, err := gridplan.ReadCellPlanFile(a.planPath)
	if err != nil {
		fatal(err)
	}
	if len(plan.Cells) == 0 {
		fatal(fmt.Errorf("cell plan %s is empty", a.planPath))
	}
	var shards [][]results.CellResult
	for _, f := range files {
		cells, err := results.ReadShardFile(f)
		if err != nil {
			fatal(err)
		}
		shards = append(shards, cells)
	}
	merged, err := results.Merge(shards...)
	if err != nil {
		fatal(err)
	}
	if err := results.Verify(plan, merged); err != nil {
		fatal(err)
	}
	tag, grid := plan.Cells[0].Tag, plan.Cells[0].Grid
	st := results.Store{Dir: a.profileDir}
	if err := st.Save(tag, grid, merged); err != nil {
		fatal(err)
	}
	fmt.Printf("merged %d cells of grid %s -> %s\n", len(merged), grid, a.profileDir)
}

// emitRefineRound computes the next pruned-sweep refinement round for
// the selected workloads from the round partials in -cache and writes
// it as an ordinary plan file, which the existing -shard workers
// execute unchanged. When every kernel's refinement has converged it
// instead assembles the final profiles into -profile-out (when given)
// and reports completion — the loop driver greps for that.
func emitRefineRound(a sweepModeArgs, tag string, opts profile.SweepOptions) {
	if a.cacheDir == "" {
		fatal(fmt.Errorf("-prune -emit-plan needs -cache for round partials"))
	}
	st := profile.Store{Dir: a.cacheDir}
	plan := &gridplan.Plan{Version: gridplan.PlanVersion}
	kernels := sim.DistinctKernels(a.selected)
	type state struct {
		kernel string
		prior  []gridplan.Measurement
	}
	var states []state
	for _, k := range kernels {
		rounds := st.LoadRounds(tag, k.Name)
		prior, err := gridplan.Merge(rounds...)
		if err != nil {
			fatal(fmt.Errorf("round partials for %s: %w", k.Name, err))
		}
		kp, done, err := profile.BuildRefinePlan(tag, a.cfg, k, opts, len(rounds), prior)
		if err != nil {
			fatal(err)
		}
		if !done {
			plan.Tasks = append(plan.Tasks, kp.Tasks...)
		}
		states = append(states, state{kernel: k.Name, prior: prior})
	}
	if len(plan.Tasks) > 0 {
		plan.Sort()
		if err := plan.Validate(); err != nil {
			fatal(err)
		}
		if err := gridplan.WritePlanFile(a.emitPlan, plan); err != nil {
			fatal(err)
		}
		fmt.Printf("refine round plan %s: %d tasks over %d kernels (tag %s)\n",
			a.emitPlan, len(plan.Tasks), len(kernels), tag)
		return
	}
	if a.profileDir != "" {
		out := profile.Store{Dir: a.profileDir}
		for _, s := range states {
			pr, err := profile.MergeShards(s.kernel, s.prior)
			if err != nil {
				fatal(err)
			}
			if err := out.Save(tag, pr); err != nil {
				fatal(err)
			}
			fmt.Printf("assembled %s: %d pruned points -> %s\n", s.kernel, len(pr.Points), a.profileDir)
		}
	}
	fmt.Println("refinement complete")
}

// mergeRefineRound folds shard measurement files of one refinement
// round back into per-kernel round partials in -cache, verifying full
// coverage against the round's plan, so the next emitRefineRound can
// derive the following round.
func mergeRefineRound(a sweepModeArgs) {
	if a.planPath == "" || a.cacheDir == "" {
		fatal(fmt.Errorf("-prune -merge-shards needs -plan and -cache"))
	}
	files, err := gridplan.SplitFiles(a.merge)
	if err != nil {
		fatal(fmt.Errorf("-merge-shards: %w", err))
	}
	st := profile.Store{Dir: a.cacheDir}
	for _, g := range verifiedShardGroups(a.planPath, files) {
		rounds := st.LoadRounds(g.Tag, g.Kernel)
		prior, err := gridplan.Merge(rounds...)
		if err != nil {
			fatal(fmt.Errorf("round partials for %s: %w", g.Kernel, err))
		}
		// Idempotence: a retried merge of an already-folded round must
		// not append the same measurements as a new round (that would
		// wedge every later emit on duplicate keys). Points partially
		// overlapping the cached rounds are a genuinely inconsistent
		// plan/cache mix and fail loudly instead.
		have := map[string]bool{}
		for _, m := range prior {
			have[m.Key()] = true
		}
		dup := 0
		for _, m := range g.ms {
			if have[m.Key()] {
				dup++
			}
		}
		switch {
		case dup == len(g.ms):
			fmt.Printf("round for %s already merged (%d points), skipping\n", g.Kernel, len(g.ms))
			continue
		case dup > 0:
			fatal(fmt.Errorf("%s: %d of %d points already in cached rounds — shard files do not match the current round (stale -plan?)",
				g.Kernel, dup, len(g.ms)))
		}
		round := len(rounds)
		if err := st.SaveRound(g.Tag, g.Kernel, round, g.ms); err != nil {
			fatal(err)
		}
		fmt.Printf("merged %s round %d: %d points -> %s\n", g.Kernel, round, len(g.ms), a.cacheDir)
	}
}

// shardGroup is one (tag, kernel)'s verified slice of a merged shard
// set.
type shardGroup struct {
	Tag, Kernel string
	ms          []gridplan.Measurement
}

// verifiedShardGroups reads a profile plan and its shard measurement
// files, merges the shards, verifies exact plan coverage (a lost or
// duplicated shard fails loudly), and returns the measurements
// grouped per (tag, kernel) in plan order — the shared front half of
// both the exhaustive -merge-shards path and the pruned round merge.
func verifiedShardGroups(planPath string, files []string) []shardGroup {
	plan, err := gridplan.ReadPlanFile(planPath)
	if err != nil {
		fatal(err)
	}
	var shards [][]gridplan.Measurement
	for _, f := range files {
		ms, err := gridplan.ReadMeasurementsFile(f)
		if err != nil {
			fatal(err)
		}
		shards = append(shards, ms)
	}
	merged, err := gridplan.Merge(shards...)
	if err != nil {
		fatal(err)
	}
	if err := plan.Verify(merged); err != nil {
		fatal(err)
	}
	var groups []shardGroup
	for _, g := range plan.Kernels() {
		var ms []gridplan.Measurement
		for _, m := range merged {
			if m.Tag == g.Tag && m.Kernel == g.Kernel {
				ms = append(ms, m)
			}
		}
		groups = append(groups, shardGroup{Tag: g.Tag, Kernel: g.Kernel, ms: ms})
	}
	return groups
}

// printBestTable derives the static policy table — the Static-Best,
// SWL-diagonal and Eq. 12 scored tuples with their profiled speedups —
// from every profile JSON in -profile-out. Pruned and exhaustive
// campaigns of the same grid must print byte-identical tables (CI
// diffs exactly that), because those tuples are all any experiment
// consumes from a profile. The derivation is profile.BestTable — the
// same function the serve layer's /table endpoint answers with, so the
// two surfaces cannot drift apart.
func printBestTable(dir string) {
	if dir == "" {
		fatal(fmt.Errorf("-best needs -profile-out (the profile directory to read)"))
	}
	table, err := profile.BestTable(dir, config.DefaultPoise())
	if err != nil {
		fatal(err)
	}
	fmt.Print(table)
}

// catalogueKernels indexes every kernel of every catalogue workload by
// name, so a shard worker resolves plan tasks regardless of its own
// -workload selection; the plan's content digests still guard against
// a catalogue that materialises different kernels.
func catalogueKernels(cat *workloads.Catalogue) map[string]*trace.Kernel {
	idx := map[string]*trace.Kernel{}
	for _, name := range cat.Names() {
		w, err := cat.Get(name)
		if err != nil {
			fatal(err)
		}
		for _, k := range w.Kernels {
			idx[k.Name] = k
		}
	}
	return idx
}
