package main

import (
	"strings"
	"testing"
	"time"
)

// TestValidateFleetFlags: every inconsistent -serve/-worker flag
// combination must fail fast with a message naming the offending flag,
// and the legitimate combinations must pass.
func TestValidateFleetFlags(t *testing.T) {
	serve := func(mut func(*fleetFlags)) fleetFlags {
		f := fleetFlags{serve: ":0", planPath: "plan.jsonl", profileDir: "profs"}
		if mut != nil {
			mut(&f)
		}
		return f
	}
	worker := func(mut func(*fleetFlags)) fleetFlags {
		f := fleetFlags{worker: "http://host:9444"}
		if mut != nil {
			mut(&f)
		}
		return f
	}
	cases := []struct {
		name    string
		flags   fleetFlags
		wantErr string // "" = must pass
	}{
		{"serve with plan", serve(nil), ""},
		{"serve with prune", serve(func(f *fleetFlags) { f.planPath = ""; f.prune = true }), ""},
		{"serve with lease knobs", serve(func(f *fleetFlags) { f.leaseTasks = 4; f.leaseTTL = time.Minute }), ""},
		{"plain worker", worker(nil), ""},
		{"worker with chaos hooks", worker(func(f *fleetFlags) { f.dieAfter = 3; f.taskDelay = time.Second }), ""},
		{"worker with prune (matches coordinator config)", worker(func(f *fleetFlags) { f.prune = true }), ""},

		{"neither serve nor worker", fleetFlags{}, "-serve or -worker"},
		{"both serve and worker", fleetFlags{serve: ":0", worker: "http://h"}, "mutually exclusive"},
		{"serve with emit-plan", serve(func(f *fleetFlags) { f.emitPlan = "p.jsonl" }), "-emit-plan"},
		{"worker with shard", worker(func(f *fleetFlags) { f.shard = "0/2" }), "-shard"},
		{"serve with merge-shards", serve(func(f *fleetFlags) { f.merge = "a,b" }), "-merge-shards"},
		{"serve with sweep", serve(func(f *fleetFlags) { f.sweep = true }), "-sweep"},
		{"worker with best", worker(func(f *fleetFlags) { f.best = true }), "-best"},
		{"serve with plan and prune", serve(func(f *fleetFlags) { f.prune = true }), "not both"},
		{"serve without plan or prune", serve(func(f *fleetFlags) { f.planPath = "" }), "campaign source"},
		{"serve without profile-out", serve(func(f *fleetFlags) { f.profileDir = "" }), "-profile-out"},
		{"serve with die-after", serve(func(f *fleetFlags) { f.dieAfter = 3 }), "worker flags"},
		{"serve with task-delay", serve(func(f *fleetFlags) { f.taskDelay = time.Second }), "worker flags"},
		{"worker with plan", worker(func(f *fleetFlags) { f.planPath = "p.jsonl" }), "coordinator flag"},
		{"worker with profile-out", worker(func(f *fleetFlags) { f.profileDir = "d" }), "coordinator flag"},
		{"worker with lease-tasks", worker(func(f *fleetFlags) { f.leaseTasks = 4 }), "coordinator flags"},
		{"worker with lease-ttl", worker(func(f *fleetFlags) { f.leaseTTL = time.Minute }), "coordinator flags"},
		{"negative lease-tasks", serve(func(f *fleetFlags) { f.leaseTasks = -1 }), "-lease-tasks"},
		{"negative lease-ttl", serve(func(f *fleetFlags) { f.leaseTTL = -time.Second }), "-lease-ttl"},
		{"negative die-after", worker(func(f *fleetFlags) { f.dieAfter = -1 }), "-die-after"},
		{"negative task-delay", worker(func(f *fleetFlags) { f.taskDelay = -time.Second }), "-task-delay"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFleetFlags(tc.flags)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateFleetFlags(%+v) = %v, want nil", tc.flags, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validateFleetFlags(%+v) = nil, want error containing %q", tc.flags, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validateFleetFlags(%+v) = %q, want it to contain %q", tc.flags, err, tc.wantErr)
			}
		})
	}
}
