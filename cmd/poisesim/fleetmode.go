package main

import (
	"errors"
	"fmt"
	"os"
	"time"

	"poise/internal/fleet"
	"poise/internal/gridplan"
	"poise/internal/profile"
	"poise/internal/results"
	"poise/internal/sim"
)

// The fleet flow, service-based where the -shard flow is file-based:
// one coordinator process serves lease batches of a plan over HTTP and
// merges the streamed results; long-lived workers pull leases until
// the campaign completes. Crashed workers are recovered by lease
// expiry, loaded workers are relieved by work stealing, and the merged
// output is byte-identical to the single-process run either way:
//
//	poisesim -workload ii -emit-plan plan.jsonl
//	poisesim -serve :9444 -plan plan.jsonl -profile-out profs   # terminal 1
//	poisesim -worker http://HOST:9444                           # terminal 2..N
//
// -serve -prune drives the whole staged refinement loop as one
// campaign — each round's plan is published as the next generation, so
// the manual emit/shard/merge round-trip of the file flow disappears:
//
//	poisesim -workload ii -prune -serve :9444 -cache rounds -profile-out pruned
//	poisesim -worker http://HOST:9444
//
// Cell plans from poisebench serve the same way; the plan file's
// header picks the pipeline, exactly as it does for -shard.

// fleetFlags carries the -serve/-worker flags together with the
// pre-existing mode flags they constrain, so every combination rule
// lives in one pure, table-testable function.
type fleetFlags struct {
	serve  string // -serve: coordinator listen address
	worker string // -worker: coordinator base URL to pull leases from

	leaseTasks int           // -lease-tasks (serve)
	leaseTTL   time.Duration // -lease-ttl (serve)
	dieAfter   int           // -die-after (worker, chaos/CI)
	taskDelay  time.Duration // -task-delay (worker, chaos/CI)

	// Pre-existing flags the fleet modes interact with.
	planPath   string
	emitPlan   string
	shard      string
	merge      string
	profileDir string
	sweep      bool
	best       bool
	prune      bool
}

// validateFleetFlags rejects every inconsistent flag combination
// before anything listens, connects or simulates.
func validateFleetFlags(f fleetFlags) error {
	switch {
	case f.serve == "" && f.worker == "":
		return fmt.Errorf("fleet mode needs -serve or -worker")
	case f.serve != "" && f.worker != "":
		return fmt.Errorf("-serve and -worker are mutually exclusive")
	case f.emitPlan != "":
		return fmt.Errorf("-emit-plan cannot combine with -serve/-worker (the coordinator publishes plans itself)")
	case f.shard != "":
		return fmt.Errorf("-shard cannot combine with -serve/-worker (workers lease tasks instead)")
	case f.merge != "":
		return fmt.Errorf("-merge-shards cannot combine with -serve/-worker (the coordinator merges results itself)")
	case f.sweep:
		return fmt.Errorf("-sweep cannot combine with -serve/-worker")
	case f.best:
		return fmt.Errorf("-best cannot combine with -serve/-worker")
	case f.leaseTasks < 0:
		return fmt.Errorf("-lease-tasks must be positive")
	case f.leaseTTL < 0:
		return fmt.Errorf("-lease-ttl must be positive")
	case f.dieAfter < 0:
		return fmt.Errorf("-die-after must be positive")
	case f.taskDelay < 0:
		return fmt.Errorf("-task-delay must be positive")
	}
	if f.serve != "" {
		switch {
		case f.dieAfter != 0 || f.taskDelay != 0:
			return fmt.Errorf("-die-after and -task-delay are worker flags (use with -worker)")
		case f.planPath != "" && f.prune:
			return fmt.Errorf("-serve takes either -plan (a fixed plan file) or -prune (staged refinement), not both")
		case f.planPath == "" && !f.prune:
			return fmt.Errorf("-serve needs a campaign source: -plan or -prune")
		case f.profileDir == "":
			return fmt.Errorf("-serve needs -profile-out for the merged output")
		}
		return nil
	}
	// Worker: the plan and all merge policy arrive over the wire.
	switch {
	case f.planPath != "":
		return fmt.Errorf("-plan is a coordinator flag; the worker receives the plan from -worker URL")
	case f.profileDir != "":
		return fmt.Errorf("-profile-out is a coordinator flag; the coordinator merges and saves")
	case f.leaseTasks != 0 || f.leaseTTL != 0:
		return fmt.Errorf("-lease-tasks and -lease-ttl are coordinator flags (use with -serve)")
	}
	return nil
}

// runFleetMode dispatches -serve/-worker after validating the flag
// set, deriving the sweep options and profile tag exactly as the
// file-based modes do so both flows key the same cache entries.
func runFleetMode(a sweepModeArgs, f fleetFlags) {
	if err := validateFleetFlags(f); err != nil {
		fatal(err)
	}
	opts := a.sweepOptions()
	tag := profile.SweepTag(a.cfg, opts)
	if a.seed != 0 {
		tag = fmt.Sprintf("%s-seed%d", tag, a.seed)
	}
	if f.worker != "" {
		runFleetWorker(a, f, opts)
		return
	}
	runFleetServe(a, f, opts, tag)
}

// runFleetServe runs the coordinator: build the campaign from -plan or
// -prune, serve it to completion, then save the merged results under
// -profile-out with the exact assembly code of the single-process
// modes (which is what makes the output byte-identical to them).
func runFleetServe(a sweepModeArgs, f fleetFlags, opts profile.SweepOptions, tag string) {
	camp, save, err := serveCampaign(a, f, opts, tag)
	if err != nil {
		fatal(err)
	}
	coord, err := fleet.NewCoordinator(camp, fleet.Options{
		LeaseTasks: f.leaseTasks,
		LeaseTTL:   f.leaseTTL,
		Logf:       stdoutLogf,
	})
	if err != nil {
		fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() { fmt.Printf("fleet: serving on %s\n", <-addrCh) }()
	res, err := coord.Serve(a.ctx, f.serve, addrCh)
	if err != nil {
		fatal(err)
	}
	if err := save(res); err != nil {
		fatal(err)
	}
}

// serveCampaign builds the coordinator's campaign and the matching
// save step: a profile or cell plan file (sniffed by header, like
// -shard), or the staged refinement campaign under -prune.
func serveCampaign(a sweepModeArgs, f fleetFlags, opts profile.SweepOptions, tag string) (fleet.Campaign, func([]fleet.Result) error, error) {
	if f.prune {
		kernels := sim.DistinctKernels(a.selected)
		tags := make(map[string]string, len(kernels))
		for _, k := range kernels {
			tags[k.Name] = tag
		}
		// -cache persists completed rounds so an interrupted campaign
		// resumes instead of re-simulating (and the file-based round
		// flow can pick up where the service left off, or vice versa).
		camp, err := fleet.NewRefineCampaign(a.cfg, kernels, tags, opts, profile.Store{Dir: a.cacheDir})
		if err != nil {
			return nil, nil, err
		}
		save := func([]fleet.Result) error {
			names, err := camp.SaveTo(profile.Store{Dir: f.profileDir})
			if err != nil {
				return err
			}
			fmt.Printf("fleet: assembled %d pruned profiles -> %s\n", len(names), f.profileDir)
			return nil
		}
		return camp, save, nil
	}
	switch format := planFormat(f.planPath); format {
	case gridplan.ProfilePlanFormat:
		plan, err := gridplan.ReadPlanFile(f.planPath)
		if err != nil {
			return nil, nil, err
		}
		save := func(res []fleet.Result) error {
			names, err := fleet.SaveProfiles(profile.Store{Dir: f.profileDir}, res)
			if err != nil {
				return err
			}
			fmt.Printf("fleet: saved %d profiles -> %s\n", len(names), f.profileDir)
			return nil
		}
		return fleet.ProfileCampaign{Plan: plan}, save, nil
	case gridplan.CellPlanFormat:
		plan, err := gridplan.ReadCellPlanFile(f.planPath)
		if err != nil {
			return nil, nil, err
		}
		if len(plan.Cells) == 0 {
			return nil, nil, fmt.Errorf("cell plan %s is empty", f.planPath)
		}
		save := func(res []fleet.Result) error {
			_, grid, n, err := fleet.SaveCells(results.Store{Dir: f.profileDir}, res)
			if err != nil {
				return err
			}
			fmt.Printf("fleet: saved %d cells of grid %s -> %s\n", n, grid, f.profileDir)
			return nil
		}
		return fleet.CellCampaign{Plan: plan}, save, nil
	default:
		return nil, nil, fmt.Errorf("plan %s: unknown format %q", f.planPath, format)
	}
}

// runFleetWorker runs one long-lived worker against the coordinator at
// -worker URL. Both executors register, so one worker serves profile
// sweeps, refinement rounds and experiment cell grids alike — the
// coordinator's plan format picks the pipeline, and the plan's digests
// verify this process's flags reproduce the coordinator's
// configuration before anything simulates.
func runFleetWorker(a sweepModeArgs, f fleetFlags, opts profile.SweepOptions) {
	host, _ := os.Hostname()
	name := fmt.Sprintf("%s-%d", host, os.Getpid())
	w := &fleet.Worker{
		Base: f.worker,
		Name: name,
		Executors: map[string]fleet.Executor{
			gridplan.ProfilePlanFormat: fleet.ProfileExecutor{
				Cfg: a.cfg, Kernels: catalogueKernels(a.cat), Opts: opts,
			},
			gridplan.CellPlanFormat: fleet.CellExecutor{H: a.harness()},
		},
		Logf: stdoutLogf,
	}
	// -die-after and -task-delay are the CI chaos hooks: the fleet
	// round-trip kills one worker mid-lease and slows another until
	// stealing fires, then byte-diffs the merged output anyway. With
	// -snapshot-dir the death is checkpointed: the hook fires the
	// interrupt control, so the next task stops at a safe point, writes
	// its checkpoint to the shared store, and the lease lapses for
	// another worker to resume the task bit-identically.
	if f.dieAfter > 0 || f.taskDelay > 0 {
		w.BeforeTask = func(done int) error {
			if f.dieAfter > 0 && done >= f.dieAfter {
				if a.ictl != nil {
					a.ictl.Trigger()
					return nil
				}
				return fmt.Errorf("worker dying after %d tasks (-die-after)", done)
			}
			if f.taskDelay > 0 {
				select {
				case <-a.ctx.Done():
					return a.ctx.Err()
				case <-time.After(f.taskDelay):
				}
			}
			return nil
		}
	}
	if err := w.Run(a.ctx); err != nil {
		if errors.Is(err, sim.ErrInterrupted) {
			// Preemption is a clean exit: the in-flight task is
			// checkpointed in -snapshot-dir and any worker pointed there
			// picks it up once the lease lapses.
			fmt.Printf("worker %s: preempted; checkpoint saved under %s\n", name, a.snapDir)
			return
		}
		fatal(err)
	}
	fmt.Printf("worker %s: campaign complete\n", name)
}

// stdoutLogf adapts fleet's Logf convention (printf format, no
// newline) to stdout lines, where CI greps the coordinator's final
// stats line for the expiry and steal counters.
func stdoutLogf(format string, args ...any) {
	fmt.Printf(format+"\n", args...)
}
