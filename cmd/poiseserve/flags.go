package main

import (
	"errors"
	"fmt"
)

// serveFlags is the parsed command line, kept as a plain struct so
// validation is a pure function the tests can drive without touching
// the flag package or the network.
type serveFlags struct {
	listen     string
	weights    string
	profiles   string
	samples    string
	weightsOut string
	minRetrain int
	sms        int
	stepN      int
	stepP      int
	cache      string
	maxBody    int64
	pprofAddr  string
}

// validateServeFlags rejects configurations that could not serve: it
// runs before any file is opened or port bound, so a typo fails fast
// with one clear message instead of a half-started service.
func validateServeFlags(f serveFlags) error {
	if f.listen == "" {
		return errors.New("poiseserve: -listen must not be empty")
	}
	if f.minRetrain < 0 {
		return fmt.Errorf("poiseserve: -min-retrain %d is negative (0 means the default threshold)", f.minRetrain)
	}
	if f.sms < 1 {
		return fmt.Errorf("poiseserve: -sms %d: need at least one SM to profile ingested traces", f.sms)
	}
	if f.stepN < 1 || f.stepP < 1 {
		return fmt.Errorf("poiseserve: sweep strides must be >= 1 (got -stepn %d -stepp %d)", f.stepN, f.stepP)
	}
	if f.maxBody < 0 {
		return fmt.Errorf("poiseserve: -max-body %d is negative (0 means the default bound)", f.maxBody)
	}
	if f.weightsOut != "" && f.weightsOut == f.weights {
		return errors.New("poiseserve: -weights-out must differ from -weights (retrains would clobber the boot model)")
	}
	if f.pprofAddr != "" && f.pprofAddr == f.listen {
		return errors.New("poiseserve: -pprof must differ from -listen (the debug endpoints must never share the service port)")
	}
	return nil
}
