// Command poiseserve runs the Poise decision service: trained weights
// behind an HTTP+JSONL API that answers "feature vector → (N, p)" at
// memoised-lookup speed, serves the static policy table, and closes
// the online-adaptation loop by ingesting traces and retraining in the
// background with atomic hot-swap of the active model.
//
// Endpoints:
//
//	POST /decide  one JSON request per line in, a count header plus one
//	              reply per line out
//	GET  /table   the static policy table (byte-identical to
//	              `poisesim -best` over the same -profiles directory)
//	POST /ingest  a raw poisetrace container (optionally gzipped) or a
//	              pre-characterised JSON record; appends to the sample
//	              log and triggers a background retrain
//	GET  /stats   service counters (decisions, cache hits, retrains,
//	              latency quantiles)
//
// The sample log (-samples) is the durable adaptation state: restart
// the service over the same log and it reconverges to the same model.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"poise/internal/config"
	"poise/internal/poise"
	"poise/internal/profile"
	"poise/internal/serve"
)

func main() {
	var f serveFlags
	flag.StringVar(&f.listen, "listen", "127.0.0.1:9666", "listen address (use :0 for an ephemeral port)")
	flag.StringVar(&f.weights, "weights", "", "weights JSON to boot from ('' = the embedded default weights)")
	flag.StringVar(&f.profiles, "profiles", "", "profile directory backing GET /table ('' disables the endpoint)")
	flag.StringVar(&f.samples, "samples", "", "durable sample log path ('' = memory-only)")
	flag.StringVar(&f.weightsOut, "weights-out", "", "rewrite this weights JSON after every successful retrain")
	flag.IntVar(&f.minRetrain, "min-retrain", 0, "samples required before the first retrain (0 = default)")
	flag.IntVar(&f.sms, "sms", 8, "number of SMs for ingest profiling (scaled memory system)")
	flag.IntVar(&f.stepN, "stepn", 3, "ingest profile sweep stride in N")
	flag.IntVar(&f.stepP, "stepp", 3, "ingest profile sweep stride in p")
	flag.StringVar(&f.cache, "cache", "", "profile cache directory for ingest sweeps ('' disables)")
	flag.Int64Var(&f.maxBody, "max-body", 0, "request body bound in bytes (0 = default)")
	flag.StringVar(&f.pprofAddr, "pprof", "", "serve net/http/pprof debug endpoints on this separate address ('' = off; never exposed on -listen)")
	flag.Parse()

	if err := validateServeFlags(f); err != nil {
		fatal(err)
	}

	if f.pprofAddr != "" {
		_, stopPprof, err := startPprofServer(f.pprofAddr, logf)
		if err != nil {
			fatal(err)
		}
		defer stopPprof()
	}

	w, src, err := loadServeWeights(f.weights)
	if err != nil {
		fatal(err)
	}

	s, err := serve.New(serve.Config{
		Weights:    w,
		ProfileDir: f.profiles,
		SimCfg:     config.Default().Scale(f.sms),
		Sweep:      profile.SweepOptions{StepN: f.stepN, StepP: f.stepP},
		SweepCache: f.cache,
		SampleLog:  f.samples,
		Retrain:    serve.RetrainOptions{Min: f.minRetrain, WeightsOut: f.weightsOut},
		MaxBody:    f.maxBody,
		Logf:       logf,
	})
	if err != nil {
		fatal(err)
	}

	// SIGINT/SIGTERM turn into a graceful shutdown: in-flight requests
	// drain, then the retrainer folds any pending samples (writing the
	// final -weights-out) before the process exits.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	addrCh := make(chan string, 1)
	go func() { logf("poiseserve: serving %s on %s", src, <-addrCh) }()
	if err := s.Serve(ctx, f.listen, addrCh); err != nil {
		fatal(err)
	}
	logf("poiseserve: clean shutdown")
}

// loadServeWeights resolves the boot model: an explicit file, or the
// embedded default weights from the last `poisetrain -emit`.
func loadServeWeights(path string) (poise.Weights, string, error) {
	if path != "" {
		w, err := poise.LoadWeights(path)
		return w, path, err
	}
	w, ok := poise.DefaultWeights()
	if !ok {
		return poise.Weights{}, "", fmt.Errorf("poiseserve: no embedded default weights in this build; pass -weights")
	}
	return w, "embedded default weights", nil
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "poiseserve:", err)
	os.Exit(1)
}
