package main

import (
	"strings"
	"testing"
)

func validFlags() serveFlags {
	return serveFlags{
		listen: "127.0.0.1:0",
		sms:    8,
		stepN:  3,
		stepP:  3,
	}
}

func TestValidateServeFlags(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*serveFlags)
		wantErr string // "" = valid
	}{
		{"defaults", func(f *serveFlags) {}, ""},
		{"full", func(f *serveFlags) {
			f.weights = "w.json"
			f.profiles = "profiles"
			f.samples = "samples.jsonl"
			f.weightsOut = "live.json"
			f.minRetrain = 16
			f.maxBody = 1 << 20
		}, ""},
		{"empty-listen", func(f *serveFlags) { f.listen = "" }, "-listen"},
		{"negative-min-retrain", func(f *serveFlags) { f.minRetrain = -1 }, "-min-retrain"},
		{"zero-sms", func(f *serveFlags) { f.sms = 0 }, "-sms"},
		{"zero-stepn", func(f *serveFlags) { f.stepN = 0 }, "strides"},
		{"zero-stepp", func(f *serveFlags) { f.stepP = 0 }, "strides"},
		{"negative-max-body", func(f *serveFlags) { f.maxBody = -1 }, "-max-body"},
		{"out-clobbers-in", func(f *serveFlags) {
			f.weights = "w.json"
			f.weightsOut = "w.json"
		}, "-weights-out"},
		{"pprof-off", func(f *serveFlags) { f.pprofAddr = "" }, ""},
		{"pprof-separate", func(f *serveFlags) { f.pprofAddr = "127.0.0.1:9667" }, ""},
		{"pprof-on-service-port", func(f *serveFlags) { f.pprofAddr = f.listen }, "-pprof"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := validFlags()
			tc.mutate(&f)
			err := validateServeFlags(f)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid flags rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid flags accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
