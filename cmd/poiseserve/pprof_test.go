package main

import (
	"fmt"
	"io"
	"net/http"
	"testing"
)

// TestPprofServerServesIndex boots the opt-in debug listener on an
// ephemeral port and checks the pprof index answers — and that it is a
// separate listener from the service, not a mux shared with /decide.
func TestPprofServerServesIndex(t *testing.T) {
	addr, stop, err := startPprofServer("127.0.0.1:0", func(string, ...any) {})
	if err != nil {
		t.Fatalf("startPprofServer: %v", err)
	}
	defer stop()

	resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/", addr))
	if err != nil {
		t.Fatalf("GET /debug/pprof/: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ status = %d, want 200", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if len(body) == 0 {
		t.Fatal("pprof index returned an empty body")
	}
}

func TestPprofServerRejectsBusyAddr(t *testing.T) {
	addr, stop, err := startPprofServer("127.0.0.1:0", func(string, ...any) {})
	if err != nil {
		t.Fatalf("startPprofServer: %v", err)
	}
	defer stop()
	if _, stop2, err := startPprofServer(addr, func(string, ...any) {}); err == nil {
		stop2()
		t.Fatal("second listener on the same address unexpectedly succeeded")
	}
}
