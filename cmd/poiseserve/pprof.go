package main

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// startPprofServer exposes the runtime profiling endpoints on their own
// listener, opt-in via -pprof. The handlers are mounted on a dedicated
// mux (never the service's), so the decision API cannot leak debug
// endpoints, and the address is typically a loopback port. It returns
// the bound address and a stop function that closes the listener.
func startPprofServer(addr string, logf func(string, ...any)) (string, func(), error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logf("poiseserve: pprof server: %v", err)
		}
	}()
	logf("poiseserve: pprof debug endpoints on %s", ln.Addr())
	return ln.Addr().String(), func() { srv.Close() }, nil
}
