package workloads

import (
	"reflect"
	"testing"
)

func TestSeededCatalogueCanonicalAtZero(t *testing.T) {
	a := NewCatalogue(Small)
	b := NewCatalogueSeeded(Small, 0)
	for _, name := range a.Names() {
		wa, wb := a.Must(name), b.Must(name)
		for i := range wa.Kernels {
			if !reflect.DeepEqual(wa.Kernels[i], wb.Kernels[i]) {
				t.Fatalf("seed 0 must be canonical: %s kernel %d differs", name, i)
			}
		}
	}
}

func TestSeededCataloguePerturbsStochasticStreams(t *testing.T) {
	a := NewCatalogueSeeded(Small, 0)
	b := NewCatalogueSeeded(Small, 99)
	// Every kernel's jitter seed changes...
	ka, kb := a.Must("ii").Kernels[0], b.Must("ii").Kernels[0]
	if ka.Seed == kb.Seed {
		t.Fatal("kernel seed unchanged by catalogue seed")
	}
	// ...and the irregular address patterns are re-seeded (bfs has
	// them), while structure (footprints, grids) is untouched.
	ba, bb := a.Must("bfs").Kernels[0], b.Must("bfs").Kernels[0]
	if reflect.DeepEqual(ba.Patterns, bb.Patterns) {
		t.Fatal("irregular patterns unchanged by catalogue seed")
	}
	if ba.Blocks != bb.Blocks || ba.WarpsPerBlock != bb.WarpsPerBlock ||
		ba.Iters != bb.Iters || len(ba.Patterns) != len(bb.Patterns) {
		t.Fatal("reseeding must not change workload structure")
	}
	// Same seed twice is identical.
	c := NewCatalogueSeeded(Small, 99)
	if !reflect.DeepEqual(b.Must("bfs").Kernels[0], c.Must("bfs").Kernels[0]) {
		t.Fatal("same seed must rebuild identically")
	}
}
