// Package workloads defines the synthetic benchmark suite standing in
// for the paper's CUDA workloads (Table IIIa). Each workload is built
// from the pattern primitives in package trace and calibrated to the
// locality signature the paper reports for its namesake:
//
//   - the Pbest ordering of Table IIIa (how much a 64x L1 helps),
//   - the intra-/inter-warp hit split and reuse distance of Fig. 4
//     (ii: ~97% intra-warp, R~236; bfs: ~77% intra, R~1136;
//     syr2k: ~40% intra / 60% inter, R~240; cfd: ~2% intra / 98% inter,
//     R~3161),
//   - and the In (instructions between global loads) regime that
//     separates memory-sensitive from compute-intensive kernels.
//
// The training set (gco, pvr, ccl) and evaluation set (the rest) are
// disjoint families with different pattern mixes and parameters, so the
// paper's "unseen applications" evaluation discipline is preserved.
package workloads

import (
	"fmt"
	"sort"

	"poise/internal/runner"
	"poise/internal/sim"
	"poise/internal/trace"
)

// Size scales workload iteration counts. Full runs reproduce paper-like
// epoch counts; Small keeps unit tests fast.
type Size int

const (
	// Small is sized for unit tests: kernels of a few hundred thousand
	// scheduler-issue slots.
	Small Size = iota
	// Medium is the default experiment size.
	Medium
	// Large approaches the paper's multi-million-cycle kernels.
	Large
)

func (s Size) factor() int {
	switch s {
	case Small:
		return 1
	case Medium:
		return 4
	default:
		return 16
	}
}

// Catalogue builds every named workload at the given size.
// The bool return of Get-style lookups is avoided: unknown names panic
// in Must, and Names lists valid ones.
type Catalogue struct {
	size Size
	all  map[string]*sim.Workload
}

// NewCatalogue constructs the full suite at the given size.
func NewCatalogue(size Size) *Catalogue {
	return NewCatalogueSeeded(size, 0)
}

// NewCatalogueSeeded constructs the suite with every kernel's
// stochastic streams re-seeded from seed: the kernel's iteration
// jitter and the irregular address patterns are XORed with a
// splitmix-mixed derivation of seed, so different seeds give
// decorrelated workload variants while the calibrated footprints and
// locality structure stay intact. A seed of 0 yields the canonical
// catalogue bit-for-bit.
func NewCatalogueSeeded(size Size, seed int64) *Catalogue {
	c := &Catalogue{size: size, all: map[string]*sim.Workload{}}
	var mixed int64
	if seed != 0 {
		mixed = runner.SubSeed(seed, 0)
	}
	for _, b := range builders {
		w := b.build(size)
		w.MemorySensitive = b.memSensitive
		if mixed != 0 {
			for _, k := range w.Kernels {
				k.Seed ^= mixed
				for i, p := range k.Patterns {
					k.Patterns[i] = trace.Reseed(p, uint64(mixed))
				}
			}
		}
		c.all[w.Name] = w
	}
	return c
}

// Put inserts w into the catalogue, replacing any existing workload
// with the same name. Trace-backed workloads (package traceio) use it
// to register alongside — or shadow, for record/replay comparisons —
// the synthetic suite.
func (c *Catalogue) Put(w *sim.Workload) {
	c.all[w.Name] = w
}

// Get returns the workload with the given name.
func (c *Catalogue) Get(name string) (*sim.Workload, error) {
	w, ok := c.all[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q", name)
	}
	return w, nil
}

// Must returns the workload or panics; for tests and tables with fixed
// names.
func (c *Catalogue) Must(name string) *sim.Workload {
	w, err := c.Get(name)
	if err != nil {
		panic(err)
	}
	return w
}

// Names returns all workload names, sorted.
func (c *Catalogue) Names() []string {
	var out []string
	for n := range c.all {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TrainingSet returns the training workloads (paper: gco, pvr, ccl).
func (c *Catalogue) TrainingSet() []*sim.Workload {
	return c.pick(TrainingNames())
}

// EvalSet returns the memory-sensitive evaluation workloads in the
// paper's Table IIIa order (sorted by Pbest).
func (c *Catalogue) EvalSet() []*sim.Workload {
	return c.pick(EvalNames())
}

// ComputeSet returns the memory-insensitive workloads of Fig. 16.
func (c *Catalogue) ComputeSet() []*sim.Workload {
	return c.pick(ComputeNames())
}

func (c *Catalogue) pick(names []string) []*sim.Workload {
	out := make([]*sim.Workload, 0, len(names))
	for _, n := range names {
		out = append(out, c.Must(n))
	}
	return out
}

// TrainingNames lists the training-set workloads.
func TrainingNames() []string { return []string{"gco", "pvr", "ccl"} }

// EvalNames lists the evaluation set in the paper's order.
func EvalNames() []string {
	return []string{"syr2k", "syrk", "mm", "ii", "gsmv", "mvt", "bicg", "ss", "atax", "bfs", "kmeans"}
}

// ComputeNames lists the compute-intensive workloads of Fig. 16.
func ComputeNames() []string {
	return []string{"wc", "covar", "gramschm", "sradv2", "hybridsort", "hotspot", "pathfinder"}
}

type builder struct {
	name         string
	memSensitive bool
	build        func(Size) *sim.Workload
}

var builders []builder

func register(name string, memSensitive bool, f func(Size) *sim.Workload) {
	builders = append(builders, builder{name: name, memSensitive: memSensitive, build: f})
}

// ---- shared construction helpers -------------------------------------

// region derives a stable pattern-region id from a workload/kernel name
// and a slot index, so the address spaces of different kernels never
// collide and rebuilding a catalogue yields identical streams.
func region(name string, idx int) int {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	h ^= uint32(idx) * 0x9e3779b9
	// Keep regions positive and well below the 2^24 region ceiling
	// implied by the 40-bit region shift in package trace.
	return int(h%0x3fffff) + 1
}

// memBody builds the canonical memory-sensitive loop body: nLoads loads
// with gap independent ALU instructions after each and useDist
// independent slots before the dependent use.
func memBody(nLoads, gap, useDist int) (body []trace.Instr, slots int) {
	b := &trace.BodyBuilder{}
	for i := 0; i < nLoads; i++ {
		b.Load(useDist)
		b.ALU(gap)
	}
	return b.Body(), b.Slots()
}

// kernel assembles a kernel with the standard grid shape: enough blocks
// to fill every SM's schedulers and then some, so block refill is
// exercised.
func kernel(name string, body []trace.Instr, pats []trace.Pattern, iters, warpsPerBlock, blocks int) *trace.Kernel {
	return &trace.Kernel{
		Name:          name,
		Body:          body,
		Patterns:      pats,
		Iters:         iters,
		WarpsPerBlock: warpsPerBlock,
		Blocks:        blocks,
		Seed:          int64(len(name)) * 7919,
	}
}
