package workloads

import (
	"fmt"

	"poise/internal/sim"
	"poise/internal/trace"
)

// Evaluation-set workloads (paper Table IIIa, bottom half). Parameters
// are chosen so each workload's locality signature matches what the
// paper reports for its namesake; see the package comment.

func init() {
	register("syr2k", true, buildSyr2k)
	register("syrk", true, buildSyrk)
	register("mm", true, buildMM)
	register("ii", true, buildII)
	register("gsmv", true, buildGSMV)
	register("mvt", true, buildMVT)
	register("bicg", true, buildBICG)
	register("ss", true, buildSS)
	register("atax", true, buildATAX)
	register("bfs", true, buildBFS)
	register("kmeans", true, buildKMeans)
	register("cfd", true, buildCFD)
}

// buildSyr2k: symmetric rank-2k update. Each warp re-reads its own A/B
// rows (private reuse) while every warp shares the same counterpart
// rows (strong inter-warp reuse). At full TLP the combined footprint
// thrashes the 128-line L1 badly, so a huge cache helps enormously
// (paper Pbest 14.13x); intra/inter hit split ~40/60, R ~ 240.
func buildSyr2k(s Size) *sim.Workload {
	name := "syr2k"
	body, slots := memBody(2, 2, 1)
	pats := []trace.Pattern{
		trace.PrivateSweep{Region: region(name, 0), Lines: 20, Step: 1},
		trace.SharedSweep{Region: region(name, 1), Lines: 220, Step: 1, Lag: 0, Dwell: 2},
	}
	if slots != len(pats) {
		panic("syr2k: slot mismatch")
	}
	k := kernel(name+"#0", body, pats, 260*s.factor(), 8, 48)
	return &sim.Workload{Name: name, Kernels: []*trace.Kernel{k}}
}

// buildSyrk: rank-k update; like syr2k with one shared operand stream
// and slightly weaker private reuse (paper Pbest 9.03x). The kernel is
// monolithic, with a phase switch halfway through (larger footprint in
// the second phase) — the dynamic behaviour that lets Poise beat even
// Static-Best on this workload (paper §VII-D).
func buildSyrk(s Size) *sim.Workload {
	name := "syrk"
	body, slots := memBody(2, 3, 1)
	iters := 300 * s.factor()
	pats := []trace.Pattern{
		trace.PrivateSweep{Region: region(name, 0), Lines: 24, Step: 1},
		trace.Phased{
			SwitchAt: iters / 2,
			A:        trace.SharedSweep{Region: region(name, 1), Lines: 160, Step: 1, Dwell: 2},
			B:        trace.SharedSweep{Region: region(name, 2), Lines: 640, Step: 1, Dwell: 2},
		},
	}
	if slots != len(pats) {
		panic("syrk: slot mismatch")
	}
	k := kernel(name+"#0", body, pats, iters, 8, 48)
	return &sim.Workload{Name: name, Kernels: []*trace.Kernel{k}}
}

// buildMM: blocked matrix multiply (paper: MapReduce Matrix Mult.,
// 23 kernels, Pbest 6.20x). Private row reuse plus a shared tile of the
// other operand. Kernel variants sweep tile sizes, standing in for the
// application's many launches.
func buildMM(s Size) *sim.Workload {
	name := "mm"
	w := &sim.Workload{Name: name}
	tiles := []struct{ priv, shared int }{
		{16, 192}, {24, 256}, {12, 128}, {32, 320},
	}
	for i, t := range tiles {
		body, slots := memBody(2, 2, 1)
		b := &trace.BodyBuilder{}
		_ = b
		pats := []trace.Pattern{
			trace.PrivateSweep{Region: region(name, 3*i), Lines: t.priv, Step: 1},
			trace.SharedSweep{Region: region(name, 3*i+1), Lines: t.shared, Step: 1, Lag: 2, Dwell: 2},
		}
		if slots != len(pats) {
			panic("mm: slot mismatch")
		}
		k := kernel(fmt.Sprintf("%s#%d", name, i), body, pats, 220*s.factor(), 8, 40)
		w.Kernels = append(w.Kernels, k)
	}
	return w
}

// buildII: inverted index (paper: MapReduce, 118 kernels, Pbest 5.94x;
// Fig. 4 reports ~97% intra-warp hits with R~236). Each warp repeatedly
// scans its own small posting list; sharing is negligible. Kernel
// variants sweep the per-warp footprint.
func buildII(s Size) *sim.Workload {
	name := "ii"
	w := &sim.Workload{Name: name}
	foot := []int{20, 28, 24, 36, 16}
	for i, lines := range foot {
		body, slots := memBody(2, 2, 1)
		pats := []trace.Pattern{
			trace.PrivateSweep{Region: region(name, 3*i), Lines: lines, Step: 1},
			trace.PrivateSweep{Region: region(name, 3*i+1), Lines: 8, Step: 1, Dwell: 4},
		}
		if slots != len(pats) {
			panic("ii: slot mismatch")
		}
		k := kernel(fmt.Sprintf("%s#%d", name, i), body, pats, 240*s.factor(), 8, 48)
		w.Kernels = append(w.Kernels, k)
	}
	return w
}

// matVec builds the matrix-vector family (gsmv, mvt, bicg, atax):
// a streaming matrix operand with no temporal reuse plus a shared
// vector with strong inter-warp reuse. Monolithic single kernels
// (paper: 1-2 kernels each) with a phase switch for mvt/atax.
func matVec(name string, blockLines, vecLines, gap int, phased bool, s Size) *sim.Workload {
	iters := 320 * s.factor()
	// Matrix-vector bodies: each warp re-sweeps its private matrix row
	// block (re-read across the A.x and At.y halves of these kernels),
	// gathers from a shared vector staggered across warps (Lag defeats
	// lockstep community caching), and takes a minor streaming operand
	// with intra-line spatial locality. The block+vector footprint fits
	// the L1 only under a small p — the PCAL premise — while the stream
	// keeps a bounded mandatory DRAM component.
	b := &trace.BodyBuilder{}
	b.Load(1)
	b.ALU(gap)
	b.Load(1)
	b.ALU(gap)
	b.Load(1)
	b.ALU(gap)
	b.Load(1)
	b.ALU(gap)
	var vec trace.Pattern = trace.SharedSweep{Region: region(name, 1), Lines: vecLines, Step: 1, Lag: 5}
	if phased {
		vec = trace.Phased{
			SwitchAt: iters / 2,
			A:        trace.SharedSweep{Region: region(name, 1), Lines: vecLines, Step: 1, Lag: 5},
			B:        trace.SharedSweep{Region: region(name, 4), Lines: vecLines * 2, Step: 1, Lag: 5},
		}
	}
	pats := []trace.Pattern{
		trace.PrivateSweep{Region: region(name, 0), Lines: blockLines, Step: 1},
		vec,
		trace.PrivateSweep{Region: region(name, 2), Lines: blockLines / 2, Step: 1},
		trace.Stream{Region: region(name, 3), WrapLines: 1 << 16, Dwell: 4},
	}
	if b.Slots() != len(pats) {
		panic(name + ": slot mismatch")
	}
	k := kernel(name+"#0", b.Body(), pats, iters, 8, 48)
	return &sim.Workload{Name: name, Kernels: []*trace.Kernel{k}}
}

func buildGSMV(s Size) *sim.Workload { return matVec("gsmv", 20, 36, 2, true, s) }
func buildMVT(s Size) *sim.Workload  { return matVec("mvt", 24, 40, 3, true, s) }
func buildBICG(s Size) *sim.Workload { return matVec("bicg", 28, 44, 2, false, s) }
func buildATAX(s Size) *sim.Workload { return matVec("atax", 30, 48, 3, true, s) }

// buildSS: similarity score (paper: MapReduce, 164 kernels, Pbest
// 2.85x). A moderate private footprint compared against a shared
// corpus; variants sweep both.
func buildSS(s Size) *sim.Workload {
	name := "ss"
	w := &sim.Workload{Name: name}
	cfgs := []struct{ priv, shared int }{
		{24, 300}, {36, 380}, {16, 260}, {30, 340},
	}
	for i, c := range cfgs {
		body, slots := memBody(2, 3, 1)
		pats := []trace.Pattern{
			trace.PrivateSweep{Region: region(name, 3*i), Lines: c.priv, Step: 1},
			trace.SharedSweep{Region: region(name, 3*i+1), Lines: c.shared, Step: 1, Lag: 4, Dwell: 2},
		}
		if slots != len(pats) {
			panic("ss: slot mismatch")
		}
		k := kernel(fmt.Sprintf("%s#%d", name, i), body, pats, 200*s.factor(), 8, 40)
		w.Kernels = append(w.Kernels, k)
	}
	return w
}

// buildBFS: breadth-first search (Rodinia; paper Pbest 1.55x; Fig. 4:
// ~77% intra-warp hits, R~1136). Irregular accesses over a large
// per-warp neighbourhood — locality exists but the footprint defies a
// 128-line L1 and mostly defies even throttling; plus a small shared
// frontier. Iteration jitter models the irregular work distribution.
func buildBFS(s Size) *sim.Workload {
	name := "bfs"
	body, slots := memBody(2, 2, 1)
	pats := []trace.Pattern{
		trace.IrregularPrivate{Region: region(name, 0), Lines: 48, Seed: 0xb5, Dwell: 2},
		trace.IrregularShared{Region: region(name, 1), Lines: 1500, Seed: 0xb7, Cluster: 6, Dwell: 2},
	}
	if slots != len(pats) {
		panic("bfs: slot mismatch")
	}
	k := kernel(name+"#0", body, pats, 260*s.factor(), 8, 48)
	k.IterJitter = 0.3
	w := &sim.Workload{Name: name, Kernels: []*trace.Kernel{k}}
	// A second, smaller-frontier kernel (bfs launches one kernel per
	// level; we keep two representative levels).
	body2, _ := memBody(2, 2, 1)
	pats2 := []trace.Pattern{
		trace.IrregularPrivate{Region: region(name, 2), Lines: 40, Seed: 0xb6, Dwell: 2},
		trace.IrregularShared{Region: region(name, 3), Lines: 1100, Seed: 0xb8, Cluster: 6, Dwell: 2},
	}
	k2 := kernel(name+"#1", body2, pats2, 200*s.factor(), 8, 40)
	k2.IterJitter = 0.3
	w.Kernels = append(w.Kernels, k2)
	return w
}

// buildKMeans: k-means (Rodinia, Pbest 1.42x). Streaming points against
// a shared centroid table slightly too large to survive baseline
// thrashing; a big cache gives a modest, bounded win.
func buildKMeans(s Size) *sim.Workload {
	name := "kmeans"
	b := &trace.BodyBuilder{}
	b.Load(1)
	b.ALU(3)
	b.Load(1)
	b.ALU(3)
	b.Load(1)
	b.ALU(3)
	pats := []trace.Pattern{
		trace.SharedSweep{Region: region(name, 0), Lines: 170, Step: 1, Lag: 9},
		trace.SharedSweep{Region: region(name, 1), Lines: 120, Step: 1, Lag: 11},
		trace.Stream{Region: region(name, 2), WrapLines: 1 << 16, Dwell: 4},
	}
	if b.Slots() != len(pats) {
		panic("kmeans: slot mismatch")
	}
	k := kernel(name+"#0", b.Body(), pats, 300*s.factor(), 8, 48)
	return &sim.Workload{Name: name, Kernels: []*trace.Kernel{k}}
}

// buildCFD: Rodinia cfd solver, used by the paper only in the Fig. 4
// locality analysis (~2% intra-warp hits, 98% inter-warp, R~3161):
// warps share one large irregular working set with clustered
// neighbour access.
func buildCFD(s Size) *sim.Workload {
	name := "cfd"
	body, slots := memBody(2, 2, 1)
	pats := []trace.Pattern{
		trace.IrregularShared{Region: region(name, 0), Lines: 3100, Seed: 0xcf, Cluster: 4, Dwell: 2},
		trace.IrregularShared{Region: region(name, 1), Lines: 3100, Seed: 0xd0, Cluster: 4, Dwell: 2},
	}
	if slots != len(pats) {
		panic("cfd: slot mismatch")
	}
	k := kernel(name+"#0", body, pats, 260*s.factor(), 8, 48)
	return &sim.Workload{Name: name, Kernels: []*trace.Kernel{k}}
}
