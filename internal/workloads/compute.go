package workloads

import (
	"poise/internal/sim"
	"poise/internal/trace"
)

// Memory-insensitive workloads for the paper's Fig. 16 robustness check
// (wc, covar, gramschm, sradv2, hybridsort, hotspot, pathfinder; all
// with Pbest < 1.2x). Their bodies have long stretches of arithmetic
// between rare loads (In well above the Imax = 49 cut-off), so Poise's
// compute-intensive detector must steer them straight to maximum TLP —
// the experiment verifies the overhead stays within a few percent.

func init() {
	register("wc", false, computeBuilder("wc", 70, 0, 10))
	register("covar", false, computeBuilder("covar", 60, 6, 8))
	register("gramschm", false, computeBuilder("gramschm", 85, 4, 8))
	register("sradv2", false, computeBuilder("sradv2", 55, 10, 12))
	register("hotspot", false, computeBuilder("hotspot", 95, 8, 6))
	register("pathfinder", false, computeBuilder("pathfinder", 75, 0, 8))
	register("hybridsort", false, buildHybridsort)
}

// computeBuilder makes a compute-intensive kernel: one load per body
// with alu independent instructions and dep serially-dependent ones,
// the latter modelling low-ILP arithmetic chains that bound IPC even
// with full TLP.
func computeBuilder(name string, alu, dep, iterScale int) func(Size) *sim.Workload {
	return func(s Size) *sim.Workload {
		b := &trace.BodyBuilder{}
		slot := b.Load(4)
		b.ALU(alu)
		if dep > 0 {
			b.DepALU(dep)
		}
		pats := []trace.Pattern{
			trace.Stream{Region: region(name, 0), WrapLines: 1 << 15, Dwell: 16},
		}
		_ = slot
		k := kernel(name+"#0", b.Body(), pats, iterScale*4*s.factor(), 8, 40)
		return &sim.Workload{Name: name, Kernels: []*trace.Kernel{k}}
	}
}

// buildHybridsort mixes a compute-heavy bucket phase with a short
// shared-table phase, staying memory-insensitive overall.
func buildHybridsort(s Size) *sim.Workload {
	name := "hybridsort"
	b := &trace.BodyBuilder{}
	b.ALU(20)
	b.Load(6)
	b.ALU(46)
	b.Load(6)
	b.ALU(40)
	iters := 36 * s.factor()
	pats := []trace.Pattern{
		trace.Stream{Region: region(name, 0), WrapLines: 1 << 15, Dwell: 16},
		trace.SharedSweep{Region: region(name, 1), Lines: 24, Step: 1, Dwell: 4},
	}
	if b.Slots() != len(pats) {
		panic("hybridsort: slot mismatch")
	}
	k := kernel(name+"#0", b.Body(), pats, iters, 8, 40)
	return &sim.Workload{Name: name, Kernels: []*trace.Kernel{k}}
}
