package workloads

import (
	"fmt"

	"poise/internal/sim"
	"poise/internal/trace"
)

// Training-set workloads (paper Table IIIa, top half): Graph Coloring
// (gco, 12 kernels, Pbest 3.43x), Page View Rank (pvr, 248 kernels,
// Pbest 2.07x) and Component Label (ccl, 17 kernels, Pbest 1.49x). The
// paper stresses that training and evaluation stay completely disjoint;
// these families use different pattern mixes and parameter ranges from
// the evaluation set, while together spanning the feature space (tiny
// to huge footprints, intra- vs inter-warp locality, a range of In).

func init() {
	register("gco", true, buildGCO)
	register("pvr", true, buildPVR)
	register("ccl", true, buildCCL)
}

// buildGCO: graph colouring — irregular private adjacency work with a
// shared conflict table. Twelve kernel variants sweep the
// neighbourhood footprint from cache-friendly to thrash-prone.
func buildGCO(s Size) *sim.Workload {
	name := "gco"
	w := &sim.Workload{Name: name}
	foot := []int{10, 14, 18, 24, 30, 40, 60, 90, 150, 320, 20, 12}
	for i, lines := range foot {
		body, slots := memBody(2, 2, 1)
		pats := []trace.Pattern{
			trace.IrregularPrivate{Region: region(name, 3*i), Lines: lines, Seed: uint64(0x6c0 + i), Dwell: 2},
			trace.PrivateSweep{Region: region(name, 3*i+1), Lines: lines/2 + 4, Step: 1},
		}
		if slots != len(pats) {
			panic("gco: slot mismatch")
		}
		k := kernel(fmt.Sprintf("%s#%d", name, i), body, pats, 170*s.factor(), 8, 32)
		k.IterJitter = 0.2
		w.Kernels = append(w.Kernels, k)
	}
	return w
}

// buildPVR: page view rank — the big training family (the paper's pvr
// contributes 248 of the 277 training kernels). A parameter grid over
// private footprint, shared footprint and instruction gap generates a
// broad spectrum of memory sensitivity, giving the regression a
// well-spread design matrix.
func buildPVR(s Size) *sim.Workload {
	name := "pvr"
	w := &sim.Workload{Name: name}
	privs := []int{8, 14, 22, 34, 50}
	shareds := []int{40, 150, 420}
	gaps := []int{2, 4}
	i := 0
	for _, pl := range privs {
		for _, sl := range shareds {
			for _, gap := range gaps {
				body, slots := memBody(2, gap, 1)
				pats := []trace.Pattern{
					trace.PrivateSweep{Region: region(name, 3*i), Lines: pl, Step: 1},
					trace.SharedSweep{Region: region(name, 3*i+1), Lines: sl, Step: 1, Lag: i % 3, Dwell: 2},
				}
				if slots != len(pats) {
					panic("pvr: slot mismatch")
				}
				k := kernel(fmt.Sprintf("%s#%d", name, i), body, pats, 150*s.factor(), 8, 32)
				w.Kernels = append(w.Kernels, k)
				i++
			}
		}
	}
	// Second sub-family: a streaming operand against a shared table —
	// the regime where the best tuple keeps N high and shrinks only p
	// (cache allocation protects the table while TLP stays up). Without
	// these the regression would never learn to predict large N.
	for _, sl := range []int{60, 90, 120, 170, 260} {
		for _, gap := range gaps {
			body, slots := memBody(2, gap, 1)
			pats := []trace.Pattern{
				trace.Stream{Region: region(name, 3*i), WrapLines: 1 << 16, Dwell: 8},
				trace.SharedSweep{Region: region(name, 3*i+1), Lines: sl, Step: 1},
			}
			if slots != len(pats) {
				panic("pvr: slot mismatch")
			}
			k := kernel(fmt.Sprintf("%s#%d", name, i), body, pats, 150*s.factor(), 8, 32)
			w.Kernels = append(w.Kernels, k)
			i++
		}
	}
	return w
}

// buildCCL: connected-component labelling — shared irregular label
// arrays (inter-warp dominated) with a small private stack. Eight
// variants sweep the label-array size.
func buildCCL(s Size) *sim.Workload {
	name := "ccl"
	w := &sim.Workload{Name: name}
	labels := []int{100, 180, 300, 500, 900, 1600, 240, 130}
	for i, lines := range labels {
		body, slots := memBody(2, 3, 1)
		pats := []trace.Pattern{
			trace.IrregularShared{Region: region(name, 3*i), Lines: lines, Seed: uint64(0xcc1 + i), Cluster: 6, Dwell: 2},
			trace.PrivateSweep{Region: region(name, 3*i+1), Lines: 16, Step: 1},
		}
		if slots != len(pats) {
			panic("ccl: slot mismatch")
		}
		k := kernel(fmt.Sprintf("%s#%d", name, i), body, pats, 150*s.factor(), 8, 32)
		k.IterJitter = 0.15
		w.Kernels = append(w.Kernels, k)
	}
	return w
}
