package workloads

import (
	"testing"

	"poise/internal/trace"
)

func TestCatalogueComplete(t *testing.T) {
	cat := NewCatalogue(Small)
	want := len(TrainingNames()) + len(EvalNames()) + len(ComputeNames()) + 1 // +cfd
	if got := len(cat.Names()); got != want {
		t.Fatalf("catalogue has %d workloads, want %d: %v", got, want, cat.Names())
	}
	for _, n := range cat.Names() {
		w := cat.Must(n)
		if err := w.Validate(); err != nil {
			t.Fatalf("workload %s invalid: %v", n, err)
		}
	}
	if _, err := cat.Get("nope"); err == nil {
		t.Fatal("unknown workload must error")
	}
}

func TestTrainingEvalDisjoint(t *testing.T) {
	train := map[string]bool{}
	for _, n := range TrainingNames() {
		train[n] = true
	}
	for _, n := range EvalNames() {
		if train[n] {
			t.Fatalf("%s appears in both training and evaluation sets", n)
		}
	}
	for _, n := range ComputeNames() {
		if train[n] {
			t.Fatalf("%s appears in both training and compute sets", n)
		}
	}
}

func TestSetAccessors(t *testing.T) {
	cat := NewCatalogue(Small)
	if got := len(cat.TrainingSet()); got != 3 {
		t.Fatalf("training set = %d workloads", got)
	}
	if got := len(cat.EvalSet()); got != 11 {
		t.Fatalf("eval set = %d workloads", got)
	}
	if got := len(cat.ComputeSet()); got != 7 {
		t.Fatalf("compute set = %d workloads", got)
	}
}

func TestMemorySensitivityFlags(t *testing.T) {
	cat := NewCatalogue(Small)
	for _, n := range EvalNames() {
		if !cat.Must(n).MemorySensitive {
			t.Fatalf("%s must be flagged memory-sensitive", n)
		}
	}
	for _, n := range ComputeNames() {
		if cat.Must(n).MemorySensitive {
			t.Fatalf("%s must not be flagged memory-sensitive", n)
		}
	}
}

func TestComputeSetHasHighIn(t *testing.T) {
	// The Fig. 16 workloads must trip the In > Imax = 49 detector.
	cat := NewCatalogue(Small)
	for _, w := range cat.ComputeSet() {
		for _, k := range w.Kernels {
			if k.In() <= 49 {
				t.Fatalf("%s kernel %s has In = %.1f, needs > 49", w.Name, k.Name, k.In())
			}
		}
	}
	// And the memory-sensitive ones must not.
	for _, w := range cat.EvalSet() {
		for _, k := range w.Kernels {
			if k.In() > 49 {
				t.Fatalf("%s kernel %s has In = %.1f, must be <= 49", w.Name, k.Name, k.In())
			}
		}
	}
}

func TestKernelCountsMirrorPaperShape(t *testing.T) {
	// Multi-kernel applications (paper: ii 118, mm 23, ss 164 kernels)
	// are represented by multi-kernel families here.
	cat := NewCatalogue(Small)
	multi := []string{"ii", "mm", "ss", "pvr", "gco", "ccl", "bfs"}
	for _, n := range multi {
		if len(cat.Must(n).Kernels) < 2 {
			t.Fatalf("%s should have multiple kernels", n)
		}
	}
	mono := []string{"syr2k", "syrk", "gsmv", "mvt", "bicg", "atax"}
	for _, n := range mono {
		if len(cat.Must(n).Kernels) != 1 {
			t.Fatalf("%s should be monolithic", n)
		}
	}
}

func TestSizesScaleIterations(t *testing.T) {
	small := NewCatalogue(Small).Must("ii").Kernels[0].Iters
	medium := NewCatalogue(Medium).Must("ii").Kernels[0].Iters
	large := NewCatalogue(Large).Must("ii").Kernels[0].Iters
	if !(small < medium && medium < large) {
		t.Fatalf("sizes must scale: %d %d %d", small, medium, large)
	}
}

func TestCatalogueDeterministic(t *testing.T) {
	a := NewCatalogue(Small).Must("syr2k").Kernels[0]
	b := NewCatalogue(Small).Must("syr2k").Kernels[0]
	ctx := trace.Ctx{GlobalWarp: 3}
	for s := 0; s < 50; s++ {
		for slot := range a.Patterns {
			if a.Patterns[slot].Addr(ctx, s) != b.Patterns[slot].Addr(ctx, s) {
				t.Fatal("catalogue rebuild changed address streams")
			}
		}
	}
}

func TestRegionStability(t *testing.T) {
	if region("ii", 0) != region("ii", 0) {
		t.Fatal("region must be stable")
	}
	if region("ii", 0) == region("ii", 1) || region("ii", 0) == region("mm", 0) {
		t.Fatal("regions must differ across slots and names")
	}
}
