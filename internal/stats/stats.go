// Package stats provides the small statistical toolkit used across the
// reproduction: means (the paper reports harmonic means for speedups and
// arithmetic means for rates), correlation measures used during feature
// analysis, and a fast deterministic PRNG used by the synthetic
// workloads so that every simulation is reproducible from Config.Seed.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// HarmonicMean returns the harmonic mean of xs. It returns an error if
// any value is non-positive, since the harmonic mean is undefined there.
func HarmonicMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("stats: harmonic mean of empty slice")
	}
	var inv float64
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: harmonic mean requires positive values")
		}
		inv += 1 / x
	}
	return float64(len(xs)) / inv, nil
}

// GeometricMean returns the geometric mean of xs. All values must be
// positive.
func GeometricMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("stats: geometric mean of empty slice")
	}
	var logs float64
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: geometric mean requires positive values")
		}
		logs += math.Log(x)
	}
	return math.Exp(logs / float64(len(xs))), nil
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Pearson returns the Pearson correlation coefficient between xs and ys.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(xs) < 2 {
		return 0, errors.New("stats: need at least two points")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Ranks returns the fractional ranks of xs (average rank for ties),
// 1-based, as used by Spearman correlation.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// average rank of the tie run [i, j]
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Spearman returns the Spearman rank correlation between xs and ys.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// Quantile returns the q-th quantile (0<=q<=1) of xs using linear
// interpolation between order statistics.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Normalize returns xs scaled so each element is divided by base. It is
// the "normalised to GTO" transform used in every paper figure.
func Normalize(xs []float64, base float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		if base != 0 {
			out[i] = x / base
		}
	}
	return out
}
