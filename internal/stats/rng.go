package stats

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded through splitmix64). The simulator cannot use
// math/rand's global state: every SM, warp and workload needs an
// independent, reproducible stream derived from Config.Seed so that a
// simulation is a pure function of its configuration.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via splitmix64, which
// guarantees a well-mixed non-zero state for any seed including 0.
func NewRNG(seed int64) *RNG {
	r := &RNG{}
	x := uint64(seed)
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Fork derives an independent stream labelled by id. Streams with
// different ids are decorrelated even for adjacent ids.
func (r *RNG) Fork(id int64) *RNG {
	return NewRNG(int64(r.Uint64() ^ (uint64(id) * 0x9e3779b97f4a7c15)))
}

// State returns the generator's internal state, for checkpointing.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState restores a state captured by State, resuming the stream at
// exactly the point it was captured.
func (r *RNG) SetState(s [4]uint64) { r.s = s }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit integer.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// NormFloat64 returns a standard normal variate via the Box-Muller
// transform (polar-free form; adequate for workload jitter).
func (r *RNG) NormFloat64() float64 {
	// Marsaglia polar method.
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * sqrt(-2*log(s)/s)
		}
	}
}
