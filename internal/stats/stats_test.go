package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestHarmonicMean(t *testing.T) {
	got, err := HarmonicMean([]float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := 3 / (1 + 0.5 + 0.25)
	if !almostEq(got, want, 1e-12) {
		t.Fatalf("HarmonicMean = %v, want %v", got, want)
	}
	if _, err := HarmonicMean(nil); err == nil {
		t.Fatal("expected error on empty input")
	}
	if _, err := HarmonicMean([]float64{1, 0}); err == nil {
		t.Fatal("expected error on zero value")
	}
	if _, err := HarmonicMean([]float64{1, -2}); err == nil {
		t.Fatal("expected error on negative value")
	}
}

func TestGeometricMean(t *testing.T) {
	got, err := GeometricMean([]float64{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, 4, 1e-12) {
		t.Fatalf("GeometricMean = %v, want 4", got)
	}
	if _, err := GeometricMean([]float64{-1}); err == nil {
		t.Fatal("expected error on negative value")
	}
}

// The classical mean inequality H <= G <= A must hold for any positive
// inputs — a property test over random slices.
func TestMeanInequalityProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			v = math.Abs(v)
			if v > 1e-6 && v < 1e6 && !math.IsNaN(v) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		h, err1 := HarmonicMean(xs)
		g, err2 := GeometricMean(xs)
		a := Mean(xs)
		if err1 != nil || err2 != nil {
			return false
		}
		const tol = 1e-9
		return h <= g*(1+tol) && g <= a*(1+tol)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEq(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 1, 1e-12) {
		t.Fatalf("Pearson = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Pearson(xs, neg)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", r)
	}
	if _, err := Pearson(xs, xs[:3]); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Fatal("expected zero-variance error")
	}
}

func TestRanksWithTies(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any strictly monotone transform has Spearman correlation 1.
	xs := []float64{1, 5, 2, 8, 3}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(x)
	}
	r, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 1, 1e-12) {
		t.Fatalf("Spearman = %v, want 1", r)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.125, 1.5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("Quantile(nil) = %v", got)
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 4, 6}, 2)
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Normalize = %v, want %v", got, want)
		}
	}
	zero := Normalize([]float64{1}, 0)
	if zero[0] != 0 {
		t.Fatal("Normalize by 0 should produce zeros")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds should diverge, %d/100 collisions", same)
	}
}

func TestRNGFork(t *testing.T) {
	base := NewRNG(1)
	f1 := base.Fork(1)
	base2 := NewRNG(1)
	f2 := base2.Fork(1)
	for i := 0; i < 50; i++ {
		if f1.Uint64() != f2.Uint64() {
			t.Fatal("forks of identical parents with same id must match")
		}
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(7)
	buckets := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		buckets[r.Intn(10)]++
	}
	for i, b := range buckets {
		if b < n/10-n/100*3 || b > n/10+n/100*3 {
			t.Fatalf("bucket %d = %d, too far from uniform %d", i, b, n/10)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(20)
	seen := map[int]bool{}
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestRNGNormal(t *testing.T) {
	r := NewRNG(11)
	const n = 50000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	NewRNG(1).Intn(0)
}
