package stats

import "math"

// Thin aliases keep rng.go readable without a qualified import on every
// expression.
func sqrt(x float64) float64 { return math.Sqrt(x) }
func log(x float64) float64  { return math.Log(x) }
