package sim

import (
	"errors"
	"sync/atomic"
)

// ErrInterrupted is returned by Run (and the workload runners) when an
// InterruptCtl fired. The GPU's state is left exactly as of the first
// unvisited cycle — spans settled, counters dense-identical — so the
// caller can snapshot it (SnapshotKernel, Checkpoint) and a restored
// run finishes bit-identical to an uninterrupted one.
var ErrInterrupted = errors.New("sim: run interrupted")

// InterruptCtl asks a running simulation to stop at a safe point. Two
// triggers compose:
//
//   - AtCycle, when > 0, interrupts deterministically at the first
//     visited cycle >= AtCycle — the reproducible trigger the identity
//     tests and the CI kill-mid-run round trip use.
//   - Trigger may be called from any goroutine (a SIGTERM handler, a
//     lease-loss watchdog) and interrupts at the next visited cycle.
//
// Only the ready-queue engine honours interrupts; Run rejects an
// InterruptCtl combined with EngineDense. A fired control stays fired:
// reuse across a resumed run would interrupt it again immediately, so
// resume with a fresh control (or nil).
type InterruptCtl struct {
	// AtCycle, when positive, is the deterministic trigger cycle.
	AtCycle int64

	flag atomic.Bool
}

// Trigger requests an interrupt at the next visited cycle. Safe for
// concurrent use.
func (ic *InterruptCtl) Trigger() { ic.flag.Store(true) }

// Triggered reports whether Trigger has been called.
func (ic *InterruptCtl) Triggered() bool { return ic.flag.Load() }

// due reports whether the run should stop before visiting cycle now.
// nil receivers are valid (no interrupt configured).
func (ic *InterruptCtl) due(now int64) bool {
	if ic == nil {
		return false
	}
	if ic.AtCycle > 0 && now >= ic.AtCycle {
		return true
	}
	return ic.flag.Load()
}
