package sim_test

import (
	"fmt"
	"reflect"
	"testing"

	"poise/internal/sched"
	"poise/internal/sim"
	"poise/internal/testutil"
)

func prefixWorkload() *sim.Workload {
	return testutil.Workload("multi",
		testutil.ThrashKernel("k0", 64, 40, 4),
		testutil.StreamKernel("k1", 60, 4),
		testutil.ComputeKernel("k2", 40, 4),
	)
}

// TestPrefixCacheBitIdentical proves the cache is invisible to
// results: cold fills, warm restores and cross-policy shared prefixes
// all reproduce the uncached WorkloadResult exactly.
func TestPrefixCacheBitIdentical(t *testing.T) {
	cfg := testutil.TinyConfig()
	w := prefixWorkload()
	base, err := sim.RunWorkload(cfg, w, sim.GTO{}, sim.RunOptions{})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}

	pc, err := sim.NewPrefixCache(t.TempDir())
	if err != nil {
		t.Fatalf("NewPrefixCache: %v", err)
	}
	cold, err := sim.RunWorkloadCached(cfg, w, sim.GTO{}, sim.RunOptions{}, pc)
	if err != nil {
		t.Fatalf("cold cached run: %v", err)
	}
	if !reflect.DeepEqual(base, cold) {
		t.Fatalf("cold cached run diverges:\n base: %+v\n cold: %+v", base, cold)
	}
	if got := pc.Misses.Load(); got != 1 {
		t.Fatalf("cold run: Misses = %d, want 1", got)
	}
	if got := pc.Hits.Load(); got != 0 {
		t.Fatalf("cold run: Hits = %d, want 0", got)
	}

	warm, err := sim.RunWorkloadCached(cfg, w, sim.GTO{}, sim.RunOptions{}, pc)
	if err != nil {
		t.Fatalf("warm cached run: %v", err)
	}
	if !reflect.DeepEqual(base, warm) {
		t.Fatalf("warm cached run diverges:\n base: %+v\n warm: %+v", base, warm)
	}
	if got := pc.Hits.Load(); got != 1 {
		t.Fatalf("warm run: Hits = %d, want 1", got)
	}
	// Three kernels leave boundaries after k0 and k1; the deepest
	// restore skips both and replays only k2.
	if got := pc.KernelsSkipped.Load(); got != 2 {
		t.Fatalf("warm run: KernelsSkipped = %d, want 2", got)
	}
	if pc.CyclesSaved.Load() <= 0 {
		t.Fatalf("warm run saved no cycles")
	}

	// Fixed{} resolves to the same full-concurrency tuple as GTO, so it
	// shares GTO's prefix — but the restored result must carry Fixed's
	// own labels and match Fixed's uncached baseline.
	fixed := sim.Fixed{PolicyName: "swl"}
	fbase, err := sim.RunWorkload(cfg, w, fixed, sim.RunOptions{})
	if err != nil {
		t.Fatalf("fixed baseline: %v", err)
	}
	fwarm, err := sim.RunWorkloadCached(cfg, w, fixed, sim.RunOptions{}, pc)
	if err != nil {
		t.Fatalf("fixed warm run: %v", err)
	}
	if !reflect.DeepEqual(fbase, fwarm) {
		t.Fatalf("cross-policy warm run diverges:\n base: %+v\n warm: %+v", fbase, fwarm)
	}
	if fwarm.Policy != "swl" || fwarm.Workload != "multi" {
		t.Fatalf("restored labels wrong: policy=%q workload=%q", fwarm.Policy, fwarm.Workload)
	}
	if got := pc.Hits.Load(); got != 2 {
		t.Fatalf("cross-policy warm run: Hits = %d, want 2", got)
	}
}

// TestPrefixCachePassthrough pins the fallback paths: adaptive
// policies (no stable tuple prefix), single-kernel workloads and
// interruptible runs bypass the cache entirely.
func TestPrefixCachePassthrough(t *testing.T) {
	cfg := testutil.TinyConfig()
	pc, err := sim.NewPrefixCache(t.TempDir())
	if err != nil {
		t.Fatalf("NewPrefixCache: %v", err)
	}
	w := prefixWorkload()

	ccws := sched.NewCCWS(2000)
	base, err := sim.RunWorkload(cfg, w, sched.NewCCWS(2000), sim.RunOptions{})
	if err != nil {
		t.Fatalf("ccws baseline: %v", err)
	}
	res, err := sim.RunWorkloadCached(cfg, w, ccws, sim.RunOptions{}, pc)
	if err != nil {
		t.Fatalf("ccws cached run: %v", err)
	}
	if !reflect.DeepEqual(base, res) {
		t.Fatalf("ccws passthrough diverges")
	}

	single := testutil.Workload("one", testutil.ComputeKernel("k", 40, 4))
	if _, err := sim.RunWorkloadCached(cfg, single, sim.GTO{}, sim.RunOptions{}, pc); err != nil {
		t.Fatalf("single-kernel cached run: %v", err)
	}
	if _, err := sim.RunWorkloadCached(cfg, w, sim.GTO{}, sim.RunOptions{
		Interrupt: &sim.InterruptCtl{AtCycle: 1 << 40}}, pc); err != nil {
		t.Fatalf("interruptible cached run: %v", err)
	}
	if h, m := pc.Hits.Load(), pc.Misses.Load(); h != 0 || m != 0 {
		t.Fatalf("passthrough touched the cache: hits=%d misses=%d", h, m)
	}
}

// sweepCells builds the grid-sweep shape the cache targets: every cell
// shares the k0,k1 tuple prefix and varies only the final kernel's
// tuple.
func sweepCells() []sim.Fixed {
	cells := make([]sim.Fixed, 0, 8)
	for n := 1; n <= 8; n++ {
		cells = append(cells, sim.Fixed{
			PolicyName: fmt.Sprintf("cell-n%d", n),
			PerKernel:  map[string][2]int{"k2": {n, n}},
		})
	}
	return cells
}

// TestPrefixCacheSavesCycles quantifies the win on a sweep: with all
// cells sharing a two-kernel prefix, executed simulated cycles must
// drop by well over the 20% acceptance floor while every cell's result
// stays byte-identical to its uncached run.
func TestPrefixCacheSavesCycles(t *testing.T) {
	cfg := testutil.TinyConfig()
	w := prefixWorkload()
	pc, err := sim.NewPrefixCache(t.TempDir())
	if err != nil {
		t.Fatalf("NewPrefixCache: %v", err)
	}
	var total int64
	for _, cell := range sweepCells() {
		base, err := sim.RunWorkload(cfg, w, cell, sim.RunOptions{})
		if err != nil {
			t.Fatalf("cell %s baseline: %v", cell.PolicyName, err)
		}
		res, err := sim.RunWorkloadCached(cfg, w, cell, sim.RunOptions{}, pc)
		if err != nil {
			t.Fatalf("cell %s cached: %v", cell.PolicyName, err)
		}
		if !reflect.DeepEqual(base, res) {
			t.Fatalf("cell %s diverges under the cache", cell.PolicyName)
		}
		total += res.Cycles
	}
	saved := pc.CyclesSaved.Load()
	executed := total - saved
	t.Logf("sweep: %d total simulated cycles, %d executed (%d saved, %.1f%%), hits=%d misses=%d skipped=%d",
		total, executed, saved, 100*float64(saved)/float64(total),
		pc.Hits.Load(), pc.Misses.Load(), pc.KernelsSkipped.Load())
	if saved*5 < total { // the ISSUE's acceptance floor: >=20% fewer simulated cycles
		t.Fatalf("prefix cache saved %d of %d cycles (< 20%%)", saved, total)
	}
	if got := pc.Misses.Load(); got != 1 {
		t.Fatalf("Misses = %d, want 1 (only the first cell fills)", got)
	}
	if got := pc.Hits.Load(); got != int64(len(sweepCells())-1) {
		t.Fatalf("Hits = %d, want %d", got, len(sweepCells())-1)
	}
}

// BenchmarkPrefixCache reports the simulated-cycle savings of warm
// grid sweeps as custom metrics alongside wall-clock time.
func BenchmarkPrefixCache(b *testing.B) {
	cfg := testutil.TinyConfig()
	w := testutil.Workload("bench",
		testutil.ThrashKernel("k0", 64, 40, 4),
		testutil.StreamKernel("k1", 60, 4),
		testutil.ComputeKernel("k2", 40, 4),
	)
	cells := sweepCells()
	run := func(b *testing.B, pc *sim.PrefixCache) (executed int64) {
		b.Helper()
		var total int64
		for _, cell := range cells {
			res, err := sim.RunWorkloadCached(cfg, w, cell, sim.RunOptions{}, pc)
			if err != nil {
				b.Fatal(err)
			}
			total += res.Cycles
		}
		if pc != nil {
			return total - pc.CyclesSaved.Load()
		}
		return total
	}
	b.Run("cold", func(b *testing.B) {
		var executed int64
		for i := 0; i < b.N; i++ {
			executed = run(b, nil)
		}
		b.ReportMetric(float64(executed), "simcycles/sweep")
	})
	b.Run("warm", func(b *testing.B) {
		var executed int64
		for i := 0; i < b.N; i++ {
			pc, err := sim.NewPrefixCache(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			executed = run(b, pc)
		}
		b.ReportMetric(float64(executed), "simcycles/sweep")
	})
}
