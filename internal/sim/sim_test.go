package sim_test

import (
	"testing"

	"poise/internal/config"
	"poise/internal/sim"
	"poise/internal/testutil"
	"poise/internal/trace"
)

func TestRunExactInstructionCount(t *testing.T) {
	k := testutil.ThrashKernel("exact", 16, 20, 4)
	res := testutil.RunTiny(k, sim.GTO{})
	want := int64(k.TotalWarps()) * int64(k.Iters) * int64(len(k.Body))
	if res.Instructions != want {
		t.Fatalf("Instructions = %d, want %d", res.Instructions, want)
	}
	if res.Cycles <= 0 || res.IPC <= 0 {
		t.Fatalf("bad cycles/IPC: %d %v", res.Cycles, res.IPC)
	}
	wantLoads := int64(k.TotalWarps()) * int64(k.Iters) * int64(k.LoadsPerIter())
	if res.Loads != wantLoads {
		t.Fatalf("Loads = %d, want %d", res.Loads, wantLoads)
	}
}

func TestRunDeterminism(t *testing.T) {
	k := testutil.ThrashKernel("det", 24, 30, 6)
	a := testutil.RunTiny(k, sim.GTO{})
	b := testutil.RunTiny(k, sim.GTO{})
	if a.Cycles != b.Cycles || a.L1.Hits != b.L1.Hits || a.DRAMAcc != b.DRAMAcc {
		t.Fatalf("simulation not deterministic: %+v vs %+v", a, b)
	}
}

func TestThrottlingRecoversLocality(t *testing.T) {
	// The core phenomenon of the paper: on a thrash-prone kernel,
	// reducing the warp-tuple raises the L1 hit rate and cuts AML. The
	// tuple is chosen so the throttled footprint actually fits:
	// 2 schedulers x 2 warps x (20+10) lines = 120 < 128 L1 lines.
	k := testutil.ThrashKernel("thrash", 20, 40, 8)
	base := testutil.RunTiny(k, sim.GTO{})
	thr := testutil.RunTiny(k, sim.Fixed{N: 2, P: 2})
	if thr.L1.HitRate() <= base.L1.HitRate() {
		t.Fatalf("throttling must raise hit rate: %.3f -> %.3f",
			base.L1.HitRate(), thr.L1.HitRate())
	}
	if thr.AML >= base.AML {
		t.Fatalf("throttling must cut AML: %.1f -> %.1f", base.AML, thr.AML)
	}
}

func TestStreamingInsensitiveToTuple(t *testing.T) {
	k := testutil.StreamKernel("stream", 30, 4)
	base := testutil.RunTiny(k, sim.GTO{})
	thr := testutil.RunTiny(k, sim.Fixed{N: 4, P: 1})
	// Streaming has no recoverable locality: hit rates stay near zero
	// either way.
	if base.L1.HitRate() > 0.05 || thr.L1.HitRate() > 0.05 {
		t.Fatalf("stream kernels must not hit: %.3f / %.3f",
			base.L1.HitRate(), thr.L1.HitRate())
	}
	// And throttling cannot make it faster.
	if thr.IPC > base.IPC*1.02 {
		t.Fatalf("throttling a pure stream should not speed it up: %.3f -> %.3f",
			base.IPC, thr.IPC)
	}
}

func TestGTOEqualsFixedMax(t *testing.T) {
	k := testutil.ThrashKernel("eq", 20, 20, 4)
	cfg := testutil.TinyConfig()
	a, err := sim.RunWorkload(cfg, testutil.Workload("w", k), sim.GTO{}, sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.RunWorkload(cfg, testutil.Workload("w", k),
		sim.Fixed{N: cfg.WarpsPerSched, P: cfg.WarpsPerSched}, sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions {
		t.Fatalf("GTO and Fixed(max,max) must be identical: %d vs %d cycles",
			a.Cycles, b.Cycles)
	}
}

func TestOccupancyCapRespected(t *testing.T) {
	k := testutil.ThrashKernel("occ", 16, 10, 4)
	k.MaxWarpsPerSched = 4 // 8-warp blocks just fit 2 schedulers x 4
	g, err := sim.New(testutil.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(k, sim.GTO{}, sim.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if g.MaxN() != 4 {
		t.Fatalf("MaxN = %d, want 4", g.MaxN())
	}
}

func TestImpossibleOccupancyRejected(t *testing.T) {
	k := testutil.ThrashKernel("occ2", 16, 10, 4)
	k.MaxWarpsPerSched = 3 // 8-warp blocks cannot fit 2 x 3 slots
	g, err := sim.New(testutil.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(k, sim.GTO{}, sim.RunOptions{}); err == nil {
		t.Fatal("impossible block occupancy must be rejected")
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	k := testutil.ThrashKernel("guard", 30, 500, 8)
	g, err := sim.New(testutil.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(k, sim.GTO{}, sim.RunOptions{MaxCycles: 100}); err == nil {
		t.Fatal("expected a max-cycles error")
	}
}

func TestMaxInstructionsStopsEarly(t *testing.T) {
	k := testutil.ThrashKernel("cap", 16, 200, 4)
	g, err := sim.New(testutil.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run(k, sim.GTO{}, sim.RunOptions{MaxInstructions: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions < 5000 || res.Instructions > 5000+1000 {
		t.Fatalf("Instructions = %d, want ~5000", res.Instructions)
	}
}

func TestKernelValidationSurfaced(t *testing.T) {
	g, err := sim.New(testutil.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := &trace.Kernel{Name: "bad"}
	if _, err := g.Run(bad, sim.GTO{}, sim.RunOptions{}); err == nil {
		t.Fatal("invalid kernel must be rejected")
	}
}

// tuplePolicy flips tuples mid-run to verify that dynamic steering
// neither deadlocks nor corrupts accounting.
type tuplePolicy struct{ flips int }

func (p *tuplePolicy) Name() string { return "flipper" }
func (p *tuplePolicy) KernelStart(g *sim.GPU, k *trace.Kernel) int64 {
	g.SetTupleAll(g.MaxN(), g.MaxN())
	return 500
}
func (p *tuplePolicy) Step(g *sim.GPU, now int64) int64 {
	p.flips++
	if p.flips%2 == 0 {
		g.SetTupleAll(2, 1)
	} else {
		g.SetTupleAll(g.MaxN(), 2)
	}
	return now + 500
}
func (p *tuplePolicy) KernelEnd(g *sim.GPU, now int64) {}

func TestDynamicTupleChangesSafe(t *testing.T) {
	k := testutil.ThrashKernel("flip", 24, 60, 6)
	pol := &tuplePolicy{}
	res := testutil.RunTiny(k, pol)
	want := int64(k.TotalWarps()) * int64(k.Iters) * int64(len(k.Body))
	if res.Instructions != want {
		t.Fatalf("instruction count corrupted by tuple flips: %d != %d",
			res.Instructions, want)
	}
	if pol.flips == 0 {
		t.Fatal("policy never stepped")
	}
}

func TestWorkloadAggregation(t *testing.T) {
	k1 := testutil.ThrashKernel("wa1", 16, 15, 4)
	k2 := testutil.ThrashKernel("wa2", 16, 15, 4)
	w := testutil.Workload("two", k1, k2)
	res, err := sim.RunWorkload(testutil.TinyConfig(), w, sim.GTO{}, sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerKernel) != 2 {
		t.Fatalf("PerKernel = %d", len(res.PerKernel))
	}
	if res.Instructions != res.PerKernel[0].Instructions+res.PerKernel[1].Instructions {
		t.Fatal("workload instruction aggregation wrong")
	}
	if res.Cycles != res.PerKernel[0].Cycles+res.PerKernel[1].Cycles {
		t.Fatal("workload cycle aggregation wrong")
	}
}

func TestWorkloadValidate(t *testing.T) {
	w := &sim.Workload{}
	if err := w.Validate(); err == nil {
		t.Fatal("unnamed workload must fail")
	}
	w.Name = "x"
	if err := w.Validate(); err == nil {
		t.Fatal("kernel-less workload must fail")
	}
}

func TestTupleTracing(t *testing.T) {
	k := testutil.ThrashKernel("trace", 16, 30, 4)
	g, err := sim.New(testutil.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	g.TraceTuples = true
	pol := &tuplePolicy{}
	res, err := g.Run(k, pol, sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TupleLog) == 0 {
		t.Fatal("tuple log must capture SetTuple calls")
	}
}

func TestMSHRBackpressureCounted(t *testing.T) {
	// A kernel with far more concurrent misses than MSHR entries must
	// record replays.
	cfg := testutil.TinyConfig()
	cfg.L1.MSHRs = 2
	k := testutil.StreamKernel("pressure", 40, 6)
	g, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run(k, sim.GTO{}, sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replays == 0 {
		t.Fatal("2-entry MSHR file must force replays on a stream")
	}
}

func TestL2AndDRAMCountersMove(t *testing.T) {
	k := testutil.StreamKernel("mem", 30, 4)
	res := testutil.RunTiny(k, sim.GTO{})
	if res.L2Accesses == 0 || res.DRAMAcc == 0 {
		t.Fatalf("memory-side counters must move: L2=%d DRAM=%d",
			res.L2Accesses, res.DRAMAcc)
	}
	if res.NoCReqFlits == 0 || res.NoCRespFlits == 0 {
		t.Fatal("NoC counters must move")
	}
	if res.AML <= 0 {
		t.Fatal("AML must be measured")
	}
}

func TestSharedKernelInterWarpHits(t *testing.T) {
	k := testutil.SharedKernel("share", 32, 40, 4)
	res := testutil.RunTiny(k, sim.GTO{})
	if res.L1.InterWarpHits == 0 {
		t.Fatal("a shared-sweep kernel must produce inter-warp hits")
	}
	if res.L1.InterWarpHits < res.L1.IntraWarpHits {
		t.Fatalf("inter-warp reuse must dominate: intra=%d inter=%d",
			res.L1.IntraWarpHits, res.L1.InterWarpHits)
	}
}

func TestConfigValidationAtNew(t *testing.T) {
	cfg := config.Default()
	cfg.NumSMs = 0
	if _, err := sim.New(cfg); err == nil {
		t.Fatal("invalid config must be rejected")
	}
}

func TestPolluteBitEffect(t *testing.T) {
	// At p=1 on a private-reuse kernel, non-polluting warps must show a
	// much lower hit rate than the polluting warp (paper Fig. 4).
	k := testutil.ThrashKernel("pollute", 24, 40, 6)
	cfg := testutil.TinyConfig()
	g, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run(k, sim.Fixed{N: cfg.WarpsPerSched, P: 1}, sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hp := res.L1.PolluteHitRate()
	hnp := res.L1.NoPollHitRate()
	if hp <= hnp {
		t.Fatalf("polluting warps must out-hit non-polluting: hp=%.3f hnp=%.3f", hp, hnp)
	}
	if res.L1.Bypasses == 0 {
		t.Fatal("non-polluting misses must be counted as bypasses")
	}
}
