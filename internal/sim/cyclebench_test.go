package sim_test

import (
	"testing"

	"poise/internal/config"
	"poise/internal/sim"
	"poise/internal/testutil"
	"poise/internal/trace"
)

// TestSteadyStateZeroAllocPerCycle pins the "no allocation per simulated
// cycle" property of a warmed (pooled) GPU. It compares per-run
// allocations between two kernels that differ only in iteration count:
// everything that legitimately allocates (launch bookkeeping, per-kernel
// PC maps, the result struct) is identical between them, so any excess
// on the long kernel is allocation that scales with simulated cycles —
// exactly what the preallocated event heap, ready queue, MSHR free list
// and replay-queue storage exist to eliminate.
func TestSteadyStateZeroAllocPerCycle(t *testing.T) {
	cfg := testutil.TinyConfig()
	g, err := sim.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	kShort := testutil.StreamKernel("alloc-short", 40, 4)
	kLong := testutil.StreamKernel("alloc-long", 160, 4)
	run := func(k *trace.Kernel) {
		g.Reset()
		if _, err := g.Run(k, sim.GTO{}, sim.RunOptions{}); err != nil {
			t.Fatalf("Run(%s): %v", k.Name, err)
		}
	}
	// Warm every pooled capacity on the longer kernel first.
	run(kLong)

	aShort := testing.AllocsPerRun(10, func() { run(kShort) })
	aLong := testing.AllocsPerRun(10, func() { run(kLong) })
	if aLong > aShort {
		t.Fatalf("allocations grow with simulated cycles: %.1f allocs/run at 40 iters vs %.1f at 160 iters",
			aShort, aLong)
	}
}

// benchEngines times one kernel on both cycle engines so the ready
// engine's speedup (and the compute-bound non-regression) is read
// straight off `go test -bench CycleLoop`. The GPU is built once per
// sub-benchmark and pooled with Reset, isolating the cycle loop from
// construction cost.
func benchEngines(b *testing.B, cfg config.Config, k *trace.Kernel) {
	for _, eng := range []struct {
		name   string
		engine sim.Engine
	}{{"ready", sim.EngineReady}, {"dense", sim.EngineDense}} {
		b.Run(eng.name, func(b *testing.B) {
			g, err := sim.New(cfg)
			if err != nil {
				b.Fatalf("New: %v", err)
			}
			opts := sim.RunOptions{Engine: eng.engine}
			warm, err := g.Run(k, sim.GTO{}, opts)
			if err != nil {
				b.Fatalf("Run: %v", err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Reset()
				if _, err := g.Run(k, sim.GTO{}, opts); err != nil {
					b.Fatalf("Run: %v", err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(warm.Cycles),
				"ns/simcycle")
		})
	}
}

// BenchmarkCycleLoopMemBound is the regime the ready queue targets: a
// low-occupancy streaming kernel (one block per SM) at the paper-scale
// 32-SM configuration keeps nearly every scheduler blocked on memory,
// so the dense engine burns its time scanning blocked schedulers while
// the ready engine settles them with span arithmetic.
func BenchmarkCycleLoopMemBound(b *testing.B) {
	benchEngines(b, config.Default(), testutil.StreamKernel("mem", 200, 32))
}

// BenchmarkCycleLoopCompute is the adversarial regime: every scheduler
// issues nearly every cycle, so the ready engine's hot list is always
// full and its queue bookkeeping is pure overhead that must stay in the
// noise.
func BenchmarkCycleLoopCompute(b *testing.B) {
	benchEngines(b, config.Default(), testutil.ComputeKernel("comp", 60, 128))
}
