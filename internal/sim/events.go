package sim

// Event kinds for the simulator's wake-up heap. The heap exists so the
// main loop can jump over stretches where every warp is blocked on
// memory: any state change that could make a warp issueable again must
// be represented by an event.
type eventKind uint8

const (
	// evWake advances the clock; the warp state referenced resolves
	// lazily (L1 hit returns, pipeline latencies, replay backoff).
	evWake eventKind = iota
	// evFill completes an L1 miss: release the MSHR, fill the cache,
	// wake all merged waiters, account AML.
	evFill
)

type event struct {
	cycle int64
	kind  eventKind
	sm    int32
	line  uint64 // evFill: line address keying the MSHR
}

// eventHeap is a binary min-heap ordered by cycle. A hand-rolled heap
// avoids the interface boxing of container/heap in the simulator's
// hottest auxiliary structure.
type eventHeap struct {
	a []event
}

func (h *eventHeap) len() int { return len(h.a) }

func (h *eventHeap) push(e event) {
	h.a = append(h.a, e)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.a[parent].cycle <= h.a[i].cycle {
			break
		}
		h.a[parent], h.a[i] = h.a[i], h.a[parent]
		i = parent
	}
}

func (h *eventHeap) peek() (event, bool) {
	if len(h.a) == 0 {
		return event{}, false
	}
	return h.a[0], true
}

func (h *eventHeap) pop() event {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	n := last
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.a[l].cycle < h.a[smallest].cycle {
			smallest = l
		}
		if r < n && h.a[r].cycle < h.a[smallest].cycle {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.a[i], h.a[smallest] = h.a[smallest], h.a[i]
		i = smallest
	}
	return top
}

func (h *eventHeap) reset() { h.a = h.a[:0] }
