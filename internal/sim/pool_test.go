package sim_test

import (
	"reflect"
	"testing"

	"poise/internal/sched"
	"poise/internal/sim"
	"poise/internal/testutil"
	"poise/internal/trace"
)

// TestPoolResetBitIdentical is the GPU pool's load-bearing invariant:
// after any sequence of runs — including policies that mutate GPU-side
// state beyond plain execution (CCWS attaches victim tag arrays to the
// L1, APCM installs bypass tables) and tuple tracing — Reset must
// leave the GPU reflect.DeepEqual-identical to a freshly constructed
// one. DeepEqual inspects unexported fields through the whole object
// graph (caches, MSHR maps, schedulers, warp slots, event heap), so
// this is a bit-level fresh-state check, not a behavioural smoke test.
func TestPoolResetBitIdentical(t *testing.T) {
	cfg := testutil.TinyConfig()
	fresh, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	used, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, used) {
		t.Fatal("two fresh GPUs must start identical (test precondition)")
	}

	k := testutil.ThrashKernel("poolreset", 24, 20, 4)
	used.TraceTuples = true
	for _, pol := range []sim.Policy{
		sim.GTO{},
		sched.NewCCWS(200),
		sched.NewAPCM(200),
		sim.Fixed{N: 3, P: 1},
	} {
		if _, err := used.Run(k, pol, sim.RunOptions{}); err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
	}
	if reflect.DeepEqual(fresh, used) {
		t.Fatal("running kernels must dirty the GPU (test precondition)")
	}

	used.Reset()
	if !reflect.DeepEqual(fresh, used) {
		t.Fatal("Reset GPU differs from fresh construction")
	}

	// And the reset GPU must simulate identically to a fresh one.
	resFresh, err := fresh.Run(k, sim.GTO{}, sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	resReset, err := used.Run(k, sim.GTO{}, sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resFresh, resReset) {
		t.Fatalf("reset GPU diverged from fresh GPU:\nfresh %+v\nreset %+v", resFresh, resReset)
	}
}

// TestPoolRecycles checks the pool mechanics: Get prefers parked GPUs,
// Put resets before parking, and sequential Get/Put reuses one GPU.
func TestPoolRecycles(t *testing.T) {
	pool, err := sim.NewPool(testutil.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	k := testutil.ThrashKernel("poolrun", 16, 10, 2)

	var first *sim.GPU
	for i := 0; i < 5; i++ {
		g, err := pool.Get()
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = g
		} else if g != first {
			t.Fatal("sequential Get/Put must reuse the same GPU")
		}
		if _, err := g.Run(k, sim.GTO{}, sim.RunOptions{}); err != nil {
			t.Fatal(err)
		}
		pool.Put(g)
	}
	builds, reuses := pool.Stats()
	if builds != 1 || reuses != 4 {
		t.Fatalf("builds=%d reuses=%d, want 1 build and 4 reuses", builds, reuses)
	}
	if pool.Idle() != 1 {
		t.Fatalf("idle=%d, want 1", pool.Idle())
	}
}

// TestPoolRejectsBadConfig: a pool with an invalid configuration fails
// at construction, not on a worker's first Get.
func TestPoolRejectsBadConfig(t *testing.T) {
	cfg := testutil.TinyConfig()
	cfg.NumSMs = 0
	if _, err := sim.NewPool(cfg); err == nil {
		t.Fatal("invalid config must fail NewPool")
	}
	ps := sim.NewPoolSet()
	if _, err := ps.Get(cfg); err == nil {
		t.Fatal("invalid config must fail PoolSet.Get")
	}
}

// TestPoolResetAfterWorkloadRun extends the reset invariant to
// multi-kernel workload runs, whose Warm option carries L2 contents
// across kernels: after RunWorkload, Reset must still restore
// fresh-construction state, and a reset GPU must replay the workload
// identically — the property that lets experiment-grid cells recycle
// GPUs through a pool.
func TestPoolResetAfterWorkloadRun(t *testing.T) {
	cfg := testutil.TinyConfig()
	fresh, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	used, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := &sim.Workload{Name: "poolwl", Kernels: []*trace.Kernel{
		testutil.ThrashKernel("poolwl#0", 24, 12, 3),
		testutil.ThrashKernel("poolwl#1", 16, 10, 2),
	}}
	want, err := used.RunWorkload(w, sim.GTO{}, sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	used.Reset()
	if !reflect.DeepEqual(fresh, used) {
		t.Fatal("Reset after a warm multi-kernel workload run differs from fresh construction")
	}
	got, err := used.RunWorkload(w, sim.GTO{}, sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("reset GPU replayed the workload differently")
	}
}

// TestPoolSetPerConfig: a PoolSet keeps one pool per distinct
// configuration, recycling within a configuration and never across.
func TestPoolSetPerConfig(t *testing.T) {
	cfgA := testutil.TinyConfig()
	cfgB := testutil.TinyConfig()
	cfgB.L1.SizeBytes *= 2
	ps := sim.NewPoolSet()

	a1, err := ps.Get(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := ps.Get(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Cfg != cfgA || b1.Cfg != cfgB {
		t.Fatal("PoolSet handed out GPUs with the wrong configuration")
	}
	ps.Put(cfgA, a1)
	ps.Put(cfgB, b1)
	a2, err := ps.Get(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a1 {
		t.Fatal("PoolSet must recycle within a configuration")
	}
	b2, err := ps.Get(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if b2 != b1 {
		t.Fatal("PoolSet must recycle the other configuration's GPU too")
	}
	builds, reuses := ps.Stats()
	if builds != 2 || reuses != 2 {
		t.Fatalf("builds=%d reuses=%d, want 2 and 2", builds, reuses)
	}
	ps.Put(cfgA, nil) // nil puts are ignored
}
