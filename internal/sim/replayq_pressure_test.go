package sim_test

import (
	"testing"

	"poise/internal/sim"
	"poise/internal/testutil"
)

// TestReplayQueueBoundedUnderPressure runs a thrashing kernel against a
// single-entry MSHR file — every cycle of every warp fights for the one
// entry, so warps park in the replay queues continuously — and checks
// the queues never grow past the architectural bound of one parked
// entry per resident warp. The head-reslice pop this guards against
// leaked one backing slot per admission, so capacity grew with the
// number of replays instead of staying at the warp count.
func TestReplayQueueBoundedUnderPressure(t *testing.T) {
	cfg := testutil.TinyConfig()
	cfg.L1.MSHRs = 1
	g, err := sim.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	w := testutil.Workload("pressure", testutil.ThrashKernel("p", 96, 40, 4))
	res, err := g.RunWorkload(w, sim.GTO{}, sim.RunOptions{})
	if err != nil {
		t.Fatalf("RunWorkload: %v", err)
	}
	var replays int64
	for _, k := range res.PerKernel {
		replays += k.Replays
	}
	if replays == 0 {
		t.Fatal("workload produced no replays; MSHR pressure scenario is broken")
	}
	bound := cfg.MaxWarpsPerSM()
	for _, s := range g.SMs {
		if c := cap(s.ReplayQ); c > bound {
			t.Errorf("SM %d replay queue capacity %d exceeds resident-warp bound %d (storage leak)",
				s.ID, c, bound)
		}
	}
}
