package sim_test

import (
	"testing"
	"testing/quick"

	"poise/internal/config"
	"poise/internal/sim"
	"poise/internal/testutil"
	"poise/internal/trace"
)

// Property: for any valid tuple, a run completes with the exact
// instruction count and internally consistent counters — issue
// accounting, cache accounting and memory-side accounting must all
// agree regardless of how aggressively the kernel is throttled.
func TestRunInvariantsAcrossTuples(t *testing.T) {
	k := testutil.ThrashKernel("inv", 24, 25, 4)
	want := int64(k.TotalWarps()) * int64(k.Iters) * int64(len(k.Body))
	wantLoads := int64(k.TotalWarps()) * int64(k.Iters) * int64(k.LoadsPerIter())
	f := func(nRaw, pRaw uint8) bool {
		n := int(nRaw)%24 + 1
		p := int(pRaw)%n + 1
		g, err := sim.New(testutil.TinyConfig())
		if err != nil {
			return false
		}
		res, err := g.Run(k, sim.Fixed{N: n, P: p}, sim.RunOptions{})
		if err != nil {
			return false
		}
		if res.Instructions != want || res.Loads != wantLoads {
			return false
		}
		// Cache accounting: hits + misses = accesses; class splits sum.
		misses := res.L1.Accesses - res.L1.Hits
		if misses < 0 {
			return false
		}
		if res.L1.IntraWarpHits+res.L1.InterWarpHits != res.L1.Hits {
			return false
		}
		if res.L1.PolluteAccesses+res.L1.NoPollAccesses != res.L1.Accesses {
			return false
		}
		if res.L1.PolluteHits+res.L1.NoPollHits != res.L1.Hits {
			return false
		}
		// Memory side: every L2 access was an L1 miss event (primary
		// misses only, so bounded above by misses; stores add traffic on
		// kernels that have them — this one has none).
		if res.L2Accesses > misses {
			return false
		}
		// DRAM accesses are bounded by L2 misses.
		if res.DRAMAcc > res.L2Accesses {
			return false
		}
		return res.Cycles > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: tighter tuples never change WHAT executes, only WHEN: the
// per-kernel DRAM/L2 traffic may differ, but total instructions and
// loads are invariant (verified above), and results stay deterministic
// per tuple.
func TestTupleDeterminismProperty(t *testing.T) {
	k := testutil.ThrashKernel("det2", 20, 20, 4)
	f := func(nRaw uint8) bool {
		n := int(nRaw)%24 + 1
		a := testutil.RunTiny(k, sim.Fixed{N: n, P: (n + 1) / 2})
		b := testutil.RunTiny(k, sim.Fixed{N: n, P: (n + 1) / 2})
		return a.Cycles == b.Cycles && a.L1.Hits == b.L1.Hits &&
			a.DRAMAcc == b.DRAMAcc && a.AML == b.AML
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Failure injection: a hostile policy that thrashes tuples every few
// cycles must neither deadlock nor corrupt execution.
type hostilePolicy struct{ step int64 }

func (h *hostilePolicy) Name() string { return "hostile" }
func (h *hostilePolicy) KernelStart(g *sim.GPU, k *trace.Kernel) int64 {
	g.SetTupleAll(1, 1)
	return 7
}
func (h *hostilePolicy) Step(g *sim.GPU, now int64) int64 {
	h.step++
	n := int(h.step%24) + 1
	p := int(h.step%7) + 1
	for i := range g.SMs {
		g.SetTuple(i, n, p)
	}
	return now + 7 + h.step%13
}
func (h *hostilePolicy) KernelEnd(g *sim.GPU, now int64) {}

func TestHostilePolicySafe(t *testing.T) {
	k := testutil.ThrashKernel("hostile", 24, 40, 6)
	res := testutil.RunTiny(k, &hostilePolicy{})
	want := int64(k.TotalWarps()) * int64(k.Iters) * int64(len(k.Body))
	if res.Instructions != want {
		t.Fatalf("hostile steering corrupted execution: %d != %d", res.Instructions, want)
	}
}

// Failure injection: one-entry MSHR file with heavy misses — the
// harshest backpressure configuration — must still drain.
func TestOneEntryMSHRDrains(t *testing.T) {
	cfg := testutil.TinyConfig()
	cfg.L1.MSHRs = 1
	k := testutil.StreamKernel("mshr1", 25, 4)
	g, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run(k, sim.GTO{}, sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replays == 0 {
		t.Fatal("one MSHR entry must cause replays")
	}
}

// Failure injection: a single DRAM partition and a single L2 bank (the
// maximum-contention memory side) must still complete with sane AML.
func TestMaximumContentionMemorySide(t *testing.T) {
	cfg := testutil.TinyConfig()
	cfg.DRAMPartitions = 1
	cfg.L2Banks = 1
	cfg.L2.SizeBytes = cfg.L2.SizeBytes / cfg.L2Banks
	k := testutil.StreamKernel("squeeze", 30, 4)
	g, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run(k, sim.GTO{}, sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.AML <= float64(cfg.DRAMLatency) {
		t.Fatalf("AML %.0f must exceed the unloaded DRAM latency under congestion", res.AML)
	}
}

// Iteration jitter must not break completion accounting.
func TestJitteredKernelCompletes(t *testing.T) {
	k := testutil.ThrashKernel("jit", 16, 40, 4)
	k.IterJitter = 0.4
	var want int64
	for w := 0; w < k.TotalWarps(); w++ {
		want += int64(k.WarpIters(w)) * int64(len(k.Body))
	}
	res := testutil.RunTiny(k, sim.GTO{})
	if res.Instructions != want {
		t.Fatalf("jittered kernel: %d != %d", res.Instructions, want)
	}
}

// Occupancy-limited kernels leave scheduler slots empty and still
// complete; the tuple clamps to the occupancy bound.
func TestOccupancyLimitedRun(t *testing.T) {
	cfg := testutil.TinyConfig()
	k := testutil.ThrashKernel("occl", 16, 20, 4)
	k.MaxWarpsPerSched = 8
	g, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run(k, sim.Fixed{N: 23, P: 23}, sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions == 0 {
		t.Fatal("no progress")
	}
	if n, _ := g.SMs[0].Tuple(); n > 23 {
		t.Fatalf("tuple exceeded request: %d", n)
	}
}

// Warm L2 across kernels of one workload: the second identical kernel
// must see a higher L2 hit rate than the first (contents persist).
func TestWarmL2AcrossKernels(t *testing.T) {
	k1 := testutil.SharedKernel("warm1", 64, 30, 4)
	k2 := testutil.SharedKernel("warm2", 64, 30, 4)
	k2.Patterns = k1.Patterns // same addresses
	w := testutil.Workload("warm", k1, k2)
	res, err := sim.RunWorkload(testutil.TinyConfig(), w, sim.GTO{}, sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerKernel) != 2 {
		t.Fatal("need both kernels")
	}
	h1 := res.PerKernel[0].L2HitRate()
	h2 := res.PerKernel[1].L2HitRate()
	if h2 <= h1 {
		t.Fatalf("second kernel must benefit from warm L2: %.3f -> %.3f", h1, h2)
	}
}

// The config scaler must keep simulations valid across the whole range
// of SM counts.
func TestScaledConfigsAllRun(t *testing.T) {
	for _, sms := range []int{1, 2, 4, 8, 16} {
		cfg := config.Default().Scale(sms)
		k := testutil.ThrashKernel("scale", 16, 10, 4)
		g, err := sim.New(cfg)
		if err != nil {
			t.Fatalf("sms=%d: %v", sms, err)
		}
		if _, err := g.Run(k, sim.GTO{}, sim.RunOptions{}); err != nil {
			t.Fatalf("sms=%d: %v", sms, err)
		}
	}
}
