package sim

import (
	"encoding/json"
	"errors"
	"fmt"

	"poise/internal/config"
	"poise/internal/snap"
)

// Workload-level preemption. RunWorkloadPreemptible runs a workload
// under an InterruptCtl; when the control fires mid-kernel, the run
// stops at a safe point and comes back as a Checkpoint — the GPU's
// mid-kernel state plus the workload aggregation so far. ResumeWorkload
// restores the checkpoint on a fresh GPU (anywhere: another process,
// another fleet worker) and finishes the run bit-identical to an
// uninterrupted one. A resumed run is itself preemptible, so a task can
// bounce across arbitrarily many workers.

const maxAggSnap = 1 << 24

// workloadAgg accumulates per-kernel results into a WorkloadResult,
// carrying the load-weighted AML numerator/denominator so aggregation
// can stop and resume without losing the weighting.
type workloadAgg struct {
	res    WorkloadResult
	amlSum float64
	amlW   int64
}

func newWorkloadAgg(w *Workload, p Policy) *workloadAgg {
	a := &workloadAgg{res: WorkloadResult{Workload: w.Name}}
	if p != nil {
		a.res.Policy = p.Name()
	}
	return a
}

func (a *workloadAgg) add(kr KernelResult) {
	res := &a.res
	res.PerKernel = append(res.PerKernel, kr)
	res.Cycles += kr.Cycles
	res.Instructions += kr.Instructions
	res.L1.Accesses += kr.L1.Accesses
	res.L1.Hits += kr.L1.Hits
	res.L1.IntraWarpHits += kr.L1.IntraWarpHits
	res.L1.InterWarpHits += kr.L1.InterWarpHits
	res.L1.PolluteAccesses += kr.L1.PolluteAccesses
	res.L1.PolluteHits += kr.L1.PolluteHits
	res.L1.NoPollAccesses += kr.L1.NoPollAccesses
	res.L1.NoPollHits += kr.L1.NoPollHits
	res.L1.Evictions += kr.L1.Evictions
	res.L1.Bypasses += kr.L1.Bypasses
	res.L1.Fills += kr.L1.Fills
	res.DRAMAcc += kr.DRAMAcc
	res.L2Acc += kr.L2Accesses
	res.L2Hits += kr.L2Hits
	res.NoCReqFlits += kr.NoCReqFlits
	res.NoCRespFlits += kr.NoCRespFlits
	if kr.AML > 0 {
		weight := kr.L1.Accesses - kr.L1.Hits
		a.amlSum += kr.AML * float64(weight)
		a.amlW += weight
	}
}

// finish computes the derived ratios and returns the aggregate. It
// does not consume the agg: more kernels may be added and finish
// called again (the ratios are recomputed from scratch each time).
func (a *workloadAgg) finish() WorkloadResult {
	res := a.res
	if res.Cycles > 0 {
		res.IPC = float64(res.Instructions) / float64(res.Cycles)
	}
	if a.amlW > 0 {
		res.AML = a.amlSum / float64(a.amlW)
	}
	return res
}

// encode serialises the aggregation. The WorkloadResult travels as
// JSON — Go renders float64 in shortest round-trip form, so the
// decoded struct is bit-identical — and the AML numerator as raw
// float bits.
func (a *workloadAgg) encode() []byte {
	w := snap.NewWriter()
	js, err := json.Marshal(a.res)
	if err != nil {
		// WorkloadResult is plain data; Marshal cannot fail.
		panic(fmt.Sprintf("sim: marshal workload agg: %v", err))
	}
	w.Bytes(js)
	w.Float64(a.amlSum)
	w.Varint(a.amlW)
	return w.Data()
}

func decodeWorkloadAgg(data []byte) (*workloadAgg, error) {
	r := snap.NewReader(data)
	js := r.LimitedBytes(maxAggSnap)
	a := &workloadAgg{}
	if r.Err() == nil {
		if err := json.Unmarshal(js, &a.res); err != nil {
			return nil, fmt.Errorf("sim: workload agg: %w", err)
		}
	}
	a.amlSum = r.Float64()
	a.amlW = r.Varint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("sim: %d trailing bytes in workload agg", r.Len())
	}
	return a, nil
}

// Checkpoint is a preempted workload run: which kernel was in flight,
// the GPU + policy state at the interrupt point, and the results of
// the kernels already completed.
type Checkpoint struct {
	Workload    string
	KernelIndex int
	Cycle       int64
	// State is the SnapshotKernel payload for the in-flight kernel.
	State []byte
	// Agg is the serialised aggregation over kernels 0..KernelIndex-1.
	Agg []byte
}

// Snapshot packs the checkpoint into a poisesnap container under the
// given content key (for snap.Store.Save).
func (c *Checkpoint) Snapshot(key string) *snap.Snapshot {
	w := snap.NewWriter()
	w.Bytes(c.Agg)
	w.Bytes(c.State)
	return &snap.Snapshot{
		Kind:        snap.KindCheckpoint,
		Key:         key,
		Workload:    c.Workload,
		KernelIndex: c.KernelIndex,
		Cycle:       c.Cycle,
		State:       w.Data(),
	}
}

// Encode serialises the checkpoint container to bytes.
func (c *Checkpoint) Encode(key string) ([]byte, error) {
	return c.Snapshot(key).Encode()
}

// CheckpointFromSnapshot unpacks a KindCheckpoint container.
func CheckpointFromSnapshot(sn *snap.Snapshot) (*Checkpoint, error) {
	if sn.Kind != snap.KindCheckpoint {
		return nil, fmt.Errorf("sim: snapshot kind %v is not a workload checkpoint", sn.Kind)
	}
	r := snap.NewReader(sn.State)
	agg := r.LimitedBytes(maxAggSnap)
	state := r.LimitedBytes(1 << 30)
	if r.Err() != nil {
		return nil, r.Err()
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("sim: %d trailing bytes in checkpoint", r.Len())
	}
	return &Checkpoint{
		Workload:    sn.Workload,
		KernelIndex: sn.KernelIndex,
		Cycle:       sn.Cycle,
		State:       state,
		Agg:         agg,
	}, nil
}

// DecodeCheckpoint parses an encoded checkpoint container.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	sn, err := snap.Decode(data)
	if err != nil {
		return nil, err
	}
	return CheckpointFromSnapshot(sn)
}

// RunWorkloadPreemptible is RunWorkload with a checkpoint path: when
// opts.Interrupt fires mid-kernel the error is ErrInterrupted (test
// with errors.Is) and the returned Checkpoint resumes the run — on
// this machine or any other — via ResumeWorkload.
func RunWorkloadPreemptible(cfg config.Config, w *Workload, p Policy, opts RunOptions) (WorkloadResult, *Checkpoint, error) {
	if err := w.Validate(); err != nil {
		return WorkloadResult{}, nil, err
	}
	g, err := New(cfg)
	if err != nil {
		return WorkloadResult{}, nil, err
	}
	agg := newWorkloadAgg(w, p)
	res, err := g.runKernelsFrom(w, p, opts, 0, agg)
	if err != nil {
		if errors.Is(err, ErrInterrupted) {
			cp, cperr := g.checkpoint(w, p, agg)
			if cperr != nil {
				return res, nil, cperr
			}
			return res, cp, err
		}
		return res, nil, err
	}
	return res, nil, nil
}

// checkpoint captures the interrupted kernel + aggregation state.
func (g *GPU) checkpoint(w *Workload, p Policy, agg *workloadAgg) (*Checkpoint, error) {
	state, err := g.SnapshotKernel(p)
	if err != nil {
		return nil, err
	}
	return &Checkpoint{
		Workload:    w.Name,
		KernelIndex: len(agg.res.PerKernel),
		Cycle:       g.now,
		State:       state,
		Agg:         agg.encode(),
	}, nil
}

// ResumeWorkload restores cp on a fresh GPU and runs the workload to
// completion. The caller supplies the same workload definition, a
// policy constructed with the same parameters, and options whose
// engine/limit fields match the interrupted run (opts.Interrupt may be
// a fresh control to preempt again — the third return value is the
// next checkpoint in that case).
func ResumeWorkload(cfg config.Config, w *Workload, p Policy, opts RunOptions, cp *Checkpoint) (WorkloadResult, *Checkpoint, error) {
	if err := w.Validate(); err != nil {
		return WorkloadResult{}, nil, err
	}
	if cp.Workload != w.Name {
		return WorkloadResult{}, nil, fmt.Errorf("sim: checkpoint is of workload %q, not %q", cp.Workload, w.Name)
	}
	if cp.KernelIndex < 0 || cp.KernelIndex >= len(w.Kernels) {
		return WorkloadResult{}, nil, fmt.Errorf("sim: checkpoint kernel index %d out of range for %s (%d kernels)",
			cp.KernelIndex, w.Name, len(w.Kernels))
	}
	agg, err := decodeWorkloadAgg(cp.Agg)
	if err != nil {
		return WorkloadResult{}, nil, err
	}
	if len(agg.res.PerKernel) != cp.KernelIndex {
		return WorkloadResult{}, nil, fmt.Errorf("sim: checkpoint aggregation covers %d kernels, expected %d",
			len(agg.res.PerKernel), cp.KernelIndex)
	}
	g, err := New(cfg)
	if err != nil {
		return WorkloadResult{}, nil, err
	}
	k := w.Kernels[cp.KernelIndex]
	kr, err := g.ResumeKernel(k, p, opts, cp.State)
	if err != nil {
		if errors.Is(err, ErrInterrupted) {
			ncp, cperr := g.checkpoint(w, p, agg)
			if cperr != nil {
				return agg.finish(), nil, cperr
			}
			return agg.finish(), ncp, fmt.Errorf("sim: workload %s kernel %s: %w", w.Name, k.Name, err)
		}
		return agg.finish(), nil, fmt.Errorf("sim: workload %s kernel %s: %w", w.Name, k.Name, err)
	}
	agg.add(kr)
	res, err := g.runKernelsFrom(w, p, opts, cp.KernelIndex+1, agg)
	if err != nil {
		if errors.Is(err, ErrInterrupted) {
			ncp, cperr := g.checkpoint(w, p, agg)
			if cperr != nil {
				return res, nil, cperr
			}
			return res, ncp, err
		}
		return res, nil, err
	}
	return res, nil, nil
}
