package sim

import (
	"errors"
	"fmt"

	"poise/internal/cache"
	"poise/internal/config"
	"poise/internal/trace"
)

// Workload is an application: a named sequence of kernels run
// back-to-back, like the multi-kernel CUDA benchmarks of the paper
// (e.g. ii runs 118 kernels). Metrics aggregate across kernels.
type Workload struct {
	Name    string
	Kernels []*trace.Kernel
	// MemorySensitive mirrors the paper's Pbest > 1.4 classification;
	// set by the workload catalogue for reporting.
	MemorySensitive bool
}

// Validate checks every kernel.
func (w *Workload) Validate() error {
	if w.Name == "" {
		return errors.New("sim: workload needs a name")
	}
	if len(w.Kernels) == 0 {
		return fmt.Errorf("sim: workload %s has no kernels", w.Name)
	}
	for _, k := range w.Kernels {
		if err := k.Validate(); err != nil {
			return fmt.Errorf("sim: workload %s kernel %s: %w", w.Name, k.Name, err)
		}
	}
	return nil
}

// DistinctKernels returns the kernels of ws deduplicated by name, in
// first-appearance order — the canonical kernel set for profile
// sweeps and sweep plans (a name can appear in several workloads; the
// first occurrence wins, matching catalogue shadowing semantics).
func DistinctKernels(ws []*Workload) []*trace.Kernel {
	var kernels []*trace.Kernel
	seen := map[string]bool{}
	for _, w := range ws {
		for _, k := range w.Kernels {
			if !seen[k.Name] {
				seen[k.Name] = true
				kernels = append(kernels, k)
			}
		}
	}
	return kernels
}

// WorkloadResult aggregates a workload run.
type WorkloadResult struct {
	Workload string
	Policy   string

	Cycles       int64
	Instructions int64
	IPC          float64

	L1      cache.Stats
	AML     float64 // load-weighted mean across kernels
	DRAMAcc int64
	L2Acc   int64
	L2Hits  int64

	NoCReqFlits  int64
	NoCRespFlits int64

	PerKernel []KernelResult
}

// L1HitRate returns the aggregate L1 hit rate.
func (r WorkloadResult) L1HitRate() float64 { return r.L1.HitRate() }

// RunWorkload executes every kernel of w in order on a fresh GPU with
// the given policy and aggregates the results. L2 contents stay warm
// across the kernels of one workload.
func RunWorkload(cfg config.Config, w *Workload, p Policy, opts RunOptions) (WorkloadResult, error) {
	if err := w.Validate(); err != nil {
		return WorkloadResult{}, err
	}
	g, err := New(cfg)
	if err != nil {
		return WorkloadResult{}, err
	}
	return g.RunWorkload(w, p, opts)
}

// RunWorkload executes every kernel of w in order on this GPU.
func (g *GPU) RunWorkload(w *Workload, p Policy, opts RunOptions) (WorkloadResult, error) {
	return g.runKernelsFrom(w, p, opts, 0, newWorkloadAgg(w, p))
}

// runKernelsFrom runs kernels start.. of w, folding results into agg.
// It is the shared tail of RunWorkload, ResumeWorkload and the prefix
// cache (which restores a boundary snapshot and runs the remainder).
func (g *GPU) runKernelsFrom(w *Workload, p Policy, opts RunOptions, start int, agg *workloadAgg) (WorkloadResult, error) {
	for i := start; i < len(w.Kernels); i++ {
		k := w.Kernels[i]
		ko := opts
		ko.Warm = i > 0
		kr, err := g.Run(k, p, ko)
		if err != nil {
			return agg.finish(), fmt.Errorf("sim: workload %s kernel %s: %w", w.Name, k.Name, err)
		}
		agg.add(kr)
	}
	return agg.finish(), nil
}

// GTO is the baseline policy: maximum warps, everything pollutes.
type GTO struct{}

// Name implements Policy.
func (GTO) Name() string { return "GTO" }

// KernelStart implements Policy.
func (GTO) KernelStart(g *GPU, k *trace.Kernel) int64 {
	max := g.MaxN()
	g.SetTupleAll(max, max)
	return Never
}

// Step implements Policy.
func (GTO) Step(g *GPU, now int64) int64 { return Never }

// KernelEnd implements Policy.
func (GTO) KernelEnd(g *GPU, now int64) {}

// Fixed pins every SM to one static warp-tuple for the whole run: the
// building block for SWL (p = N) and for Static-Best profiles.
type Fixed struct {
	PolicyName string
	N, P       int
	// PerKernel overrides the tuple for specific kernel names (the
	// Static-Best and SWL policies profile per kernel).
	PerKernel map[string][2]int
}

// Name implements Policy.
func (f Fixed) Name() string {
	if f.PolicyName != "" {
		return f.PolicyName
	}
	return fmt.Sprintf("Fixed(%d,%d)", f.N, f.P)
}

// KernelStart implements Policy.
func (f Fixed) KernelStart(g *GPU, k *trace.Kernel) int64 {
	n, p := f.N, f.P
	if t, ok := f.PerKernel[k.Name]; ok {
		n, p = t[0], t[1]
	}
	if n <= 0 {
		n = g.MaxN()
	}
	if p <= 0 {
		p = n
	}
	g.SetTupleAll(n, p)
	return Never
}

// Step implements Policy.
func (f Fixed) Step(g *GPU, now int64) int64 { return Never }

// KernelEnd implements Policy.
func (f Fixed) KernelEnd(g *GPU, now int64) {}
