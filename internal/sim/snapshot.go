package sim

import (
	"errors"
	"fmt"

	"poise/internal/snap"
	"poise/internal/trace"
)

// Mid-run snapshot/restore. The GPU serialises every piece of live
// engine state — SMs (schedulers, warps, scoreboards, L1 + victim
// tags, MSHRs, replay queues, PC tables), the L2 banks, NoC and DRAM
// servers, the event heap, the visit counter and the parked policy
// activation — into a snap payload. Restore-then-finish is proven
// bit-identical to uninterrupted runs (results, per-scheduler
// counters and tuple logs) by TestSnapshotRestoreIdentity across the
// catalogue workloads and every scheme class.
//
// The ready queue itself is deliberately not serialised: an interrupt
// settles all blocked-cycle spans first, after which the queue's
// classification is a pure function of the wake hints the schedulers
// carry — startResume rebuilds it. Keeping derived state out of the
// payload keeps the format small and removes a whole class of
// restore-inconsistency bugs.

// simStateVersion versions the GPU state payload inside a poisesnap
// container (the container has its own version for the envelope).
const simStateVersion = 1

const (
	maxEventsSnap   = 1 << 24
	maxTupleLogSnap = 1 << 24
	maxNameSnap     = 1 << 12
)

// StatefulPolicy is implemented by policies that carry mutable state
// across Step calls (CCWS, APCM, PCAL-SWL, random-restart, Poise).
// Checkpointing captures that state so a resumed run continues the
// policy's trajectory exactly; stateless policies (GTO, Fixed) need
// nothing. The restoring side constructs the policy with the same
// parameters — only mutable state crosses the wire.
type StatefulPolicy interface {
	Policy
	// EncodePolicyState serialises the mutable state.
	EncodePolicyState(w *snap.Writer)
	// DecodePolicyState restores state written by EncodePolicyState.
	DecodePolicyState(r *snap.Reader) error
}

// encodeState serialises the GPU. With running=true the in-flight
// kernel's loop state (event heap, launch cursors, visit counter,
// parked policy activation, tuple log) is included; kernel-boundary
// snapshots omit it because Run re-initialises all of it per kernel.
func (g *GPU) encodeState(w *snap.Writer, running bool) {
	w.Uvarint(simStateVersion)
	w.Varint(g.now)
	w.Varint(g.L2Accesses)
	w.Varint(g.L2Hits)
	w.Uvarint(uint64(len(g.banks)))
	for i := range g.banks {
		w.Varint(g.banks[i].nextFree)
		g.banks[i].c.EncodeState(w)
	}
	g.NoC.EncodeState(w)
	g.DRAM.EncodeState(w)
	w.Uvarint(uint64(len(g.SMs)))
	for _, s := range g.SMs {
		s.EncodeState(w)
	}
	w.Bool(running)
	if !running {
		return
	}
	w.String(g.kernel.Name)
	w.Varint(int64(g.bodyLen))
	w.Varint(int64(g.nextBlk))
	w.Varint(int64(g.doneWarp))
	w.Varint(int64(g.total))
	w.Uvarint(uint64(len(g.events.a)))
	for _, e := range g.events.a {
		w.Varint(e.cycle)
		w.Uvarint(uint64(e.kind))
		w.Varint(int64(e.sm))
		w.Uvarint(e.line)
	}
	w.Varint(g.rq.visits)
	w.Varint(g.policyNext)
	w.Bool(g.TraceTuples)
	w.Uvarint(uint64(len(g.TupleLog)))
	for _, ev := range g.TupleLog {
		w.Varint(ev.Cycle)
		w.Varint(int64(ev.SM))
		w.Varint(int64(ev.N))
		w.Varint(int64(ev.P))
		w.Bool(ev.Predicted)
	}
}

// decodeState restores state written by encodeState onto a GPU built
// from the same configuration. It reports whether the snapshot was of
// a running kernel.
func (g *GPU) decodeState(r *snap.Reader) (running bool, err error) {
	if v := r.Uvarint(); r.Err() == nil && v != simStateVersion {
		return false, fmt.Errorf("sim: unsupported state version %d (have %d)", v, simStateVersion)
	}
	g.now = r.Varint()
	g.L2Accesses = r.Varint()
	g.L2Hits = r.Varint()
	if n := r.Uvarint(); r.Err() == nil && n != uint64(len(g.banks)) {
		return false, fmt.Errorf("sim: snapshot has %d L2 banks, GPU has %d", n, len(g.banks))
	}
	for i := range g.banks {
		g.banks[i].nextFree = r.Varint()
		if err := g.banks[i].c.DecodeState(r); err != nil {
			return false, err
		}
	}
	if err := g.NoC.DecodeState(r); err != nil {
		return false, err
	}
	if err := g.DRAM.DecodeState(r); err != nil {
		return false, err
	}
	if n := r.Uvarint(); r.Err() == nil && n != uint64(len(g.SMs)) {
		return false, fmt.Errorf("sim: snapshot has %d SMs, GPU has %d", n, len(g.SMs))
	}
	for _, s := range g.SMs {
		if err := s.DecodeState(r); err != nil {
			return false, err
		}
	}
	running = r.Bool()
	if r.Err() != nil || !running {
		return running, r.Err()
	}
	name := r.LimitedString(maxNameSnap)
	g.bodyLen = int(r.Varint())
	g.nextBlk = int(r.Varint())
	g.doneWarp = int(r.Varint())
	g.total = int(r.Varint())
	ne := r.Count(maxEventsSnap)
	g.events.a = g.events.a[:0]
	for i := 0; i < ne; i++ {
		g.events.a = append(g.events.a, event{
			cycle: r.Varint(),
			kind:  eventKind(r.Uvarint()),
			sm:    int32(r.Varint()),
			line:  r.Uvarint(),
		})
	}
	g.rq.visits = r.Varint()
	g.policyNext = r.Varint()
	g.TraceTuples = r.Bool()
	nt := r.Count(maxTupleLogSnap)
	g.TupleLog = g.TupleLog[:0]
	for i := 0; i < nt; i++ {
		g.TupleLog = append(g.TupleLog, TupleEvent{
			Cycle:     r.Varint(),
			SM:        int(r.Varint()),
			N:         int(r.Varint()),
			P:         int(r.Varint()),
			Predicted: r.Bool(),
		})
	}
	if r.Err() != nil {
		return true, r.Err()
	}
	// The kernel pointer cannot be serialised (it holds pattern
	// closures); the caller must hand the same kernel to ResumeKernel.
	// Stash its name for the identity check there.
	g.kernel = &trace.Kernel{Name: name}
	return true, nil
}

// encodePolicy appends the policy identity and, for stateful policies,
// their mutable state.
func encodePolicy(w *snap.Writer, p Policy) {
	name := ""
	if p != nil {
		name = p.Name()
	}
	w.String(name)
	if sp, ok := p.(StatefulPolicy); ok {
		w.Bool(true)
		sp.EncodePolicyState(w)
	} else {
		w.Bool(false)
	}
}

// decodePolicy checks the snapshot was taken under an identically
// named policy and restores its state.
func decodePolicy(r *snap.Reader, p Policy) error {
	name := r.LimitedString(maxNameSnap)
	want := ""
	if p != nil {
		want = p.Name()
	}
	if r.Err() == nil && name != want {
		return fmt.Errorf("sim: snapshot was taken under policy %q, resuming with %q", name, want)
	}
	if r.Bool() {
		sp, ok := p.(StatefulPolicy)
		if !ok {
			return fmt.Errorf("sim: snapshot carries state for policy %q but it is not restorable", want)
		}
		return sp.DecodePolicyState(r)
	}
	return r.Err()
}

// SnapshotKernel captures the GPU mid-kernel, immediately after Run
// returned ErrInterrupted, together with the policy's state. The
// returned payload restores with ResumeKernel on any GPU built from
// the same configuration.
func (g *GPU) SnapshotKernel(p Policy) ([]byte, error) {
	if g.kernel == nil {
		return nil, errors.New("sim: no interrupted kernel to snapshot")
	}
	w := snap.NewWriter()
	g.encodeState(w, true)
	encodePolicy(w, p)
	return w.Data(), nil
}

// ResumeKernel restores a mid-kernel snapshot taken by SnapshotKernel
// and runs the kernel to completion, returning the same KernelResult
// an uninterrupted run would have. The caller supplies the identical
// kernel (its pattern closures cannot be serialised) and a policy
// constructed with the same parameters as the interrupted run's.
// opts.Interrupt may be armed again: the resumed run is itself
// preemptible (pass a fresh control — a fired one re-triggers
// immediately).
func (g *GPU) ResumeKernel(k *trace.Kernel, p Policy, opts RunOptions, state []byte) (KernelResult, error) {
	if err := k.Validate(); err != nil {
		return KernelResult{}, err
	}
	if opts.Engine == EngineDense {
		return KernelResult{}, errors.New("sim: the dense engine does not support resume")
	}
	if opts.MaxCycles <= 0 {
		opts.MaxCycles = 500_000_000
	}
	r := snap.NewReader(state)
	running, err := g.decodeState(r)
	if err != nil {
		return KernelResult{}, err
	}
	if !running {
		return KernelResult{}, errors.New("sim: snapshot is not a mid-kernel state")
	}
	if g.kernel.Name != k.Name {
		return KernelResult{}, fmt.Errorf("sim: snapshot is of kernel %q, not %q", g.kernel.Name, k.Name)
	}
	if err := decodePolicy(r, p); err != nil {
		return KernelResult{}, err
	}
	if r.Len() != 0 {
		return KernelResult{}, fmt.Errorf("sim: %d trailing bytes in kernel state", r.Len())
	}
	if g.bodyLen != len(k.Body) || g.total != k.TotalWarps() || g.nextBlk > k.Blocks {
		return KernelResult{}, fmt.Errorf("sim: snapshot geometry (%d body, %d warps, %d blocks launched) does not match kernel %s",
			g.bodyLen, g.total, g.nextBlk, k.Name)
	}
	g.kernel = k
	visits := g.rq.visits
	g.rq.startResume(g, visits)
	defer g.rq.deactivate()
	return g.readyLoop(k, p, opts, g.policyNext)
}
