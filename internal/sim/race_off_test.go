//go:build !race

package sim_test

// raceEnabled lets the simulation-heavy engine-equivalence tests
// shrink their workload set when the race detector multiplies the cost
// of every simulated cycle. The full catalogue runs in the normal
// build (and in CI's dedicated no-race equivalence step).
const raceEnabled = false
