package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync/atomic"

	"poise/internal/config"
	"poise/internal/snap"
	"poise/internal/trace"
)

// Content-addressed kernel-boundary prefix cache. Sweeps and
// comparison grids run the same workloads under many tuple settings;
// whenever two runs agree on the (config, options, kernel digest,
// tuple) sequence for kernels 1..k, their GPU state at the k-th kernel
// boundary is identical — the simulation is deterministic — so the
// second run can restore a snapshot and start at kernel k+1. Keys are
// digest chains: H(prefix-key, kernel digest, applied tuple), rooted
// in the config and run options, so cells of different grids (or SWL
// vs Fixed policies that happen to pin the same tuples) share entries
// without any coordination.

// TuplePrefixer is implemented by policies whose effect on a kernel is
// fully determined by one warp-tuple pinned at kernel start (GTO,
// Fixed and the profile-derived SWL/Static-Best built on Fixed).
// Adaptive policies steer mid-kernel from observed counters, so their
// boundary state is not a function of a tuple sequence and they cannot
// use the prefix cache.
type TuplePrefixer interface {
	Policy
	// PrefixTuple returns the tuple the policy will pin for kernel k
	// (before scheduler clamping) and whether the prediction is exact.
	PrefixTuple(cfg config.Config, k *trace.Kernel) (n, p int, ok bool)
}

// kernelMaxN mirrors GPU.MaxN for key computation before a GPU exists.
func kernelMaxN(cfg config.Config, k *trace.Kernel) int {
	n := cfg.WarpsPerSched
	if k.MaxWarpsPerSched > 0 && k.MaxWarpsPerSched < n {
		n = k.MaxWarpsPerSched
	}
	return n
}

// clampTuple applies the scheduler's SetTuple clamp so keys use the
// tuple that actually takes effect, collapsing out-of-range requests
// onto the same entry.
func clampTuple(cfg config.Config, n, p int) (int, int) {
	c := cfg.WarpsPerSched
	if n < 1 {
		n = 1
	}
	if n > c {
		n = c
	}
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	return n, p
}

// PrefixTuple implements TuplePrefixer: GTO always runs all warps.
func (GTO) PrefixTuple(cfg config.Config, k *trace.Kernel) (int, int, bool) {
	m := kernelMaxN(cfg, k)
	return m, m, true
}

// PrefixTuple implements TuplePrefixer, replicating KernelStart's
// tuple resolution.
func (f Fixed) PrefixTuple(cfg config.Config, k *trace.Kernel) (int, int, bool) {
	n, p := f.N, f.P
	if t, ok := f.PerKernel[k.Name]; ok {
		n, p = t[0], t[1]
	}
	if n <= 0 {
		n = kernelMaxN(cfg, k)
	}
	if p <= 0 {
		p = n
	}
	return n, p, true
}

// PrefixCache shares kernel-boundary snapshots between workload runs
// through a content-addressed store. Safe for concurrent use by
// parallel sweep workers: entries are immutable once written (atomic
// rename) and a racing double-write produces the same bytes.
type PrefixCache struct {
	store *snap.Store

	// Counters report cache effectiveness (see BenchmarkPrefixCache).
	Hits           atomic.Int64
	Misses         atomic.Int64
	CyclesSaved    atomic.Int64 // simulated cycles restored, not re-run
	KernelsSkipped atomic.Int64
}

// NewPrefixCache opens (creating if needed) a prefix cache rooted at
// dir.
func NewPrefixCache(dir string) (*PrefixCache, error) {
	st, err := snap.NewStore(dir)
	if err != nil {
		return nil, err
	}
	return &PrefixCache{store: st}, nil
}

// Store exposes the underlying content-addressed store.
func (pc *PrefixCache) Store() *snap.Store { return pc.store }

// prefixKeys returns the digest chain for a workload's kernels:
// keys[i] addresses the GPU state after kernels 0..i completed under
// the given tuples. The root digest covers everything else that shapes
// the simulation: the hardware config, the run options and whether
// tuple tracing is on (tracing never changes results, but keeping the
// flag in the key keeps the cache conservative).
func prefixKeys(cfg config.Config, opts RunOptions, tracing bool, w *Workload, tuples [][2]int) []string {
	d := sha256.New()
	fmt.Fprintf(d, "poise-prefix-v%d|%+v|%d|%d|%d|%v", simStateVersion,
		cfg, opts.MaxCycles, opts.MaxInstructions, opts.Engine, tracing)
	prev := hex.EncodeToString(d.Sum(nil))
	keys := make([]string, len(w.Kernels))
	for i, k := range w.Kernels {
		h := sha256.New()
		fmt.Fprintf(h, "%s|%s|%d,%d", prev, trace.KernelDigest(k), tuples[i][0], tuples[i][1])
		prev = hex.EncodeToString(h.Sum(nil))
		keys[i] = prev
	}
	return keys
}

// boundarySnapshot packs the GPU state after kernel i completed, plus
// the aggregation over kernels 0..i, under the chain key.
func (g *GPU) boundarySnapshot(key string, w *Workload, i int, agg *workloadAgg) *snap.Snapshot {
	wr := snap.NewWriter()
	wr.Bytes(agg.encode())
	g.encodeState(wr, false)
	return &snap.Snapshot{
		Kind:        snap.KindBoundary,
		Key:         key,
		Workload:    w.Name,
		KernelIndex: i + 1,
		Cycle:       g.now,
		State:       wr.Data(),
	}
}

// restoreBoundary loads a boundary snapshot onto g and returns the
// aggregation it carries. On error the GPU may be partially mutated;
// the caller must Reset it before using it.
func (g *GPU) restoreBoundary(sn *snap.Snapshot) (*workloadAgg, error) {
	if sn.Kind != snap.KindBoundary {
		return nil, fmt.Errorf("sim: snapshot kind %v is not a kernel boundary", sn.Kind)
	}
	r := snap.NewReader(sn.State)
	aggBytes := r.LimitedBytes(maxAggSnap)
	if r.Err() != nil {
		return nil, r.Err()
	}
	running, err := g.decodeState(r)
	if err != nil {
		return nil, err
	}
	if running {
		return nil, errors.New("sim: boundary snapshot contains a running kernel")
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("sim: %d trailing bytes in boundary snapshot", r.Len())
	}
	return decodeWorkloadAgg(aggBytes)
}

// RunWorkloadCached is RunWorkload through the prefix cache: it
// restores the deepest cached boundary whose key chain matches this
// run and simulates only the remaining kernels, saving any boundaries
// the cache is missing along the way. Results are bit-identical to an
// uncached run (the snapshot is the complete live state and the
// simulation is deterministic); only the simulated-cycle cost drops.
// Falls back to plain RunWorkload when pc is nil, the policy is not a
// TuplePrefixer, the workload has a single kernel, or an interrupt
// control is armed.
func (g *GPU) RunWorkloadCached(w *Workload, p Policy, opts RunOptions, pc *PrefixCache) (WorkloadResult, error) {
	tp, prefixable := p.(TuplePrefixer)
	if pc == nil || !prefixable || len(w.Kernels) < 2 || opts.Interrupt != nil {
		return g.RunWorkload(w, p, opts)
	}
	if err := w.Validate(); err != nil {
		return WorkloadResult{}, err
	}
	tuples := make([][2]int, len(w.Kernels))
	for i, k := range w.Kernels {
		n, pp, ok := tp.PrefixTuple(g.Cfg, k)
		if !ok {
			return g.RunWorkload(w, p, opts)
		}
		tuples[i][0], tuples[i][1] = clampTuple(g.Cfg, n, pp)
	}
	keys := prefixKeys(g.Cfg, opts, g.TraceTuples, w, tuples)

	agg := newWorkloadAgg(w, p)
	start := 0
	for j := len(w.Kernels) - 2; j >= 0; j-- {
		sn, err := pc.store.Load(keys[j])
		if err != nil {
			continue // missing (or unreadable: treat as a miss)
		}
		a, err := g.restoreBoundary(sn)
		if err != nil {
			g.Reset() // decode may have half-applied; scrub before retrying
			continue
		}
		// The snapshot may have been written by a different workload or
		// policy that shares this kernel/tuple prefix; only the labels
		// differ, and they belong to this run.
		a.res.Workload = w.Name
		a.res.Policy = p.Name()
		agg = a
		start = j + 1
		pc.Hits.Add(1)
		pc.KernelsSkipped.Add(int64(j + 1))
		pc.CyclesSaved.Add(a.res.Cycles)
		break
	}
	if start == 0 {
		pc.Misses.Add(1)
	}
	for i := start; i < len(w.Kernels); i++ {
		k := w.Kernels[i]
		ko := opts
		ko.Warm = i > 0
		kr, err := g.Run(k, p, ko)
		if err != nil {
			return agg.finish(), fmt.Errorf("sim: workload %s kernel %s: %w", w.Name, k.Name, err)
		}
		agg.add(kr)
		if i <= len(w.Kernels)-2 && !pc.store.Has(keys[i]) {
			// Best effort: a failed save only costs future hits.
			_ = pc.store.Save(g.boundarySnapshot(keys[i], w, i, agg))
		}
	}
	return agg.finish(), nil
}

// RunWorkloadCached runs w on a fresh GPU through the prefix cache.
func RunWorkloadCached(cfg config.Config, w *Workload, p Policy, opts RunOptions, pc *PrefixCache) (WorkloadResult, error) {
	if err := w.Validate(); err != nil {
		return WorkloadResult{}, err
	}
	g, err := New(cfg)
	if err != nil {
		return WorkloadResult{}, err
	}
	return g.RunWorkloadCached(w, p, opts, pc)
}
