package sim_test

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"poise/internal/config"
	"poise/internal/sim"
	"poise/internal/testutil"
	"poise/internal/trace"
	"poise/internal/workloads"
)

// These tests pin the tentpole guarantee of mid-run snapshots:
// interrupt -> snapshot -> restore on a fresh GPU (and fresh policy
// instance) -> finish produces results reflect.DeepEqual-identical to
// an uninterrupted run — the aggregated KernelResult (which embeds the
// per-SM counters and the tuple log) and the per-scheduler
// issue/stall/idle tallies alike.

// runKernelBaseline runs k uninterrupted and returns everything
// observable.
func runKernelBaseline(t *testing.T, cfg config.Config, k *trace.Kernel, p sim.Policy,
	opts sim.RunOptions) (sim.KernelResult, [][3]int64) {
	t.Helper()
	g, err := sim.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	g.TraceTuples = true
	res, err := g.Run(k, p, opts)
	if err != nil {
		t.Fatalf("baseline Run: %v", err)
	}
	return res, schedTallies(g)
}

// interruptSnapshotResume interrupts k at cycle at, snapshots, restores
// onto a brand-new GPU with a brand-new policy, finishes, and returns
// the outcome. Returns ok=false when the run finished before the
// interrupt cycle (nothing to test at this point).
func interruptSnapshotResume(t *testing.T, cfg config.Config, k *trace.Kernel,
	mk func() sim.Policy, opts sim.RunOptions, at int64) (sim.KernelResult, [][3]int64, bool) {
	t.Helper()
	g, err := sim.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	g.TraceTuples = true
	p := mk()
	io := opts
	io.Interrupt = &sim.InterruptCtl{AtCycle: at}
	_, runErr := g.Run(k, p, io)
	if runErr == nil {
		return sim.KernelResult{}, nil, false
	}
	if !errors.Is(runErr, sim.ErrInterrupted) {
		t.Fatalf("interrupted Run at cycle %d: %v", at, runErr)
	}
	state, err := g.SnapshotKernel(p)
	if err != nil {
		t.Fatalf("SnapshotKernel: %v", err)
	}
	g2, err := sim.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := g2.ResumeKernel(k, mk(), opts, state)
	if err != nil {
		t.Fatalf("ResumeKernel at cycle %d: %v", at, err)
	}
	return res, schedTallies(g2), true
}

// TestSnapshotRestoreIdentityKernel covers mid-kernel snapshot points
// on the structural kernel classes under every scheme class: early
// (launch-heavy state), middle (steady state) and late (drain, event
// heap nearly empty) interrupt cycles.
func TestSnapshotRestoreIdentityKernel(t *testing.T) {
	cfg := testutil.TinyConfig()
	kernels := []*trace.Kernel{
		testutil.ThrashKernel("thrash", 64, 40, 4),
		testutil.StreamKernel("stream", 60, 4),
		testutil.ComputeKernel("compute", 40, 4),
		testutil.SharedKernel("shared", 16, 40, 4),
	}
	for _, k := range kernels {
		for _, sc := range engineSchemes(t) {
			k, sc := k, sc
			t.Run(fmt.Sprintf("%s/%s", k.Name, sc.name), func(t *testing.T) {
				t.Parallel()
				base, baseTally := runKernelBaseline(t, cfg, k, sc.mk(), sim.RunOptions{})
				if base.Cycles < 4 {
					t.Skipf("kernel too short (%d cycles) to interrupt", base.Cycles)
				}
				for _, at := range []int64{1, base.Cycles / 4, base.Cycles / 2, base.Cycles - 1} {
					if at < 1 {
						continue
					}
					res, tally, ok := interruptSnapshotResume(t, cfg, k, sc.mk, sim.RunOptions{}, at)
					if !ok {
						continue
					}
					if !reflect.DeepEqual(base, res) {
						t.Fatalf("restore at cycle %d diverges:\n base: %+v\n rest: %+v", at, base, res)
					}
					if !reflect.DeepEqual(baseTally, tally) {
						t.Fatalf("restore at cycle %d: per-scheduler counters diverge", at)
					}
				}
			})
		}
	}
}

// preemptChain runs w preemptibly, bouncing the checkpoint through its
// byte encoding (as the fleet does) and through up to chainMax fresh
// "processes" (fresh GPU + fresh policy instance per hop) before
// letting it finish uninterrupted.
func preemptChain(t *testing.T, cfg config.Config, w *sim.Workload, mk func() sim.Policy,
	opts sim.RunOptions, at int64, chainMax int) (sim.WorkloadResult, bool) {
	t.Helper()
	io := opts
	io.Interrupt = &sim.InterruptCtl{AtCycle: at}
	res, cp, err := sim.RunWorkloadPreemptible(cfg, w, mk(), io)
	if err == nil {
		return res, false // never interrupted: nothing to chain
	}
	if !errors.Is(err, sim.ErrInterrupted) {
		t.Fatalf("RunWorkloadPreemptible: %v", err)
	}
	for hop := 0; ; hop++ {
		if cp == nil {
			t.Fatalf("interrupted without checkpoint")
		}
		data, err := cp.Encode(fmt.Sprintf("chain-%d", hop))
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		cp2, err := sim.DecodeCheckpoint(data)
		if err != nil {
			t.Fatalf("DecodeCheckpoint: %v", err)
		}
		ro := opts
		if hop+1 < chainMax {
			// Keep preempting later and later into the resumed kernel.
			ro.Interrupt = &sim.InterruptCtl{AtCycle: at + int64(hop+1)*at/2 + 1}
		}
		res, cp, err = sim.ResumeWorkload(cfg, w, mk(), ro, cp2)
		if err == nil {
			return res, true
		}
		if !errors.Is(err, sim.ErrInterrupted) {
			t.Fatalf("ResumeWorkload hop %d: %v", hop, err)
		}
	}
}

// TestSnapshotRestoreIdentityWorkload proves checkpoint/resume at the
// workload level on catalogue workloads under every scheme class,
// including checkpoints that bounce across multiple hops (as tasks do
// between preemptible fleet workers).
func TestSnapshotRestoreIdentityWorkload(t *testing.T) {
	cat := workloads.NewCatalogue(workloads.Small)
	names := []string{"gco", "bfs"}
	if !raceEnabled && !testing.Short() {
		names = append(names, "wc")
	}
	cfg := testutil.TinyConfig()
	for _, name := range names {
		w := cat.Must(name)
		for _, sc := range engineSchemes(t) {
			w, sc := w, sc
			t.Run(fmt.Sprintf("%s/%s", name, sc.name), func(t *testing.T) {
				t.Parallel()
				base, err := sim.RunWorkload(cfg, w, sc.mk(), sim.RunOptions{})
				if err != nil {
					t.Fatalf("baseline RunWorkload: %v", err)
				}
				var longest int64
				for _, kr := range base.PerKernel {
					if kr.Cycles > longest {
						longest = kr.Cycles
					}
				}
				if longest < 4 {
					t.Skipf("kernels too short (%d cycles) to interrupt", longest)
				}
				res, chained := preemptChain(t, cfg, w, sc.mk, sim.RunOptions{}, longest/2, 2)
				if !chained {
					t.Logf("%s/%s finished before cycle %d; direct comparison only", name, sc.name, longest/2)
				}
				if !reflect.DeepEqual(base, res) {
					t.Fatalf("checkpoint chain diverges:\n base: %+v\n rest: %+v", base, res)
				}
			})
		}
	}
}

// TestSnapshotRejections pins the error paths: dense engine, stale
// kernels, policy mismatches and truncated payloads must all fail
// loudly (never panic, never half-restore silently).
func TestSnapshotRejections(t *testing.T) {
	cfg := testutil.TinyConfig()
	k := testutil.ThrashKernel("t", 64, 40, 4)
	g, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := sim.GTO{}
	if _, err := g.Run(k, p, sim.RunOptions{Engine: sim.EngineDense,
		Interrupt: &sim.InterruptCtl{AtCycle: 5}}); err == nil {
		t.Fatalf("dense engine accepted an interrupt control")
	}
	if _, err := g.SnapshotKernel(p); err == nil {
		t.Fatalf("SnapshotKernel succeeded with no interrupted kernel")
	}
	if _, err := g.Run(k, p, sim.RunOptions{Interrupt: &sim.InterruptCtl{AtCycle: 5}}); !errors.Is(err, sim.ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	state, err := g.SnapshotKernel(p)
	if err != nil {
		t.Fatalf("SnapshotKernel: %v", err)
	}

	fresh := func() *sim.GPU {
		g2, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return g2
	}
	if _, err := fresh().ResumeKernel(k, p, sim.RunOptions{Engine: sim.EngineDense}, state); err == nil {
		t.Fatalf("ResumeKernel accepted the dense engine")
	}
	other := testutil.StreamKernel("other", 60, 4)
	if _, err := fresh().ResumeKernel(other, p, sim.RunOptions{}, state); err == nil {
		t.Fatalf("ResumeKernel accepted a different kernel")
	}
	if _, err := fresh().ResumeKernel(k, sim.Fixed{N: 1, P: 1}, sim.RunOptions{}, state); err == nil {
		t.Fatalf("ResumeKernel accepted a different policy")
	}
	for _, cut := range []int{1, len(state) / 2, len(state) - 1} {
		if _, err := fresh().ResumeKernel(k, p, sim.RunOptions{}, state[:cut]); err == nil {
			t.Fatalf("ResumeKernel accepted a truncated payload (%d bytes)", cut)
		}
	}
	if _, err := fresh().ResumeKernel(k, p, sim.RunOptions{}, append(append([]byte{}, state...), 0)); err == nil {
		t.Fatalf("ResumeKernel accepted trailing bytes")
	}
	// A fired control stays fired: resuming with it must interrupt
	// again immediately rather than loop.
	ic := &sim.InterruptCtl{}
	ic.Trigger()
	if _, err := fresh().ResumeKernel(k, p, sim.RunOptions{Interrupt: ic}, state); !errors.Is(err, sim.ErrInterrupted) {
		t.Fatalf("re-armed fired control: want ErrInterrupted, got %v", err)
	}
}
