// Package sim is the cycle-level GPU simulator that everything else in
// the reproduction runs on. It drives the SM schedulers cycle by cycle,
// executes kernel instruction streams, and times memory through an
// analytic queueing network (L1 MSHRs -> crossbar -> banked L2 -> DRAM
// partitions), skipping idle stretches via an event heap. The design
// goal is the same fidelity envelope the paper's analytical model
// (§V-A) reasons over: latency tolerance from warp concurrency, cache
// thrashing, MSHR serialisation and bandwidth congestion.
package sim

import (
	"fmt"
	"math"

	"poise/internal/cache"
	"poise/internal/config"
	"poise/internal/dram"
	"poise/internal/noc"
	"poise/internal/sm"
	"poise/internal/trace"
)

// Never is the policy return value meaning "do not call Step again".
const Never = int64(math.MaxInt64)

// Policy steers warp-tuples (and optionally cache behaviour) at
// runtime. Implementations live in package sched; package poise
// provides the HIE-backed policy.
type Policy interface {
	// Name identifies the policy in results and tables.
	Name() string
	// KernelStart is called before the first cycle of each kernel. The
	// policy applies initial tuples and returns the first cycle at which
	// it wants Step (Never for static policies).
	KernelStart(g *GPU, k *trace.Kernel) int64
	// Step observes counters and steers; it returns the next activation
	// cycle (must be > now, or Never).
	Step(g *GPU, now int64) int64
	// KernelEnd is called after the kernel drains.
	KernelEnd(g *GPU, now int64)
}

// l2Bank is one bank of the shared L2: a tag/data array plus a
// serialising server for bandwidth.
type l2Bank struct {
	c        *cache.Cache
	nextFree int64
}

// GPU is the simulated device. Build one with New, then Run kernels on
// it. A GPU is single-goroutine; run concurrent simulations on separate
// GPU values.
type GPU struct {
	Cfg   config.Config
	SMs   []*sm.SM
	NoC   *noc.Crossbar
	DRAM  *dram.DRAM
	banks []l2Bank

	l2Service int64
	l2Pipe    int64
	respFlits int

	events eventHeap
	rq     readyQueue
	now    int64

	// policyNext parks the in-flight policy activation cycle when a run
	// is interrupted, so a restored run resumes the Step schedule
	// exactly (it is live only between ErrInterrupted and the snapshot;
	// the running loop keeps it in a local).
	policyNext int64

	// blockScratch is reused by residentBlocks to count distinct live
	// blocks without allocating on every launch attempt.
	blockScratch []int32

	kernel   *trace.Kernel
	bodyLen  int
	nextBlk  int
	doneWarp int
	total    int

	// L2 aggregate stats (across banks) for the running kernel.
	L2Accesses int64
	L2Hits     int64

	// TupleTrace records every tuple change when tracing is enabled
	// (Fig. 17 case study).
	TraceTuples bool
	TupleLog    []TupleEvent
}

// TupleEvent is one policy decision captured for the case study.
type TupleEvent struct {
	Cycle     int64
	SM        int
	N, P      int
	Predicted bool // true for raw HIE predictions, false after search
}

// New builds a GPU for the configuration.
func New(cfg config.Config) (*GPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &GPU{
		Cfg:       cfg,
		NoC:       noc.New(cfg),
		DRAM:      dram.New(cfg),
		l2Service: 4,
		l2Pipe:    int64(cfg.L2LatencyCore),
		respFlits: cfg.L1.LineBytes/cfg.NoCFlitBytes + 1,
	}
	for i := 0; i < cfg.NumSMs; i++ {
		s, err := sm.NewSM(i, cfg)
		if err != nil {
			return nil, err
		}
		g.SMs = append(g.SMs, s)
	}
	// Steady-state runs must not allocate per cycle: the event heap,
	// ready queue and launch scratch are sized here and only truncated
	// between runs, so a warmed (pooled) GPU reuses their storage.
	g.events.a = make([]event, 0, 256)
	g.rq.init(g)
	g.blockScratch = make([]int32, 0, cfg.MaxBlocksPerSM+1)
	perBank := config.CacheConfig{
		SizeBytes: cfg.L2.SizeBytes / cfg.L2Banks,
		LineBytes: cfg.L2.LineBytes,
		Ways:      cfg.L2.Ways,
		Index:     config.IndexLinear,
	}
	for i := 0; i < cfg.L2Banks; i++ {
		c, err := cache.New(perBank)
		if err != nil {
			return nil, fmt.Errorf("L2 bank: %w", err)
		}
		g.banks = append(g.banks, l2Bank{c: c})
	}
	return g, nil
}

// Reset restores the GPU to its just-constructed state so it can be
// reused for another run (see Pool). Every layer resets in place:
// SMs (schedulers, L1, MSHRs, counters), L2 banks, crossbar, DRAM and
// the event heap. The invariant — enforced by TestPoolResetBitIdentical
// with reflect.DeepEqual against a freshly built GPU — is that no
// trace of a previous kernel survives, so a pooled GPU produces
// bit-identical results to a fresh one. The large fixed-size arrays
// (cache tag stores, warp slots, port/partition servers) are zeroed in
// place, which is where the pool's allocation savings come from; the
// event heap, ready queue and launch scratch are truncated rather than
// freed (reflect.DeepEqual cannot see capacity), so a pooled GPU keeps
// their storage across runs.
func (g *GPU) Reset() {
	for _, s := range g.SMs {
		s.Reset()
	}
	g.NoC.Reset()
	g.DRAM.Reset()
	for i := range g.banks {
		g.banks[i].nextFree = 0
		g.banks[i].c.Reset()
	}
	g.events.reset()
	g.rq.resetState()
	g.blockScratch = g.blockScratch[:0]
	g.now = 0
	g.policyNext = 0
	g.kernel = nil
	g.bodyLen = 0
	g.nextBlk = 0
	g.doneWarp = 0
	g.total = 0
	g.L2Accesses, g.L2Hits = 0, 0
	g.TraceTuples = false
	g.TupleLog = nil
}

// Now returns the current simulation cycle.
func (g *GPU) Now() int64 { return g.now }

// Kernel returns the currently running kernel (nil between runs).
func (g *GPU) Kernel() *trace.Kernel { return g.kernel }

// MaxN returns the per-scheduler warp bound for the running kernel:
// the hardware limit capped by the kernel's occupancy constraint. This
// is the "maximum warps supported per scheduler" that Poise's scaling
// step (paper §V-C) normalises against.
func (g *GPU) MaxN() int {
	n := g.Cfg.WarpsPerSched
	if g.kernel != nil && g.kernel.MaxWarpsPerSched > 0 && g.kernel.MaxWarpsPerSched < n {
		n = g.kernel.MaxWarpsPerSched
	}
	return n
}

// SetTupleAll applies a warp-tuple on every SM.
func (g *GPU) SetTupleAll(n, p int) {
	for i := range g.SMs {
		g.SetTuple(i, n, p)
	}
}

// SetTuple applies a warp-tuple on one SM and logs it when tracing.
func (g *GPU) SetTuple(smID, n, p int) {
	g.SMs[smID].SetTuple(n, p)
	// refreshBits cleared every wake hint on the SM: requeue its
	// schedulers so the ready engine attempts them exactly when the
	// dense scan would (no-op outside a ready-engine run).
	if g.rq.active {
		for i := range g.SMs[smID].Scheds {
			g.requeueSched(g.SMs[smID], i)
		}
	}
	if g.TraceTuples {
		nn, pp := g.SMs[smID].Tuple()
		g.TupleLog = append(g.TupleLog, TupleEvent{Cycle: g.now, SM: smID, N: nn, P: pp})
	}
}

// LogPrediction records a raw prediction event for the case study.
func (g *GPU) LogPrediction(smID, n, p int) {
	if g.TraceTuples {
		g.TupleLog = append(g.TupleLog, TupleEvent{Cycle: g.now, SM: smID, N: n, P: p, Predicted: true})
	}
}

func (g *GPU) bankFor(lineAddr uint64) *l2Bank {
	h := lineAddr
	h ^= h >> 7
	h *= 0x9e3779b97f4a7c15
	h ^= h >> 33
	return &g.banks[h%uint64(len(g.banks))]
}

// resetMemSide drains timing servers and per-kernel aggregate stats.
func (g *GPU) resetMemSide() {
	g.NoC.Reset()
	g.DRAM.Reset()
	for i := range g.banks {
		g.banks[i].nextFree = 0
		g.banks[i].c.Flush()
		g.banks[i].c.Stats = cache.Stats{}
	}
	g.L2Accesses, g.L2Hits = 0, 0
}

// launchBlocks fills SM residency with blocks from the grid.
func (g *GPU) launchBlocks() {
	k := g.kernel
	maxBlocks := g.Cfg.MaxBlocksPerSM
	if k.MaxBlocksPerSM > 0 && k.MaxBlocksPerSM < maxBlocks {
		maxBlocks = k.MaxBlocksPerSM
	}
	for {
		launched := false
		for _, s := range g.SMs {
			if g.nextBlk >= k.Blocks {
				return
			}
			if g.residentBlocks(s) >= maxBlocks {
				continue
			}
			if !g.blockFits(s) {
				continue
			}
			g.launchBlockOn(s, g.nextBlk)
			g.nextBlk++
			launched = true
		}
		if !launched {
			return
		}
	}
}

// residentBlocks counts distinct live blocks on an SM. The distinct
// set is tiny (bounded by MaxBlocksPerSM), so a linear scan over a
// reused scratch slice beats allocating a map per launch attempt.
func (g *GPU) residentBlocks(s *sm.SM) int {
	seen := g.blockScratch[:0]
	for _, sch := range s.Scheds {
		for i := range sch.Slots {
			w := &sch.Slots[i]
			if !w.Active {
				continue
			}
			dup := false
			for _, b := range seen {
				if b == w.Block {
					dup = true
					break
				}
			}
			if !dup {
				seen = append(seen, w.Block)
			}
		}
	}
	g.blockScratch = seen[:0]
	return len(seen)
}

// blockFits reports whether one more block's warps fit in the SM's
// scheduler slots under the kernel's occupancy cap.
func (g *GPU) blockFits(s *sm.SM) bool {
	k := g.kernel
	capPer := g.MaxN()
	free := 0
	for _, sch := range s.Scheds {
		f := capPer - sch.ActiveWarps()
		if f > 0 {
			free += f
		}
	}
	return free >= k.WarpsPerBlock
}

// launchBlockOn places block b's warps on SM s, striping across the
// schedulers.
func (g *GPU) launchBlockOn(s *sm.SM, b int) {
	k := g.kernel
	capPer := g.MaxN()
	sched := 0
	for wi := 0; wi < k.WarpsPerBlock; wi++ {
		global := int32(b*k.WarpsPerBlock + wi)
		placed := false
		for try := 0; try < len(s.Scheds); try++ {
			idx := sched
			sch := s.Scheds[idx]
			sched = (sched + 1) % len(s.Scheds)
			if sch.ActiveWarps() >= capPer {
				continue
			}
			iters := k.WarpIters(int(global))
			if sch.Launch(global, int32(b), int32(wi), iters) >= 0 {
				g.noteLaunch(s, idx)
				placed = true
				break
			}
		}
		if !placed {
			// blockFits guaranteed room; this is a programming error.
			panic("sim: block placement failed despite capacity check")
		}
	}
}
