package sim

// White-box tests for the replay-queue admission path in completeFill.
// The queue is popped by copying the tail down over the consumed prefix
// so the backing array is reused; the previous head-reslice pop
// (q = q[1:]) advanced the base pointer one slot per admission, which
// strands storage and forces append to reallocate under sustained MSHR
// pressure. These tests pin both the storage reuse and the FIFO
// stale-skip semantics.

import (
	"testing"

	"poise/internal/cache"
	"poise/internal/config"
	"poise/internal/sm"
)

// parkReplayer registers an outstanding load for w and parks it in the
// SM's replay queue, exactly as issueLoad's full-MSHR path does.
func parkReplayer(s *sm.SM, sched, slot int, w *sm.Warp) int64 {
	tok := w.NewToken()
	w.AddPending(sm.Pending{Token: tok, DepFlat: w.FlatIdx})
	s.ReplayQ = append(s.ReplayQ, cache.Waiter{Sched: sched, Slot: slot, Token: tok, Warp: w.Global})
	return tok
}

// fillLine allocates an MSHR for line and immediately completes the
// fill, driving the replay-admission path once.
func fillLine(t *testing.T, g *GPU, s *sm.SM, line uint64) {
	t.Helper()
	w := &s.Scheds[0].Slots[0]
	if s.MSHR.Allocate(line, 0, true, w.Global, 0,
		cache.Waiter{Sched: 0, Slot: 0, Token: 0, Warp: w.Global}) == nil {
		t.Fatal("MSHR.Allocate failed with an empty file")
	}
	g.completeFill(event{kind: evFill, sm: int32(s.ID), line: line})
}

// TestReplayQueueReusesStorage drives many park-then-fill rounds and
// requires the queue's backing array to stay put: the copy-down pop
// leaves the base pointer stable, while a head-reslice pop would walk
// it forward every admission until append reallocates.
func TestReplayQueueReusesStorage(t *testing.T) {
	g, err := New(config.Default().Scale(2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s := g.SMs[0]
	sch := s.Scheds[0]
	slot := sch.Launch(1, 0, 0, 1)
	if slot < 0 {
		t.Fatal("Launch failed")
	}
	w := &sch.Slots[slot]

	var base *cache.Waiter
	for i := 0; i < 512; i++ {
		parkReplayer(s, 0, slot, w)
		if base == nil {
			base = &s.ReplayQ[0]
		} else if &s.ReplayQ[0] != base {
			t.Fatalf("replay queue backing storage moved after %d admissions", i)
		}
		fillLine(t, g, s, uint64(0x1000+i))
		if len(s.ReplayQ) != 0 {
			t.Fatalf("round %d: queue not drained, len=%d", i, len(s.ReplayQ))
		}
	}
	if got := cap(s.ReplayQ); got > 4 {
		t.Fatalf("replay queue capacity grew to %d despite single-entry rounds", got)
	}
}

// TestReplayQueueFIFOSkipsStale parks a stale waiter (its warp slot was
// recycled) ahead of two live ones and checks one fill consumes the
// stale prefix plus exactly the first live waiter, leaving the second
// live waiter queued with its storage shifted down.
func TestReplayQueueFIFOSkipsStale(t *testing.T) {
	g, err := New(config.Default().Scale(2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s := g.SMs[0]
	sch := s.Scheds[0]
	sa := sch.Launch(10, 0, 0, 1)
	sb := sch.Launch(11, 0, 1, 1)
	wa, wb := &sch.Slots[sa], &sch.Slots[sb]

	// Stale: references slot sa but a warp id that no longer occupies it.
	s.ReplayQ = append(s.ReplayQ, cache.Waiter{Sched: 0, Slot: sa, Token: 99, Warp: 77})
	tokA := parkReplayer(s, 0, sa, wa)
	tokB := parkReplayer(s, 0, sb, wb)

	fillLine(t, g, s, 0x2000)

	if len(s.ReplayQ) != 1 {
		t.Fatalf("queue length after fill = %d, want 1", len(s.ReplayQ))
	}
	if got := s.ReplayQ[0]; got.Warp != wb.Global || got.Token != tokB {
		t.Fatalf("remaining waiter = %+v, want warp %d token %d", got, wb.Global, tokB)
	}
	if !wa.Pend[len(wa.Pend)-1].Done {
		t.Fatalf("first live waiter (token %d) was not admitted", tokA)
	}
	if wb.Pend[len(wb.Pend)-1].Done {
		t.Fatal("second live waiter admitted early; replay admission must be one per fill")
	}

	// The next fill admits the remaining waiter and empties the queue.
	fillLine(t, g, s, 0x3000)
	if len(s.ReplayQ) != 0 {
		t.Fatalf("queue length after second fill = %d, want 0", len(s.ReplayQ))
	}
	if !wb.Pend[len(wb.Pend)-1].Done {
		t.Fatal("second live waiter was not admitted by the second fill")
	}
}
