package sim

import (
	"fmt"

	"poise/internal/sm"
	"poise/internal/trace"
)

// This file implements the ready-queue cycle engine: the default main
// loop whose per-visit cost is proportional to the number of schedulers
// that could actually issue, instead of O(NumSMs x SchedulersPerSM)
// like the dense reference scan in dense.go.
//
// The engine keeps every scheduler in exactly one of four modes:
//
//   - hot: its wake hint is <= now, so the dense scan would call Pick
//     on it every visited cycle. Hot schedulers live in a list sorted
//     by (SM, scheduler) so attempts happen in dense scan order.
//   - timed: a failed Pick produced a finite wake hint. The scheduler
//     sits in a min-heap keyed by that cycle and rejoins the hot list
//     at the first visit at or after it. The heap never drives the
//     clock — the dense loop only jumps to events and policy steps, so
//     the ready engine does too.
//   - dormant: the hint is NoDep ("blocked on memory"); only an
//     explicit wake (fill, replay drain, tuple change, launch) can
//     requeue it.
//   - hot-next: woken mid-visit at a scan position the dense loop has
//     already passed; it joins the hot list at the start of the next
//     visit.
//
// The correctness rule is "every wake is an event": every code path
// that lowers a wake hint (completeFill, wakeAllReplayers, SetTuple's
// refreshBits, warp launch and retire) must call requeueSched so the
// scheduler is attempted on exactly the visits the dense scan would
// attempt it. Attempting too eagerly is harmless — issueOne's blocked
// branch reproduces the dense per-visit accounting — but a missed due
// attempt would diverge, so requeueing errs toward waking.
//
// Blocked-cycle accounting: the dense scan bumps StallCycles or
// IdleCycles on every blocked scheduler every visited cycle. For hot
// schedulers issueOne performs exactly that per-visit accounting, so
// the engine tracks spans only for non-hot schedulers: a span opens
// when a scheduler leaves the hot list (spanBase = visit count,
// spanActive = whether it had active warps) and settles arithmetically
// when the scheduler is readmitted, observed by the policy, or the run
// ends. ActiveWarps only changes on launch/retire, which are hooked,
// so the stall-vs-idle split inside a span is constant and the settled
// counters are bit-identical to the dense engine's. Keeping spans off
// the hot path means an attempt costs the same as a dense scan slot —
// the compute-bound regime pays nothing for the queue.

type schedMode uint8

const (
	schedDormant schedMode = iota
	schedTimed
	schedHot
	schedHotNext
)

// schedEntry is one timed wake: scheduler key due at cycle.
type schedEntry struct {
	cycle int64
	key   int32
}

// schedHeap is a binary min-heap of timed scheduler wakes ordered by
// cycle. Entries are invalidated lazily: an entry is live only while
// its scheduler is still timed with the same wake cycle.
type schedHeap struct {
	a []schedEntry
}

func (h *schedHeap) push(e schedEntry) {
	h.a = append(h.a, e)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.a[parent].cycle <= h.a[i].cycle {
			break
		}
		h.a[parent], h.a[i] = h.a[i], h.a[parent]
		i = parent
	}
}

func (h *schedHeap) pop() schedEntry {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	n := last
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.a[l].cycle < h.a[smallest].cycle {
			smallest = l
		}
		if r < n && h.a[r].cycle < h.a[smallest].cycle {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.a[i], h.a[smallest] = h.a[smallest], h.a[i]
		i = smallest
	}
	return top
}

// readyQueue is the per-GPU state of the ready-queue engine. It is
// sized once at construction and reused across runs; Reset truncates
// the variable-length parts so a pooled GPU stays DeepEqual-identical
// to a fresh one.
type readyQueue struct {
	active bool  // a ready-engine run is in progress (gates the hooks)
	perSM  int32 // schedulers per SM, for key <-> (sm, sched) mapping

	// Indexed by key = smID*perSM + schedID.
	smOf       []*sm.SM        // flattened key -> SM lookup
	schedOf    []*sm.Scheduler // flattened key -> scheduler lookup
	mode       []schedMode
	wakeAt     []int64 // valid while mode == schedTimed
	spanBase   []int64 // visits settled so far; meaningful while not hot
	spanActive []bool  // ActiveWarps() > 0 over the open span

	hot   []int32 // keys attempted every visit, sorted ascending
	woken []int32 // hot-next keys buffered until the next visit
	timed schedHeap

	// scanKey is the key currently being attempted during the issue
	// scan (-1 outside it). Wake hooks compare against it to decide
	// whether a newly woken scheduler is still ahead of the dense scan
	// position (attempt it this visit) or behind it (next visit).
	scanKey int32

	// visits counts visited cycles this run; spans are measured in it.
	visits int64
}

// init sizes the queue for the GPU's schedulers (which must already be
// constructed).
func (rq *readyQueue) init(g *GPU) {
	perSM := g.Cfg.SchedulersPerSM
	n := len(g.SMs) * perSM
	rq.perSM = int32(perSM)
	rq.smOf = make([]*sm.SM, 0, n)
	rq.schedOf = make([]*sm.Scheduler, 0, n)
	for _, s := range g.SMs {
		for _, sch := range s.Scheds {
			rq.smOf = append(rq.smOf, s)
			rq.schedOf = append(rq.schedOf, sch)
		}
	}
	rq.mode = make([]schedMode, n)
	rq.wakeAt = make([]int64, n)
	rq.spanBase = make([]int64, n)
	rq.spanActive = make([]bool, n)
	rq.hot = make([]int32, 0, n)
	rq.woken = make([]int32, 0, n)
	rq.timed.a = make([]schedEntry, 0, n)
	rq.scanKey = -1
}

// resetState restores the just-constructed state (capacity retained).
func (rq *readyQueue) resetState() {
	rq.active = false
	for i := range rq.mode {
		rq.mode[i] = schedDormant
		rq.wakeAt[i] = 0
		rq.spanBase[i] = 0
		rq.spanActive[i] = false
	}
	rq.hot = rq.hot[:0]
	rq.woken = rq.woken[:0]
	rq.timed.a = rq.timed.a[:0]
	rq.scanKey = -1
	rq.visits = 0
}

// insertHot adds key to the sorted hot list (the caller has checked it
// is absent). Manual binary-insert keeps this allocation-free.
func (rq *readyQueue) insertHot(key int32) {
	a := rq.hot
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	rq.hot = append(a, 0)
	copy(rq.hot[lo+1:], rq.hot[lo:])
	rq.hot[lo] = key
}

// flushSpan settles the open blocked span of one non-hot scheduler up
// to (and including) visit uptoV.
func (rq *readyQueue) flushSpan(key int32, uptoV int64) {
	if d := uptoV - rq.spanBase[key]; d > 0 {
		rq.schedOf[key].AccountBlocked(d, rq.spanActive[key])
		rq.spanBase[key] = uptoV
	}
}

// admit moves every timed scheduler due at or before now, plus any
// hot-next stragglers from the previous visit, onto the hot list,
// closing their blocked spans: the current visit is accounted by the
// attempt, so the span ends at the previous one.
func (rq *readyQueue) admit(now int64) {
	for len(rq.timed.a) > 0 && rq.timed.a[0].cycle <= now {
		e := rq.timed.pop()
		if rq.mode[e.key] == schedTimed && rq.wakeAt[e.key] == e.cycle {
			rq.mode[e.key] = schedHotNext
			rq.woken = append(rq.woken, e.key)
		}
	}
	if len(rq.woken) == 0 {
		return
	}
	for _, key := range rq.woken {
		if rq.mode[key] == schedHotNext {
			rq.flushSpan(key, rq.visits-1)
			rq.mode[key] = schedHot
			rq.insertHot(key)
		}
	}
	rq.woken = rq.woken[:0]
}

// flushAllSpans settles every non-hot scheduler's blocked span through
// visit uptoV. Hot schedulers have no open span — issueOne accounted
// their visits directly. Called before the policy observes counters and
// before any return path, so counter state is always dense-identical at
// observation points.
func (g *GPU) flushAllSpans(uptoV int64) {
	rq := &g.rq
	for key := int32(0); key < int32(len(rq.mode)); key++ {
		if rq.mode[key] != schedHot {
			rq.flushSpan(key, uptoV)
		}
	}
}

// requeueSched is the "every wake is an event" hook: any code path
// that may have lowered a scheduler's wake hint calls it. No-op for
// the dense engine (rq.active false) and for already-hot schedulers.
func (g *GPU) requeueSched(s *sm.SM, schedID int) {
	rq := &g.rq
	if !rq.active {
		return
	}
	key := int32(s.ID)*rq.perSM + int32(schedID)
	switch rq.mode[key] {
	case schedHot, schedHotNext:
		return
	}
	if key > rq.scanKey && rq.scanKey >= 0 {
		// The dense scan has not reached this scheduler yet this visit:
		// it would see the lowered hint and attempt it now. The attempt
		// accounts this visit, so the span ends at the previous one.
		rq.flushSpan(key, rq.visits-1)
		rq.mode[key] = schedHot
		rq.insertHot(key)
		return
	}
	rq.mode[key] = schedHotNext
	rq.woken = append(rq.woken, key)
}

// wakeSMScheds clears the wake hints of every scheduler on an SM (a
// fill or replay drain resolved tokens there) and requeues them.
func (g *GPU) wakeSMScheds(s *sm.SM) {
	for i, sch := range s.Scheds {
		sch.ClearWakeHint()
		g.requeueSched(s, i)
	}
}

// noteLaunch records that a warp launched onto scheduler schedID of SM
// s mid-run: the launch refreshed vital bits and cleared the wake
// hint, and it changed ActiveWarps, so an open blocked span must be
// settled at the dense-equivalent boundary before the stall/idle split
// changes. Hot schedulers need nothing — their visits are accounted by
// issueOne, and a retiring scheduler (the only way warps disappear) is
// by construction the hot one currently issuing.
func (g *GPU) noteLaunch(s *sm.SM, schedID int) {
	rq := &g.rq
	if !rq.active {
		return
	}
	key := int32(s.ID)*rq.perSM + int32(schedID)
	if rq.mode[key] == schedHot {
		return
	}
	if key > rq.scanKey && rq.scanKey >= 0 {
		// Not yet scanned this visit: the dense loop would attempt it
		// after the launch, so the blocked span ends at the previous
		// visit and this visit's accounting comes from the attempt.
		rq.flushSpan(key, rq.visits-1)
	} else {
		// Already behind the scan position (or outside the scan): the
		// dense loop visited it this cycle in its pre-launch state, so
		// the span includes the current visit under the old split.
		rq.flushSpan(key, rq.visits)
	}
	rq.spanActive[key] = s.Scheds[schedID].ActiveWarps() > 0
	g.requeueSched(s, schedID)
}

// startReady classifies every scheduler by the wake hint it carries
// into the run. Warm multi-kernel workloads deliberately keep stale
// hints across kernels (PrepareKernel does not clear them; only a
// launch onto the scheduler does), and the dense loop honours them, so
// the engine must too.
func (rq *readyQueue) startReady(g *GPU) {
	rq.active = true
	rq.visits = 0
	rq.scanKey = -1
	rq.hot = rq.hot[:0]
	rq.woken = rq.woken[:0]
	rq.timed.a = rq.timed.a[:0]
	for si, s := range g.SMs {
		for ci, sch := range s.Scheds {
			key := int32(si)*rq.perSM + int32(ci)
			rq.spanBase[key] = 0
			rq.spanActive[key] = sch.ActiveWarps() > 0
			switch h := sch.WakeHint(); {
			case h <= 0:
				rq.mode[key] = schedHot
				rq.hot = append(rq.hot, key) // SM-major order: already sorted
			case h == sm.NoDep:
				rq.mode[key] = schedDormant
			default:
				rq.mode[key] = schedTimed
				rq.wakeAt[key] = h
				rq.timed.push(schedEntry{cycle: h, key: key})
			}
		}
	}
}

// startResume reclassifies every scheduler after a mid-kernel restore,
// rebuilding the ready queue from the wake hints the snapshot carried.
// The classification is the dense-equivalent one at cycle g.now: a
// hint at or before now means the dense scan would attempt the
// scheduler this cycle (hot — this also covers timed wakes that came
// due exactly at the interrupt point, which admit would have promoted
// at the top of the interrupted visit), NoDep means only a fill can
// help (dormant), anything else is a timed wake. Spans restart at the
// restored visit count: the interrupt path settled every open span
// through that visit, so the arithmetic continues exactly where the
// uninterrupted run's would.
func (rq *readyQueue) startResume(g *GPU, visits int64) {
	rq.active = true
	rq.visits = visits
	rq.scanKey = -1
	rq.hot = rq.hot[:0]
	rq.woken = rq.woken[:0]
	rq.timed.a = rq.timed.a[:0]
	for si, s := range g.SMs {
		for ci, sch := range s.Scheds {
			key := int32(si)*rq.perSM + int32(ci)
			rq.spanBase[key] = visits
			rq.spanActive[key] = sch.ActiveWarps() > 0
			switch h := sch.WakeHint(); {
			case h <= g.now:
				rq.mode[key] = schedHot
				rq.hot = append(rq.hot, key) // SM-major order: already sorted
			case h == sm.NoDep:
				rq.mode[key] = schedDormant
			default:
				rq.mode[key] = schedTimed
				rq.wakeAt[key] = h
				rq.timed.push(schedEntry{cycle: h, key: key})
			}
		}
	}
}

// runReady executes the kernel on the ready-queue engine. It visits
// exactly the cycles the dense reference engine visits (the clock only
// jumps to events and policy steps), but each visit touches only the
// hot schedulers; everything else is settled by span arithmetic, so
// every result and counter is bit-identical to runDense.
func (g *GPU) runReady(k *trace.Kernel, p Policy, opts RunOptions, policyNext int64) (KernelResult, error) {
	rq := &g.rq
	rq.startReady(g)
	defer rq.deactivate()
	return g.readyLoop(k, p, opts, policyNext)
}

// readyLoop is the engine's cycle loop, shared by fresh runs (after
// startReady) and restored ones (after startResume). An interrupt is
// honoured at the top of the loop, before the next visit begins: spans
// settle through the last completed visit and the pending policy
// activation is parked in g.policyNext, so the GPU holds exactly the
// dense-equivalent state of the first unvisited cycle and a snapshot
// taken here restores to a bit-identical continuation.
func (g *GPU) readyLoop(k *trace.Kernel, p Policy, opts RunOptions, policyNext int64) (KernelResult, error) {
	rq := &g.rq
	for g.doneWarp < g.total {
		if opts.Interrupt.due(g.now) {
			g.flushAllSpans(rq.visits)
			g.policyNext = policyNext
			return KernelResult{}, ErrInterrupted
		}
		rq.visits++
		// Deliver due events (fills requeue woken schedulers).
		for {
			e, ok := g.events.peek()
			if !ok || e.cycle > g.now {
				break
			}
			g.events.pop()
			if e.kind == evFill {
				g.completeFill(e)
			}
		}
		if p != nil && g.now >= policyNext {
			// Settle spans so the policy observes exactly the counters
			// the dense engine would show it at this cycle.
			g.flushAllSpans(rq.visits - 1)
			policyNext = p.Step(g, g.now)
			if policyNext <= g.now {
				policyNext = g.now + 1
			}
		}
		rq.admit(g.now)

		anyIssued := false
		dropped := false
		for i := 0; i < len(rq.hot); i++ {
			key := rq.hot[i]
			if rq.mode[key] != schedHot {
				continue
			}
			s, sch := rq.smOf[key], rq.schedOf[key]
			rq.scanKey = key
			if g.issueOne(s, sch) {
				anyIssued = true
			} else if h := sch.WakeHint(); h > g.now {
				// The scheduler leaves the hot list: open its blocked
				// span after this visit (issueOne accounted this one).
				rq.spanBase[key] = rq.visits
				rq.spanActive[key] = sch.ActiveWarps() > 0
				if h == sm.NoDep {
					rq.mode[key] = schedDormant
				} else {
					rq.mode[key] = schedTimed
					rq.wakeAt[key] = h
					rq.timed.push(schedEntry{cycle: h, key: key})
				}
				dropped = true
			}
		}
		rq.scanKey = -1
		if dropped {
			live := rq.hot[:0]
			for _, key := range rq.hot {
				if rq.mode[key] == schedHot {
					live = append(live, key)
				}
			}
			rq.hot = live
		}

		if g.now >= opts.MaxCycles {
			g.flushAllSpans(rq.visits)
			return KernelResult{}, fmt.Errorf("sim: kernel %s exceeded %d cycles", k.Name, opts.MaxCycles)
		}
		if opts.MaxInstructions > 0 && g.totalInstructions() >= opts.MaxInstructions {
			break
		}

		if anyIssued {
			g.now++
			continue
		}
		// No hot scheduler issued: jump exactly where the dense loop
		// would. Timed scheduler wakes never drive the clock — finite
		// wake hints always coincide with an event or follow an issue.
		next := Never
		if e, ok := g.events.peek(); ok {
			next = e.cycle
		}
		if policyNext < next {
			next = policyNext
		}
		if next == Never {
			if g.wakeAllReplayers() {
				g.now++
				continue
			}
			if g.doneWarp < g.total {
				g.flushAllSpans(rq.visits)
				return KernelResult{}, fmt.Errorf("sim: deadlock at cycle %d in %s (%d/%d warps done)",
					g.now, k.Name, g.doneWarp, g.total)
			}
			break
		}
		if next <= g.now {
			next = g.now + 1
		}
		g.now = next
	}

	g.flushAllSpans(rq.visits)
	if p != nil {
		p.KernelEnd(g, g.now)
	}
	return g.collect(k), nil
}

func (rq *readyQueue) deactivate() { rq.active = false }
