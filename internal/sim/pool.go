package sim

import (
	"sync"

	"poise/internal/config"
)

// Pool recycles GPU instances across simulation tasks. Building a GPU
// allocates the whole memory hierarchy (per-SM tag stores, warp slots,
// MSHR files, L2 banks, DRAM servers); a large profile sweep that
// builds one per grid point spends a measurable slice of its wall
// clock in the allocator and GC. A Pool instead keeps one GPU per
// in-flight worker and resets it between runs.
//
// Correctness rests on a single invariant: Put resets the GPU to a
// state reflect.DeepEqual-identical to fresh construction (verified by
// TestPoolResetBitIdentical), so a recycled GPU cannot perturb a
// simulation — sweeps through a Pool are bit-identical to
// fresh-GPU-per-point sweeps at any worker count and reuse order.
//
// Pool is safe for concurrent use; under runner.Map each worker
// effectively pins one GPU and reuses it task after task, which is
// the per-worker reuse pattern large sweeps want.
type Pool struct {
	cfg config.Config

	mu   sync.Mutex
	free []*GPU

	builds int64
	reuses int64
}

// NewPool builds a pool that constructs GPUs with New(cfg) on demand.
// The configuration is validated eagerly so a bad one fails at pool
// construction, not on some worker's first Get.
func NewPool(cfg config.Config) (*Pool, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Pool{cfg: cfg}, nil
}

// Get returns a fresh-state GPU, recycling a parked one when available.
func (p *Pool) Get() (*GPU, error) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		g := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.reuses++
		p.mu.Unlock()
		return g, nil
	}
	p.builds++
	p.mu.Unlock()
	return New(p.cfg)
}

// Put resets g to its fresh-construction state and parks it for
// reuse. Putting a GPU that is still running is a caller bug.
func (p *Pool) Put(g *GPU) {
	if g == nil {
		return
	}
	g.Reset()
	p.mu.Lock()
	p.free = append(p.free, g)
	p.mu.Unlock()
}

// Idle returns how many reset GPUs are parked.
func (p *Pool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// Stats reports construction vs reuse counts: on a large sweep builds
// converges to the worker count while reuses approaches the grid size.
func (p *Pool) Stats() (builds, reuses int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.builds, p.reuses
}

// PoolSet hands out GPUs from one Pool per distinct configuration —
// the multi-configuration analogue experiment grids need when schemes
// alter the platform per cell (Fig. 12's grown linear-indexed L1,
// Fig. 16's and Table III's 64x Pbest probes run next to baseline
// cells in the same grid). Each configuration gets the same
// worker-pinned reuse discipline a single-config Pool provides, with
// the same correctness story: Put resets to fresh-construction state,
// so recycled GPUs cannot perturb results.
type PoolSet struct {
	mu    sync.Mutex
	pools map[config.Config]*Pool
}

// NewPoolSet builds an empty pool set; pools are created lazily per
// configuration on first Get.
func NewPoolSet() *PoolSet {
	return &PoolSet{pools: map[config.Config]*Pool{}}
}

// pool returns (creating if needed) the pool for cfg.
func (ps *PoolSet) pool(cfg config.Config) (*Pool, error) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if p, ok := ps.pools[cfg]; ok {
		return p, nil
	}
	p, err := NewPool(cfg)
	if err != nil {
		return nil, err
	}
	ps.pools[cfg] = p
	return p, nil
}

// Get returns a fresh-state GPU for cfg, recycling a parked one built
// with the same configuration when available.
func (ps *PoolSet) Get(cfg config.Config) (*GPU, error) {
	p, err := ps.pool(cfg)
	if err != nil {
		return nil, err
	}
	return p.Get()
}

// Put resets g and parks it in cfg's pool. cfg must be the
// configuration g was obtained with.
func (ps *PoolSet) Put(cfg config.Config, g *GPU) {
	if g == nil {
		return
	}
	p, err := ps.pool(cfg)
	if err != nil {
		return
	}
	p.Put(g)
}

// Stats sums construction vs reuse counts across all pools.
func (ps *PoolSet) Stats() (builds, reuses int64) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for _, p := range ps.pools {
		b, r := p.Stats()
		builds += b
		reuses += r
	}
	return builds, reuses
}
