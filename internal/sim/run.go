package sim

import (
	"errors"
	"fmt"

	"poise/internal/cache"
	"poise/internal/sm"
	"poise/internal/trace"
)

// Engine selects the cycle-loop implementation of Run.
type Engine uint8

const (
	// EngineReady is the default: the ready-queue engine (ready.go),
	// whose per-cycle cost is proportional to the schedulers that can
	// actually issue.
	EngineReady Engine = iota
	// EngineDense is the reference dense scan (dense.go) that visits
	// every scheduler every cycle. It is kept for equivalence tests and
	// benchmarks; results are bit-identical to EngineReady.
	EngineDense
)

// RunOptions bound a simulation.
type RunOptions struct {
	// MaxCycles aborts a kernel that exceeds this many cycles (safety
	// net; 0 means the default of 500M).
	MaxCycles int64
	// MaxInstructions stops the kernel early once the GPU has issued
	// this many instructions (mirrors the paper's 4-billion-instruction
	// cap; 0 = unlimited).
	MaxInstructions int64
	// Warm keeps L2 contents from the previous kernel of a workload.
	Warm bool
	// Engine picks the cycle-loop implementation (default EngineReady).
	Engine Engine
	// Interrupt, when non-nil, lets the run be stopped at a safe point
	// for checkpointing: Run returns ErrInterrupted with the GPU state
	// intact (see InterruptCtl). Only supported by EngineReady.
	Interrupt *InterruptCtl
}

// KernelResult aggregates the measurements of one kernel run.
type KernelResult struct {
	Kernel string

	Cycles       int64
	Instructions int64
	IPC          float64

	L1 cache.Stats
	// AML is the mean L1-miss memory latency in core cycles.
	AML float64

	L2Accesses int64
	L2Hits     int64
	DRAMAcc    int64

	NoCReqFlits  int64
	NoCRespFlits int64

	Replays int64
	Loads   int64
	Stores  int64

	// PerSM carries final per-SM counters for policy analysis.
	PerSM []sm.Counters

	TupleLog []TupleEvent
}

// L2HitRate returns the kernel's L2 hit rate.
func (r KernelResult) L2HitRate() float64 {
	if r.L2Accesses == 0 {
		return 0
	}
	return float64(r.L2Hits) / float64(r.L2Accesses)
}

// Run executes one kernel to completion under the policy and returns
// its measurements. The GPU's SM and memory state is reset first
// (except L2 contents when opts.Warm).
func (g *GPU) Run(k *trace.Kernel, p Policy, opts RunOptions) (KernelResult, error) {
	if err := k.Validate(); err != nil {
		return KernelResult{}, err
	}
	if opts.Interrupt != nil && opts.Engine == EngineDense {
		return KernelResult{}, errors.New("sim: the dense engine does not support interrupts")
	}
	if opts.MaxCycles <= 0 {
		opts.MaxCycles = 500_000_000
	}
	g.kernel = k
	g.bodyLen = len(k.Body)
	g.nextBlk = 0
	g.doneWarp = 0
	g.total = k.TotalWarps()
	g.now = 0
	g.events.reset()
	g.TupleLog = g.TupleLog[:0]

	if !opts.Warm {
		g.resetMemSide()
	} else {
		// Drain timing servers but keep L2 tags warm.
		g.NoC.Reset()
		g.DRAM.Reset()
		for i := range g.banks {
			g.banks[i].nextFree = 0
		}
	}
	// A block's warps must fit one SM's schedulers under the kernel's
	// occupancy cap, or nothing can ever launch.
	if capWarps := g.MaxN() * g.Cfg.SchedulersPerSM; k.WarpsPerBlock > capWarps {
		return KernelResult{}, fmt.Errorf(
			"sim: kernel %s has %d warps per block but the SM fits only %d under its occupancy cap",
			k.Name, k.WarpsPerBlock, capWarps)
	}
	for _, s := range g.SMs {
		s.PrepareKernel(g.bodyLen)
		s.C = sm.Counters{}
		s.L1.Stats = cache.Stats{}
	}
	g.launchBlocks()
	if g.total == 0 {
		return KernelResult{}, errors.New("sim: kernel launched zero warps")
	}

	policyNext := Never
	if p != nil {
		policyNext = p.KernelStart(g, k)
		if policyNext <= 0 {
			policyNext = Never
		}
	}

	if opts.Engine == EngineDense {
		return g.runDense(k, p, opts, policyNext)
	}
	return g.runReady(k, p, opts, policyNext)
}

// wakeAllReplayers resolves every parked replay token (used when the
// event heap drains while warps still sit in replay queues, which can
// happen when the warp admitted by the final fill was not vital). It
// reports whether any warp was woken.
func (g *GPU) wakeAllReplayers() bool {
	woke := false
	for _, s := range g.SMs {
		for _, r := range s.ReplayQ {
			sch := s.Scheds[r.Sched]
			w := &sch.Slots[r.Slot]
			if w.Active && w.Global == r.Warp {
				w.ResolveToken(r.Token)
				woke = true
			}
		}
		s.ReplayQ = s.ReplayQ[:0]
		if woke {
			g.wakeSMScheds(s)
		}
	}
	return woke
}

func (g *GPU) totalInstructions() int64 {
	var t int64
	for _, s := range g.SMs {
		t += s.C.Instructions
	}
	return t
}

// collect gathers the result after a kernel drains.
func (g *GPU) collect(k *trace.Kernel) KernelResult {
	res := KernelResult{
		Kernel: k.Name,
		Cycles: g.now,
	}
	var aml, amlN int64
	for _, s := range g.SMs {
		res.Instructions += s.C.Instructions
		res.Loads += s.C.Loads
		res.Stores += s.C.Stores
		res.Replays += s.C.Replays
		aml += s.C.AMLSum
		amlN += s.C.AMLCount
		st := s.L1.Stats
		res.L1.Accesses += st.Accesses
		res.L1.Hits += st.Hits
		res.L1.IntraWarpHits += st.IntraWarpHits
		res.L1.InterWarpHits += st.InterWarpHits
		res.L1.PolluteAccesses += st.PolluteAccesses
		res.L1.PolluteHits += st.PolluteHits
		res.L1.NoPollAccesses += st.NoPollAccesses
		res.L1.NoPollHits += st.NoPollHits
		res.L1.Evictions += st.Evictions
		res.L1.Bypasses += st.Bypasses
		res.L1.Fills += st.Fills
		res.PerSM = append(res.PerSM, s.C)
	}
	if amlN > 0 {
		res.AML = float64(aml) / float64(amlN)
	}
	if res.Cycles > 0 {
		res.IPC = float64(res.Instructions) / float64(res.Cycles)
	}
	res.L2Accesses = g.L2Accesses
	res.L2Hits = g.L2Hits
	res.DRAMAcc = g.DRAM.Accesses
	res.NoCReqFlits = g.NoC.ReqFlits
	res.NoCRespFlits = g.NoC.RespFlits
	res.TupleLog = append([]TupleEvent(nil), g.TupleLog...)
	return res
}

// issueOne attempts one instruction issue on a scheduler; it returns
// whether an instruction was issued.
func (g *GPU) issueOne(s *sm.SM, sch *sm.Scheduler) bool {
	if g.now < sch.WakeHint() {
		if sch.ActiveWarps() > 0 {
			sch.StallCycles++
		} else {
			sch.IdleCycles++
		}
		return false
	}
	slot := sch.Pick(g.now)
	if slot < 0 {
		if sch.ActiveWarps() > 0 {
			sch.StallCycles++
		} else {
			sch.IdleCycles++
		}
		sch.SetWakeHint(sch.NextWake(g.now))
		return false
	}
	w := &sch.Slots[slot]
	ins := &g.kernel.Body[w.BodyIdx]
	pc := w.BodyIdx

	switch ins.Kind {
	case trace.OpALU:
		s.C.Instructions++
		if ins.DepALU {
			w.ReadyAt = g.now + int64(g.Cfg.ALULatency)
			if g.Cfg.ALULatency > 1 {
				g.events.push(event{cycle: w.ReadyAt, kind: evWake, sm: int32(s.ID)})
			}
		} else {
			w.ReadyAt = g.now + 1
		}
	case trace.OpLoad:
		if !g.issueLoad(s, sch, slot, w, ins, pc) {
			// MSHR full: replay later without advancing.
			sch.StallCycles++
			return false
		}
		s.C.Instructions++
		s.C.Loads++
		w.ReadyAt = g.now + 1
	case trace.OpStore:
		g.issueStore(s, w, ins)
		s.C.Instructions++
		s.C.Stores++
		w.ReadyAt = g.now + 1
	}

	sch.IssueCycles++
	if w.Advance(g.bodyLen) {
		g.retireWarp(s, sch, slot)
	}
	return true
}

// ctxFor builds the trace context for a warp on scheduler sch of SM s.
func ctxFor(s *sm.SM, schedID int, w *sm.Warp, slot int) trace.Ctx {
	return trace.Ctx{
		GlobalWarp: int(w.Global),
		SM:         s.ID,
		Sched:      schedID,
		Slot:       slot,
		Block:      int(w.Block),
		WarpInBlk:  int(w.WarpInBlk),
	}
}

// issueLoad handles an OpLoad. It returns false when the load could not
// be issued (MSHR backpressure) — the warp must retry.
func (g *GPU) issueLoad(s *sm.SM, sch *sm.Scheduler, slot int, w *sm.Warp, ins *trace.Instr, pc int32) bool {
	ctx := ctxFor(s, sch.ID, w, slot)
	addr := g.kernel.Patterns[ins.Slot].Addr(ctx, int(w.Iter))
	lineAddr := s.L1.LineAddr(addr)
	depFlat := w.FlatIdx + int64(ins.UseDist) + 1
	pollute := w.Pollute && !s.ShouldBypass(pc)

	// Pre-probe so a load that must be replayed (miss with a full MSHR
	// file and nothing to merge into) does not distort the statistics:
	// hardware replays the whole access, so only the final attempt
	// counts. The warp parks in the SM's replay queue and the next MSHR
	// release wakes it.
	if !s.L1.Contains(addr) && s.MSHR.Lookup(lineAddr) == nil && s.MSHR.Full() {
		s.C.Replays++
		token := w.NewToken()
		w.AddPending(sm.Pending{Token: token, DepFlat: w.FlatIdx})
		s.ReplayQ = append(s.ReplayQ, cache.Waiter{Sched: sch.ID, Slot: slot, Token: token, Warp: w.Global})
		return false
	}

	res := s.L1.Lookup(addr, w.Global, pc, w.Pollute)
	s.RecordLoadPC(pc, res.Hit)
	if res.Hit {
		ret := g.now + int64(g.Cfg.L1HitLatency)
		w.AddPending(sm.Pending{Token: w.NewToken(), DepFlat: depFlat, RetCycle: ret})
		s.C.HitReturns++
		g.events.push(event{cycle: ret, kind: evWake, sm: int32(s.ID)})
		return true
	}

	// Miss. Merge into an outstanding MSHR when possible.
	token := w.NewToken()
	waiter := cache.Waiter{Sched: sch.ID, Slot: slot, Token: token, Warp: w.Global}
	if m := s.MSHR.Lookup(lineAddr); m != nil {
		s.MSHR.Merge(m, pollute, waiter)
		w.AddPending(sm.Pending{Token: token, DepFlat: depFlat})
		return true
	}
	s.MSHR.Allocate(lineAddr, g.now, pollute, w.Global, pc, waiter)
	w.AddPending(sm.Pending{Token: token, DepFlat: depFlat})

	ret := g.memAccess(s.ID, lineAddr, w.Global, pc, false)
	g.events.push(event{cycle: ret, kind: evFill, sm: int32(s.ID), line: lineAddr})
	return true
}

// memAccess times one request through crossbar, L2 and (on L2 miss)
// DRAM, returning the cycle the response is fully delivered to the SM.
// Write requests occupy bandwidth but return immediately meaningful
// times only for accounting.
func (g *GPU) memAccess(smID int, lineAddr uint64, warp int32, pc int32, write bool) int64 {
	arrive := g.NoC.Request(smID, g.now)
	bank := g.bankFor(lineAddr)
	start := arrive
	if bank.nextFree > start {
		start = bank.nextFree
	}
	bank.nextFree = start + g.l2Service
	lookupDone := bank.nextFree + g.l2Pipe

	g.L2Accesses++
	r := bank.c.Lookup(lineAddr*uint64(g.Cfg.L2.LineBytes), warp, pc, true)
	dataReady := lookupDone
	if r.Hit {
		g.L2Hits++
	} else {
		dataReady = g.DRAM.Access(lineAddr, lookupDone)
		bank.c.Fill(lineAddr*uint64(g.Cfg.L2.LineBytes), warp, pc, true)
	}
	if write {
		return dataReady
	}
	return g.NoC.Response(smID, dataReady, g.respFlits)
}

// issueStore handles an OpStore: write-through, no-allocate,
// fire-and-forget; it consumes request-path and DRAM bandwidth.
func (g *GPU) issueStore(s *sm.SM, w *sm.Warp, ins *trace.Instr) {
	// Address generation mirrors loads; stores use the same pattern slot.
	ctx := trace.Ctx{GlobalWarp: int(w.Global), SM: s.ID, Block: int(w.Block), WarpInBlk: int(w.WarpInBlk)}
	addr := g.kernel.Patterns[ins.Slot].Addr(ctx, int(w.Iter))
	lineAddr := s.L1.LineAddr(addr)
	// Data flits occupy the request port.
	for i := 0; i < g.respFlits-1; i++ {
		g.NoC.Request(s.ID, g.now)
	}
	g.memAccess(s.ID, lineAddr, w.Global, w.BodyIdx, true)
}

// completeFill finishes an L1 miss: release the MSHR, install the line
// if any merged requester had pollute privilege, wake waiters, and
// account the miss latency into AML.
func (g *GPU) completeFill(e event) {
	s := g.SMs[e.sm]
	m := s.MSHR.Release(e.line)
	if m == nil {
		return // kernel boundary reset raced with an in-flight fill
	}
	s.L1.Fill(e.line*uint64(g.Cfg.L1.LineBytes), m.Warp, m.PC, m.Pollute)
	s.C.AMLSum += g.now - m.IssueCycle
	s.C.AMLCount++
	for _, wt := range m.Waiters {
		sch := s.Scheds[wt.Sched]
		w := &sch.Slots[wt.Slot]
		// The slot may have been recycled for a new warp since the miss
		// was issued; only the original warp's scoreboard is touched.
		if w.Active && w.Global == wt.Warp {
			w.ResolveToken(wt.Token)
		}
	}
	// The released MSHR entry admits one parked replayer (FIFO). The
	// consumed prefix (stale entries plus the admitted one) is removed
	// by copying the tail down so the queue reuses its backing storage;
	// reslicing the head off (q = q[1:]) would strand one slot per
	// admission and reallocate under sustained MSHR pressure.
	q := s.ReplayQ
	consumed := 0
	for consumed < len(q) {
		r := q[consumed]
		consumed++
		sch := s.Scheds[r.Sched]
		w := &sch.Slots[r.Slot]
		if w.Active && w.Global == r.Warp {
			w.ResolveToken(r.Token)
			break
		}
		// Stale entry (warp gone): admit the next one.
	}
	if consumed > 0 {
		s.ReplayQ = q[:copy(q, q[consumed:])]
	}
	// The entry is fully processed: hand it back for reuse so a steady
	// miss stream allocates no MSHR state per fill.
	s.MSHR.Recycle(m)
	// The resolved tokens unblock their owners: rescan this SM's
	// schedulers.
	g.wakeSMScheds(s)
}

// retireWarp finishes a warp and refills block residency. The retiring
// scheduler needs no ready-queue bookkeeping: it is the hot scheduler
// currently issuing, so it carries no open blocked span, and Retire's
// refreshBits cleared its wake hint so it stays hot.
func (g *GPU) retireWarp(s *sm.SM, sch *sm.Scheduler, slot int) {
	sch.Retire(slot)
	g.doneWarp++
	if g.nextBlk < g.kernel.Blocks {
		g.launchBlocks()
	}
}
