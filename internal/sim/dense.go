package sim

import (
	"fmt"

	"poise/internal/trace"
)

// runDense is the reference cycle loop: a dense per-cycle scan that
// calls issueOne on every scheduler of every SM each visited cycle.
// It is the original main loop, kept verbatim as the semantic ground
// truth the ready-queue engine (ready.go) is proven bit-identical
// against over the full catalogue; select it with RunOptions.Engine =
// EngineDense.
func (g *GPU) runDense(k *trace.Kernel, p Policy, opts RunOptions, policyNext int64) (KernelResult, error) {
	for g.doneWarp < g.total {
		// Deliver due events.
		for {
			e, ok := g.events.peek()
			if !ok || e.cycle > g.now {
				break
			}
			g.events.pop()
			if e.kind == evFill {
				g.completeFill(e)
			}
		}
		if p != nil && g.now >= policyNext {
			policyNext = p.Step(g, g.now)
			if policyNext <= g.now {
				policyNext = g.now + 1
			}
		}

		anyIssued := false
		for _, s := range g.SMs {
			for _, sch := range s.Scheds {
				if g.issueOne(s, sch) {
					anyIssued = true
				}
			}
		}

		if g.now >= opts.MaxCycles {
			return KernelResult{}, fmt.Errorf("sim: kernel %s exceeded %d cycles", k.Name, opts.MaxCycles)
		}
		if opts.MaxInstructions > 0 && g.totalInstructions() >= opts.MaxInstructions {
			break
		}

		if anyIssued {
			g.now++
			continue
		}
		// Idle: jump to the next interesting cycle.
		next := Never
		if e, ok := g.events.peek(); ok {
			next = e.cycle
		}
		if policyNext < next {
			next = policyNext
		}
		// Lazily-resolved wakes (hit returns, pipeline) are events too,
		// so a Never here with warps outstanding means either parked
		// replayers whose wake-up fills already drained (wake them all
		// and continue) or a genuine deadlock.
		if next == Never {
			if g.wakeAllReplayers() {
				g.now++
				continue
			}
			if g.doneWarp < g.total {
				return KernelResult{}, fmt.Errorf("sim: deadlock at cycle %d in %s (%d/%d warps done)",
					g.now, k.Name, g.doneWarp, g.total)
			}
			break
		}
		if next <= g.now {
			next = g.now + 1
		}
		g.now = next
	}

	if p != nil {
		p.KernelEnd(g, g.now)
	}
	return g.collect(k), nil
}
