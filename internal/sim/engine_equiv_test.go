package sim_test

import (
	"fmt"
	"reflect"
	"testing"

	"poise/internal/config"
	"poise/internal/poise"
	"poise/internal/sched"
	"poise/internal/sim"
	"poise/internal/testutil"
	"poise/internal/traceio"
	"poise/internal/workloads"
)

// These tests pin the tentpole guarantee of the ready-queue engine:
// for every workload and scheme, running with sim.EngineReady produces
// results reflect.DeepEqual-identical to the dense reference scan —
// including the per-scheduler Issue/Stall/Idle counters, which the
// dense engine increments per visited cycle and the ready engine
// settles arithmetically in spans.

// schedTallies snapshots the per-scheduler cycle counters, which are
// not part of KernelResult and therefore need their own comparison.
func schedTallies(g *sim.GPU) [][3]int64 {
	var out [][3]int64
	for _, s := range g.SMs {
		for _, sch := range s.Scheds {
			out = append(out, [3]int64{sch.IssueCycles, sch.StallCycles, sch.IdleCycles})
		}
	}
	return out
}

// runOn executes one workload on a fresh GPU with the given engine and
// returns everything observable: the aggregated result, the final
// per-scheduler counters, and the error (if any).
func runOn(t *testing.T, cfg config.Config, w *sim.Workload, p sim.Policy,
	opts sim.RunOptions, traceTuples bool, e sim.Engine) (sim.WorkloadResult, [][3]int64, error) {
	t.Helper()
	g, err := sim.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	g.TraceTuples = traceTuples
	opts.Engine = e
	res, runErr := g.RunWorkload(w, p, opts)
	return res, schedTallies(g), runErr
}

// assertEnginesAgree runs w under both engines (a fresh policy instance
// per engine — adaptive schemes carry state) and requires bit-identical
// outcomes.
func assertEnginesAgree(t *testing.T, cfg config.Config, w *sim.Workload,
	mkPolicy func() sim.Policy, opts sim.RunOptions, traceTuples bool) {
	t.Helper()
	dRes, dTally, dErr := runOn(t, cfg, w, mkPolicy(), opts, traceTuples, sim.EngineDense)
	rRes, rTally, rErr := runOn(t, cfg, w, mkPolicy(), opts, traceTuples, sim.EngineReady)
	if (dErr == nil) != (rErr == nil) || (dErr != nil && dErr.Error() != rErr.Error()) {
		t.Fatalf("engines disagree on error:\n dense: %v\n ready: %v", dErr, rErr)
	}
	if !reflect.DeepEqual(dRes, rRes) {
		t.Fatalf("engine results diverge for %s:\n dense: %+v\n ready: %+v", w.Name, dRes, rRes)
	}
	if !reflect.DeepEqual(dTally, rTally) {
		for i := range dTally {
			if dTally[i] != rTally[i] {
				t.Errorf("scheduler %d counters diverge (issue,stall,idle): dense %v ready %v",
					i, dTally[i], rTally[i])
			}
		}
		t.Fatalf("per-scheduler cycle counters diverge for %s", w.Name)
	}
}

// mustPoise builds the HIE policy from the embedded default weights.
func mustPoise(t *testing.T) sim.Policy {
	t.Helper()
	w, ok := poise.DefaultWeights()
	if !ok {
		t.Skip("no embedded default weights in this build")
	}
	return poise.NewPolicy(testutil.TinyParams(), w)
}

// engineSchemes is every scheme class in the repo, each built fresh
// per engine run.
func engineSchemes(t *testing.T) []struct {
	name string
	mk   func() sim.Policy
} {
	return []struct {
		name string
		mk   func() sim.Policy
	}{
		{"gto", func() sim.Policy { return sim.GTO{} }},
		{"swl", func() sim.Policy { return sim.Fixed{PolicyName: "SWL", N: 6, P: 6} }},
		{"static", func() sim.Policy { return sim.Fixed{N: 3, P: 1} }},
		{"ccws", func() sim.Policy { return sched.NewCCWS(2000) }},
		{"apcm", func() sim.Policy { return sched.NewAPCM(3000) }},
		{"pcal", func() sim.Policy { return sched.NewPCALSWL(sched.TupleSource{}, 100, 500, 5000) }},
		{"random", func() sim.Policy { return sched.NewRandomRestart(7, 100, 400, 4000, 2, 4) }},
		{"poise", func() sim.Policy { return mustPoise(t) }},
	}
}

// TestEngineEquivalenceTinyKernels covers the structural corner cases
// on small synthetic kernels: cache thrashing, pure streaming,
// compute-bound, shared-footprint, warm multi-kernel workloads, and a
// policy that thrashes tuples every few cycles (maximum wake-hint
// churn).
func TestEngineEquivalenceTinyKernels(t *testing.T) {
	cfg := testutil.TinyConfig()
	cases := []struct {
		name string
		w    *sim.Workload
		mk   func() sim.Policy
	}{
		{"thrash-gto", testutil.Workload("thrash", testutil.ThrashKernel("t", 64, 40, 4)), func() sim.Policy { return sim.GTO{} }},
		{"stream-gto", testutil.Workload("stream", testutil.StreamKernel("s", 60, 4)), func() sim.Policy { return sim.GTO{} }},
		{"compute-gto", testutil.Workload("compute", testutil.ComputeKernel("c", 40, 4)), func() sim.Policy { return sim.GTO{} }},
		{"shared-gto", testutil.Workload("shared", testutil.SharedKernel("sh", 16, 40, 4)), func() sim.Policy { return sim.GTO{} }},
		{"thrash-min-tuple", testutil.Workload("thrash", testutil.ThrashKernel("t", 64, 40, 4)), func() sim.Policy { return sim.Fixed{N: 1, P: 1} }},
		{"stream-throttled", testutil.Workload("stream", testutil.StreamKernel("s", 60, 4)), func() sim.Policy { return sim.Fixed{N: 2, P: 1} }},
		{"warm-multikernel", testutil.Workload("multi",
			testutil.ThrashKernel("k0", 48, 30, 3),
			testutil.StreamKernel("k1", 40, 4),
			testutil.ComputeKernel("k2", 30, 2)), func() sim.Policy { return sim.GTO{} }},
		{"hostile-tuple-churn", testutil.Workload("thrash", testutil.ThrashKernel("t", 64, 40, 4)), func() sim.Policy { return &hostilePolicy{} }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			assertEnginesAgree(t, cfg, tc.w, tc.mk, sim.RunOptions{}, true)
		})
	}
}

// TestEngineEquivalenceMemoryPressure drives the MSHR-saturated and
// replay-heavy paths: a single-entry MSHR file forces constant parking
// in the replay queues, and the drained-event wakeAllReplayers path.
func TestEngineEquivalenceMemoryPressure(t *testing.T) {
	cfg := testutil.TinyConfig()
	cfg.L1.MSHRs = 1
	w := testutil.Workload("pressure", testutil.ThrashKernel("p", 96, 30, 4))
	assertEnginesAgree(t, cfg, w, func() sim.Policy { return sim.GTO{} }, sim.RunOptions{}, false)

	cfg2 := testutil.TinyConfig()
	cfg2.L1.MSHRs = 2
	w2 := testutil.Workload("pressure2", testutil.StreamKernel("p2", 50, 4))
	assertEnginesAgree(t, cfg2, w2, func() sim.Policy { return sim.Fixed{N: 8, P: 8} }, sim.RunOptions{}, false)
}

// TestEngineEquivalenceLimits pins the early-exit paths: the
// MaxInstructions break must stop both engines at the same cycle with
// the same partial counters, and the MaxCycles safety net must produce
// the same error after the same amount of simulated work.
func TestEngineEquivalenceLimits(t *testing.T) {
	cfg := testutil.TinyConfig()
	w := testutil.Workload("limits", testutil.ThrashKernel("l", 64, 60, 4))
	assertEnginesAgree(t, cfg, w, func() sim.Policy { return sim.GTO{} },
		sim.RunOptions{MaxInstructions: 5000}, false)
	assertEnginesAgree(t, cfg, w, func() sim.Policy { return sim.GTO{} },
		sim.RunOptions{MaxCycles: 300}, false)
}

// TestEngineEquivalenceTraced replays the committed golden trace — the
// external-workload path whose kernels carry replay patterns and
// per-warp iteration counts — under a static and an adaptive scheme.
func TestEngineEquivalenceTraced(t *testing.T) {
	ws, err := traceio.LoadWorkloads("../traceio/testdata/mini.ptrace.gz")
	if err != nil {
		t.Fatalf("LoadWorkloads: %v", err)
	}
	cfg := testutil.TinyConfig()
	for _, w := range ws {
		w := w
		t.Run(w.Name+"-gto", func(t *testing.T) {
			t.Parallel()
			assertEnginesAgree(t, cfg, w, func() sim.Policy { return sim.GTO{} }, sim.RunOptions{}, false)
		})
		t.Run(w.Name+"-ccws", func(t *testing.T) {
			t.Parallel()
			assertEnginesAgree(t, cfg, w, func() sim.Policy { return sched.NewCCWS(1500) }, sim.RunOptions{}, false)
		})
	}
}

// TestEngineEquivalenceCatalogue proves the headline acceptance
// criterion: every catalogue workload under every scheme class is
// bit-identical between the engines. Under the race detector the
// workload set shrinks to one representative per class (training,
// memory-sensitive eval, cache-sensitive eval, compute); the full
// catalogue runs in the normal build and in CI's dedicated step.
func TestEngineEquivalenceCatalogue(t *testing.T) {
	cat := workloads.NewCatalogue(workloads.Small)
	names := []string{"gco", "ii", "bfs", "wc"}
	if !raceEnabled {
		names = nil
		names = append(names, workloads.TrainingNames()...)
		names = append(names, workloads.EvalNames()...)
		names = append(names, workloads.ComputeNames()...)
	}
	cfg := testutil.TinyConfig()
	for _, name := range names {
		w := cat.Must(name)
		for _, sc := range engineSchemes(t) {
			w, sc := w, sc
			t.Run(fmt.Sprintf("%s/%s", name, sc.name), func(t *testing.T) {
				t.Parallel()
				traceTuples := sc.name == "poise" || sc.name == "ccws"
				assertEnginesAgree(t, cfg, w, sc.mk, sim.RunOptions{}, traceTuples)
			})
		}
	}
}
