package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"poise/internal/config"
	"poise/internal/gridplan"
	"poise/internal/poise"
	"poise/internal/profile"
	"poise/internal/sim"
	"poise/internal/testutil"
	"poise/internal/trace"
	"poise/internal/workloads"
)

// prunedOracle drives the adaptive refinement rounds of kernel k,
// answering each round's plan from an already-simulated exhaustive
// profile instead of re-simulating: a kernel run is a pure function of
// (config, kernel, tuple), so the replayed measurements are exactly
// what RunTasks would return, and the refinement's decisions — and
// its simulated-point count — are exactly those of a live PrunedSweep.
// This lets the equivalence test cover every catalogue workload for
// the price of one exhaustive sweep each instead of two sweeps.
func prunedOracle(t *testing.T, cfg config.Config, k *trace.Kernel, opts profile.SweepOptions, ex *profile.Profile) (*profile.Profile, profile.RefineStats) {
	t.Helper()
	stats := profile.RefineStats{GridPoints: len(ex.Points)}
	var all []gridplan.Measurement
	for round := 0; ; round++ {
		plan, done, err := profile.BuildRefinePlan("", cfg, k, opts, round, all)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		ms := make([]gridplan.Measurement, 0, len(plan.Tasks))
		for _, task := range plan.Tasks {
			pt, ok := ex.Lookup(task.N, task.P)
			if !ok {
				t.Fatalf("refining %s: round %d asked for (%d,%d), which the exhaustive sweep never simulated",
					k.Name, round, task.N, task.P)
			}
			m := gridplan.Measurement{Kernel: k.Name, N: pt.N, P: pt.P,
				IPC: pt.IPC, HitRate: pt.HitRate, AML: pt.AML}
			if pt.N == ex.MaxN && pt.P == ex.MaxN {
				m.Cycles, m.Instructions = ex.BaselineCycles, ex.BaselineInstr
			}
			ms = append(ms, m)
		}
		if all, err = gridplan.Merge(all, ms); err != nil {
			t.Fatal(err)
		}
		stats.Rounds++
		stats.Simulated += len(ms)
	}
	pr, err := profile.MergeShards(k.Name, all)
	if err != nil {
		t.Fatal(err)
	}
	return pr, stats
}

// shrinkKernel clones a catalogue kernel with its per-warp work and
// grid cut down so an exhaustive 80-point sweep of it stays in the
// tens-of-milliseconds range: the access patterns, body and locality
// structure — everything that shapes the {N, p} solution space — are
// untouched, only the iteration and block counts shrink. Full-length
// kernels would cost minutes per exhaustive sweep, which the tier-1
// budget cannot fit for the whole catalogue.
func shrinkKernel(k *trace.Kernel, iters, blocks int) *trace.Kernel {
	c := *k
	c.PerWarpIters = nil
	if c.Iters > iters {
		c.Iters = iters
	}
	if c.Blocks > blocks {
		c.Blocks = blocks
	}
	return &c
}

// TestPrunedMatchesExhaustiveOnCatalogue is the pruning contract: on
// every catalogue workload, the adaptive sweep must select exactly the
// exhaustive sweep's Best, BestDiagonal and BestScore tuples while
// simulating at most 40% of the default evaluation grid across the
// kernels with a structured solution space — the ones the harness
// actually sweeps (the memory-sensitive evaluation and training sets;
// the compute-intensive workloads never get profiled by any
// experiment). Kernels whose space is flat to within noise have a
// noise argmax as their "optimum"; the refiner must escalate those to
// the full grid (tuple equality still asserted, trivially), and the
// test asserts the escalation is justified: every escalated kernel's
// exhaustive peak really is below the flatness threshold, so no
// structured profile ever pays for the fallback. The exhaustive
// profile is simulated once per kernel and the refinement replays
// measurements from it (see prunedOracle); the live RunTasks path is
// pinned separately by TestPrunedSweepLiveMatchesOracle and the
// profile-package tests. Under the race detector the catalogue
// shrinks to one workload per family.
func TestPrunedMatchesExhaustiveOnCatalogue(t *testing.T) {
	cfg := config.Default().Scale(2)
	params := config.DefaultPoise()
	cat := workloads.NewCatalogue(workloads.Small)
	names := cat.Names()
	if raceEnabled {
		names = []string{"ii", "gco", "wc"}
	}
	opts := profile.SweepOptions{StepN: 2, StepP: 2}
	var totalSim, totalGrid int
	for _, name := range names {
		var ws []*sim.Workload
		ws = append(ws, cat.Must(name))
		kernels := sim.DistinctKernels(ws)
		if len(kernels) > 4 {
			// Multi-kernel workloads (pvr alone has 40 kernel variants)
			// are sampled: four kernels keep every workload family and
			// pattern mix covered within the tier-1 time budget.
			kernels = kernels[:4]
		}
		for _, full := range kernels {
			k := shrinkKernel(full, 24, 24)
			ex, err := profile.Sweep(cfg, k, opts)
			if err != nil {
				t.Fatal(err)
			}
			pr, stats := prunedOracle(t, cfg, k, opts, ex)
			escalated := stats.Simulated == stats.GridPoints
			switch {
			case escalated:
				// Escalation to the full grid is only legitimate on a
				// near-flat space, where the optimum is a noise argmax
				// that no search strategy could pin down with fewer
				// points. A kernel whose peak clearly beats the
				// baseline must be pruned, never escalated.
				if peak := ex.Best().Speedup; peak >= 1.03 {
					t.Errorf("%s: escalated to the full grid despite a structured space (peak %.3fx)",
						k.Name, peak)
				}
				if stats.Rounds > 3 {
					t.Errorf("%s: flat escalation took %d rounds, want <= 3", k.Name, stats.Rounds)
				}
			case ex.Best().Speedup < 1+0.02: // the refiner's default FlatTol
				// The converse: a space that is flat to within the
				// noise threshold cannot be locally searched — it must
				// have escalated for the tuple equality below to be
				// guaranteed rather than lucky.
				t.Errorf("%s: flat profile (peak %.3fx) must escalate to the full grid, swept %d/%d",
					k.Name, ex.Best().Speedup, stats.Simulated, stats.GridPoints)
			default:
				totalSim += stats.Simulated
				totalGrid += stats.GridPoints
			}
			t.Logf("%-14s %3d/%3d points (%.0f%%) in %d rounds, peak %.3fx",
				k.Name, stats.Simulated, stats.GridPoints, 100*stats.Fraction(), stats.Rounds,
				ex.Best().Speedup)

			if g, w := pr.Best(), ex.Best(); g.N != w.N || g.P != w.P {
				t.Errorf("%s: pruned Best (%d,%d) != exhaustive (%d,%d)", k.Name, g.N, g.P, w.N, w.P)
			}
			if g, w := pr.BestDiagonal(), ex.BestDiagonal(); g.N != w.N || g.P != w.P {
				t.Errorf("%s: pruned BestDiagonal (%d,%d) != exhaustive (%d,%d)", k.Name, g.N, g.P, w.N, w.P)
			}
			g, _ := pr.BestScore(params)
			w, _ := ex.BestScore(params)
			if g.N != w.N || g.P != w.P {
				t.Errorf("%s: pruned BestScore (%d,%d) != exhaustive (%d,%d)", k.Name, g.N, g.P, w.N, w.P)
			}
			// Every pruned point is bit-identical to its exhaustive twin.
			for _, pt := range pr.Points {
				if xpt, ok := ex.Lookup(pt.N, pt.P); !ok || xpt != pt {
					t.Fatalf("%s: pruned point %+v differs from exhaustive %+v", k.Name, pt, xpt)
				}
			}
		}
	}
	frac := float64(totalSim) / float64(totalGrid)
	t.Logf("catalogue total over structured profiles: %d/%d points (%.1f%%)", totalSim, totalGrid, 100*frac)
	if frac > 0.40 {
		t.Fatalf("pruned sweeps simulated %.1f%% of the exhaustive grid, want <= 40%%", 100*frac)
	}
}

// TestPrunedPerformanceMatchesExhaustive runs the Fig. 7-10/14 sweep
// with and without pruning: every scheme result must be identical,
// because SWL, PCAL-SWL and Static-Best only consume the profile
// tuples the refinement reproduces exactly. This is the harness-level
// equivalence — pruning can never move a figure. (Under race the
// subset shrinks with subsetOptions, per the tier-1 timing rules.)
func TestPrunedPerformanceMatchesExhaustive(t *testing.T) {
	exact, err := NewHarness(subsetOptions(1, 0)).Performance()
	if err != nil {
		t.Fatal(err)
	}
	popt := subsetOptions(1, 0)
	popt.Prune = true
	pruned, err := NewHarness(popt).Performance()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(exact, pruned) {
		t.Fatalf("pruned Performance diverged from exhaustive:\nexhaustive: %+v\npruned:     %+v", exact, pruned)
	}
}

// TestPrunedFig2MatchesExhaustive pins the full-space consumers: the
// Fig. 2 solution-space dissection renders the whole profile (scatter,
// diagonal and p=1 curves, the PCAL neighbour walk), which a pruned
// subset cannot serve — so a pruned harness must sweep that one
// kernel exhaustively (KernelProfileFull; Fig. 17 takes the same
// path) and produce identical output.
func TestPrunedFig2MatchesExhaustive(t *testing.T) {
	exact, err := NewHarness(subsetOptions(1, 0)).Fig2()
	if err != nil {
		t.Fatal(err)
	}
	popt := subsetOptions(1, 0)
	popt.Prune = true
	pruned, err := NewHarness(popt).Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(exact, pruned) {
		t.Fatalf("pruned Fig2 diverged from exhaustive:\nexhaustive: %+v\npruned:     %+v", exact, pruned)
	}
}

// TestPrunedDatasetMatchesExhaustive pins the training pipeline: the
// dataset BuildDataset assembles from pruned sweeps must be deeply
// equal to the exhaustive one — same admissions, same Eq. 12 targets,
// same feature vectors — so a pruned campaign trains identical
// weights.
func TestPrunedDatasetMatchesExhaustive(t *testing.T) {
	cfg := config.Default().Scale(2)
	params := config.DefaultPoise()
	params.MinTrainCycles = 1
	wl := &sim.Workload{Name: "prunetrain"}
	for i := 0; i < 3; i++ {
		wl.Kernels = append(wl.Kernels, testutil.ThrashKernel(fmt.Sprintf("prunetrain#%d", i), 24+4*i, 12, 8))
	}
	train := []*sim.Workload{wl}
	opts := profile.SweepOptions{StepN: 2, StepP: 2}
	exact, err := poise.BuildDataset(cfg, params, train, opts, profile.Store{Dir: t.TempDir()}, "ex")
	if err != nil {
		t.Fatal(err)
	}
	opts.Refine = &profile.RefineOptions{W0: params.ScoreW0, W1: params.ScoreW1, W2: params.ScoreW2}
	pruned, err := poise.BuildDataset(cfg, params, train, opts, profile.Store{Dir: t.TempDir()}, "pr")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(exact, pruned) {
		t.Fatalf("pruned dataset diverged from exhaustive:\nexhaustive: %+v\npruned:     %+v", exact, pruned)
	}

	// Training sweeps additionally skip the p == N diagonal climb (the
	// harness sets SkipDiagonal for BuildDataset under Options.Prune):
	// the dataset must still be bit-identical, since its targets never
	// read BestDiagonal, while the refinement simulates strictly fewer
	// points. Both halves are pinned here — equality against the same
	// exhaustive dataset, and the per-kernel point drop via PrunedSweep.
	nodiag := opts
	nodiag.Refine = &profile.RefineOptions{W0: params.ScoreW0, W1: params.ScoreW1, W2: params.ScoreW2, SkipDiagonal: true}
	skipped, err := poise.BuildDataset(cfg, params, train, nodiag, profile.Store{Dir: t.TempDir()}, "nd")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(exact, skipped) {
		t.Fatalf("SkipDiagonal dataset diverged from exhaustive:\nexhaustive: %+v\nskipped:    %+v", exact, skipped)
	}
	// The thrash kernels above have near-flat spaces that escalate to
	// the full grid either way, so the point savings are measured on
	// structured catalogue kernels — the shapes the training campaign
	// actually refines. The drop is asserted in aggregate: skipping the
	// diagonal also changes which swept points feed later rounds'
	// rankings, so a single kernel's count can wobble by a point in
	// either direction while the front's cost reliably disappears
	// overall (2-6 points of an 80-point grid per structured kernel).
	cat := workloads.NewCatalogue(workloads.Small)
	var diagSim, noDiagSim, grid int
	for _, name := range []string{"gsmv", "mm", "mvt", "syr2k"} {
		k := shrinkKernel(cat.Must(name).Kernels[0], 24, 24)
		_, withDiag, err := profile.PrunedSweep(cfg, k, opts)
		if err != nil {
			t.Fatal(err)
		}
		_, noDiag, err := profile.PrunedSweep(cfg, k, nodiag)
		if err != nil {
			t.Fatal(err)
		}
		diagSim += withDiag.Simulated
		noDiagSim += noDiag.Simulated
		grid += withDiag.GridPoints
	}
	if noDiagSim >= diagSim {
		t.Errorf("SkipDiagonal saved nothing: %d points with the diagonal front, %d without", diagSim, noDiagSim)
	}
	t.Logf("training refinement: %d/%d grid points (%.1f%%) with the diagonal front, %d (%.1f%%) without — a %.1f-point-of-grid drop",
		diagSim, grid, 100*float64(diagSim)/float64(grid),
		noDiagSim, 100*float64(noDiagSim)/float64(grid),
		100*float64(diagSim-noDiagSim)/float64(grid))
}

// TestRefineShardRoundTrip drives the staged poisebench campaign in
// process: RefinePlan -> RunRefineShard (2 shards) ->
// MergeRefinePartials, looped to convergence, must leave cached
// profiles identical to the ones an independent pruned harness sweeps
// in one process.
func TestRefineShardRoundTrip(t *testing.T) {
	cache := t.TempDir()
	base := subsetOptions(1, 0)
	base.Prune = true
	base.CacheDir = cache

	for round := 0; round < 12; round++ {
		for i := 0; i < 2; i++ {
			opt := base
			opt.ShardIndex, opt.ShardCount = i, 2
			if _, err := NewHarness(opt).RunRefineShard(); err != nil {
				t.Fatal(err)
			}
		}
		mopt := base
		done, err := NewHarness(mopt).MergeRefinePartials()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		if round == 11 {
			t.Fatal("staged refinement did not converge in 12 rounds")
		}
	}
	// The staged campaign's cache must now serve profiles identical to
	// an in-process pruned harness's.
	staged := NewHarness(base)
	inproc := subsetOptions(1, 0)
	inproc.Prune = true
	want := NewHarness(inproc)
	for _, k := range sim.DistinctKernels(want.EvalWorkloads()) {
		got, err := staged.KernelProfile(k)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := want.KernelProfile(k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Points, pr.Points) {
			t.Fatalf("staged pruned profile of %s differs from in-process", k.Name)
		}
	}
}

// TestPrunedSweepLiveMatchesOracle pins the live execution path: a
// real PrunedSweep (RunTasks on pooled GPUs) of one representative
// kernel must reproduce the oracle-replayed refinement bit for bit —
// same points, same stats — and match the exhaustive tuples.
func TestPrunedSweepLiveMatchesOracle(t *testing.T) {
	cfg := config.Default().Scale(2)
	cat := workloads.NewCatalogue(workloads.Small)
	k := cat.Must("ii").Kernels[0]
	opts := profile.SweepOptions{StepN: 4, StepP: 4}
	if raceEnabled {
		// ~10x slower simulation: a coarser target grid exercises the
		// same live path at a fraction of the points.
		opts = profile.SweepOptions{StepN: 8, StepP: 8}
	}
	ex, err := profile.Sweep(cfg, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, wantStats := prunedOracle(t, cfg, k, opts, ex)
	got, gotStats, err := profile.PrunedSweep(cfg, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	if gotStats != wantStats {
		t.Fatalf("live stats %+v != oracle stats %+v", gotStats, wantStats)
	}
	if !reflect.DeepEqual(got.Points, want.Points) {
		t.Fatalf("live pruned points differ from oracle replay:\nlive:   %+v\noracle: %+v", got.Points, want.Points)
	}
	if g, w := got.Best(), ex.Best(); g != w {
		t.Fatalf("live pruned Best %+v != exhaustive %+v", g, w)
	}
}
