package experiments

import (
	"testing"

	"poise/internal/sim"
	"poise/internal/trace"
	"poise/internal/traceio"
)

// TestTraceBackedWorkloadThroughProfileSweep is the ingestion
// acceptance path: a recorded trace registers via ExtraWorkloads, is
// appended to the evaluation set, and runs through the offline {N, p}
// profile sweep exactly like a synthetic workload.
func TestTraceBackedWorkloadThroughProfileSweep(t *testing.T) {
	b := &trace.BodyBuilder{}
	b.Load(1)
	b.ALU(2)
	src := &sim.Workload{Name: "ingested", Kernels: []*trace.Kernel{{
		Name:          "ingested#0",
		Body:          b.Body(),
		Patterns:      []trace.Pattern{trace.PrivateSweep{Region: 77, Lines: 20, Step: 1}},
		Iters:         40,
		WarpsPerBlock: 4,
		Blocks:        4,
	}}}
	tr, err := traceio.Record(src)
	if err != nil {
		t.Fatal(err)
	}
	w, err := tr.Workload()
	if err != nil {
		t.Fatal(err)
	}

	h := NewHarness(Options{
		SMs: 1, EvalStepN: 8, EvalStepP: 8,
		ExtraWorkloads: []*sim.Workload{w},
	})
	found := false
	for _, ew := range h.EvalWorkloads() {
		if ew.Name == "ingested" {
			found = true
		}
	}
	if !found {
		t.Fatal("trace-backed workload missing from the evaluation set")
	}

	prs, err := h.WorkloadProfiles([]*sim.Workload{w})
	if err != nil {
		t.Fatal(err)
	}
	pr, ok := prs["ingested#0"]
	if !ok || len(pr.Points) == 0 {
		t.Fatalf("no profile for the ingested kernel: %+v", prs)
	}
	if pr.Baseline.IPC <= 0 || pr.Best().Speedup <= 0 {
		t.Fatalf("degenerate profile: baseline %+v best %+v", pr.Baseline, pr.Best())
	}

	// The ingested kernel gets its own profile-cache key, so a
	// shadowing trace can never be served a stale synthetic sweep...
	plain := NewHarness(Options{SMs: 1, EvalStepN: 8, EvalStepP: 8})
	if h.profileTag("ingested#0") == plain.tag(false) {
		t.Fatal("extra kernels must perturb their profile cache key")
	}
	// ...while synthetic kernels keep their warm cache entries.
	if h.profileTag("syr2k#0") != plain.profileTag("syr2k#0") {
		t.Fatal("ingesting a trace must not invalidate synthetic sweeps")
	}

	// The key must track trace *content*: a re-recorded trace with the
	// same name, kernel count and geometry but different address
	// streams (e.g. a different -seed) must miss the cache.
	src.Kernels[0].Patterns[0] = trace.PrivateSweep{Region: 78, Lines: 20, Step: 1}
	tr2, err := traceio.Record(src)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := tr2.Workload()
	if err != nil {
		t.Fatal(err)
	}
	h2 := NewHarness(Options{
		SMs: 1, EvalStepN: 8, EvalStepP: 8,
		ExtraWorkloads: []*sim.Workload{w2},
	})
	if h.profileTag("ingested#0") == h2.profileTag("ingested#0") {
		t.Fatal("re-recorded streams must change the profile cache key")
	}
}

// TestShadowingTraceStaysOutOfEvalSet: a trace that shadows a training
// or compute workload replaces it in the catalogue but must not leak
// into the evaluation set (which would silently change every eval
// table); it must, however, move the training sweep tag.
func TestShadowingTraceStaysOutOfEvalSet(t *testing.T) {
	base := NewHarness(Options{SMs: 1})
	gco := base.Cat.Must("gco")
	tr, err := traceio.Record(&sim.Workload{Name: "gco", Kernels: gco.Kernels[:1]})
	if err != nil {
		t.Fatal(err)
	}
	w, err := tr.Workload()
	if err != nil {
		t.Fatal(err)
	}
	h := NewHarness(Options{SMs: 1, ExtraWorkloads: []*sim.Workload{w}})
	for _, ew := range h.EvalWorkloads() {
		if ew.Name == "gco" {
			t.Fatal("shadowed training workload leaked into the evaluation set")
		}
	}
	if got := h.Cat.Must("gco"); got != w {
		t.Fatal("shadowing trace must replace the catalogue entry")
	}
	if h.tag(true) == base.tag(true) {
		t.Fatal("shadowing a training workload must change the training sweep tag")
	}
	// The shared eval tag stays stable — extra kernels are keyed per
	// kernel — so the synthetic catalogue's cached sweeps survive.
	if h.tag(false) != base.tag(false) {
		t.Fatal("eval tag must not move when only per-kernel keys change")
	}
}
