package experiments

import (
	"poise/internal/energy"
	"poise/internal/stats"
)

// SchemeNames lists the Fig. 7/8/9 comparison schemes in paper order.
// It is also the documented scheme-axis order of the "scheme"
// experiment grid: cell plans enumerate workload-major with schemes in
// exactly this order.
var SchemeNames = []string{"GTO", "SWL", "PCAL-SWL", "Poise", "Static-Best"}

// PerfRow carries one workload's results across all schemes.
type PerfRow struct {
	Workload string
	// Indexed like SchemeNames.
	IPC     []float64
	Speedup []float64 // IPC normalised to GTO
	HitRate []float64 // absolute L1 hit rate
	AML     []float64 // normalised to GTO
	// Poise-only extras.
	DispN, DispP, DispE    float64 // Fig. 10 displacements
	EnergyGTO, EnergyPoise float64 // mJ, Fig. 14
}

// PerfSummary aggregates Fig. 7-10 and Fig. 14 data.
type PerfSummary struct {
	Rows []PerfRow
	// HMeanSpeedup per scheme (paper reports harmonic means for IPC).
	HMeanSpeedup []float64
	// AMeanHitRate and AMeanAML per scheme (arithmetic means).
	AMeanHitRate []float64
	AMeanAML     []float64
	// Fig. 10 means.
	MeanDispN, MeanDispP, MeanDispE float64
	// Fig. 14 mean normalised Poise energy.
	MeanEnergyRatio float64
}

// Performance produces the data behind Figs. 7 (IPC), 8 (L1 hit rate),
// 9 (AML), 10 (search displacement) and 14 (energy). The workload x
// scheme grid runs through the unified gridplan pipeline (GridCells):
// cells fan out across the worker pool on pooled GPUs in process, or
// load from the merged results cache after a sharded multi-process
// campaign — bit-identical either way — and this method is pure
// assembly over them, aggregating rows in paper order.
func (h *Harness) Performance() (*PerfSummary, error) {
	cells, err := h.GridCells("scheme")
	if err != nil {
		return nil, err
	}
	idx := indexCells(cells)
	em := energy.Default()

	sum := &PerfSummary{}
	for _, w := range h.EvalWorkloads() {
		row := PerfRow{Workload: w.Name}
		gto, err := idx.get(w.Name, "GTO")
		if err != nil {
			return nil, err
		}
		row.EnergyGTO = em.OfWorkload(gto.Result, h.Cfg.NumSMs).Total()
		for _, scheme := range SchemeNames {
			c, err := idx.get(w.Name, scheme)
			if err != nil {
				return nil, err
			}
			if scheme == "Poise" {
				row.EnergyPoise = em.OfWorkload(c.Result, h.Cfg.NumSMs).Total()
				if c.HasDisp {
					row.DispN, row.DispP, row.DispE = c.DispN, c.DispP, c.DispE
				}
			}
			row.IPC = append(row.IPC, c.Result.IPC)
			row.Speedup = append(row.Speedup, ratio(c.Result.IPC, gto.Result.IPC))
			row.HitRate = append(row.HitRate, c.Result.L1.HitRate())
			row.AML = append(row.AML, ratio(c.Result.AML, gto.Result.AML))
		}
		sum.Rows = append(sum.Rows, row)
	}

	for si := range SchemeNames {
		var sp, hr, aml []float64
		for _, r := range sum.Rows {
			sp = append(sp, r.Speedup[si])
			hr = append(hr, r.HitRate[si])
			aml = append(aml, r.AML[si])
		}
		hm, err := stats.HarmonicMean(sp)
		if err != nil {
			hm = stats.Mean(sp)
		}
		sum.HMeanSpeedup = append(sum.HMeanSpeedup, hm)
		sum.AMeanHitRate = append(sum.AMeanHitRate, stats.Mean(hr))
		sum.AMeanAML = append(sum.AMeanAML, stats.Mean(aml))
	}
	var dn, dp, de, er []float64
	for _, r := range sum.Rows {
		dn = append(dn, r.DispN)
		dp = append(dp, r.DispP)
		de = append(de, r.DispE)
		er = append(er, ratio(r.EnergyPoise, r.EnergyGTO))
	}
	sum.MeanDispN, sum.MeanDispP, sum.MeanDispE = stats.Mean(dn), stats.Mean(dp), stats.Mean(de)
	sum.MeanEnergyRatio = stats.Mean(er)
	return sum, nil
}

func ratio(x, base float64) float64 {
	if base == 0 {
		return 0
	}
	return x / base
}
