package experiments

import (
	"context"
	"fmt"

	"poise/internal/energy"
	"poise/internal/poise"
	"poise/internal/runner"
	"poise/internal/sched"
	"poise/internal/sim"
	"poise/internal/stats"
)

// SchemeNames lists the Fig. 7/8/9 comparison schemes in paper order.
var SchemeNames = []string{"GTO", "SWL", "PCAL-SWL", "Poise", "Static-Best"}

// PerfRow carries one workload's results across all schemes.
type PerfRow struct {
	Workload string
	// Indexed like SchemeNames.
	IPC     []float64
	Speedup []float64 // IPC normalised to GTO
	HitRate []float64 // absolute L1 hit rate
	AML     []float64 // normalised to GTO
	// Poise-only extras.
	DispN, DispP, DispE    float64 // Fig. 10 displacements
	EnergyGTO, EnergyPoise float64 // mJ, Fig. 14
}

// PerfSummary aggregates Fig. 7-10 and Fig. 14 data.
type PerfSummary struct {
	Rows []PerfRow
	// HMeanSpeedup per scheme (paper reports harmonic means for IPC).
	HMeanSpeedup []float64
	// AMeanHitRate and AMeanAML per scheme (arithmetic means).
	AMeanHitRate []float64
	AMeanAML     []float64
	// Fig. 10 means.
	MeanDispN, MeanDispP, MeanDispE float64
	// Fig. 14 mean normalised Poise energy.
	MeanEnergyRatio float64
}

// perfCell is one (workload, scheme) grid point of Performance.
type perfCell struct {
	res                 sim.WorkloadResult
	dispN, dispP, dispE float64
	hasDisp             bool
}

// Performance runs the evaluation set under every scheme, producing the
// data behind Figs. 7 (IPC), 8 (L1 hit rate), 9 (AML), 10 (search
// displacement) and 14 (energy). The workload x scheme grid fans out
// across the harness's worker pool; every cell builds its own policy
// instance and GPU, and the rows aggregate in paper order, so the
// tables are bit-identical at any worker count.
func (h *Harness) Performance() (*PerfSummary, error) {
	evalSet := h.EvalWorkloads()
	profs, err := h.WorkloadProfiles(evalSet)
	if err != nil {
		return nil, err
	}
	// Materialise the weights before the fan-out so the Poise cells
	// don't all block on one training run.
	if _, err := h.ModelWeights(); err != nil {
		return nil, err
	}
	em := energy.Default()

	nS := len(SchemeNames)
	cells, err := runner.Map(h.ctx(), h.Opt.Workers, len(evalSet)*nS,
		func(_ context.Context, i int) (perfCell, error) {
			w, scheme := evalSet[i/nS], SchemeNames[i%nS]
			var pol sim.Policy
			var pp *poise.Policy
			switch scheme {
			case "GTO":
				pol = sim.GTO{}
			case "SWL":
				pol = sched.SWL(profs)
			case "PCAL-SWL":
				pol = sched.NewPCALSWL(sched.SWLFromProfiles(profs),
					h.Params.TWarmup, h.Params.TFeature, h.Params.TPeriod)
			case "Poise":
				var err error
				pp, err = h.PoisePolicy()
				if err != nil {
					return perfCell{}, err
				}
				pol = pp
			case "Static-Best":
				pol = sched.StaticBest(profs)
			}
			res, err := h.RunWorkload(w, pol)
			if err != nil {
				return perfCell{}, fmt.Errorf("experiments: %s under %s: %w", w.Name, scheme, err)
			}
			c := perfCell{res: res}
			if pp != nil {
				c.dispN, c.dispP, c.dispE, c.hasDisp = pp.Displacement()
			}
			return c, nil
		})
	if err != nil {
		return nil, err
	}

	sum := &PerfSummary{}
	for wi, w := range evalSet {
		row := PerfRow{Workload: w.Name}
		gto := cells[wi*nS].res // SchemeNames[0] is GTO
		row.EnergyGTO = em.OfWorkload(gto, h.Cfg.NumSMs).Total()
		for si, scheme := range SchemeNames {
			c := cells[wi*nS+si]
			if scheme == "Poise" {
				row.EnergyPoise = em.OfWorkload(c.res, h.Cfg.NumSMs).Total()
				if c.hasDisp {
					row.DispN, row.DispP, row.DispE = c.dispN, c.dispP, c.dispE
				}
			}
			row.IPC = append(row.IPC, c.res.IPC)
			row.Speedup = append(row.Speedup, ratio(c.res.IPC, gto.IPC))
			row.HitRate = append(row.HitRate, c.res.L1.HitRate())
			row.AML = append(row.AML, ratio(c.res.AML, gto.AML))
		}
		sum.Rows = append(sum.Rows, row)
	}

	for si := range SchemeNames {
		var sp, hr, aml []float64
		for _, r := range sum.Rows {
			sp = append(sp, r.Speedup[si])
			hr = append(hr, r.HitRate[si])
			aml = append(aml, r.AML[si])
		}
		hm, err := stats.HarmonicMean(sp)
		if err != nil {
			hm = stats.Mean(sp)
		}
		sum.HMeanSpeedup = append(sum.HMeanSpeedup, hm)
		sum.AMeanHitRate = append(sum.AMeanHitRate, stats.Mean(hr))
		sum.AMeanAML = append(sum.AMeanAML, stats.Mean(aml))
	}
	var dn, dp, de, er []float64
	for _, r := range sum.Rows {
		dn = append(dn, r.DispN)
		dp = append(dp, r.DispP)
		de = append(de, r.DispE)
		er = append(er, ratio(r.EnergyPoise, r.EnergyGTO))
	}
	sum.MeanDispN, sum.MeanDispP, sum.MeanDispE = stats.Mean(dn), stats.Mean(dp), stats.Mean(de)
	sum.MeanEnergyRatio = stats.Mean(er)
	return sum, nil
}

func ratio(x, base float64) float64 {
	if base == 0 {
		return 0
	}
	return x / base
}
