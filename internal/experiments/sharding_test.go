package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"poise/internal/gridplan"
	"poise/internal/sim"
)

// shardOptions is subsetOptions narrowed to one workload and a
// coarser grid (the equality holds at any resolution — the exhaustive
// 1/2/3-shard sweep comparison lives in package profile where a
// single sweep is cheap), plus a shared cache directory and a shard
// assignment.
func shardOptions(dir string, index, count int) Options {
	o := subsetOptions(1, 0)
	o.EvalSubset = []string{"bfs"}
	o.EvalStepN, o.EvalStepP = 12, 12
	o.CacheDir = dir
	o.ShardIndex, o.ShardCount = index, count
	return o
}

// TestHarnessShardRoundTripMatchesInProcess drives the full harness
// shard workflow at the race-shrunk Small subset: emit the plan, run
// it as 1, 2 and 3 independent shard harnesses (as separate worker
// processes would), merge the partials, and require every merged,
// cached profile to be reflect.DeepEqual-identical to the in-process
// sweep the unsharded harness produces.
func TestHarnessShardRoundTripMatchesInProcess(t *testing.T) {
	direct := NewHarness(shardOptions("", 0, 0)) // no cache: in-process sweeps
	kernels := sim.DistinctKernels(direct.EvalWorkloads())
	want := map[string]interface{}{}
	for _, k := range kernels {
		pr, err := direct.KernelProfile(k)
		if err != nil {
			t.Fatal(err)
		}
		want[k.Name] = pr
	}

	for _, shards := range []int{1, 2, 3} {
		dir := t.TempDir()
		for i := 0; i < shards; i++ {
			h := NewHarness(shardOptions(dir, i, shards))
			if _, err := h.RunShard(); err != nil {
				t.Fatalf("shards=%d: shard %d: %v", shards, i, err)
			}
		}
		merger := NewHarness(shardOptions(dir, 0, shards))
		names, err := merger.MergeShardPartials()
		if err != nil {
			t.Fatalf("shards=%d: merge: %v", shards, err)
		}
		if len(names) != len(kernels) {
			t.Fatalf("shards=%d: merged %d kernels, want %d", shards, len(names), len(kernels))
		}
		// A fresh harness on the merged cache must load profiles equal to
		// the in-process sweeps.
		loaded := NewHarness(shardOptions(dir, 0, 0))
		for _, k := range kernels {
			pr, err := loaded.KernelProfile(k)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want[k.Name], pr) {
				t.Fatalf("shards=%d: kernel %s: merged profile differs from in-process sweep", shards, k.Name)
			}
		}
	}
}

// TestEmitPlanRoundTrips checks the plan surface the coordinator
// ships to workers: JSONL round-trip, digest-carrying tasks, stable
// content across harness constructions.
func TestEmitPlanRoundTrips(t *testing.T) {
	h := NewHarness(subsetOptions(1, 0))
	var buf bytes.Buffer
	if err := h.EmitPlan(&buf); err != nil {
		t.Fatal(err)
	}
	plan, err := gridplan.ReadPlan(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Tasks) == 0 {
		t.Fatal("empty plan")
	}
	for _, task := range plan.Tasks {
		if task.Digest == "" || task.Tag == "" {
			t.Fatalf("task %s lacks digest or tag", task.Key())
		}
	}
	var buf2 bytes.Buffer
	if err := NewHarness(subsetOptions(1, 0)).EmitPlan(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("plan emission must be deterministic across harnesses")
	}
}

// TestRunShardValidatesOptions pins the error paths: no cache dir, bad
// shard assignment.
func TestRunShardValidatesOptions(t *testing.T) {
	o := subsetOptions(1, 0)
	o.ShardCount = 2
	if _, err := NewHarness(o).RunShard(); err == nil {
		t.Fatal("RunShard without a cache dir must error")
	}
	h := NewHarness(shardOptions(t.TempDir(), 0, 0))
	if _, err := h.RunShard(); err == nil {
		t.Fatal("RunShard with ShardCount 0 must error")
	}
	h = NewHarness(shardOptions(t.TempDir(), 5, 2))
	if _, err := h.RunShard(); err == nil {
		t.Fatal("RunShard with an out-of-range index must error")
	}
	if _, err := NewHarness(subsetOptions(1, 0)).MergeShardPartials(); err == nil {
		t.Fatal("MergeShardPartials without a cache dir must error")
	}
}
