package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"poise/internal/config"
	"poise/internal/gridplan"
	"poise/internal/poise"
	"poise/internal/results"
	"poise/internal/runner"
	"poise/internal/sched"
	"poise/internal/sim"
	"poise/internal/workloads"
)

// The unified experiment-grid engine. Every workload × scheme grid of
// the evaluation — the Fig. 7/8/9 scheme comparison, the sensitivity
// figures and the Pbest classification table — is expressed as
// gridplan.CellTasks and runs through one pipeline:
//
//	CellPlan    -> the serialisable grid (ship to workers)
//	RunCellTasks-> execute cells on per-configuration GPU pools
//	GridCells   -> in-process run, or the merged cached cells
//	RunCellShard / MergeCellPartials -> the multi-process split
//
// Exactly like profile sweeps, merging any shard decomposition is
// reflect.DeepEqual-identical to the in-process grid, so fanning a
// figure out across processes (or machines) can never change it. The
// figure methods (Performance, Fig11, ...) are pure assembly over the
// merged cells.

// gridDef defines one experiment grid: its workload axis, its scheme
// axis in documented order, a prepare step that materialises shared
// artifacts (profiles, model weights) before the fan-out, and the cell
// executor.
type gridDef struct {
	desc      string
	workloads func(h *Harness) []*sim.Workload
	schemes   func(h *Harness) []string
	prepare   func(h *Harness) error
	run       func(h *Harness, pools *sim.PoolSet, wl *sim.Workload, scheme string) (results.CellResult, error)
}

// Shared axis definitions (also used by the figure assembly code).
var (
	// strideSettings are Fig. 11's local-search stride (εN, εp)
	// settings, including the pure-prediction (0, 0) case.
	strideSettings = [][2]int{{0, 0}, {1, 1}, {2, 2}, {2, 4}, {4, 4}}
	// cacheSizesKB are Fig. 12's evaluation L1 capacities.
	cacheSizesKB = []int{16, 32, 64}
	// fig13Dropped are the ablated feature indices in paper order
	// (x7, x6, x5, x4, x3).
	fig13Dropped = []int{6, 5, 4, 3, 2}
)

func strideScheme(st [2]int) string { return fmt.Sprintf("stride%d.%d", st[0], st[1]) }
func dropScheme(d int) string       { return fmt.Sprintf("drop-x%d", d+1) }

// gridDefs registers every experiment grid. Scheme slices are returned
// fresh per call (they are the documented axis order, never sorted).
var gridDefs = map[string]gridDef{
	"scheme": {
		desc:      "Fig. 7-10/14: evaluation workloads under every comparison scheme",
		workloads: func(h *Harness) []*sim.Workload { return h.EvalWorkloads() },
		schemes:   func(h *Harness) []string { return append([]string(nil), SchemeNames...) },
		prepare: func(h *Harness) error {
			if _, err := h.WorkloadProfiles(h.EvalWorkloads()); err != nil {
				return err
			}
			_, err := h.ModelWeights()
			return err
		},
		run: runSchemeCell,
	},
	"stride": {
		desc:      "Fig. 11: local-search stride sensitivity",
		workloads: func(h *Harness) []*sim.Workload { return h.EvalWorkloads() },
		schemes: func(h *Harness) []string {
			s := []string{"GTO"}
			for _, st := range strideSettings {
				s = append(s, strideScheme(st))
			}
			return s
		},
		prepare: prepWeights,
		run:     runStrideCell,
	},
	"cachesize": {
		desc:      "Fig. 12: L1 cache-size sensitivity (linear indexing)",
		workloads: func(h *Harness) []*sim.Workload { return h.EvalWorkloads() },
		schemes: func(h *Harness) []string {
			var s []string
			for _, kb := range cacheSizesKB {
				s = append(s, fmt.Sprintf("GTO-%dKB", kb), fmt.Sprintf("Poise-%dKB", kb))
			}
			return s
		},
		prepare: prepWeights,
		run:     runCacheSizeCell,
	},
	"ablation": {
		desc:      "Fig. 13: feature-ablation sensitivity (no local search)",
		workloads: func(h *Harness) []*sim.Workload { return h.EvalWorkloads() },
		schemes: func(h *Harness) []string {
			s := []string{"full"}
			for _, d := range fig13Dropped {
				s = append(s, dropScheme(d))
			}
			return s
		},
		prepare: func(h *Harness) error {
			_, err := h.Dataset()
			return err
		},
		run: runAblationCell,
	},
	"alternatives": {
		desc:      "Fig. 15: APCM and random-restart search against Poise",
		workloads: func(h *Harness) []*sim.Workload { return h.EvalWorkloads() },
		schemes: func(h *Harness) []string {
			s := []string{"GTO", "APCM"}
			for i := 1; i <= h.Opt.RandomSeeds; i++ {
				s = append(s, fmt.Sprintf("random-%d", i))
			}
			return append(s, "Poise")
		},
		prepare: prepWeights,
		run:     runAlternativesCell,
	},
	"compute": {
		desc:      "Fig. 16: compute-intensive workloads under GTO, Poise and the Pbest probe",
		workloads: func(h *Harness) []*sim.Workload { return h.Cat.ComputeSet() },
		schemes:   func(h *Harness) []string { return []string{"GTO", "Poise", "Pbest"} },
		prepare:   prepWeights,
		run:       runComputeCell,
	},
	"pbest": {
		desc:      "Table IIIa: Pbest classification (64x-L1 speedup) for every workload",
		workloads: func(h *Harness) []*sim.Workload { return h.pbestWorkloads() },
		schemes:   func(h *Harness) []string { return []string{"GTO", "Pbest"} },
		run:       runComputeCell, // GTO and Pbest cells are the same probes
	},
}

// GridNames lists the experiment grids in sorted order.
func GridNames() []string {
	var names []string
	for n := range gridDefs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// GridDescription returns a grid's one-line description ("" if the
// grid does not exist).
func GridDescription(name string) string { return gridDefs[name].desc }

func prepWeights(h *Harness) error {
	_, err := h.ModelWeights()
	return err
}

// runCellOn executes one cell's workload under one policy on a GPU
// drawn from the per-configuration pool — the reset-verified reuse
// discipline that makes pooled cells bit-identical to fresh-GPU runs.
func (h *Harness) runCellOn(pools *sim.PoolSet, cfg config.Config, wl *sim.Workload, pol sim.Policy) (results.CellResult, error) {
	g, err := pools.Get(cfg)
	if err != nil {
		return results.CellResult{}, err
	}
	res, err := g.RunWorkloadCached(wl, pol, sim.RunOptions{}, h.prefix)
	pools.Put(cfg, g)
	if err != nil {
		return results.CellResult{}, err
	}
	return results.CellResult{Result: res}, nil
}

// runSchemeCell executes one Fig. 7-10/14 cell. Every cell builds its
// own policy instance (the adaptive policies are stateful).
func runSchemeCell(h *Harness, pools *sim.PoolSet, wl *sim.Workload, scheme string) (results.CellResult, error) {
	var pol sim.Policy
	var pp *poise.Policy
	switch scheme {
	case "GTO":
		pol = sim.GTO{}
	case "SWL", "PCAL-SWL", "Static-Best":
		profs, err := h.WorkloadProfiles(h.EvalWorkloads())
		if err != nil {
			return results.CellResult{}, err
		}
		switch scheme {
		case "SWL":
			pol = sched.SWL(profs)
		case "PCAL-SWL":
			pol = sched.NewPCALSWL(sched.SWLFromProfiles(profs),
				h.Params.TWarmup, h.Params.TFeature, h.Params.TPeriod)
		case "Static-Best":
			pol = sched.StaticBest(profs)
		}
	case "Poise":
		var err error
		pp, err = h.PoisePolicy()
		if err != nil {
			return results.CellResult{}, err
		}
		pol = pp
	default:
		return results.CellResult{}, fmt.Errorf("experiments: unknown comparison scheme %q", scheme)
	}
	cr, err := h.runCellOn(pools, h.Cfg, wl, pol)
	if err != nil {
		return cr, fmt.Errorf("experiments: %s under %s: %w", wl.Name, scheme, err)
	}
	if pp != nil {
		cr.DispN, cr.DispP, cr.DispE, cr.HasDisp = pp.Displacement()
	}
	return cr, nil
}

// runStrideCell executes one Fig. 11 cell: the GTO baseline or Poise
// at one local-search stride setting.
func runStrideCell(h *Harness, pools *sim.PoolSet, wl *sim.Workload, scheme string) (results.CellResult, error) {
	if scheme == "GTO" {
		return h.runCellOn(pools, h.Cfg, wl, sim.GTO{})
	}
	for _, st := range strideSettings {
		if strideScheme(st) != scheme {
			continue
		}
		w, err := h.ModelWeights()
		if err != nil {
			return results.CellResult{}, err
		}
		params := h.Params
		params.StrideN, params.StrideP = st[0], st[1]
		pol := poise.NewPolicy(params, w)
		pol.DisableSearch = st[0] == 0 && st[1] == 0
		cr, err := h.runCellOn(pools, h.Cfg, wl, pol)
		if err != nil {
			return cr, fmt.Errorf("experiments: stride %v on %s: %w", st, wl.Name, err)
		}
		return cr, nil
	}
	return results.CellResult{}, fmt.Errorf("experiments: unknown stride scheme %q", scheme)
}

// runCacheSizeCell executes one Fig. 12 cell: GTO or Poise on the
// altered evaluation platform (grown linear-indexed L1), the model
// still trained on the 16 KB hashed baseline.
func runCacheSizeCell(h *Harness, pools *sim.PoolSet, wl *sim.Workload, scheme string) (results.CellResult, error) {
	name, kbStr, ok := strings.Cut(scheme, "-")
	kb, err := strconv.Atoi(strings.TrimSuffix(kbStr, "KB"))
	if !ok || err != nil || (name != "GTO" && name != "Poise") {
		return results.CellResult{}, fmt.Errorf("experiments: unknown cache-size scheme %q", scheme)
	}
	cfg := h.Cfg
	cfg.L1.SizeBytes = kb * 1024
	cfg.L1.Index = config.IndexLinear
	var pol sim.Policy = sim.GTO{}
	if name == "Poise" {
		p, err := h.PoisePolicy()
		if err != nil {
			return results.CellResult{}, err
		}
		pol = p
	}
	return h.runCellOn(pools, cfg, wl, pol)
}

// runAblationCell executes one Fig. 13 cell: the model retrained
// without one feature (or the full model), evaluated without the
// local-search safety net so prediction quality is isolated.
func runAblationCell(h *Harness, pools *sim.PoolSet, wl *sim.Workload, scheme string) (results.CellResult, error) {
	drop := -1
	if scheme != "full" {
		x, err := strconv.Atoi(strings.TrimPrefix(scheme, "drop-x"))
		if err != nil || x < 1 {
			return results.CellResult{}, fmt.Errorf("experiments: unknown ablation scheme %q", scheme)
		}
		drop = x - 1
	}
	w, err := h.ablatedWeights(drop)
	if err != nil {
		return results.CellResult{}, err
	}
	pol := poise.NewPolicy(h.Params, w)
	pol.DisableSearch = true
	return h.runCellOn(pools, h.Cfg, wl, pol)
}

// runAlternativesCell executes one Fig. 15 cell. Random-restart trial
// seeds are a pure function of (Options.Seed, trial index) — the same
// family the pre-gridplan implementation used — so results don't
// depend on which worker or shard runs them.
func runAlternativesCell(h *Harness, pools *sim.PoolSet, wl *sim.Workload, scheme string) (results.CellResult, error) {
	switch {
	case scheme == "GTO":
		return h.runCellOn(pools, h.Cfg, wl, sim.GTO{})
	case scheme == "APCM":
		return h.runCellOn(pools, h.Cfg, wl, sched.NewAPCM(h.Params.TFeature))
	case scheme == "Poise":
		pol, err := h.PoisePolicy()
		if err != nil {
			return results.CellResult{}, err
		}
		return h.runCellOn(pools, h.Cfg, wl, pol)
	case strings.HasPrefix(scheme, "random-"):
		trial, err := strconv.Atoi(strings.TrimPrefix(scheme, "random-"))
		if err != nil || trial < 1 {
			break
		}
		return h.runCellOn(pools, h.Cfg, wl, sched.NewRandomRestart(h.Opt.Seed+int64(trial),
			h.Params.TWarmup, h.Params.TSearch, h.Params.TPeriod,
			h.Params.StrideN, h.Params.StrideP))
	}
	return results.CellResult{}, fmt.Errorf("experiments: unknown alternatives scheme %q", scheme)
}

// runComputeCell executes one Fig. 16 / Table IIIa cell: the GTO
// baseline, Poise, or the 64x-L1 Pbest probe.
func runComputeCell(h *Harness, pools *sim.PoolSet, wl *sim.Workload, scheme string) (results.CellResult, error) {
	switch scheme {
	case "GTO":
		return h.runCellOn(pools, h.Cfg, wl, sim.GTO{})
	case "Poise":
		pol, err := h.PoisePolicy()
		if err != nil {
			return results.CellResult{}, err
		}
		return h.runCellOn(pools, h.Cfg, wl, pol)
	case "Pbest":
		big := h.Cfg
		big.L1.SizeBytes *= 64
		return h.runCellOn(pools, big, wl, sim.GTO{})
	}
	return results.CellResult{}, fmt.Errorf("experiments: unknown probe scheme %q", scheme)
}

// pbestWorkloads is Table IIIa's workload axis: the whole catalogue
// (training, evaluation and compute sets) plus genuinely new ingested
// trace workloads, in the table's documented order.
func (h *Harness) pbestWorkloads() []*sim.Workload {
	names := append(append([]string{}, workloads.TrainingNames()...), workloads.EvalNames()...)
	names = append(names, workloads.ComputeNames()...)
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, w := range h.Opt.ExtraWorkloads {
		if !seen[w.Name] {
			seen[w.Name] = true
			names = append(names, w.Name)
		}
	}
	out := make([]*sim.Workload, 0, len(names))
	for _, n := range names {
		out = append(out, h.Cat.Must(n))
	}
	return out
}

// ablatedWeights trains (once, single-flight) the Fig. 13 model with
// feature index drop removed; -1 trains the full reference model.
func (h *Harness) ablatedWeights(drop int) (poise.Weights, error) {
	return h.ablated.Get(drop, func() (poise.Weights, error) {
		ds, err := h.Dataset()
		if err != nil {
			return poise.Weights{}, err
		}
		return poise.Train(ds, poise.TrainOptions{Drop: drop})
	})
}

// weightsFingerprint identifies the Poise model cells run with, for
// the results-cache tag: an explicit override, the embedded defaults,
// or a model trained from the (tag-identified) training dataset.
func (h *Harness) weightsFingerprint() string {
	if h.Opt.Weights != nil {
		sum := sha256.Sum256([]byte(fmt.Sprintf("%+v", *h.Opt.Weights)))
		return "override-" + hex.EncodeToString(sum[:4])
	}
	if _, ok := poise.DefaultWeights(); ok {
		return "default"
	}
	return "trained-" + h.tag(true)
}

// cellTag digests everything that can change a grid's cell results or
// its plan membership — the full architectural configuration, the
// Poise parameters, the profile-grid resolution and seed (via the
// profile tag), the model weights' provenance, the grid's workload
// axis (names and content digests, so subset or trace-augmented runs
// get their own cache entry instead of evicting the full grid's), and
// per-grid extras — so the results cache can never serve stale cells.
// All processes of one sharded campaign must agree on it;
// RunCellTasks enforces that against the plan.
func (h *Harness) cellTag(grid string) string {
	s := fmt.Sprintf("%s|%s|cfg:%+v|params:%+v|w:%s",
		grid, h.tag(false), h.Cfg, h.Params, h.weightsFingerprint())
	if d, ok := gridDefs[grid]; ok {
		ax := sha256.New()
		for _, wl := range d.workloads(h) {
			fmt.Fprintf(ax, "%s=%s;", wl.Name, workloadDigest(wl))
		}
		s += "|axis:" + hex.EncodeToString(ax.Sum(nil)[:6])
	}
	switch grid {
	case "alternatives":
		s += fmt.Sprintf("|rs:%d", h.Opt.RandomSeeds)
	case "ablation":
		s += "|train:" + h.tag(true)
	}
	sum := sha256.Sum256([]byte(s))
	return "g" + hex.EncodeToString(sum[:6])
}

// CellPlan enumerates the grid's cells in the documented order:
// workload-major (the grid's workload axis order), with schemes in the
// grid's axis order — SchemeNames order for the scheme grid. The
// enumeration is a pure function of the harness options, independent
// of map iteration order and worker count.
func (h *Harness) CellPlan(grid string) (*gridplan.CellPlan, error) {
	d, ok := gridDefs[grid]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment grid %q (have: %s)",
			grid, strings.Join(GridNames(), ", "))
	}
	tag := h.cellTag(grid)
	schemes := d.schemes(h)
	plan := &gridplan.CellPlan{Version: gridplan.PlanVersion}
	for _, wl := range d.workloads(h) {
		dg := workloadDigest(wl)
		for ord, sc := range schemes {
			plan.Cells = append(plan.Cells, gridplan.CellTask{
				Tag: tag, Grid: grid, Workload: wl.Name, Digest: dg,
				Scheme: sc, Ord: ord, Seed: h.Opt.Seed,
			})
		}
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan, nil
}

// EmitCellPlan writes the grid's cell plan as JSONL in canonical key
// order — the artifact a coordinator ships to shard workers.
func (h *Harness) EmitCellPlan(w io.Writer, grid string) error {
	plan, err := h.CellPlan(grid)
	if err != nil {
		return err
	}
	plan.Sort()
	return gridplan.WriteCellPlan(w, plan)
}

// RunCellTasks executes experiment cells — typically one shard of a
// grid's plan — and returns their results in task order. Before
// anything simulates, every task is validated against this process's
// own view of the campaign: the configuration tag must match (all
// processes of a sharded run agree on flags), the workload must
// resolve in the catalogue with the same content digest, and the
// scheme must exist at the same ordinal. Cells fan out across the
// worker pool, each drawing its GPU from a per-configuration pool.
func (h *Harness) RunCellTasks(grid string, tasks []gridplan.CellTask) ([]results.CellResult, error) {
	d, ok := gridDefs[grid]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment grid %q (have: %s)",
			grid, strings.Join(GridNames(), ", "))
	}
	byName, err := h.validateCells(grid, d, tasks)
	if err != nil {
		return nil, err
	}
	if len(tasks) == 0 {
		return nil, nil
	}
	if d.prepare != nil {
		if err := d.prepare(h); err != nil {
			return nil, err
		}
	}
	// One harness-wide pool set: a -run all campaign recycles the same
	// per-configuration GPUs across every grid it executes.
	pools := h.pools
	return runner.MapSlice(h.ctx(), h.Opt.Workers, tasks,
		func(_ context.Context, _ int, t gridplan.CellTask) (results.CellResult, error) {
			cr, err := d.run(h, pools, byName[t.Workload], t.Scheme)
			if err != nil {
				return cr, err
			}
			return cr.FromTask(t), nil
		})
}

// validateCells checks every task against this process's own view of
// the campaign and returns the workload index cell execution uses.
func (h *Harness) validateCells(grid string, d gridDef, tasks []gridplan.CellTask) (map[string]*sim.Workload, error) {
	tag := h.cellTag(grid)
	byName := map[string]*sim.Workload{}
	for _, wl := range d.workloads(h) {
		byName[wl.Name] = wl
	}
	ords := map[string]int{}
	for ord, sc := range d.schemes(h) {
		ords[sc] = ord
	}
	digests := map[string]string{}
	for _, t := range tasks {
		if t.Grid != grid {
			return nil, fmt.Errorf("experiments: task %s belongs to grid %q, running %q", t.Key(), t.Grid, grid)
		}
		if t.Tag != tag {
			return nil, fmt.Errorf(
				"experiments: plan tag %s does not match this configuration's %s — emit the plan and run its shards with identical flags",
				t.Tag, tag)
		}
		wl := byName[t.Workload]
		if wl == nil {
			return nil, fmt.Errorf("experiments: plan cell %s needs workload %q, not in this grid's axis", t.Key(), t.Workload)
		}
		dg, ok := digests[t.Workload]
		if !ok {
			dg = workloadDigest(wl)
			digests[t.Workload] = dg
		}
		if t.Digest != "" && dg != t.Digest {
			return nil, fmt.Errorf(
				"experiments: workload %q digest mismatch: plan has %s, catalogue materialises %s (stale plan or drifted catalogue?)",
				t.Workload, t.Digest, dg)
		}
		if o, ok := ords[t.Scheme]; !ok || o != t.Ord {
			return nil, fmt.Errorf("experiments: plan cell %s names scheme %q at ordinal %d, which this configuration does not define", t.Key(), t.Scheme, t.Ord)
		}
	}
	return byName, nil
}

// ValidateCellPlan checks a whole shipped plan against this process's
// configuration — tag agreement, workload digests, scheme ordinals —
// without running anything. Shard workers call it on the full plan
// before slicing, so a worker launched with mismatched flags fails
// fast even when its own shard happens to be empty or to miss the
// drifted workload.
func (h *Harness) ValidateCellPlan(grid string, plan *gridplan.CellPlan) error {
	d, ok := gridDefs[grid]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment grid %q (have: %s)",
			grid, strings.Join(GridNames(), ", "))
	}
	if err := plan.Validate(); err != nil {
		return err
	}
	_, err := h.validateCells(grid, d, plan.Cells)
	return err
}

// GridCells returns the grid's full, key-unordered-but-plan-complete
// cell set: the merged results-cache entry when a valid one covers the
// current plan (the tail of the shard workflow, or a previous cached
// run), otherwise a fresh in-process run through the same pipeline —
// cached afterwards when a cache directory is configured, so corrupt
// or stale entries are repaired by overwriting. Memoised per harness.
func (h *Harness) GridCells(grid string) ([]results.CellResult, error) {
	return h.cells.Get(grid, func() ([]results.CellResult, error) {
		plan, err := h.CellPlan(grid)
		if err != nil {
			return nil, err
		}
		tag := planTag(h, grid, plan)
		if cells, err := h.cellStore.Load(tag, grid); err == nil {
			if verr := results.Verify(plan, cells); verr == nil {
				return cells, nil
			}
			// Present but covering a different plan (subset runs, drifted
			// digests): treat as a miss and overwrite below.
		}
		// os.ErrNotExist and results.ErrCorrupt land here too — a
		// truncated write from a crashed merge re-runs and is repaired.
		cells, err := h.RunCellTasks(grid, plan.Cells)
		if err != nil {
			return nil, err
		}
		if h.Opt.CacheDir != "" {
			if err := h.cellStore.Save(tag, grid, cells); err != nil {
				return nil, err
			}
		}
		return cells, nil
	})
}

// RunCellShard simulates this process's shard (Options.ShardIndex of
// Options.ShardCount) of the grid's cell plan and persists it as a
// shard partial in the cache directory, returning the file written.
// The split is a pure function of the plan, so N processes configured
// i/N cover every cell exactly once without coordinating.
func (h *Harness) RunCellShard(grid string) (string, error) {
	if h.Opt.CacheDir == "" {
		return "", errors.New("experiments: sharded experiment grids need a cache directory for partials")
	}
	if h.Opt.ShardCount < 1 {
		return "", fmt.Errorf("experiments: ShardCount %d < 1", h.Opt.ShardCount)
	}
	plan, err := h.CellPlan(grid)
	if err != nil {
		return "", err
	}
	shard, err := plan.Shard(h.Opt.ShardIndex, h.Opt.ShardCount)
	if err != nil {
		return "", err
	}
	cells, err := h.RunCellTasks(grid, shard.Cells)
	if err != nil {
		return "", err
	}
	return h.cellStore.SaveShard(planTag(h, grid, plan), grid, h.Opt.ShardIndex, h.Opt.ShardCount, cells)
}

// MergeCellPartials merges the grid's persisted shard partials into
// the merged results entry, verifying complete plan coverage (a lost
// shard fails loudly rather than producing a sparse figure). It
// returns the merged cell count. After a merge, ordinary figure runs
// on the same cache directory load the cells without simulating.
func (h *Harness) MergeCellPartials(grid string) (int, error) {
	if h.Opt.CacheDir == "" {
		return 0, errors.New("experiments: no cache directory to merge cell partials from")
	}
	plan, err := h.CellPlan(grid)
	if err != nil {
		return 0, err
	}
	cells, err := h.cellStore.MergeSavedShards(planTag(h, grid, plan), grid, plan)
	if err != nil {
		return 0, err
	}
	return len(cells), nil
}

// planTag reads the configuration tag off a locally-built plan
// (CellPlan stamps every cell with it), avoiding a recompute that
// would re-hash the whole workload axis; an empty plan falls back to
// computing it.
func planTag(h *Harness, grid string, plan *gridplan.CellPlan) string {
	if len(plan.Cells) > 0 {
		return plan.Cells[0].Tag
	}
	return h.cellTag(grid)
}

// cellSet indexes merged cells by (workload, scheme) for figure
// assembly.
type cellSet map[[2]string]results.CellResult

func indexCells(cells []results.CellResult) cellSet {
	s := cellSet{}
	for _, c := range cells {
		s[[2]string{c.Workload, c.Scheme}] = c
	}
	return s
}

// get returns the cell for (workload, scheme); a missing cell is an
// internal-consistency error (plans are verified complete before this).
func (s cellSet) get(workload, scheme string) (results.CellResult, error) {
	c, ok := s[[2]string{workload, scheme}]
	if !ok {
		return results.CellResult{}, fmt.Errorf("experiments: no cell for workload %s under %s", workload, scheme)
	}
	return c, nil
}
