package experiments

import (
	"bytes"
	"strings"
	"testing"

	"poise/internal/profile"
	"poise/internal/sim"
	"poise/internal/workloads"
)

// The heavyweight end-to-end experiments run through the benchmark
// harness (bench_test.go at the repository root). These tests cover the
// harness plumbing and the cheap experiments at a tiny scale.

func tinyHarness() *Harness {
	return NewHarness(Options{SMs: 2, Size: workloads.Small,
		EvalStepN: 8, EvalStepP: 8, TrainStepN: 8, TrainStepP: 8})
}

func TestHarnessDefaults(t *testing.T) {
	h := NewHarness(Options{})
	if h.Cfg.NumSMs != 8 {
		t.Fatalf("default SMs = %d", h.Cfg.NumSMs)
	}
	if h.Opt.EvalStepN != 2 || h.Opt.RandomSeeds != 3 {
		t.Fatalf("defaults wrong: %+v", h.Opt)
	}
}

func TestTagDistinguishesConfigs(t *testing.T) {
	a := NewHarness(Options{SMs: 4})
	b := NewHarness(Options{SMs: 8})
	if a.tag(false) == b.tag(false) {
		t.Fatal("different configs must not share cache tags")
	}
	if a.tag(false) == a.tag(true) {
		t.Fatal("train and eval grids must not share cache tags")
	}
}

func TestKernelProfileMemoised(t *testing.T) {
	h := tinyHarness()
	k := h.Cat.Must("wc").Kernels[0]
	a, err := h.KernelProfile(k)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.KernelProfile(k)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("profile must be memoised per harness")
	}
}

func TestCostAccounting(t *testing.T) {
	h := NewHarness(Options{SMs: 32})
	c := h.Cost()
	// The paper's budget: 7 counters (28 B) + FSM (1 B) + 96 scheduler
	// bits (12 B) = 41 B per SM, ~1.3 kB chip-wide.
	if c.TotalPerSM < 40 || c.TotalPerSM > 42 {
		t.Fatalf("per-SM cost %.2f B, want ~41 B", c.TotalPerSM)
	}
	if c.TotalChipBytes < 1280 || c.TotalChipBytes > 1350 {
		t.Fatalf("chip cost %.0f B, want ~1304 B", c.TotalChipBytes)
	}
	if c.VitalBits != 48 || c.PolluteBits != 48 {
		t.Fatal("scheduler bit accounting wrong")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Header: []string{"name", "a", "b"}}
	tbl.Add("row1", "1.0", "2.0")
	tbl.AddF("row2", 2, 3.14159, 2.71828)
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"name", "row1", "row2", "3.14", "2.72"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestRenderSpace(t *testing.T) {
	pr := &profile.Profile{Kernel: "k", MaxN: 4}
	for n := 1; n <= 4; n++ {
		for p := 1; p <= n; p++ {
			pr.Points = append(pr.Points, profile.Point{N: n, P: p, Speedup: 1.3})
		}
	}
	var buf bytes.Buffer
	RenderSpace(&buf, pr, map[string][2]int{"M": {4, 2}})
	out := buf.String()
	if !strings.Contains(out, "#") || !strings.Contains(out, "M") {
		t.Fatalf("space rendering missing markers:\n%s", out)
	}
}

func TestSimulatePCALSearchFindsLocalOptimum(t *testing.T) {
	// A two-peak profile: PCAL from the CCWS point must stop at the
	// nearby peak, not the global one — the paper's Fig. 2 pathology.
	pr := &profile.Profile{Kernel: "peaks", MaxN: 8}
	add := func(n, p int, s float64) {
		pr.Points = append(pr.Points, profile.Point{N: n, P: p, Speedup: s})
	}
	for n := 1; n <= 8; n++ {
		for p := 1; p <= n; p++ {
			add(n, p, 1.0)
		}
	}
	set := func(n, p int, s float64) {
		for i := range pr.Points {
			if pr.Points[i].N == n && pr.Points[i].P == p {
				pr.Points[i].Speedup = s
			}
		}
	}
	set(2, 2, 1.07) // CCWS diagonal peak
	set(2, 1, 1.35) // local optimum after the parallel-p step
	set(3, 1, 0.80) // valley blocking the climb
	set(7, 1, 1.45) // global optimum, unreachable by hill climbing
	ccws := pr.BestDiagonal()
	if ccws.N != 2 {
		t.Fatalf("CCWS point = %+v", ccws)
	}
	got := simulatePCALSearch(pr, ccws)
	if got.N != 2 || got.P != 1 {
		t.Fatalf("PCAL converged to (%d,%d), want the (2,1) local optimum", got.N, got.P)
	}
	if best := pr.Best(); best.N != 7 {
		t.Fatalf("global best = %+v", best)
	}
}

func TestConvergedTuples(t *testing.T) {
	// Converged = last steering before the next prediction per SM.
	log := []sim.TupleEvent{
		{Cycle: 1, SM: 0, N: 24, P: 24},
		{Cycle: 2, SM: 0, N: 8, P: 4, Predicted: true},
		{Cycle: 3, SM: 0, N: 6, P: 4},
		{Cycle: 4, SM: 0, N: 7, P: 3},
		{Cycle: 5, SM: 0, N: 24, P: 24, Predicted: true},
		{Cycle: 6, SM: 0, N: 9, P: 2},
	}
	out := convergedTuples(log)
	if len(out) != 2 {
		t.Fatalf("converged count = %d, want 2", len(out))
	}
	if out[0].N != 7 || out[0].P != 3 {
		t.Fatalf("first converged = %+v", out[0])
	}
	if out[1].N != 9 || out[1].P != 2 {
		t.Fatalf("second converged = %+v", out[1])
	}
}
