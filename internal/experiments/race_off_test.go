//go:build !race

package experiments

// raceEnabled lets the simulation-heavy determinism tests shrink when
// the race detector (which slows the cycle engine ~10x) is on.
const raceEnabled = false
