package experiments

import (
	"fmt"
	"io"
	"strings"

	"poise/internal/poise"
	"poise/internal/profile"
	"poise/internal/sim"
)

// Table renders rows of columns with aligned padding — the plain-text
// stand-in for the paper's bar charts.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row of stringified cells.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddF appends a row with a name and float cells at the given precision.
func (t *Table) AddF(name string, prec int, vals ...float64) {
	cells := []string{name}
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf("%.*f", prec, v))
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, hd := range t.Header {
		widths[i] = len(hd)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := widths[i] - len(c)
			if i == 0 {
				b.WriteString(c + strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad) + c)
			}
		}
		fmt.Fprintln(w, b.String())
	}
	line(t.Header)
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, r := range t.Rows {
		line(r)
	}
}

// RenderSpace draws an ASCII scatter of a profile's {N, p} space:
// '+' speedup, '-' slowdown, uppercase markers for annotated points.
// It is the terminal rendering of the paper's Fig. 2a/17a bubble plots.
func RenderSpace(w io.Writer, pr *profile.Profile, markers map[string][2]int) {
	maxN := pr.MaxN
	grid := make([][]byte, maxN+1) // rows indexed by p
	for p := range grid {
		grid[p] = []byte(strings.Repeat(" ", maxN+1))
	}
	for _, pt := range pr.Points {
		ch := byte('.')
		switch {
		case pt.Speedup >= 1.25:
			ch = '#'
		case pt.Speedup >= 1.05:
			ch = '+'
		case pt.Speedup <= 0.95:
			ch = '-'
		}
		grid[pt.P][pt.N] = ch
	}
	for name, pos := range markers {
		n, p := pos[0], pos[1]
		if p >= 0 && p <= maxN && n >= 0 && n <= maxN && len(name) > 0 {
			grid[p][n] = name[0]
		}
	}
	fmt.Fprintln(w, "p")
	for p := maxN; p >= 1; p-- {
		fmt.Fprintf(w, "%2d |%s\n", p, string(grid[p][1:]))
	}
	fmt.Fprintf(w, "   +%s N\n", strings.Repeat("-", maxN))
	fmt.Fprintln(w, "   legend: # >=1.25x, + >=1.05x, . ~1x, - slowdown; markers override cells")
}

// RenderWeights prints a Table II-style weight listing.
func RenderWeights(w io.Writer, wt poise.Weights) {
	t := &Table{Header: []string{"feature", "alpha (N)", "beta (p)"}}
	for i := 0; i < poise.NumFeatures; i++ {
		t.Add(poise.FeatureNames[i],
			fmt.Sprintf("%+.6f", wt.Alpha[i]),
			fmt.Sprintf("%+.6f", wt.Beta[i]))
	}
	t.Render(w)
	fmt.Fprintf(w, "dispersion: N=%.4f p=%.4f  pseudo-R2: N=%.3f p=%.3f  kernels=%d\n",
		wt.DispersionN, wt.DispersionP, wt.PseudoR2N, wt.PseudoR2P, wt.TrainKernels)
}

// RenderTuples prints the case-study tuple clouds (Fig. 17b).
func RenderTuples(w io.Writer, predicted, converged []sim.TupleEvent, maxN int) {
	grid := make([][]byte, maxN+1)
	for p := range grid {
		grid[p] = []byte(strings.Repeat(" ", maxN+1))
	}
	mark := func(evs []sim.TupleEvent, ch byte) {
		for _, ev := range evs {
			if ev.P >= 1 && ev.P <= maxN && ev.N >= 1 && ev.N <= maxN {
				grid[ev.P][ev.N] = ch
			}
		}
	}
	mark(converged, 'o')
	mark(predicted, '+')
	fmt.Fprintln(w, "p")
	for p := maxN; p >= 1; p-- {
		fmt.Fprintf(w, "%2d |%s\n", p, string(grid[p][1:]))
	}
	fmt.Fprintf(w, "   +%s N\n", strings.Repeat("-", maxN))
	fmt.Fprintln(w, "   legend: + predicted tuple, o locally-searched tuple")
}
