package experiments

import (
	"reflect"
	"testing"

	"poise/internal/sim"
	"poise/internal/workloads"
)

// subsetOptions is the scaled-down figure sweep the determinism tests
// run: representative memory-sensitive workloads on a 2-SM GPU with a
// coarse profile grid. Small enough for CI, yet it exercises the full
// parallel pipeline: profile sweeps, the workload x scheme grid,
// policy construction per cell and ordered aggregation. Under the
// race detector (~10x slower simulation) the subset shrinks further
// so the package stays inside test timeouts.
func subsetOptions(workers int, seed int64) Options {
	subset := []string{"ii", "bfs"}
	if raceEnabled {
		subset = []string{"bfs"}
	}
	return Options{
		SMs: 2, Size: workloads.Small,
		EvalStepN: 8, EvalStepP: 8, TrainStepN: 8, TrainStepP: 8,
		Workers: workers, Seed: seed,
		EvalSubset: subset,
	}
}

// skipUnderRace skips a simulation-heavy determinism test when the
// race detector is on; the concurrency structure it would exercise is
// already covered by TestPerformanceBitIdenticalAcrossWorkers, which
// always runs.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("simulator is ~10x slower under -race; parallel structure covered by TestPerformanceBitIdenticalAcrossWorkers")
	}
}

// TestPerformanceBitIdenticalAcrossWorkers is the core determinism
// guarantee of the runner engine: the Fig. 7-10/14 sweep must produce
// bit-identical rows whether it runs on one worker or many.
func TestPerformanceBitIdenticalAcrossWorkers(t *testing.T) {
	seq, err := NewHarness(subsetOptions(1, 0)).Performance()
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewHarness(subsetOptions(4, 0)).Performance()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel Performance diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestFig11BitIdenticalAcrossWorkers covers the two-level grid (GTO
// baselines, then strides x workloads) of the sensitivity sweep.
func TestFig11BitIdenticalAcrossWorkers(t *testing.T) {
	skipUnderRace(t)
	seq, err := NewHarness(subsetOptions(1, 0)).Fig11()
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewHarness(subsetOptions(3, 0)).Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel Fig11 diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestFig4BitIdenticalAcrossWorkers covers per-workload fan-out with
// per-task GPU construction.
func TestFig4BitIdenticalAcrossWorkers(t *testing.T) {
	skipUnderRace(t)
	seq, err := NewHarness(subsetOptions(1, 0)).Fig4()
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewHarness(subsetOptions(4, 0)).Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel Fig4 diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestSeedReproducibleAndEffective checks both halves of the -seed
// contract: the same seed reproduces results exactly (even at
// different worker counts), and a different seed actually changes the
// simulated workloads. bfs is used because it has stochastic
// components (irregular address patterns, iteration jitter); fully
// deterministic workloads like ii are invariant under reseeding by
// design.
func TestSeedReproducibleAndEffective(t *testing.T) {
	run := func(workers int, seed int64) WorkloadResultLite {
		h := NewHarness(subsetOptions(workers, seed))
		res, err := h.RunWorkload(h.Cat.Must("bfs"), sim.GTO{})
		if err != nil {
			t.Fatal(err)
		}
		return WorkloadResultLite{res.Cycles, res.Instructions, res.IPC}
	}
	a := run(1, 42)
	b := run(4, 42)
	if a != b {
		t.Fatalf("same seed must reproduce: %+v != %+v", a, b)
	}
	c := run(1, 43)
	if a == c {
		t.Fatalf("different seeds must perturb the workload: both gave %+v", a)
	}
	canon := run(1, 0)
	again := run(2, 0)
	if canon != again {
		t.Fatalf("canonical seed must be stable: %+v != %+v", canon, again)
	}
}

// WorkloadResultLite keeps the comparison fields value-comparable.
type WorkloadResultLite struct {
	Cycles       int64
	Instructions int64
	IPC          float64
}

// TestWorkloadProfilesParallel checks the shared profile cache under
// the fan-out: every kernel appears exactly once and repeated calls
// hit the memoised entries.
func TestWorkloadProfilesParallel(t *testing.T) {
	skipUnderRace(t)
	h := NewHarness(subsetOptions(4, 0))
	ws := h.EvalWorkloads()
	a, err := h.WorkloadProfiles(ws)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, w := range ws {
		want += len(w.Kernels)
	}
	if len(a) != want {
		t.Fatalf("got %d profiles, want %d", len(a), want)
	}
	b, err := h.WorkloadProfiles(ws)
	if err != nil {
		t.Fatal(err)
	}
	for name := range a {
		if a[name] != b[name] {
			t.Fatalf("profile %s was re-swept instead of memoised", name)
		}
	}
}
