package experiments

import (
	"context"

	"poise/internal/poise"
	"poise/internal/runner"
	"poise/internal/sim"
)

// TableIIResult carries the trained feature weights (the reproduction's
// Table II) and the offline prediction-error figures of §VII-B.
type TableIIResult struct {
	Weights poise.Weights
	// Offline prediction error on the evaluation kernels (the paper
	// reports 16% for N and 26% for p).
	ErrN, ErrP float64
	// Admission statistics.
	Admitted, RejSpeedup, RejCycles, RejHitRate int
}

// TableII trains the regression (or returns the embedded weights) and
// evaluates offline prediction accuracy on profiled evaluation kernels
// (which are never part of training).
func (h *Harness) TableII() (*TableIIResult, error) {
	ds, err := h.Dataset()
	if err != nil {
		return nil, err
	}
	w, err := h.ModelWeights()
	if err != nil {
		return nil, err
	}
	res := &TableIIResult{
		Weights:    w,
		Admitted:   len(ds.Samples),
		RejSpeedup: ds.RejectedSpeedup,
		RejCycles:  ds.RejectedCycles,
		RejHitRate: ds.RejectedHitRate,
	}

	// Offline accuracy: profile a subset of unseen evaluation kernels,
	// derive their scored targets, and compare against predictions.
	// One task per holdout workload; narrow outer width because each
	// task's profile sweep fans out across the full pool itself. The
	// feature runs draw recycled GPUs from the harness's shared
	// reset-verified pool set rather than constructing one per kernel.
	holdout, err := runner.MapSlice(h.ctx(), h.narrowWorkers(), h.EvalWorkloads(),
		func(_ context.Context, _ int, wl *sim.Workload) (poise.Sample, error) {
			k := wl.Kernels[0]
			pr, err := h.KernelProfile(k)
			if err != nil {
				return poise.Sample{}, err
			}
			target, _ := pr.BestScore(h.Params)
			g, err := h.pools.Get(h.Cfg)
			if err != nil {
				return poise.Sample{}, err
			}
			x, err := poise.MeasureFeaturesOn(g, k)
			h.pools.Put(h.Cfg, g)
			if err != nil {
				return poise.Sample{}, err
			}
			return poise.Sample{
				Kernel: k.Name, X: x,
				RawN: target.N, RawP: target.P, MaxN: pr.MaxN,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	res.ErrN, res.ErrP = poise.EvaluateOffline(w, holdout)
	return res, nil
}

// PbestRow is one workload of Table IIIa: the 64x-L1 speedup that
// classifies memory sensitivity.
type PbestRow struct {
	Workload        string
	Kernels         int
	Pbest           float64
	MemorySensitive bool
}

// TableIII measures Pbest for every workload in the catalogue: the
// speedup of the GTO baseline when the L1 grows 64x, via the "pbest"
// experiment grid (ingested trace workloads classify alongside the
// catalogue). The paper calls a workload memory-sensitive when Pbest
// exceeds 1.4.
func (h *Harness) TableIII() ([]PbestRow, error) {
	cells, err := h.GridCells("pbest")
	if err != nil {
		return nil, err
	}
	idx := indexCells(cells)
	var rows []PbestRow
	for _, w := range h.pbestWorkloads() {
		base, err := idx.get(w.Name, "GTO")
		if err != nil {
			return nil, err
		}
		big, err := idx.get(w.Name, "Pbest")
		if err != nil {
			return nil, err
		}
		pb := ratio(big.Result.IPC, base.Result.IPC)
		rows = append(rows, PbestRow{
			Workload:        w.Name,
			Kernels:         len(w.Kernels),
			Pbest:           pb,
			MemorySensitive: pb > 1.4,
		})
	}
	return rows, nil
}

// HardwareCost reproduces the §VII-I storage accounting: the per-SM
// state Poise adds. The numbers are structural properties of the
// design, so this is an accounting function rather than a measurement.
type HardwareCost struct {
	CounterBytes   int // seven 32-bit performance counters
	FSMBytes       int // two 3-bit state registers (rounded up)
	VitalBits      int // one per warp
	PolluteBits    int // one per warp
	WeightBytes    int // feature weights (shipped via constant memory)
	TotalPerSM     float64
	TotalChipBytes float64
	SMs            int
}

// Cost computes the hardware budget for the configured GPU.
func (h *Harness) Cost() HardwareCost {
	warps := h.Cfg.MaxWarpsPerSM()
	c := HardwareCost{
		CounterBytes: 7 * 4,
		FSMBytes:     1, // two 3-bit registers fit in a byte
		VitalBits:    warps,
		PolluteBits:  warps,
		SMs:          h.Cfg.NumSMs,
	}
	// The weights live in constant memory (already present); per-SM
	// storage counts the counters, FSM and scheduler-queue bits, as in
	// the paper's 40.75 B/SM figure.
	c.TotalPerSM = float64(c.CounterBytes+c.FSMBytes) +
		float64(c.VitalBits+c.PolluteBits)/8
	c.TotalChipBytes = c.TotalPerSM * float64(c.SMs)
	c.WeightBytes = poise.NumFeatures * 2 * 4 // two fp32 vectors
	return c
}
