package experiments

import (
	"fmt"

	"poise/internal/config"
	"poise/internal/poise"
	"poise/internal/sched"
	"poise/internal/sim"
	"poise/internal/stats"
)

// StrideResult backs Fig. 11: harmonic-mean speedup over GTO for each
// local-search stride setting.
type StrideResult struct {
	Strides [][2]int
	// PerWorkload[i][j] = speedup of workload i under stride j.
	Workloads   []string
	PerWorkload [][]float64
	HMean       []float64
}

// Fig11 sweeps the local-search stride (εN, εp) over the paper's five
// settings, including the pure-prediction (0, 0) case.
func (h *Harness) Fig11() (*StrideResult, error) {
	strides := [][2]int{{0, 0}, {1, 1}, {2, 2}, {2, 4}, {4, 4}}
	w, err := h.ModelWeights()
	if err != nil {
		return nil, err
	}
	out := &StrideResult{Strides: strides}
	evalSet := h.EvalWorkloads()
	gto := map[string]float64{}
	for _, wl := range evalSet {
		res, err := h.RunWorkload(wl, sim.GTO{})
		if err != nil {
			return nil, err
		}
		gto[wl.Name] = res.IPC
		out.Workloads = append(out.Workloads, wl.Name)
		out.PerWorkload = append(out.PerWorkload, make([]float64, len(strides)))
	}
	for sj, st := range strides {
		params := h.Params
		params.StrideN, params.StrideP = st[0], st[1]
		var sp []float64
		for wi, wl := range evalSet {
			pol := poise.NewPolicy(params, w)
			pol.DisableSearch = st[0] == 0 && st[1] == 0
			res, err := h.RunWorkload(wl, pol)
			if err != nil {
				return nil, fmt.Errorf("experiments: stride %v on %s: %w", st, wl.Name, err)
			}
			s := ratio(res.IPC, gto[wl.Name])
			out.PerWorkload[wi][sj] = s
			sp = append(sp, s)
		}
		hm, err := stats.HarmonicMean(sp)
		if err != nil {
			hm = stats.Mean(sp)
		}
		out.HMean = append(out.HMean, hm)
	}
	return out, nil
}

// CacheSizeResult backs Fig. 12: Poise speedup (vs the same-config GTO)
// when the evaluation platform's L1 grows and switches to linear
// indexing, while the model stays trained on the 16 KB hashed baseline.
type CacheSizeResult struct {
	SizesKB   []int
	Workloads []string
	Speedup   [][]float64 // [workload][size]
	HMean     []float64
}

// Fig12 re-evaluates the trained model on altered cache architectures.
func (h *Harness) Fig12() (*CacheSizeResult, error) {
	w, err := h.ModelWeights()
	if err != nil {
		return nil, err
	}
	sizes := []int{16, 32, 64}
	evalSet := h.EvalWorkloads()
	out := &CacheSizeResult{SizesKB: sizes}
	for _, wl := range evalSet {
		out.Workloads = append(out.Workloads, wl.Name)
		out.Speedup = append(out.Speedup, make([]float64, len(sizes)))
	}
	for si, kb := range sizes {
		cfg := h.Cfg
		cfg.L1.SizeBytes = kb * 1024
		cfg.L1.Index = config.IndexLinear
		var sp []float64
		for wi, wl := range evalSet {
			gto, err := sim.RunWorkload(cfg, wl, sim.GTO{}, sim.RunOptions{})
			if err != nil {
				return nil, err
			}
			pol := poise.NewPolicy(h.Params, w)
			res, err := sim.RunWorkload(cfg, wl, pol, sim.RunOptions{})
			if err != nil {
				return nil, err
			}
			s := ratio(res.IPC, gto.IPC)
			out.Speedup[wi][si] = s
			sp = append(sp, s)
		}
		hm, err := stats.HarmonicMean(sp)
		if err != nil {
			hm = stats.Mean(sp)
		}
		out.HMean = append(out.HMean, hm)
	}
	return out, nil
}

// FeatureAblationResult backs Fig. 13: speedup of a model retrained
// without one feature, relative to the full model, both without local
// search (isolating prediction accuracy).
type FeatureAblationResult struct {
	Dropped   []int // feature indices, Table II x3..x7 = 2..6
	Workloads []string
	// Relative[i][j]: workload i, dropped feature j, normalised to the
	// all-features model.
	Relative [][]float64
	HMean    []float64
}

// Fig13 retrains with one feature removed (x3, x4, x5, x6, x7 — the
// paper omits x1/x2 as represented within x7) and measures prediction
// quality without the local-search safety net.
func (h *Harness) Fig13() (*FeatureAblationResult, error) {
	ds, err := h.Dataset()
	if err != nil {
		return nil, err
	}
	full, err := poise.Train(ds, poise.TrainOptions{Drop: -1})
	if err != nil {
		return nil, err
	}
	evalSet := h.EvalWorkloads()

	runNoSearch := func(w poise.Weights) (map[string]float64, error) {
		out := map[string]float64{}
		for _, wl := range evalSet {
			pol := poise.NewPolicy(h.Params, w)
			pol.DisableSearch = true
			res, err := h.RunWorkload(wl, pol)
			if err != nil {
				return nil, err
			}
			out[wl.Name] = res.IPC
		}
		return out, nil
	}
	base, err := runNoSearch(full)
	if err != nil {
		return nil, err
	}

	dropped := []int{6, 5, 4, 3, 2} // x7, x6, x5, x4, x3 in paper order
	out := &FeatureAblationResult{Dropped: dropped}
	for _, wl := range evalSet {
		out.Workloads = append(out.Workloads, wl.Name)
		out.Relative = append(out.Relative, make([]float64, len(dropped)))
	}
	for dj, d := range dropped {
		wts, err := poise.Train(ds, poise.TrainOptions{Drop: d})
		if err != nil {
			return nil, err
		}
		ipcs, err := runNoSearch(wts)
		if err != nil {
			return nil, err
		}
		var rel []float64
		for wi, wl := range evalSet {
			r := ratio(ipcs[wl.Name], base[wl.Name])
			out.Relative[wi][dj] = r
			rel = append(rel, r)
		}
		hm, err := stats.HarmonicMean(rel)
		if err != nil {
			hm = stats.Mean(rel)
		}
		out.HMean = append(out.HMean, hm)
	}
	return out, nil
}

// AlternativesResult backs Fig. 15: Poise against APCM and
// random-restart stochastic search, normalised to GTO.
type AlternativesResult struct {
	Workloads []string
	APCM      []float64
	Random    []float64
	Poise     []float64
	HMean     [3]float64 // APCM, Random, Poise
}

// Fig15 compares Poise with the cache-bypassing and stochastic-search
// alternatives.
func (h *Harness) Fig15() (*AlternativesResult, error) {
	out := &AlternativesResult{}
	evalSet := h.EvalWorkloads()
	var apcmS, rndS, poiseS []float64
	for _, wl := range evalSet {
		gto, err := h.RunWorkload(wl, sim.GTO{})
		if err != nil {
			return nil, err
		}
		ap, err := h.RunWorkload(wl, sched.NewAPCM(h.Params.TFeature))
		if err != nil {
			return nil, err
		}
		// Random-restart averaged over seeds.
		var rndIPC float64
		for seed := 0; seed < h.Opt.RandomSeeds; seed++ {
			r, err := h.RunWorkload(wl, sched.NewRandomRestart(int64(seed+1),
				h.Params.TWarmup, h.Params.TSearch, h.Params.TPeriod,
				h.Params.StrideN, h.Params.StrideP))
			if err != nil {
				return nil, err
			}
			rndIPC += r.IPC
		}
		rndIPC /= float64(h.Opt.RandomSeeds)
		pol, err := h.PoisePolicy()
		if err != nil {
			return nil, err
		}
		po, err := h.RunWorkload(wl, pol)
		if err != nil {
			return nil, err
		}
		out.Workloads = append(out.Workloads, wl.Name)
		out.APCM = append(out.APCM, ratio(ap.IPC, gto.IPC))
		out.Random = append(out.Random, ratio(rndIPC, gto.IPC))
		out.Poise = append(out.Poise, ratio(po.IPC, gto.IPC))
		apcmS = append(apcmS, ratio(ap.IPC, gto.IPC))
		rndS = append(rndS, ratio(rndIPC, gto.IPC))
		poiseS = append(poiseS, ratio(po.IPC, gto.IPC))
	}
	for i, s := range [][]float64{apcmS, rndS, poiseS} {
		hm, err := stats.HarmonicMean(s)
		if err != nil {
			hm = stats.Mean(s)
		}
		out.HMean[i] = hm
	}
	return out, nil
}

// ComputeResult backs Fig. 16: memory-insensitive workloads under GTO,
// Poise and the 64x-L1 Pbest probe.
type ComputeResult struct {
	Workloads  []string
	Poise      []float64 // vs GTO
	Pbest      []float64 // vs GTO
	HMeanPoise float64
}

// Fig16 verifies Poise's compute-intensive cut-off keeps overhead low.
func (h *Harness) Fig16() (*ComputeResult, error) {
	out := &ComputeResult{}
	var ps []float64
	for _, wl := range h.Cat.ComputeSet() {
		gto, err := h.RunWorkload(wl, sim.GTO{})
		if err != nil {
			return nil, err
		}
		pol, err := h.PoisePolicy()
		if err != nil {
			return nil, err
		}
		po, err := h.RunWorkload(wl, pol)
		if err != nil {
			return nil, err
		}
		big := h.Cfg
		big.L1.SizeBytes *= 64
		pb, err := sim.RunWorkload(big, wl, sim.GTO{}, sim.RunOptions{})
		if err != nil {
			return nil, err
		}
		out.Workloads = append(out.Workloads, wl.Name)
		out.Poise = append(out.Poise, ratio(po.IPC, gto.IPC))
		out.Pbest = append(out.Pbest, ratio(pb.IPC, gto.IPC))
		ps = append(ps, ratio(po.IPC, gto.IPC))
	}
	hm, err := stats.HarmonicMean(ps)
	if err != nil {
		hm = stats.Mean(ps)
	}
	out.HMeanPoise = hm
	return out, nil
}
