package experiments

import (
	"context"
	"fmt"

	"poise/internal/config"
	"poise/internal/poise"
	"poise/internal/runner"
	"poise/internal/sched"
	"poise/internal/sim"
	"poise/internal/stats"
)

// StrideResult backs Fig. 11: harmonic-mean speedup over GTO for each
// local-search stride setting.
type StrideResult struct {
	Strides [][2]int
	// PerWorkload[i][j] = speedup of workload i under stride j.
	Workloads   []string
	PerWorkload [][]float64
	HMean       []float64
}

// Fig11 sweeps the local-search stride (εN, εp) over the paper's five
// settings, including the pure-prediction (0, 0) case. The GTO
// baselines and the stride x workload grid both fan out across the
// worker pool.
func (h *Harness) Fig11() (*StrideResult, error) {
	strides := [][2]int{{0, 0}, {1, 1}, {2, 2}, {2, 4}, {4, 4}}
	w, err := h.ModelWeights()
	if err != nil {
		return nil, err
	}
	out := &StrideResult{Strides: strides}
	evalSet := h.EvalWorkloads()
	gtoRes, err := runner.MapSlice(h.ctx(), h.Opt.Workers, evalSet,
		func(_ context.Context, _ int, wl *sim.Workload) (sim.WorkloadResult, error) {
			return h.RunWorkload(wl, sim.GTO{})
		})
	if err != nil {
		return nil, err
	}
	gto := map[string]float64{}
	for wi, wl := range evalSet {
		gto[wl.Name] = gtoRes[wi].IPC
		out.Workloads = append(out.Workloads, wl.Name)
		out.PerWorkload = append(out.PerWorkload, make([]float64, len(strides)))
	}
	nW := len(evalSet)
	cells, err := runner.Map(h.ctx(), h.Opt.Workers, len(strides)*nW,
		func(_ context.Context, i int) (sim.WorkloadResult, error) {
			st, wl := strides[i/nW], evalSet[i%nW]
			params := h.Params
			params.StrideN, params.StrideP = st[0], st[1]
			pol := poise.NewPolicy(params, w)
			pol.DisableSearch = st[0] == 0 && st[1] == 0
			res, err := h.RunWorkload(wl, pol)
			if err != nil {
				return res, fmt.Errorf("experiments: stride %v on %s: %w", st, wl.Name, err)
			}
			return res, nil
		})
	if err != nil {
		return nil, err
	}
	for sj := range strides {
		var sp []float64
		for wi, wl := range evalSet {
			s := ratio(cells[sj*nW+wi].IPC, gto[wl.Name])
			out.PerWorkload[wi][sj] = s
			sp = append(sp, s)
		}
		hm, err := stats.HarmonicMean(sp)
		if err != nil {
			hm = stats.Mean(sp)
		}
		out.HMean = append(out.HMean, hm)
	}
	return out, nil
}

// CacheSizeResult backs Fig. 12: Poise speedup (vs the same-config GTO)
// when the evaluation platform's L1 grows and switches to linear
// indexing, while the model stays trained on the 16 KB hashed baseline.
type CacheSizeResult struct {
	SizesKB   []int
	Workloads []string
	Speedup   [][]float64 // [workload][size]
	HMean     []float64
}

// Fig12 re-evaluates the trained model on altered cache architectures.
func (h *Harness) Fig12() (*CacheSizeResult, error) {
	w, err := h.ModelWeights()
	if err != nil {
		return nil, err
	}
	sizes := []int{16, 32, 64}
	evalSet := h.EvalWorkloads()
	out := &CacheSizeResult{SizesKB: sizes}
	for _, wl := range evalSet {
		out.Workloads = append(out.Workloads, wl.Name)
		out.Speedup = append(out.Speedup, make([]float64, len(sizes)))
	}
	// One task per (size, workload) cell; each runs its GTO baseline
	// and the Poise policy on the altered cache configuration.
	nW := len(evalSet)
	cells, err := runner.Map(h.ctx(), h.Opt.Workers, len(sizes)*nW,
		func(_ context.Context, i int) (float64, error) {
			kb, wl := sizes[i/nW], evalSet[i%nW]
			cfg := h.Cfg
			cfg.L1.SizeBytes = kb * 1024
			cfg.L1.Index = config.IndexLinear
			gto, err := sim.RunWorkload(cfg, wl, sim.GTO{}, sim.RunOptions{})
			if err != nil {
				return 0, err
			}
			pol := poise.NewPolicy(h.Params, w)
			res, err := sim.RunWorkload(cfg, wl, pol, sim.RunOptions{})
			if err != nil {
				return 0, err
			}
			return ratio(res.IPC, gto.IPC), nil
		})
	if err != nil {
		return nil, err
	}
	for si := range sizes {
		var sp []float64
		for wi := range evalSet {
			s := cells[si*nW+wi]
			out.Speedup[wi][si] = s
			sp = append(sp, s)
		}
		hm, err := stats.HarmonicMean(sp)
		if err != nil {
			hm = stats.Mean(sp)
		}
		out.HMean = append(out.HMean, hm)
	}
	return out, nil
}

// FeatureAblationResult backs Fig. 13: speedup of a model retrained
// without one feature, relative to the full model, both without local
// search (isolating prediction accuracy).
type FeatureAblationResult struct {
	Dropped   []int // feature indices, Table II x3..x7 = 2..6
	Workloads []string
	// Relative[i][j]: workload i, dropped feature j, normalised to the
	// all-features model.
	Relative [][]float64
	HMean    []float64
}

// Fig13 retrains with one feature removed (x3, x4, x5, x6, x7 — the
// paper omits x1/x2 as represented within x7) and measures prediction
// quality without the local-search safety net.
func (h *Harness) Fig13() (*FeatureAblationResult, error) {
	ds, err := h.Dataset()
	if err != nil {
		return nil, err
	}
	full, err := poise.Train(ds, poise.TrainOptions{Drop: -1})
	if err != nil {
		return nil, err
	}
	evalSet := h.EvalWorkloads()

	runNoSearch := func(w poise.Weights) (map[string]float64, error) {
		ipcs, err := runner.MapSlice(h.ctx(), h.Opt.Workers, evalSet,
			func(_ context.Context, _ int, wl *sim.Workload) (float64, error) {
				pol := poise.NewPolicy(h.Params, w)
				pol.DisableSearch = true
				res, err := h.RunWorkload(wl, pol)
				if err != nil {
					return 0, err
				}
				return res.IPC, nil
			})
		if err != nil {
			return nil, err
		}
		out := map[string]float64{}
		for wi, wl := range evalSet {
			out[wl.Name] = ipcs[wi]
		}
		return out, nil
	}
	base, err := runNoSearch(full)
	if err != nil {
		return nil, err
	}

	dropped := []int{6, 5, 4, 3, 2} // x7, x6, x5, x4, x3 in paper order
	out := &FeatureAblationResult{Dropped: dropped}
	for _, wl := range evalSet {
		out.Workloads = append(out.Workloads, wl.Name)
		out.Relative = append(out.Relative, make([]float64, len(dropped)))
	}
	// Retrain the five ablated models concurrently (Train only reads
	// the dataset), then fan each model's no-search evaluation out.
	models, err := runner.MapSlice(h.ctx(), h.Opt.Workers, dropped,
		func(_ context.Context, _ int, d int) (poise.Weights, error) {
			return poise.Train(ds, poise.TrainOptions{Drop: d})
		})
	if err != nil {
		return nil, err
	}
	for dj := range dropped {
		ipcs, err := runNoSearch(models[dj])
		if err != nil {
			return nil, err
		}
		var rel []float64
		for wi, wl := range evalSet {
			r := ratio(ipcs[wl.Name], base[wl.Name])
			out.Relative[wi][dj] = r
			rel = append(rel, r)
		}
		hm, err := stats.HarmonicMean(rel)
		if err != nil {
			hm = stats.Mean(rel)
		}
		out.HMean = append(out.HMean, hm)
	}
	return out, nil
}

// AlternativesResult backs Fig. 15: Poise against APCM and
// random-restart stochastic search, normalised to GTO.
type AlternativesResult struct {
	Workloads []string
	APCM      []float64
	Random    []float64
	Poise     []float64
	HMean     [3]float64 // APCM, Random, Poise
}

// Fig15 compares Poise with the cache-bypassing and stochastic-search
// alternatives. Each workload is one task; the random-restart seeds
// are pure functions of (Options.Seed, trial index), so results don't
// depend on which worker runs them.
func (h *Harness) Fig15() (*AlternativesResult, error) {
	out := &AlternativesResult{}
	evalSet := h.EvalWorkloads()
	if _, err := h.ModelWeights(); err != nil {
		return nil, err
	}
	type altCell struct{ apcm, rnd, poise float64 }
	cells, err := runner.MapSlice(h.ctx(), h.Opt.Workers, evalSet,
		func(_ context.Context, _ int, wl *sim.Workload) (altCell, error) {
			gto, err := h.RunWorkload(wl, sim.GTO{})
			if err != nil {
				return altCell{}, err
			}
			ap, err := h.RunWorkload(wl, sched.NewAPCM(h.Params.TFeature))
			if err != nil {
				return altCell{}, err
			}
			// Random-restart averaged over seeds; Options.Seed shifts
			// the whole family while seed 0 keeps the canonical 1..n.
			var rndIPC float64
			for seed := 0; seed < h.Opt.RandomSeeds; seed++ {
				r, err := h.RunWorkload(wl, sched.NewRandomRestart(h.Opt.Seed+int64(seed+1),
					h.Params.TWarmup, h.Params.TSearch, h.Params.TPeriod,
					h.Params.StrideN, h.Params.StrideP))
				if err != nil {
					return altCell{}, err
				}
				rndIPC += r.IPC
			}
			rndIPC /= float64(h.Opt.RandomSeeds)
			pol, err := h.PoisePolicy()
			if err != nil {
				return altCell{}, err
			}
			po, err := h.RunWorkload(wl, pol)
			if err != nil {
				return altCell{}, err
			}
			return altCell{
				apcm:  ratio(ap.IPC, gto.IPC),
				rnd:   ratio(rndIPC, gto.IPC),
				poise: ratio(po.IPC, gto.IPC),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	var apcmS, rndS, poiseS []float64
	for wi, wl := range evalSet {
		c := cells[wi]
		out.Workloads = append(out.Workloads, wl.Name)
		out.APCM = append(out.APCM, c.apcm)
		out.Random = append(out.Random, c.rnd)
		out.Poise = append(out.Poise, c.poise)
		apcmS = append(apcmS, c.apcm)
		rndS = append(rndS, c.rnd)
		poiseS = append(poiseS, c.poise)
	}
	for i, s := range [][]float64{apcmS, rndS, poiseS} {
		hm, err := stats.HarmonicMean(s)
		if err != nil {
			hm = stats.Mean(s)
		}
		out.HMean[i] = hm
	}
	return out, nil
}

// ComputeResult backs Fig. 16: memory-insensitive workloads under GTO,
// Poise and the 64x-L1 Pbest probe.
type ComputeResult struct {
	Workloads  []string
	Poise      []float64 // vs GTO
	Pbest      []float64 // vs GTO
	HMeanPoise float64
}

// Fig16 verifies Poise's compute-intensive cut-off keeps overhead low.
func (h *Harness) Fig16() (*ComputeResult, error) {
	out := &ComputeResult{}
	if _, err := h.ModelWeights(); err != nil {
		return nil, err
	}
	computeSet := h.Cat.ComputeSet()
	type compCell struct{ poise, pbest float64 }
	cells, err := runner.MapSlice(h.ctx(), h.Opt.Workers, computeSet,
		func(_ context.Context, _ int, wl *sim.Workload) (compCell, error) {
			gto, err := h.RunWorkload(wl, sim.GTO{})
			if err != nil {
				return compCell{}, err
			}
			pol, err := h.PoisePolicy()
			if err != nil {
				return compCell{}, err
			}
			po, err := h.RunWorkload(wl, pol)
			if err != nil {
				return compCell{}, err
			}
			big := h.Cfg
			big.L1.SizeBytes *= 64
			pb, err := sim.RunWorkload(big, wl, sim.GTO{}, sim.RunOptions{})
			if err != nil {
				return compCell{}, err
			}
			return compCell{
				poise: ratio(po.IPC, gto.IPC),
				pbest: ratio(pb.IPC, gto.IPC),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	var ps []float64
	for wi, wl := range computeSet {
		out.Workloads = append(out.Workloads, wl.Name)
		out.Poise = append(out.Poise, cells[wi].poise)
		out.Pbest = append(out.Pbest, cells[wi].pbest)
		ps = append(ps, cells[wi].poise)
	}
	hm, err := stats.HarmonicMean(ps)
	if err != nil {
		hm = stats.Mean(ps)
	}
	out.HMeanPoise = hm
	return out, nil
}
