package experiments

import (
	"fmt"

	"poise/internal/stats"
)

// The sensitivity figures (Fig. 11-16). Like the Fig. 7/8/9 scheme
// comparison, every figure here is assembly over an experiment grid
// run through the unified gridplan pipeline (GridCells) — shardable
// across processes, pool-backed, and bit-identical at any worker or
// shard count. The bespoke per-figure fan-out loops this file used to
// contain live on only as grid definitions in grid.go.

// StrideResult backs Fig. 11: harmonic-mean speedup over GTO for each
// local-search stride setting.
type StrideResult struct {
	Strides [][2]int
	// PerWorkload[i][j] = speedup of workload i under stride j.
	Workloads   []string
	PerWorkload [][]float64
	HMean       []float64
}

// Fig11 sweeps the local-search stride (εN, εp) over the paper's five
// settings, including the pure-prediction (0, 0) case, via the
// "stride" experiment grid.
func (h *Harness) Fig11() (*StrideResult, error) {
	cells, err := h.GridCells("stride")
	if err != nil {
		return nil, err
	}
	idx := indexCells(cells)
	out := &StrideResult{Strides: append([][2]int(nil), strideSettings...)}
	evalSet := h.EvalWorkloads()
	for _, wl := range evalSet {
		out.Workloads = append(out.Workloads, wl.Name)
		out.PerWorkload = append(out.PerWorkload, make([]float64, len(strideSettings)))
	}
	for sj, st := range strideSettings {
		var sp []float64
		for wi, wl := range evalSet {
			gto, err := idx.get(wl.Name, "GTO")
			if err != nil {
				return nil, err
			}
			c, err := idx.get(wl.Name, strideScheme(st))
			if err != nil {
				return nil, err
			}
			s := ratio(c.Result.IPC, gto.Result.IPC)
			out.PerWorkload[wi][sj] = s
			sp = append(sp, s)
		}
		hm, err := stats.HarmonicMean(sp)
		if err != nil {
			hm = stats.Mean(sp)
		}
		out.HMean = append(out.HMean, hm)
	}
	return out, nil
}

// CacheSizeResult backs Fig. 12: Poise speedup (vs the same-config GTO)
// when the evaluation platform's L1 grows and switches to linear
// indexing, while the model stays trained on the 16 KB hashed baseline.
type CacheSizeResult struct {
	SizesKB   []int
	Workloads []string
	Speedup   [][]float64 // [workload][size]
	HMean     []float64
}

// Fig12 re-evaluates the trained model on altered cache architectures
// via the "cachesize" experiment grid: one GTO and one Poise cell per
// (workload, size), each on the altered configuration.
func (h *Harness) Fig12() (*CacheSizeResult, error) {
	cells, err := h.GridCells("cachesize")
	if err != nil {
		return nil, err
	}
	idx := indexCells(cells)
	evalSet := h.EvalWorkloads()
	out := &CacheSizeResult{SizesKB: append([]int(nil), cacheSizesKB...)}
	for _, wl := range evalSet {
		out.Workloads = append(out.Workloads, wl.Name)
		out.Speedup = append(out.Speedup, make([]float64, len(cacheSizesKB)))
	}
	for si, kb := range cacheSizesKB {
		var sp []float64
		for wi, wl := range evalSet {
			gto, err := idx.get(wl.Name, fmt.Sprintf("GTO-%dKB", kb))
			if err != nil {
				return nil, err
			}
			po, err := idx.get(wl.Name, fmt.Sprintf("Poise-%dKB", kb))
			if err != nil {
				return nil, err
			}
			s := ratio(po.Result.IPC, gto.Result.IPC)
			out.Speedup[wi][si] = s
			sp = append(sp, s)
		}
		hm, err := stats.HarmonicMean(sp)
		if err != nil {
			hm = stats.Mean(sp)
		}
		out.HMean = append(out.HMean, hm)
	}
	return out, nil
}

// FeatureAblationResult backs Fig. 13: speedup of a model retrained
// without one feature, relative to the full model, both without local
// search (isolating prediction accuracy).
type FeatureAblationResult struct {
	Dropped   []int // feature indices, Table II x3..x7 = 2..6
	Workloads []string
	// Relative[i][j]: workload i, dropped feature j, normalised to the
	// all-features model.
	Relative [][]float64
	HMean    []float64
}

// Fig13 retrains with one feature removed (x3, x4, x5, x6, x7 — the
// paper omits x1/x2 as represented within x7) and measures prediction
// quality without the local-search safety net, via the "ablation"
// experiment grid. The retrained models build once per process behind
// a single-flight cache, so cells share them at any worker count.
func (h *Harness) Fig13() (*FeatureAblationResult, error) {
	cells, err := h.GridCells("ablation")
	if err != nil {
		return nil, err
	}
	idx := indexCells(cells)
	evalSet := h.EvalWorkloads()
	out := &FeatureAblationResult{Dropped: append([]int(nil), fig13Dropped...)}
	for _, wl := range evalSet {
		out.Workloads = append(out.Workloads, wl.Name)
		out.Relative = append(out.Relative, make([]float64, len(fig13Dropped)))
	}
	for dj, d := range fig13Dropped {
		var rel []float64
		for wi, wl := range evalSet {
			base, err := idx.get(wl.Name, "full")
			if err != nil {
				return nil, err
			}
			c, err := idx.get(wl.Name, dropScheme(d))
			if err != nil {
				return nil, err
			}
			r := ratio(c.Result.IPC, base.Result.IPC)
			out.Relative[wi][dj] = r
			rel = append(rel, r)
		}
		hm, err := stats.HarmonicMean(rel)
		if err != nil {
			hm = stats.Mean(rel)
		}
		out.HMean = append(out.HMean, hm)
	}
	return out, nil
}

// AlternativesResult backs Fig. 15: Poise against APCM and
// random-restart stochastic search, normalised to GTO.
type AlternativesResult struct {
	Workloads []string
	APCM      []float64
	Random    []float64
	Poise     []float64
	HMean     [3]float64 // APCM, Random, Poise
}

// Fig15 compares Poise with the cache-bypassing and stochastic-search
// alternatives via the "alternatives" experiment grid. Each
// random-restart trial is its own cell whose seed is a pure function
// of (Options.Seed, trial index), so results don't depend on which
// worker — or which shard process — runs it; the trials average at
// assembly time.
func (h *Harness) Fig15() (*AlternativesResult, error) {
	cells, err := h.GridCells("alternatives")
	if err != nil {
		return nil, err
	}
	idx := indexCells(cells)
	out := &AlternativesResult{}
	var apcmS, rndS, poiseS []float64
	for _, wl := range h.EvalWorkloads() {
		gto, err := idx.get(wl.Name, "GTO")
		if err != nil {
			return nil, err
		}
		ap, err := idx.get(wl.Name, "APCM")
		if err != nil {
			return nil, err
		}
		po, err := idx.get(wl.Name, "Poise")
		if err != nil {
			return nil, err
		}
		var rndIPC float64
		for i := 1; i <= h.Opt.RandomSeeds; i++ {
			r, err := idx.get(wl.Name, fmt.Sprintf("random-%d", i))
			if err != nil {
				return nil, err
			}
			rndIPC += r.Result.IPC
		}
		rndIPC /= float64(h.Opt.RandomSeeds)

		a := ratio(ap.Result.IPC, gto.Result.IPC)
		r := ratio(rndIPC, gto.Result.IPC)
		p := ratio(po.Result.IPC, gto.Result.IPC)
		out.Workloads = append(out.Workloads, wl.Name)
		out.APCM = append(out.APCM, a)
		out.Random = append(out.Random, r)
		out.Poise = append(out.Poise, p)
		apcmS = append(apcmS, a)
		rndS = append(rndS, r)
		poiseS = append(poiseS, p)
	}
	for i, s := range [][]float64{apcmS, rndS, poiseS} {
		hm, err := stats.HarmonicMean(s)
		if err != nil {
			hm = stats.Mean(s)
		}
		out.HMean[i] = hm
	}
	return out, nil
}

// ComputeResult backs Fig. 16: memory-insensitive workloads under GTO,
// Poise and the 64x-L1 Pbest probe.
type ComputeResult struct {
	Workloads  []string
	Poise      []float64 // vs GTO
	Pbest      []float64 // vs GTO
	HMeanPoise float64
}

// Fig16 verifies Poise's compute-intensive cut-off keeps overhead low,
// via the "compute" experiment grid.
func (h *Harness) Fig16() (*ComputeResult, error) {
	cells, err := h.GridCells("compute")
	if err != nil {
		return nil, err
	}
	idx := indexCells(cells)
	out := &ComputeResult{}
	var ps []float64
	for _, wl := range h.Cat.ComputeSet() {
		gto, err := idx.get(wl.Name, "GTO")
		if err != nil {
			return nil, err
		}
		po, err := idx.get(wl.Name, "Poise")
		if err != nil {
			return nil, err
		}
		pb, err := idx.get(wl.Name, "Pbest")
		if err != nil {
			return nil, err
		}
		out.Workloads = append(out.Workloads, wl.Name)
		out.Poise = append(out.Poise, ratio(po.Result.IPC, gto.Result.IPC))
		out.Pbest = append(out.Pbest, ratio(pb.Result.IPC, gto.Result.IPC))
		ps = append(ps, ratio(po.Result.IPC, gto.Result.IPC))
	}
	hm, err := stats.HarmonicMean(ps)
	if err != nil {
		hm = stats.Mean(ps)
	}
	out.HMeanPoise = hm
	return out, nil
}
