package experiments

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"poise/internal/gridplan"
	"poise/internal/results"
)

// gridShardOptions is subsetOptions narrowed to one workload and a
// coarse profile grid (the shard-merge equality holds at any
// resolution), plus a shared cache directory and a shard assignment —
// the experiment-grid analogue of shardOptions.
func gridShardOptions(dir string, index, count int) Options {
	o := subsetOptions(1, 0)
	o.EvalSubset = []string{"bfs"}
	o.EvalStepN, o.EvalStepP = 12, 12
	o.CacheDir = dir
	o.ShardIndex, o.ShardCount = index, count
	return o
}

// TestSchemeGridPlanDeterministicOrder pins the documented cell
// enumeration order of the Fig. 7/8/9 grid: workload-major (the
// evaluation-set order), schemes in SchemeNames order — a pure
// function of the options, independent of map iteration order and of
// the worker count.
func TestSchemeGridPlanDeterministicOrder(t *testing.T) {
	h := NewHarness(subsetOptions(1, 0))
	plan, err := h.CellPlan("scheme")
	if err != nil {
		t.Fatal(err)
	}
	evalSet := h.EvalWorkloads()
	if len(plan.Cells) != len(evalSet)*len(SchemeNames) {
		t.Fatalf("plan has %d cells, want %d", len(plan.Cells), len(evalSet)*len(SchemeNames))
	}
	i := 0
	for _, wl := range evalSet {
		for ord, scheme := range SchemeNames {
			c := plan.Cells[i]
			i++
			if c.Workload != wl.Name || c.Scheme != scheme || c.Ord != ord {
				t.Fatalf("cell %d is (%s, %s, ord %d), want (%s, %s, ord %d): enumeration must be workload-major in SchemeNames order",
					i-1, c.Workload, c.Scheme, c.Ord, wl.Name, scheme, ord)
			}
			if c.Digest == "" || c.Tag == "" {
				t.Fatalf("cell %s lacks digest or tag", c.Key())
			}
		}
	}
	// A different worker count must not change the plan.
	again, err := NewHarness(subsetOptions(4, 0)).CellPlan("scheme")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan, again) {
		t.Fatal("cell plan must be identical across harness constructions and worker counts")
	}
	// The key sort groups per workload with schemes still in
	// SchemeNames order (the ordinal is part of the key).
	plan.Sort()
	for j := 0; j < len(plan.Cells); j++ {
		if want := SchemeNames[j%len(SchemeNames)]; plan.Cells[j].Scheme != want {
			t.Fatalf("after sort, cell %d has scheme %s, want %s", j, plan.Cells[j].Scheme, want)
		}
	}
}

// TestCellTagMovesWithConfiguration: the results-cache tag must
// separate configurations, grids and model provenance, or stale cells
// could be served across them.
func TestCellTagMovesWithConfiguration(t *testing.T) {
	a := NewHarness(subsetOptions(1, 0))
	b := NewHarness(Options{SMs: 4, EvalStepN: 8, EvalStepP: 8, TrainStepN: 8, TrainStepP: 8})
	if a.cellTag("scheme") == b.cellTag("scheme") {
		t.Fatal("different configurations must not share cell tags")
	}
	if a.cellTag("scheme") == a.cellTag("stride") {
		t.Fatal("different grids must not share cell tags")
	}
	o := subsetOptions(1, 0)
	w, err := a.ModelWeights()
	if err != nil {
		t.Fatal(err)
	}
	w.Alpha[0] += 1
	o.Weights = &w
	if NewHarness(o).cellTag("scheme") == a.cellTag("scheme") {
		t.Fatal("an explicit weights override must move the cell tag")
	}
	ra := subsetOptions(1, 0)
	ra.RandomSeeds = 7
	if NewHarness(ra).cellTag("alternatives") == a.cellTag("alternatives") {
		t.Fatal("RandomSeeds must move the alternatives grid tag")
	}
}

// TestRunCellTasksValidatesPlan: foreign tags, drifted digests and
// unknown schemes are rejected before anything simulates.
func TestRunCellTasksValidatesPlan(t *testing.T) {
	h := NewHarness(subsetOptions(1, 0))
	plan, err := h.CellPlan("compute")
	if err != nil {
		t.Fatal(err)
	}
	// A plan from a differently-configured harness must be refused.
	other := NewHarness(Options{SMs: 4, EvalStepN: 8, EvalStepP: 8, TrainStepN: 8, TrainStepP: 8})
	if _, err := other.RunCellTasks("compute", plan.Cells[:1]); err == nil ||
		!strings.Contains(err.Error(), "tag") {
		t.Fatalf("foreign plan tag must be rejected, got %v", err)
	}
	// A drifted workload digest must be refused.
	bad := append([]gridplan.CellTask(nil), plan.Cells[:1]...)
	bad[0].Digest = "deadbeef"
	if _, err := h.RunCellTasks("compute", bad); err == nil ||
		!strings.Contains(err.Error(), "digest") {
		t.Fatalf("digest drift must be rejected, got %v", err)
	}
	// An unknown scheme ordinal must be refused.
	bad = append([]gridplan.CellTask(nil), plan.Cells[:1]...)
	bad[0].Scheme = "Quantum"
	if _, err := h.RunCellTasks("compute", bad); err == nil {
		t.Fatal("unknown scheme must be rejected")
	}
	// Unknown grids are refused everywhere.
	if _, err := h.CellPlan("nope"); err == nil {
		t.Fatal("unknown grid must fail CellPlan")
	}
	if _, err := h.RunCellTasks("nope", nil); err == nil {
		t.Fatal("unknown grid must fail RunCellTasks")
	}
}

// TestRunCellShardValidatesOptions pins the error paths the commands
// rely on: no cache directory, bad shard assignments, merges with
// nothing to merge.
func TestRunCellShardValidatesOptions(t *testing.T) {
	o := subsetOptions(1, 0)
	o.ShardCount = 2
	if _, err := NewHarness(o).RunCellShard("compute"); err == nil {
		t.Fatal("RunCellShard without a cache dir must error")
	}
	if _, err := NewHarness(gridShardOptions(t.TempDir(), 0, 0)).RunCellShard("compute"); err == nil {
		t.Fatal("RunCellShard with ShardCount 0 must error")
	}
	if _, err := NewHarness(gridShardOptions(t.TempDir(), 5, 2)).RunCellShard("compute"); err == nil {
		t.Fatal("RunCellShard with an out-of-range index must error")
	}
	if _, err := NewHarness(subsetOptions(1, 0)).MergeCellPartials("compute"); err == nil {
		t.Fatal("MergeCellPartials without a cache dir must error")
	}
	if _, err := NewHarness(gridShardOptions(t.TempDir(), 0, 0)).MergeCellPartials("compute"); err == nil {
		t.Fatal("MergeCellPartials with no partials must error")
	}
}

// gridRoundTrip shards a grid's campaign across n independent
// harnesses (as separate worker processes would), merges the partials,
// and returns a fresh harness on the merged cache — the figure methods
// on it assemble from the cached cells.
func gridRoundTrip(t *testing.T, grid string, shards int) *Harness {
	t.Helper()
	dir := t.TempDir()
	for i := 0; i < shards; i++ {
		h := NewHarness(gridShardOptions(dir, i, shards))
		if _, err := h.RunCellShard(grid); err != nil {
			t.Fatalf("shards=%d: shard %d: %v", shards, i, err)
		}
	}
	merger := NewHarness(gridShardOptions(dir, 0, shards))
	n, err := merger.MergeCellPartials(grid)
	if err != nil {
		t.Fatalf("shards=%d: merge: %v", shards, err)
	}
	plan, err := merger.CellPlan(grid)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(plan.Cells) {
		t.Fatalf("shards=%d: merged %d cells, plan has %d", shards, n, len(plan.Cells))
	}
	return NewHarness(gridShardOptions(dir, 0, 0))
}

// TestSchemeGridShardRoundTripMatchesInProcess is the acceptance
// property for the Fig. 7/8/9 grid: running the scheme grid as 1, 2
// and 3 independent shard processes, merging, and assembling the
// figures from the merged cells is reflect.DeepEqual-identical to the
// in-process run.
func TestSchemeGridShardRoundTripMatchesInProcess(t *testing.T) {
	direct, err := NewHarness(gridShardOptions("", 0, 0)).Performance()
	if err != nil {
		t.Fatal(err)
	}
	shardCounts := []int{1, 2, 3}
	if raceEnabled {
		shardCounts = []int{2} // ~10x slower simulation under -race
	}
	for _, shards := range shardCounts {
		loaded := gridRoundTrip(t, "scheme", shards)
		got, err := loaded.Performance()
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(direct, got) {
			t.Fatalf("shards=%d: merged scheme grid diverged from the in-process run:\ndirect %+v\nmerged %+v",
				shards, direct, got)
		}
	}
}

// TestComputeGridShardRoundTripMatchesInProcess covers the first
// sensitivity figure (Fig. 16) through the same 1/2/3-shard identity,
// including its per-cell altered configuration (the 64x Pbest probe).
func TestComputeGridShardRoundTripMatchesInProcess(t *testing.T) {
	direct, err := NewHarness(gridShardOptions("", 0, 0)).Fig16()
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 3} {
		loaded := gridRoundTrip(t, "compute", shards)
		got, err := loaded.Fig16()
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(direct, got) {
			t.Fatalf("shards=%d: merged compute grid diverged from the in-process run", shards)
		}
	}
}

// TestStrideGridShardRoundTripMatchesInProcess covers a second
// sensitivity figure (Fig. 11) through the shard pipeline.
func TestStrideGridShardRoundTripMatchesInProcess(t *testing.T) {
	skipUnderRace(t)
	direct, err := NewHarness(gridShardOptions("", 0, 0)).Fig11()
	if err != nil {
		t.Fatal(err)
	}
	loaded := gridRoundTrip(t, "stride", 2)
	got, err := loaded.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, got) {
		t.Fatal("merged stride grid diverged from the in-process run")
	}
}

// TestGridCellsCachesAndRepairs: an in-process grid run on a cache
// directory persists its cells (so a re-run loads them), and a corrupt
// entry is treated as a miss and overwritten — the LoadOrSweep repair
// discipline, applied to cells.
func TestGridCellsCachesAndRepairs(t *testing.T) {
	dir := t.TempDir()
	h := NewHarness(gridShardOptions(dir, 0, 0))
	want, err := h.Fig16()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := h.CellPlan("compute")
	if err != nil {
		t.Fatal(err)
	}
	tag := plan.Cells[0].Tag
	st := results.Store{Dir: dir}
	cells, err := st.Load(tag, "compute")
	if err != nil {
		t.Fatalf("in-process grid run must persist its cells: %v", err)
	}
	if len(cells) != len(plan.Cells) {
		t.Fatalf("cached %d cells, plan has %d", len(cells), len(plan.Cells))
	}
	// A second harness assembles identically (from the cache).
	again, err := NewHarness(gridShardOptions(dir, 0, 0)).Fig16()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, again) {
		t.Fatal("cached cells assembled a different figure")
	}
	// Corrupt the entry: the next run repairs it and still agrees.
	files, _ := filepath.Glob(filepath.Join(dir, "*_compute.cells.json"))
	if len(files) != 1 {
		t.Fatalf("want 1 cells file, got %v", files)
	}
	if err := os.WriteFile(files[0], []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	repaired, err := NewHarness(gridShardOptions(dir, 0, 0)).Fig16()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, repaired) {
		t.Fatal("repair run diverged")
	}
	if _, err := st.Load(tag, "compute"); err != nil {
		t.Fatalf("corrupt entry must be overwritten with a good one: %v", err)
	}
}
