package experiments

import (
	"errors"
	"fmt"
	"io"

	"poise/internal/gridplan"
	"poise/internal/profile"
	"poise/internal/sim"
	"poise/internal/trace"
)

// Sharded profile sweeps: the harness's offline {N, p} sweeps — the
// wall-clock-dominating step of the evaluation — expressed as a
// serialisable plan that any number of processes can split. The
// workflow is
//
//	coordinator: EmitPlan                 -> plan.jsonl (ship to workers)
//	worker i:    Options{ShardIndex: i, ShardCount: N}; RunShard()
//	             -> shard partials in CacheDir (ship back)
//	coordinator: MergeShardPartials       -> regular profile cache
//	any run:     tables/figures load the merged cache entries
//
// Merging any shard split is reflect.DeepEqual-identical to the
// in-process sweep, so a sharded campaign can never change a figure.

// EvalPlan enumerates the full profile sweep plan of the evaluation
// set: every distinct kernel's grid at the evaluation resolution, each
// task tagged with the kernel's profile-cache key and content digest.
func (h *Harness) EvalPlan() (*gridplan.Plan, error) {
	plan := &gridplan.Plan{Version: gridplan.PlanVersion}
	for _, k := range sim.DistinctKernels(h.EvalWorkloads()) {
		kp := profile.BuildPlan(h.profileTag(k.Name), h.Cfg, k, h.sweepOptions(false))
		plan.Tasks = append(plan.Tasks, kp.Tasks...)
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan, nil
}

// EmitPlan writes the evaluation sweep plan as JSONL.
func (h *Harness) EmitPlan(w io.Writer) error {
	plan, err := h.EvalPlan()
	if err != nil {
		return err
	}
	plan.Sort()
	return gridplan.WritePlan(w, plan)
}

// RunShard simulates this process's shard of the evaluation sweep plan
// (Options.ShardIndex of Options.ShardCount) and persists the
// measurements as per-kernel shard partials in the cache directory.
// It returns the partial files written. The shard split is a pure
// function of the plan, so N processes configured i/N cover every grid
// point exactly once without coordinating.
func (h *Harness) RunShard() ([]string, error) {
	if h.Opt.CacheDir == "" {
		return nil, errors.New("experiments: sharded sweeps need a cache directory for partials")
	}
	if h.Opt.ShardCount < 1 {
		return nil, fmt.Errorf("experiments: ShardCount %d < 1", h.Opt.ShardCount)
	}
	plan, err := h.EvalPlan()
	if err != nil {
		return nil, err
	}
	shard, err := plan.Shard(h.Opt.ShardIndex, h.Opt.ShardCount)
	if err != nil {
		return nil, err
	}
	ms, err := profile.RunTasks(h.Cfg, h.kernelIndex(), shard.Tasks, h.sweepOptions(false))
	if err != nil {
		return nil, err
	}

	// Group the measurements per (tag, kernel) in first-appearance
	// order; RunTasks returns them aligned with shard.Tasks.
	type group struct {
		tag, kernel string
		ms          []gridplan.Measurement
	}
	byKey := map[string]*group{}
	var order []*group
	for i, t := range shard.Tasks {
		key := t.Tag + "|" + t.Kernel
		g, ok := byKey[key]
		if !ok {
			g = &group{tag: t.Tag, kernel: t.Kernel}
			byKey[key] = g
			order = append(order, g)
		}
		g.ms = append(g.ms, ms[i])
	}
	var files []string
	for _, g := range order {
		f, err := h.store.SaveShard(g.tag, g.kernel, h.Opt.ShardIndex, h.Opt.ShardCount, g.ms)
		if err != nil {
			return files, err
		}
		files = append(files, f)
	}
	return files, nil
}

// MergeShardPartials merges every evaluation kernel's persisted shard
// partials into regular profile cache entries, verifying complete
// coverage against the plan (a lost shard fails loudly rather than
// producing a sparse profile). It returns the merged kernel names.
// After a merge, ordinary figure/table runs on the same cache
// directory load the profiles without sweeping.
func (h *Harness) MergeShardPartials() ([]string, error) {
	if h.Opt.CacheDir == "" {
		return nil, errors.New("experiments: no cache directory to merge shard partials from")
	}
	plan, err := h.EvalPlan()
	if err != nil {
		return nil, err
	}
	var merged []string
	for _, g := range plan.Kernels() {
		if _, err := h.store.MergeSavedShards(g.Tag, g.Kernel, plan); err != nil {
			return merged, fmt.Errorf("experiments: merging %s: %w", g.Kernel, err)
		}
		merged = append(merged, g.Kernel)
	}
	return merged, nil
}

// kernelIndex maps every evaluation kernel name to its kernel.
func (h *Harness) kernelIndex() map[string]*trace.Kernel {
	idx := map[string]*trace.Kernel{}
	for _, k := range sim.DistinctKernels(h.EvalWorkloads()) {
		idx[k.Name] = k
	}
	return idx
}

// Staged pruned sweeps: with Options.Prune, the evaluation sweep
// campaign proceeds in refinement rounds, each an ordinary plan that
// shards like any other. Workers share the cache directory, so every
// process derives the current round from the same persisted round
// partials — the plan is a pure function of them:
//
//	loop:
//	  coordinator: RefinePlan          -> this round's plan (or done)
//	  worker i:    RunRefineShard      -> round-shard partials in CacheDir
//	  coordinator: MergeRefinePartials -> round partials; on convergence,
//	               final profiles land in the regular cache
//
// After the final merge, ordinary -prune figure runs load the cached
// profiles without simulating.

// refineRound captures one kernel's position in its refinement.
type refineRound struct {
	tag    string
	kernel *trace.Kernel
	round  int
	prior  []gridplan.Measurement
}

// refineRounds loads every evaluation kernel's persisted rounds and
// returns its current position.
func (h *Harness) refineRounds() ([]refineRound, error) {
	if !h.Opt.Prune {
		return nil, errors.New("experiments: staged refinement needs Options.Prune")
	}
	if h.Opt.CacheDir == "" {
		return nil, errors.New("experiments: staged refinement needs a cache directory for round partials")
	}
	var out []refineRound
	for _, k := range sim.DistinctKernels(h.EvalWorkloads()) {
		tag := h.profileTag(k.Name)
		rounds := h.store.LoadRounds(tag, k.Name)
		prior, err := gridplan.Merge(rounds...)
		if err != nil {
			return nil, fmt.Errorf("experiments: refining %s: %w", k.Name, err)
		}
		out = append(out, refineRound{tag: tag, kernel: k, round: len(rounds), prior: prior})
	}
	return out, nil
}

// RefinePlan assembles the current refinement round across every
// evaluation kernel as one plan. done reports that every kernel's
// refinement has converged (the plan is empty).
func (h *Harness) RefinePlan() (*gridplan.Plan, bool, error) {
	rrs, err := h.refineRounds()
	if err != nil {
		return nil, false, err
	}
	plan := &gridplan.Plan{Version: gridplan.PlanVersion}
	for _, rr := range rrs {
		kp, _, err := profile.BuildRefinePlan(rr.tag, h.Cfg, rr.kernel, h.sweepOptions(false), rr.round, rr.prior)
		if err != nil {
			return nil, false, err
		}
		plan.Tasks = append(plan.Tasks, kp.Tasks...)
	}
	if err := plan.Validate(); err != nil {
		return nil, false, err
	}
	return plan, len(plan.Tasks) == 0, nil
}

// roundShardTag namespaces one refinement round's shard partials in
// the store, so concurrent rounds of one campaign never mix files.
func roundShardTag(tag string, round int) string {
	return fmt.Sprintf("%s.r%03d", tag, round)
}

// RunRefineShard simulates this process's shard of the current
// refinement round and persists the measurements as per-kernel
// round-shard partials. It returns the partial files written; an
// empty list means the refinement has converged and there is nothing
// left to simulate.
func (h *Harness) RunRefineShard() ([]string, error) {
	if h.Opt.ShardCount < 1 {
		return nil, fmt.Errorf("experiments: ShardCount %d < 1", h.Opt.ShardCount)
	}
	rrs, err := h.refineRounds()
	if err != nil {
		return nil, err
	}
	kernels := h.kernelIndex()
	var files []string
	for _, rr := range rrs {
		kp, done, err := profile.BuildRefinePlan(rr.tag, h.Cfg, rr.kernel, h.sweepOptions(false), rr.round, rr.prior)
		if err != nil {
			return nil, err
		}
		if done {
			continue
		}
		shard, err := kp.Shard(h.Opt.ShardIndex, h.Opt.ShardCount)
		if err != nil {
			return nil, err
		}
		ms, err := profile.RunTasks(h.Cfg, kernels, shard.Tasks, h.sweepOptions(false))
		if err != nil {
			return nil, err
		}
		f, err := h.store.SaveShard(roundShardTag(rr.tag, rr.round), rr.kernel.Name,
			h.Opt.ShardIndex, h.Opt.ShardCount, ms)
		if err != nil {
			return files, err
		}
		files = append(files, f)
	}
	return files, nil
}

// MergeRefinePartials folds the current round's shard partials into
// per-kernel round partials, verifying each kernel's round coverage
// against its plan (a lost shard fails loudly). When every kernel has
// converged it assembles the final profiles into the regular cache —
// after that, pruned figure runs load them without simulating — and
// returns done = true.
func (h *Harness) MergeRefinePartials() (bool, error) {
	rrs, err := h.refineRounds()
	if err != nil {
		return false, err
	}
	for i := range rrs {
		rr := &rrs[i]
		kp, done, err := profile.BuildRefinePlan(rr.tag, h.Cfg, rr.kernel, h.sweepOptions(false), rr.round, rr.prior)
		if err != nil {
			return false, err
		}
		if done {
			continue
		}
		shards, err := h.store.LoadShards(roundShardTag(rr.tag, rr.round), rr.kernel.Name)
		if err != nil {
			return false, fmt.Errorf("experiments: refining %s round %d: %w", rr.kernel.Name, rr.round, err)
		}
		merged, err := gridplan.Merge(shards...)
		if err != nil {
			return false, err
		}
		if err := kp.Verify(merged); err != nil {
			return false, fmt.Errorf("experiments: refining %s round %d: %w", rr.kernel.Name, rr.round, err)
		}
		if err := h.store.SaveRound(rr.tag, rr.kernel.Name, rr.round, merged); err != nil {
			return false, err
		}
		// Advance the in-memory position past the round just merged —
		// the same state a fresh refineRounds would re-read from disk.
		if rr.prior, err = gridplan.Merge(rr.prior, merged); err != nil {
			return false, err
		}
		rr.round++
	}
	// If every kernel is now converged, assemble and cache the final
	// profiles.
	for i := range rrs {
		rr := rrs[i]
		_, done, err := profile.BuildRefinePlan(rr.tag, h.Cfg, rr.kernel, h.sweepOptions(false), rr.round, rr.prior)
		if err != nil {
			return false, err
		}
		if !done {
			return false, nil
		}
	}
	for _, rr := range rrs {
		pr, err := profile.MergeShards(rr.kernel.Name, rr.prior)
		if err != nil {
			return false, err
		}
		if err := h.store.Save(rr.tag, pr); err != nil {
			return false, err
		}
	}
	return true, nil
}
