package experiments

import (
	"errors"
	"fmt"
	"io"

	"poise/internal/gridplan"
	"poise/internal/profile"
	"poise/internal/sim"
	"poise/internal/trace"
)

// Sharded profile sweeps: the harness's offline {N, p} sweeps — the
// wall-clock-dominating step of the evaluation — expressed as a
// serialisable plan that any number of processes can split. The
// workflow is
//
//	coordinator: EmitPlan                 -> plan.jsonl (ship to workers)
//	worker i:    Options{ShardIndex: i, ShardCount: N}; RunShard()
//	             -> shard partials in CacheDir (ship back)
//	coordinator: MergeShardPartials       -> regular profile cache
//	any run:     tables/figures load the merged cache entries
//
// Merging any shard split is reflect.DeepEqual-identical to the
// in-process sweep, so a sharded campaign can never change a figure.

// EvalPlan enumerates the full profile sweep plan of the evaluation
// set: every distinct kernel's grid at the evaluation resolution, each
// task tagged with the kernel's profile-cache key and content digest.
func (h *Harness) EvalPlan() (*gridplan.Plan, error) {
	plan := &gridplan.Plan{Version: gridplan.PlanVersion}
	for _, k := range sim.DistinctKernels(h.EvalWorkloads()) {
		kp := profile.BuildPlan(h.profileTag(k.Name), h.Cfg, k, h.sweepOptions(false))
		plan.Tasks = append(plan.Tasks, kp.Tasks...)
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan, nil
}

// EmitPlan writes the evaluation sweep plan as JSONL.
func (h *Harness) EmitPlan(w io.Writer) error {
	plan, err := h.EvalPlan()
	if err != nil {
		return err
	}
	plan.Sort()
	return gridplan.WritePlan(w, plan)
}

// RunShard simulates this process's shard of the evaluation sweep plan
// (Options.ShardIndex of Options.ShardCount) and persists the
// measurements as per-kernel shard partials in the cache directory.
// It returns the partial files written. The shard split is a pure
// function of the plan, so N processes configured i/N cover every grid
// point exactly once without coordinating.
func (h *Harness) RunShard() ([]string, error) {
	if h.Opt.CacheDir == "" {
		return nil, errors.New("experiments: sharded sweeps need a cache directory for partials")
	}
	if h.Opt.ShardCount < 1 {
		return nil, fmt.Errorf("experiments: ShardCount %d < 1", h.Opt.ShardCount)
	}
	plan, err := h.EvalPlan()
	if err != nil {
		return nil, err
	}
	shard, err := plan.Shard(h.Opt.ShardIndex, h.Opt.ShardCount)
	if err != nil {
		return nil, err
	}
	ms, err := profile.RunTasks(h.Cfg, h.kernelIndex(), shard.Tasks, h.sweepOptions(false))
	if err != nil {
		return nil, err
	}

	// Group the measurements per (tag, kernel) in first-appearance
	// order; RunTasks returns them aligned with shard.Tasks.
	type group struct {
		tag, kernel string
		ms          []gridplan.Measurement
	}
	byKey := map[string]*group{}
	var order []*group
	for i, t := range shard.Tasks {
		key := t.Tag + "|" + t.Kernel
		g, ok := byKey[key]
		if !ok {
			g = &group{tag: t.Tag, kernel: t.Kernel}
			byKey[key] = g
			order = append(order, g)
		}
		g.ms = append(g.ms, ms[i])
	}
	var files []string
	for _, g := range order {
		f, err := h.store.SaveShard(g.tag, g.kernel, h.Opt.ShardIndex, h.Opt.ShardCount, g.ms)
		if err != nil {
			return files, err
		}
		files = append(files, f)
	}
	return files, nil
}

// MergeShardPartials merges every evaluation kernel's persisted shard
// partials into regular profile cache entries, verifying complete
// coverage against the plan (a lost shard fails loudly rather than
// producing a sparse profile). It returns the merged kernel names.
// After a merge, ordinary figure/table runs on the same cache
// directory load the profiles without sweeping.
func (h *Harness) MergeShardPartials() ([]string, error) {
	if h.Opt.CacheDir == "" {
		return nil, errors.New("experiments: no cache directory to merge shard partials from")
	}
	plan, err := h.EvalPlan()
	if err != nil {
		return nil, err
	}
	var merged []string
	for _, g := range plan.Kernels() {
		if _, err := h.store.MergeSavedShards(g.Tag, g.Kernel, plan); err != nil {
			return merged, fmt.Errorf("experiments: merging %s: %w", g.Kernel, err)
		}
		merged = append(merged, g.Kernel)
	}
	return merged, nil
}

// kernelIndex maps every evaluation kernel name to its kernel.
func (h *Harness) kernelIndex() map[string]*trace.Kernel {
	idx := map[string]*trace.Kernel{}
	for _, k := range sim.DistinctKernels(h.EvalWorkloads()) {
		idx[k.Name] = k
	}
	return idx
}
