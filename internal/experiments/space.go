package experiments

import (
	"context"

	"poise/internal/poise"
	"poise/internal/profile"
	"poise/internal/reuse"
	"poise/internal/runner"
	"poise/internal/sim"
	"poise/internal/trace"
)

// SpaceResult is a profiled {N, p} solution space with the marker
// points the paper's Fig. 2 annotates: the CCWS/SWL diagonal optimum,
// the point a PCAL-style search converges to, and the global optimum.
type SpaceResult struct {
	Profile *profile.Profile
	CCWS    profile.Point
	PCAL    profile.Point
	Max     profile.Point
	// Curves for Fig. 2b: speedup along p = N and along p = 1.
	DiagonalN []int
	Diagonal  []float64
	P1N       []int
	P1        []float64
}

// Fig2 reproduces the solution-space dissection of an ii kernel: the
// full profile, the CCWS diagonal peak, the tuple a PCAL-style search
// (parallel p, then unit hill-climb in N from the CCWS point) reaches,
// and the global optimum — demonstrating the local-optimum trap of
// §III-C.
func (h *Harness) Fig2() (*SpaceResult, error) {
	k := h.Cat.Must("ii").Kernels[0]
	return h.spaceFor(k)
}

func (h *Harness) spaceFor(k *trace.Kernel) (*SpaceResult, error) {
	// The whole space is rendered and walked: always exhaustive.
	pr, err := h.KernelProfileFull(k)
	if err != nil {
		return nil, err
	}
	res := &SpaceResult{Profile: pr}
	res.Max = pr.Best()
	res.CCWS = pr.BestDiagonal()
	res.PCAL = simulatePCALSearch(pr, res.CCWS)

	for _, pt := range pr.Points {
		if pt.N == pt.P {
			res.DiagonalN = append(res.DiagonalN, pt.N)
			res.Diagonal = append(res.Diagonal, pt.Speedup)
		}
		if pt.P == 1 {
			res.P1N = append(res.P1N, pt.N)
			res.P1 = append(res.P1, pt.Speedup)
		}
	}
	return res, nil
}

// simulatePCALSearch walks the profile the way PCAL's dynamic search
// walks hardware: from the CCWS point, pick the best p at fixed N
// (the parallel-p trial), then hill-climb N at the profile's grid
// resolution until no neighbour improves. Operating on the static
// profile isolates the search pathology from sampling noise.
func simulatePCALSearch(pr *profile.Profile, start profile.Point) profile.Point {
	cur := start
	// Parallel p: best swept p for the starting N.
	for _, pt := range pr.Points {
		if pt.N == cur.N && pt.Speedup > cur.Speedup {
			cur = pt
		}
	}
	// Hill-climb N at fixed p, following the swept grid neighbours.
	improved := true
	for improved {
		improved = false
		for _, pt := range pr.Points {
			if pt.P != cur.P {
				continue
			}
			if abs(pt.N-cur.N) == 0 || !isGridNeighbor(pr, cur.N, pt.N) {
				continue
			}
			if pt.Speedup > cur.Speedup {
				cur = pt
				improved = true
			}
		}
	}
	return cur
}

// isGridNeighbor reports whether b is the next swept N after/before a.
func isGridNeighbor(pr *profile.Profile, a, b int) bool {
	if a == b {
		return false
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	for _, pt := range pr.Points {
		if pt.N > lo && pt.N < hi {
			return false
		}
	}
	return true
}

// ScoringResult backs Fig. 5: the max-performance versus max-score
// tuples of a kernel under the Eq. 12 neighbourhood scoring.
type ScoringResult struct {
	Kernel         string
	MaxPerf        profile.Point
	MaxScore       profile.Point
	MaxScoreValue  float64
	PerfAtMaxScore float64
}

// Fig5 scores two ii-family kernels, showing how the target picked for
// training backs away from performance cliffs.
func (h *Harness) Fig5() ([]ScoringResult, error) {
	ii := h.Cat.Must("ii")
	var out []ScoringResult
	for _, k := range []*trace.Kernel{ii.Kernels[1], ii.Kernels[3]} {
		pr, err := h.KernelProfile(k)
		if err != nil {
			return nil, err
		}
		best, score := pr.BestScore(h.Params)
		out = append(out, ScoringResult{
			Kernel:         k.Name,
			MaxPerf:        pr.Best(),
			MaxScore:       best,
			MaxScoreValue:  score,
			PerfAtMaxScore: best.Speedup,
		})
	}
	return out, nil
}

// LocalityRow is one workload of Fig. 4: the hit-rate split at (max, 1)
// against the baseline, with reuse characteristics.
type LocalityRow struct {
	Workload  string
	Hp        float64 // hit rate of the polluting warps at (max, 1)
	Hnp       float64 // hit rate of the non-polluting warps
	Ho        float64 // baseline net hit rate
	IntraPct  float64 // intra-warp hits as % of baseline hits
	InterPct  float64
	ReuseDist float64 // mean stack distance R of a single warp's stream
	DeltaHpHo float64 // the Delta h_{p/o} the feature analysis keys on
}

// Fig4 reproduces the locality dissection on ii, bfs, syr2k and cfd,
// one worker per workload.
func (h *Harness) Fig4() ([]LocalityRow, error) {
	names := []string{"ii", "bfs", "syr2k", "cfd"}
	return runner.MapSlice(h.ctx(), h.Opt.Workers, names,
		func(_ context.Context, _ int, name string) (LocalityRow, error) {
			w := h.Cat.Must(name)
			k := w.Kernels[0]
			g, err := sim.New(h.Cfg)
			if err != nil {
				return LocalityRow{}, err
			}
			maxN := h.Cfg.WarpsPerSched
			base, err := g.Run(k, sim.Fixed{N: maxN, P: maxN}, sim.RunOptions{})
			if err != nil {
				return LocalityRow{}, err
			}
			red, err := g.Run(k, sim.Fixed{N: maxN, P: 1}, sim.RunOptions{})
			if err != nil {
				return LocalityRow{}, err
			}
			row := LocalityRow{
				Workload: name,
				Hp:       red.L1.PolluteHitRate(),
				Hnp:      red.L1.NoPollHitRate(),
				Ho:       base.L1.HitRate(),
			}
			if base.L1.Hits > 0 {
				row.IntraPct = 100 * float64(base.L1.IntraWarpHits) / float64(base.L1.Hits)
				row.InterPct = 100 * float64(base.L1.InterWarpHits) / float64(base.L1.Hits)
			}
			row.ReuseDist = kernelReuseDistance(k, 30000)
			row.DeltaHpHo = row.Hp - row.Ho
			return row, nil
		})
}

// kernelReuseDistance replays one warp's load-address stream through
// the stack-distance profiler and returns the mean finite distance —
// the R statistic of Fig. 4. Consecutive touches of the same line
// (intra-line spatial locality) are collapsed first: R characterises
// the distinct-line footprint between reuses, not element strides.
func kernelReuseDistance(k *trace.Kernel, accesses int) float64 {
	p := reuse.NewProfiler(1 << 14)
	ctx := trace.Ctx{GlobalWarp: 0}
	n := 0
	last := map[int]uint64{}
	// The replay may run past the kernel's own iteration count: R is a
	// property of the access pattern, and the big shared regions need a
	// long window before their reuses register at all.
	for it := 0; n < accesses; it++ {
		for _, ins := range k.Body {
			if ins.Kind != trace.OpLoad {
				continue
			}
			line := k.Patterns[ins.Slot].Addr(ctx, it) / trace.LineBytes
			// Collapse each slot's dwell runs (intra-line spatial
			// locality): R characterises distinct-line reuse.
			if prev, ok := last[ins.Slot]; ok && prev == line {
				continue
			}
			last[ins.Slot] = line
			p.Touch(line)
			n++
		}
	}
	return p.MeanDistance()
}

// CaseStudyResult backs Fig. 17: the bfs static profile plus the tuples
// Poise chose at runtime.
type CaseStudyResult struct {
	Profile   *profile.Profile
	Predicted []sim.TupleEvent // raw HIE predictions
	Converged []sim.TupleEvent // tuples after local search
}

// Fig17 runs the case study on the unseen bfs workload.
func (h *Harness) Fig17() (*CaseStudyResult, error) {
	w := h.Cat.Must("bfs")
	k := w.Kernels[0]
	// The case study renders the full space: always exhaustive.
	pr, err := h.KernelProfileFull(k)
	if err != nil {
		return nil, err
	}
	pol, err := h.PoisePolicy()
	if err != nil {
		return nil, err
	}
	g, err := sim.New(h.Cfg)
	if err != nil {
		return nil, err
	}
	g.TraceTuples = true
	res, err := g.Run(k, pol, sim.RunOptions{})
	if err != nil {
		return nil, err
	}
	out := &CaseStudyResult{Profile: pr}
	for _, ev := range res.TupleLog {
		if ev.Predicted {
			out.Predicted = append(out.Predicted, ev)
		}
	}
	out.Converged = convergedTuples(res.TupleLog)
	return out, nil
}

// convergedTuples extracts the tuple pinned at the end of each search:
// the last SetTuple an SM issued after a prediction and before its next
// prediction (or the log end). Steering before the first prediction
// (kernel-start and feature-window tuples) does not count.
func convergedTuples(log []sim.TupleEvent) []sim.TupleEvent {
	var out []sim.TupleEvent
	lastBySM := map[int]*sim.TupleEvent{}
	predicted := map[int]bool{}
	flush := func(smID int) {
		if ev := lastBySM[smID]; ev != nil {
			out = append(out, *ev)
			lastBySM[smID] = nil
		}
	}
	for i := range log {
		ev := log[i]
		if ev.Predicted {
			flush(ev.SM)
			predicted[ev.SM] = true
			continue
		}
		if predicted[ev.SM] {
			lastBySM[ev.SM] = &log[i]
		}
	}
	for smID := range lastBySM {
		flush(smID)
	}
	return out
}

// abs is shared by the space helpers.
func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// DefaultWeightsAvailable reports whether an embedded model exists.
func DefaultWeightsAvailable() bool {
	_, ok := poise.DefaultWeights()
	return ok
}
