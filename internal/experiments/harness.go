// Package experiments reproduces every table and figure of the paper's
// evaluation (§VII). Each experiment is a method on Harness returning
// structured rows, so the same code backs the poisebench command, the
// top-level testing.B benchmarks and EXPERIMENTS.md.
//
// Experiments run on a scaled GPU (default 8 SMs with a proportionally
// scaled memory system, see config.Config.Scale) and the Small workload
// size; both are configurable. Offline {N, p} sweeps are cached on disk
// keyed by a configuration digest, because SWL, PCAL-SWL, Static-Best
// and the training pipeline all consume them.
package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"poise/internal/config"
	"poise/internal/gridplan"
	"poise/internal/poise"
	"poise/internal/profile"
	"poise/internal/results"
	"poise/internal/runner"
	"poise/internal/sim"
	"poise/internal/trace"
	"poise/internal/workloads"
)

// Options configures a Harness.
type Options struct {
	SMs      int            // simulated SM count (default 8)
	Size     workloads.Size // workload scale (default Small)
	CacheDir string         // profile cache directory ("" = no cache)

	// Sweep grids: evaluation profiles need enough resolution for
	// Static-Best; training profiles can be coarser.
	EvalStepN, EvalStepP   int
	TrainStepN, TrainStepP int

	// Prune switches the profile sweeps — evaluation and training —
	// to the adaptive coarse-to-fine refinement (profile.PrunedSweep):
	// a coarse pass plus score-ranked neighbourhood expansion that
	// simulates a fraction of the grid while selecting the same Best /
	// BestDiagonal / BestScore tuples as the exhaustive sweep, which
	// is all the tables and training consume — no figure moves. The
	// two figures that render or walk the whole solution space (Fig. 2
	// and Fig. 17) always sweep their one kernel exhaustively
	// (KernelProfileFull), pruned or not. Pruned campaigns cache under
	// a distinct tag, so pruned and exhaustive runs never share
	// profile entries.
	Prune bool

	// Seeds for the random-restart policy (paper averages 20 runs).
	RandomSeeds int

	// Weights overrides the embedded default model (zero value = use
	// DefaultWeights, falling back to training when empty).
	Weights *poise.Weights

	// Workers bounds the goroutines the harness fans simulations out
	// across (<= 0 means GOMAXPROCS, 1 forces sequential execution).
	// Every experiment is bit-identical at any worker count: tasks
	// share no mutable state and results aggregate in grid order.
	Workers int

	// Seed perturbs the workload catalogue's iteration-jitter streams
	// and offsets the random-restart seeds; 0 is the canonical
	// configuration. Runs with the same seed are reproducible
	// regardless of Workers.
	Seed int64

	// Ctx cancels in-flight experiment grids (nil = Background).
	Ctx context.Context

	// EvalSubset restricts EvalWorkloads to these names (paper order is
	// kept for names in the evaluation set). Empty means the full set.
	// Meant for tests and quick interactive runs.
	EvalSubset []string

	// SnapshotDir enables the content-addressed kernel-boundary prefix
	// cache for grid cells ("" = off): cells whose policy pins a
	// predictable tuple sequence (GTO, SWL, Static-Best, Fixed) restore
	// the deepest shared-prefix snapshot instead of re-simulating those
	// kernels. Results are bit-identical with or without it.
	SnapshotDir string

	// ExtraWorkloads registers additional workloads — typically
	// trace-backed ones from package traceio — in the catalogue. A name
	// colliding with a synthetic workload shadows it (the record/replay
	// comparison case); genuinely new names are appended to the
	// evaluation set, so profile sweeps, tables and figures run over
	// ingested traces unchanged.
	ExtraWorkloads []*sim.Workload

	// ShardIndex/ShardCount select this process's slice of a sharded
	// campaign — the profile sweep plan for RunShard, or an experiment
	// grid's cell plan for RunCellShard: of the plan's tasks (sorted by
	// key), this process simulates those with index % ShardCount ==
	// ShardIndex and persists the results as shard partials in
	// CacheDir. ShardCount 0 (the default) means the harness is not
	// shard-restricted. Merging any shard split is bit-identical to the
	// in-process run, so fanning a sweep or a figure across processes
	// or machines never changes a result.
	ShardIndex, ShardCount int
}

func (o Options) withDefaults() Options {
	if o.SMs <= 0 {
		o.SMs = 8
	}
	if o.EvalStepN <= 0 {
		o.EvalStepN = 2
	}
	if o.EvalStepP <= 0 {
		o.EvalStepP = 2
	}
	if o.TrainStepN <= 0 {
		o.TrainStepN = 3
	}
	if o.TrainStepP <= 0 {
		o.TrainStepP = 3
	}
	if o.RandomSeeds <= 0 {
		o.RandomSeeds = 3
	}
	return o
}

// Harness owns the shared state of the experiment suite. All methods
// are safe for concurrent use: profiles, the training dataset and the
// model weights are built at most once behind single-flight caches.
type Harness struct {
	Opt    Options
	Cfg    config.Config
	Params config.PoiseParams
	Cat    *workloads.Catalogue

	store     profile.Store
	cellStore results.Store
	profiles  runner.Cache[string, *profile.Profile]
	weights   runner.Once[poise.Weights]
	dataset   runner.Once[*poise.Dataset]
	// cells memoises executed experiment grids per grid name; ablated
	// memoises the Fig. 13 retrained models per dropped feature; pools
	// recycles per-configuration GPUs across every grid the harness
	// executes.
	cells   runner.Cache[string, []results.CellResult]
	ablated runner.Cache[int, poise.Weights]
	pools   *sim.PoolSet
	prefix  *sim.PrefixCache

	// extraKernels maps each ExtraWorkloads kernel name to its
	// workload's content digest, so only those kernels' profile-cache
	// keys move when traces are ingested or re-recorded — the synthetic
	// catalogue's cached sweeps stay warm.
	extraKernels map[string]string
}

// NewHarness builds a harness.
func NewHarness(opt Options) *Harness {
	opt = opt.withDefaults()
	cat := workloads.NewCatalogueSeeded(opt.Size, opt.Seed)
	extraKernels := map[string]string{}
	for _, w := range opt.ExtraWorkloads {
		cat.Put(w)
		d := workloadDigest(w)
		for _, k := range w.Kernels {
			extraKernels[k.Name] = d
		}
	}
	h := &Harness{
		Opt:          opt,
		Cfg:          config.Default().Scale(opt.SMs),
		Params:       config.DefaultPoise(),
		Cat:          cat,
		store:        profile.Store{Dir: opt.CacheDir},
		cellStore:    results.Store{Dir: opt.CacheDir},
		pools:        sim.NewPoolSet(),
		extraKernels: extraKernels,
	}
	if opt.SnapshotDir != "" {
		// An unopenable snapshot directory only disables warm starts;
		// every cell still simulates correctly without the cache.
		h.prefix, _ = sim.NewPrefixCache(opt.SnapshotDir)
	}
	return h
}

// PrefixCache returns the harness's kernel-boundary prefix cache (nil
// when Options.SnapshotDir is unset).
func (h *Harness) PrefixCache() *sim.PrefixCache { return h.prefix }

// ctx returns the harness's cancellation context.
func (h *Harness) ctx() context.Context {
	if h.Opt.Ctx != nil {
		return h.Opt.Ctx
	}
	return context.Background()
}

// Workers returns the effective worker count of the harness's
// execution engine.
func (h *Harness) Workers() int { return runner.NumWorkers(h.Opt.Workers) }

// narrowWorkers bounds an outer fan-out whose tasks each run
// Workers-wide profile sweeps inside: two lanes overlap one sweep's
// sequential baseline with another's tail without multiplying into
// Workers^2 concurrent GPUs.
func (h *Harness) narrowWorkers() int {
	if w := runner.NumWorkers(h.Opt.Workers); w < 2 {
		return w
	}
	return 2
}

// sweepOptions assembles the profile sweep options for the eval or
// train grid, threading the worker pool and cancellation through.
func (h *Harness) sweepOptions(train bool) profile.SweepOptions {
	o := profile.SweepOptions{
		StepN: h.Opt.EvalStepN, StepP: h.Opt.EvalStepP,
		Workers: h.Opt.Workers, Ctx: h.Opt.Ctx,
	}
	if train {
		o.StepN, o.StepP = h.Opt.TrainStepN, h.Opt.TrainStepP
	}
	if h.Opt.Prune {
		o.Refine = h.refineOptions(train)
	}
	return o
}

// refineOptions is the harness's refinement configuration: defaults,
// ranked with the harness's Eq. 12 weights. BuildDataset passes these
// options through to the store, so the training sweeps prune exactly
// like the evaluation sweeps do — except that training skips the SWL
// diagonal front: the dataset's targets consume only the scored
// optimum and the baseline, never BestDiagonal, so the diagonal climb
// is grid points for nothing there.
func (h *Harness) refineOptions(train bool) *profile.RefineOptions {
	return &profile.RefineOptions{
		W0: h.Params.ScoreW0, W1: h.Params.ScoreW1, W2: h.Params.ScoreW2,
		SkipDiagonal: train,
	}
}

// tag digests the parts of the configuration that change profiles, so
// the on-disk cache never serves stale sweeps. Worker count is
// deliberately excluded: parallelism never changes results.
func (h *Harness) tag(train bool) string { return h.tagMode(train, h.Opt.Prune) }

// tagMode is tag with the pruning mode explicit, so the exhaustive
// sweeps a pruned harness still needs (KernelProfileFull) key into
// the same cache entries an unpruned run would produce.
func (h *Harness) tagMode(train, prune bool) string {
	s := fmt.Sprintf("sms%d-size%d-l1%d-%v", h.Opt.SMs, h.Opt.Size,
		h.Cfg.L1.SizeBytes, h.Cfg.L1.Index)
	if train {
		s += fmt.Sprintf("-t%d.%d", h.Opt.TrainStepN, h.Opt.TrainStepP)
	} else {
		s += fmt.Sprintf("-e%d.%d", h.Opt.EvalStepN, h.Opt.EvalStepP)
	}
	if h.Opt.Seed != 0 {
		s += fmt.Sprintf("-seed%d", h.Opt.Seed)
	}
	if prune {
		// Pruned profiles carry a subset of the grid, and which subset
		// depends on every refinement parameter: never let pruned
		// entries collide with exhaustive ones or with a campaign
		// refined under different parameters (the train grid skips the
		// diagonal front, so its Tag differs from eval's).
		s += "-prune" + h.refineOptions(train).Tag()
	}
	if train {
		// The training pipeline sweeps Cat.TrainingSet() under this one
		// tag, so a trace shadowing a training workload must move it;
		// eval kernels are keyed individually (see profileTag).
		training := map[string]bool{}
		for _, n := range workloads.TrainingNames() {
			training[n] = true
		}
		for _, w := range h.Opt.ExtraWorkloads {
			if training[w.Name] {
				s += "-x" + workloadDigest(w)
			}
		}
	}
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:6])
}

// profileTag is the per-kernel profile-cache key: the configuration
// tag, plus — for kernels of ingested (extra) workloads — the
// workload's content digest. Shadowed or re-recorded traces can never
// be served stale sweeps, while the synthetic catalogue's cache stays
// warm whatever traces come and go.
func (h *Harness) profileTag(kernel string) string {
	return h.profileTagMode(kernel, h.Opt.Prune)
}

func (h *Harness) profileTagMode(kernel string, prune bool) string {
	t := h.tagMode(false, prune)
	if d, ok := h.extraKernels[kernel]; ok {
		t += "-" + d
	}
	return t
}

// workloadDigest fingerprints a workload by composing its kernels'
// content digests (gridplan.KernelDigest: structure, per-warp
// iteration counts, sampled pattern addresses — cheap, yet it moves
// whenever a trace is re-recorded). The same per-kernel digest
// authenticates sweep-plan tasks, so the cache tags and the shard
// protocol can never disagree about what a kernel's content is.
func workloadDigest(w *sim.Workload) string {
	d := sha256.New()
	fmt.Fprintf(d, "%s/%d", w.Name, len(w.Kernels))
	for _, k := range w.Kernels {
		fmt.Fprintf(d, "|%s", gridplan.KernelDigest(k))
	}
	return hex.EncodeToString(d.Sum(nil)[:8])
}

// KernelProfile sweeps (or loads) the profile of one kernel at the
// evaluation grid. Concurrent calls for the same kernel share one
// sweep.
func (h *Harness) KernelProfile(k *trace.Kernel) (*profile.Profile, error) {
	return h.profiles.Get(k.Name, func() (*profile.Profile, error) {
		return h.store.LoadOrSweep(h.profileTag(k.Name), h.Cfg, k, h.sweepOptions(false))
	})
}

// KernelProfileFull sweeps (or loads) the exhaustive profile of one
// kernel regardless of Options.Prune. The solution-space figures
// (Fig. 2's scatter/curves and PCAL walk, Fig. 17's case-study
// rendering) consume the whole grid, which a pruned subset cannot
// serve — they must look identical with and without -prune. Entries
// key under the unpruned tag, so they share the cache with ordinary
// exhaustive runs.
func (h *Harness) KernelProfileFull(k *trace.Kernel) (*profile.Profile, error) {
	if !h.Opt.Prune {
		return h.KernelProfile(k)
	}
	return h.profiles.Get("full|"+k.Name, func() (*profile.Profile, error) {
		opts := h.sweepOptions(false)
		opts.Refine = nil
		return h.store.LoadOrSweep(h.profileTagMode(k.Name, false), h.Cfg, k, opts)
	})
}

// WorkloadProfiles returns per-kernel profiles for a set of workloads,
// sweeping distinct kernels concurrently.
func (h *Harness) WorkloadProfiles(ws []*sim.Workload) (map[string]*profile.Profile, error) {
	kernels := sim.DistinctKernels(ws)
	// Each sweep already parallelises its own grid points across the
	// full pool, so the outer kernel level stays narrow (two lanes just
	// to overlap one sweep's sequential baseline run with another's
	// tail) — a wide outer map would multiply into Workers^2 concurrent
	// GPUs. The shared profile cache single-flights duplicate names.
	prs, err := runner.MapSlice(h.ctx(), h.narrowWorkers(), kernels,
		func(_ context.Context, _ int, k *trace.Kernel) (*profile.Profile, error) {
			pr, err := h.KernelProfile(k)
			if err != nil {
				return nil, fmt.Errorf("experiments: profiling %s: %w", k.Name, err)
			}
			return pr, nil
		})
	if err != nil {
		return nil, err
	}
	out := map[string]*profile.Profile{}
	for i, k := range kernels {
		out[k.Name] = prs[i]
	}
	return out, nil
}

// Dataset builds (once) the training dataset from the training
// workloads.
func (h *Harness) Dataset() (*poise.Dataset, error) {
	return h.dataset.Do(func() (*poise.Dataset, error) {
		return poise.BuildDataset(h.Cfg, h.Params, h.Cat.TrainingSet(),
			h.sweepOptions(true), h.store, h.tag(true))
	})
}

// ModelWeights returns the weights used by the Poise policy: the
// explicit override, the embedded defaults, or a fresh training run —
// in that order.
func (h *Harness) ModelWeights() (poise.Weights, error) {
	return h.weights.Do(func() (poise.Weights, error) {
		if h.Opt.Weights != nil {
			return *h.Opt.Weights, nil
		}
		if w, ok := poise.DefaultWeights(); ok {
			return w, nil
		}
		ds, err := h.Dataset()
		if err != nil {
			return poise.Weights{}, err
		}
		return poise.Train(ds, poise.TrainOptions{Drop: -1})
	})
}

// PoisePolicy builds a fresh Poise policy (per workload run — the
// displacement statistics are per-policy-instance).
func (h *Harness) PoisePolicy() (*poise.Policy, error) {
	w, err := h.ModelWeights()
	if err != nil {
		return nil, err
	}
	return poise.NewPolicy(h.Params, w), nil
}

// RunWorkload executes one workload under one policy.
func (h *Harness) RunWorkload(w *sim.Workload, p sim.Policy) (sim.WorkloadResult, error) {
	return sim.RunWorkload(h.Cfg, w, p, sim.RunOptions{})
}

// EvalWorkloads returns the evaluation set (paper order) followed by
// any extra (trace-backed) workloads whose names are not already in
// it, or the configured subset.
func (h *Harness) EvalWorkloads() []*sim.Workload {
	if len(h.Opt.EvalSubset) > 0 {
		out := make([]*sim.Workload, 0, len(h.Opt.EvalSubset))
		for _, name := range h.Opt.EvalSubset {
			out = append(out, h.Cat.Must(name))
		}
		return out
	}
	out := h.Cat.EvalSet()
	// Only genuinely new names join the evaluation set; an extra that
	// shadows any catalogue workload — training and compute-intensive
	// ones included — replaces it in place without changing set
	// membership.
	known := map[string]bool{}
	for _, names := range [][]string{workloads.TrainingNames(), workloads.EvalNames(), workloads.ComputeNames()} {
		for _, n := range names {
			known[n] = true
		}
	}
	for _, w := range h.Opt.ExtraWorkloads {
		if !known[w.Name] {
			known[w.Name] = true
			out = append(out, h.Cat.Must(w.Name))
		}
	}
	return out
}

// sortedNames returns map keys in stable order (tables must be
// deterministic).
func sortedNames[T any](m map[string]T) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
