// Package experiments reproduces every table and figure of the paper's
// evaluation (§VII). Each experiment is a method on Harness returning
// structured rows, so the same code backs the poisebench command, the
// top-level testing.B benchmarks and EXPERIMENTS.md.
//
// Experiments run on a scaled GPU (default 8 SMs with a proportionally
// scaled memory system, see config.Config.Scale) and the Small workload
// size; both are configurable. Offline {N, p} sweeps are cached on disk
// keyed by a configuration digest, because SWL, PCAL-SWL, Static-Best
// and the training pipeline all consume them.
package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"poise/internal/config"
	"poise/internal/poise"
	"poise/internal/profile"
	"poise/internal/sim"
	"poise/internal/trace"
	"poise/internal/workloads"
)

// Options configures a Harness.
type Options struct {
	SMs      int            // simulated SM count (default 8)
	Size     workloads.Size // workload scale (default Small)
	CacheDir string         // profile cache directory ("" = no cache)

	// Sweep grids: evaluation profiles need enough resolution for
	// Static-Best; training profiles can be coarser.
	EvalStepN, EvalStepP   int
	TrainStepN, TrainStepP int

	// Seeds for the random-restart policy (paper averages 20 runs).
	RandomSeeds int

	// Weights overrides the embedded default model (zero value = use
	// DefaultWeights, falling back to training when empty).
	Weights *poise.Weights
}

func (o Options) withDefaults() Options {
	if o.SMs <= 0 {
		o.SMs = 8
	}
	if o.EvalStepN <= 0 {
		o.EvalStepN = 2
	}
	if o.EvalStepP <= 0 {
		o.EvalStepP = 2
	}
	if o.TrainStepN <= 0 {
		o.TrainStepN = 3
	}
	if o.TrainStepP <= 0 {
		o.TrainStepP = 3
	}
	if o.RandomSeeds <= 0 {
		o.RandomSeeds = 3
	}
	return o
}

// Harness owns the shared state of the experiment suite.
type Harness struct {
	Opt    Options
	Cfg    config.Config
	Params config.PoiseParams
	Cat    *workloads.Catalogue

	store    profile.Store
	profiles map[string]*profile.Profile
	weights  *poise.Weights
	dataset  *poise.Dataset
}

// NewHarness builds a harness.
func NewHarness(opt Options) *Harness {
	opt = opt.withDefaults()
	return &Harness{
		Opt:      opt,
		Cfg:      config.Default().Scale(opt.SMs),
		Params:   config.DefaultPoise(),
		Cat:      workloads.NewCatalogue(opt.Size),
		store:    profile.Store{Dir: opt.CacheDir},
		profiles: map[string]*profile.Profile{},
	}
}

// tag digests the parts of the configuration that change profiles, so
// the on-disk cache never serves stale sweeps.
func (h *Harness) tag(train bool) string {
	s := fmt.Sprintf("sms%d-size%d-l1%d-%v", h.Opt.SMs, h.Opt.Size,
		h.Cfg.L1.SizeBytes, h.Cfg.L1.Index)
	if train {
		s += fmt.Sprintf("-t%d.%d", h.Opt.TrainStepN, h.Opt.TrainStepP)
	} else {
		s += fmt.Sprintf("-e%d.%d", h.Opt.EvalStepN, h.Opt.EvalStepP)
	}
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:6])
}

// KernelProfile sweeps (or loads) the profile of one kernel at the
// evaluation grid.
func (h *Harness) KernelProfile(k *trace.Kernel) (*profile.Profile, error) {
	if pr, ok := h.profiles[k.Name]; ok {
		return pr, nil
	}
	pr, err := h.store.LoadOrSweep(h.tag(false), h.Cfg, k,
		profile.SweepOptions{StepN: h.Opt.EvalStepN, StepP: h.Opt.EvalStepP})
	if err != nil {
		return nil, err
	}
	h.profiles[k.Name] = pr
	return pr, nil
}

// WorkloadProfiles returns per-kernel profiles for a set of workloads.
func (h *Harness) WorkloadProfiles(ws []*sim.Workload) (map[string]*profile.Profile, error) {
	out := map[string]*profile.Profile{}
	for _, w := range ws {
		for _, k := range w.Kernels {
			pr, err := h.KernelProfile(k)
			if err != nil {
				return nil, fmt.Errorf("experiments: profiling %s: %w", k.Name, err)
			}
			out[k.Name] = pr
		}
	}
	return out, nil
}

// Dataset builds (once) the training dataset from the training
// workloads.
func (h *Harness) Dataset() (*poise.Dataset, error) {
	if h.dataset != nil {
		return h.dataset, nil
	}
	ds, err := poise.BuildDataset(h.Cfg, h.Params, h.Cat.TrainingSet(),
		profile.SweepOptions{StepN: h.Opt.TrainStepN, StepP: h.Opt.TrainStepP},
		h.store, h.tag(true))
	if err != nil {
		return nil, err
	}
	h.dataset = ds
	return ds, nil
}

// ModelWeights returns the weights used by the Poise policy: the
// explicit override, the embedded defaults, or a fresh training run —
// in that order.
func (h *Harness) ModelWeights() (poise.Weights, error) {
	if h.weights != nil {
		return *h.weights, nil
	}
	if h.Opt.Weights != nil {
		h.weights = h.Opt.Weights
		return *h.weights, nil
	}
	if w, ok := poise.DefaultWeights(); ok {
		h.weights = &w
		return w, nil
	}
	ds, err := h.Dataset()
	if err != nil {
		return poise.Weights{}, err
	}
	w, err := poise.Train(ds, poise.TrainOptions{Drop: -1})
	if err != nil {
		return poise.Weights{}, err
	}
	h.weights = &w
	return w, nil
}

// PoisePolicy builds a fresh Poise policy (per workload run — the
// displacement statistics are per-policy-instance).
func (h *Harness) PoisePolicy() (*poise.Policy, error) {
	w, err := h.ModelWeights()
	if err != nil {
		return nil, err
	}
	return poise.NewPolicy(h.Params, w), nil
}

// RunWorkload executes one workload under one policy.
func (h *Harness) RunWorkload(w *sim.Workload, p sim.Policy) (sim.WorkloadResult, error) {
	return sim.RunWorkload(h.Cfg, w, p, sim.RunOptions{})
}

// EvalWorkloads returns the evaluation set (paper order).
func (h *Harness) EvalWorkloads() []*sim.Workload { return h.Cat.EvalSet() }

// sortedNames returns map keys in stable order (tables must be
// deterministic).
func sortedNames[T any](m map[string]T) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
