package experiments

import (
	"poise/internal/profile"
	"poise/internal/results"
	"poise/internal/trace"
)

// Accessors for the fleet coordinator/worker modes (package fleet,
// cmd/poisebench -serve/-worker): a fleet campaign over the harness's
// evaluation sweep needs the kernel set, the per-kernel profile-cache
// tags, the sweep options and the stores — the same values the
// file-based shard flow wires through RunShard/MergeShardPartials —
// without reaching into harness internals.

// EvalKernels returns the evaluation kernel index (every kernel of
// every evaluation workload, by name).
func (h *Harness) EvalKernels() map[string]*trace.Kernel { return h.kernelIndex() }

// ProfileTags maps each evaluation kernel to its profile-cache tag.
func (h *Harness) ProfileTags() map[string]string {
	tags := map[string]string{}
	for name := range h.kernelIndex() {
		tags[name] = h.profileTag(name)
	}
	return tags
}

// EvalSweepOptions returns the evaluation-grid sweep options,
// including the refinement parameters when the harness prunes.
func (h *Harness) EvalSweepOptions() profile.SweepOptions { return h.sweepOptions(false) }

// ProfileStore returns the harness's profile cache store.
func (h *Harness) ProfileStore() profile.Store { return h.store }

// CellStore returns the harness's experiment-cell cache store.
func (h *Harness) CellStore() results.Store { return h.cellStore }
