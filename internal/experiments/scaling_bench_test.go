package experiments

import (
	"fmt"
	"testing"

	"poise/internal/config"
	"poise/internal/poise"
	"poise/internal/profile"
	"poise/internal/sim"
	"poise/internal/testutil"
	"poise/internal/workloads"
)

// BenchmarkFigureSweep measures the wall-clock of the Fig. 7-10/14
// figure-reproduction sweep (profile sweeps + the workload x scheme
// grid) at increasing worker counts:
//
//	go test ./internal/experiments -bench FigureSweep -benchtime 1x
//
// Every iteration builds a fresh harness with no disk cache so the
// profile sweeps are measured, not memoised. The grid is
// embarrassingly parallel — tasks share no state and never block on
// each other — so on a multi-core machine the expected scaling is
// near-linear until workers exceed cores (>= 2x at 4 workers on >= 4
// cores). On a single-core machine the worker counts roughly tie
// (interleaving concurrent simulations costs a few percent in
// scheduling and allocation pressure), which bounds the engine's
// overhead. Results are bit-identical at every worker count — see
// TestPerformanceBitIdenticalAcrossWorkers.
func BenchmarkFigureSweep(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h := NewHarness(subsetOptions(workers, 0))
				sum, err := h.Performance()
				if err != nil {
					b.Fatal(err)
				}
				if len(sum.Rows) == 0 {
					b.Fatal("empty summary")
				}
			}
		})
	}
}

// BenchmarkSweepPooledGPU compares the worker-pinned GPU pool against
// the old fresh-GPU-per-grid-point pattern on one kernel's profile
// sweep:
//
//	go test ./internal/experiments -bench SweepPooledGPU -benchtime 3x
//
// The results are bit-identical (TestPooledSweepMatchesFresh); what
// moves is allocation churn. The sweep uses the default experiment
// platform (8 SMs with a proportionally scaled L2) at the evaluation
// grid resolution — ~90 grid points — over a short kernel, the regime
// large sweep campaigns live in (many points, bounded per-point
// work). Building the memory hierarchy per point then dominates the
// allocation profile, and the pool recycles it: B/op drops by roughly
// grid-size over worker-count (the per-SM tag stores, warp slots,
// MSHR files, L2 banks and DRAM servers are reused in place).
func BenchmarkSweepPooledGPU(b *testing.B) {
	cfg := config.Default().Scale(8)
	k := testutil.ThrashKernel("poolbench", 32, 4, 16)
	opts := profile.SweepOptions{StepN: 2, StepP: 2, Workers: 1}
	for _, mode := range []struct {
		name  string
		fresh bool
	}{
		{"pooled", false},
		{"fresh-per-point", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			o := opts
			o.FreshGPUs = mode.fresh
			for i := 0; i < b.N; i++ {
				pr, err := profile.Sweep(cfg, k, o)
				if err != nil {
					b.Fatal(err)
				}
				if len(pr.Points) == 0 {
					b.Fatal("empty profile")
				}
			}
		})
	}
}

// BenchmarkDatasetPooledGPU compares the pooled training-feature runs
// against the old fresh-GPU-per-kernel pattern:
//
//	go test ./internal/experiments -bench DatasetPooledGPU -benchtime 3x
//
// The profile store is warmed first, so the measured BuildDataset
// iterations are dominated by the per-kernel feature measurement (two
// kernel runs each) — exactly the path Options routes through a
// sim.Pool. Results are bit-identical either way (the pool's reset is
// verified against fresh construction); what moves is allocation
// churn: pooled runs reuse one memory hierarchy across the whole
// training set, so B/op drops by roughly the kernel count.
func BenchmarkDatasetPooledGPU(b *testing.B) {
	// Short kernels on the full-size default platform: the regime where
	// building the memory hierarchy per kernel dominates the feature
	// runs' allocation profile (the same regime BenchmarkSweepPooledGPU
	// measures for sweeps). The admission floor drops to one cycle so
	// every kernel reaches the feature-measurement step.
	cfg := config.Default().Scale(8)
	params := config.DefaultPoise()
	params.MinTrainCycles = 1
	wl := &sim.Workload{Name: "dsbench"}
	for i := 0; i < 12; i++ {
		wl.Kernels = append(wl.Kernels, testutil.ThrashKernel(fmt.Sprintf("dsbench#%d", i), 32, 4, 16))
	}
	train := []*sim.Workload{wl}
	store := profile.Store{Dir: b.TempDir()}
	sweep := profile.SweepOptions{StepN: 12, StepP: 12, Workers: 1}
	if _, err := poise.BuildDataset(cfg, params, train, sweep, store, "bench"); err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name  string
		fresh bool
	}{
		{"pooled", false},
		{"fresh-per-kernel", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			o := sweep
			o.FreshGPUs = mode.fresh
			for i := 0; i < b.N; i++ {
				ds, err := poise.BuildDataset(cfg, params, train, o, store, "bench")
				if err != nil {
					b.Fatal(err)
				}
				if len(ds.Samples)+ds.RejectedCycles+ds.RejectedHitRate+ds.RejectedSpeedup == 0 {
					b.Fatal("empty dataset")
				}
			}
		})
	}
}

// BenchmarkPrunedSweep compares the adaptive coarse-to-fine sweep
// against the exhaustive grid on one kernel's profile at the default
// evaluation resolution:
//
//	go test ./internal/experiments -bench PrunedSweep -benchtime 3x
//
// The pruned sweep must simulate well under half of the ~80-point
// grid (the points/op and grid-points/op metrics make the ratio
// explicit) and proportionally less wall-clock and allocation, while
// selecting exactly the same Static-Best / SWL / scored tuples — the
// property TestPrunedMatchesExhaustiveOnCatalogue asserts across the
// whole catalogue.
func BenchmarkPrunedSweep(b *testing.B) {
	// The same platform and kernel scale the catalogue equivalence test
	// verifies tuples on: a structured solution space, so the bench
	// shows genuine pruning rather than a flat-space escalation.
	cfg := config.Default().Scale(2)
	k := shrinkKernel(workloads.NewCatalogue(workloads.Small).Must("ii").Kernels[0], 24, 24)
	opts := profile.SweepOptions{StepN: 2, StepP: 2, Workers: 1}
	b.Run("exhaustive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pr, err := profile.Sweep(cfg, k, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(pr.Points)), "points/op")
		}
	})
	b.Run("pruned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pr, stats, err := profile.PrunedSweep(cfg, k, opts)
			if err != nil {
				b.Fatal(err)
			}
			if len(pr.Points) != stats.Simulated {
				b.Fatal("stats disagree with the profile")
			}
			b.ReportMetric(float64(stats.Simulated), "points/op")
			b.ReportMetric(float64(stats.GridPoints), "grid-points/op")
			b.ReportMetric(100*stats.Fraction(), "%grid/op")
		}
	})
}

// BenchmarkTableIIISweep covers the coarser per-workload fan-out shape
// (one task = two whole-workload simulations).
func BenchmarkTableIIISweep(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h := NewHarness(subsetOptions(workers, 0))
				rows, err := h.TableIII()
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) == 0 {
					b.Fatal("empty table")
				}
			}
		})
	}
}
