package experiments

import (
	"fmt"
	"testing"
)

// BenchmarkFigureSweep measures the wall-clock of the Fig. 7-10/14
// figure-reproduction sweep (profile sweeps + the workload x scheme
// grid) at increasing worker counts:
//
//	go test ./internal/experiments -bench FigureSweep -benchtime 1x
//
// Every iteration builds a fresh harness with no disk cache so the
// profile sweeps are measured, not memoised. The grid is
// embarrassingly parallel — tasks share no state and never block on
// each other — so on a multi-core machine the expected scaling is
// near-linear until workers exceed cores (>= 2x at 4 workers on >= 4
// cores). On a single-core machine the worker counts roughly tie
// (interleaving concurrent simulations costs a few percent in
// scheduling and allocation pressure), which bounds the engine's
// overhead. Results are bit-identical at every worker count — see
// TestPerformanceBitIdenticalAcrossWorkers.
func BenchmarkFigureSweep(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h := NewHarness(subsetOptions(workers, 0))
				sum, err := h.Performance()
				if err != nil {
					b.Fatal(err)
				}
				if len(sum.Rows) == 0 {
					b.Fatal("empty summary")
				}
			}
		})
	}
}

// BenchmarkTableIIISweep covers the coarser per-workload fan-out shape
// (one task = two whole-workload simulations).
func BenchmarkTableIIISweep(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h := NewHarness(subsetOptions(workers, 0))
				rows, err := h.TableIII()
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) == 0 {
					b.Fatal("empty table")
				}
			}
		})
	}
}
