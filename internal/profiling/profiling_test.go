package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name    string
		flags   Flags
		wantErr bool
	}{
		{"disabled", Flags{}, false},
		{"cpu-only", Flags{CPUProfile: "cpu.prof"}, false},
		{"mem-only", Flags{MemProfile: "mem.prof"}, false},
		{"both-distinct", Flags{CPUProfile: "cpu.prof", MemProfile: "mem.prof"}, false},
		{"same-file", Flags{CPUProfile: "p.prof", MemProfile: "p.prof"}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.flags.Validate()
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate(%+v) = %v, wantErr %v", tc.flags, err, tc.wantErr)
			}
		})
	}
}

func TestStartDisabledIsNoOp(t *testing.T) {
	stop, err := Start(Flags{})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	f := Flags{
		CPUProfile: filepath.Join(dir, "cpu.prof"),
		MemProfile: filepath.Join(dir, "mem.prof"),
	}
	stop, err := Start(f)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Some work so the profiles have something to record.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	for _, p := range []string{f.CPUProfile, f.MemProfile} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s missing: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestStartRejectsInvalidFlags(t *testing.T) {
	if _, err := Start(Flags{CPUProfile: "x", MemProfile: "x"}); err == nil {
		t.Fatal("Start accepted -cpuprofile == -memprofile")
	}
}

func TestStartRejectsUnwritablePath(t *testing.T) {
	if _, err := Start(Flags{CPUProfile: filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.prof")}); err == nil {
		t.Fatal("Start accepted an uncreatable cpu profile path")
	}
}
