// Package profiling wires the standard -cpuprofile/-memprofile flags
// into the CLIs. The simulator's performance work (the ready-queue
// cycle engine, the pooled GPU) is benchmark-driven; these flags make
// the same pprof workflow available on real campaign runs without
// rebuilding the binaries as tests.
package profiling

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the optional profile outputs of a CLI run. Zero values
// mean "no profiling" and cost nothing.
type Flags struct {
	CPUProfile string // write a CPU profile to this file
	MemProfile string // write a heap profile to this file on exit
}

// Validate checks the flag combination without touching the
// filesystem, so the CLIs can reject bad invocations before doing any
// work (and tests can cover the rules without running a profile).
func (f Flags) Validate() error {
	if f.CPUProfile != "" && f.CPUProfile == f.MemProfile {
		return errors.New("-cpuprofile and -memprofile must name different files")
	}
	return nil
}

// Start begins CPU profiling when requested and returns a stop
// function that finalises the CPU profile and writes the heap profile.
// The stop function must run on every exit path that should produce
// usable profiles (defer it right after Start).
func Start(f Flags) (stop func() error, err error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	var cpuOut *os.File
	if f.CPUProfile != "" {
		cpuOut, err = os.Create(f.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuOut); err != nil {
			cpuOut.Close()
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuOut != nil {
			pprof.StopCPUProfile()
			if err := cpuOut.Close(); err != nil {
				return fmt.Errorf("close cpu profile: %w", err)
			}
		}
		if f.MemProfile != "" {
			out, err := os.Create(f.MemProfile)
			if err != nil {
				return fmt.Errorf("create mem profile: %w", err)
			}
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(out); err != nil {
				out.Close()
				return fmt.Errorf("write mem profile: %w", err)
			}
			if err := out.Close(); err != nil {
				return fmt.Errorf("close mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
