package poise

import (
	"math"
	"testing"

	"poise/internal/config"
	"poise/internal/sim"
	"poise/internal/testutil"
)

// defaultScaled4 is the 4-SM platform with experiment-like contention.
func defaultScaled4() config.Config { return config.Default().Scale(4) }

// throttleWeights predicts a constant (4, 2) for any feature vector —
// enough to verify the HIE plumbing without a trained model.
func throttleWeights(n, p float64) Weights {
	var w Weights
	w.Alpha[NumFeatures-1] = math.Log(n)
	w.Beta[NumFeatures-1] = math.Log(p)
	return w
}

func TestHIERunsAndDecides(t *testing.T) {
	k := testutil.ThrashKernel("hie", 20, 300, 8)
	pol := NewPolicy(testutil.TinyParams(), throttleWeights(4, 2))
	g, err := sim.New(testutil.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	g.TraceTuples = true
	res, err := g.Run(k, pol, sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	preds := 0
	for _, ev := range res.TupleLog {
		if ev.Predicted {
			preds++
		}
	}
	if preds == 0 {
		t.Fatal("HIE never produced a prediction")
	}
	if _, _, _, ok := pol.Displacement(); !ok {
		t.Fatal("displacement statistics missing after a run")
	}
}

func TestHIEPureInference(t *testing.T) {
	k := testutil.ThrashKernel("hie-nols", 20, 200, 8)
	pol := NewPolicy(testutil.TinyParams(), throttleWeights(4, 2))
	pol.DisableSearch = true
	g, err := sim.New(testutil.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	g.TraceTuples = true
	res, err := g.Run(k, pol, sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Without search, the displacement between prediction and final
	// tuple must be zero.
	dN, dP, dE, ok := pol.Displacement()
	if !ok {
		t.Fatal("no decisions recorded")
	}
	if dN != 0 || dP != 0 || dE != 0 {
		t.Fatalf("pure inference must have zero displacement: %v %v %v", dN, dP, dE)
	}
	// And the converged tuples must equal the constant prediction
	// (reverse-scaled to the tiny config's warp bound).
	sawRun := false
	for _, ev := range res.TupleLog {
		if ev.Predicted {
			sawRun = true
			wantN, wantP := throttleWeights(4, 2).PredictTuple(Vector{0, 0, 0, 0, 0, 0, 0, 1}, testutil.TinyConfig().WarpsPerSched)
			if ev.N != wantN || ev.P != wantP {
				t.Fatalf("prediction (%d,%d), want (%d,%d)", ev.N, ev.P, wantN, wantP)
			}
		}
	}
	if !sawRun {
		t.Fatal("no predictions logged")
	}
}

func TestHIEComputeIntensiveCutoff(t *testing.T) {
	// A kernel with In above Imax must run at maximum warps: the HIE
	// detects it during the base sample and skips prediction entirely.
	k := testutil.ComputeKernel("hie-compute", 60, 8)
	params := testutil.TinyParams()
	pol := NewPolicy(params, throttleWeights(2, 1)) // would throttle hard if consulted
	g, err := sim.New(testutil.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	g.TraceTuples = true
	res, err := g.Run(k, pol, sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range res.TupleLog {
		if ev.Predicted {
			t.Fatal("compute-intensive kernel must not reach prediction")
		}
	}
	// Performance must stay close to GTO (paper Fig. 16: ~1.6% mean
	// overhead; allow a small tolerance on the tiny config).
	gto := testutil.RunTiny(k, sim.GTO{})
	if res.IPC < gto.IPC*0.93 {
		t.Fatalf("cut-off failed to protect a compute kernel: %.3f vs GTO %.3f",
			res.IPC, gto.IPC)
	}
}

func TestHIEBeatsGTOOnThrashKernel(t *testing.T) {
	// End-to-end: with a reasonable prediction anywhere near the
	// optimum, prediction + local search must beat the GTO baseline on
	// a strongly thrash-limited kernel. The 4-SM configuration keeps
	// the experiment platform's SM-to-memory contention ratios (the
	// 2-SM tiny config has a nearly flat {N, p} landscape).
	cfg := defaultScaled4()
	k := testutil.ThrashKernel("hie-win", 20, 300, 16)
	run := func(p sim.Policy) float64 {
		g, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := g.Run(k, p, sim.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res.IPC
	}
	gto := run(sim.GTO{})
	// Windows scaled 5x (not the tests' usual 20x): probe warmups must
	// still be long enough to re-warm a full-size L1 between tuples.
	pol := NewPolicy(config.DefaultPoise().ScaleTiming(5), throttleWeights(6, 3))
	got := run(pol)
	if got <= gto*1.1 {
		t.Fatalf("Poise %.3f did not clearly beat GTO %.3f on a thrash kernel", got, gto)
	}
}

func TestTrainOnSyntheticDataset(t *testing.T) {
	// Train on a synthetic dataset with a known monotone structure:
	// kernels with a larger intra-warp gain (x5) want smaller N. The
	// fitted model must reproduce the ordering on fresh inputs.
	ds := &Dataset{}
	mk := func(gain float64, targetN, targetP float64) Sample {
		x := Vector{0.3, 0.5, 0.1, 0.1 + gain, gain * gain, 2 * gain * gain, 0.5, 1}
		return Sample{X: x, TargetN: targetN, TargetP: targetP, MaxN: 24}
	}
	for i := 0; i < 12; i++ {
		g := float64(i) / 12 // gain in [0,1)
		// Strong gain -> aggressive throttle target.
		n := 20 - 14*g
		p := 12 - 9*g
		ds.Samples = append(ds.Samples, mk(g, n, p))
	}
	w, err := Train(ds, TrainOptions{Drop: -1})
	if err != nil {
		t.Fatal(err)
	}
	low := mk(0.1, 0, 0)
	high := mk(0.9, 0, 0)
	nLow, _ := w.PredictTuple(low.X, 24)
	nHigh, _ := w.PredictTuple(high.X, 24)
	if nHigh >= nLow {
		t.Fatalf("model must throttle more at higher gain: N(low)=%d N(high)=%d", nLow, nHigh)
	}
}

func TestTrainAblationZeroesWeight(t *testing.T) {
	ds := &Dataset{}
	for i := 0; i < 10; i++ {
		x := Vector{0.1 * float64(i), 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 1}
		ds.Samples = append(ds.Samples, Sample{X: x, TargetN: float64(4 + i), TargetP: 3, MaxN: 24})
	}
	w, err := Train(ds, TrainOptions{Drop: 4})
	if err != nil {
		t.Fatal(err)
	}
	if w.Alpha[4] != 0 || w.Beta[4] != 0 {
		t.Fatal("dropped feature must have zero weight")
	}
	if w.Dropped != 4 {
		t.Fatalf("Dropped = %d", w.Dropped)
	}
}

func TestTrainEmptyDataset(t *testing.T) {
	if _, err := Train(&Dataset{}, TrainOptions{}); err == nil {
		t.Fatal("empty dataset must error")
	}
}

func TestMeasureFeaturesOnTinyKernel(t *testing.T) {
	k := testutil.ThrashKernel("feat", 20, 40, 4)
	x, err := MeasureFeatures(testutil.TinyConfig(), k)
	if err != nil {
		t.Fatal(err)
	}
	// h' (throttled) must exceed ho (thrashed baseline) on this kernel.
	if x[1] <= x[0] {
		t.Fatalf("expected h' > ho on a thrash kernel: %v", x)
	}
	if x[7] != 1 {
		t.Fatal("intercept missing")
	}
}

func TestDefaultWeightsEmbedded(t *testing.T) {
	w, ok := DefaultWeights()
	if !ok {
		t.Skip("no embedded weights in this build")
	}
	if err := w.Validate(); err != nil {
		t.Fatalf("embedded weights invalid: %v", err)
	}
	if w.TrainKernels < 10 {
		t.Fatalf("embedded model trained on only %d kernels", w.TrainKernels)
	}
}
