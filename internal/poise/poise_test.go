package poise

import (
	"math"
	"path/filepath"
	"testing"
	"testing/quick"

	"poise/internal/cache"
	"poise/internal/sm"
)

func TestFeaturesTableIIStructure(t *testing.T) {
	base := Window{HitRate: 0.3, IntraRate: 0.2, AML: 400, InstrPerLoad: 4}
	ref := Window{HitRate: 0.8, IntraRate: 0.7, AML: 150, InstrPerLoad: 4}
	x := Features(base, ref)
	if x[0] != 0.3 || x[1] != 0.8 || x[2] != 0.2 || x[3] != 0.7 {
		t.Fatalf("hit-rate features wrong: %v", x)
	}
	dEta := 0.5
	if math.Abs(x[4]-dEta*dEta) > 1e-12 {
		t.Fatalf("x5 = %v, want %v", x[4], dEta*dEta)
	}
	if math.Abs(x[5]-4*dEta*dEta) > 1e-12 {
		t.Fatalf("x6 = %v, want %v", x[5], 4*dEta*dEta)
	}
	lat := 150*0.2 - 400*0.7
	if math.Abs(x[6]-lat*lat/1e4) > 1e-9 {
		t.Fatalf("x7 = %v, want %v", x[6], lat*lat/1e4)
	}
	if x[7] != 1 {
		t.Fatal("x8 must be the constant intercept")
	}
}

func TestFeaturesInCapped(t *testing.T) {
	base := Window{HitRate: 0.5, IntraRate: 0.1, InstrPerLoad: 1e9}
	ref := Window{HitRate: 0.5, IntraRate: 0.6}
	x := Features(base, ref)
	if x[5] > maxIn {
		t.Fatalf("x6 = %v exceeds the In cap", x[5])
	}
}

func TestVectorMasked(t *testing.T) {
	v := Vector{1, 2, 3, 4, 5, 6, 7, 8}
	m := v.Masked(2)
	if m[2] != 0 || m[3] != 4 {
		t.Fatalf("Masked wrong: %v", m)
	}
	if v.Masked(-1) != v || v.Masked(99) != v {
		t.Fatal("out-of-range mask must be a no-op")
	}
}

func TestWindowFrom(t *testing.T) {
	l1 := cache.Stats{Accesses: 100, Hits: 40, IntraWarpHits: 30}
	c := sm.Counters{Instructions: 600, Loads: 100, AMLSum: 3000, AMLCount: 10}
	w := WindowFrom(l1, c)
	if w.HitRate != 0.4 || w.IntraRate != 0.3 || w.AML != 300 || w.InstrPerLoad != 6 {
		t.Fatalf("WindowFrom wrong: %+v", w)
	}
}

func TestScaleTargetAndReverse(t *testing.T) {
	// With the full 24 warps available, scaling is the identity.
	if got := ScaleTarget(10, 24); got != 10 {
		t.Fatalf("ScaleTarget(10,24) = %v", got)
	}
	// A 12-warp kernel's target 6 scales to 12 in the 24-space.
	if got := ScaleTarget(6, 12); got != 12 {
		t.Fatalf("ScaleTarget(6,12) = %v", got)
	}
	// Reverse scaling round-trips within rounding for every (v, maxN).
	f := func(v, maxN uint8) bool {
		m := int(maxN%24) + 1
		val := int(v)%m + 1
		s := ScaleTarget(val, m)
		back := reverseScale(s, m)
		d := back - val
		if d < 0 {
			d = -d
		}
		return d <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictTupleClamps(t *testing.T) {
	var w Weights
	// Huge positive weights: prediction must clamp to maxN and p <= N.
	for i := range w.Alpha {
		w.Alpha[i] = 10
		w.Beta[i] = 20
	}
	x := Vector{1, 1, 1, 1, 1, 1, 1, 1}
	n, p := w.PredictTuple(x, 24)
	if n != 24 || p != 24 {
		t.Fatalf("clamp high failed: (%d,%d)", n, p)
	}
	for i := range w.Alpha {
		w.Alpha[i] = -10
		w.Beta[i] = -10
	}
	n, p = w.PredictTuple(x, 24)
	if n != 1 || p != 1 {
		t.Fatalf("clamp low failed: (%d,%d)", n, p)
	}
}

func TestWeightsSaveLoadValidate(t *testing.T) {
	w := Weights{TrainKernels: 5}
	w.Alpha[0] = 0.5
	w.Beta[7] = 1.5
	path := filepath.Join(t.TempDir(), "w.json")
	if err := w.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadWeights(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Alpha[0] != 0.5 || back.Beta[7] != 1.5 || back.TrainKernels != 5 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	var zero Weights
	if err := zero.Validate(); err == nil {
		t.Fatal("all-zero weights must be invalid")
	}
	bad := w
	bad.Alpha[1] = math.NaN()
	if err := bad.Validate(); err == nil {
		t.Fatal("NaN weights must be invalid")
	}
}

func TestAnalyticModelEquations(t *testing.T) {
	// Eq. 1: ceil growth in integer multiples of Lo.
	if got := TMem(32, 0.5, 100, 32); got != 100 {
		t.Fatalf("TMem = %v, want 100", got)
	}
	if got := TMem(33, 1.0, 100, 32); got != 200 {
		t.Fatalf("TMem ceil = %v, want 200", got)
	}
	// Eq. 2/3.
	if got := TBusy(10, 0.5, 4, 2); got != 40 {
		t.Fatalf("TBusy = %v", got)
	}
	if got := TStall(100, 40); got != 60 {
		t.Fatalf("TStall = %v", got)
	}
	if got := TStall(40, 100); got != 0 {
		t.Fatal("TStall must clamp at zero")
	}
	// Eq. 4/5 reduce to Eq. 1/2 when p == N.
	if TMemReduced(16, 16, 0.5, 0.9, 100, 32) != TMem(16, 0.5, 100, 32) {
		t.Fatal("TMemReduced(p=N) must equal TMem")
	}
	if TBusyReduced(16, 16, 0.6, 0.1, 4, 2) != TBusy(16, 0.6, 4, 2) {
		t.Fatal("TBusyReduced(p=N) must equal TBusy")
	}
}

func TestMuSpeedupCriterion(t *testing.T) {
	// A favourable tuple: big hit-rate gain for p warps, mild loss for
	// the rest, latency roughly unchanged — µ must exceed 1 and the
	// stall model must predict a speedup.
	good := ModelInput{
		N: 16, P: 2, Kmshr: 32, Tpipe: 4, Id: 3,
		Ho: 0.2, Hp: 0.9, Hnp: 0.25,
		Lo: 400, Lprime: 350,
	}
	if mu := good.Mu(); mu >= 0 && mu <= 1 {
		t.Fatalf("favourable tuple should have µ > 1 or negative denominator, got %v", mu)
	}
	if !good.SpeedupPredicted() {
		t.Fatal("stall model must predict speedup for the favourable tuple")
	}
	// An unfavourable tuple: hit rates collapse, latency explodes.
	bad := ModelInput{
		N: 16, P: 2, Kmshr: 32, Tpipe: 4, Id: 3,
		Ho: 0.6, Hp: 0.6, Hnp: 0.05,
		Lo: 200, Lprime: 500,
	}
	if bad.SpeedupPredicted() {
		t.Fatal("stall model must not predict speedup when locality collapses")
	}
}

func TestMuPNPMonotoneInHitGain(t *testing.T) {
	mk := func(hp float64) ModelInput {
		return ModelInput{
			N: 16, P: 2, Kmshr: 32, Tpipe: 4, Id: 3,
			Ho: 0.2, Hp: hp, Hnp: 0.2,
			Lo: 300, Lprime: 320,
		}
	}
	lo := mk(0.4).MuPNP()
	hi := mk(0.9).MuPNP()
	if hi <= lo {
		t.Fatalf("µ_p/np must grow with the hit-rate gain: %v -> %v", lo, hi)
	}
}

func TestActiveColumns(t *testing.T) {
	cols := activeColumns(-1)
	if len(cols) != NumFeatures {
		t.Fatalf("no drop: %d cols", len(cols))
	}
	cols = activeColumns(3)
	if len(cols) != NumFeatures-1 {
		t.Fatalf("drop: %d cols", len(cols))
	}
	for _, c := range cols {
		if c == 3 {
			t.Fatal("dropped column still present")
		}
	}
}

func TestEvaluateOffline(t *testing.T) {
	var w Weights
	w.Alpha[7] = math.Log(8) // predicts N = 8 for any input
	w.Beta[7] = math.Log(4)
	samples := []Sample{
		{X: Vector{0, 0, 0, 0, 0, 0, 0, 1}, RawN: 8, RawP: 4, MaxN: 24},
		{X: Vector{0, 0, 0, 0, 0, 0, 0, 1}, RawN: 16, RawP: 8, MaxN: 24},
	}
	errN, errP := EvaluateOffline(w, samples)
	if errN != 0.25 || errP != 0.25 {
		t.Fatalf("offline error = %v/%v, want 0.25/0.25", errN, errP)
	}
	if n, p := EvaluateOffline(w, nil); n != 0 || p != 0 {
		t.Fatal("empty set must report zero")
	}
}
