package poise

import (
	"fmt"

	"poise/internal/cache"
	"poise/internal/sm"
)

// NumFeatures is the length of the feature vector X (paper Table II):
// seven measured features plus the constant intercept x8.
const NumFeatures = 8

// Vector is one feature vector X.
type Vector [NumFeatures]float64

// FeatureNames labels the features in Table II order.
var FeatureNames = [NumFeatures]string{
	"ho", "h'", "eta_o", "eta'", "(eta'-eta_o)^2", "In*(eta'-eta_o)^2",
	"(L'm'-moLo)^2/1e4", "1",
}

// Window is one feature-sampling window: the per-SM counter deltas
// taken over Tfeature cycles at a fixed warp-tuple. The paper's HIE
// budgets seven 32-bit performance counters per SM for this.
type Window struct {
	HitRate      float64 // net L1 hit rate h
	IntraRate    float64 // intra-warp hit rate eta (intra hits / accesses)
	AML          float64 // average memory latency of L1 misses
	InstrPerLoad float64 // dynamic In
}

// WindowFrom converts raw counter deltas into a Window.
func WindowFrom(l1 cache.Stats, c sm.Counters) Window {
	return Window{
		HitRate:      l1.HitRate(),
		IntraRate:    l1.IntraWarpHitRate(),
		AML:          c.AML(),
		InstrPerLoad: c.InstrPerLoad(),
	}
}

// maxIn caps the dynamic In used inside x6 so the feature stays in a
// sane numeric range; kernels with In beyond the compute-intensive
// cut-off never reach feature evaluation anyway.
const maxIn = 256

// Features assembles the Table II feature vector from the baseline
// window (sampled at the maximum tuple) and the reference window
// (sampled at (1, 1)).
func Features(base, ref Window) Vector {
	ho := base.HitRate
	hPrime := ref.HitRate
	etaO := base.IntraRate
	etaPrime := ref.IntraRate
	dEta := etaPrime - etaO
	in := base.InstrPerLoad
	if in > maxIn {
		in = maxIn
	}
	mo := 1 - ho
	mPrime := 1 - hPrime
	lat := ref.AML*mPrime - base.AML*mo

	return Vector{
		ho,
		hPrime,
		etaO,
		etaPrime,
		dEta * dEta,
		in * dEta * dEta,
		lat * lat / 1e4,
		1,
	}
}

// Masked returns a copy of v with the given feature index zeroed, used
// by the Fig. 13 ablation study (a zero weight and a zero feature are
// equivalent for the link function; training handles the column drop).
func (v Vector) Masked(drop int) Vector {
	if drop < 0 || drop >= NumFeatures {
		return v
	}
	out := v
	out[drop] = 0
	return out
}

func (v Vector) String() string {
	s := "["
	for i, x := range v {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%.4g", FeatureNames[i], x)
	}
	return s + "]"
}
