package poise

import (
	"errors"
	"fmt"

	"poise/internal/config"
	"poise/internal/glm"
	"poise/internal/linalg"
	"poise/internal/profile"
	"poise/internal/sim"
	"poise/internal/trace"
)

// Sample is one training observation: the feature vector of a profiled
// kernel and its scored, scaled target warp-tuple.
type Sample struct {
	Kernel string

	X Vector

	// Targets in the uniform 24-warp training space (paper §V-C).
	TargetN float64
	TargetP float64

	// Raw (unscaled) target and bookkeeping for reporting.
	RawN, RawP   int
	MaxN         int
	BestSpeedup  float64 // speedup at the profile's global optimum
	ScoreSpeedup float64 // speedup at the scored target
}

// Dataset is the training set assembled by BuildDataset.
type Dataset struct {
	Samples []Sample
	// Rejected counts kernels dropped by the Table IV admission
	// thresholds, by reason.
	RejectedSpeedup int
	RejectedCycles  int
	RejectedHitRate int
}

// BuildDataset profiles every kernel of the training workloads on cfg,
// applies the admission thresholds, scores the solution space (Eq. 12),
// scales the targets, and measures the feature vector per kernel by
// running the kernel at the baseline tuple and at (1, 1). The feature
// runs draw their GPU from a reset-verified sim.Pool — one memory
// hierarchy reused across the whole training set instead of one
// allocation per kernel — unless sweep.FreshGPUs asks for the
// pre-pool behaviour (results are bit-identical either way; see
// BenchmarkDatasetPooledGPU for the allocation delta).
func BuildDataset(cfg config.Config, params config.PoiseParams, train []*sim.Workload, sweep profile.SweepOptions, store profile.Store, tag string) (*Dataset, error) {
	get := func() (*sim.GPU, error) { return sim.New(cfg) }
	put := func(*sim.GPU) {}
	if !sweep.FreshGPUs {
		pool, err := sim.NewPool(cfg)
		if err != nil {
			return nil, err
		}
		get, put = pool.Get, pool.Put
	}
	ds := &Dataset{}
	for _, w := range train {
		for _, k := range w.Kernels {
			s, reject, err := buildSample(cfg, params, k, sweep, store, tag, get, put)
			if err != nil {
				return nil, fmt.Errorf("poise: training kernel %s: %w", k.Name, err)
			}
			switch reject {
			case rejectNone:
				ds.Samples = append(ds.Samples, s)
			case rejectSpeedup:
				ds.RejectedSpeedup++
			case rejectCycles:
				ds.RejectedCycles++
			case rejectHitRate:
				ds.RejectedHitRate++
			}
		}
	}
	return ds, nil
}

type rejectReason int

const (
	rejectNone rejectReason = iota
	rejectSpeedup
	rejectCycles
	rejectHitRate
)

func buildSample(cfg config.Config, params config.PoiseParams, k *trace.Kernel, sweep profile.SweepOptions, store profile.Store, tag string,
	get func() (*sim.GPU, error), put func(*sim.GPU)) (Sample, rejectReason, error) {
	pr, err := store.LoadOrSweep(tag, cfg, k, sweep)
	if err != nil {
		return Sample{}, rejectNone, err
	}
	// Table IV admission thresholds. Deviation from the paper: kernels
	// whose best tuple gives no speedup are *admitted* rather than
	// rejected — for them the scored target is the baseline tuple
	// itself, which is exactly the "do not throttle" signal the
	// regression needs to avoid over-throttling TLP-loving kernels
	// (our synthetic training set is small enough that dropping them
	// starves the model of that signature; the paper's 277 CUDA kernels
	// covered it incidentally).
	best := pr.Best()
	if pr.BaselineCycles < params.MinTrainCycles {
		return Sample{}, rejectCycles, nil
	}
	ref, ok := pr.Lookup(1, 1)
	if !ok || ref.HitRate <= params.MinTrainHitRate {
		return Sample{}, rejectHitRate, nil
	}

	target, _ := pr.BestScore(params)
	g, err := get()
	if err != nil {
		return Sample{}, rejectNone, err
	}
	x, err := MeasureFeaturesOn(g, k)
	put(g)
	if err != nil {
		return Sample{}, rejectNone, err
	}
	return Sample{
		Kernel:       k.Name,
		X:            x,
		TargetN:      ScaleTarget(target.N, pr.MaxN),
		TargetP:      ScaleTarget(target.P, pr.MaxN),
		RawN:         target.N,
		RawP:         target.P,
		MaxN:         pr.MaxN,
		BestSpeedup:  best.Speedup,
		ScoreSpeedup: target.Speedup,
	}, rejectNone, nil
}

// MeasureFeatures runs kernel k twice — at the baseline tuple and at
// (1, 1) — and assembles the Table II feature vector from whole-run
// aggregates, the offline analogue of the HIE's two sampling windows.
func MeasureFeatures(cfg config.Config, k *trace.Kernel) (Vector, error) {
	g, err := sim.New(cfg)
	if err != nil {
		return Vector{}, err
	}
	return MeasureFeaturesOn(g, k)
}

// MeasureFeaturesOn is MeasureFeatures on a caller-supplied GPU —
// typically one drawn from a sim.Pool, whose reset-to-fresh invariant
// makes the measured features identical to a fresh construction's. The
// GPU must be in its fresh (or reset) state.
func MeasureFeaturesOn(g *sim.GPU, k *trace.Kernel) (Vector, error) {
	maxN := g.Cfg.WarpsPerSched
	if k.MaxWarpsPerSched > 0 && k.MaxWarpsPerSched < maxN {
		maxN = k.MaxWarpsPerSched
	}
	baseRes, err := g.Run(k, sim.Fixed{N: maxN, P: maxN}, sim.RunOptions{})
	if err != nil {
		return Vector{}, err
	}
	refRes, err := g.Run(k, sim.Fixed{N: 1, P: 1}, sim.RunOptions{})
	if err != nil {
		return Vector{}, err
	}
	base := Window{
		HitRate:      baseRes.L1.HitRate(),
		IntraRate:    baseRes.L1.IntraWarpHitRate(),
		AML:          baseRes.AML,
		InstrPerLoad: instrPerLoad(baseRes),
	}
	ref := Window{
		HitRate:      refRes.L1.HitRate(),
		IntraRate:    refRes.L1.IntraWarpHitRate(),
		AML:          refRes.AML,
		InstrPerLoad: instrPerLoad(refRes),
	}
	return Features(base, ref), nil
}

func instrPerLoad(r sim.KernelResult) float64 {
	if r.Loads == 0 {
		return float64(r.Instructions)
	}
	return float64(r.Instructions) / float64(r.Loads)
}

// TrainOptions tunes Train.
type TrainOptions struct {
	// Drop ablates one feature index (retraining with 7 features,
	// Fig. 13); -1 trains on the full vector.
	Drop int
	// GLM passes through to the regression fitter.
	GLM glm.Options
}

// Train fits the two Negative Binomial link functions on the dataset
// and returns the learned weights (the reproduction's Table II).
func Train(ds *Dataset, opts TrainOptions) (Weights, error) {
	if len(ds.Samples) == 0 {
		return Weights{}, errors.New("poise: empty training set")
	}
	cols := activeColumns(opts.Drop)
	x := linalg.NewMat(len(ds.Samples), len(cols))
	yN := make([]float64, len(ds.Samples))
	yP := make([]float64, len(ds.Samples))
	for i, s := range ds.Samples {
		for j, c := range cols {
			x.Set(i, j, s.X[c])
		}
		yN[i] = s.TargetN
		yP[i] = s.TargetP
	}

	modelN, err := glm.Fit(glm.NegativeBinomial, x, yN, opts.GLM)
	if err != nil {
		return Weights{}, fmt.Errorf("poise: fitting N model: %w", err)
	}
	modelP, err := glm.Fit(glm.NegativeBinomial, x, yP, opts.GLM)
	if err != nil {
		return Weights{}, fmt.Errorf("poise: fitting p model: %w", err)
	}

	w := Weights{
		DispersionN:  modelN.Alpha,
		DispersionP:  modelP.Alpha,
		TrainKernels: len(ds.Samples),
		PseudoR2N:    modelN.PseudoR2(),
		PseudoR2P:    modelP.PseudoR2(),
		Dropped:      opts.Drop,
	}
	if opts.Drop < 0 || opts.Drop >= NumFeatures {
		w.Dropped = -1
	}
	for j, c := range cols {
		w.Alpha[c] = modelN.Coef[j]
		w.Beta[c] = modelP.Coef[j]
	}
	return w, nil
}

// activeColumns returns the feature indices kept after an ablation.
func activeColumns(drop int) []int {
	var cols []int
	for i := 0; i < NumFeatures; i++ {
		if i == drop {
			continue
		}
		cols = append(cols, i)
	}
	return cols
}

// EvaluateOffline measures the paper's §VII-B offline prediction-error
// metric: for each (held-out) sample, the relative error between the
// predicted tuple and the profiled target, averaged over the set.
func EvaluateOffline(w Weights, samples []Sample) (errN, errP float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	var sn, sp float64
	for _, s := range samples {
		n, p := w.PredictTuple(s.X, s.MaxN)
		sn += relErr(float64(n), float64(s.RawN))
		sp += relErr(float64(p), float64(s.RawP))
	}
	return sn / float64(len(samples)), sp / float64(len(samples))
}

func relErr(got, want float64) float64 {
	if want == 0 {
		want = 1
	}
	d := got - want
	if d < 0 {
		d = -d
	}
	return d / want
}
