package poise

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
)

// Weights is a trained Poise model: one weight per feature for each of
// the two link functions ln(N) = alpha.X and ln(p) = beta.X (paper
// Eq. 13 / Table II). The compiler ships these 64 bytes of state to
// the GPU via constant memory; the HIE evaluates the two dot products
// once per inference epoch.
type Weights struct {
	Alpha [NumFeatures]float64 `json:"alpha"` // weights for output N
	Beta  [NumFeatures]float64 `json:"beta"`  // weights for output p

	// Training metadata (not used at inference time).
	DispersionN  float64 `json:"dispersion_n"` // NB dispersion of the N model
	DispersionP  float64 `json:"dispersion_p"`
	TrainKernels int     `json:"train_kernels"` // admitted kernels
	PseudoR2N    float64 `json:"pseudo_r2_n"`
	PseudoR2P    float64 `json:"pseudo_r2_p"`
	Dropped      int     `json:"dropped"` // ablated feature index, -1 = none
}

// hwMaxWarps is the per-scheduler warp bound the training targets are
// scaled to (paper §V-C): 24 on the baseline hardware.
const hwMaxWarps = 24

// Predict evaluates the link functions on x and returns the raw
// (scaled-space) predictions before reverse scaling.
func (w Weights) Predict(x Vector) (nScaled, pScaled float64) {
	var etaN, etaP float64
	for i := 0; i < NumFeatures; i++ {
		etaN += w.Alpha[i] * x[i]
		etaP += w.Beta[i] * x[i]
	}
	return math.Exp(clamp(etaN, -10, 10)), math.Exp(clamp(etaP, -10, 10))
}

// PredictTuple predicts a concrete warp-tuple for a kernel whose
// scheduler exposes maxN warps: the scaled-space prediction is
// reverse-scaled (paper §VI-A), rounded and clamped to 1 <= p <= N <=
// maxN.
func (w Weights) PredictTuple(x Vector, maxN int) (n, p int) {
	ns, ps := w.Predict(x)
	n = reverseScale(ns, maxN)
	p = reverseScale(ps, maxN)
	if p > n {
		p = n
	}
	return n, p
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ScaleTarget maps a profiled target value (found with maxN warps
// available) into the uniform 24-warp training space.
func ScaleTarget(v, maxN int) float64 {
	if maxN <= 0 {
		maxN = hwMaxWarps
	}
	s := float64(v) * hwMaxWarps / float64(maxN)
	if s < 1 {
		s = 1
	}
	if s > hwMaxWarps {
		s = hwMaxWarps
	}
	return s
}

// reverseScale maps a scaled-space prediction back to the kernel's
// actual warp bound.
func reverseScale(scaled float64, maxN int) int {
	if maxN <= 0 {
		maxN = hwMaxWarps
	}
	v := int(math.Round(scaled * float64(maxN) / hwMaxWarps))
	if v < 1 {
		v = 1
	}
	if v > maxN {
		v = maxN
	}
	return v
}

// Save writes the weights as JSON (the artefact cmd/poisetrain emits;
// in the paper's deployment story this is what the compiler embeds).
func (w Weights) Save(path string) error {
	data, err := json.MarshalIndent(w, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadWeights reads and validates weights saved by Save. Every load
// site gets the same fail-fast guarantee: a file that decodes but
// could not have come from training (wrong vector shape, NaN/Inf
// coefficients, all zeros) is an error here, not a latent mispredict
// at inference time.
func LoadWeights(path string) (Weights, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Weights{}, err
	}
	w, err := ParseWeights(data)
	if err != nil {
		return Weights{}, fmt.Errorf("%w (loading %s)", err, path)
	}
	return w, nil
}

// ParseWeights decodes a weights JSON document and validates it. The
// coefficient vectors are decoded as slices first so a document with
// the wrong number of features is a shape error instead of a silent
// truncation (encoding/json drops surplus array elements when
// decoding straight into a fixed-size array).
func ParseWeights(data []byte) (Weights, error) {
	var wire struct {
		Alpha        []float64 `json:"alpha"`
		Beta         []float64 `json:"beta"`
		DispersionN  float64   `json:"dispersion_n"`
		DispersionP  float64   `json:"dispersion_p"`
		TrainKernels int       `json:"train_kernels"`
		PseudoR2N    float64   `json:"pseudo_r2_n"`
		PseudoR2P    float64   `json:"pseudo_r2_p"`
		Dropped      int       `json:"dropped"`
	}
	if err := json.Unmarshal(data, &wire); err != nil {
		return Weights{}, fmt.Errorf("poise: corrupt weights: %w", err)
	}
	if len(wire.Alpha) != NumFeatures || len(wire.Beta) != NumFeatures {
		return Weights{}, fmt.Errorf("poise: weights shape alpha[%d]/beta[%d], want %d features each",
			len(wire.Alpha), len(wire.Beta), NumFeatures)
	}
	w := Weights{
		DispersionN:  wire.DispersionN,
		DispersionP:  wire.DispersionP,
		TrainKernels: wire.TrainKernels,
		PseudoR2N:    wire.PseudoR2N,
		PseudoR2P:    wire.PseudoR2P,
		Dropped:      wire.Dropped,
	}
	copy(w.Alpha[:], wire.Alpha)
	copy(w.Beta[:], wire.Beta)
	if err := w.Validate(); err != nil {
		return Weights{}, err
	}
	return w, nil
}

// Validate rejects weight sets that cannot have come from training.
func (w Weights) Validate() error {
	all0 := true
	for i := range w.Alpha {
		if w.Alpha[i] != 0 || w.Beta[i] != 0 {
			all0 = false
		}
		if math.IsNaN(w.Alpha[i]) || math.IsInf(w.Alpha[i], 0) ||
			math.IsNaN(w.Beta[i]) || math.IsInf(w.Beta[i], 0) {
			return errors.New("poise: weights contain NaN/Inf")
		}
	}
	if all0 {
		return errors.New("poise: weights are all zero (untrained)")
	}
	for _, v := range [...]float64{w.DispersionN, w.DispersionP, w.PseudoR2N, w.PseudoR2P} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return errors.New("poise: weights metadata contains NaN/Inf")
		}
	}
	return nil
}
