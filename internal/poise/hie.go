package poise

import (
	"fmt"
	"math"

	"poise/internal/cache"
	"poise/internal/config"
	"poise/internal/sim"
	"poise/internal/sm"
	"poise/internal/trace"
)

// hieState enumerates the per-SM FSM of the hardware inference engine
// (paper §VI; the hardware budget is one 7-state FSM per SM).
type hieState int

const (
	stBaseWarm     hieState = iota // warming up at the baseline tuple
	stBaseSample                   // sampling features at the baseline tuple
	stRefWarm                      // warming up at (1, 1)
	stRefSample                    // sampling features at (1, 1)
	stSearchWarm                   // warming up at a local-search probe
	stSearchSample                 // sampling a local-search probe
	stRun                          // executing at the converged tuple
)

func (s hieState) String() string {
	switch s {
	case stBaseWarm:
		return "base-warmup"
	case stBaseSample:
		return "base-sample"
	case stRefWarm:
		return "ref-warmup"
	case stRefSample:
		return "ref-sample"
	case stSearchWarm:
		return "search-warmup"
	case stSearchSample:
		return "search-sample"
	case stRun:
		return "run"
	default:
		return fmt.Sprintf("hieState(%d)", int(s))
	}
}

// snapshot captures the cumulative counters of one SM at a window edge.
type snapshot struct {
	l1 cache.Stats
	c  sm.Counters
}

func snap(s *sm.SM) snapshot { return snapshot{l1: s.L1.Stats, c: s.C} }

// windowFrom converts the delta between two snapshots into a feature
// Window.
func windowFrom(a, b snapshot) Window {
	return WindowFrom(b.l1.Sub(a.l1), b.c.Sub(a.c))
}

// ipcSince returns instructions per cycle between a snapshot and now.
func ipcSince(a snapshot, s *sm.SM, cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	return float64(s.C.Instructions-a.c.Instructions) / float64(cycles)
}

// searchAxis identifies which knob the local search is optimising.
type searchAxis int

const (
	axisN searchAxis = iota
	axisP
)

// hie is the per-SM inference engine state.
type hie struct {
	state    hieState
	nextAt   int64
	epochEnd int64

	base    Window  // features sampled at the baseline tuple
	baseIPC float64 // IPC observed during the baseline feature window
	snapA   snapshot

	// Local search state (gradient ascent with stride halving).
	axis     searchAxis
	curN     int
	curP     int
	stride   int
	probe    int             // tuple position being sampled
	measured map[int]float64 // cache of measured IPCs along the active axis

	predN, predP int // raw prediction of this epoch (for displacement stats)

	// Run-phase accounting for the fallback guard: the IPC of the long
	// run window is the only unbiased signal (probe windows right after
	// a tuple switch ride on in-flight state).
	runSnap    snapshot
	runStartAt int64
	runN, runP int
	strikes    int
	checked    bool // interim run-phase check done for this epoch

	// Displacement bookkeeping across the kernel (Fig. 10).
	dispN, dispP, dispE float64
	decided             int
}

// Policy is Poise's runtime scheduler policy: one HIE per SM driving
// the modified GTO scheduler through prediction, local search and run
// phases each inference epoch.
type Policy struct {
	Params  config.PoiseParams
	Weights Weights
	// DisableSearch runs pure predictions (stride (0,0) of Fig. 11).
	DisableSearch bool
	// NoFallback disables the baseline-IPC guard. The guard is an
	// engineering extension over the paper: the HIE already measures
	// IPC at the maximum tuple during feature sampling, so when the
	// locally-searched tuple samples *worse* than that reference the
	// epoch runs at maximum warps instead. It bounds the damage of a
	// mispredicted throttle on TLP-loving kernels to roughly the
	// sampling overhead. Set NoFallback for paper-exact behaviour.
	NoFallback bool

	// Fallbacks counts epochs that reverted to the maximum tuple.
	Fallbacks int

	engines []*hie
	maxN    int
}

// NewPolicy builds the Poise policy with trained weights.
func NewPolicy(params config.PoiseParams, w Weights) *Policy {
	return &Policy{Params: params, Weights: w}
}

// Name implements sim.Policy.
func (p *Policy) Name() string { return "Poise" }

// Displacement reports the mean absolute displacement between the
// predicted and converged tuples along each axis, and the mean
// Euclidean distance, across all inference epochs of the last run —
// the paper's Fig. 10 metric.
func (p *Policy) Displacement() (dN, dP, euclid float64, ok bool) {
	var sn, sp, se float64
	n := 0
	for _, e := range p.engines {
		sn += e.dispN
		sp += e.dispP
		se += e.dispE
		n += e.decided
	}
	if n == 0 {
		return 0, 0, 0, false
	}
	return sn / float64(n), sp / float64(n), se / float64(n), true
}

// KernelStart implements sim.Policy.
func (p *Policy) KernelStart(g *sim.GPU, k *trace.Kernel) int64 {
	p.maxN = g.MaxN()
	p.engines = p.engines[:0]
	g.SetTupleAll(p.maxN, p.maxN)
	for i := 0; i < len(g.SMs); i++ {
		e := &hie{measured: map[int]float64{}}
		p.startEpoch(g, e, i, 0)
		p.engines = append(p.engines, e)
	}
	return 1 // engines manage their own next cycles from here
}

// KernelEnd implements sim.Policy.
func (p *Policy) KernelEnd(g *sim.GPU, now int64) {}

// Step implements sim.Policy.
func (p *Policy) Step(g *sim.GPU, now int64) int64 {
	next := sim.Never
	for i, e := range p.engines {
		if now >= e.nextAt {
			p.advance(g, e, i, now)
		}
		if e.nextAt < next {
			next = e.nextAt
		}
	}
	return next
}

// startEpoch begins a new inference epoch on SM i at cycle now.
func (p *Policy) startEpoch(g *sim.GPU, e *hie, i int, now int64) {
	e.state = stBaseWarm
	e.epochEnd = now + int64(p.Params.TPeriod)
	e.nextAt = now + int64(p.Params.TWarmup)
	g.SetTuple(i, p.maxN, p.maxN)
}

// advance runs one FSM transition for SM i.
func (p *Policy) advance(g *sim.GPU, e *hie, i int, now int64) {
	s := g.SMs[i]
	switch e.state {
	case stBaseWarm:
		e.snapA = snap(s)
		e.state = stBaseSample
		e.nextAt = now + int64(p.Params.TFeature)

	case stBaseSample:
		e.base = windowFrom(e.snapA, snap(s))
		e.baseIPC = ipcSince(e.snapA, s, int64(p.Params.TFeature))
		// Compute-intensive cut-off (paper §VI-A): kernels with In above
		// Imax run at maximum warps; skip prediction and search.
		if e.base.InstrPerLoad > float64(p.Params.IMax) {
			p.enterRun(g, e, i, p.maxN, p.maxN)
			return
		}
		// Fallback guard: after two epochs whose throttled run phase
		// underperformed the baseline window, pin the kernel to maximum
		// warps (prediction is not working for it).
		if !p.NoFallback && e.strikes >= 2 {
			p.enterRun(g, e, i, p.maxN, p.maxN)
			return
		}
		g.SetTuple(i, 1, 1)
		e.state = stRefWarm
		e.nextAt = now + int64(p.Params.TWarmup)

	case stRefWarm:
		e.snapA = snap(s)
		e.state = stRefSample
		e.nextAt = now + int64(p.Params.TFeature)

	case stRefSample:
		ref := windowFrom(e.snapA, snap(s))
		x := Features(e.base, ref)
		n, pp := p.Weights.PredictTuple(x, p.maxN)
		e.predN, e.predP = n, pp
		e.curN, e.curP = n, pp
		g.LogPrediction(i, n, pp)
		if p.DisableSearch || (p.Params.StrideN == 0 && p.Params.StrideP == 0) {
			p.finishSearch(g, e, i)
			return
		}
		// Begin the local search on the N axis.
		e.axis = axisN
		e.stride = p.Params.StrideN
		e.measured = map[int]float64{}
		if e.stride == 0 {
			// Search only the p axis (stride configs like (0, 4)).
			e.axis = axisP
			e.stride = p.Params.StrideP
		}
		p.searchNext(g, e, i, now)

	case stSearchWarm:
		e.snapA = snap(s)
		e.state = stSearchSample
		e.nextAt = now + int64(p.Params.TSearch)

	case stSearchSample:
		e.measured[e.probe] = ipcSince(e.snapA, s, int64(p.Params.TSearch))
		p.searchNext(g, e, i, now)

	case stRun:
		if now >= e.epochEnd {
			p.scoreRunPhase(e, s, now)
			p.startEpoch(g, e, i, now)
			return
		}
		// Interim fallback check: a throttled run phase that trails the
		// baseline window after a substantial unbiased sample reverts to
		// maximum warps for the rest of the epoch.
		if !e.checked {
			e.checked = true
			runIPC := ipcSince(e.runSnap, s, now-e.runStartAt)
			if e.baseIPC > 0 && runIPC < e.baseIPC {
				e.strikes++
				p.Fallbacks++
				p.enterRun(g, e, i, p.maxN, p.maxN)
				return
			}
		}
		e.nextAt = e.epochEnd
	}
}

// scoreRunPhase closes out an epoch's run window for the fallback
// guard: a throttled run phase that underperformed the epoch's baseline
// window earns a strike; a healthy one forgives an earlier strike.
func (p *Policy) scoreRunPhase(e *hie, s *sm.SM, now int64) {
	if p.NoFallback || e.runStartAt <= 0 || now <= e.runStartAt {
		return
	}
	if e.runN >= p.maxN && e.runP >= p.maxN {
		return // ran at the baseline tuple: nothing to judge
	}
	runIPC := ipcSince(e.runSnap, s, now-e.runStartAt)
	if e.baseIPC > 0 && runIPC < e.baseIPC {
		e.strikes++
		p.Fallbacks++
	} else if e.strikes > 0 {
		e.strikes--
	}
}

// enterRun pins a tuple for the rest of the epoch and opens the
// run-phase measurement window, scheduling the interim fallback check
// when the tuple is throttled.
func (p *Policy) enterRun(g *sim.GPU, e *hie, i, n, pp int) {
	g.SetTuple(i, n, pp)
	e.runN, e.runP = n, pp
	e.runSnap = snap(g.SMs[i])
	e.runStartAt = g.Now()
	e.state = stRun
	e.checked = true
	e.nextAt = e.epochEnd
	if p.NoFallback || (n >= p.maxN && pp >= p.maxN) {
		return
	}
	// Schedule the interim fallback check once the run phase has had
	// time to warm the cache at the new tuple (half the epoch): early
	// windows systematically under-measure throttled tuples.
	interim := int64(p.Params.TPeriod / 2)
	if g.Now()+interim < e.epochEnd {
		e.checked = false
		e.nextAt = g.Now() + interim
	}
}

// scheduleProbe steers SM i to a probe position on the active axis and
// starts its warmup.
func (p *Policy) scheduleProbe(g *sim.GPU, e *hie, i int, now int64, pos int) {
	n, pp := e.curN, e.curP
	if e.axis == axisN {
		n = pos
		if pp > n {
			pp = n
		}
	} else {
		pp = pos
	}
	g.SetTuple(i, n, pp)
	e.probe = pos
	e.state = stSearchWarm
	e.nextAt = now + int64(p.Params.TWarmup)
}

// searchNext implements the gradient-ascent step of paper §VI-B: probe
// the current point, then its two stride-neighbours; move to a better
// neighbour keeping the stride, or halve the stride, terminating at
// stride zero; then switch from the N axis to the p axis.
func (p *Policy) searchNext(g *sim.GPU, e *hie, i int, now int64) {
	cur := e.curN
	lo, hi := 1, p.maxN
	if e.axis == axisP {
		cur = e.curP
		hi = e.curN
	}
	// Ensure the current point is measured first.
	if _, ok := e.measured[cur]; !ok {
		p.scheduleProbe(g, e, i, now, cur)
		return
	}
	// Probe neighbours at the current stride.
	left, right := cur-e.stride, cur+e.stride
	if left >= lo {
		if _, ok := e.measured[left]; !ok {
			p.scheduleProbe(g, e, i, now, left)
			return
		}
	}
	if right <= hi {
		if _, ok := e.measured[right]; !ok {
			p.scheduleProbe(g, e, i, now, right)
			return
		}
	}
	// All positions of this round measured: move or shrink.
	curIPC := e.measured[cur]
	bestPos, bestIPC := cur, curIPC
	if left >= lo && e.measured[left] > bestIPC {
		bestPos, bestIPC = left, e.measured[left]
	}
	if right <= hi && e.measured[right] > bestIPC {
		bestPos, bestIPC = right, e.measured[right]
	}
	if bestPos != cur {
		if e.axis == axisN {
			e.curN = bestPos
			if e.curP > e.curN {
				e.curP = e.curN
			}
		} else {
			e.curP = bestPos
		}
		p.searchNext(g, e, i, now) // neighbours of the new point
		return
	}
	e.stride /= 2
	if e.stride > 0 {
		p.searchNext(g, e, i, now)
		return
	}
	// Converged on this axis.
	if e.axis == axisN {
		e.axis = axisP
		e.stride = p.Params.StrideP
		e.measured = map[int]float64{}
		if e.curP > e.curN {
			e.curP = e.curN
		}
		if e.stride == 0 {
			p.finishSearch(g, e, i)
			return
		}
		p.searchNext(g, e, i, now)
		return
	}
	p.finishSearch(g, e, i)
}

// finishSearch pins the converged tuple for the rest of the epoch and
// records displacement statistics. With the fallback guard enabled, a
// converged tuple whose sampled IPC fell below the baseline window's
// reverts to maximum warps for this epoch.
func (p *Policy) finishSearch(g *sim.GPU, e *hie, i int) {
	if e.curP > e.curN {
		e.curP = e.curN
	}
	// Displacement is measured between the prediction and the *search*
	// outcome (the paper's Fig. 10 metric), before any fallback.
	dn := float64(abs(e.curN - e.predN))
	dp := float64(abs(e.curP - e.predP))
	e.dispN += dn
	e.dispP += dp
	e.dispE += math.Sqrt(dn*dn + dp*dp)
	e.decided++
	p.enterRun(g, e, i, e.curN, e.curP)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
