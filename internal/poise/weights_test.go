package poise

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// validWeights returns a weight set that passes Validate, for building
// the rejected variants from.
func validWeights() Weights {
	w := Weights{TrainKernels: 3, Dropped: -1}
	for i := range w.Alpha {
		w.Alpha[i] = 0.1 * float64(i+1)
		w.Beta[i] = -0.05 * float64(i+1)
	}
	return w
}

// TestParseWeightsRejects pins the fail-fast contract of every load
// site: documents that decode but cannot have come from training are
// errors at parse time, with the reason in the message.
func TestParseWeightsRejects(t *testing.T) {
	valid, err := json.Marshal(validWeights())
	if err != nil {
		t.Fatal(err)
	}
	shortAlpha := strings.Replace(string(valid), `"alpha":[0.1,`, `"alpha":[`, 1)
	longBeta := strings.Replace(string(valid), `"beta":[`, `"beta":[9,`, 1)
	zero, err := json.Marshal(Weights{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data string
		want string // substring of the error; "" = must parse
	}{
		{"valid", string(valid), ""},
		{"garbage", "not json at all", "corrupt weights"},
		{"truncated", string(valid[:len(valid)/2]), "corrupt weights"},
		{"empty-object", "{}", "shape"},
		{"short-alpha", shortAlpha, "shape"},
		{"long-beta", longBeta, "shape"},
		{"all-zero", string(zero), "all zero"},
		{"huge-number", strings.Replace(string(valid), "0.1,", "1e999,", 1), "corrupt weights"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w, err := ParseWeights([]byte(tc.data))
			if tc.want == "" {
				if err != nil {
					t.Fatalf("valid weights rejected: %v", err)
				}
				if w != validWeights() {
					t.Fatalf("round trip lost data: %+v", w)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got weights %+v", tc.want, w)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestValidateRejectsNonFinite covers the Validate-level rejections
// that JSON numbers cannot carry (NaN/Inf arise in-process, e.g. from
// a diverged fit).
func TestValidateRejectsNonFinite(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Weights)
	}{
		{"nan-alpha", func(w *Weights) { w.Alpha[2] = math.NaN() }},
		{"inf-beta", func(w *Weights) { w.Beta[5] = math.Inf(1) }},
		{"neg-inf-alpha", func(w *Weights) { w.Alpha[0] = math.Inf(-1) }},
		{"nan-dispersion", func(w *Weights) { w.DispersionP = math.NaN() }},
		{"inf-pseudo-r2", func(w *Weights) { w.PseudoR2N = math.Inf(1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := validWeights()
			tc.mutate(&w)
			if err := w.Validate(); err == nil {
				t.Fatal("invalid weights passed Validate")
			}
		})
	}
}

// TestLoadWeightsValidates: the file loader applies the same
// validation, naming the offending path.
func TestLoadWeightsValidates(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "zero.json")
	data, err := json.Marshal(Weights{})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadWeights(bad); err == nil {
		t.Fatal("all-zero weights file must fail to load")
	} else if !strings.Contains(err.Error(), "zero.json") {
		t.Fatalf("error %q does not name the file", err)
	}

	good := filepath.Join(dir, "good.json")
	if err := validWeights().Save(good); err != nil {
		t.Fatal(err)
	}
	w, err := LoadWeights(good)
	if err != nil {
		t.Fatal(err)
	}
	if w != validWeights() {
		t.Fatalf("round trip lost data: %+v", w)
	}
}

// TestPredictZeroAllocs anchors the serve layer's zero-allocation
// claim one layer down: the two link-function evaluations must not
// allocate per call.
func TestPredictZeroAllocs(t *testing.T) {
	w, ok := DefaultWeights()
	if !ok {
		t.Skip("no embedded weights")
	}
	x := Vector{0.5, 0.6, 0.2, 0.4, 0.04, 0.3, 0.1, 1}
	if n := testing.AllocsPerRun(100, func() {
		w.Predict(x)
	}); n != 0 {
		t.Fatalf("Predict allocates %.1f objects per call", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		w.PredictTuple(x, 24)
	}); n != 0 {
		t.Fatalf("PredictTuple allocates %.1f objects per call", n)
	}
}

func BenchmarkPredict(b *testing.B) {
	w, ok := DefaultWeights()
	if !ok {
		b.Skip("no embedded weights")
	}
	x := Vector{0.5, 0.6, 0.2, 0.4, 0.04, 0.3, 0.1, 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Predict(x)
	}
}

func BenchmarkPredictTuple(b *testing.B) {
	w, ok := DefaultWeights()
	if !ok {
		b.Skip("no embedded weights")
	}
	x := Vector{0.5, 0.6, 0.2, 0.4, 0.04, 0.3, 0.1, 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.PredictTuple(x, 24)
	}
}
