// Package poise implements the paper's contribution: the machine
// learning framework (analytical feature model, Eq. 12 target scoring,
// target scaling, Negative Binomial training pipeline) and the hardware
// inference engine (HIE) that predicts and locally searches warp-tuples
// at runtime.
package poise

import "math"

// The analytical model of paper §V-A. These functions exist for three
// reasons: they document how the feature vector was derived, they let
// tests check that the model's speedup criterion (µ > 1) agrees with
// simulated speedups, and the feature-analysis example walks through
// them. The hardware never evaluates them — it samples the observable
// proxies listed in Table Ib.

// ModelInput bundles the observables of Table Ia.
type ModelInput struct {
	N     int     // vital warps
	P     int     // cache-polluting warps
	Kmshr int     // L1 MSHR entries
	Tpipe float64 // pipelined execution cycles per warp instruction
	Id    float64 // instructions eligible per hit until the next hazard

	Ho  float64 // net L1 hit rate, baseline (= 1 - Mo)
	Hp  float64 // hit rate of the p polluting warps under {N, p}
	Hnp float64 // hit rate of the N-p non-polluting warps under {N, p}

	Lo     float64 // average memory latency, baseline
	Lprime float64 // average memory latency under {N, p}
}

// TMem is Eq. 1: effective memory latency for a load miss executed
// concurrently across n warps with miss rate mo, MSHR-limited.
func TMem(n int, mo, lo float64, kmshr int) float64 {
	if kmshr <= 0 {
		kmshr = 1
	}
	return lo * math.Ceil(float64(n)*mo/float64(kmshr))
}

// TBusy is Eq. 2: cycles of useful work enabled by L1 hits.
func TBusy(n int, ho, id, tpipe float64) float64 {
	return float64(n) * ho * id * tpipe
}

// TStall is Eq. 3: exposed memory stall cycles.
func TStall(tmem, tbusy float64) float64 {
	return math.Max(tmem-tbusy, 0)
}

// TMemReduced is Eq. 4: effective latency when only p of N warps
// pollute; mp and mnp are the miss rates of the two warp classes.
func TMemReduced(n, p int, mp, mnp, lprime float64, kmshr int) float64 {
	if kmshr <= 0 {
		kmshr = 1
	}
	return lprime * math.Ceil((mnp*float64(n-p)+mp*float64(p))/float64(kmshr))
}

// TBusyReduced is Eq. 5.
func TBusyReduced(n, p int, hp, hnp, id, tpipe float64) float64 {
	return (float64(p)*hp + float64(n-p)*hnp) * id * tpipe
}

// Mu is Eq. 8/9: the coefficient of goodness of the warp-tuple. The
// tuple is predicted to speed the kernel up when Mu > 1.
func (in ModelInput) Mu() float64 {
	mo := 1 - in.Ho
	mp := 1 - in.Hp
	mnp := 1 - in.Hnp
	k := float64(in.Kmshr)
	if k <= 0 {
		k = 1
	}
	dBusyP := float64(in.P) * (in.Hp - in.Ho) * in.Id * in.Tpipe
	dBusyNP := float64(in.N-in.P) * (in.Hnp - in.Ho) * in.Id * in.Tpipe
	// Eq. 9 drops the ceil for tractability, as the paper notes.
	dMemP := float64(in.P) * (mp*in.Lprime - mo*in.Lo) / k
	dMemNP := float64(in.N-in.P) * (mnp*in.Lprime - mo*in.Lo) / k
	den := dMemP + dMemNP
	if den == 0 {
		if dBusyP+dBusyNP > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return (dBusyP + dBusyNP) / den
}

// MuPNP is Eq. 11: the conservative objective µ_{p/np} the feature
// vector was derived from — the busy-cycle gain of the polluting warps
// against the memory-latency cost borne by the non-polluting warps.
func (in ModelInput) MuPNP() float64 {
	mo := 1 - in.Ho
	mnp := 1 - in.Hnp
	dh := in.Hp - in.Ho
	den := mnp*in.Lprime - mo*in.Lo
	if in.N == in.P || den == 0 {
		if dh > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return (in.Tpipe * float64(in.Kmshr)) *
		(float64(in.P) / float64(in.N-in.P)) *
		(in.Id * dh / den)
}

// SpeedupPredicted applies the Eq. 7 criterion using the full stall
// model (Eqs. 1-6): true when the tuple's stall cycles drop below the
// baseline's.
func (in ModelInput) SpeedupPredicted() bool {
	mo := 1 - in.Ho
	base := TStall(TMem(in.N, mo, in.Lo, in.Kmshr), TBusy(in.N, in.Ho, in.Id, in.Tpipe))
	mp := 1 - in.Hp
	mnp := 1 - in.Hnp
	red := TStall(
		TMemReduced(in.N, in.P, mp, mnp, in.Lprime, in.Kmshr),
		TBusyReduced(in.N, in.P, in.Hp, in.Hnp, in.Id, in.Tpipe),
	)
	return red < base
}
