package poise

import (
	"encoding/json"
	"testing"
)

// FuzzParseWeights: whatever bytes arrive, ParseWeights must either
// error or return a weight set that passes its own validator — and
// never panic. Anything it accepts must survive a marshal/parse round
// trip unchanged (the weights file is a long-lived artefact; a loader
// that silently rewrites it would corrupt the deployment story). The
// checked-in seeds cover the interesting classes: a valid document,
// shape drift in both directions, all-zero weights, truncation, and
// raw garbage.
func FuzzParseWeights(f *testing.F) {
	valid, err := json.Marshal(validWeights())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{"alpha":[1,2,3],"beta":[1,2,3]}`))
	f.Add([]byte(`{"alpha":[1,1,1,1,1,1,1,1,1],"beta":[1,1,1,1,1,1,1,1,1]}`))
	f.Add([]byte(`{"alpha":[0,0,0,0,0,0,0,0],"beta":[0,0,0,0,0,0,0,0]}`))
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(`{"alpha":[1e999,0,0,0,0,0,0,0],"beta":[1,0,0,0,0,0,0,0]}`))
	f.Add([]byte("not json at all"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		w, err := ParseWeights(data)
		if err != nil {
			return
		}
		if verr := w.Validate(); verr != nil {
			t.Fatalf("ParseWeights returned invalid weights: %v", verr)
		}
		out, merr := json.Marshal(w)
		if merr != nil {
			t.Fatalf("re-encoding accepted weights: %v", merr)
		}
		again, perr := ParseWeights(out)
		if perr != nil {
			t.Fatalf("re-parsing re-encoded weights: %v", perr)
		}
		if again != w {
			t.Fatalf("weights round trip is not stable: %+v != %+v", again, w)
		}
	})
}
