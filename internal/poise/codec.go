package poise

import (
	"fmt"
	"sort"

	"poise/internal/sim"
	snapio "poise/internal/snap"
)

// Checkpoint codec for the Poise policy (sim.StatefulPolicy): the
// per-SM HIE FSMs — phase, windows, search trajectory, fallback
// strikes, displacement accounting — plus the kernel-level fallback
// counter. Parameters and weights are construction-time inputs and do
// not cross the wire. Map-backed search caches are written in sorted
// key order so checkpoint bytes are deterministic across processes.

const (
	maxEnginesState = 1 << 12
	maxMeasured     = 1 << 12
)

func encodeWindow(w *snapio.Writer, win Window) {
	w.Float64(win.HitRate)
	w.Float64(win.IntraRate)
	w.Float64(win.AML)
	w.Float64(win.InstrPerLoad)
}

func decodeWindow(r *snapio.Reader) Window {
	return Window{
		HitRate:      r.Float64(),
		IntraRate:    r.Float64(),
		AML:          r.Float64(),
		InstrPerLoad: r.Float64(),
	}
}

func encodeSnapshot(w *snapio.Writer, s snapshot) {
	s.l1.EncodeState(w)
	s.c.EncodeState(w)
}

func decodeSnapshot(r *snapio.Reader) snapshot {
	var s snapshot
	s.l1.DecodeState(r)
	s.c.DecodeState(r)
	return s
}

func (e *hie) encodeState(w *snapio.Writer) {
	w.Varint(int64(e.state))
	w.Varint(e.nextAt)
	w.Varint(e.epochEnd)
	encodeWindow(w, e.base)
	w.Float64(e.baseIPC)
	encodeSnapshot(w, e.snapA)
	w.Varint(int64(e.axis))
	w.Varint(int64(e.curN))
	w.Varint(int64(e.curP))
	w.Varint(int64(e.stride))
	w.Varint(int64(e.probe))
	keys := make([]int, 0, len(e.measured))
	for k := range e.measured {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.Varint(int64(k))
		w.Float64(e.measured[k])
	}
	w.Varint(int64(e.predN))
	w.Varint(int64(e.predP))
	encodeSnapshot(w, e.runSnap)
	w.Varint(e.runStartAt)
	w.Varint(int64(e.runN))
	w.Varint(int64(e.runP))
	w.Varint(int64(e.strikes))
	w.Bool(e.checked)
	w.Float64(e.dispN)
	w.Float64(e.dispP)
	w.Float64(e.dispE)
	w.Varint(int64(e.decided))
}

func (e *hie) decodeState(r *snapio.Reader) error {
	e.state = hieState(r.Varint())
	e.nextAt = r.Varint()
	e.epochEnd = r.Varint()
	e.base = decodeWindow(r)
	e.baseIPC = r.Float64()
	e.snapA = decodeSnapshot(r)
	e.axis = searchAxis(r.Varint())
	e.curN = int(r.Varint())
	e.curP = int(r.Varint())
	e.stride = int(r.Varint())
	e.probe = int(r.Varint())
	n := r.Count(maxMeasured)
	e.measured = map[int]float64{}
	for i := 0; i < n; i++ {
		k := int(r.Varint())
		e.measured[k] = r.Float64()
	}
	e.predN = int(r.Varint())
	e.predP = int(r.Varint())
	e.runSnap = decodeSnapshot(r)
	e.runStartAt = r.Varint()
	e.runN = int(r.Varint())
	e.runP = int(r.Varint())
	e.strikes = int(r.Varint())
	e.checked = r.Bool()
	e.dispN = r.Float64()
	e.dispP = r.Float64()
	e.dispE = r.Float64()
	e.decided = int(r.Varint())
	if r.Err() == nil && (e.state < stBaseWarm || e.state > stRun) {
		return fmt.Errorf("poise: HIE state %d out of range", e.state)
	}
	return r.Err()
}

// EncodePolicyState implements sim.StatefulPolicy.
func (p *Policy) EncodePolicyState(w *snapio.Writer) {
	w.Varint(int64(p.maxN))
	w.Varint(int64(p.Fallbacks))
	w.Uvarint(uint64(len(p.engines)))
	for _, e := range p.engines {
		e.encodeState(w)
	}
}

// DecodePolicyState implements sim.StatefulPolicy.
func (p *Policy) DecodePolicyState(r *snapio.Reader) error {
	p.maxN = int(r.Varint())
	p.Fallbacks = int(r.Varint())
	n := r.Count(maxEnginesState)
	p.engines = p.engines[:0]
	for i := 0; i < n; i++ {
		e := &hie{}
		if err := e.decodeState(r); err != nil {
			return err
		}
		p.engines = append(p.engines, e)
	}
	return r.Err()
}

var _ sim.StatefulPolicy = (*Policy)(nil)
