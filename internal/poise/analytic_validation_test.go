package poise

import (
	"testing"

	"poise/internal/sim"
	"poise/internal/testutil"
	"poise/internal/trace"
)

// modelInputFrom builds the Eq. 1-11 observables from two measured
// runs: the baseline tuple and a candidate {N, p}.
func modelInputFrom(base, red sim.KernelResult, n, p, kmshr int, id float64) ModelInput {
	return ModelInput{
		N: n, P: p, Kmshr: kmshr,
		Tpipe: 1, Id: id,
		Ho:  base.L1.HitRate(),
		Hp:  red.L1.PolluteHitRate(),
		Hnp: red.L1.NoPollHitRate(),
		Lo:  base.AML, Lprime: red.AML,
	}
}

// The analytical model of §V-A is the justification for the feature
// vector; this test closes the loop by checking its speedup criterion
// against the simulator it abstracts: across a spread of tuples on a
// thrash-limited kernel, the Eq. 7 stall criterion must agree with the
// measured speedup direction for a clear majority of tuples (it drops
// ceil terms and assumes steady state, so perfection is not expected —
// the paper uses it to pick features, not to predict).
func TestAnalyticalModelAgreesWithSimulator(t *testing.T) {
	cfg := defaultScaled4()
	k := testutil.ThrashKernel("analytic", 20, 120, 16)
	id := 2.0 // body: load, 2 ALU, load, 2 ALU -> ~2 eligible per hit

	g, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	maxN := cfg.WarpsPerSched
	base, err := g.Run(k, sim.Fixed{N: maxN, P: maxN}, sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	tuples := [][2]int{{4, 2}, {6, 3}, {2, 2}, {8, 2}, {12, 6}, {16, 16}, {20, 4}}
	agree, total := 0, 0
	for _, tu := range tuples {
		red, err := g.Run(k, sim.Fixed{N: tu[0], P: tu[1]}, sim.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		measured := red.IPC > base.IPC*1.02
		in := modelInputFrom(base, red, tu[0], tu[1], cfg.L1.MSHRs, id)
		predicted := in.SpeedupPredicted()
		if measured == predicted {
			agree++
		}
		total++
		t.Logf("tuple (%2d,%2d): measured %.2fx, model predicts speedup=%v",
			tu[0], tu[1], red.IPC/base.IPC, predicted)
	}
	if agree*3 < total*2 {
		t.Fatalf("analytical model agrees on only %d/%d tuples", agree, total)
	}
}

// µ must rank a strongly favourable tuple above a weak one when both
// are computed from measured statistics.
func TestMuRanksMeasuredTuples(t *testing.T) {
	cfg := defaultScaled4()
	k := testutil.ThrashKernel("mu-rank", 20, 120, 16)
	g, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	maxN := cfg.WarpsPerSched
	base, err := g.Run(k, sim.Fixed{N: maxN, P: maxN}, sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	good, err := g.Run(k, sim.Fixed{N: 4, P: 2}, sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	weak, err := g.Run(k, sim.Fixed{N: 20, P: 18}, sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if good.IPC <= weak.IPC {
		t.Skip("landscape changed; ranking premise does not hold")
	}
	// Rank by the Eq. 1-6 stall reduction (µ's sign is ambiguous when a
	// tuple improves both busy cycles and latency — the case the paper's
	// simplification drops).
	reduction := func(in ModelInput) float64 {
		mo := 1 - in.Ho
		baseStall := TStall(TMem(in.N, mo, in.Lo, in.Kmshr),
			TBusy(in.N, in.Ho, in.Id, in.Tpipe))
		redStall := TStall(
			TMemReduced(in.N, in.P, 1-in.Hp, 1-in.Hnp, in.Lprime, in.Kmshr),
			TBusyReduced(in.N, in.P, in.Hp, in.Hnp, in.Id, in.Tpipe))
		return baseStall - redStall
	}
	gIn := modelInputFrom(base, good, 4, 2, cfg.L1.MSHRs, 2)
	wIn := modelInputFrom(base, weak, 20, 18, cfg.L1.MSHRs, 2)
	if reduction(gIn) < reduction(wIn) {
		t.Fatalf("stall model ranks the weaker tuple higher: good=%v weak=%v",
			reduction(gIn), reduction(wIn))
	}
}

// The warp-tuple mechanism end to end through trace definitions: a
// kernel built from raw trace primitives (not testutil) behaves
// identically across two GPU instances.
func TestCrossGPUReproducibility(t *testing.T) {
	b := &trace.BodyBuilder{}
	b.Load(1)
	b.ALU(1)
	k := &trace.Kernel{
		Name:          "xgpu",
		Body:          b.Body(),
		Patterns:      []trace.Pattern{trace.PrivateSweep{Region: 990, Lines: 12, Step: 1}},
		Iters:         30,
		WarpsPerBlock: 8,
		Blocks:        4,
	}
	g1, _ := sim.New(testutil.TinyConfig())
	g2, _ := sim.New(testutil.TinyConfig())
	r1, err := g1.Run(k, sim.Fixed{N: 5, P: 2}, sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g2.Run(k, sim.Fixed{N: 5, P: 2}, sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.L1.Hits != r2.L1.Hits {
		t.Fatal("two GPUs disagree on the same kernel")
	}
}
