package dram

import (
	"fmt"

	"poise/internal/snap"
)

// EncodeState serialises the DRAM model's mutable state (partition
// next-free cycles and statistics); timings come from the
// configuration.
func (d *DRAM) EncodeState(w *snap.Writer) {
	w.Uvarint(uint64(len(d.partitions)))
	for _, p := range d.partitions {
		w.Varint(p)
	}
	w.Varint(d.Accesses)
	w.Varint(d.QueueDelay)
	w.Varint(d.BusyCycles)
}

// DecodeState restores state written by EncodeState onto a DRAM model
// with the same partition count.
func (d *DRAM) DecodeState(r *snap.Reader) error {
	n := r.Uvarint()
	if r.Err() == nil && n != uint64(len(d.partitions)) {
		return fmt.Errorf("dram: snapshot has %d partitions, model has %d", n, len(d.partitions))
	}
	for i := range d.partitions {
		d.partitions[i] = r.Varint()
	}
	d.Accesses = r.Varint()
	d.QueueDelay = r.Varint()
	d.BusyCycles = r.Varint()
	return r.Err()
}
