package dram

import (
	"testing"

	"poise/internal/config"
)

func TestAccessLatencyUnloaded(t *testing.T) {
	d := New(config.Default())
	got := d.Access(0x123, 1000)
	// Service (12) + latency (160).
	if got != 1000+12+160 {
		t.Fatalf("return = %d, want 1172", got)
	}
	if d.Accesses != 1 {
		t.Fatal("access count")
	}
}

func TestQueueingAccumulates(t *testing.T) {
	d := New(config.Default())
	line := uint64(0x42)
	a := d.Access(line, 1000)
	b := d.Access(line, 1000) // same partition: serialised on the bus
	if b != a+12 {
		t.Fatalf("second access must queue one service time: %d vs %d", b, a)
	}
	if d.QueueDelay != 12 {
		t.Fatalf("queue delay = %d", d.QueueDelay)
	}
}

func TestPartitionSpread(t *testing.T) {
	d := New(config.Default())
	seen := map[int]bool{}
	for i := uint64(0); i < 256; i++ {
		seen[d.Partition(i)] = true
	}
	if len(seen) != 6 {
		t.Fatalf("interleaving reached %d of 6 partitions", len(seen))
	}
}

func TestUtilization(t *testing.T) {
	d := New(config.Default())
	for i := uint64(0); i < 60; i++ {
		d.Access(i, 0)
	}
	u := d.Utilization(1000)
	want := float64(60*12) / float64(6*1000)
	if u < want*0.99 || u > want*1.01 {
		t.Fatalf("utilisation = %v, want %v", u, want)
	}
	if d.Utilization(0) != 0 {
		t.Fatal("zero elapsed must be zero utilisation")
	}
}

func TestReset(t *testing.T) {
	d := New(config.Default())
	d.Access(1, 100)
	d.Reset()
	if d.Accesses != 0 || d.BusyCycles != 0 {
		t.Fatal("reset must clear stats")
	}
	if got := d.Access(1, 100); got != 272 {
		t.Fatalf("reset must clear servers: %d", got)
	}
}
