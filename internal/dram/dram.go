// Package dram models the GDDR5 memory partitions as bandwidth-limited
// queueing servers. Each 128 B access occupies its partition's data bus
// for a fixed service time (derived from the 924 MHz GDDR5 clock and
// the 64-bit per-partition bus of the baseline) on top of a fixed
// access latency. Queueing at the partitions is the simulator's source
// of bandwidth-bottleneck behaviour: as miss traffic grows, the
// next-free cycles of the partitions race ahead of the clock and AML
// inflates — the congestion dynamic the paper's L' and Lo terms track.
package dram

import "poise/internal/config"

// DRAM is the collection of memory partitions.
type DRAM struct {
	latency    int64 // access latency, core cycles
	service    int64 // bus occupancy per request, core cycles
	partitions []int64

	// Stats.
	Accesses   int64
	QueueDelay int64
	BusyCycles int64
}

// New builds the DRAM model for the configuration.
func New(cfg config.Config) *DRAM {
	return &DRAM{
		latency:    int64(cfg.DRAMLatency),
		service:    int64(cfg.DRAMCyclesPerReq),
		partitions: make([]int64, cfg.DRAMPartitions),
	}
}

// Partition maps a line address onto a partition index, spreading
// consecutive lines across partitions (address interleaving).
func (d *DRAM) Partition(lineAddr uint64) int {
	h := lineAddr
	h ^= h >> 13
	h *= 0x9e3779b97f4a7c15
	h ^= h >> 32
	return int(h % uint64(len(d.partitions)))
}

// Access services a line read/write arriving at cycle now for lineAddr
// and returns the cycle at which the data is available at the memory
// controller.
func (d *DRAM) Access(lineAddr uint64, now int64) int64 {
	p := &d.partitions[d.Partition(lineAddr)]
	start := now
	if *p > start {
		d.QueueDelay += *p - start
		start = *p
	}
	*p = start + d.service
	d.Accesses++
	d.BusyCycles += d.service
	return *p + d.latency
}

// Utilization returns the mean partition bus utilisation over elapsed
// cycles (an approximation: busy cycles / (partitions * elapsed)).
func (d *DRAM) Utilization(elapsed int64) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(d.BusyCycles) / float64(int64(len(d.partitions))*elapsed)
}

// Reset clears server state and statistics.
func (d *DRAM) Reset() {
	for i := range d.partitions {
		d.partitions[i] = 0
	}
	d.Accesses, d.QueueDelay, d.BusyCycles = 0, 0, 0
}
