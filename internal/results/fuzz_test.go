package results

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzReadShard: the cell-shard decoder must never panic; anything it
// accepts must survive a write/read round-trip, and Merge must handle
// it (duplicate keys surface as errors, never corruption).
func FuzzReadShard(f *testing.F) {
	cells := []CellResult{
		{Tag: "t", Grid: "scheme", Workload: "bfs", Digest: "d", Scheme: "GTO", Ord: 0},
		{Tag: "t", Grid: "scheme", Workload: "bfs", Digest: "d", Scheme: "Poise", Ord: 3, DispN: 0.5, HasDisp: true},
	}
	var valid bytes.Buffer
	if err := WriteShard(&valid, 0, 1, cells); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	// Truncated: drop the final cell line so the header count disagrees.
	lines := bytes.SplitAfter(valid.Bytes(), []byte("\n"))
	f.Add(bytes.Join(lines[:len(lines)-2], nil))
	// Duplicate key: repeat the last cell and patch the count.
	dup := append([]byte(nil), valid.Bytes()...)
	dup = bytes.Replace(dup, []byte(`"count":2`), []byte(`"count":3`), 1)
	f.Add(append(dup, lines[len(lines)-2]...))
	// Corrupt header, wrong format, torn line, garbage.
	f.Add([]byte(`{"format":"poisecellshard","version":99,"count":0}` + "\n"))
	f.Add([]byte(`{"format":"poiseshard","version":1,"count":0}` + "\n"))
	f.Add([]byte(`{"format":"poisecellshard","version":1,"count":1}` + "\n" + `{"tag":`))
	f.Add([]byte("\xff\xfe"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadShard(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if werr := WriteShard(&buf, 0, 1, got); werr != nil {
			t.Fatalf("re-encoding an accepted shard: %v", werr)
		}
		again, rerr := ReadShard(&buf)
		if rerr != nil {
			t.Fatalf("re-reading a re-encoded shard: %v", rerr)
		}
		if !reflect.DeepEqual(got, again) && !(len(got) == 0 && len(again) == 0) {
			t.Fatal("cell shard round-trip is not stable")
		}
		Merge(got) //nolint:errcheck
	})
}
