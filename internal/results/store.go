package results

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"poise/internal/gridplan"
)

// Store caches executed experiment grids on disk, keyed by a
// caller-supplied configuration tag and the grid name — the same
// contract profile.Store has for sweeps. Two artifact kinds share the
// directory: shard partials (one JSONL file per (tag, grid, shard))
// and the merged entry (one JSON file per (tag, grid)) that figure
// runs load instead of re-simulating.
type Store struct {
	Dir string
}

// ErrCorrupt tags cache entries that exist but cannot be decoded
// (truncated writes, garbled JSON). Callers distinguish it from
// os.ErrNotExist with errors.Is; the experiments layer treats both as
// "no usable entry" and re-runs the grid, overwriting the damage — the
// same repair discipline profile.Store's LoadOrSweep uses.
var ErrCorrupt = errors.New("corrupt cell results entry")

func (s Store) path(tag, grid string) string {
	return filepath.Join(s.Dir, fmt.Sprintf("%s_%s.cells.json", tag, grid))
}

func (s Store) shardPath(tag, grid string, index, count int) string {
	return filepath.Join(s.Dir, fmt.Sprintf("%s_%s.cells.shard%03dof%03d.jsonl", tag, grid, index, count))
}

// cellsFile is the merged on-disk entry.
type cellsFile struct {
	Version int          `json:"version"`
	Tag     string       `json:"tag"`
	Grid    string       `json:"grid"`
	Cells   []CellResult `json:"cells"`
}

// Save writes the merged cell set for (tag, grid).
func (s Store) Save(tag, grid string, cells []CellResult) error {
	if s.Dir == "" {
		return errors.New("results: store has no directory")
	}
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(cellsFile{Version: gridplan.PlanVersion, Tag: tag, Grid: grid, Cells: cells}, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(s.path(tag, grid), data, 0o644)
}

// Load reads the merged cell set for (tag, grid); it returns
// os.ErrNotExist if absent and an ErrCorrupt-wrapping error if present
// but undecodable or inconsistent.
func (s Store) Load(tag, grid string) ([]CellResult, error) {
	if s.Dir == "" {
		return nil, os.ErrNotExist
	}
	data, err := os.ReadFile(s.path(tag, grid))
	if err != nil {
		return nil, err
	}
	var f cellsFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("results: %s: %w (%v)", s.path(tag, grid), ErrCorrupt, err)
	}
	if f.Version != gridplan.PlanVersion || f.Tag != tag || f.Grid != grid || len(f.Cells) == 0 {
		return nil, fmt.Errorf("results: %s: %w (decoded to an inconsistent or empty entry)", s.path(tag, grid), ErrCorrupt)
	}
	return f.Cells, nil
}

// SaveShard persists one shard's cells for (tag, grid) and returns the
// file path.
func (s Store) SaveShard(tag, grid string, index, count int, cells []CellResult) (string, error) {
	if s.Dir == "" {
		return "", errors.New("results: store has no directory for shard partials")
	}
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return "", err
	}
	path := s.shardPath(tag, grid, index, count)
	if err := WriteShardFile(path, index, count, cells); err != nil {
		return "", err
	}
	return path, nil
}

// LoadShards reads every persisted shard partial for (tag, grid), in
// sorted file order. It returns os.ErrNotExist when none are present.
func (s Store) LoadShards(tag, grid string) ([][]CellResult, error) {
	if s.Dir == "" {
		return nil, os.ErrNotExist
	}
	files, err := filepath.Glob(filepath.Join(s.Dir, fmt.Sprintf("%s_%s.cells.shard*.jsonl", tag, grid)))
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("results: no cell shard partials for %s/%s in %s: %w", tag, grid, s.Dir, os.ErrNotExist)
	}
	sort.Strings(files)
	var shards [][]CellResult
	for _, f := range files {
		cells, err := ReadShardFile(f)
		if err != nil {
			return nil, err
		}
		shards = append(shards, cells)
	}
	return shards, nil
}

// MergeSavedShards merges every persisted shard partial of (tag, grid)
// into the full cell set, verifies it against plan when one is given
// (exact coverage and digest agreement — a lost shard fails loudly),
// caches it as the merged entry, and returns it. After a merge,
// ordinary figure runs on the same cache directory load the cells
// without simulating.
func (s Store) MergeSavedShards(tag, grid string, plan *gridplan.CellPlan) ([]CellResult, error) {
	shards, err := s.LoadShards(tag, grid)
	if err != nil {
		return nil, err
	}
	cells, err := Merge(shards...)
	if err != nil {
		return nil, err
	}
	if plan != nil {
		if err := Verify(plan, cells); err != nil {
			return nil, err
		}
	}
	if err := s.Save(tag, grid, cells); err != nil {
		return nil, err
	}
	return cells, nil
}
