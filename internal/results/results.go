// Package results persists executed experiment-grid cells: the
// workload-level sibling of package profile's {N, p} sweep store. A
// CellResult pairs a gridplan.CellTask's identity with the full
// sim.WorkloadResult the cell produced, and the Store keeps two kinds
// of artifact per (tag, grid): shard partial JSONL files written by
// worker processes, and the merged JSON entry figure runs load instead
// of re-simulating. Merging any shard decomposition is
// reflect.DeepEqual-identical to the in-process grid run — Go's JSON
// encoding round-trips float64 exactly, and the key-ordered merge is
// the same verified machinery profile measurements use.
package results

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"poise/internal/gridplan"
	"poise/internal/sim"
)

// CellResult is one executed experiment cell: the identity fields of
// the gridplan.CellTask that produced it, the full workload result,
// and the policy-side extras some figures need.
type CellResult struct {
	Tag      string `json:"tag"`
	Grid     string `json:"grid"`
	Workload string `json:"workload"`
	Digest   string `json:"digest"`
	Scheme   string `json:"scheme"`
	Ord      int    `json:"ord"`

	Result sim.WorkloadResult `json:"result"`

	// Displacement between the predicted and converged warp-tuples
	// (Fig. 10), reported by cells whose policy exposes one (Poise).
	DispN   float64 `json:"dispN,omitempty"`
	DispP   float64 `json:"dispP,omitempty"`
	DispE   float64 `json:"dispE,omitempty"`
	HasDisp bool    `json:"hasDisp,omitempty"`
}

// Key mirrors gridplan.CellTask.Key, so cells merge and verify with
// the plan's ordering.
func (c CellResult) Key() string {
	return gridplan.CellTask{Tag: c.Tag, Grid: c.Grid, Workload: c.Workload,
		Scheme: c.Scheme, Ord: c.Ord}.Key()
}

// FromTask stamps a cell result with its task's identity.
func (c CellResult) FromTask(t gridplan.CellTask) CellResult {
	c.Tag, c.Grid, c.Workload, c.Digest, c.Scheme, c.Ord =
		t.Tag, t.Grid, t.Workload, t.Digest, t.Scheme, t.Ord
	return c
}

// Merge combines per-shard cell sets into one key-ordered set,
// rejecting duplicates, exactly like gridplan.Merge does for profile
// measurements.
func Merge(shards ...[]CellResult) ([]CellResult, error) {
	return gridplan.MergeKeyed(shards...)
}

// Verify checks that cells cover plan exactly — every cell present
// once, none extra (gridplan's generic cover check) — and that each
// cell's workload digest matches its task's, so a merged set from a
// drifted catalogue (or a stale merged cache entry after workloads
// were regenerated) fails loudly instead of feeding wrong numbers
// into a figure.
func Verify(plan *gridplan.CellPlan, cells []CellResult) error {
	if err := gridplan.VerifyCover(plan.Cells, cells, "result"); err != nil {
		return err
	}
	want := map[string]string{}
	for _, t := range plan.Cells {
		want[t.Key()] = t.Digest
	}
	for _, c := range cells {
		if d := want[c.Key()]; c.Digest != d {
			return fmt.Errorf("results: cell %s has workload digest %s, plan has %s (stale results or drifted catalogue?)",
				c.Key(), c.Digest, d)
		}
	}
	return nil
}

// The shard JSONL container mirrors gridplan's measurement files: one
// header line, then one cell per line, with the header's count
// detecting truncated transfers.

const shardFormat = "poisecellshard"

type shardHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Shard   int    `json:"shard"`
	Of      int    `json:"of"`
	Count   int    `json:"count"`
}

// WriteShard serialises one shard's cells as JSONL. shard/of record
// which split produced the file; Merge does not trust them, they are
// for operators and error messages.
func WriteShard(w io.Writer, shard, of int, cells []CellResult) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(shardHeader{Format: shardFormat, Version: gridplan.PlanVersion,
		Shard: shard, Of: of, Count: len(cells)}); err != nil {
		return err
	}
	for _, c := range cells {
		if err := enc.Encode(c); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadShard parses a cell shard file. A cell line carries a whole
// workload's per-kernel results, so the line cap is generous.
func ReadShard(r io.Reader) ([]CellResult, error) {
	sc := gridplan.NewJSONLScanner(r, 16*1024*1024)
	var h shardHeader
	if err := sc.Next(&h); err != nil {
		return nil, fmt.Errorf("results: shard header: %w", err)
	}
	if h.Format != shardFormat {
		return nil, fmt.Errorf("results: not a cell shard file (format %q)", h.Format)
	}
	if h.Version != gridplan.PlanVersion {
		return nil, fmt.Errorf("results: unsupported shard version %d (have %d)", h.Version, gridplan.PlanVersion)
	}
	var cells []CellResult
	for {
		var c CellResult
		err := sc.Next(&c)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("results: shard line %d: %w", sc.Line(), err)
		}
		cells = append(cells, c)
	}
	if len(cells) != h.Count {
		return nil, fmt.Errorf("results: shard truncated: header says %d cells, file has %d", h.Count, len(cells))
	}
	return cells, nil
}

// WriteShardFile writes a cell shard file to path.
func WriteShardFile(path string, shard, of int, cells []CellResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = WriteShard(f, shard, of, cells)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("results: writing %s: %w", path, err)
	}
	return nil
}

// ReadShardFile reads a cell shard file from path.
func ReadShardFile(path string) ([]CellResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cells, err := ReadShard(f)
	if err != nil {
		return nil, fmt.Errorf("%w (reading %s)", err, path)
	}
	return cells, nil
}
