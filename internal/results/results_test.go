package results

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"poise/internal/cache"
	"poise/internal/gridplan"
	"poise/internal/sim"
	"poise/internal/sm"
)

// cellsForTest builds a small grid of cells with awkward float values
// and populated nested result structures, so round-trip tests exercise
// the full object graph rather than flat zero values.
func cellsForTest(workloads, schemes int) ([]CellResult, *gridplan.CellPlan) {
	plan := &gridplan.CellPlan{Version: gridplan.PlanVersion}
	var cells []CellResult
	for w := 0; w < workloads; w++ {
		for s := 0; s < schemes; s++ {
			t := gridplan.CellTask{
				Tag: "cfg", Grid: "scheme", Workload: fmt.Sprintf("wl%02d", w),
				Digest: fmt.Sprintf("d%02d", w), Scheme: fmt.Sprintf("s%d", s), Ord: s,
			}
			plan.Cells = append(plan.Cells, t)
			c := CellResult{
				Result: sim.WorkloadResult{
					Workload: t.Workload, Policy: t.Scheme,
					Cycles: int64(1000*w + s), Instructions: int64(777 * (w + 1)),
					IPC: float64(w+1) / 3, AML: 1.0 / 7,
					L1: cache.Stats{Accesses: 100, Hits: 33, IntraWarpHits: 11},
					PerKernel: []sim.KernelResult{{
						Kernel: "k0", Cycles: 42, IPC: 2.0 / 3,
						PerSM:    []sm.Counters{{Instructions: 9, AMLSum: 5, AMLCount: 2}},
						TupleLog: []sim.TupleEvent{{Cycle: 3, SM: 0, N: 8, P: 4, Predicted: true}},
					}},
				},
			}
			if s == 1 {
				c.DispN, c.DispP, c.DispE, c.HasDisp = 1.0/3, 2.0/7, 0.123456789012345, true
			}
			cells = append(cells, c.FromTask(t))
		}
	}
	return cells, plan
}

func TestShardJSONLRoundTripDeepEqual(t *testing.T) {
	cells, _ := cellsForTest(3, 3)
	path := filepath.Join(t.TempDir(), "shard.jsonl")
	if err := WriteShardFile(path, 1, 2, cells); err != nil {
		t.Fatal(err)
	}
	back, err := ReadShardFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cells, back) {
		t.Fatalf("shard round trip is not DeepEqual-identical:\nwrote %+v\nread  %+v", cells, back)
	}
}

func TestReadShardRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"garbage.jsonl":   "not json at all",
		"wrongfmt.jsonl":  `{"format":"poiseplan","version":1,"tasks":0}`,
		"badver.jsonl":    `{"format":"poisecellshard","version":99,"count":0}`,
		"truncated.jsonl": `{"format":"poisecellshard","version":1,"count":3}`,
	} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadShardFile(p); err == nil {
			t.Errorf("%s: must be rejected", name)
		}
	}
}

func TestMergeAnyShardCountIdenticalAndRejectsDuplicates(t *testing.T) {
	cells, plan := cellsForTest(3, 4)
	want, err := Merge(cells)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 3} {
		var shards [][]CellResult
		for i := 0; i < n; i++ {
			sp, err := plan.Shard(i, n)
			if err != nil {
				t.Fatal(err)
			}
			var part []CellResult
			for _, task := range sp.Cells {
				for _, c := range cells {
					if c.Key() == task.Key() {
						part = append(part, c)
					}
				}
			}
			shards = append(shards, part)
		}
		got, err := Merge(shards...)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("merge of %d shards differs from single-shard merge", n)
		}
		if err := Verify(plan, got); err != nil {
			t.Fatalf("n=%d: complete merge failed verification: %v", n, err)
		}
	}
	if _, err := Merge(cells, cells[:1]); err == nil {
		t.Fatal("duplicate cell must fail the merge")
	}
}

func TestVerifyCatchesMissingExtraAndDigestDrift(t *testing.T) {
	cells, plan := cellsForTest(2, 2)
	if err := Verify(plan, cells[1:]); err == nil {
		t.Fatal("missing cell must fail verification")
	}
	extra := append(append([]CellResult(nil), cells...),
		CellResult{Tag: "cfg", Grid: "scheme", Workload: "ghost", Scheme: "s0"})
	if err := Verify(plan, extra); err == nil {
		t.Fatal("extra cell must fail verification")
	}
	drift := append([]CellResult(nil), cells...)
	drift[0].Digest = "deadbeef"
	err := Verify(plan, drift)
	if err == nil || !strings.Contains(err.Error(), "digest") {
		t.Fatalf("digest drift must fail verification, got %v", err)
	}
}

func TestStoreSaveLoadAndCorruption(t *testing.T) {
	cells, _ := cellsForTest(2, 3)
	st := Store{Dir: t.TempDir()}
	if err := st.Save("cfg", "scheme", cells); err != nil {
		t.Fatal(err)
	}
	back, err := st.Load("cfg", "scheme")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cells, back) {
		t.Fatal("store round trip is not DeepEqual-identical")
	}
	if _, err := st.Load("cfg", "other"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing entry must be ErrNotExist, got %v", err)
	}
	// A mismatched tag is a different entry, not this one served stale.
	if _, err := st.Load("othercfg", "scheme"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("different tag must miss, got %v", err)
	}
	// Corrupt the entry: Load must report ErrCorrupt, not garbage.
	files, _ := filepath.Glob(filepath.Join(st.Dir, "*.cells.json"))
	if len(files) != 1 {
		t.Fatalf("want 1 cells file, got %v", files)
	}
	if err := os.WriteFile(files[0], []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load("cfg", "scheme"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt entry must be ErrCorrupt, got %v", err)
	}
	if s := (Store{}); true {
		if err := s.Save("cfg", "g", cells); err == nil {
			t.Fatal("dirless store must refuse Save")
		}
		if _, err := s.Load("cfg", "g"); !errors.Is(err, os.ErrNotExist) {
			t.Fatal("dirless store must miss on Load")
		}
	}
}

func TestStoreShardPartialsMerge(t *testing.T) {
	cells, plan := cellsForTest(3, 3)
	st := Store{Dir: t.TempDir()}
	// Persist 2 shard partials as worker processes would.
	for i := 0; i < 2; i++ {
		sp, err := plan.Shard(i, 2)
		if err != nil {
			t.Fatal(err)
		}
		var part []CellResult
		for _, task := range sp.Cells {
			for _, c := range cells {
				if c.Key() == task.Key() {
					part = append(part, c)
				}
			}
		}
		if _, err := st.SaveShard("cfg", "scheme", i, 2, part); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := st.MergeSavedShards("cfg", "scheme", plan)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Merge(cells)
	if !reflect.DeepEqual(want, merged) {
		t.Fatal("merged saved shards differ from direct merge")
	}
	// The merged entry is now the regular cache entry.
	loaded, err := st.Load("cfg", "scheme")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged, loaded) {
		t.Fatal("merged entry did not persist")
	}
	// A lost shard fails the merge loudly.
	st2 := Store{Dir: t.TempDir()}
	sp, _ := plan.Shard(0, 2)
	var part []CellResult
	for _, task := range sp.Cells {
		for _, c := range cells {
			if c.Key() == task.Key() {
				part = append(part, c)
			}
		}
	}
	if _, err := st2.SaveShard("cfg", "scheme", 0, 2, part); err != nil {
		t.Fatal(err)
	}
	if _, err := st2.MergeSavedShards("cfg", "scheme", plan); err == nil {
		t.Fatal("merging with a missing shard must fail")
	}
	// No partials at all is ErrNotExist.
	if _, err := (Store{Dir: t.TempDir()}).MergeSavedShards("cfg", "scheme", plan); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("no partials must be ErrNotExist, got %v", err)
	}
}
