package snap

import (
	"bytes"
	"compress/gzip"
	"errors"
	"hash/crc32"
	"io/fs"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleSnapshot() *Snapshot {
	w := NewWriter()
	w.Uvarint(42)
	w.Varint(-7)
	w.Bool(true)
	w.Float64(3.14159)
	w.String("payload")
	return &Snapshot{
		Kind:        KindBoundary,
		Key:         "cfg|k0|t:8,4",
		Workload:    "wl",
		KernelIndex: 3,
		Cycle:       123456,
		State:       w.Data(),
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	sn := sampleSnapshot()
	data, err := sn.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sn, got) {
		t.Fatalf("round trip mismatch:\n  in  %+v\n  out %+v", sn, got)
	}
}

func TestSnapshotGzipTransparent(t *testing.T) {
	sn := sampleSnapshot()
	data, err := sn.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(data)
	zw.Close()
	got, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sn, got) {
		t.Fatal("gzip round trip mismatch")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	sn := sampleSnapshot()
	data, err := sn.Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     nil,
		"short":     data[:5],
		"bad magic": append([]byte("NOTPOISESN"), data[10:]...),
		"truncated": data[:len(data)-8],
		"trailing":  append(append([]byte(nil), data...), 0, 0, 0, 0),
	}
	// Flip one payload byte: the CRC must catch it.
	flipped := append([]byte(nil), data...)
	flipped[len(Magic)+3] ^= 0xff
	cases["bitflip"] = flipped
	// Version skew: bump the version varint and refresh the CRC so the
	// version check itself is what rejects it.
	skew := append([]byte(nil), data...)
	skew[len(Magic)] = 9
	cases["version skew"] = recrc(skew)
	for name, in := range cases {
		if _, err := Decode(in); err == nil {
			t.Errorf("%s: Decode accepted corrupt input", name)
		}
	}
}

// recrc rewrites the trailing CRC to match the (possibly mutated) body.
func recrc(data []byte) []byte {
	if len(data) < 4 {
		return data
	}
	body := data[:len(data)-4]
	out := append([]byte(nil), body...)
	sum := crc32.ChecksumIEEE(body)
	return append(out, byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24))
}

func TestWriterReaderPrimitives(t *testing.T) {
	w := NewWriter()
	w.Uvarint(0)
	w.Uvarint(math.MaxUint64)
	w.Varint(math.MinInt64)
	w.Varint(math.MaxInt64)
	w.Bool(false)
	w.Bool(true)
	w.Float64(math.Inf(-1))
	w.Float64(0.1)
	w.Bytes([]byte{1, 2, 3})
	w.String("hé")
	r := NewReader(w.Data())
	if got := r.Uvarint(); got != 0 {
		t.Fatalf("uvarint: %d", got)
	}
	if got := r.Uvarint(); got != math.MaxUint64 {
		t.Fatalf("uvarint max: %d", got)
	}
	if got := r.Varint(); got != math.MinInt64 {
		t.Fatalf("varint min: %d", got)
	}
	if got := r.Varint(); got != math.MaxInt64 {
		t.Fatalf("varint max: %d", got)
	}
	if r.Bool() || !r.Bool() {
		t.Fatal("bools")
	}
	if got := r.Float64(); !math.IsInf(got, -1) {
		t.Fatalf("float -inf: %v", got)
	}
	if got := r.Float64(); got != 0.1 {
		t.Fatalf("float: %v", got)
	}
	if got := r.LimitedBytes(16); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("bytes: %v", got)
	}
	if got := r.LimitedString(16); got != "hé" {
		t.Fatalf("string: %q", got)
	}
	if r.Err() != nil || r.Len() != 0 {
		t.Fatalf("err=%v len=%d", r.Err(), r.Len())
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{0x80}) // unterminated varint
	r.Uvarint()
	if r.Err() == nil {
		t.Fatal("expected error")
	}
	// Every later read is a zero-value no-op.
	if r.Uvarint() != 0 || r.Varint() != 0 || r.Bool() || r.LimitedString(8) != "" {
		t.Fatal("reads after error not zero")
	}
	// Count larger than remaining bytes is rejected.
	r2 := NewReader([]byte{5, 1, 2})
	if r2.Count(100) != 0 || r2.Err() == nil {
		t.Fatal("count beyond payload accepted")
	}
	// Count beyond the limit is rejected even if bytes exist.
	r3 := NewReader([]byte{5, 1, 2, 3, 4, 5})
	if r3.Count(3) != 0 || r3.Err() == nil {
		t.Fatal("count beyond limit accepted")
	}
	// Corrupt bool byte.
	r4 := NewReader([]byte{7})
	r4.Bool()
	if r4.Err() == nil {
		t.Fatal("bool 7 accepted")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	sn := sampleSnapshot()
	if st.Has(sn.Key) {
		t.Fatal("Has before Save")
	}
	if _, err := st.Load(sn.Key); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing key: %v", err)
	}
	if err := st.Save(sn); err != nil {
		t.Fatal(err)
	}
	if !st.Has(sn.Key) {
		t.Fatal("Has after Save")
	}
	got, err := st.Load(sn.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sn, got) {
		t.Fatal("store round trip mismatch")
	}
	// Filenames are content addresses of the key, not raw keys.
	base := filepath.Base(st.Path(sn.Key))
	if strings.Contains(base, "|") || !strings.HasSuffix(base, ".poisesnap") {
		t.Fatalf("unexpected store filename %q", base)
	}
	if err := st.Delete(sn.Key); err != nil {
		t.Fatal(err)
	}
	if st.Has(sn.Key) {
		t.Fatal("Has after Delete")
	}
	if err := st.Delete(sn.Key); err != nil {
		t.Fatal("double delete should be a no-op")
	}
	// No leftover temp files.
	if err := st.Save(sn); err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, ".tmp-*"))
	if len(matches) != 0 {
		t.Fatalf("temp files left behind: %v", matches)
	}
}
