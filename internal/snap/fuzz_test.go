package snap

import (
	"bytes"
	"compress/gzip"
	"testing"
)

// FuzzSnapshot drives Decode with arbitrary bytes, enforcing the
// never-panic discipline of the poisesnap parser: truncation, corrupt
// varints, bad magic and version skew must all surface as errors, and
// any input Decode accepts must pass Validate and re-encode to a
// container that decodes to the same snapshot.
func FuzzSnapshot(f *testing.F) {
	sn := sampleSnapshot()
	valid, err := sn.Encode()
	if err != nil {
		f.Fatal(err)
	}
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write(valid)
	zw.Close()

	f.Add(valid)
	f.Add(gz.Bytes())
	f.Add(valid[:len(valid)/2])   // truncated mid-payload
	f.Add(valid[:len(valid)-3])   // truncated CRC
	f.Add([]byte("POISESNAP\n"))  // magic only
	f.Add([]byte("NOTASNAPSHOT")) // bad magic
	skew := append([]byte(nil), valid...)
	skew[len(Magic)] = 0x7f // version skew
	f.Add(recrc(skew))
	corrupt := append([]byte(nil), valid...)
	for i := len(Magic) + 1; i < len(corrupt)-4; i++ {
		corrupt[i] = 0x80 // unterminated varints everywhere
	}
	f.Add(recrc(corrupt))

	f.Fuzz(func(t *testing.T, data []byte) {
		sn, err := Decode(data) // must never panic
		if err != nil {
			return
		}
		if verr := sn.Validate(); verr != nil {
			t.Fatalf("Decode accepted a snapshot Validate rejects: %v", verr)
		}
		re, err := sn.Encode()
		if err != nil {
			t.Fatalf("re-encode of decoded snapshot failed: %v", err)
		}
		again, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Kind != sn.Kind || again.Key != sn.Key || again.Workload != sn.Workload ||
			again.KernelIndex != sn.KernelIndex || again.Cycle != sn.Cycle || !bytes.Equal(again.State, sn.State) {
			t.Fatal("decode/encode/decode not a fixed point")
		}
	})
}
