package snap

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// Store is a content-addressed snapshot directory: each snapshot lives
// in one file named by the SHA-256 of its key, written atomically
// (temp + rename) so concurrent writers — racing fleet workers, or
// parallel grid cells sharing a prefix — can never tear a file, and a
// crash leaves either the previous content or none. Two writers racing
// on one key both produce a valid file; last rename wins, and since
// keys are content addresses both files decode to equivalent state.
type Store struct {
	dir string
}

// NewStore opens (creating if needed) a snapshot directory.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("snap: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snap: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the file path a key maps to.
func (s *Store) Path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+".poisesnap")
}

// Has reports whether a snapshot for key exists (without decoding it).
func (s *Store) Has(key string) bool {
	_, err := os.Stat(s.Path(key))
	return err == nil
}

// Save writes the snapshot under its Key, atomically. The snapshot's
// Key must be non-empty.
func (s *Store) Save(sn *Snapshot) error {
	if sn == nil || sn.Key == "" {
		return errors.New("snap: snapshot needs a key to be stored")
	}
	data, err := sn.Encode()
	if err != nil {
		return err
	}
	final := s.Path(sn.Key)
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("snap: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("snap: %w", werr)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("snap: %w", err)
	}
	return nil
}

// Load reads and decodes the snapshot for key. A missing file returns
// fs.ErrNotExist (wrapped); a corrupt file returns the decode error —
// callers using the store as a cache treat both as a miss.
func (s *Store) Load(key string) (*Snapshot, error) {
	data, err := os.ReadFile(s.Path(key))
	if err != nil {
		return nil, err
	}
	sn, err := Decode(data)
	if err != nil {
		return nil, err
	}
	if sn.Key != key {
		return nil, fmt.Errorf("snap: key mismatch: file for %q holds %q", key, sn.Key)
	}
	return sn, nil
}

// Delete removes the snapshot for key (no-op when absent).
func (s *Store) Delete(key string) error {
	err := os.Remove(s.Path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}
