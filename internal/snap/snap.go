// Package snap is the "poisesnap" on-disk snapshot format: a
// versioned, CRC-guarded container for mid-run simulator state and
// kernel-boundary prefix snapshots. Like the poisetrace container
// (internal/traceio) it follows the never-panic parser discipline —
// truncated input, corrupt varints, bad magic and version skew all
// surface as errors, enforced by FuzzSnapshot — and it reads
// gzip-compressed containers transparently.
//
// Layout, version 1:
//
//	magic   "POISESNAP\n"                        (10 bytes)
//	uvarint version                              (currently 1)
//	uvarint kind
//	string  key        (uvarint length + bytes)
//	string  workload
//	uvarint kernelIndex
//	varint  cycle
//	bytes   state      (uvarint length + opaque payload)
//	uint32  CRC32 (IEEE) of everything above     (4 bytes, little endian)
//
// The state payload is written with the same Writer primitives by the
// package that owns the state (sim, cache, sm, ...); snap treats it as
// opaque bytes so the container's integrity check covers it without
// knowing its schema.
package snap

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

const (
	// Magic opens every poisesnap container.
	Magic = "POISESNAP\n"
	// Version is the current container version.
	Version = 1

	// maxString bounds key/workload strings so a corrupt length prefix
	// cannot OOM the parser.
	maxString = 1 << 16
	// maxState bounds the state payload a reader will allocate for.
	maxState = 1 << 30
)

// Kind classifies what a snapshot's state payload contains.
type Kind uint8

const (
	// KindBoundary is a kernel-boundary prefix snapshot: full GPU state
	// between two kernels of a workload plus the aggregate so far.
	KindBoundary Kind = iota
	// KindCheckpoint is a mid-kernel workload checkpoint taken when a
	// preemptible run was interrupted.
	KindCheckpoint
	// KindTask is a mid-kernel checkpoint of one profile sweep task.
	KindTask

	kindCount
)

func (k Kind) String() string {
	switch k {
	case KindBoundary:
		return "boundary"
	case KindCheckpoint:
		return "checkpoint"
	case KindTask:
		return "task"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Snapshot is one decoded poisesnap container.
type Snapshot struct {
	Kind Kind
	// Key is the snapshot's logical address: a prefix-chain digest for
	// boundary snapshots, a task or checkpoint key otherwise.
	Key string
	// Workload names the workload (or kernel) the state belongs to.
	Workload string
	// KernelIndex is the index of the next kernel to run (boundary) or
	// the interrupted kernel (checkpoint/task).
	KernelIndex int
	// Cycle is the simulation cycle at which the state was captured
	// (the completed prefix's cycle count for boundary snapshots).
	Cycle int64
	// State is the opaque engine-state payload.
	State []byte
}

// Validate checks the structural invariants Decode guarantees, so a
// snapshot built by hand goes through the same gate as a parsed one.
func (s *Snapshot) Validate() error {
	if s == nil {
		return errors.New("snap: nil snapshot")
	}
	if s.Kind >= kindCount {
		return fmt.Errorf("snap: unknown kind %d", s.Kind)
	}
	if len(s.Key) > maxString {
		return fmt.Errorf("snap: key too long (%d bytes)", len(s.Key))
	}
	if len(s.Workload) > maxString {
		return fmt.Errorf("snap: workload name too long (%d bytes)", len(s.Workload))
	}
	if s.KernelIndex < 0 {
		return fmt.Errorf("snap: negative kernel index %d", s.KernelIndex)
	}
	if s.Cycle < 0 {
		return fmt.Errorf("snap: negative cycle %d", s.Cycle)
	}
	if len(s.State) > maxState {
		return fmt.Errorf("snap: state too large (%d bytes)", len(s.State))
	}
	return nil
}

// Encode serialises the snapshot, including the trailing CRC.
func (s *Snapshot) Encode() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	w := NewWriter()
	w.buf = append(w.buf, Magic...)
	w.Uvarint(Version)
	w.Uvarint(uint64(s.Kind))
	w.String(s.Key)
	w.String(s.Workload)
	w.Uvarint(uint64(s.KernelIndex))
	w.Varint(s.Cycle)
	w.Bytes(s.State)
	sum := crc32.ChecksumIEEE(w.buf)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, sum)
	return w.buf, nil
}

// Decode parses a poisesnap container, transparently decompressing
// gzip input. It never panics on malformed input, and every snapshot
// it returns passes Validate.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("snap: gzip: %w", err)
		}
		raw, err := io.ReadAll(io.LimitReader(zr, maxState+maxString*4))
		if cerr := zr.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("snap: gzip: %w", err)
		}
		data = raw
	}
	if len(data) < len(Magic)+4 {
		return nil, errors.New("snap: truncated container")
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, errors.New("snap: bad magic")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("snap: checksum mismatch (got %08x want %08x)", got, want)
	}
	r := NewReader(body[len(Magic):])
	if v := r.Uvarint(); r.Err() == nil && v != Version {
		return nil, fmt.Errorf("snap: unsupported version %d (have %d)", v, Version)
	}
	s := &Snapshot{}
	s.Kind = Kind(r.Uvarint())
	s.Key = r.LimitedString(maxString)
	s.Workload = r.LimitedString(maxString)
	s.KernelIndex = int(r.Uvarint())
	s.Cycle = r.Varint()
	s.State = r.LimitedBytes(maxState)
	if r.Len() != 0 && r.Err() == nil {
		return nil, fmt.Errorf("snap: %d trailing bytes", r.Len())
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Writer builds a payload from varint-packed primitives. The zero
// value is not usable; construct with NewWriter.
type Writer struct {
	buf []byte
	tmp [binary.MaxVarintLen64]byte
}

// NewWriter returns an empty writer.
func NewWriter() *Writer { return &Writer{buf: make([]byte, 0, 256)} }

// Data returns the accumulated payload.
func (w *Writer) Data() []byte { return w.buf }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	n := binary.PutUvarint(w.tmp[:], v)
	w.buf = append(w.buf, w.tmp[:n]...)
}

// Varint appends a zigzag-encoded signed varint.
func (w *Writer) Varint(v int64) {
	n := binary.PutVarint(w.tmp[:], v)
	w.buf = append(w.buf, w.tmp[:n]...)
}

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// Float64 appends the IEEE-754 bits of v (exact round trip).
func (w *Writer) Float64(v float64) { w.Uvarint(math.Float64bits(v)) }

// Bytes appends a length-prefixed byte slice.
func (w *Writer) Bytes(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Reader consumes a payload written by Writer. Errors are sticky: the
// first malformed read poisons the reader, every later read returns a
// zero value, and Err reports the failure — so decode functions can
// read a whole schema unconditionally and check once. It never panics
// on malformed input.
type Reader struct {
	buf []byte
	err error
}

// NewReader wraps a payload.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Len returns the unread byte count.
func (r *Reader) Len() int { return len(r.buf) }

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("snap: "+format, args...)
	}
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.fail("corrupt uvarint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

// Varint reads a zigzag-encoded signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.fail("corrupt varint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

// Bool reads a boolean byte (anything but 0 or 1 is corrupt).
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if len(r.buf) == 0 {
		r.fail("truncated bool")
		return false
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	if b > 1 {
		r.fail("corrupt bool %d", b)
		return false
	}
	return b == 1
}

// Float64 reads IEEE-754 bits written by Writer.Float64.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.Uvarint()) }

// Int reads a varint and checks it fits the platform int.
func (r *Reader) Int() int {
	v := r.Varint()
	if int64(int(v)) != v {
		r.fail("varint %d overflows int", v)
		return 0
	}
	return int(v)
}

// Count reads a uvarint length and checks it against both the given
// limit and the remaining payload size, so a corrupt count can neither
// OOM a pre-allocation nor promise more elements than the payload
// could possibly hold (each element is at least one byte).
func (r *Reader) Count(limit int) int {
	v := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(limit) || v > uint64(len(r.buf)) {
		r.fail("count %d out of range (limit %d, %d bytes left)", v, limit, len(r.buf))
		return 0
	}
	return int(v)
}

// LimitedBytes reads a length-prefixed byte slice of at most limit
// bytes, copying out of the underlying buffer.
func (r *Reader) LimitedBytes(limit int) []byte {
	n := r.Count(limit)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[:n])
	r.buf = r.buf[n:]
	return out
}

// LimitedString reads a length-prefixed string of at most limit bytes.
func (r *Reader) LimitedString(limit int) string {
	n := r.Count(limit)
	if r.err != nil {
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}
