package trace

import (
	"testing"
	"testing/quick"
)

func ctx(warp int) Ctx { return Ctx{GlobalWarp: warp} }

func TestPrivateSweepDisjointWarps(t *testing.T) {
	p := PrivateSweep{Region: 1, Lines: 16, Step: 1}
	seen := map[uint64]int{}
	for w := 0; w < 4; w++ {
		for s := 0; s < 64; s++ {
			a := p.Addr(ctx(w), s)
			if prev, ok := seen[a]; ok && prev != w {
				t.Fatalf("warps %d and %d share address %x", prev, w, a)
			}
			seen[a] = w
		}
	}
}

func TestPrivateSweepFootprint(t *testing.T) {
	p := PrivateSweep{Region: 2, Lines: 12, Step: 1}
	distinct := map[uint64]bool{}
	for s := 0; s < 200; s++ {
		distinct[p.Addr(ctx(0), s)] = true
	}
	if len(distinct) != 12 {
		t.Fatalf("footprint = %d lines, want 12", len(distinct))
	}
	if p.Footprint() != 12 {
		t.Fatalf("Footprint() = %d", p.Footprint())
	}
}

func TestDwellGroupsAccesses(t *testing.T) {
	p := PrivateSweep{Region: 3, Lines: 8, Step: 1, Dwell: 4}
	for s := 0; s < 32; s += 4 {
		base := p.Addr(ctx(0), s)
		for k := 1; k < 4; k++ {
			if p.Addr(ctx(0), s+k) != base {
				t.Fatalf("dwell group broken at seq %d", s+k)
			}
		}
		if s >= 4 && p.Addr(ctx(0), s) == p.Addr(ctx(0), s-4) {
			t.Fatalf("consecutive dwell groups should differ at seq %d", s)
		}
	}
}

func TestSharedSweepIsShared(t *testing.T) {
	p := SharedSweep{Region: 4, Lines: 32, Step: 1}
	if p.Addr(ctx(0), 5) != p.Addr(ctx(9), 5) {
		t.Fatal("warps at the same seq with no lag must collide")
	}
	lagged := SharedSweep{Region: 4, Lines: 32, Step: 1, Lag: 3}
	if lagged.Addr(ctx(0), 5) == lagged.Addr(ctx(1), 5) {
		t.Fatal("lagged warps must be offset")
	}
}

func TestStreamMonotoneNoReuse(t *testing.T) {
	s := Stream{Region: 5, WrapLines: 1 << 12}
	prev := uint64(0)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		a := s.Addr(ctx(0), i)
		if seen[a] {
			t.Fatalf("stream reused address %x at seq %d", a, i)
		}
		seen[a] = true
		if a < prev {
			t.Fatal("stream must advance monotonically before wrap")
		}
		prev = a
	}
}

func TestIrregularPrivateStaysInRegion(t *testing.T) {
	p := IrregularPrivate{Region: 6, Lines: 100, Seed: 1}
	base := p.Addr(ctx(3), 0) &^ ((1 << warpRegionShift) - 1)
	for s := 0; s < 500; s++ {
		a := p.Addr(ctx(3), s)
		if a&^((1<<warpRegionShift)-1) != base {
			t.Fatalf("address %x escaped warp region %x", a, base)
		}
		off := (a - base) / LineBytes
		if off >= 100 {
			t.Fatalf("line offset %d beyond footprint", off)
		}
	}
}

func TestIrregularSharedCluster(t *testing.T) {
	p := IrregularShared{Region: 7, Lines: 1000, Seed: 2, Cluster: 4}
	// Two warps at the same seq must be within the cluster radius.
	for s := 0; s < 100; s++ {
		a := p.Addr(ctx(0), s) / LineBytes
		b := p.Addr(ctx(1), s) / LineBytes
		d := int64(a) - int64(b)
		if d < 0 {
			d = -d
		}
		// Clustered jitter keeps same-seq accesses within Cluster lines
		// (modulo the region wrap).
		if d >= 4 && d <= int64(1000-4) {
			t.Fatalf("seq %d: warps %d lines apart, cluster is 4", s, d)
		}
	}
}

func TestPhasedSwitch(t *testing.T) {
	a := PrivateSweep{Region: 8, Lines: 4, Step: 1}
	b := PrivateSweep{Region: 9, Lines: 4, Step: 1}
	p := Phased{SwitchAt: 10, A: a, B: b}
	if p.Addr(ctx(0), 9) != a.Addr(ctx(0), 9) {
		t.Fatal("before switch must use A")
	}
	if p.Addr(ctx(0), 10) != b.Addr(ctx(0), 0) {
		t.Fatal("after switch must use B with rebased seq")
	}
	if p.Footprint() != 4 {
		t.Fatalf("Footprint = %d", p.Footprint())
	}
}

// Property: every pattern is a pure function of (ctx, seq).
func TestPatternsDeterministic(t *testing.T) {
	pats := []Pattern{
		PrivateSweep{Region: 10, Lines: 33, Step: 1, Dwell: 2},
		SharedSweep{Region: 11, Lines: 77, Step: 1, Lag: 2, Dwell: 3},
		Stream{Region: 12, WrapLines: 1024, Dwell: 4},
		IrregularPrivate{Region: 13, Lines: 50, Seed: 3, Dwell: 2},
		IrregularShared{Region: 14, Lines: 200, Seed: 4, Cluster: 8},
	}
	f := func(warp uint8, seq uint16) bool {
		c := ctx(int(warp))
		for _, p := range pats {
			if p.Addr(c, int(seq)) != p.Addr(c, int(seq)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: all pattern addresses are line-aligned.
func TestPatternAlignment(t *testing.T) {
	pats := []Pattern{
		PrivateSweep{Region: 20, Lines: 9, Step: 1},
		SharedSweep{Region: 21, Lines: 13, Step: 1},
		Stream{Region: 22},
		IrregularPrivate{Region: 23, Lines: 7, Seed: 5},
		IrregularShared{Region: 24, Lines: 11, Seed: 6},
	}
	f := func(warp uint8, seq uint16) bool {
		for _, p := range pats {
			if p.Addr(ctx(int(warp)), int(seq))%LineBytes != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRegionsDisjoint(t *testing.T) {
	a := PrivateSweep{Region: 30, Lines: 1000, Step: 1}
	b := PrivateSweep{Region: 31, Lines: 1000, Step: 1}
	for s := 0; s < 100; s++ {
		if a.Addr(ctx(0), s) == b.Addr(ctx(0), s) {
			t.Fatal("different regions must not collide")
		}
	}
}

// reseedSpy is an out-of-package-style pattern exercising the Reseeder
// extension point of Reseed.
type reseedSpy struct {
	Stream
	delta uint64
}

func (r reseedSpy) Reseed(delta uint64) Pattern {
	r.delta ^= delta
	return r
}

func TestReseedHonoursReseederInterface(t *testing.T) {
	p := Reseed(reseedSpy{Stream: Stream{Region: 9}}, 0xabc)
	spy, ok := p.(reseedSpy)
	if !ok {
		t.Fatalf("Reseed returned %T, want reseedSpy", p)
	}
	if spy.delta != 0xabc {
		t.Fatalf("custom Reseed not invoked: delta = %#x", spy.delta)
	}
	// Delta 0 is the identity and must not call the hook.
	if q := Reseed(reseedSpy{}, 0); q.(reseedSpy).delta != 0 {
		t.Fatal("Reseed(_, 0) must be the identity")
	}
	// Phased recurses into Reseeder phases too.
	ph := Reseed(Phased{SwitchAt: 1, A: reseedSpy{}, B: Stream{Region: 2}}, 5).(Phased)
	if ph.A.(reseedSpy).delta != 5 {
		t.Fatal("Reseed must recurse through Phased into Reseeder phases")
	}
}
