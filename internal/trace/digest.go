package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// KernelDigest fingerprints a kernel's content: structure, body,
// per-warp iteration counts and pattern addresses sampled across warps
// and iterations. Sampling keeps the digest cheap while still moving
// whenever the kernel is regenerated differently (a different seed or
// source perturbs essentially every address of the stochastic
// streams). Plan workers compare it against a task's recorded digest
// before simulating, and the simulator's prefix cache chains it into
// snapshot keys, so a stale catalogue cannot silently corrupt a sweep
// or alias a cache entry.
func KernelDigest(k *Kernel) string {
	d := sha256.New()
	fmt.Fprintf(d, "%s;%d;%d;%d;%d;%d;%d;%v", k.Name, k.Iters,
		k.WarpsPerBlock, k.Blocks, k.MaxWarpsPerSched, k.MaxBlocksPerSM,
		k.Seed, k.IterJitter)
	for _, ins := range k.Body {
		fmt.Fprintf(d, ",%d.%d.%d.%v", ins.Kind, ins.Slot, ins.UseDist, ins.DepALU)
	}
	for _, it := range k.PerWarpIters {
		fmt.Fprintf(d, ":%d", it)
	}
	total := k.TotalWarps()
	for _, g := range []int{0, total / 3, total / 2, total - 1} {
		if g < 0 || g >= total {
			continue
		}
		ctx := Ctx{GlobalWarp: g, Block: g / k.WarpsPerBlock, WarpInBlk: g % k.WarpsPerBlock}
		iters := k.WarpIters(g)
		for slot, p := range k.Patterns {
			if p == nil {
				continue
			}
			for probe := 0; probe < 16; probe++ {
				seq := probe * iters / 16
				if seq >= iters {
					break
				}
				fmt.Fprintf(d, "@%d.%d.%d=%x", g, slot, seq, p.Addr(ctx, seq))
			}
		}
	}
	return hex.EncodeToString(d.Sum(nil)[:8])
}
