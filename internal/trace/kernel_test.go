package trace

import (
	"testing"
	"testing/quick"
)

func validKernel() *Kernel {
	b := &BodyBuilder{}
	b.Load(1)
	b.ALU(3)
	return &Kernel{
		Name:          "k",
		Body:          b.Body(),
		Patterns:      []Pattern{PrivateSweep{Region: 40, Lines: 8, Step: 1}},
		Iters:         10,
		WarpsPerBlock: 4,
		Blocks:        2,
	}
}

func TestKernelValidateAccepts(t *testing.T) {
	if err := validKernel().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestKernelValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Kernel)
	}{
		{"empty name", func(k *Kernel) { k.Name = "" }},
		{"empty body", func(k *Kernel) { k.Body = nil }},
		{"zero iters", func(k *Kernel) { k.Iters = 0 }},
		{"negative iters", func(k *Kernel) { k.Iters = -4 }},
		{"zero warps", func(k *Kernel) { k.WarpsPerBlock = 0 }},
		{"zero blocks", func(k *Kernel) { k.Blocks = 0 }},
		{"negative jitter", func(k *Kernel) { k.IterJitter = -0.1 }},
		{"jitter >= 1", func(k *Kernel) { k.IterJitter = 1 }},
		{"nil pattern", func(k *Kernel) { k.Patterns = []Pattern{nil} }},
		{"load slot out of range", func(k *Kernel) { k.Body = []Instr{{Kind: OpLoad, Slot: 5}} }},
		{"load slot negative", func(k *Kernel) { k.Body = []Instr{{Kind: OpLoad, Slot: -1}} }},
		{"store slot out of range", func(k *Kernel) { k.Body = []Instr{{Kind: OpStore, Slot: 5}} }},
		{"store slot negative", func(k *Kernel) { k.Body = []Instr{{Kind: OpStore, Slot: -2}} }},
		{"negative usedist", func(k *Kernel) { k.Body = []Instr{{Kind: OpLoad, Slot: 0, UseDist: -1}} }},
		{"unknown op", func(k *Kernel) { k.Body = []Instr{{Kind: OpKind(9)}} }},
		{"per-warp iters wrong length", func(k *Kernel) { k.PerWarpIters = []int{3, 3} }},
		{"per-warp iters zero entry", func(k *Kernel) {
			k.PerWarpIters = make([]int, k.TotalWarps())
			for i := range k.PerWarpIters {
				k.PerWarpIters[i] = 2
			}
			k.PerWarpIters[3] = 0
		}},
	}
	for _, c := range cases {
		k := validKernel()
		c.mutate(k)
		if err := k.Validate(); err == nil {
			t.Fatalf("%s: expected validation error", c.name)
		}
	}
}

func TestPerWarpItersOverride(t *testing.T) {
	k := validKernel()
	k.IterJitter = 0.5 // must be ignored when PerWarpIters is set
	k.PerWarpIters = make([]int, k.TotalWarps())
	for i := range k.PerWarpIters {
		k.PerWarpIters[i] = i + 1
	}
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range k.PerWarpIters {
		if got := k.WarpIters(i); got != i+1 {
			t.Fatalf("WarpIters(%d) = %d, want %d", i, got, i+1)
		}
	}
}

func TestWarpItersJitterBounds(t *testing.T) {
	k := validKernel()
	k.Iters = 100
	k.IterJitter = 0.3
	for w := 0; w < 200; w++ {
		it := k.WarpIters(w)
		if it < 70 || it > 130 {
			t.Fatalf("warp %d iters %d outside [70,130]", w, it)
		}
	}
	// Deterministic per warp.
	if k.WarpIters(7) != k.WarpIters(7) {
		t.Fatal("WarpIters must be deterministic")
	}
	// No jitter => exact.
	k.IterJitter = 0
	if k.WarpIters(3) != 100 {
		t.Fatal("no jitter must return Iters exactly")
	}
}

func TestWarpItersNeverZero(t *testing.T) {
	k := validKernel()
	k.Iters = 1
	k.IterJitter = 0.9
	f := func(w uint16) bool { return k.WarpIters(int(w)) >= 1 }
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBodyBuilder(t *testing.T) {
	b := &BodyBuilder{}
	s0 := b.Load(2)
	b.ALU(3)
	s1 := b.Store()
	b.DepALU(1)
	body := b.Body()
	if len(body) != 6 {
		t.Fatalf("body len = %d, want 6", len(body))
	}
	if s0 != 0 || s1 != 1 || b.Slots() != 2 {
		t.Fatalf("slots wrong: s0=%d s1=%d total=%d", s0, s1, b.Slots())
	}
	if body[0].Kind != OpLoad || body[0].UseDist != 2 {
		t.Fatalf("load wrong: %+v", body[0])
	}
	if body[4].Kind != OpStore {
		t.Fatalf("store wrong: %+v", body[4])
	}
	if !body[5].DepALU {
		t.Fatal("DepALU flag missing")
	}
}

func TestCountsAndIn(t *testing.T) {
	b := &BodyBuilder{}
	b.Load(1)
	b.ALU(4)
	b.Load(1)
	b.ALU(4)
	b.Store()
	k := validKernel()
	k.Body = b.Body()
	k.Patterns = []Pattern{
		PrivateSweep{Region: 41, Lines: 4, Step: 1},
		PrivateSweep{Region: 42, Lines: 4, Step: 1},
		Stream{Region: 43},
	}
	if k.LoadsPerIter() != 2 || k.StoresPerIter() != 1 {
		t.Fatalf("loads=%d stores=%d", k.LoadsPerIter(), k.StoresPerIter())
	}
	if got := k.In(); got != 11.0/2 {
		t.Fatalf("In = %v, want 5.5", got)
	}
	k.Body = []Instr{{Kind: OpALU}}
	k.Patterns = nil
	if k.In() < 100 {
		t.Fatal("loadless kernel must have huge In")
	}
}

func TestTotalWarps(t *testing.T) {
	k := validKernel()
	if k.TotalWarps() != 8 {
		t.Fatalf("TotalWarps = %d, want 8", k.TotalWarps())
	}
}
