// Package trace models GPU kernels as parameterised instruction streams.
//
// The paper's analysis depends on a small number of per-kernel
// characteristics: the number of instructions between adjacent global
// loads (In), the load-to-use dependence distance (which bounds
// instruction-level latency tolerance), the per-warp cache footprint and
// its temporal reuse (intra-warp locality, reuse distance R), and the
// fraction of accesses that hit lines brought in by *other* warps
// (inter-warp locality). A kernel here is a loop body — ALU ops, loads
// and stores — executed Iters times per warp, with one address Pattern
// per load slot. Composing the pattern primitives below reproduces the
// locality signatures of every benchmark in the paper's Table IIIa
// (see package workloads).
//
// Following the paper's modelling assumption (§V-A), each warp load is
// a single fully-coalesced request for one cache line.
package trace

// OpKind is the class of one instruction in a kernel body.
type OpKind uint8

const (
	// OpALU is an arithmetic instruction with no memory access.
	OpALU OpKind = iota
	// OpLoad is a global load; the warp stalls when its program counter
	// reaches the dependent instruction while the load is outstanding.
	OpLoad
	// OpStore is a global store: fire-and-forget write-through traffic.
	OpStore
)

// Instr is one slot in a kernel's loop body.
type Instr struct {
	Kind OpKind
	// Slot identifies the load/store address stream this instruction
	// uses (index into Kernel.Patterns). Only meaningful for memory ops.
	Slot int
	// UseDist is the number of subsequent instructions that are
	// independent of this load. The instruction UseDist+1 positions
	// after the load consumes its value. Only meaningful for OpLoad.
	UseDist int
	// DepALU marks an ALU op that depends on its immediate predecessor,
	// imposing the pipeline latency (Tpipe) before the warp may issue
	// again. Used to model low-ILP compute phases.
	DepALU bool
}

// LineBytes is the cache-line granularity all patterns emit addresses
// at. It matches the 128 B line of the baseline L1/L2.
const LineBytes = 128

// Ctx identifies the warp executing an access, with every coordinate a
// pattern might need to synthesise private or shared address streams.
type Ctx struct {
	GlobalWarp int // unique id across the whole GPU launch
	SM         int
	Sched      int // scheduler within the SM
	Slot       int // warp slot within the scheduler
	Block      int // thread block id
	WarpInBlk  int // warp id within its block
}

// Pattern generates the address stream for one load/store slot.
// seq is the per-warp sequence number of the access (its iteration).
// Implementations must be deterministic pure functions, and must
// derive addresses only from seq and the launch-geometry fields of Ctx
// (GlobalWarp, Block, WarpInBlk) — never the placement fields (SM,
// Sched, Slot), which vary with the scheduling policy. This is what
// makes a kernel's address streams policy-independent, and what lets
// package traceio record a workload once and replay it exactly.
type Pattern interface {
	// Addr returns a LineBytes-aligned byte address.
	Addr(c Ctx, seq int) uint64
	// Footprint returns the approximate number of distinct lines the
	// pattern touches per warp (used by calibration and docs).
	Footprint() int
}

// mix is a splitmix64-style finaliser used by the irregular patterns;
// deterministic and cheap.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Region bases keep the streams of different slots and warps disjoint
// unless sharing is intended. Each pattern owns a Region (a namespace
// id); private per-warp sub-regions are carved below it.
const (
	regionShift     = 40 // 1 TB per region
	warpRegionShift = 24 // 16 MB (131072 lines) per warp sub-region
)

func regionBase(region int) uint64 { return uint64(region+1) << regionShift }

// dwell reduces a sequence number by the pattern's dwell factor: the
// number of consecutive accesses that land in the same line. It models
// spatial locality within a 128 B line (a coalesced warp consuming
// 4-byte elements advances to a new line only every 32 iterations);
// this is the locality that survives even a thrashing baseline and
// gives the GTO configuration its nonzero L1 hit rate.
func dwell(seq, d int) int {
	if d <= 1 {
		return seq
	}
	return seq / d
}

// PrivateSweep cyclically sweeps a per-warp private footprint of Lines
// lines, advancing Step lines every Dwell accesses. It yields pure
// intra-warp temporal locality with reuse distance ≈ Lines (for Step
// coprime with Lines). This is the "ii" style pattern: private posting
// lists revisited many times.
type PrivateSweep struct {
	Region int
	Lines  int
	Step   int
	Dwell  int // consecutive accesses per line (spatial locality); 0/1 = none
}

// Addr implements Pattern.
func (p PrivateSweep) Addr(c Ctx, seq int) uint64 {
	line := (dwell(seq, p.Dwell) * p.Step) % p.Lines
	return regionBase(p.Region) +
		uint64(c.GlobalWarp)<<warpRegionShift +
		uint64(line)*LineBytes
}

// Footprint implements Pattern.
func (p PrivateSweep) Footprint() int { return p.Lines }

// SharedSweep cyclically sweeps a footprint of Lines lines shared by
// every warp on the GPU (think: the B matrix of a GEMM or the x vector
// of an SpMV). Lag staggers warps so that a Lag of zero gives in-phase
// access (maximum inter-warp reuse) and larger Lags spread warps across
// the region.
type SharedSweep struct {
	Region int
	Lines  int
	Step   int
	Lag    int // per-warp phase offset in lines
	Dwell  int // consecutive accesses per line
}

// Addr implements Pattern.
func (p SharedSweep) Addr(c Ctx, seq int) uint64 {
	line := (dwell(seq, p.Dwell)*p.Step + c.GlobalWarp*p.Lag) % p.Lines
	if line < 0 {
		line += p.Lines
	}
	return regionBase(p.Region) + uint64(line)*LineBytes
}

// Footprint implements Pattern.
func (p SharedSweep) Footprint() int { return p.Lines }

// Stream emits a monotonically advancing per-warp stream with no
// temporal reuse (matrix rows read once, points scanned once), though
// Dwell still gives it intra-line spatial locality. The stream wraps at
// WrapLines to bound the address space; make WrapLines much larger than
// any cache to keep it effectively streaming.
type Stream struct {
	Region    int
	WrapLines int
	Dwell     int
}

// Addr implements Pattern.
func (s Stream) Addr(c Ctx, seq int) uint64 {
	wrap := s.WrapLines
	if wrap <= 0 {
		wrap = 1 << 17 // 16 MB default wrap
	}
	return regionBase(s.Region) +
		uint64(c.GlobalWarp)<<warpRegionShift +
		uint64(dwell(seq, s.Dwell)%wrap)*LineBytes
}

// Footprint implements Pattern.
func (s Stream) Footprint() int {
	if s.WrapLines <= 0 {
		return 1 << 17
	}
	return s.WrapLines
}

// IrregularPrivate touches pseudo-random lines inside a per-warp
// private region of Lines lines — the bfs-style pattern: locality
// exists (the region is finite and revisited) but with a long, noisy
// reuse distance.
type IrregularPrivate struct {
	Region int
	Lines  int
	Seed   uint64
	Dwell  int // consecutive accesses per line (short bursts on a vertex)
}

// Addr implements Pattern.
func (p IrregularPrivate) Addr(c Ctx, seq int) uint64 {
	h := mix(uint64(dwell(seq, p.Dwell))*0x9e3779b97f4a7c15 ^ p.Seed ^ uint64(c.GlobalWarp)<<32)
	line := h % uint64(p.Lines)
	return regionBase(p.Region) +
		uint64(c.GlobalWarp)<<warpRegionShift +
		line*LineBytes
}

// Footprint implements Pattern.
func (p IrregularPrivate) Footprint() int { return p.Lines }

// IrregularShared touches pseudo-random lines in a region shared by all
// warps — the cfd/graph-neighbour pattern: each warp rarely re-touches
// its own lines (tiny intra-warp locality) but frequently touches lines
// other warps just fetched (inter-warp locality), with a reuse distance
// on the order of Lines.
type IrregularShared struct {
	Region int
	Lines  int
	Seed   uint64
	// Cluster > 1 makes nearby warps sample nearby lines, raising the
	// short-distance inter-warp hit probability.
	Cluster int
	Dwell   int
}

// Addr implements Pattern.
func (p IrregularShared) Addr(c Ctx, seq int) uint64 {
	cl := p.Cluster
	if cl <= 0 {
		cl = 1
	}
	h := mix(uint64(dwell(seq, p.Dwell))*0x9e3779b97f4a7c15 ^ p.Seed)
	base := h % uint64(p.Lines)
	jitter := mix(h^uint64(c.GlobalWarp)) % uint64(cl)
	line := (base + jitter) % uint64(p.Lines)
	return regionBase(p.Region) + line*LineBytes
}

// Footprint implements Pattern.
func (p IrregularShared) Footprint() int { return p.Lines }

// Phased switches from pattern A to pattern B once a warp's access
// sequence crosses SwitchAt. It models the dynamic phase changes inside
// monolithic kernels that the paper credits Poise with exploiting
// (§VII-D: syrk, gsmv, mvt, atax beat even Static-Best because offline
// profiling is blind to phases).
type Phased struct {
	SwitchAt int
	A, B     Pattern
}

// Addr implements Pattern.
func (p Phased) Addr(c Ctx, seq int) uint64 {
	if seq < p.SwitchAt {
		return p.A.Addr(c, seq)
	}
	return p.B.Addr(c, seq-p.SwitchAt)
}

// Reseeder is implemented by Pattern types defined outside this
// package that want to participate in Reseed (for example a trace
// replayer, whose recorded streams are fixed and reseed to itself).
type Reseeder interface {
	// Reseed returns the pattern with its stochastic streams perturbed
	// by delta; a pattern with no randomness returns itself.
	Reseed(delta uint64) Pattern
}

// Reseed returns a copy of p with its stochastic address stream
// re-seeded by delta (XOR, so delta 0 is the identity). Deterministic
// sweeps and streams have no randomness and return unchanged; Phased
// recurses into both phases, and patterns implementing Reseeder decide
// for themselves. The workload catalogue uses this to derive
// reproducible workload variants from a run seed without touching the
// calibrated footprints and locality structure.
func Reseed(p Pattern, delta uint64) Pattern {
	if delta == 0 {
		return p
	}
	switch q := p.(type) {
	case IrregularPrivate:
		q.Seed ^= delta
		return q
	case IrregularShared:
		q.Seed ^= delta
		return q
	case Phased:
		q.A = Reseed(q.A, delta)
		q.B = Reseed(q.B, delta)
		return q
	}
	if q, ok := p.(Reseeder); ok {
		return q.Reseed(delta)
	}
	return p
}

// Footprint implements Pattern.
func (p Phased) Footprint() int {
	a, b := p.A.Footprint(), p.B.Footprint()
	if a > b {
		return a
	}
	return b
}
