package trace

import (
	"errors"
	"fmt"
)

// Kernel is one launchable unit of work: a grid of thread blocks, each
// block a set of warps, every warp executing Body for its iteration
// count. Kernels are immutable once built; the simulator only reads.
type Kernel struct {
	Name string

	Body     []Instr   // the loop body
	Patterns []Pattern // one per load/store slot referenced by Body
	Iters    int       // base loop iterations per warp

	// IterJitter spreads per-warp iteration counts in
	// [Iters*(1-j), Iters*(1+j)] deterministically by warp id, modelling
	// irregular work distributions (graph workloads).
	IterJitter float64

	// PerWarpIters, when non-empty, pins each global warp's iteration
	// count exactly (len must equal TotalWarps()), overriding
	// Iters/IterJitter. Trace replay uses it to reproduce recorded
	// per-warp work bit-for-bit.
	PerWarpIters []int

	WarpsPerBlock int
	Blocks        int

	// Occupancy limits (paper §V-C "Scaling": kernels may expose fewer
	// warps than the hardware maximum). Zero means hardware limit.
	MaxWarpsPerSched int
	MaxBlocksPerSM   int

	Seed int64
}

// Validate reports the first structural problem with the kernel.
func (k *Kernel) Validate() error {
	if k.Name == "" {
		return errors.New("trace: kernel needs a name")
	}
	if len(k.Body) == 0 {
		return errors.New("trace: empty body")
	}
	if k.Iters <= 0 {
		return errors.New("trace: Iters must be positive")
	}
	if k.WarpsPerBlock <= 0 || k.Blocks <= 0 {
		return errors.New("trace: WarpsPerBlock and Blocks must be positive")
	}
	if k.IterJitter < 0 || k.IterJitter >= 1 {
		return fmt.Errorf("trace: IterJitter %v outside [0,1)", k.IterJitter)
	}
	if len(k.PerWarpIters) > 0 {
		if len(k.PerWarpIters) != k.TotalWarps() {
			return fmt.Errorf("trace: PerWarpIters has %d entries for %d warps",
				len(k.PerWarpIters), k.TotalWarps())
		}
		for w, it := range k.PerWarpIters {
			if it <= 0 {
				return fmt.Errorf("trace: PerWarpIters[%d] = %d, must be positive", w, it)
			}
		}
	}
	for i, p := range k.Patterns {
		if p == nil {
			return fmt.Errorf("trace: pattern slot %d is nil", i)
		}
	}
	for i, ins := range k.Body {
		switch ins.Kind {
		case OpALU:
		case OpLoad, OpStore:
			if ins.Slot < 0 || ins.Slot >= len(k.Patterns) {
				return fmt.Errorf("trace: body[%d] references slot %d of %d patterns",
					i, ins.Slot, len(k.Patterns))
			}
			if ins.Kind == OpLoad && ins.UseDist < 0 {
				return fmt.Errorf("trace: body[%d] negative UseDist", i)
			}
		default:
			return fmt.Errorf("trace: body[%d] unknown op kind %d", i, ins.Kind)
		}
	}
	return nil
}

// WarpIters returns the iteration count for a given global warp,
// applying the deterministic jitter (or the PerWarpIters override).
func (k *Kernel) WarpIters(globalWarp int) int {
	if len(k.PerWarpIters) > 0 {
		if globalWarp >= 0 && globalWarp < len(k.PerWarpIters) {
			return k.PerWarpIters[globalWarp]
		}
		return 1
	}
	if k.IterJitter == 0 {
		return k.Iters
	}
	h := mix(uint64(globalWarp)*0x9e3779b97f4a7c15 ^ uint64(k.Seed))
	// Uniform in [-jitter, +jitter].
	u := (float64(h>>11)/(1<<53))*2 - 1
	it := int(float64(k.Iters) * (1 + k.IterJitter*u))
	if it < 1 {
		it = 1
	}
	return it
}

// TotalWarps returns the number of warps in the grid.
func (k *Kernel) TotalWarps() int { return k.WarpsPerBlock * k.Blocks }

// LoadsPerIter returns the number of load instructions in one body pass.
func (k *Kernel) LoadsPerIter() int {
	n := 0
	for _, ins := range k.Body {
		if ins.Kind == OpLoad {
			n++
		}
	}
	return n
}

// StoresPerIter returns the number of store instructions per body pass.
func (k *Kernel) StoresPerIter() int {
	n := 0
	for _, ins := range k.Body {
		if ins.Kind == OpStore {
			n++
		}
	}
	return n
}

// In returns the static instructions-between-global-loads metric of the
// body — the quantity the paper calls In and thresholds against Imax to
// detect compute-intensive kernels. (The hardware inference engine
// measures the dynamic equivalent at runtime.)
func (k *Kernel) In() float64 {
	loads := k.LoadsPerIter()
	if loads == 0 {
		return float64(len(k.Body)) * 1000 // effectively infinite
	}
	return float64(len(k.Body)) / float64(loads)
}

// BodyBuilder assembles kernel bodies. Build bodies with it instead of
// hand-writing Instr slices so the slot bookkeeping stays consistent.
type BodyBuilder struct {
	body  []Instr
	slots int
}

// ALU appends n independent ALU instructions.
func (b *BodyBuilder) ALU(n int) *BodyBuilder {
	for i := 0; i < n; i++ {
		b.body = append(b.body, Instr{Kind: OpALU})
	}
	return b
}

// DepALU appends n serially-dependent ALU instructions (each pays the
// pipeline latency before the warp can issue again).
func (b *BodyBuilder) DepALU(n int) *BodyBuilder {
	for i := 0; i < n; i++ {
		b.body = append(b.body, Instr{Kind: OpALU, DepALU: true})
	}
	return b
}

// Load appends a load on a fresh slot with the given use distance and
// returns the slot index (to pair with a Pattern).
func (b *BodyBuilder) Load(useDist int) int {
	slot := b.slots
	b.slots++
	b.body = append(b.body, Instr{Kind: OpLoad, Slot: slot, UseDist: useDist})
	return slot
}

// Store appends a store on a fresh slot and returns the slot index.
func (b *BodyBuilder) Store() int {
	slot := b.slots
	b.slots++
	b.body = append(b.body, Instr{Kind: OpStore, Slot: slot})
	return slot
}

// Body returns the accumulated instruction slice.
func (b *BodyBuilder) Body() []Instr { return b.body }

// Slots returns how many memory slots were allocated; the kernel must
// supply exactly this many patterns.
func (b *BodyBuilder) Slots() int { return b.slots }
