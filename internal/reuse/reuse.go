// Package reuse computes LRU stack distances (reuse distances) for
// address streams. The paper's feature analysis (§V-B, Fig. 4) uses the
// reuse distance R of a kernel to explain when throttling the polluting
// warps can recover intra-warp locality: a footprint with R below the
// cache's line capacity fits once thrashing stops, a large R does not.
//
// The profiler here serves two roles in the reproduction: it calibrates
// the synthetic workloads to the per-benchmark R values reported in the
// paper, and it powers the Fig. 4 experiment.
package reuse

// Profiler tracks an address stream and reports the stack distance of
// each access: the number of *distinct* lines referenced since the
// previous access to the same line (infinite for first touches).
//
// The implementation keeps the classic LRU stack as a doubly linked
// list with a map index and counts depth by walking; streams in this
// project are short enough (millions of accesses, thousands of distinct
// lines) that the O(depth) walk is faster in practice than a balanced
// tree, and it has no dependencies.
type Profiler struct {
	index map[uint64]*node
	head  *node // most recently used
	tail  *node // least recently used
	size  int

	// Histogram of finite distances, capped; overflow counts lump into
	// the last bucket. ColdMisses counts first touches.
	hist       []int64
	capDist    int
	ColdMisses int64
	Accesses   int64
	sumDist    float64
	finite     int64
}

type node struct {
	addr       uint64
	prev, next *node
}

// NewProfiler returns a profiler whose histogram resolves distances up
// to maxDist (larger distances all count in the final bucket).
func NewProfiler(maxDist int) *Profiler {
	if maxDist < 1 {
		maxDist = 1
	}
	return &Profiler{
		index:   make(map[uint64]*node),
		hist:    make([]int64, maxDist+1),
		capDist: maxDist,
	}
}

// Touch records an access to line addr and returns its stack distance,
// or -1 for a cold (first) access.
func (p *Profiler) Touch(addr uint64) int {
	p.Accesses++
	n, ok := p.index[addr]
	if !ok {
		p.ColdMisses++
		n = &node{addr: addr}
		p.index[addr] = n
		p.pushFront(n)
		p.size++
		return -1
	}
	// Walk from head to find depth (number of distinct lines above it).
	depth := 0
	for cur := p.head; cur != nil && cur != n; cur = cur.next {
		depth++
	}
	p.remove(n)
	p.pushFront(n)
	d := depth
	if d > p.capDist {
		d = p.capDist
	}
	p.hist[d]++
	p.sumDist += float64(depth)
	p.finite++
	return depth
}

func (p *Profiler) pushFront(n *node) {
	n.prev = nil
	n.next = p.head
	if p.head != nil {
		p.head.prev = n
	}
	p.head = n
	if p.tail == nil {
		p.tail = n
	}
}

func (p *Profiler) remove(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		p.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		p.tail = n.prev
	}
}

// Distinct returns the number of distinct lines seen.
func (p *Profiler) Distinct() int { return p.size }

// MeanDistance returns the mean finite stack distance — the "R" a
// workload reports in the Fig. 4 analysis — or 0 if no line was reused.
func (p *Profiler) MeanDistance() float64 {
	if p.finite == 0 {
		return 0
	}
	return p.sumDist / float64(p.finite)
}

// Histogram returns a copy of the distance histogram; bucket i counts
// accesses with stack distance i, and the final bucket also absorbs all
// larger distances.
func (p *Profiler) Histogram() []int64 {
	return append([]int64(nil), p.hist...)
}

// HitRateAtCapacity returns the fraction of accesses that would hit in
// a fully-associative LRU cache holding lines lines — the classic use
// of a reuse-distance profile. Cold misses count as misses.
func (p *Profiler) HitRateAtCapacity(lines int) float64 {
	if p.Accesses == 0 {
		return 0
	}
	if lines > p.capDist {
		lines = p.capDist
	}
	var hits int64
	for d := 0; d < lines && d < len(p.hist); d++ {
		hits += p.hist[d]
	}
	return float64(hits) / float64(p.Accesses)
}
