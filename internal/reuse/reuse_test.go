package reuse

import (
	"testing"
	"testing/quick"

	"poise/internal/stats"
)

// naiveStackDistance computes the stack distance of each access by
// brute force: the number of distinct addresses since the previous
// access to the same address (-1 for cold).
func naiveStackDistance(stream []uint64) []int {
	out := make([]int, len(stream))
	for i, a := range stream {
		last := -1
		for j := i - 1; j >= 0; j-- {
			if stream[j] == a {
				last = j
				break
			}
		}
		if last < 0 {
			out[i] = -1
			continue
		}
		distinct := map[uint64]bool{}
		for j := last + 1; j < i; j++ {
			distinct[stream[j]] = true
		}
		out[i] = len(distinct)
	}
	return out
}

func TestProfilerMatchesNaive(t *testing.T) {
	stream := []uint64{1, 2, 3, 1, 2, 2, 4, 1, 5, 3}
	want := naiveStackDistance(stream)
	p := NewProfiler(64)
	for i, a := range stream {
		got := p.Touch(a)
		if got != want[i] {
			t.Fatalf("access %d (addr %d): distance %d, want %d", i, a, got, want[i])
		}
	}
}

// Property: profiler agrees with the naive reference on random streams.
func TestProfilerMatchesNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		n := 20 + rng.Intn(80)
		space := 1 + rng.Intn(20)
		stream := make([]uint64, n)
		for i := range stream {
			stream[i] = uint64(rng.Intn(space))
		}
		want := naiveStackDistance(stream)
		p := NewProfiler(256)
		for i, a := range stream {
			if p.Touch(a) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestColdMissesAndDistinct(t *testing.T) {
	p := NewProfiler(16)
	for _, a := range []uint64{1, 2, 3, 1, 2} {
		p.Touch(a)
	}
	if p.ColdMisses != 3 {
		t.Fatalf("ColdMisses = %d, want 3", p.ColdMisses)
	}
	if p.Distinct() != 3 {
		t.Fatalf("Distinct = %d, want 3", p.Distinct())
	}
	if p.Accesses != 5 {
		t.Fatalf("Accesses = %d, want 5", p.Accesses)
	}
}

func TestMeanDistance(t *testing.T) {
	p := NewProfiler(16)
	// 1,2,1: the reuse of 1 has distance 1. 2 never reused.
	p.Touch(1)
	p.Touch(2)
	p.Touch(1)
	if got := p.MeanDistance(); got != 1 {
		t.Fatalf("MeanDistance = %v, want 1", got)
	}
	empty := NewProfiler(4)
	if empty.MeanDistance() != 0 {
		t.Fatal("MeanDistance of empty profiler must be 0")
	}
}

func TestHitRateAtCapacity(t *testing.T) {
	p := NewProfiler(64)
	// Cyclic sweep over 8 addresses, 10 rounds: after the cold round,
	// every access has stack distance 7.
	for r := 0; r < 10; r++ {
		for a := uint64(0); a < 8; a++ {
			p.Touch(a)
		}
	}
	// A cache of 8 lines captures all 72 reuses; one of 4 captures none.
	if got := p.HitRateAtCapacity(8); got < 0.89 || got > 0.91 {
		t.Fatalf("HitRateAtCapacity(8) = %v, want 0.9", got)
	}
	if got := p.HitRateAtCapacity(4); got != 0 {
		t.Fatalf("HitRateAtCapacity(4) = %v, want 0", got)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	p := NewProfiler(4)
	// Distance 6 reuse must land in the final (capped) bucket.
	for _, a := range []uint64{1, 2, 3, 4, 5, 6, 7, 1} {
		p.Touch(a)
	}
	h := p.Histogram()
	if h[4] != 1 {
		t.Fatalf("overflow bucket = %d, want 1 (hist %v)", h[4], h)
	}
}
