package sched

import (
	"testing"

	"poise/internal/profile"
	"poise/internal/sim"
	"poise/internal/testutil"
	"poise/internal/trace"
)

// profileFor builds a real profile of a tiny kernel at coarse grid.
func profileFor(t *testing.T, k *trace.Kernel) map[string]*profile.Profile {
	t.Helper()
	pr, err := profile.Sweep(testutil.TinyConfig(), k, profile.SweepOptions{StepN: 6, StepP: 6})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*profile.Profile{k.Name: pr}
}

func TestSWLUsesDiagonal(t *testing.T) {
	k := testutil.ThrashKernel("swl", 20, 20, 4)
	profs := profileFor(t, k)
	src := SWLFromProfiles(profs)
	tu, ok := src[k.Name]
	if !ok {
		t.Fatal("SWL tuple missing")
	}
	if tu[0] != tu[1] {
		t.Fatalf("SWL tuple off-diagonal: %v", tu)
	}
	want := profs[k.Name].BestDiagonal()
	if tu[0] != want.N {
		t.Fatalf("SWL tuple %v, want diagonal best %d", tu, want.N)
	}
	// The policy actually applies it.
	g, err := sim.New(testutil.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	pol := SWL(profs)
	if pol.Name() != "SWL" {
		t.Fatal("policy name")
	}
	pol.KernelStart(g, k)
	if n, p := g.SMs[0].Tuple(); n != tu[0] || p != tu[1] {
		t.Fatalf("applied tuple (%d,%d), want %v", n, p, tu)
	}
}

func TestStaticBestUsesGlobalOptimum(t *testing.T) {
	k := testutil.ThrashKernel("sb", 20, 20, 4)
	profs := profileFor(t, k)
	src := BestFromProfiles(profs)
	want := profs[k.Name].Best()
	if src[k.Name] != [2]int{want.N, want.P} {
		t.Fatalf("static-best tuple %v, want (%d,%d)", src[k.Name], want.N, want.P)
	}
}

func TestPCALSWLConvergesAndRuns(t *testing.T) {
	k := testutil.ThrashKernel("pcal", 20, 150, 8)
	profs := profileFor(t, k)
	pol := NewPCALSWL(SWLFromProfiles(profs), 100, 500, 5000)
	res := testutil.RunTiny(k, pol)
	want := int64(k.TotalWarps()) * int64(k.Iters) * int64(len(k.Body))
	if res.Instructions != want {
		t.Fatalf("PCAL corrupted execution: %d != %d", res.Instructions, want)
	}
	if pol.Name() != "PCAL-SWL" {
		t.Fatal("name")
	}
}

func TestPCALStartsAtSWLPoint(t *testing.T) {
	k := testutil.ThrashKernel("pcal2", 20, 30, 4)
	src := TupleSource{k.Name: {5, 5}}
	pol := NewPCALSWL(src, 100, 500, 0)
	g, err := sim.New(testutil.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	pol.KernelStart(g, k)
	if n, p := g.SMs[0].Tuple(); n != 5 || p != 5 {
		t.Fatalf("PCAL start tuple (%d,%d), want (5,5)", n, p)
	}
}

func TestCCWSThrottlesUnderThrash(t *testing.T) {
	k := testutil.ThrashKernel("ccws", 30, 120, 8)
	pol := NewCCWS(2000)
	// The tiny kernel's 30-line sweep needs a victim array deep enough
	// to remember a full sweep between eviction and re-touch.
	pol.VictimEntriesPerWarp = 64
	g, err := sim.New(testutil.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(k, pol, sim.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	// Under heavy lost locality, CCWS must have reduced N below max.
	if n, _ := g.SMs[0].Tuple(); n >= testutil.TinyConfig().WarpsPerSched {
		t.Fatalf("CCWS never throttled (N=%d)", n)
	}
}

func TestCCWSLeavesStreamsAlone(t *testing.T) {
	// A pure stream produces no lost intra-warp locality (nothing is
	// ever reused), so CCWS should keep N high.
	k := testutil.StreamKernel("ccws-s", 60, 4)
	pol := NewCCWS(2000)
	g, err := sim.New(testutil.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(k, pol, sim.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if n, _ := g.SMs[0].Tuple(); n < testutil.TinyConfig().WarpsPerSched-2 {
		t.Fatalf("CCWS over-throttled a stream (N=%d)", n)
	}
}

func TestAPCMBypassesStreamingPC(t *testing.T) {
	// A kernel with one streaming load and one high-reuse load: APCM
	// must mark only the streaming body position for bypass.
	b := &trace.BodyBuilder{}
	b.Load(1) // slot 0: stream
	b.ALU(2)
	b.Load(1) // slot 1: hot reuse
	b.ALU(2)
	k := &trace.Kernel{
		Name: "apcm",
		Body: b.Body(),
		Patterns: []trace.Pattern{
			trace.Stream{Region: 950, WrapLines: 1 << 14},
			trace.PrivateSweep{Region: 951, Lines: 2, Step: 1},
		},
		Iters:         300,
		WarpsPerBlock: 8,
		Blocks:        4,
	}
	pol := NewAPCM(3000)
	g, err := sim.New(testutil.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(k, pol, sim.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	s := g.SMs[0]
	if !s.BypassPC[0] {
		t.Fatal("streaming load position must be bypassed")
	}
	if s.BypassPC[3] {
		t.Fatal("hot load position must not be bypassed")
	}
}

func TestRandomRestartDeterministicPerSeed(t *testing.T) {
	k := testutil.ThrashKernel("rr", 20, 80, 4)
	run := func(seed int64) int64 {
		pol := NewRandomRestart(seed, 100, 400, 4000, 2, 4)
		return testutil.RunTiny(k, pol).Cycles
	}
	if run(1) != run(1) {
		t.Fatal("same seed must reproduce")
	}
	// Different seeds explore differently (almost surely different
	// cycle counts on a thrash kernel).
	if run(1) == run(2) && run(1) == run(3) {
		t.Fatal("seeds do not vary the search")
	}
}

func TestTupleName(t *testing.T) {
	if TupleName(5, 2) != "(5,2)" {
		t.Fatal("TupleName format")
	}
}

func TestIPCWindow(t *testing.T) {
	k := testutil.ThrashKernel("win", 16, 30, 4)
	g, err := sim.New(testutil.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(k, sim.GTO{}, sim.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	// A window opened at cycle 0 with zero counters spans the whole run.
	w := ipcWindow{startInstr: make([]int64, len(g.SMs))}
	ipc := w.ipc(g, g.Now())
	if ipc <= 0 {
		t.Fatalf("window IPC = %v", ipc)
	}
	per := w.ipcPerSM(g, g.Now())
	var sum float64
	for _, v := range per {
		sum += v
	}
	if sum <= 0 {
		t.Fatal("per-SM IPC must be positive")
	}
}
