package sched

import (
	"poise/internal/sim"
	"poise/internal/stats"
	"poise/internal/trace"
)

// RandomRestart is the stochastic-search alternative evaluated in the
// paper's §VII-J: pick a random warp-tuple, gradient-ascend locally
// (same search as Poise's HIE), run until the epoch ends, then restart
// from a new random tuple. It avoids local optima in the limit but has
// no good starting point, so convergence is slow — the behaviour the
// paper contrasts Poise against. Results should be averaged over
// several seeds (the paper uses 20 runs).
type RandomRestart struct {
	Seed    int64
	TWarmup int
	TSample int
	Period  int
	StrideN int
	StrideP int

	rng      *stats.RNG
	maxN     int
	n, p     int
	axisN    bool
	stride   int
	measured map[int]float64
	probe    int
	win      ipcWindow
	state    rrState
	nextAt   int64
	epochEnd int64
}

type rrState int

const (
	rrProbeWarm rrState = iota
	rrProbeSample
	rrRun
)

// NewRandomRestart builds the policy.
func NewRandomRestart(seed int64, warmup, sample, period, strideN, strideP int) *RandomRestart {
	return &RandomRestart{
		Seed: seed, TWarmup: warmup, TSample: sample, Period: period,
		StrideN: strideN, StrideP: strideP,
	}
}

// Name implements sim.Policy.
func (r *RandomRestart) Name() string { return "Random-restart" }

// KernelStart implements sim.Policy.
func (r *RandomRestart) KernelStart(g *sim.GPU, k *trace.Kernel) int64 {
	r.rng = stats.NewRNG(r.Seed ^ int64(len(k.Name))*7919)
	r.maxN = g.MaxN()
	r.restart(g, 0)
	return r.nextAt
}

// KernelEnd implements sim.Policy.
func (r *RandomRestart) KernelEnd(g *sim.GPU, now int64) {}

// restart draws a fresh random tuple and begins a local search.
func (r *RandomRestart) restart(g *sim.GPU, now int64) {
	r.n = 1 + r.rng.Intn(r.maxN)
	r.p = 1 + r.rng.Intn(r.n)
	r.axisN = true
	r.stride = r.StrideN
	r.measured = map[int]float64{}
	r.epochEnd = now + int64(r.Period)
	g.SetTupleAll(r.n, r.p)
	r.searchNext(g, now)
}

// Step implements sim.Policy.
func (r *RandomRestart) Step(g *sim.GPU, now int64) int64 {
	switch r.state {
	case rrProbeWarm:
		r.win = beginWindow(g, now)
		r.state = rrProbeSample
		r.nextAt = now + int64(r.TSample)
	case rrProbeSample:
		r.measured[r.probe] = r.win.ipc(g, now)
		r.searchNext(g, now)
	case rrRun:
		if now >= r.epochEnd {
			r.restart(g, now)
		} else {
			r.nextAt = r.epochEnd
		}
	}
	return r.nextAt
}

func (r *RandomRestart) scheduleProbe(g *sim.GPU, now int64, pos int) {
	n, p := r.n, r.p
	if r.axisN {
		n = pos
		if p > n {
			p = n
		}
	} else {
		p = pos
	}
	g.SetTupleAll(n, p)
	r.probe = pos
	r.state = rrProbeWarm
	r.nextAt = now + int64(r.TWarmup)
}

// searchNext mirrors the HIE's gradient ascent (shared shape, separate
// state; the policies must stay independent like the hardware units
// they model).
func (r *RandomRestart) searchNext(g *sim.GPU, now int64) {
	cur, lo, hi := r.n, 1, r.maxN
	if !r.axisN {
		cur, hi = r.p, r.n
	}
	if _, ok := r.measured[cur]; !ok {
		r.scheduleProbe(g, now, cur)
		return
	}
	for _, nb := range []int{cur - r.stride, cur + r.stride} {
		if nb >= lo && nb <= hi {
			if _, ok := r.measured[nb]; !ok {
				r.scheduleProbe(g, now, nb)
				return
			}
		}
	}
	bestPos, bestIPC := cur, r.measured[cur]
	for _, nb := range []int{cur - r.stride, cur + r.stride} {
		if nb >= lo && nb <= hi && r.measured[nb] > bestIPC {
			bestPos, bestIPC = nb, r.measured[nb]
		}
	}
	if bestPos != cur {
		if r.axisN {
			r.n = bestPos
			if r.p > r.n {
				r.p = r.n
			}
		} else {
			r.p = bestPos
		}
		r.searchNext(g, now)
		return
	}
	r.stride /= 2
	if r.stride > 0 {
		r.searchNext(g, now)
		return
	}
	if r.axisN {
		r.axisN = false
		r.stride = r.StrideP
		r.measured = map[int]float64{}
		if r.stride > 0 {
			r.searchNext(g, now)
			return
		}
	}
	g.SetTupleAll(r.n, r.p)
	r.state = rrRun
	r.nextAt = r.epochEnd
}
