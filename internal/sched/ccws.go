package sched

import (
	"poise/internal/sim"
	"poise/internal/trace"
)

// CCWS is the dynamic Cache-Conscious Wavefront Scheduling policy
// (Rogers et al., MICRO 2012), reimplemented at the fidelity the paper
// compares against: per-warp victim tag arrays detect lost intra-warp
// locality, and an aggregate lost-locality score throttles the number
// of schedulable warps (p stays coupled to N, the diagonal of the
// solution space). The paper's evaluation uses the static flavour
// (SWL); the dynamic version is provided for completeness and for the
// pitfalls analysis of §III.
type CCWS struct {
	// VictimEntriesPerWarp sizes the victim tag arrays (8 in the
	// original proposal).
	VictimEntriesPerWarp int
	// TSample is the throttle-decision period in cycles.
	TSample int
	// RaiseThreshold and LowerThreshold bound the lost-locality score
	// (per kilo-cycle, per SM) that triggers throttling up or down.
	RaiseThreshold float64
	LowerThreshold float64

	n      int
	maxN   int
	nextAt int64
}

// NewCCWS returns a CCWS policy with the canonical parameters.
func NewCCWS(sample int) *CCWS {
	return &CCWS{
		VictimEntriesPerWarp: 8,
		TSample:              sample,
		RaiseThreshold:       8.0,
		LowerThreshold:       1.0,
	}
}

// Name implements sim.Policy.
func (c *CCWS) Name() string { return "CCWS" }

// KernelStart implements sim.Policy.
func (c *CCWS) KernelStart(g *sim.GPU, k *trace.Kernel) int64 {
	c.maxN = g.MaxN()
	c.n = c.maxN
	g.SetTupleAll(c.n, c.n)
	for _, s := range g.SMs {
		s.L1.EnableVictimTags(c.VictimEntriesPerWarp, g.Cfg.MaxWarpsPerSM())
		s.L1.Victim().Drain()
	}
	c.nextAt = int64(c.TSample)
	return c.nextAt
}

// KernelEnd implements sim.Policy.
func (c *CCWS) KernelEnd(g *sim.GPU, now int64) {}

// Step implements sim.Policy.
func (c *CCWS) Step(g *sim.GPU, now int64) int64 {
	// Aggregate lost-locality detections across SMs for this window.
	var lost int64
	for _, s := range g.SMs {
		for _, v := range s.L1.Victim().Drain() {
			lost += v
		}
	}
	perKCycle := float64(lost) / float64(len(g.SMs)) / (float64(c.TSample) / 1000)
	switch {
	case perKCycle > c.RaiseThreshold && c.n > 1:
		c.n--
	case perKCycle < c.LowerThreshold && c.n < c.maxN:
		c.n++
	}
	g.SetTupleAll(c.n, c.n)
	c.nextAt = now + int64(c.TSample)
	return c.nextAt
}
