package sched

import (
	"math"

	"poise/internal/sim"
	"poise/internal/trace"
)

// PCALSWL is the dynamic Priority-based Cache Allocation policy seeded
// by SWL (the paper's strongest prior-work comparison point, §VII-C):
//
//  1. Start each kernel at the SWL throttle level (n, n) found by the
//     static profiler — the paper grants PCAL this head start to remove
//     CCWS's runtime overhead from the comparison.
//  2. Search p in parallel across SMs: each SM trials a different p for
//     one sampling window; the best-performing p wins (Li et al.'s
//     per-SM parallel trial).
//  3. Hill-climb N with unit stride: sample N, then N+dir; move while
//     the neighbour improves. This is the step that is prone to the
//     local optima the paper's Fig. 2 dissects.
type PCALSWL struct {
	// Start supplies the per-kernel SWL seed (from profiles).
	Start TupleSource
	// TWarmup/TSample mirror Poise's windows for a fair comparison.
	TWarmup int
	TSample int

	state   pcalState
	n, p    int
	maxN    int
	win     ipcWindow
	nextAt  int64
	curIPC  float64
	dir     int
	perSMp  []int
	epochAt int64
	period  int
}

type pcalState int

const (
	pcalWarm pcalState = iota
	pcalParallelP
	pcalClimbCur
	pcalClimbNext
	pcalRun
)

// NewPCALSWL builds the policy with Poise-equivalent sampling windows.
func NewPCALSWL(start TupleSource, warmup, sample, period int) *PCALSWL {
	return &PCALSWL{Start: start, TWarmup: warmup, TSample: sample, period: period}
}

// Name implements sim.Policy.
func (p *PCALSWL) Name() string { return "PCAL-SWL" }

// KernelStart implements sim.Policy.
func (p *PCALSWL) KernelStart(g *sim.GPU, k *trace.Kernel) int64 {
	p.maxN = g.MaxN()
	n := p.maxN
	if t, ok := p.Start[k.Name]; ok {
		n = t[0]
	}
	if n > p.maxN {
		n = p.maxN
	}
	p.n, p.p = n, n
	g.SetTupleAll(p.n, p.p)
	p.state = pcalWarm
	p.nextAt = int64(p.TWarmup)
	p.epochAt = int64(p.period)
	return p.nextAt
}

// KernelEnd implements sim.Policy.
func (p *PCALSWL) KernelEnd(g *sim.GPU, now int64) {}

// Step implements sim.Policy.
func (p *PCALSWL) Step(g *sim.GPU, now int64) int64 {
	switch p.state {
	case pcalWarm:
		// Parallel p trial: spread candidate p values over the SMs.
		p.perSMp = p.perSMp[:0]
		for i := range g.SMs {
			cand := 1 + (i*(p.n-1))/maxInt(len(g.SMs)-1, 1)
			if cand > p.n {
				cand = p.n
			}
			p.perSMp = append(p.perSMp, cand)
			g.SetTuple(i, p.n, cand)
		}
		p.win = beginWindow(g, now)
		p.state = pcalParallelP
		p.nextAt = now + int64(p.TSample)

	case pcalParallelP:
		per := p.win.ipcPerSM(g, now)
		best, bestIPC := p.p, math.Inf(-1)
		for i, ipc := range per {
			if ipc > bestIPC {
				bestIPC, best = ipc, p.perSMp[i]
			}
		}
		p.p = best
		g.SetTupleAll(p.n, p.p)
		p.win = beginWindow(g, now)
		p.state = pcalClimbCur
		p.nextAt = now + int64(p.TWarmup+p.TSample)
		p.dir = +1

	case pcalClimbCur:
		p.curIPC = p.win.ipc(g, now)
		next := p.n + p.dir
		if next < 1 || next > p.maxN {
			if p.dir == 1 {
				// Try the other direction before giving up.
				p.dir = -1
				p.Step(g, now)
				return p.nextAt
			}
			p.enterRun(g, now)
			return p.nextAt
		}
		g.SetTupleAll(next, minInt(p.p, next))
		p.win = beginWindow(g, now)
		p.state = pcalClimbNext
		p.nextAt = now + int64(p.TWarmup+p.TSample)

	case pcalClimbNext:
		nextIPC := p.win.ipc(g, now)
		cand := p.n + p.dir
		if nextIPC > p.curIPC {
			// Accept the move and keep climbing in this direction.
			p.n = cand
			if p.p > p.n {
				p.p = p.n
			}
			p.curIPC = nextIPC
			p.state = pcalClimbCur
			g.SetTupleAll(p.n, p.p)
			p.Step(g, now)
			return p.nextAt
		}
		if p.dir == 1 {
			// Reverse once, re-probing from the current point.
			p.dir = -1
			g.SetTupleAll(p.n, p.p)
			p.state = pcalClimbCur
			p.win = beginWindow(g, now)
			p.nextAt = now + int64(p.TSample)
			return p.nextAt
		}
		p.enterRun(g, now)

	case pcalRun:
		if p.period > 0 && now >= p.epochAt {
			// Re-tune periodically, like the dynamic scheme it is.
			p.epochAt = now + int64(p.period)
			p.state = pcalWarm
			g.SetTupleAll(p.n, p.p)
			p.nextAt = now + int64(p.TWarmup)
		} else {
			p.nextAt = sim.Never
			if p.period > 0 {
				p.nextAt = p.epochAt
			}
		}
	}
	return p.nextAt
}

func (p *PCALSWL) enterRun(g *sim.GPU, now int64) {
	g.SetTupleAll(p.n, p.p)
	p.state = pcalRun
	p.nextAt = p.epochAt
	if p.period <= 0 {
		p.nextAt = sim.Never
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
