package sched

import (
	"fmt"
	"sort"

	"poise/internal/sim"
	"poise/internal/snap"
	"poise/internal/stats"
)

// Checkpoint codecs for the adaptive policies (sim.StatefulPolicy).
// Only mutable trajectory state crosses the wire: the resuming side
// rebuilds each policy with its original constructor parameters, and
// the codec restores where in its decision process the policy was.
// Deterministic encodings matter — the chaos tests compare checkpoint
// bytes across processes — so map-backed state is written in sorted
// key order.

const (
	maxSMsState     = 1 << 12
	maxPCsState     = 1 << 20
	maxMeasureState = 1 << 12
)

// encodeIPCWindow serialises an in-flight measurement window.
func encodeIPCWindow(w *snap.Writer, win ipcWindow) {
	w.Varint(win.startCycle)
	w.Uvarint(uint64(len(win.startInstr)))
	for _, v := range win.startInstr {
		w.Varint(v)
	}
}

func decodeIPCWindow(r *snap.Reader) (ipcWindow, error) {
	var win ipcWindow
	win.startCycle = r.Varint()
	n := r.Count(maxSMsState)
	for i := 0; i < n; i++ {
		win.startInstr = append(win.startInstr, r.Varint())
	}
	return win, r.Err()
}

// encodeMeasured writes a probe-IPC cache in sorted key order.
func encodeMeasured(w *snap.Writer, m map[int]float64) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.Varint(int64(k))
		w.Float64(m[k])
	}
}

func decodeMeasured(r *snap.Reader) (map[int]float64, error) {
	n := r.Count(maxMeasureState)
	m := map[int]float64{}
	for i := 0; i < n; i++ {
		k := int(r.Varint())
		m[k] = r.Float64()
	}
	return m, r.Err()
}

// EncodePolicyState implements sim.StatefulPolicy.
func (c *CCWS) EncodePolicyState(w *snap.Writer) {
	w.Varint(int64(c.n))
	w.Varint(int64(c.maxN))
	w.Varint(c.nextAt)
}

// DecodePolicyState implements sim.StatefulPolicy.
func (c *CCWS) DecodePolicyState(r *snap.Reader) error {
	c.n = int(r.Varint())
	c.maxN = int(r.Varint())
	c.nextAt = r.Varint()
	return r.Err()
}

// EncodePolicyState implements sim.StatefulPolicy.
func (a *APCM) EncodePolicyState(w *snap.Writer) {
	w.Varint(a.nextAt)
	w.Uvarint(uint64(len(a.prevLoads)))
	for i := range a.prevLoads {
		w.Uvarint(uint64(len(a.prevLoads[i])))
		for pc := range a.prevLoads[i] {
			w.Varint(a.prevLoads[i][pc])
			w.Varint(a.prevHits[i][pc])
		}
	}
}

// DecodePolicyState implements sim.StatefulPolicy.
func (a *APCM) DecodePolicyState(r *snap.Reader) error {
	a.nextAt = r.Varint()
	n := r.Count(maxSMsState)
	a.prevLoads = make([][]int64, n)
	a.prevHits = make([][]int64, n)
	for i := 0; i < n; i++ {
		m := r.Count(maxPCsState)
		a.prevLoads[i] = make([]int64, m)
		a.prevHits[i] = make([]int64, m)
		for pc := 0; pc < m; pc++ {
			a.prevLoads[i][pc] = r.Varint()
			a.prevHits[i][pc] = r.Varint()
		}
	}
	return r.Err()
}

// EncodePolicyState implements sim.StatefulPolicy.
func (p *PCALSWL) EncodePolicyState(w *snap.Writer) {
	w.Varint(int64(p.state))
	w.Varint(int64(p.n))
	w.Varint(int64(p.p))
	w.Varint(int64(p.maxN))
	encodeIPCWindow(w, p.win)
	w.Varint(p.nextAt)
	w.Float64(p.curIPC)
	w.Varint(int64(p.dir))
	w.Uvarint(uint64(len(p.perSMp)))
	for _, v := range p.perSMp {
		w.Varint(int64(v))
	}
	w.Varint(p.epochAt)
}

// DecodePolicyState implements sim.StatefulPolicy.
func (p *PCALSWL) DecodePolicyState(r *snap.Reader) error {
	p.state = pcalState(r.Varint())
	p.n = int(r.Varint())
	p.p = int(r.Varint())
	p.maxN = int(r.Varint())
	win, err := decodeIPCWindow(r)
	if err != nil {
		return err
	}
	p.win = win
	p.nextAt = r.Varint()
	p.curIPC = r.Float64()
	p.dir = int(r.Varint())
	n := r.Count(maxSMsState)
	p.perSMp = p.perSMp[:0]
	for i := 0; i < n; i++ {
		p.perSMp = append(p.perSMp, int(r.Varint()))
	}
	p.epochAt = r.Varint()
	if r.Err() == nil && (p.state < pcalWarm || p.state > pcalRun) {
		return fmt.Errorf("sched: PCAL state %d out of range", p.state)
	}
	return r.Err()
}

// EncodePolicyState implements sim.StatefulPolicy.
func (r *RandomRestart) EncodePolicyState(w *snap.Writer) {
	s := r.rng.State()
	for _, v := range s {
		w.Uvarint(v)
	}
	w.Varint(int64(r.maxN))
	w.Varint(int64(r.n))
	w.Varint(int64(r.p))
	w.Bool(r.axisN)
	w.Varint(int64(r.stride))
	encodeMeasured(w, r.measured)
	w.Varint(int64(r.probe))
	encodeIPCWindow(w, r.win)
	w.Varint(int64(r.state))
	w.Varint(r.nextAt)
	w.Varint(r.epochEnd)
}

// DecodePolicyState implements sim.StatefulPolicy.
func (r *RandomRestart) DecodePolicyState(rd *snap.Reader) error {
	var s [4]uint64
	for i := range s {
		s[i] = rd.Uvarint()
	}
	if r.rng == nil {
		// KernelStart has not run in this process; the seed mix is
		// irrelevant because SetState overwrites it.
		r.rng = stats.NewRNG(0)
	}
	r.rng.SetState(s)
	r.maxN = int(rd.Varint())
	r.n = int(rd.Varint())
	r.p = int(rd.Varint())
	r.axisN = rd.Bool()
	r.stride = int(rd.Varint())
	m, err := decodeMeasured(rd)
	if err != nil {
		return err
	}
	r.measured = m
	r.probe = int(rd.Varint())
	win, err := decodeIPCWindow(rd)
	if err != nil {
		return err
	}
	r.win = win
	r.state = rrState(rd.Varint())
	r.nextAt = rd.Varint()
	r.epochEnd = rd.Varint()
	if rd.Err() == nil && (r.state < rrProbeWarm || r.state > rrRun) {
		return fmt.Errorf("sched: random-restart state %d out of range", r.state)
	}
	return rd.Err()
}

var (
	_ sim.StatefulPolicy = (*CCWS)(nil)
	_ sim.StatefulPolicy = (*APCM)(nil)
	_ sim.StatefulPolicy = (*PCALSWL)(nil)
	_ sim.StatefulPolicy = (*RandomRestart)(nil)
)
