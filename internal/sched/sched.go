// Package sched implements the warp-scheduling policies Poise is
// evaluated against in the paper: SWL (static warp limiting, the static
// flavour of CCWS), dynamic CCWS (victim-tag lost-locality throttling),
// PCAL-SWL (priority-based cache allocation seeded by SWL), Static-Best
// (offline-profiled optimum per kernel), random-restart stochastic
// search, and APCM-style instruction-based cache management. The
// baseline GTO and generic Fixed policies live in package sim.
package sched

import (
	"fmt"

	"poise/internal/profile"
	"poise/internal/sim"
)

// TupleSource resolves a per-kernel warp-tuple from offline profiles.
type TupleSource map[string][2]int

// SWLFromProfiles derives the SWL policy's per-kernel throttle levels:
// the best point on the p == N diagonal of each profile (static CCWS,
// paper §VII-C).
func SWLFromProfiles(profiles map[string]*profile.Profile) TupleSource {
	t := TupleSource{}
	for name, pr := range profiles {
		best := pr.BestDiagonal()
		t[name] = [2]int{best.N, best.P}
	}
	return t
}

// BestFromProfiles derives the Static-Best policy's tuples: the global
// optimum of each profile.
func BestFromProfiles(profiles map[string]*profile.Profile) TupleSource {
	t := TupleSource{}
	for name, pr := range profiles {
		best := pr.Best()
		t[name] = [2]int{best.N, best.P}
	}
	return t
}

// SWL builds the Static Warp Limiting policy from profiled diagonals.
func SWL(profiles map[string]*profile.Profile) sim.Policy {
	return sim.Fixed{PolicyName: "SWL", PerKernel: map[string][2]int(SWLFromProfiles(profiles))}
}

// StaticBest builds the Static-Best policy from profiled optima.
func StaticBest(profiles map[string]*profile.Profile) sim.Policy {
	return sim.Fixed{PolicyName: "Static-Best", PerKernel: map[string][2]int(BestFromProfiles(profiles))}
}

// ipcWindow measures per-SM IPC over sampling windows.
type ipcWindow struct {
	startInstr []int64
	startCycle int64
}

func beginWindow(g *sim.GPU, now int64) ipcWindow {
	w := ipcWindow{startCycle: now}
	for _, s := range g.SMs {
		w.startInstr = append(w.startInstr, s.C.Instructions)
	}
	return w
}

// ipc returns the aggregate IPC since the window began.
func (w ipcWindow) ipc(g *sim.GPU, now int64) float64 {
	if now <= w.startCycle {
		return 0
	}
	var d int64
	for i, s := range g.SMs {
		d += s.C.Instructions - w.startInstr[i]
	}
	return float64(d) / float64(now-w.startCycle)
}

// ipcPerSM returns each SM's IPC since the window began.
func (w ipcWindow) ipcPerSM(g *sim.GPU, now int64) []float64 {
	out := make([]float64, len(g.SMs))
	if now <= w.startCycle {
		return out
	}
	for i, s := range g.SMs {
		out[i] = float64(s.C.Instructions-w.startInstr[i]) / float64(now-w.startCycle)
	}
	return out
}

// TupleName formats a warp-tuple the way the paper writes them.
func TupleName(n, p int) string { return fmt.Sprintf("(%d,%d)", n, p) }
