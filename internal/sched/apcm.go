package sched

import (
	"poise/internal/sim"
	"poise/internal/trace"
)

// APCM is the access-pattern-aware cache management comparison point of
// paper §VII-J (Koo et al., ISCA 2017), reimplemented at the fidelity
// the comparison needs: per-load-instruction locality monitoring that
// classifies streaming PCs and makes their misses bypass the L1
// (protecting the lines of high-reuse instructions from pollution).
// TLP is left at maximum — the paper's point is precisely that
// bypassing schemes lack the multithreading knob, so Poise wins by
// also steering N.
type APCM struct {
	// TSample is the classification period in cycles.
	TSample int
	// StreamHitMax classifies a PC as streaming when its window hit
	// rate stays at or below this value.
	StreamHitMax float64
	// MinLoads is the evidence threshold before classifying a PC.
	MinLoads int64

	nextAt    int64
	prevLoads [][]int64
	prevHits  [][]int64
}

// NewAPCM builds the policy with the canonical thresholds.
func NewAPCM(sample int) *APCM {
	return &APCM{TSample: sample, StreamHitMax: 0.05, MinLoads: 64}
}

// Name implements sim.Policy.
func (a *APCM) Name() string { return "APCM" }

// KernelStart implements sim.Policy.
func (a *APCM) KernelStart(g *sim.GPU, k *trace.Kernel) int64 {
	max := g.MaxN()
	g.SetTupleAll(max, max)
	a.prevLoads = make([][]int64, len(g.SMs))
	a.prevHits = make([][]int64, len(g.SMs))
	for i, s := range g.SMs {
		a.prevLoads[i] = make([]int64, len(s.PCLoads))
		a.prevHits[i] = make([]int64, len(s.PCHits))
		s.BypassPC = make([]bool, len(s.PCLoads))
	}
	a.nextAt = int64(a.TSample)
	return a.nextAt
}

// KernelEnd implements sim.Policy.
func (a *APCM) KernelEnd(g *sim.GPU, now int64) {}

// Step implements sim.Policy: classify each load PC from its
// per-window hit rate and set the bypass filters.
func (a *APCM) Step(g *sim.GPU, now int64) int64 {
	for i, s := range g.SMs {
		for pc := range s.PCLoads {
			loads := s.PCLoads[pc] - a.prevLoads[i][pc]
			hits := s.PCHits[pc] - a.prevHits[i][pc]
			a.prevLoads[i][pc] = s.PCLoads[pc]
			a.prevHits[i][pc] = s.PCHits[pc]
			if loads < a.MinLoads {
				continue // not enough evidence this window
			}
			hr := float64(hits) / float64(loads)
			s.BypassPC[pc] = hr <= a.StreamHitMax
		}
	}
	a.nextAt = now + int64(a.TSample)
	return a.nextAt
}
