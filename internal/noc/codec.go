package noc

import (
	"fmt"

	"poise/internal/snap"
)

// EncodeState serialises the crossbar's mutable state (port next-free
// cycles and statistics); latencies come from the configuration.
func (x *Crossbar) EncodeState(w *snap.Writer) {
	w.Uvarint(uint64(len(x.reqPorts)))
	for i := range x.reqPorts {
		w.Varint(x.reqPorts[i])
		w.Varint(x.respPorts[i])
	}
	w.Varint(x.ReqFlits)
	w.Varint(x.RespFlits)
	w.Varint(x.QueueDelay)
}

// DecodeState restores state written by EncodeState onto a crossbar
// with the same port count.
func (x *Crossbar) DecodeState(r *snap.Reader) error {
	n := r.Uvarint()
	if r.Err() == nil && n != uint64(len(x.reqPorts)) {
		return fmt.Errorf("noc: snapshot has %d ports, crossbar has %d", n, len(x.reqPorts))
	}
	for i := range x.reqPorts {
		x.reqPorts[i] = r.Varint()
		x.respPorts[i] = r.Varint()
	}
	x.ReqFlits = r.Varint()
	x.RespFlits = r.Varint()
	x.QueueDelay = r.Varint()
	return r.Err()
}
