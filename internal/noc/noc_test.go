package noc

import (
	"testing"

	"poise/internal/config"
)

func TestRequestLatencyUnloaded(t *testing.T) {
	x := New(config.Default().Scale(2))
	got := x.Request(0, 100)
	// One flit time (2 cycles) + base latency (8).
	if got != 100+2+8 {
		t.Fatalf("arrival = %d, want 110", got)
	}
	if x.ReqFlits != 1 {
		t.Fatal("flit accounting")
	}
}

func TestRequestQueueing(t *testing.T) {
	x := New(config.Default().Scale(2))
	a := x.Request(0, 100)
	b := x.Request(0, 100) // same cycle, same port: serialised
	if b <= a {
		t.Fatal("same-port requests must serialise")
	}
	if x.QueueDelay == 0 {
		t.Fatal("queue delay must be recorded")
	}
	// A different SM's port is independent.
	y := New(config.Default().Scale(2))
	y.Request(0, 100)
	c := y.Request(1, 100)
	if c != 110 {
		t.Fatalf("independent port delayed: %d", c)
	}
}

func TestResponseSerialisesFlits(t *testing.T) {
	x := New(config.Default().Scale(2))
	one := x.Response(0, 100, 1)
	x2 := New(config.Default().Scale(2))
	four := x2.Response(0, 100, 4)
	if four-one != 3*2 {
		t.Fatalf("4 flits must take 3 extra beats: %d vs %d", four, one)
	}
	// Zero flits clamp to one.
	x3 := New(config.Default().Scale(2))
	if x3.Response(0, 100, 0) != one {
		t.Fatal("flit clamp")
	}
}

func TestReset(t *testing.T) {
	x := New(config.Default().Scale(2))
	x.Request(0, 100)
	x.Response(0, 500, 4)
	x.Reset()
	if x.ReqFlits != 0 || x.RespFlits != 0 || x.QueueDelay != 0 {
		t.Fatal("reset must clear stats")
	}
	if got := x.Request(0, 100); got != 110 {
		t.Fatalf("reset must clear port state: %d", got)
	}
}
