// Package noc models the GPU's SM-to-memory-partition crossbar as a set
// of serialising ports with queueing. A request occupies its SM's
// injection port for one flit time; a response occupies the SM's
// ejection port for one flit per 32 bytes of data (a 128 B line = 4
// flits). Port contention is what turns high miss traffic into the
// rising average memory latency (AML) that the paper's Fig. 9 measures:
// every server keeps a next-free cycle, so queueing delay accumulates
// analytically without per-cycle ticking.
package noc

import "poise/internal/config"

// Crossbar is the interconnect between SMs and L2/DRAM partitions.
type Crossbar struct {
	latency   int64 // base one-way latency, core cycles
	flitCycle int64 // serialisation time per flit, core cycles
	reqPorts  []int64
	respPorts []int64

	// Stats.
	ReqFlits  int64
	RespFlits int64
	// QueueDelay accumulates cycles spent waiting for a free port, a
	// direct congestion measure.
	QueueDelay int64
}

// New builds the crossbar for the given configuration.
func New(cfg config.Config) *Crossbar {
	return &Crossbar{
		latency:   int64(cfg.NoCLatency),
		flitCycle: int64(cfg.NoCCyclesPerFl),
		reqPorts:  make([]int64, cfg.NumSMs),
		respPorts: make([]int64, cfg.NumSMs),
	}
}

// Request injects a single-flit request from sm at cycle now and
// returns the cycle at which it arrives at the memory side.
func (x *Crossbar) Request(sm int, now int64) int64 {
	p := &x.reqPorts[sm]
	start := now
	if *p > start {
		x.QueueDelay += *p - start
		start = *p
	}
	*p = start + x.flitCycle
	x.ReqFlits++
	return *p + x.latency
}

// Response returns a data payload of flits flits to sm, ready at cycle
// now on the memory side, and returns the cycle at which the full
// payload has been delivered to the SM.
func (x *Crossbar) Response(sm int, now int64, flits int) int64 {
	if flits < 1 {
		flits = 1
	}
	p := &x.respPorts[sm]
	start := now
	if *p > start {
		x.QueueDelay += *p - start
		start = *p
	}
	*p = start + x.flitCycle*int64(flits)
	x.RespFlits += int64(flits)
	return *p + x.latency
}

// Reset clears port state and statistics (between kernels the ports
// drain; statistics restart with the kernel).
func (x *Crossbar) Reset() {
	for i := range x.reqPorts {
		x.reqPorts[i] = 0
		x.respPorts[i] = 0
	}
	x.ReqFlits, x.RespFlits, x.QueueDelay = 0, 0, 0
}
