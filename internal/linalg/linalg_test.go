package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 || m.At(0, 1) != 2 {
		t.Fatalf("bad layout: %+v", m)
	}
	if _, err := FromRows([][]float64{{1}, {2, 3}}); err == nil {
		t.Fatal("ragged rows must error")
	}
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("bad transpose: %+v", tr)
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul = %+v, want %v", c, want)
			}
		}
	}
	if _, err := Mul(a, &Mat{Rows: 3, Cols: 1, Data: make([]float64, 3)}); err == nil {
		t.Fatal("shape mismatch must error")
	}
}

func TestMulVecAndDot(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	y, err := MulVec(a, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MulVec = %v", y)
	}
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a, _ := FromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	x, err := Solve(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Fatalf("Solve = %v, want %v", x, want)
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("singular system must error")
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	a, _ := FromRows([][]float64{
		{4, 12, -16},
		{12, 37, -43},
		{-16, -43, 98},
	})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// L * Lᵀ must reconstruct a.
	back, err := Mul(l, l.T())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(back.At(i, j)-a.At(i, j)) > 1e-9 {
				t.Fatalf("L*Lt != a at (%d,%d)", i, j)
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("indefinite matrix must be rejected")
	}
}

// Property: for random SPD systems (built as AᵀA + I), SolveSPD and the
// pivoted Solve agree.
func TestSolveSPDAgreesWithSolve(t *testing.T) {
	f := func(seed int64) bool {
		rng := newTestRNG(seed)
		n := 2 + int(abs64(seed))%4
		raw := NewMat(n, n)
		for i := range raw.Data {
			raw.Data[i] = rng()
		}
		spd, _ := Mul(raw.T(), raw)
		Ridge(spd, 1)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng()
		}
		x1, err1 := SolveSPD(spd, b)
		x2, err2 := Solve(spd, b)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-6*(1+math.Abs(x2[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: XtWX with unit weights equals XᵀX.
func TestXtWXUnitWeights(t *testing.T) {
	f := func(seed int64) bool {
		rng := newTestRNG(seed)
		rows, cols := 3+int(abs64(seed))%5, 2+int(abs64(seed)>>3)%3
		x := NewMat(rows, cols)
		for i := range x.Data {
			x.Data[i] = rng()
		}
		w := make([]float64, rows)
		for i := range w {
			w[i] = 1
		}
		got, err := XtWX(x, w)
		if err != nil {
			return false
		}
		want, err := Mul(x.T(), x)
		if err != nil {
			return false
		}
		for i := range want.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestXtWzMatchesNaive(t *testing.T) {
	x, _ := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	w := []float64{0.5, 2, 1}
	z := []float64{1, -1, 2}
	got, err := XtWz(x, w, z)
	if err != nil {
		t.Fatal(err)
	}
	// naive: sum_i w_i z_i x_ij
	want := []float64{0.5*1*1 + 2*-1*3 + 1*2*5, 0.5*1*2 + 2*-1*4 + 1*2*6}
	for j := range want {
		if math.Abs(got[j]-want[j]) > 1e-12 {
			t.Fatalf("XtWz = %v, want %v", got, want)
		}
	}
}

func TestRidge(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 0}, {0, 1}})
	Ridge(a, 0.5)
	if a.At(0, 0) != 1.5 || a.At(1, 1) != 1.5 || a.At(0, 1) != 0 {
		t.Fatalf("Ridge wrong: %+v", a)
	}
}

// newTestRNG returns a tiny deterministic float generator for property
// tests (linalg cannot import stats without creating a cycle in tests).
func newTestRNG(seed int64) func() float64 {
	s := uint64(seed)*2654435761 + 1
	return func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(s%2000)/1000 - 1
	}
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
