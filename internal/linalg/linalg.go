// Package linalg implements the small dense linear-algebra kernel the
// regression framework needs: column-major-free dense matrices, products,
// and linear solves (Gaussian elimination with partial pivoting plus a
// Cholesky path for the symmetric positive-definite normal equations that
// IRLS produces). Only the stdlib is used.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMat allocates a zeroed Rows x Cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimension")
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) (*Mat, error) {
	if len(rows) == 0 {
		return NewMat(0, 0), nil
	}
	c := len(rows[0])
	m := NewMat(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			return nil, fmt.Errorf("linalg: row %d has %d cols, want %d", i, len(r), c)
		}
		copy(m.Data[i*c:(i+1)*c], r)
	}
	return m, nil
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Mat) T() *Mat {
	t := NewMat(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns a*b.
func Mul(a, b *Mat) (*Mat, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("linalg: mul shape mismatch %dx%d * %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := NewMat(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// MulVec returns a*x for a vector x.
func MulVec(a *Mat, x []float64) ([]float64, error) {
	if a.Cols != len(x) {
		return nil, fmt.Errorf("linalg: mulvec shape mismatch %dx%d * %d",
			a.Rows, a.Cols, len(x))
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// ErrSingular is returned when a solve encounters a (numerically)
// singular system.
var ErrSingular = errors.New("linalg: singular matrix")

// Solve solves a*x = b by Gaussian elimination with partial pivoting.
// a and b are not modified.
func Solve(a *Mat, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("linalg: solve needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs length %d, want %d", len(b), n)
	}
	// Augmented working copies.
	m := a.Clone()
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		best := math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > best {
				best, piv = v, r
			}
		}
		if best < 1e-300 {
			return nil, ErrSingular
		}
		if piv != col {
			for j := 0; j < n; j++ {
				m.Data[col*n+j], m.Data[piv*n+j] = m.Data[piv*n+j], m.Data[col*n+j]
			}
			x[col], x[piv] = x[piv], x[col]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				m.Data[r*n+j] -= f * m.Data[col*n+j]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}

// Cholesky computes the lower-triangular factor L with a = L*Lᵀ for a
// symmetric positive-definite matrix a. It returns ErrSingular if a is
// not positive definite (within tolerance).
func Cholesky(a *Mat) (*Mat, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("linalg: cholesky needs square matrix")
	}
	l := NewMat(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, ErrSingular
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveSPD solves a*x = b for symmetric positive-definite a via
// Cholesky, falling back to pivoted Gaussian elimination when the
// factorisation fails (e.g. a semi-definite normal matrix from
// collinear features).
func SolveSPD(a *Mat, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return Solve(a, b)
	}
	n := a.Rows
	// Forward: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Backward: Lᵀ x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// XtWX computes Xᵀ W X where w holds the diagonal of W. It exploits the
// symmetric structure and is the hot operation inside IRLS.
func XtWX(x *Mat, w []float64) (*Mat, error) {
	if len(w) != x.Rows {
		return nil, fmt.Errorf("linalg: weight length %d, want %d", len(w), x.Rows)
	}
	p := x.Cols
	out := NewMat(p, p)
	for r := 0; r < x.Rows; r++ {
		wr := w[r]
		if wr == 0 {
			continue
		}
		row := x.Data[r*p : (r+1)*p]
		for i := 0; i < p; i++ {
			wi := wr * row[i]
			if wi == 0 {
				continue
			}
			orow := out.Data[i*p : (i+1)*p]
			for j := i; j < p; j++ {
				orow[j] += wi * row[j]
			}
		}
	}
	// Mirror upper triangle to lower.
	for i := 0; i < p; i++ {
		for j := i + 1; j < p; j++ {
			out.Set(j, i, out.At(i, j))
		}
	}
	return out, nil
}

// XtWz computes Xᵀ W z where w holds the diagonal of W.
func XtWz(x *Mat, w, z []float64) ([]float64, error) {
	if len(w) != x.Rows || len(z) != x.Rows {
		return nil, fmt.Errorf("linalg: weight/rhs length mismatch")
	}
	p := x.Cols
	out := make([]float64, p)
	for r := 0; r < x.Rows; r++ {
		f := w[r] * z[r]
		if f == 0 {
			continue
		}
		row := x.Data[r*p : (r+1)*p]
		for j := 0; j < p; j++ {
			out[j] += f * row[j]
		}
	}
	return out, nil
}

// Ridge adds lambda to the diagonal of a in place and returns a. IRLS
// uses a tiny ridge to stabilise nearly-collinear feature matrices.
func Ridge(a *Mat, lambda float64) *Mat {
	n := a.Rows
	if a.Cols < n {
		n = a.Cols
	}
	for i := 0; i < n; i++ {
		a.Data[i*a.Cols+i] += lambda
	}
	return a
}
