package config

import "testing"

func TestDefaultIsValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := DefaultPoise().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultMatchesPaperTableIIIb(t *testing.T) {
	c := Default()
	if c.NumSMs != 32 || c.SchedulersPerSM != 2 || c.WarpsPerSched != 24 {
		t.Fatalf("core organisation wrong: %+v", c)
	}
	if c.MaxWarpsPerSM() != 48 || c.MaxThreadsPerSM != 1536 || c.WarpWidth != 32 {
		t.Fatal("warp capacity wrong")
	}
	if c.L1.SizeBytes != 16*1024 || c.L1.Ways != 4 || c.L1.LineBytes != 128 ||
		c.L1.MSHRs != 32 || c.L1.Index != IndexHash {
		t.Fatalf("L1 wrong: %+v", c.L1)
	}
	if c.L1.Sets() != 32 {
		t.Fatalf("L1 sets = %d, want 32", c.L1.Sets())
	}
	if c.L2Banks != 24 || c.L2SetsPerBank() != 96 || c.L2.Ways != 8 {
		t.Fatalf("L2 wrong: banks=%d sets=%d", c.L2Banks, c.L2SetsPerBank())
	}
	if c.DRAMPartitions != 6 {
		t.Fatal("DRAM partitions wrong")
	}
}

func TestPoiseDefaultsMatchTableIV(t *testing.T) {
	p := DefaultPoise()
	if p.TPeriod != 200_000 || p.TWarmup != 2_000 || p.TFeature != 10_000 || p.TSearch != 4_000 {
		t.Fatalf("timing wrong: %+v", p)
	}
	if p.IMax != 49 || p.StrideN != 2 || p.StrideP != 4 {
		t.Fatal("search parameters wrong")
	}
	if p.ScoreW0 != 1 || p.ScoreW1 != 0.5 || p.ScoreW2 != 0.25 {
		t.Fatal("scoring weights wrong")
	}
	if p.MinTrainSpeedup != 0.015 || p.MinTrainCycles != 10_000 {
		t.Fatal("thresholds wrong")
	}
}

func TestScalePreservesRatios(t *testing.T) {
	c := Default()
	s := c.Scale(8)
	if s.NumSMs != 8 {
		t.Fatalf("NumSMs = %d", s.NumSMs)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Per-SM shares stay within rounding of the 32-SM baseline.
	baseL2 := float64(c.L2.SizeBytes) / float64(c.NumSMs)
	scaledL2 := float64(s.L2.SizeBytes) / float64(s.NumSMs)
	if scaledL2 < baseL2*0.7 || scaledL2 > baseL2*1.4 {
		t.Fatalf("L2 per SM drifted: %v -> %v", baseL2, scaledL2)
	}
	// Scaling up or to nonsense is a no-op.
	if c.Scale(0).NumSMs != 32 || c.Scale(64).NumSMs != 32 {
		t.Fatal("bad scale targets must be no-ops")
	}
	// Tiny scales keep at least one of each shared resource.
	tiny := c.Scale(1)
	if tiny.DRAMPartitions < 1 || tiny.L2Banks < 1 {
		t.Fatal("scale floor broken")
	}
	if err := tiny.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScaleTiming(t *testing.T) {
	p := DefaultPoise()
	s := p.ScaleTiming(20)
	if s.TPeriod != 10_000 || s.TWarmup != 100 || s.TFeature != 500 || s.TSearch != 200 {
		t.Fatalf("scaled timing wrong: %+v", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.ScaleTiming(1).TPeriod != p.TPeriod {
		t.Fatal("factor 1 must be identity")
	}
	// Extreme factors floor at 1 cycle and stay valid ordering-wise.
	x := p.ScaleTiming(1_000_000)
	if x.TWarmup < 1 || x.TFeature < 1 {
		t.Fatal("scaled windows must stay positive")
	}
}

func TestValidateCatchesBrokenConfigs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no sms", func(c *Config) { c.NumSMs = 0 }},
		{"no scheds", func(c *Config) { c.SchedulersPerSM = 0 }},
		{"no warps", func(c *Config) { c.WarpsPerSched = 0 }},
		{"no width", func(c *Config) { c.WarpWidth = 0 }},
		{"thread cap", func(c *Config) { c.MaxThreadsPerSM = 10 }},
		{"bad l1", func(c *Config) { c.L1.SizeBytes = 100 }},
		{"no mshrs", func(c *Config) { c.L1.MSHRs = 0 }},
		{"l2 banks", func(c *Config) { c.L2Banks = 0 }},
		{"l2 split", func(c *Config) { c.L2.SizeBytes = 1000; c.L2Banks = 7 }},
		{"dram", func(c *Config) { c.DRAMPartitions = 0 }},
	}
	for _, tc := range cases {
		c := Default()
		tc.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("%s: expected validation error", tc.name)
		}
	}
}

func TestPoiseValidateCatches(t *testing.T) {
	p := DefaultPoise()
	p.TWarmup = 150_000
	p.TFeature = 100_000
	if err := p.Validate(); err == nil {
		t.Fatal("window exceeding epoch must fail")
	}
	q := DefaultPoise()
	q.StrideN = -1
	if err := q.Validate(); err == nil {
		t.Fatal("negative stride must fail")
	}
}

func TestIndexFnString(t *testing.T) {
	if IndexHash.String() != "hash" || IndexLinear.String() != "linear" {
		t.Fatal("index names")
	}
	if IndexFn(9).String() == "" {
		t.Fatal("unknown index must still print")
	}
}
