// Package config holds the architectural and Poise algorithm parameters
// used throughout the simulator.
//
// The defaults mirror the baseline evaluated in the paper (Table IIIb):
// a 32-SM GPU with two greedy-then-oldest warp schedulers per SM, a
// 16 KB 4-way L1 data cache with 32 MSHRs, a 24-bank 2.25 MB shared L2,
// a crossbar interconnect and six GDDR5 memory partitions. Poise's
// timing and threshold parameters (Table IV) live in PoiseParams.
package config

import (
	"errors"
	"fmt"
)

// IndexFn selects how a cache maps line addresses onto sets.
type IndexFn int

const (
	// IndexHash spreads addresses over sets with a xor-fold hash. This is
	// the paper's baseline L1 indexing ("Hash Set-indexed").
	IndexHash IndexFn = iota
	// IndexLinear uses the classic modulo indexing. The paper's Fig. 12
	// sensitivity study switches the evaluation platform to linear
	// indexing while keeping the model trained on hashed indexing.
	IndexLinear
)

func (f IndexFn) String() string {
	switch f {
	case IndexHash:
		return "hash"
	case IndexLinear:
		return "linear"
	default:
		return fmt.Sprintf("IndexFn(%d)", int(f))
	}
}

// CacheConfig describes one cache level.
type CacheConfig struct {
	SizeBytes int     // total capacity
	LineBytes int     // line (block) size
	Ways      int     // associativity
	MSHRs     int     // miss-status holding registers (L1 only)
	Index     IndexFn // set index function
}

// Sets returns the number of sets implied by the geometry.
func (c CacheConfig) Sets() int {
	if c.LineBytes == 0 || c.Ways == 0 {
		return 0
	}
	return c.SizeBytes / (c.LineBytes * c.Ways)
}

// Validate reports an error if the cache geometry is inconsistent.
func (c CacheConfig) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return errors.New("cache: size, line and ways must be positive")
	}
	if c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("cache: size %d not divisible by line*ways %d",
			c.SizeBytes, c.LineBytes*c.Ways)
	}
	if lb := c.LineBytes; lb&(lb-1) != 0 {
		return fmt.Errorf("cache: line size %d must be a power of two", lb)
	}
	// Set counts need not be a power of two (the baseline L2 has 96
	// sets per bank); the cache model indexes by modulo in that case.
	return nil
}

// Config is the full architectural configuration of the simulated GPU.
// The zero value is not usable; start from Default() and adjust.
type Config struct {
	// Core organisation.
	NumSMs          int // streaming multiprocessors
	SchedulersPerSM int // warp schedulers per SM
	WarpsPerSched   int // max warps managed per scheduler (24 in baseline)
	WarpWidth       int // threads per warp (SIMD width)
	RegistersPerSM  int // register file entries, bounds occupancy
	SharedMemPerSM  int // bytes of scratchpad, bounds occupancy
	MaxThreadsPerSM int
	MaxBlocksPerSM  int
	ALULatency      int // cycles until a dependent ALU op may issue (Tpipe)
	IssueWidth      int // instructions issued per scheduler per cycle

	// Memory hierarchy.
	L1            CacheConfig
	L2            CacheConfig
	L2Banks       int
	L2LatencyCore int // core cycles from SM to L2 data return (unloaded)
	L1HitLatency  int // core cycles for an L1 hit

	// Interconnect.
	NoCFlitBytes   int // flit size
	NoCLatency     int // base one-way latency in core cycles
	NoCCyclesPerFl int // core cycles to serialise one flit per port

	// DRAM.
	DRAMPartitions   int
	DRAMLatency      int // core cycles of bank access latency (unloaded)
	DRAMCyclesPerReq int // core cycles of bus occupancy per 128B request (bandwidth)

	// Misc.
	Seed int64 // seed for all pseudo-random address generation
}

// Default returns the paper's baseline configuration (Table IIIb),
// expressed in core clock cycles (1.4 GHz core, 0.7 GHz L2/crossbar,
// 924 MHz GDDR5).
func Default() Config {
	return Config{
		NumSMs:          32,
		SchedulersPerSM: 2,
		WarpsPerSched:   24,
		WarpWidth:       32,
		RegistersPerSM:  32768,
		SharedMemPerSM:  48 * 1024,
		MaxThreadsPerSM: 1536,
		MaxBlocksPerSM:  8,
		ALULatency:      4,
		IssueWidth:      1,

		L1: CacheConfig{
			SizeBytes: 16 * 1024,
			LineBytes: 128,
			Ways:      4,
			MSHRs:     32,
			Index:     IndexHash,
		},
		L2: CacheConfig{
			SizeBytes: 24 * 96 * 8 * 128, // 24 banks x 96 sets x 8 ways x 128B = 2.25 MB
			LineBytes: 128,
			Ways:      8,
			Index:     IndexLinear,
		},
		L2Banks:       24,
		L2LatencyCore: 120,
		L1HitLatency:  28,

		NoCFlitBytes:   32,
		NoCLatency:     8,
		NoCCyclesPerFl: 2, // 0.7 GHz crossbar -> 2 core cycles per flit beat

		DRAMPartitions:   6,
		DRAMLatency:      160,
		DRAMCyclesPerReq: 12,

		Seed: 1,
	}
}

// Scale returns a copy of the configuration shrunk to n SMs with the
// shared memory system (L2 capacity/banks, DRAM partitions/bandwidth,
// crossbar ports) scaled proportionally, preserving per-SM contention
// ratios. It is the supported way to run laptop-scale experiments whose
// qualitative behaviour matches the 32-SM baseline.
func (c Config) Scale(n int) Config {
	if n <= 0 || n >= c.NumSMs {
		return c
	}
	ratio := float64(n) / float64(c.NumSMs)
	s := c
	s.NumSMs = n
	scaleInt := func(v int, min int) int {
		x := int(float64(v)*ratio + 0.5)
		if x < min {
			x = min
		}
		return x
	}
	s.L2Banks = scaleInt(c.L2Banks, 1)
	s.DRAMPartitions = scaleInt(c.DRAMPartitions, 1)
	// Keep L2 geometry valid: scale capacity via bank count (each bank
	// keeps its sets/ways/line layout).
	bankBytes := c.L2.SizeBytes / c.L2Banks
	s.L2.SizeBytes = bankBytes * s.L2Banks
	return s
}

// L2SetsPerBank returns the number of sets in each L2 bank.
func (c Config) L2SetsPerBank() int {
	per := c.L2.SizeBytes / c.L2Banks
	return per / (c.L2.LineBytes * c.L2.Ways)
}

// MaxWarpsPerSM is the hardware warp residency limit of one SM.
func (c Config) MaxWarpsPerSM() int { return c.SchedulersPerSM * c.WarpsPerSched }

// Validate reports the first inconsistency found in the configuration.
func (c Config) Validate() error {
	switch {
	case c.NumSMs <= 0:
		return errors.New("config: NumSMs must be positive")
	case c.SchedulersPerSM <= 0:
		return errors.New("config: SchedulersPerSM must be positive")
	case c.WarpsPerSched <= 0:
		return errors.New("config: WarpsPerSched must be positive")
	case c.WarpWidth <= 0:
		return errors.New("config: WarpWidth must be positive")
	case c.IssueWidth <= 0:
		return errors.New("config: IssueWidth must be positive")
	case c.L2Banks <= 0:
		return errors.New("config: L2Banks must be positive")
	case c.DRAMPartitions <= 0:
		return errors.New("config: DRAMPartitions must be positive")
	case c.MaxThreadsPerSM < c.MaxWarpsPerSM()*c.WarpWidth:
		return fmt.Errorf("config: MaxThreadsPerSM %d below warp capacity %d",
			c.MaxThreadsPerSM, c.MaxWarpsPerSM()*c.WarpWidth)
	}
	if err := c.L1.Validate(); err != nil {
		return fmt.Errorf("L1: %w", err)
	}
	if c.L1.MSHRs <= 0 {
		return errors.New("config: L1 MSHRs must be positive")
	}
	if c.L2.SizeBytes%c.L2Banks != 0 {
		return fmt.Errorf("config: L2 size %d not divisible by %d banks",
			c.L2.SizeBytes, c.L2Banks)
	}
	perBank := CacheConfig{
		SizeBytes: c.L2.SizeBytes / c.L2Banks,
		LineBytes: c.L2.LineBytes,
		Ways:      c.L2.Ways,
		Index:     c.L2.Index,
	}
	if perBank.Sets() <= 0 {
		return errors.New("config: L2 bank has no sets")
	}
	return nil
}

// PoiseParams carries the Poise algorithm parameters from Table IV.
type PoiseParams struct {
	// Scoring weights for Eq. 12 (offset 0, 1 and 2 neighbours).
	ScoreW0, ScoreW1, ScoreW2 float64

	TPeriod  int // inference epoch length in cycles
	TWarmup  int // warmup after changing the warp-tuple
	TFeature int // feature-sampling window
	TSearch  int // sampling window per local-search probe

	IMax int // In cut-off: above this the kernel is compute-intensive

	StrideN int // initial local-search stride for N (epsilon_N)
	StrideP int // initial local-search stride for p (epsilon_p)

	// Training-set admission thresholds.
	MinTrainSpeedup float64 // best-tuple speedup must reach this (1.5%)
	MinTrainCycles  int64   // baseline kernel length must reach this
	MinTrainHitRate float64 // L1 hit rate at (1,1) must exceed this
}

// DefaultPoise returns the paper's Table IV parameter set.
func DefaultPoise() PoiseParams {
	return PoiseParams{
		ScoreW0: 1.0, ScoreW1: 0.50, ScoreW2: 0.25,
		TPeriod:  200_000,
		TWarmup:  2_000,
		TFeature: 10_000,
		TSearch:  4_000,
		IMax:     49,
		StrideN:  2,
		StrideP:  4,

		MinTrainSpeedup: 0.015,
		MinTrainCycles:  10_000,
		MinTrainHitRate: 0.0,
	}
}

// ScaleTiming divides every timing parameter by f (minimum 1 cycle
// granularity preserved), used to run short kernels in unit tests while
// keeping the relative structure of the inference epoch.
func (p PoiseParams) ScaleTiming(f int) PoiseParams {
	if f <= 1 {
		return p
	}
	div := func(v int) int {
		v /= f
		if v < 1 {
			v = 1
		}
		return v
	}
	q := p
	q.TPeriod = div(p.TPeriod)
	q.TWarmup = div(p.TWarmup)
	q.TFeature = div(p.TFeature)
	q.TSearch = div(p.TSearch)
	q.MinTrainCycles = p.MinTrainCycles / int64(f)
	if q.MinTrainCycles < 1 {
		q.MinTrainCycles = 1
	}
	return q
}

// Validate reports the first inconsistency in the Poise parameters.
func (p PoiseParams) Validate() error {
	switch {
	case p.TPeriod <= 0 || p.TWarmup <= 0 || p.TFeature <= 0 || p.TSearch <= 0:
		return errors.New("poise params: all timing windows must be positive")
	case p.TWarmup+p.TFeature > p.TPeriod:
		return errors.New("poise params: warmup+feature window exceeds inference epoch")
	case p.StrideN < 0 || p.StrideP < 0:
		return errors.New("poise params: strides must be non-negative")
	case p.ScoreW0 <= 0:
		return errors.New("poise params: centre scoring weight must be positive")
	}
	return nil
}
