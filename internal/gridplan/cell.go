package gridplan

import "fmt"

// The experiment-cell task kind. A profile Task is one {N, p} point of
// one kernel's sweep; a CellTask is one cell of a workload × scheme
// experiment grid — "run workload W under scheme S" — the unit behind
// the paper's Fig. 7/8/9 comparison and the sensitivity figures. Like
// Tasks, cells are content-digested and key-ordered, so a grid
// campaign shards across processes and merges back bit-identically to
// the in-process run.

// CellTask is one serialisable experiment cell: run workload Workload
// under the scheme (or altered configuration) named Scheme, within the
// experiment grid Grid. Tag identifies the full harness configuration
// (the results-cache key — all processes of one campaign must agree on
// it, and a worker verifies its own tag against the plan's before
// simulating). Digest fingerprints the workload's kernels so a drifted
// catalogue is refused rather than silently producing wrong cells.
type CellTask struct {
	Tag      string `json:"tag"`      // configuration/results-cache tag
	Grid     string `json:"grid"`     // experiment grid name (scheme, stride, ...)
	Workload string `json:"workload"` // workload name, resolved via the catalogue
	Digest   string `json:"digest"`   // workload content digest
	Scheme   string `json:"scheme"`   // point on the grid's scheme/config axis
	Ord      int    `json:"ord"`      // scheme ordinal in the grid's documented order
	Seed     int64  `json:"seed,omitempty"`
}

// Key is the cell's stable ordering and identity key. The zero-padded
// scheme ordinal keeps lexicographic order equal to the grid's
// documented scheme order (e.g. SchemeNames order for the scheme
// grid), not alphabetic scheme-name order. Validate bounds ordinals
// to the padding width, so the order can never silently break.
func (t CellTask) Key() string {
	return fmt.Sprintf("%s|%s|%s|%03d|%s", t.Tag, t.Grid, t.Workload, t.Ord, t.Scheme)
}

// maxOrd is the largest scheme ordinal Key's zero-padding keeps in
// lexicographic order.
const maxOrd = 999

// CellPlan is an ordered set of experiment cells — typically one
// figure's full workload × scheme grid. Builders enumerate cells
// workload-major (every scheme of the first workload, then the next
// workload), with schemes in the grid's documented axis order.
type CellPlan struct {
	Version int        `json:"version"`
	Cells   []CellTask `json:"-"`
}

// Sort orders the cells by key (stable identity order).
func (p *CellPlan) Sort() { sortKeyed(p.Cells) }

// Validate reports duplicate cell keys, malformed cells, and
// inconsistent scheme ordinals (two ordinals for one scheme, or two
// schemes sharing an ordinal, within one grid).
func (p *CellPlan) Validate() error {
	seen := map[string]bool{}
	ordOf := map[string]int{}       // grid|scheme -> ord
	schemeAt := map[string]string{} // grid|ord -> scheme
	for _, c := range p.Cells {
		if c.Grid == "" || c.Workload == "" || c.Scheme == "" {
			return fmt.Errorf("gridplan: cell %s lacks grid, workload or scheme", c.Key())
		}
		if c.Ord < 0 || c.Ord > maxOrd {
			return fmt.Errorf("gridplan: cell %s scheme ordinal %d outside [0,%d]", c.Key(), c.Ord, maxOrd)
		}
		k := c.Key()
		if seen[k] {
			return fmt.Errorf("gridplan: duplicate cell %s", k)
		}
		seen[k] = true
		sk := c.Grid + "|" + c.Scheme
		if o, ok := ordOf[sk]; ok && o != c.Ord {
			return fmt.Errorf("gridplan: scheme %s of grid %s has ordinals %d and %d", c.Scheme, c.Grid, o, c.Ord)
		}
		ordOf[sk] = c.Ord
		ok := fmt.Sprintf("%s|%03d", c.Grid, c.Ord)
		if s, dup := schemeAt[ok]; dup && s != c.Scheme {
			return fmt.Errorf("gridplan: grid %s ordinal %d names schemes %s and %s", c.Grid, c.Ord, s, c.Scheme)
		}
		schemeAt[ok] = c.Scheme
	}
	return nil
}

// Shard returns the i-of-n slice of the plan — the same deterministic
// key-sorted round-robin deal profile plans use, so N processes
// configured i/N cover every cell exactly once without coordinating.
func (p *CellPlan) Shard(i, n int) (*CellPlan, error) {
	cells, err := shardKeyed(p.Cells, i, n)
	if err != nil {
		return nil, err
	}
	return &CellPlan{Version: p.Version, Cells: cells}, nil
}
