package gridplan

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

func cellPlanForTest(workloads, schemes int) *CellPlan {
	p := &CellPlan{Version: PlanVersion}
	for w := 0; w < workloads; w++ {
		for s := 0; s < schemes; s++ {
			p.Cells = append(p.Cells, CellTask{
				Tag: "cfg", Grid: "scheme", Workload: fmt.Sprintf("wl%02d", w),
				Digest: fmt.Sprintf("d%02d", w), Scheme: fmt.Sprintf("s%d", s), Ord: s,
			})
		}
	}
	return p
}

func TestCellPlanValidate(t *testing.T) {
	p := cellPlanForTest(3, 4)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	dup := cellPlanForTest(2, 2)
	dup.Cells = append(dup.Cells, dup.Cells[0])
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate cell must fail validation")
	}
	bad := cellPlanForTest(2, 2)
	bad.Cells[0].Workload = ""
	if err := bad.Validate(); err == nil {
		t.Fatal("cell without a workload must fail validation")
	}
	// Two ordinals for one scheme within a grid is inconsistent.
	ord := cellPlanForTest(2, 2)
	ord.Cells[2].Ord = 5
	if err := ord.Validate(); err == nil {
		t.Fatal("inconsistent scheme ordinal must fail validation")
	}
	// Two schemes sharing one ordinal is inconsistent too.
	shared := cellPlanForTest(1, 2)
	shared.Cells[1].Ord = 0
	if err := shared.Validate(); err == nil {
		t.Fatal("two schemes on one ordinal must fail validation")
	}
}

func TestCellPlanJSONLRoundTrip(t *testing.T) {
	p := cellPlanForTest(3, 5)
	var buf bytes.Buffer
	if err := WriteCellPlan(&buf, p); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCellPlan(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, back) {
		t.Fatal("cell plan round trip lost data")
	}
	// Cell plans and profile plans must not be confused for each other.
	if _, err := ReadPlan(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("ReadPlan accepted a cell plan")
	}
	var pbuf bytes.Buffer
	if err := WritePlan(&pbuf, planForTest(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCellPlan(bytes.NewReader(pbuf.Bytes())); err == nil {
		t.Fatal("ReadCellPlan accepted a profile plan")
	}
}

func TestCellPlanShardPartition(t *testing.T) {
	p := cellPlanForTest(4, 5)
	for _, n := range []int{1, 2, 3, 7} {
		seen := map[string]int{}
		total := 0
		for i := 0; i < n; i++ {
			s, err := p.Shard(i, n)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range s.Cells {
				seen[c.Key()]++
				total++
			}
		}
		if total != len(p.Cells) {
			t.Fatalf("n=%d: shards cover %d cells, plan has %d", n, total, len(p.Cells))
		}
		for k, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: cell %s appears in %d shards", n, k, c)
			}
		}
	}
	if _, err := p.Shard(-1, 2); err == nil {
		t.Fatal("negative shard index must fail")
	}
	if _, err := p.Shard(2, 2); err == nil {
		t.Fatal("out-of-range shard index must fail")
	}
	if _, err := p.Shard(0, 0); err == nil {
		t.Fatal("zero shard count must fail")
	}
}

// TestCellKeyPreservesSchemeOrder pins the property the ordinal field
// exists for: after a key sort, each workload's cells appear in the
// grid's documented scheme order, not alphabetic scheme-name order.
func TestCellKeyPreservesSchemeOrder(t *testing.T) {
	p := &CellPlan{}
	schemes := []string{"GTO", "SWL", "PCAL-SWL", "Poise", "Static-Best"}
	for ord, s := range schemes {
		p.Cells = append(p.Cells, CellTask{Tag: "c", Grid: "scheme", Workload: "w", Scheme: s, Ord: ord})
	}
	p.Sort()
	for ord, s := range schemes {
		if p.Cells[ord].Scheme != s {
			t.Fatalf("after sort, position %d holds %s, want %s (documented order)", ord, p.Cells[ord].Scheme, s)
		}
	}
}

func TestPlanFileFormatSniffs(t *testing.T) {
	dir := t.TempDir()
	cell := dir + "/cells.jsonl"
	if err := WriteCellPlanFile(cell, cellPlanForTest(1, 2)); err != nil {
		t.Fatal(err)
	}
	prof := dir + "/plan.jsonl"
	if err := WritePlanFile(prof, planForTest(4)); err != nil {
		t.Fatal(err)
	}
	if f, err := PlanFileFormat(cell); err != nil || f != CellPlanFormat {
		t.Fatalf("cell plan format = %q, %v", f, err)
	}
	if f, err := PlanFileFormat(prof); err != nil || f != ProfilePlanFormat {
		t.Fatalf("profile plan format = %q, %v", f, err)
	}
	if _, err := PlanFileFormat(dir + "/missing.jsonl"); err == nil {
		t.Fatal("missing file must error")
	}
}

// TestSplitFiles is the shard-flag validation table both commands'
// -merge-shards lists go through: empty and all-blank lists are
// rejected instead of silently merging zero shards.
func TestSplitFiles(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []string
		ok   bool
	}{
		{"a.jsonl", []string{"a.jsonl"}, true},
		{"a.jsonl,b.jsonl", []string{"a.jsonl", "b.jsonl"}, true},
		{" a.jsonl , b.jsonl ,", []string{"a.jsonl", "b.jsonl"}, true},
		{"", nil, false},
		{",", nil, false},
		{" , , ", nil, false},
	} {
		got, err := SplitFiles(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("SplitFiles(%q) error = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && !reflect.DeepEqual(got, tc.want) {
			t.Errorf("SplitFiles(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
