package gridplan

import (
	"bytes"
	"reflect"
	"testing"
)

// fuzzPlan is a small valid plan for seeding the corpus.
func fuzzPlan() *Plan {
	return &Plan{Version: PlanVersion, Tasks: []Task{
		{Tag: "t", Kernel: "k", Digest: "d", N: 2, P: 1},
		{Tag: "t", Kernel: "k", Digest: "d", N: 2, P: 2},
		{Tag: "t", Kernel: "k2", Digest: "e", N: 4, P: 2, Seed: 7},
	}}
}

// FuzzReadPlan: whatever bytes arrive, ReadPlan must either error or
// return a plan that satisfies its own validator — and never panic.
// The seeds cover the interesting failure classes: valid input,
// truncation (header count vs body), duplicate keys, a corrupt
// header, and raw garbage.
func FuzzReadPlan(f *testing.F) {
	var valid bytes.Buffer
	if err := WritePlan(&valid, fuzzPlan()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	// Truncated: drop the last line so the header count disagrees.
	lines := bytes.SplitAfter(valid.Bytes(), []byte("\n"))
	f.Add(bytes.Join(lines[:len(lines)-2], nil))
	// Duplicate key: repeat the last task line and patch the count.
	dup := append([]byte(nil), valid.Bytes()...)
	dup = bytes.Replace(dup, []byte(`"tasks":3`), []byte(`"tasks":4`), 1)
	f.Add(append(dup, lines[len(lines)-2]...))
	// Corrupt header and garbage.
	f.Add([]byte(`{"format":"poiseplan","version":99,"tasks":0}` + "\n"))
	f.Add([]byte(`{"format":"something-else","version":1,"tasks":0}` + "\n"))
	f.Add([]byte("not json at all\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadPlan(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("ReadPlan returned an invalid plan: %v", verr)
		}
		// Round-trip: what Read accepts, Write+Read must reproduce.
		var buf bytes.Buffer
		if werr := WritePlan(&buf, p); werr != nil {
			t.Fatalf("re-encoding an accepted plan: %v", werr)
		}
		again, rerr := ReadPlan(&buf)
		if rerr != nil {
			t.Fatalf("re-reading a re-encoded plan: %v", rerr)
		}
		if !reflect.DeepEqual(p, again) {
			t.Fatal("plan round-trip is not stable")
		}
	})
}

// FuzzReadCellPlan mirrors FuzzReadPlan for the experiment-cell plan
// container.
func FuzzReadCellPlan(f *testing.F) {
	plan := &CellPlan{Version: PlanVersion, Cells: []CellTask{
		{Tag: "t", Grid: "scheme", Workload: "bfs", Digest: "d", Scheme: "GTO", Ord: 0},
		{Tag: "t", Grid: "scheme", Workload: "bfs", Digest: "d", Scheme: "Poise", Ord: 1},
	}}
	var valid bytes.Buffer
	if err := WriteCellPlan(&valid, plan); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	lines := bytes.SplitAfter(valid.Bytes(), []byte("\n"))
	f.Add(bytes.Join(lines[:len(lines)-2], nil))
	dup := append([]byte(nil), valid.Bytes()...)
	dup = bytes.Replace(dup, []byte(`"tasks":2`), []byte(`"tasks":3`), 1)
	f.Add(append(dup, lines[len(lines)-2]...))
	// Ordinal conflict: same grid+scheme under two ordinals.
	conflict := append([]byte(nil), valid.Bytes()...)
	conflict = bytes.Replace(conflict, []byte(`"scheme":"Poise"`), []byte(`"scheme":"GTO"`), 1)
	f.Add(conflict)
	f.Add([]byte(`{"format":"poisecellplan","version":99,"tasks":0}` + "\n"))
	f.Add([]byte("\x00\x01\x02"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadCellPlan(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("ReadCellPlan returned an invalid plan: %v", verr)
		}
		var buf bytes.Buffer
		if werr := WriteCellPlan(&buf, p); werr != nil {
			t.Fatalf("re-encoding an accepted cell plan: %v", werr)
		}
		again, rerr := ReadCellPlan(&buf)
		if rerr != nil {
			t.Fatalf("re-reading a re-encoded cell plan: %v", rerr)
		}
		if !reflect.DeepEqual(p, again) {
			t.Fatal("cell plan round-trip is not stable")
		}
	})
}

// FuzzReadMeasurements: the shard measurement decoder must never
// panic, and anything it accepts must survive a write/read round-trip
// and feed Merge without panicking (duplicate keys surface there as
// errors, not corruption).
func FuzzReadMeasurements(f *testing.F) {
	ms := []Measurement{
		{Tag: "t", Kernel: "k", N: 2, P: 1, IPC: 1.5, HitRate: 0.5, AML: 10, Cycles: 100, Instructions: 150},
		{Tag: "t", Kernel: "k", N: 2, P: 2, IPC: 1.25, HitRate: 0.25, AML: 20, Cycles: 200, Instructions: 250},
	}
	var valid bytes.Buffer
	if err := WriteMeasurements(&valid, 0, 1, ms); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	lines := bytes.SplitAfter(valid.Bytes(), []byte("\n"))
	f.Add(bytes.Join(lines[:len(lines)-2], nil))
	// Duplicate measurement: legal at read time, an error at merge time.
	dup := append([]byte(nil), valid.Bytes()...)
	dup = bytes.Replace(dup, []byte(`"count":2`), []byte(`"count":3`), 1)
	f.Add(append(dup, lines[len(lines)-2]...))
	f.Add([]byte(`{"format":"poiseshard","version":1,"count":1}` + "\n" + `{"tag":"t"`))
	f.Add([]byte(`{}` + "\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadMeasurements(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if werr := WriteMeasurements(&buf, 0, 1, got); werr != nil {
			t.Fatalf("re-encoding accepted measurements: %v", werr)
		}
		again, rerr := ReadMeasurements(&buf)
		if rerr != nil {
			t.Fatalf("re-reading re-encoded measurements: %v", rerr)
		}
		if !reflect.DeepEqual(got, again) && !(len(got) == 0 && len(again) == 0) {
			t.Fatal("measurement round-trip is not stable")
		}
		// Merge must handle whatever Read accepts — erroring on
		// duplicates, never panicking.
		Merge(got) //nolint:errcheck
	})
}
