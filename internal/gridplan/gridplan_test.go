package gridplan

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"poise/internal/testutil"
)

func TestEnumerateProperties(t *testing.T) {
	for _, tc := range []struct{ maxN, stepN, stepP int }{
		{24, 1, 1}, {24, 2, 2}, {24, 8, 8}, {24, 3, 5}, {1, 1, 1}, {7, 0, 0},
	} {
		grid := Enumerate(tc.maxN, tc.stepN, tc.stepP)
		seen := map[Coord]bool{}
		for _, c := range grid {
			if c.P < 1 || c.P > c.N || c.N > tc.maxN {
				t.Fatalf("%+v: invalid point %+v", tc, c)
			}
			if seen[c] {
				t.Fatalf("%+v: duplicate point %+v", tc, c)
			}
			seen[c] = true
		}
		// The corners the experiments rely on must always be present.
		for _, c := range []Coord{{tc.maxN, tc.maxN}, {tc.maxN, 1}, {1, 1}} {
			if !seen[c] {
				t.Fatalf("%+v: corner %+v missing", tc, c)
			}
		}
		// The diagonal is closed at StepN resolution.
		stepN := tc.stepN
		if stepN <= 0 {
			stepN = 1
		}
		for n := 1; n <= tc.maxN; n += stepN {
			if !seen[Coord{n, n}] {
				t.Fatalf("%+v: diagonal point (%d,%d) missing", tc, n, n)
			}
		}
	}
}

func TestEnumerateDeterministic(t *testing.T) {
	a := Enumerate(24, 2, 3)
	b := Enumerate(24, 2, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("enumeration must be deterministic")
	}
}

func planForTest(points int) *Plan {
	p := &Plan{Version: PlanVersion}
	for _, c := range Enumerate(points, 2, 2) {
		p.Tasks = append(p.Tasks, Task{
			Tag: "cfg1", Kernel: "k1", Digest: "abcd", N: c.N, P: c.P,
		})
		p.Tasks = append(p.Tasks, Task{
			Tag: "cfg1", Kernel: "k2", Digest: "ef01", N: c.N, P: c.P, Seed: 7,
		})
	}
	return p
}

func TestPlanJSONLRoundTrip(t *testing.T) {
	p := planForTest(12)
	var buf bytes.Buffer
	if err := WritePlan(&buf, p); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPlan(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Tasks, back.Tasks) {
		t.Fatalf("round trip changed tasks:\nwant %+v\ngot  %+v", p.Tasks, back.Tasks)
	}
}

func TestReadPlanRejectsGarbage(t *testing.T) {
	for name, input := range map[string]string{
		"empty":       "",
		"not-json":    "hello world\n",
		"wrong-fmt":   `{"format":"other","version":1,"tasks":0}` + "\n",
		"bad-version": `{"format":"poiseplan","version":99,"tasks":0}` + "\n",
		"truncated":   `{"format":"poiseplan","version":1,"tasks":3}` + "\n" + `{"tag":"t","kernel":"k","n":2,"p":1}` + "\n",
		"bad-coord":   `{"format":"poiseplan","version":1,"tasks":1}` + "\n" + `{"tag":"t","kernel":"k","n":1,"p":2}` + "\n",
		"dup-task": `{"format":"poiseplan","version":1,"tasks":2}` + "\n" +
			`{"tag":"t","kernel":"k","n":2,"p":1}` + "\n" + `{"tag":"t","kernel":"k","n":2,"p":1}` + "\n",
	} {
		if _, err := ReadPlan(strings.NewReader(input)); err == nil {
			t.Errorf("%s: ReadPlan accepted invalid input", name)
		}
	}
}

func TestShardPartition(t *testing.T) {
	p := planForTest(16)
	for _, n := range []int{1, 2, 3, 5, len(p.Tasks) + 3} {
		seen := map[string]int{}
		total := 0
		var sizes []int
		for i := 0; i < n; i++ {
			s, err := p.Shard(i, n)
			if err != nil {
				t.Fatal(err)
			}
			sizes = append(sizes, len(s.Tasks))
			for _, task := range s.Tasks {
				seen[task.Key()]++
				total++
			}
		}
		if total != len(p.Tasks) {
			t.Fatalf("n=%d: shards cover %d of %d tasks", n, total, len(p.Tasks))
		}
		for k, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: task %s in %d shards", n, k, c)
			}
		}
		// Round-robin dealing keeps shard sizes within one task.
		min, max := sizes[0], sizes[0]
		for _, s := range sizes {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		if max-min > 1 {
			t.Fatalf("n=%d: unbalanced shards %v", n, sizes)
		}
	}
	if _, err := p.Shard(2, 2); err == nil {
		t.Fatal("out-of-range shard index must error")
	}
	if _, err := p.Shard(0, 0); err == nil {
		t.Fatal("zero shard count must error")
	}
}

func measurementsFor(p *Plan) []Measurement {
	var ms []Measurement
	for _, t := range p.Tasks {
		ms = append(ms, Measurement{
			Tag: t.Tag, Kernel: t.Kernel, N: t.N, P: t.P,
			IPC: float64(t.N) + float64(t.P)/100, Cycles: int64(t.N * 1000),
		})
	}
	return ms
}

func TestMergeAnyShardCountIdentical(t *testing.T) {
	p := planForTest(12)
	full := measurementsFor(p)
	want, err := Merge(full)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 3, 4} {
		var shards [][]Measurement
		for i := 0; i < n; i++ {
			s, err := p.Shard(i, n)
			if err != nil {
				t.Fatal(err)
			}
			shards = append(shards, measurementsFor(s))
		}
		got, err := Merge(shards...)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("merge of %d shards differs from single-shard merge", n)
		}
		if err := p.Verify(got); err != nil {
			t.Fatalf("n=%d: complete merge failed verification: %v", n, err)
		}
	}
}

func TestMergeRejectsDuplicates(t *testing.T) {
	p := planForTest(6)
	ms := measurementsFor(p)
	if _, err := Merge(ms, ms[:1]); err == nil {
		t.Fatal("duplicate measurement must fail the merge")
	}
}

func TestVerifyCatchesMissingAndExtra(t *testing.T) {
	p := planForTest(6)
	ms := measurementsFor(p)
	if err := p.Verify(ms[1:]); err == nil {
		t.Fatal("missing measurement must fail verification")
	}
	extra := append(append([]Measurement(nil), ms...),
		Measurement{Tag: "cfg1", Kernel: "k1", N: 999, P: 999})
	if err := p.Verify(extra); err == nil {
		t.Fatal("extra measurement must fail verification")
	}
}

func TestMeasurementsJSONLRoundTrip(t *testing.T) {
	p := planForTest(8)
	ms := measurementsFor(p)
	var buf bytes.Buffer
	if err := WriteMeasurements(&buf, 1, 3, ms); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMeasurements(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ms, back) {
		t.Fatal("measurement round trip lost data")
	}
	// A plan file is not a measurement file and vice versa.
	var pbuf bytes.Buffer
	if err := WritePlan(&pbuf, p); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMeasurements(bytes.NewReader(pbuf.Bytes())); err == nil {
		t.Fatal("ReadMeasurements accepted a plan file")
	}
	if _, err := ReadPlan(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("ReadPlan accepted a measurement file")
	}
}

func TestKernelDigestMovesWithContent(t *testing.T) {
	k1 := testutil.ThrashKernel("dig", 16, 10, 4)
	k2 := testutil.ThrashKernel("dig", 16, 10, 4)
	if KernelDigest(k1) != KernelDigest(k2) {
		t.Fatal("identical kernels must digest identically")
	}
	k3 := testutil.ThrashKernel("dig", 16, 11, 4)
	if KernelDigest(k1) == KernelDigest(k3) {
		t.Fatal("changing the kernel must move the digest")
	}
	k4 := testutil.ThrashKernel("dig", 16, 10, 4)
	k4.Seed = 99
	if KernelDigest(k1) == KernelDigest(k4) {
		t.Fatal("changing the seed must move the digest")
	}
}

func TestParseShard(t *testing.T) {
	for s, want := range map[string][2]int{
		"0/1": {0, 1}, "0/4": {0, 4}, "3/4": {3, 4},
	} {
		i, n, err := ParseShard(s)
		if err != nil || i != want[0] || n != want[1] {
			t.Fatalf("ParseShard(%q) = %d, %d, %v; want %v", s, i, n, err, want)
		}
	}
	for _, s := range []string{"", "1", "a/b", "1/0", "2/2", "-1/2", "1/2/3", "1/2x"} {
		if _, _, err := ParseShard(s); err == nil {
			t.Errorf("ParseShard(%q) must fail", s)
		}
	}
}

func TestKeyOrderMatchesCoordinateOrder(t *testing.T) {
	// Lexicographic key order must equal numeric (N, P) order, or the
	// merged point order would diverge from profile.Sweep's sort.
	var prev string
	for n := 1; n <= 120; n++ {
		for p := 1; p <= n; p++ {
			k := Task{Tag: "t", Kernel: "k", N: n, P: p}.Key()
			if prev != "" && !(prev < k) {
				t.Fatalf("key order broken: %s !< %s", prev, k)
			}
			prev = k
		}
	}
}
