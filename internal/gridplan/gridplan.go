// Package gridplan turns experiment grids into serialisable work
// descriptors so a campaign can be fanned out across processes (and,
// with a transport on top, across machines). It owns the three pieces
// every distributed grid needs and nothing else:
//
//   - Enumerate: the canonical grid walk, extracted from profile.Sweep
//     so the in-process sweep and an emitted plan can never disagree
//     about which points exist.
//   - Plan / Task and CellPlan / CellTask: content-digested task
//     descriptors that round-trip through a JSONL file. A Task is one
//     {N, p} profile point (kernel digest + configuration tag + point +
//     seed); a CellTask is one experiment-grid cell (workload digest +
//     scheme/config tag + seed). The digests let a worker refuse a plan
//     whose kernels or workloads drifted from its own catalogue.
//   - Shard / Merge: deterministic i-of-N splitting and key-ordered
//     merging of per-shard records, so merging any shard count —
//     including one — reproduces the single-process run bit for bit.
//     The splitting and merging machinery is generic over anything
//     Keyed, so profile measurements and experiment-cell results share
//     one verified implementation.
//
// The package is deliberately below profile and experiments in the
// dependency order: it knows about kernels (package trace) but not
// about Profiles or WorkloadResults; packages profile and results
// assemble merged records back into their domain types.
package gridplan

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"poise/internal/trace"
)

// Coord is one {N, p} grid point.
type Coord struct {
	N, P int
}

// Enumerate returns the canonical sweep grid for a kernel whose
// per-scheduler warp bound is maxN: every (n, p) with 1 <= p <= n <=
// maxN at the given step resolution, the closed diagonal p == n at
// StepN resolution (the SWL baseline needs it), and the three corner
// points the paper's figures reference — deduplicated, in a
// deterministic order. Steps <= 0 mean exhaustive (step 1).
func Enumerate(maxN, stepN, stepP int) []Coord {
	if stepN <= 0 {
		stepN = 1
	}
	if stepP <= 0 {
		stepP = 1
	}
	var grid []Coord
	seen := map[Coord]bool{}
	add := func(n, p int) {
		c := Coord{N: n, P: p}
		if n < 1 || p < 1 || p > n || n > maxN || seen[c] {
			return
		}
		seen[c] = true
		grid = append(grid, c)
	}
	for n := 1; n <= maxN; n += stepN {
		for p := 1; p <= n; p += stepP {
			add(n, p)
		}
		// Always close the diagonal and the column top.
		add(n, n)
	}
	// Ensure the corner rows/columns the paper's figures reference.
	for _, c := range []Coord{{maxN, maxN}, {maxN, 1}, {1, 1}} {
		add(c.N, c.P)
	}
	return grid
}

// Task is one serialisable simulation unit: run kernel Kernel at grid
// point (N, P) under the configuration identified by Tag. Digest
// fingerprints the kernel's content so a worker process can verify its
// catalogue materialises the same kernel the plan was emitted from.
type Task struct {
	Tag    string `json:"tag"`    // configuration/profile-cache tag
	Kernel string `json:"kernel"` // kernel name, resolved via the catalogue
	Digest string `json:"digest"` // content digest, see KernelDigest
	N      int    `json:"n"`
	P      int    `json:"p"`
	Seed   int64  `json:"seed,omitempty"` // the kernel's address-stream seed
}

// Key is the task's stable ordering and identity key. Merging sorts by
// it, so the zero-padded coordinates make lexicographic order equal
// (tag, kernel, N, P) order — the same (N, P) order profile.Sweep
// sorts its points into.
func (t Task) Key() string {
	return fmt.Sprintf("%s|%s|%04d|%04d", t.Tag, t.Kernel, t.N, t.P)
}

// PlanVersion is the on-disk plan/measurement format version.
const PlanVersion = 1

// Keyed is the identity contract shared by plan tasks and their
// result records: a stable, unique key whose lexicographic order is
// the record's canonical order. Sharding and merging are defined
// entirely in terms of it, so every task kind splits and merges with
// the same verified machinery.
type Keyed interface{ Key() string }

// sortKeyed orders records by key in place.
func sortKeyed[T Keyed](ts []T) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Key() < ts[j].Key() })
}

// shardKeyed deals the key-sorted records round-robin and returns the
// i-of-n hand: a pure function of (records, i, n), so any process
// holding the same plan computes the same shard.
func shardKeyed[T Keyed](ts []T, i, n int) ([]T, error) {
	if n < 1 {
		return nil, fmt.Errorf("gridplan: shard count %d < 1", n)
	}
	if i < 0 || i >= n {
		return nil, fmt.Errorf("gridplan: shard index %d outside [0,%d)", i, n)
	}
	sorted := append([]T(nil), ts...)
	sortKeyed(sorted)
	var out []T
	for idx, t := range sorted {
		if idx%n == i {
			out = append(out, t)
		}
	}
	return out, nil
}

// MergeKeyed combines per-shard record sets into one key-ordered set.
// Duplicate keys are an error (a record ran in two shards — the split
// was inconsistent), so the merge is deterministic and associative:
// any shard decomposition of a plan merges to the same slice.
func MergeKeyed[T Keyed](shards ...[]T) ([]T, error) {
	var all []T
	for _, s := range shards {
		all = append(all, s...)
	}
	sortKeyed(all)
	for i := 1; i < len(all); i++ {
		if all[i].Key() == all[i-1].Key() {
			return nil, fmt.Errorf("gridplan: record %s present in two shards", all[i].Key())
		}
	}
	return all, nil
}

// VerifyCover checks that got covers tasks exactly — no key missing,
// none extra, none duplicated. noun names the record kind in error
// messages. Plan.Verify and the results store's cell verification are
// both this check.
func VerifyCover[T Keyed, M Keyed](tasks []T, got []M, noun string) error {
	want := map[string]bool{}
	for _, t := range tasks {
		want[t.Key()] = true
	}
	seen := map[string]bool{}
	for _, m := range got {
		k := m.Key()
		if !want[k] {
			return fmt.Errorf("gridplan: %s %s is not in the plan", noun, k)
		}
		if seen[k] {
			return fmt.Errorf("gridplan: %s %s appears twice", noun, k)
		}
		seen[k] = true
	}
	for k := range want {
		if !seen[k] {
			return fmt.Errorf("gridplan: plan task %s has no %s (missing shard?)", k, noun)
		}
	}
	return nil
}

// Plan is an ordered set of tasks — typically every grid point of
// every kernel in one sweep campaign.
type Plan struct {
	Version int    `json:"version"`
	Tasks   []Task `json:"-"`
}

// Sort orders the tasks by key (stable identity order). Shard and
// Verify call it implicitly; exported for callers that want the
// canonical order for display.
func (p *Plan) Sort() { sortKeyed(p.Tasks) }

// Validate reports duplicate task keys or malformed coordinates.
func (p *Plan) Validate() error {
	seen := map[string]bool{}
	for _, t := range p.Tasks {
		if t.Kernel == "" {
			return fmt.Errorf("gridplan: task %s has no kernel", t.Key())
		}
		if t.N < 1 || t.P < 1 || t.P > t.N {
			return fmt.Errorf("gridplan: task %s violates 1 <= p <= N", t.Key())
		}
		k := t.Key()
		if seen[k] {
			return fmt.Errorf("gridplan: duplicate task %s", k)
		}
		seen[k] = true
	}
	return nil
}

// Shard returns the i-of-n slice of the plan: tasks are sorted by key
// and dealt round-robin, so shards are near-equal in size and the
// split is a pure function of (plan, i, n) — any process holding the
// same plan file computes the same shard. Shard(0, 1) is the whole
// plan.
func (p *Plan) Shard(i, n int) (*Plan, error) {
	tasks, err := shardKeyed(p.Tasks, i, n)
	if err != nil {
		return nil, err
	}
	return &Plan{Version: p.Version, Tasks: tasks}, nil
}

// ParseShard parses a command-line "i/N" shard assignment (e.g.
// "0/4"), validating 0 <= i < N.
func ParseShard(s string) (index, count int, err error) {
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return 0, 0, fmt.Errorf("gridplan: shard %q is not of the form i/N", s)
	}
	index, err1 := strconv.Atoi(s[:i])
	count, err2 := strconv.Atoi(s[i+1:])
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("gridplan: shard %q is not of the form i/N", s)
	}
	if count < 1 {
		return 0, 0, fmt.Errorf("gridplan: shard count %d < 1 in %q", count, s)
	}
	if index < 0 || index >= count {
		return 0, 0, fmt.Errorf("gridplan: shard index %d outside [0,%d) in %q", index, count, s)
	}
	return index, count, nil
}

// SplitFiles parses a command-line comma-separated shard-file list,
// trimming whitespace and dropping empty entries. An empty list is an
// error: merging zero shards silently yields an empty result, which a
// mistyped flag should never be able to request.
func SplitFiles(s string) ([]string, error) {
	var files []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("gridplan: no shard files in %q", s)
	}
	return files, nil
}

// Kernels returns the distinct (tag, kernel) pairs of the plan in key
// order, with each pair's tasks grouped.
func (p *Plan) Kernels() []KernelTasks {
	byKey := map[string]*KernelTasks{}
	var order []string
	sorted := &Plan{Tasks: append([]Task(nil), p.Tasks...)}
	sorted.Sort()
	for _, t := range sorted.Tasks {
		k := t.Tag + "|" + t.Kernel
		g, ok := byKey[k]
		if !ok {
			g = &KernelTasks{Tag: t.Tag, Kernel: t.Kernel}
			byKey[k] = g
			order = append(order, k)
		}
		g.Tasks = append(g.Tasks, t)
	}
	out := make([]KernelTasks, 0, len(order))
	for _, k := range order {
		out = append(out, *byKey[k])
	}
	return out
}

// KernelTasks groups one kernel's tasks within a plan.
type KernelTasks struct {
	Tag    string
	Kernel string
	Tasks  []Task
}

// Measurement is the raw result of one executed Task. It carries
// un-normalised metrics only: speedups are computed at merge time from
// the baseline (maxN, maxN) measurement, which may live in a different
// shard than the point it normalises.
type Measurement struct {
	Tag    string `json:"tag"`
	Kernel string `json:"kernel"`
	N      int    `json:"n"`
	P      int    `json:"p"`

	IPC          float64 `json:"ipc"`
	HitRate      float64 `json:"hitRate"`
	AML          float64 `json:"aml"`
	Cycles       int64   `json:"cycles"`
	Instructions int64   `json:"instructions"`
}

// Key mirrors Task.Key.
func (m Measurement) Key() string {
	return fmt.Sprintf("%s|%s|%04d|%04d", m.Tag, m.Kernel, m.N, m.P)
}

// Merge combines per-shard measurement sets into one key-ordered set.
// Duplicate keys are an error (a point ran in two shards — the split
// was inconsistent), so the merge is deterministic and associative:
// any shard decomposition of a plan merges to the same slice.
func Merge(shards ...[]Measurement) ([]Measurement, error) {
	return MergeKeyed(shards...)
}

// Verify checks that the measurements cover the plan's tasks exactly:
// no point missing, none extra. Use it before assembling profiles so a
// lost or double-submitted shard fails loudly instead of producing a
// silently sparse profile.
func (p *Plan) Verify(ms []Measurement) error {
	return VerifyCover(p.Tasks, ms, "measurement")
}

// KernelDigest fingerprints a kernel's content: structure, body,
// per-warp iteration counts and pattern addresses sampled across warps
// and iterations. Workers compare it against a plan's Task.Digest
// before simulating, so a stale catalogue cannot silently corrupt a
// sweep. The implementation lives in package trace (the digest is a
// pure function of the kernel) so the simulator's prefix cache can
// chain the same digests without depending on gridplan.
func KernelDigest(k *trace.Kernel) string {
	return trace.KernelDigest(k)
}
