// Package gridplan turns {N, p} solution-space sweeps into serialisable
// work descriptors so a profile sweep can be fanned out across
// processes (and, with a transport on top, across machines). It owns
// the three pieces every distributed sweep needs and nothing else:
//
//   - Enumerate: the canonical grid walk, extracted from profile.Sweep
//     so the in-process sweep and an emitted plan can never disagree
//     about which points exist.
//   - Plan / Task: content-digested task descriptors (kernel digest +
//     configuration tag + {n, p} point + seed) that round-trip through
//     a JSONL file. The digest lets a worker refuse a plan whose
//     kernels drifted from its own catalogue.
//   - Shard / Merge: deterministic i-of-N splitting and key-ordered
//     merging of per-shard measurements, so merging any shard count —
//     including one — reproduces the single-process sweep bit for bit.
//
// The package is deliberately below profile in the dependency order:
// it knows about kernels (package trace) but not about Profiles;
// package profile assembles merged measurements back into a Profile.
package gridplan

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"poise/internal/trace"
)

// Coord is one {N, p} grid point.
type Coord struct {
	N, P int
}

// Enumerate returns the canonical sweep grid for a kernel whose
// per-scheduler warp bound is maxN: every (n, p) with 1 <= p <= n <=
// maxN at the given step resolution, the closed diagonal p == n at
// StepN resolution (the SWL baseline needs it), and the three corner
// points the paper's figures reference — deduplicated, in a
// deterministic order. Steps <= 0 mean exhaustive (step 1).
func Enumerate(maxN, stepN, stepP int) []Coord {
	if stepN <= 0 {
		stepN = 1
	}
	if stepP <= 0 {
		stepP = 1
	}
	var grid []Coord
	seen := map[Coord]bool{}
	add := func(n, p int) {
		c := Coord{N: n, P: p}
		if n < 1 || p < 1 || p > n || n > maxN || seen[c] {
			return
		}
		seen[c] = true
		grid = append(grid, c)
	}
	for n := 1; n <= maxN; n += stepN {
		for p := 1; p <= n; p += stepP {
			add(n, p)
		}
		// Always close the diagonal and the column top.
		add(n, n)
	}
	// Ensure the corner rows/columns the paper's figures reference.
	for _, c := range []Coord{{maxN, maxN}, {maxN, 1}, {1, 1}} {
		add(c.N, c.P)
	}
	return grid
}

// Task is one serialisable simulation unit: run kernel Kernel at grid
// point (N, P) under the configuration identified by Tag. Digest
// fingerprints the kernel's content so a worker process can verify its
// catalogue materialises the same kernel the plan was emitted from.
type Task struct {
	Tag    string `json:"tag"`    // configuration/profile-cache tag
	Kernel string `json:"kernel"` // kernel name, resolved via the catalogue
	Digest string `json:"digest"` // content digest, see KernelDigest
	N      int    `json:"n"`
	P      int    `json:"p"`
	Seed   int64  `json:"seed,omitempty"` // the kernel's address-stream seed
}

// Key is the task's stable ordering and identity key. Merging sorts by
// it, so the zero-padded coordinates make lexicographic order equal
// (tag, kernel, N, P) order — the same (N, P) order profile.Sweep
// sorts its points into.
func (t Task) Key() string {
	return fmt.Sprintf("%s|%s|%04d|%04d", t.Tag, t.Kernel, t.N, t.P)
}

// PlanVersion is the on-disk plan/measurement format version.
const PlanVersion = 1

// Plan is an ordered set of tasks — typically every grid point of
// every kernel in one sweep campaign.
type Plan struct {
	Version int    `json:"version"`
	Tasks   []Task `json:"-"`
}

// Sort orders the tasks by key (stable identity order). Shard and
// Verify call it implicitly; exported for callers that want the
// canonical order for display.
func (p *Plan) Sort() {
	sort.Slice(p.Tasks, func(i, j int) bool {
		return p.Tasks[i].Key() < p.Tasks[j].Key()
	})
}

// Validate reports duplicate task keys or malformed coordinates.
func (p *Plan) Validate() error {
	seen := map[string]bool{}
	for _, t := range p.Tasks {
		if t.Kernel == "" {
			return fmt.Errorf("gridplan: task %s has no kernel", t.Key())
		}
		if t.N < 1 || t.P < 1 || t.P > t.N {
			return fmt.Errorf("gridplan: task %s violates 1 <= p <= N", t.Key())
		}
		k := t.Key()
		if seen[k] {
			return fmt.Errorf("gridplan: duplicate task %s", k)
		}
		seen[k] = true
	}
	return nil
}

// Shard returns the i-of-n slice of the plan: tasks are sorted by key
// and dealt round-robin, so shards are near-equal in size and the
// split is a pure function of (plan, i, n) — any process holding the
// same plan file computes the same shard. Shard(0, 1) is the whole
// plan.
func (p *Plan) Shard(i, n int) (*Plan, error) {
	if n < 1 {
		return nil, fmt.Errorf("gridplan: shard count %d < 1", n)
	}
	if i < 0 || i >= n {
		return nil, fmt.Errorf("gridplan: shard index %d outside [0,%d)", i, n)
	}
	sorted := &Plan{Version: p.Version, Tasks: append([]Task(nil), p.Tasks...)}
	sorted.Sort()
	out := &Plan{Version: p.Version}
	for idx, t := range sorted.Tasks {
		if idx%n == i {
			out.Tasks = append(out.Tasks, t)
		}
	}
	return out, nil
}

// ParseShard parses a command-line "i/N" shard assignment (e.g.
// "0/4"), validating 0 <= i < N.
func ParseShard(s string) (index, count int, err error) {
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return 0, 0, fmt.Errorf("gridplan: shard %q is not of the form i/N", s)
	}
	index, err1 := strconv.Atoi(s[:i])
	count, err2 := strconv.Atoi(s[i+1:])
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("gridplan: shard %q is not of the form i/N", s)
	}
	if count < 1 {
		return 0, 0, fmt.Errorf("gridplan: shard count %d < 1 in %q", count, s)
	}
	if index < 0 || index >= count {
		return 0, 0, fmt.Errorf("gridplan: shard index %d outside [0,%d) in %q", index, count, s)
	}
	return index, count, nil
}

// Kernels returns the distinct (tag, kernel) pairs of the plan in key
// order, with each pair's tasks grouped.
func (p *Plan) Kernels() []KernelTasks {
	byKey := map[string]*KernelTasks{}
	var order []string
	sorted := &Plan{Tasks: append([]Task(nil), p.Tasks...)}
	sorted.Sort()
	for _, t := range sorted.Tasks {
		k := t.Tag + "|" + t.Kernel
		g, ok := byKey[k]
		if !ok {
			g = &KernelTasks{Tag: t.Tag, Kernel: t.Kernel}
			byKey[k] = g
			order = append(order, k)
		}
		g.Tasks = append(g.Tasks, t)
	}
	out := make([]KernelTasks, 0, len(order))
	for _, k := range order {
		out = append(out, *byKey[k])
	}
	return out
}

// KernelTasks groups one kernel's tasks within a plan.
type KernelTasks struct {
	Tag    string
	Kernel string
	Tasks  []Task
}

// Measurement is the raw result of one executed Task. It carries
// un-normalised metrics only: speedups are computed at merge time from
// the baseline (maxN, maxN) measurement, which may live in a different
// shard than the point it normalises.
type Measurement struct {
	Tag    string `json:"tag"`
	Kernel string `json:"kernel"`
	N      int    `json:"n"`
	P      int    `json:"p"`

	IPC          float64 `json:"ipc"`
	HitRate      float64 `json:"hitRate"`
	AML          float64 `json:"aml"`
	Cycles       int64   `json:"cycles"`
	Instructions int64   `json:"instructions"`
}

// Key mirrors Task.Key.
func (m Measurement) Key() string {
	return fmt.Sprintf("%s|%s|%04d|%04d", m.Tag, m.Kernel, m.N, m.P)
}

// Merge combines per-shard measurement sets into one key-ordered set.
// Duplicate keys are an error (a point ran in two shards — the split
// was inconsistent), so the merge is deterministic and associative:
// any shard decomposition of a plan merges to the same slice.
func Merge(shards ...[]Measurement) ([]Measurement, error) {
	var all []Measurement
	for _, s := range shards {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Key() < all[j].Key() })
	for i := 1; i < len(all); i++ {
		if all[i].Key() == all[i-1].Key() {
			return nil, fmt.Errorf("gridplan: point %s measured in two shards", all[i].Key())
		}
	}
	return all, nil
}

// Verify checks that the measurements cover the plan's tasks exactly:
// no point missing, none extra. Use it before assembling profiles so a
// lost or double-submitted shard fails loudly instead of producing a
// silently sparse profile.
func (p *Plan) Verify(ms []Measurement) error {
	want := map[string]bool{}
	for _, t := range p.Tasks {
		want[t.Key()] = true
	}
	got := map[string]bool{}
	for _, m := range ms {
		k := m.Key()
		if !want[k] {
			return fmt.Errorf("gridplan: measurement %s is not in the plan", k)
		}
		if got[k] {
			return fmt.Errorf("gridplan: measurement %s appears twice", k)
		}
		got[k] = true
	}
	for k := range want {
		if !got[k] {
			return fmt.Errorf("gridplan: plan task %s has no measurement (missing shard?)", k)
		}
	}
	return nil
}

// KernelDigest fingerprints a kernel's content: structure, body,
// per-warp iteration counts and pattern addresses sampled across warps
// and iterations. Sampling keeps the digest cheap while still moving
// whenever the kernel is regenerated differently (a different seed or
// source perturbs essentially every address of the stochastic
// streams). Workers compare it against a plan's Task.Digest before
// simulating, so a stale catalogue cannot silently corrupt a sweep.
func KernelDigest(k *trace.Kernel) string {
	d := sha256.New()
	fmt.Fprintf(d, "%s;%d;%d;%d;%d;%d;%d;%v", k.Name, k.Iters,
		k.WarpsPerBlock, k.Blocks, k.MaxWarpsPerSched, k.MaxBlocksPerSM,
		k.Seed, k.IterJitter)
	for _, ins := range k.Body {
		fmt.Fprintf(d, ",%d.%d.%d.%v", ins.Kind, ins.Slot, ins.UseDist, ins.DepALU)
	}
	for _, it := range k.PerWarpIters {
		fmt.Fprintf(d, ":%d", it)
	}
	total := k.TotalWarps()
	for _, g := range []int{0, total / 3, total / 2, total - 1} {
		if g < 0 || g >= total {
			continue
		}
		ctx := trace.Ctx{GlobalWarp: g, Block: g / k.WarpsPerBlock, WarpInBlk: g % k.WarpsPerBlock}
		iters := k.WarpIters(g)
		for slot, p := range k.Patterns {
			if p == nil {
				continue
			}
			for probe := 0; probe < 16; probe++ {
				seq := probe * iters / 16
				if seq >= iters {
					break
				}
				fmt.Fprintf(d, "@%d.%d.%d=%x", g, slot, seq, p.Addr(ctx, seq))
			}
		}
	}
	return hex.EncodeToString(d.Sum(nil)[:8])
}
