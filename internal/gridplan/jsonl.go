package gridplan

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// The JSONL container: one header object on the first line, then one
// record per line. JSONL rather than a single JSON document so shard
// workers can stream arbitrarily large plans and a truncated transfer
// is detected by the header's count, not by a silent short read.

type planHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Tasks   int    `json:"tasks"`
}

type measHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Shard   int    `json:"shard"`
	Of      int    `json:"of"`
	Count   int    `json:"count"`
}

const (
	planFormat = "poiseplan"
	measFormat = "poiseshard"

	// CellPlanFormat tags experiment-cell plan files; exported so
	// callers can dispatch on PlanFileFormat's result.
	CellPlanFormat = "poisecellplan"
	// ProfilePlanFormat is the profile-sweep plan tag, for symmetry.
	ProfilePlanFormat = planFormat
)

// PlanFileFormat reads just the header of a JSONL plan file and
// returns its format tag (ProfilePlanFormat or CellPlanFormat), so a
// command can dispatch a -plan argument to the right pipeline without
// parsing the whole file twice.
func PlanFileFormat(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	var h planHeader
	if err := newLineScanner(f).Next(&h); err != nil {
		return "", fmt.Errorf("gridplan: reading %s header: %w", path, err)
	}
	if h.Format == "" {
		return "", fmt.Errorf("gridplan: %s is not a plan file (no format header)", path)
	}
	return h.Format, nil
}

// WritePlan serialises a plan as JSONL.
func WritePlan(w io.Writer, p *Plan) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	v := p.Version
	if v == 0 {
		v = PlanVersion
	}
	if err := enc.Encode(planHeader{Format: planFormat, Version: v, Tasks: len(p.Tasks)}); err != nil {
		return err
	}
	for _, t := range p.Tasks {
		if err := enc.Encode(t); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPlan parses a JSONL plan, validating the header, the task count
// and the task invariants.
func ReadPlan(r io.Reader) (*Plan, error) {
	sc := newLineScanner(r)
	var h planHeader
	if err := sc.Next(&h); err != nil {
		return nil, fmt.Errorf("gridplan: plan header: %w", err)
	}
	if h.Format != planFormat {
		return nil, fmt.Errorf("gridplan: not a plan file (format %q)", h.Format)
	}
	if h.Version != PlanVersion {
		return nil, fmt.Errorf("gridplan: unsupported plan version %d (have %d)", h.Version, PlanVersion)
	}
	p := &Plan{Version: h.Version}
	for {
		var t Task
		err := sc.Next(&t)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("gridplan: plan line %d: %w", sc.Line(), err)
		}
		p.Tasks = append(p.Tasks, t)
	}
	if len(p.Tasks) != h.Tasks {
		return nil, fmt.Errorf("gridplan: plan truncated: header says %d tasks, file has %d", h.Tasks, len(p.Tasks))
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// WritePlanFile writes a plan to path.
func WritePlanFile(path string, p *Plan) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = WritePlan(f, p)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("gridplan: writing %s: %w", path, err)
	}
	return nil
}

// ReadPlanFile reads a plan from path.
func ReadPlanFile(path string) (*Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := ReadPlan(f)
	if err != nil {
		return nil, fmt.Errorf("%w (reading %s)", err, path)
	}
	return p, nil
}

// WriteMeasurements serialises one shard's measurements as JSONL.
// shard/of record which split produced the file; Merge does not trust
// them, they are for operators and error messages.
func WriteMeasurements(w io.Writer, shard, of int, ms []Measurement) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(measHeader{Format: measFormat, Version: PlanVersion, Shard: shard, Of: of, Count: len(ms)}); err != nil {
		return err
	}
	for _, m := range ms {
		if err := enc.Encode(m); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMeasurements parses a shard measurement file.
func ReadMeasurements(r io.Reader) ([]Measurement, error) {
	sc := newLineScanner(r)
	var h measHeader
	if err := sc.Next(&h); err != nil {
		return nil, fmt.Errorf("gridplan: shard header: %w", err)
	}
	if h.Format != measFormat {
		return nil, fmt.Errorf("gridplan: not a shard measurement file (format %q)", h.Format)
	}
	if h.Version != PlanVersion {
		return nil, fmt.Errorf("gridplan: unsupported shard version %d (have %d)", h.Version, PlanVersion)
	}
	var ms []Measurement
	for {
		var m Measurement
		err := sc.Next(&m)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("gridplan: shard line %d: %w", sc.Line(), err)
		}
		ms = append(ms, m)
	}
	if len(ms) != h.Count {
		return nil, fmt.Errorf("gridplan: shard truncated: header says %d measurements, file has %d", h.Count, len(ms))
	}
	return ms, nil
}

// WriteMeasurementsFile writes a shard measurement file to path.
func WriteMeasurementsFile(path string, shard, of int, ms []Measurement) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = WriteMeasurements(f, shard, of, ms)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("gridplan: writing %s: %w", path, err)
	}
	return nil
}

// ReadMeasurementsFile reads a shard measurement file from path.
func ReadMeasurementsFile(path string) ([]Measurement, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ms, err := ReadMeasurements(f)
	if err != nil {
		return nil, fmt.Errorf("%w (reading %s)", err, path)
	}
	return ms, nil
}

// WriteCellPlan serialises an experiment-cell plan as JSONL.
func WriteCellPlan(w io.Writer, p *CellPlan) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	v := p.Version
	if v == 0 {
		v = PlanVersion
	}
	if err := enc.Encode(planHeader{Format: CellPlanFormat, Version: v, Tasks: len(p.Cells)}); err != nil {
		return err
	}
	for _, c := range p.Cells {
		if err := enc.Encode(c); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCellPlan parses a JSONL cell plan, validating the header, the
// cell count and the cell invariants.
func ReadCellPlan(r io.Reader) (*CellPlan, error) {
	sc := newLineScanner(r)
	var h planHeader
	if err := sc.Next(&h); err != nil {
		return nil, fmt.Errorf("gridplan: cell plan header: %w", err)
	}
	if h.Format != CellPlanFormat {
		return nil, fmt.Errorf("gridplan: not a cell plan file (format %q)", h.Format)
	}
	if h.Version != PlanVersion {
		return nil, fmt.Errorf("gridplan: unsupported cell plan version %d (have %d)", h.Version, PlanVersion)
	}
	p := &CellPlan{Version: h.Version}
	for {
		var c CellTask
		err := sc.Next(&c)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("gridplan: cell plan line %d: %w", sc.Line(), err)
		}
		p.Cells = append(p.Cells, c)
	}
	if len(p.Cells) != h.Tasks {
		return nil, fmt.Errorf("gridplan: cell plan truncated: header says %d cells, file has %d", h.Tasks, len(p.Cells))
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// WriteCellPlanFile writes a cell plan to path.
func WriteCellPlanFile(path string, p *CellPlan) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = WriteCellPlan(f, p)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("gridplan: writing %s: %w", path, err)
	}
	return nil
}

// ReadCellPlanFile reads a cell plan from path.
func ReadCellPlanFile(path string) (*CellPlan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := ReadCellPlan(f)
	if err != nil {
		return nil, fmt.Errorf("%w (reading %s)", err, path)
	}
	return p, nil
}

// JSONLScanner decodes one JSON object per line, tolerating blank
// lines and tracking line numbers for diagnostics. It is exported so
// sibling stores (package results' cell-shard container) parse their
// JSONL files with exactly the same rules instead of duplicating the
// scanner.
type JSONLScanner struct {
	sc   *bufio.Scanner
	line int
}

// NewJSONLScanner wraps r; maxLine bounds a single line's size (<= 0
// selects the plan files' default of 4 MB).
func NewJSONLScanner(r io.Reader, maxLine int) *JSONLScanner {
	if maxLine <= 0 {
		maxLine = 4 * 1024 * 1024
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLine)
	return &JSONLScanner{sc: sc}
}

func newLineScanner(r io.Reader) *JSONLScanner { return NewJSONLScanner(r, 0) }

// Next decodes the next non-blank line into v, returning io.EOF at
// the end of input.
func (l *JSONLScanner) Next(v any) error {
	for l.sc.Scan() {
		l.line++
		b := l.sc.Bytes()
		if len(trimSpace(b)) == 0 {
			continue
		}
		return json.Unmarshal(b, v)
	}
	if err := l.sc.Err(); err != nil {
		return err
	}
	return io.EOF
}

// Line reports the current (1-based) line number, for error messages.
func (l *JSONLScanner) Line() int { return l.line }

func trimSpace(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\r') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}
