package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// The wire protocol is HTTP carrying the same JSONL idiom the plan
// files use: one JSON header line, then one record per line, with
// counts in the header detecting truncated transfers.
//
//	GET  /v1/plan      -> plan envelope line, then the raw plan JSONL
//	POST /v1/lease     <- lease request; -> lease envelope line, then
//	                      one task line per granted task
//	POST /v1/complete  <- completion header line, then one result line
//	                      per finished task; -> completion reply
//
// Workers push each result as soon as its task finishes (streamed
// partials), so the coordinator's progress view is per task: steals
// take only genuinely unstarted work, and a worker killed mid-lease
// loses at most the task it was running.

// Lease and completion statuses.
const (
	statusOK   = "ok"   // lease granted / completion accepted
	statusWait = "wait" // nothing grantable now; poll again
	statusGen  = "gen"  // worker's generation is stale; refetch the plan
	statusDone = "done" // campaign complete; worker may exit
	statusErr  = "error"
)

// planEnvelope is the first line of a /v1/plan response; the raw plan
// JSONL (a profile or cell plan, per Format) follows when Done is
// false.
type planEnvelope struct {
	Fleet  string `json:"fleet"` // "plan"
	Gen    int    `json:"gen"`
	Format string `json:"format"`
	Done   bool   `json:"done"`
	Error  string `json:"error,omitempty"`
}

// leaseRequest is a /v1/lease POST body.
type leaseRequest struct {
	Worker string `json:"worker"`
	Gen    int    `json:"gen"`
}

// leaseReply is the first line of a /v1/lease response; Count task
// lines follow on statusOK, aligned with Keys.
type leaseReply struct {
	Fleet      string   `json:"fleet"` // "lease"
	Status     string   `json:"status"`
	Gen        int      `json:"gen"`
	Lease      string   `json:"lease,omitempty"`
	DeadlineMS int64    `json:"deadlineMS,omitempty"`
	Count      int      `json:"count"`
	Keys       []string `json:"keys,omitempty"`
	Error      string   `json:"error,omitempty"`
}

// completeHeader is the first line of a /v1/complete POST body; Count
// result lines follow.
type completeHeader struct {
	Worker string `json:"worker"`
	Gen    int    `json:"gen"`
	Lease  string `json:"lease"`
	Count  int    `json:"count"`
}

// resultLine is one streamed task result. Error marks a task the
// worker could not execute; task failures are deterministic, so one
// fails the campaign.
type resultLine struct {
	Key   string          `json:"key"`
	Data  json.RawMessage `json:"data,omitempty"`
	Error string          `json:"error,omitempty"`
}

// completeReply acknowledges a completion batch. Owned lists the keys
// the lease still holds (grant order); a key the worker meant to run
// next that is absent was stolen and must be skipped. Owned empty —
// including when the lease itself was expired — means the worker
// should request a fresh lease.
type completeReply struct {
	Fleet      string   `json:"fleet"` // "complete"
	Status     string   `json:"status"`
	Owned      []string `json:"owned,omitempty"`
	Duplicates int      `json:"duplicates,omitempty"`
	Error      string   `json:"error,omitempty"`
}

// writeJSONL writes the header followed by the given lines.
func writeJSONL(w io.Writer, header any, lines []json.RawMessage) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header); err != nil {
		return err
	}
	for _, l := range lines {
		if _, err := bw.Write(l); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// readJSONL decodes a header line and count lines (per the caller,
// after it has read the header) from one stream.
func readHeader(r *bufio.Reader, v any) error {
	line, err := r.ReadBytes('\n')
	if len(line) == 0 && err != nil {
		return err
	}
	return json.Unmarshal(line, v)
}

// readLines reads exactly count JSON lines.
func readLines(r *bufio.Reader, count int) ([]json.RawMessage, error) {
	out := make([]json.RawMessage, 0, count)
	for len(out) < count {
		line, err := r.ReadBytes('\n')
		if len(line) == 0 || (err != nil && err != io.EOF) {
			return nil, fmt.Errorf("fleet: truncated body: %d of %d lines (%v)", len(out), count, err)
		}
		raw := json.RawMessage(nil)
		if uerr := json.Unmarshal(line, &raw); uerr != nil {
			return nil, fmt.Errorf("fleet: body line %d: %w", len(out)+1, uerr)
		}
		out = append(out, raw)
	}
	return out, nil
}
