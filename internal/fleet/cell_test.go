package fleet

import (
	"reflect"
	"testing"
	"time"

	"poise/internal/experiments"
	"poise/internal/gridplan"
	"poise/internal/results"
	"poise/internal/workloads"
)

// cellOptions mirrors the experiments test-suite subset: 2 SMs, the
// small workload scale, one evaluation workload, and a coarse profile
// grid. CacheDir stays empty so each harness memoises its own
// profiles in memory — workers share nothing but the wire.
func cellOptions() experiments.Options {
	return experiments.Options{
		SMs: 2, Size: workloads.Small,
		EvalStepN: 12, EvalStepP: 12, TrainStepN: 12, TrainStepP: 12,
		Workers:    1,
		EvalSubset: []string{"bfs"},
	}
}

// TestCellCampaignByteIdentical: an experiment grid distributed over
// two workers — each with its own independently-constructed harness —
// must save a results store byte-identical to the single-process run.
func TestCellCampaignByteIdentical(t *testing.T) {
	if raceEnabled {
		t.Skip("cell simulation is ~10x slower under -race; the fleet protocol is race-covered by the profile chaos tests")
	}
	const grid = "scheme"
	h := experiments.NewHarness(cellOptions())
	plan, err := h.CellPlan(grid)
	if err != nil {
		t.Fatal(err)
	}
	plan.Sort()
	cells, err := h.RunCellTasks(grid, plan.Cells)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := results.Merge(cells)
	if err != nil {
		t.Fatal(err)
	}
	refDir := t.TempDir()
	if err := (results.Store{Dir: refDir}).Save(merged[0].Tag, grid, merged); err != nil {
		t.Fatal(err)
	}

	// Fleet: a fresh plan (so the campaign, not the reference run,
	// defines what workers see) and two workers with separate
	// harnesses.
	campPlan, err := experiments.NewHarness(cellOptions()).CellPlan(grid)
	if err != nil {
		t.Fatal(err)
	}
	mkWorker := func(name string) *Worker {
		return &Worker{Name: name, Executors: map[string]Executor{
			gridplan.CellPlanFormat: CellExecutor{H: experiments.NewHarness(cellOptions())},
		}}
	}
	fopts := Options{LeaseTasks: 2, LeaseTTL: 5 * time.Minute, Logf: t.Logf}
	res, coord := fleetRun(t, CellCampaign{Plan: campPlan}, fopts,
		[]*Worker{mkWorker("w1"), mkWorker("w2")}, nil)
	if st := coord.Stats(); st.Tasks != len(campPlan.Cells) {
		t.Fatalf("stats %+v, want %d tasks", st, len(campPlan.Cells))
	}

	fleetDir := t.TempDir()
	tag, gotGrid, n, err := SaveCells(results.Store{Dir: fleetDir}, res)
	if err != nil {
		t.Fatal(err)
	}
	if tag != merged[0].Tag || gotGrid != grid || n != len(merged) {
		t.Fatalf("SaveCells = (%s, %s, %d), want (%s, %s, %d)", tag, gotGrid, n, merged[0].Tag, grid, len(merged))
	}
	if ref, got := dirBytes(t, refDir), dirBytes(t, fleetDir); !reflect.DeepEqual(ref, got) {
		t.Fatal("fleet cell store differs from single-process store")
	}
}
