package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"poise/internal/sim"
)

// An Executor turns a fetched plan into a Batch that can run its
// tasks. Prepare sees the whole plan, so it validates everything up
// front (catalogue presence, content digests, configuration tags) —
// a worker launched with drifted flags fails before leasing anything.
type Executor interface {
	Prepare(planData []byte) (Batch, error)
}

// A Batch executes task lines from the plan it was prepared for and
// returns one serialised result per line, aligned with the input.
type Batch interface {
	Run(lines []json.RawMessage) ([]json.RawMessage, error)
}

// Worker pulls leases from a coordinator until the campaign
// completes. One worker serves any number of plan generations; the
// executor for each is selected by the plan's format.
type Worker struct {
	// Base is the coordinator's base URL (e.g. "http://host:9444").
	Base string
	// Name identifies the worker in coordinator logs.
	Name string
	// Executors dispatches plan formats (gridplan.ProfilePlanFormat,
	// gridplan.CellPlanFormat) to their executor.
	Executors map[string]Executor
	// Client overrides the HTTP client (tests inject flaky
	// transports); nil uses a default.
	Client *http.Client
	// Poll is the idle re-poll interval when the coordinator has
	// nothing to grant (default 50ms).
	Poll time.Duration
	// Chunk is how many tasks run per Batch.Run call before their
	// results are streamed back (default 1 — finest-grained progress,
	// so steals and crash recovery lose at most one task's work).
	Chunk int
	// Retries bounds transport-level retries per request (default 10,
	// with exponential backoff — generous enough to ride out a
	// coordinator that is still starting up).
	Retries int
	// BeforeTask, when set, runs before each task with the number of
	// tasks this worker has completed so far. An error stops the
	// worker immediately, mid-lease — the chaos tests' kill switch.
	BeforeTask func(done int) error
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)

	ran int // tasks completed (for BeforeTask)
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return &http.Client{Timeout: 5 * time.Minute}
}

// Run serves the campaign to completion: fetch the current plan,
// prepare its executor, then lease-execute-complete until the
// coordinator reports a new generation (refetch) or done (exit).
func (w *Worker) Run(ctx context.Context) error {
	if w.Poll <= 0 {
		w.Poll = 50 * time.Millisecond
	}
	if w.Chunk <= 0 {
		w.Chunk = 1
	}
	if w.Retries <= 0 {
		w.Retries = 10
	}
	for {
		env, planData, err := w.fetchPlan(ctx)
		if err != nil {
			return err
		}
		if env.Error != "" {
			return fmt.Errorf("fleet: campaign failed: %s", env.Error)
		}
		if env.Done {
			w.logf("worker %s: campaign complete after %d tasks", w.Name, w.ran)
			return nil
		}
		ex := w.Executors[env.Format]
		if ex == nil {
			return fmt.Errorf("fleet: no executor for plan format %q", env.Format)
		}
		batch, err := ex.Prepare(planData)
		if err != nil {
			return fmt.Errorf("fleet: preparing generation %d: %w", env.Gen, err)
		}
		w.logf("worker %s: generation %d (%s)", w.Name, env.Gen, env.Format)
		if err := w.serveGen(ctx, env.Gen, batch); err != nil {
			if err == errStaleGen {
				continue // the campaign advanced; refetch the plan
			}
			return err
		}
	}
}

// errStaleGen signals that the coordinator moved to a new generation.
var errStaleGen = fmt.Errorf("fleet: stale generation")

// serveGen runs leases of one generation until the coordinator
// advances or completes.
func (w *Worker) serveGen(ctx context.Context, gen int, batch Batch) error {
	for {
		rep, lines, err := w.requestLease(ctx, gen)
		if err != nil {
			return err
		}
		switch rep.Status {
		case statusDone:
			return nil
		case statusErr:
			return fmt.Errorf("fleet: campaign failed: %s", rep.Error)
		case statusGen:
			return errStaleGen
		case statusWait:
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(w.Poll):
			}
		case statusOK:
			if err := w.runLease(ctx, gen, batch, rep, lines); err != nil {
				return err
			}
		default:
			return fmt.Errorf("fleet: unknown lease status %q", rep.Status)
		}
	}
}

// runLease executes a lease's tasks in grant order, streaming results
// back a chunk at a time and dropping any task the completion replies
// report as no longer owned (stolen, or settled by another worker).
func (w *Worker) runLease(ctx context.Context, gen int, batch Batch, rep leaseReply, lines []json.RawMessage) error {
	if len(lines) != len(rep.Keys) {
		return fmt.Errorf("fleet: lease %s: %d keys but %d task lines", rep.Lease, len(rep.Keys), len(lines))
	}
	byKey := make(map[string]json.RawMessage, len(lines))
	for i, k := range rep.Keys {
		byKey[k] = lines[i]
	}
	owned := rep.Keys
	for len(owned) > 0 {
		n := w.Chunk
		if n > len(owned) {
			n = len(owned)
		}
		chunkKeys := owned[:n]
		chunk := make([]json.RawMessage, n)
		for i, k := range chunkKeys {
			chunk[i] = byKey[k]
			if w.BeforeTask != nil {
				if err := w.BeforeTask(w.ran); err != nil {
					return err
				}
			}
		}
		results, runErr := batchRun(batch, chunkKeys, chunk)
		if runErr != nil {
			if errors.Is(runErr, sim.ErrInterrupted) {
				// Preempted (SIGTERM, lease-loss watchdog): the in-flight
				// task checkpointed to the shared store. Do NOT report an
				// error — the campaign is healthy; exiting without
				// completing lets the lease lapse so any other worker
				// re-leases the task and resumes it from the checkpoint.
				w.logf("worker %s: preempted mid-task; checkpoint left for takeover", w.Name)
				return runErr
			}
			// Report the failure so the coordinator fails the campaign
			// fast (task errors are deterministic), then surface it.
			w.postComplete(ctx, gen, rep.Lease, []resultLine{{Key: chunkKeys[0], Error: runErr.Error()}})
			return runErr
		}
		w.ran += n
		crep, err := w.postComplete(ctx, gen, rep.Lease, results)
		if err != nil {
			return err
		}
		switch crep.Status {
		case statusOK:
			owned = crep.Owned // grant order, minus stolen/settled tasks
		case statusGen, statusDone:
			return nil // settled elsewhere; next lease request sorts it out
		case statusErr:
			return fmt.Errorf("fleet: campaign failed: %s", crep.Error)
		default:
			return fmt.Errorf("fleet: unknown completion status %q", crep.Status)
		}
	}
	return nil
}

// batchRun executes one chunk and pairs results with their keys.
func batchRun(batch Batch, keys []string, chunk []json.RawMessage) ([]resultLine, error) {
	out, err := batch.Run(chunk)
	if err != nil {
		return nil, err
	}
	if len(out) != len(keys) {
		return nil, fmt.Errorf("fleet: batch returned %d results for %d tasks", len(out), len(keys))
	}
	lines := make([]resultLine, len(out))
	for i := range out {
		lines[i] = resultLine{Key: keys[i], Data: out[i]}
	}
	return lines, nil
}

// fetchPlan GETs the current plan generation.
func (w *Worker) fetchPlan(ctx context.Context) (planEnvelope, []byte, error) {
	body, err := w.do(ctx, http.MethodGet, "/v1/plan", nil)
	if err != nil {
		return planEnvelope{}, nil, err
	}
	br := bufio.NewReader(bytes.NewReader(body))
	var env planEnvelope
	if err := readHeader(br, &env); err != nil {
		return planEnvelope{}, nil, fmt.Errorf("fleet: plan envelope: %w", err)
	}
	if env.Fleet != "plan" {
		return planEnvelope{}, nil, fmt.Errorf("fleet: %s is not a fleet coordinator (envelope %q)", w.Base, env.Fleet)
	}
	rest, err := io.ReadAll(br)
	if err != nil {
		return planEnvelope{}, nil, err
	}
	return env, rest, nil
}

// requestLease POSTs a lease request and decodes the granted tasks.
func (w *Worker) requestLease(ctx context.Context, gen int) (leaseReply, []json.RawMessage, error) {
	reqBody, _ := json.Marshal(leaseRequest{Worker: w.Name, Gen: gen})
	body, err := w.do(ctx, http.MethodPost, "/v1/lease", reqBody)
	if err != nil {
		return leaseReply{}, nil, err
	}
	br := bufio.NewReader(bytes.NewReader(body))
	var rep leaseReply
	if err := readHeader(br, &rep); err != nil {
		return leaseReply{}, nil, fmt.Errorf("fleet: lease reply: %w", err)
	}
	lines, err := readLines(br, rep.Count)
	if err != nil {
		return leaseReply{}, nil, err
	}
	return rep, lines, nil
}

// postComplete streams finished task results back.
func (w *Worker) postComplete(ctx context.Context, gen int, leaseID string, lines []resultLine) (completeReply, error) {
	var buf bytes.Buffer
	raws := make([]json.RawMessage, len(lines))
	for i, l := range lines {
		raw, err := json.Marshal(l)
		if err != nil {
			return completeReply{}, err
		}
		raws[i] = raw
	}
	hdr := completeHeader{Worker: w.Name, Gen: gen, Lease: leaseID, Count: len(raws)}
	if err := writeJSONL(&buf, hdr, raws); err != nil {
		return completeReply{}, err
	}
	body, err := w.do(ctx, http.MethodPost, "/v1/complete", buf.Bytes())
	if err != nil {
		return completeReply{}, err
	}
	var rep completeReply
	if err := json.Unmarshal(bytes.TrimSpace(body), &rep); err != nil {
		return completeReply{}, fmt.Errorf("fleet: completion reply: %w", err)
	}
	return rep, nil
}

// do issues one request with transport-level retries: connection
// errors back off exponentially (a coordinator that is still binding
// its port, a reply dropped mid-transfer), while HTTP-level errors
// fail immediately — the coordinator answered, so the request itself
// is wrong. Retried completions are safe by design: the coordinator
// deduplicates by task key.
func (w *Worker) do(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	backoff := 50 * time.Millisecond
	var lastErr error
	for attempt := 0; attempt < w.Retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
		}
		req, err := http.NewRequestWithContext(ctx, method, strings.TrimRight(w.Base, "/")+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		resp, err := w.client().Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("fleet: %s %s: %s: %s", method, path, resp.Status, strings.TrimSpace(string(data)))
		}
		return data, nil
	}
	return nil, fmt.Errorf("fleet: %s %s: giving up after %d attempts: %w", method, path, w.Retries, lastErr)
}
