// Package fleet runs gridplan campaigns across long-lived worker
// processes: a coordinator loads a plan (profile sweep, experiment
// cell grid, or staged refinement rounds), serves leases of task
// batches over HTTP+JSONL, collects streamed partial results, and
// repairs imbalance and failure by reassigning expired leases and
// stealing unstarted tasks from loaded workers for idle ones.
//
// The package adds scheduling, not semantics: workers wrap the
// existing executors (profile.RunTasks, Harness.RunCellTasks) and the
// coordinator assembles results through the same merge code the
// file-based shard flow uses, so a fleet run is byte-identical to the
// single-process run. That guarantee holds under every failure the
// protocol tolerates, because each task's result is a pure function of
// the task itself (the plan carries content digests; the simulator is
// deterministic): a task that runs twice — stolen while in flight,
// retried after a dropped reply, re-leased after its worker died —
// produces identical bytes, so first-result-wins deduplication cannot
// change the merged output.
//
// Failure model:
//
//   - Worker death: every lease carries a deadline; a lease whose
//     worker stops completing tasks past the deadline is expired and
//     its unfinished tasks return to the queue. Completions renew the
//     deadline, so a slow-but-alive worker is never expired while it
//     makes progress (each task must finish within one TTL).
//   - Stragglers: an idle worker with an empty queue steals the tail
//     half of the largest lease (grant order — the tasks least likely
//     to have started), provided it holds at least StealMin tasks.
//   - Duplicates: completions for an already-recorded task are counted
//     and dropped; completions for a forgotten lease still record
//     their results (they are correct — see above).
//   - Task errors are deterministic (digest mismatches, invalid
//     plans), so a worker-reported task error fails the whole campaign
//     fast rather than retrying.
package fleet

import "time"

// Options tunes the coordinator's lease scheduling. The zero value
// selects defaults suitable for simulation tasks that run in seconds.
type Options struct {
	// LeaseTasks is the maximum tasks granted per lease (default 8).
	LeaseTasks int
	// LeaseTTL is the lease deadline: a lease that completes no task
	// for this long is expired and its tasks are requeued (default
	// 1m). Every completion renews the deadline.
	LeaseTTL time.Duration
	// StealMin is the smallest pending-task count a lease must hold to
	// be stolen from (default 2, so a lease running its final task is
	// left alone).
	StealMin int
	// Logf, when set, receives progress lines (lease grants, expiries,
	// steals, generation advances).
	Logf func(format string, args ...any)
	// Linger is how long Serve keeps answering requests after the
	// campaign settles (default 2s), so workers mid-poll observe the
	// done (or failed) status and exit cleanly instead of hitting a
	// closed port.
	Linger time.Duration

	// now overrides the clock in tests.
	now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.LeaseTasks <= 0 {
		o.LeaseTasks = 8
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = time.Minute
	}
	if o.StealMin <= 0 {
		o.StealMin = 2
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if o.Linger <= 0 {
		o.Linger = 2 * time.Second
	}
	if o.now == nil {
		o.now = time.Now
	}
	return o
}

// Stats counts the scheduling events of a campaign. CI and tests
// assert on them (a chaos round-trip must actually have expired a
// lease and stolen a batch to prove anything).
type Stats struct {
	Tasks         int // total tasks across all generations
	Generations   int // plan generations served
	Granted       int // leases granted (fresh-queue and stolen alike)
	Expired       int // leases expired past their deadline
	StolenBatches int // leases granted by stealing from another lease
	StolenTasks   int // tasks moved by those steals
	Duplicates    int // completions dropped because the task was already done
}
