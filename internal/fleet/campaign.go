package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"

	"poise/internal/config"
	"poise/internal/gridplan"
	"poise/internal/profile"
	"poise/internal/results"
	"poise/internal/trace"
)

// Result is one accepted task result: the task's gridplan key and the
// executor's serialised record (a gridplan.Measurement or a
// results.CellResult, per the campaign's format).
type Result struct {
	Key  string
	Data json.RawMessage
}

// A Campaign feeds the coordinator plan generations. Next(0, nil) is
// the first call; each later call receives the previous generation's
// complete, key-ordered results and returns the next plan — its
// serialised JSONL (what workers fetch from /v1/plan), its leasable
// units, or done. Next is called under the coordinator's mutex and
// must not simulate; building the next refinement round from merged
// measurements is pure and cheap, which is exactly why staged pruning
// fits this interface.
type Campaign interface {
	// Format is the plan file format workers dispatch executors on
	// (gridplan.ProfilePlanFormat or gridplan.CellPlanFormat).
	Format() string
	Next(gen int, prev []Result) (planData []byte, units []unit, done bool, err error)
}

// planUnits serialises a profile plan and its per-task lease units.
func planUnits(p *gridplan.Plan) ([]byte, []unit, error) {
	p.Sort()
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	var buf bytes.Buffer
	if err := gridplan.WritePlan(&buf, p); err != nil {
		return nil, nil, err
	}
	units := make([]unit, len(p.Tasks))
	for i, t := range p.Tasks {
		line, err := json.Marshal(t)
		if err != nil {
			return nil, nil, err
		}
		units[i] = unit{key: t.Key(), line: line}
	}
	return buf.Bytes(), units, nil
}

// cellPlanUnits serialises a cell plan and its per-cell lease units.
func cellPlanUnits(p *gridplan.CellPlan) ([]byte, []unit, error) {
	p.Sort()
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	var buf bytes.Buffer
	if err := gridplan.WriteCellPlan(&buf, p); err != nil {
		return nil, nil, err
	}
	units := make([]unit, len(p.Cells))
	for i, c := range p.Cells {
		line, err := json.Marshal(c)
		if err != nil {
			return nil, nil, err
		}
		units[i] = unit{key: c.Key(), line: line}
	}
	return buf.Bytes(), units, nil
}

// ProfileCampaign serves one profile sweep plan as a single
// generation.
type ProfileCampaign struct{ Plan *gridplan.Plan }

// Format implements Campaign.
func (c ProfileCampaign) Format() string { return gridplan.ProfilePlanFormat }

// Next implements Campaign.
func (c ProfileCampaign) Next(gen int, prev []Result) ([]byte, []unit, bool, error) {
	if gen > 0 {
		return nil, nil, true, nil
	}
	data, units, err := planUnits(c.Plan)
	return data, units, false, err
}

// CellCampaign serves one experiment-grid cell plan as a single
// generation.
type CellCampaign struct{ Plan *gridplan.CellPlan }

// Format implements Campaign.
func (c CellCampaign) Format() string { return gridplan.CellPlanFormat }

// Next implements Campaign.
func (c CellCampaign) Next(gen int, prev []Result) ([]byte, []unit, bool, error) {
	if gen > 0 {
		return nil, nil, true, nil
	}
	data, units, err := cellPlanUnits(c.Plan)
	return data, units, false, err
}

// RefineCampaign drives a staged pruned sweep: each generation is one
// refinement round across every unconverged kernel, and the next
// round's plan is a pure function of the measurements merged so far —
// the same BuildRefinePlan the file-based flow uses, so the fleet's
// rounds are the rounds a single process would run.
type RefineCampaign struct {
	cfg   config.Config
	opts  profile.SweepOptions
	store profile.Store // optional round persistence ("" disables)

	kernels []*trace.Kernel
	states  map[string]*refineState
}

type refineState struct {
	tag    string
	round  int
	prior  []gridplan.Measurement
	done   bool
	active bool // had tasks in the generation in flight
}

// NewRefineCampaign builds a refinement campaign over the given
// kernels. tags maps each kernel name to its profile-cache tag (the
// standalone flow uses one tag for all kernels; the harness flow keys
// per kernel). When store has a directory, completed rounds persist
// there (profile.Store.SaveRound) and any rounds already cached —
// e.g. from an interrupted earlier campaign with identical
// parameters — are resumed instead of re-simulated.
func NewRefineCampaign(cfg config.Config, kernels []*trace.Kernel, tags map[string]string,
	opts profile.SweepOptions, store profile.Store) (*RefineCampaign, error) {
	c := &RefineCampaign{
		cfg: cfg, opts: opts, store: store,
		kernels: kernels,
		states:  make(map[string]*refineState, len(kernels)),
	}
	for _, k := range kernels {
		tag, ok := tags[k.Name]
		if !ok {
			return nil, fmt.Errorf("fleet: refine campaign: no tag for kernel %q", k.Name)
		}
		st := &refineState{tag: tag}
		if store.Dir != "" {
			rounds := store.LoadRounds(tag, k.Name)
			prior, err := gridplan.Merge(rounds...)
			if err != nil {
				return nil, fmt.Errorf("fleet: cached rounds for %s: %w", k.Name, err)
			}
			st.round, st.prior = len(rounds), prior
		}
		c.states[k.Name] = st
	}
	return c, nil
}

// Format implements Campaign.
func (c *RefineCampaign) Format() string { return gridplan.ProfilePlanFormat }

// Next implements Campaign: fold the previous round's measurements
// into each active kernel's prior (persisting the round when a store
// is configured), then assemble the next round's plan across every
// unconverged kernel.
func (c *RefineCampaign) Next(gen int, prev []Result) ([]byte, []unit, bool, error) {
	if gen > 0 {
		if err := c.fold(prev); err != nil {
			return nil, nil, false, err
		}
	}
	plan := &gridplan.Plan{Version: gridplan.PlanVersion}
	for _, k := range c.kernels {
		st := c.states[k.Name]
		st.active = false
		if st.done {
			continue
		}
		kp, done, err := profile.BuildRefinePlan(st.tag, c.cfg, k, c.opts, st.round, st.prior)
		if err != nil {
			return nil, nil, false, err
		}
		if done {
			st.done = true
			continue
		}
		st.active = true
		plan.Tasks = append(plan.Tasks, kp.Tasks...)
	}
	if len(plan.Tasks) == 0 {
		return nil, nil, true, nil
	}
	data, units, err := planUnits(plan)
	return data, units, false, err
}

// fold groups one finished round's results per kernel and advances
// each active kernel's refinement state — the in-memory equivalent of
// SaveRound followed by a re-read.
func (c *RefineCampaign) fold(prev []Result) error {
	byKernel := map[string][]gridplan.Measurement{}
	for _, r := range prev {
		var m gridplan.Measurement
		if err := json.Unmarshal(r.Data, &m); err != nil {
			return fmt.Errorf("fleet: refine result %s: %w", r.Key, err)
		}
		if m.Key() != r.Key {
			return fmt.Errorf("fleet: refine result key %s carries measurement %s", r.Key, m.Key())
		}
		byKernel[m.Kernel] = append(byKernel[m.Kernel], m)
	}
	for _, k := range c.kernels {
		st := c.states[k.Name]
		ms := byKernel[k.Name]
		delete(byKernel, k.Name)
		if !st.active {
			if len(ms) > 0 {
				return fmt.Errorf("fleet: measurements for inactive kernel %s", k.Name)
			}
			continue
		}
		if len(ms) == 0 {
			return fmt.Errorf("fleet: round %d of %s completed with no measurements", st.round, k.Name)
		}
		for _, m := range ms {
			if m.Tag != st.tag {
				return fmt.Errorf("fleet: measurement %s has tag %s, campaign uses %s", m.Key(), m.Tag, st.tag)
			}
		}
		if c.store.Dir != "" {
			if err := c.store.SaveRound(st.tag, k.Name, st.round, ms); err != nil {
				return err
			}
		}
		merged, err := gridplan.Merge(st.prior, ms)
		if err != nil {
			return err
		}
		st.prior = merged
		st.round++
	}
	for name := range byKernel {
		return fmt.Errorf("fleet: measurements for unknown kernel %s", name)
	}
	return nil
}

// SaveTo assembles the converged profiles into a profile store — the
// same MergeShards + Save path every other campaign tail uses — and
// returns the kernel names saved. It is the refinement's final
// output: the coordinator's raw results cover only the rounds run
// this session, while the campaign state also folds rounds resumed
// from the store.
func (c *RefineCampaign) SaveTo(st profile.Store) ([]string, error) {
	var names []string
	for _, k := range c.kernels {
		state := c.states[k.Name]
		if !state.done {
			return names, fmt.Errorf("fleet: refinement of %s has not converged", k.Name)
		}
		pr, err := profile.MergeShards(k.Name, state.prior)
		if err != nil {
			return names, err
		}
		if err := st.Save(state.tag, pr); err != nil {
			return names, err
		}
		names = append(names, k.Name)
	}
	return names, nil
}

// SaveProfiles decodes a profile campaign's results, groups them per
// (tag, kernel), and assembles each group through the same
// profile.MergeShards + Store.Save path the file-based merge uses —
// so the fleet's output directory is byte-identical to the
// single-process sweep's. Returns the kernel names saved, in plan key
// order.
func SaveProfiles(st profile.Store, rs []Result) ([]string, error) {
	type group struct {
		tag, kernel string
		ms          []gridplan.Measurement
	}
	byKey := map[string]*group{}
	var order []*group
	for _, r := range rs {
		var m gridplan.Measurement
		if err := json.Unmarshal(r.Data, &m); err != nil {
			return nil, fmt.Errorf("fleet: result %s: %w", r.Key, err)
		}
		if m.Key() != r.Key {
			return nil, fmt.Errorf("fleet: result key %s carries measurement %s", r.Key, m.Key())
		}
		gk := m.Tag + "|" + m.Kernel
		g, ok := byKey[gk]
		if !ok {
			g = &group{tag: m.Tag, kernel: m.Kernel}
			byKey[gk] = g
			order = append(order, g)
		}
		g.ms = append(g.ms, m)
	}
	var names []string
	for _, g := range order {
		pr, err := profile.MergeShards(g.kernel, g.ms)
		if err != nil {
			return names, err
		}
		if err := st.Save(g.tag, pr); err != nil {
			return names, err
		}
		names = append(names, g.kernel)
	}
	return names, nil
}

// SaveCells decodes a cell campaign's results and saves the merged
// cell set through the same results.Store path the file-based merge
// uses. Returns the (tag, grid) saved and the cell count.
func SaveCells(st results.Store, rs []Result) (tag, grid string, n int, err error) {
	cells := make([]results.CellResult, 0, len(rs))
	for _, r := range rs {
		var c results.CellResult
		if err := json.Unmarshal(r.Data, &c); err != nil {
			return "", "", 0, fmt.Errorf("fleet: result %s: %w", r.Key, err)
		}
		if c.Key() != r.Key {
			return "", "", 0, fmt.Errorf("fleet: result key %s carries cell %s", r.Key, c.Key())
		}
		cells = append(cells, c)
	}
	if len(cells) == 0 {
		return "", "", 0, fmt.Errorf("fleet: no cell results to save")
	}
	merged, err := results.Merge(cells)
	if err != nil {
		return "", "", 0, err
	}
	tag, grid = merged[0].Tag, merged[0].Grid
	for _, c := range merged {
		if c.Tag != tag || c.Grid != grid {
			return "", "", 0, fmt.Errorf("fleet: mixed cell identities (%s/%s vs %s/%s)", tag, grid, c.Tag, c.Grid)
		}
	}
	if err := st.Save(tag, grid, merged); err != nil {
		return "", "", 0, err
	}
	return tag, grid, len(merged), nil
}
