package fleet

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// unit is one leasable task: its identity key and its serialised plan
// line, carried opaquely so the board schedules profile tasks and
// experiment cells with the same machinery.
type unit struct {
	key  string
	line json.RawMessage
}

// lease is one worker's in-flight batch. pending keeps grant order:
// workers execute front to back, so the tail holds the tasks least
// likely to have started — the steal policy takes from there.
type lease struct {
	id       string
	worker   string
	deadline time.Time
	pending  []unit
}

// board is the coordinator's scheduling state for one plan generation:
// a queue of unassigned units, the live leases, and the accepted
// results. It is a plain state machine — the coordinator serialises
// access under its mutex — with the clock passed in, so unit tests
// drive expiry deterministically.
type board struct {
	opts    Options
	queue   []unit
	leases  map[string]*lease
	results map[string]json.RawMessage
	total   int
	nextID  int
	stats   *Stats
}

func newBoard(units []unit, opts Options, stats *Stats) *board {
	queue := append([]unit(nil), units...)
	sort.Slice(queue, func(i, j int) bool { return queue[i].key < queue[j].key })
	return &board{
		opts:    opts,
		queue:   queue,
		leases:  map[string]*lease{},
		results: make(map[string]json.RawMessage, len(queue)),
		total:   len(queue),
		stats:   stats,
	}
}

// expire requeues every lease whose deadline has passed. Expiry is
// driven lazily from grant and complete — idle workers poll for
// leases, so a dead worker's tasks return as soon as anyone is free
// to take them.
func (b *board) expire(now time.Time) {
	for id, l := range b.leases {
		if now.After(l.deadline) {
			b.opts.Logf("fleet: lease %s (worker %s) expired with %d tasks pending", id, l.worker, len(l.pending))
			b.stats.Expired++
			b.requeue(l.pending)
			delete(b.leases, id)
		}
	}
}

func (b *board) requeue(units []unit) {
	b.queue = append(b.queue, units...)
	sort.Slice(b.queue, func(i, j int) bool { return b.queue[i].key < b.queue[j].key })
}

// grant hands the requesting worker its next batch: from the queue
// when it has units, otherwise by stealing the tail half of the
// largest lease holding at least StealMin pending tasks. It returns
// nil when there is nothing to grant right now (the worker should
// poll again — tasks may come back via expiry) and false when the
// generation is complete.
func (b *board) grant(worker string, now time.Time) (*lease, bool) {
	b.expire(now)
	if b.done() {
		return nil, false
	}
	var units []unit
	stolen := false
	if len(b.queue) > 0 {
		n := b.opts.LeaseTasks
		if n > len(b.queue) {
			n = len(b.queue)
		}
		units = append(units, b.queue[:n]...)
		b.queue = append([]unit(nil), b.queue[n:]...)
	} else if victim := b.stealVictim(); victim != nil {
		n := len(victim.pending) / 2
		if n < 1 {
			n = 1
		}
		cut := len(victim.pending) - n
		units = append(units, victim.pending[cut:]...)
		victim.pending = victim.pending[:cut]
		stolen = true
		b.stats.StolenBatches++
		b.stats.StolenTasks += n
		b.opts.Logf("fleet: stole %d tasks from lease %s (worker %s) for %s", n, victim.id, victim.worker, worker)
	} else {
		return nil, true
	}
	b.nextID++
	l := &lease{
		id:       fmt.Sprintf("L%d", b.nextID),
		worker:   worker,
		deadline: now.Add(b.opts.LeaseTTL),
		pending:  units,
	}
	b.leases[l.id] = l
	b.stats.Granted++
	if !stolen {
		b.opts.Logf("fleet: lease %s: %d tasks to %s (%d queued, %d done of %d)",
			l.id, len(units), worker, len(b.queue), len(b.results), b.total)
	}
	return l, true
}

// stealVictim picks the lease with the most pending tasks (ties
// broken by lease id, so the choice is deterministic), provided it
// holds at least StealMin. A worker's own stale lease is as good a
// victim as any other — stealing from it just reclaims abandoned
// work.
func (b *board) stealVictim() *lease {
	var victim *lease
	for _, l := range b.leases {
		if len(l.pending) < b.opts.StealMin {
			continue
		}
		if victim == nil || len(l.pending) > len(victim.pending) ||
			(len(l.pending) == len(victim.pending) && l.id < victim.id) {
			victim = l
		}
	}
	return victim
}

// complete records one task result. The first result for a key wins;
// later ones (steal races, transport retries) are counted and
// dropped — identical by determinism, so the choice cannot change the
// merged output. The key is removed from every lease's pending set,
// so a worker finishing a task another worker stole settles the race
// for both. The completing lease's deadline renews when it still
// exists.
func (b *board) complete(leaseID, key string, data json.RawMessage, now time.Time) {
	if _, dup := b.results[key]; dup {
		b.stats.Duplicates++
	} else {
		b.results[key] = data
	}
	for _, l := range b.leases {
		for i, u := range l.pending {
			if u.key == key {
				l.pending = append(l.pending[:i:i], l.pending[i+1:]...)
				break
			}
		}
	}
	if l, ok := b.leases[leaseID]; ok {
		l.deadline = now.Add(b.opts.LeaseTTL)
		if len(l.pending) == 0 {
			delete(b.leases, leaseID)
		}
	}
	b.expire(now)
}

// owned returns the keys a lease still holds, in grant order, or nil
// when the lease no longer exists. Workers intersect their remaining
// work with it after every completion, so stolen tasks are skipped
// instead of run twice.
func (b *board) owned(leaseID string) ([]string, bool) {
	l, ok := b.leases[leaseID]
	if !ok {
		return nil, false
	}
	keys := make([]string, len(l.pending))
	for i, u := range l.pending {
		keys[i] = u.key
	}
	return keys, true
}

func (b *board) done() bool { return len(b.results) == b.total }

// finish returns the generation's results in key order — the same
// canonical order the file-based shard merge produces.
func (b *board) finish() []Result {
	keys := make([]string, 0, len(b.results))
	for k := range b.results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Result, len(keys))
	for i, k := range keys {
		out[i] = Result{Key: k, Data: b.results[k]}
	}
	return out
}
