package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"poise/internal/gridplan"
	"poise/internal/profile"
	"poise/internal/testutil"
	"poise/internal/trace"
)

// fleetRun serves camp on a local HTTP server and runs the given
// workers against it concurrently, returning the coordinator's
// results. Worker errors other than allowErr fail the test.
func fleetRun(t *testing.T, camp Campaign, opts Options, workers []*Worker, allowErr error) ([]Result, *Coordinator) {
	t.Helper()
	coord, err := NewCoordinator(camp, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, len(workers))
	for i, w := range workers {
		w.Base = srv.URL
		if w.Poll == 0 {
			w.Poll = 5 * time.Millisecond
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = w.Run(ctx)
		}()
	}
	res, werr := coord.Wait(ctx)
	if werr != nil {
		t.Fatalf("campaign failed: %v", werr)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil && err != allowErr {
			t.Fatalf("worker %s: %v", workers[i].Name, err)
		}
	}
	return res, coord
}

// dirBytes reads every file under dir into a path-keyed map, for
// byte-level directory comparison.
func dirBytes(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := map[string]string{}
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		out[rel] = string(data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatalf("no files under %s", dir)
	}
	return out
}

func profileExecutors(kernels map[string]*trace.Kernel, opts profile.SweepOptions) map[string]Executor {
	return map[string]Executor{
		gridplan.ProfilePlanFormat: ProfileExecutor{Cfg: testutil.TinyConfig(), Kernels: kernels, Opts: opts},
	}
}

// TestFleetByteIdenticalUnderKillAndStealAndExpiry is the acceptance
// invariant of the fleet: a three-worker run in which one worker is
// killed mid-lease, at least one batch is stolen, and at least one
// lease expires must write a profile store byte-identical to the
// single-process sweep. The chaos is guaranteed, not incidental: the
// victim dies holding 3 pending tasks; once the queue drains, an idle
// worker's grant must steal from that dead lease (its pending count
// is at least StealMin); and because stealing halves leave a final
// task below StealMin, only TTL expiry can recover it.
func TestFleetByteIdenticalUnderKillAndStealAndExpiry(t *testing.T) {
	cfg := testutil.TinyConfig()
	k := testutil.ThrashKernel("fleetchaos", 20, 12, 4)
	opts := profile.SweepOptions{StepN: 4, StepP: 4}
	tag := "fleettag"
	kernels := map[string]*trace.Kernel{k.Name: k}

	// Reference: the plan run in-process through the same executor and
	// merge code a shard run uses.
	plan := profile.BuildPlan(tag, cfg, k, opts)
	if len(plan.Tasks) < 12 {
		t.Fatalf("plan has only %d tasks; the chaos schedule needs more", len(plan.Tasks))
	}
	ms, err := profile.RunTasks(cfg, kernels, plan.Tasks, opts)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := profile.MergeShards(k.Name, ms)
	if err != nil {
		t.Fatal(err)
	}
	refDir := t.TempDir()
	if err := (profile.Store{Dir: refDir}).Save(tag, pr); err != nil {
		t.Fatal(err)
	}

	// Fleet: victim completes one task and dies holding the rest of its
	// 4-task lease; slow makes steady progress; fast drains the queue
	// and then steals.
	kill := testutil.NewKillSwitch(1)
	victim := &Worker{Name: "victim", Executors: profileExecutors(kernels, opts), BeforeTask: kill.Hook}
	slow := &Worker{Name: "slow", Executors: profileExecutors(kernels, opts),
		BeforeTask: func(int) error { time.Sleep(20 * time.Millisecond); return nil }}
	fast := &Worker{Name: "fast", Executors: profileExecutors(kernels, opts)}

	fopts := Options{LeaseTasks: 4, LeaseTTL: 700 * time.Millisecond, StealMin: 2, Logf: t.Logf}
	res, coord := fleetRun(t, ProfileCampaign{Plan: plan}, fopts,
		[]*Worker{victim, slow, fast}, testutil.ErrKilled)

	if !kill.Fired() {
		t.Fatal("kill switch never fired: the victim was not killed mid-lease")
	}
	st := coord.Stats()
	if st.StolenBatches < 1 {
		t.Fatalf("stats %+v: no batch was stolen", st)
	}
	if st.Expired < 1 {
		t.Fatalf("stats %+v: no lease expired", st)
	}
	if st.Tasks != len(plan.Tasks) || len(res) != len(plan.Tasks) {
		t.Fatalf("%d results for %d tasks (stats %+v)", len(res), len(plan.Tasks), st)
	}

	fleetDir := t.TempDir()
	names, err := SaveProfiles(profile.Store{Dir: fleetDir}, res)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(names, []string{k.Name}) {
		t.Fatalf("saved kernels %v, want [%s]", names, k.Name)
	}
	if ref, got := dirBytes(t, refDir), dirBytes(t, fleetDir); !reflect.DeepEqual(ref, got) {
		t.Fatalf("fleet store differs from single-process store:\nref  %v\ngot  %v", ref, got)
	}
}

// TestFleetStealRebalancesWithoutExpiry: with an effectively infinite
// TTL, work still rebalances — a fast worker steals the slow worker's
// tail instead of idling — and the output is unchanged.
func TestFleetStealRebalancesWithoutExpiry(t *testing.T) {
	cfg := testutil.TinyConfig()
	k := testutil.ThrashKernel("fleetsteal", 20, 12, 4)
	opts := profile.SweepOptions{StepN: 4, StepP: 4}
	kernels := map[string]*trace.Kernel{k.Name: k}
	plan := profile.BuildPlan("stealtag", cfg, k, opts)

	ms, err := profile.RunTasks(cfg, kernels, plan.Tasks, opts)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := profile.MergeShards(k.Name, ms)
	if err != nil {
		t.Fatal(err)
	}
	refDir := t.TempDir()
	if err := (profile.Store{Dir: refDir}).Save("stealtag", pr); err != nil {
		t.Fatal(err)
	}

	slow := &Worker{Name: "slow", Executors: profileExecutors(kernels, opts),
		BeforeTask: func(int) error { time.Sleep(80 * time.Millisecond); return nil }}
	fast := &Worker{Name: "fast", Executors: profileExecutors(kernels, opts)}
	fopts := Options{LeaseTasks: 8, LeaseTTL: time.Hour, StealMin: 2, Logf: t.Logf}
	res, coord := fleetRun(t, ProfileCampaign{Plan: plan}, fopts, []*Worker{slow, fast}, nil)

	st := coord.Stats()
	if st.StolenBatches < 1 {
		t.Fatalf("stats %+v: the fast worker never stole from the slow one", st)
	}
	if st.Expired != 0 {
		t.Fatalf("stats %+v: nothing should expire under an hour-long TTL", st)
	}
	fleetDir := t.TempDir()
	if _, err := SaveProfiles(profile.Store{Dir: fleetDir}, res); err != nil {
		t.Fatal(err)
	}
	if ref, got := dirBytes(t, refDir), dirBytes(t, fleetDir); !reflect.DeepEqual(ref, got) {
		t.Fatal("fleet store differs from single-process store")
	}
}

// TestFleetFlakyTransportDeduplicates: a transport that drops replies
// after delivery forces the worker's retry path to re-send completions
// the coordinator has already recorded. The duplicates must be counted
// and dropped, and the output must not change.
func TestFleetFlakyTransportDeduplicates(t *testing.T) {
	cfg := testutil.TinyConfig()
	k := testutil.ThrashKernel("fleetflaky", 20, 12, 4)
	opts := profile.SweepOptions{StepN: 4, StepP: 4}
	kernels := map[string]*trace.Kernel{k.Name: k}
	plan := profile.BuildPlan("flakytag", cfg, k, opts)

	ms, err := profile.RunTasks(cfg, kernels, plan.Tasks, opts)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := profile.MergeShards(k.Name, ms)
	if err != nil {
		t.Fatal(err)
	}
	refDir := t.TempDir()
	if err := (profile.Store{Dir: refDir}).Save("flakytag", pr); err != nil {
		t.Fatal(err)
	}

	flaky := &testutil.FlakyTransport{DropReplyEvery: 5}
	w := &Worker{Name: "flaky", Executors: profileExecutors(kernels, opts),
		Client: &http.Client{Transport: flaky}}
	steady := &Worker{Name: "steady", Executors: profileExecutors(kernels, opts)}
	fopts := Options{LeaseTasks: 4, LeaseTTL: 500 * time.Millisecond, StealMin: 2, Logf: t.Logf}
	res, coord := fleetRun(t, ProfileCampaign{Plan: plan}, fopts, []*Worker{w, steady}, nil)

	if flaky.Dropped.Load() == 0 {
		t.Fatal("the flaky transport never dropped a reply; the duplicate path was not exercised")
	}
	st := coord.Stats()
	if st.Duplicates < 1 {
		t.Fatalf("stats %+v: dropped completion replies must resurface as duplicates", st)
	}
	fleetDir := t.TempDir()
	if _, err := SaveProfiles(profile.Store{Dir: fleetDir}, res); err != nil {
		t.Fatal(err)
	}
	if ref, got := dirBytes(t, refDir), dirBytes(t, fleetDir); !reflect.DeepEqual(ref, got) {
		t.Fatal("fleet store differs from single-process store despite deduplication")
	}
}

// TestRefineCampaignMatchesPrunedSweep: the multi-generation campaign
// must reproduce profile.PrunedSweep byte-for-byte — every round's
// plan is the same pure function of the merged prior — and resuming
// from a store holding all rounds must run zero new tasks.
func TestRefineCampaignMatchesPrunedSweep(t *testing.T) {
	cfg := testutil.TinyConfig()
	k := testutil.ThrashKernel("fleetrefine", 20, 15, 4)
	opts := profile.SweepOptions{StepN: 2, StepP: 2}
	tag := "refinetag"
	kernels := map[string]*trace.Kernel{k.Name: k}

	want, _, err := profile.PrunedSweep(cfg, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	refDir := t.TempDir()
	if err := (profile.Store{Dir: refDir}).Save(tag, want); err != nil {
		t.Fatal(err)
	}

	roundsDir := t.TempDir()
	camp, err := NewRefineCampaign(cfg, []*trace.Kernel{k}, map[string]string{k.Name: tag},
		opts, profile.Store{Dir: roundsDir})
	if err != nil {
		t.Fatal(err)
	}
	w1 := &Worker{Name: "w1", Executors: profileExecutors(kernels, opts)}
	w2 := &Worker{Name: "w2", Executors: profileExecutors(kernels, opts)}
	fopts := Options{LeaseTasks: 4, LeaseTTL: time.Minute, Logf: t.Logf}
	_, coord := fleetRun(t, camp, fopts, []*Worker{w1, w2}, nil)
	if g := coord.Stats().Generations; g < 2 {
		t.Fatalf("refinement ran %d generations, want at least a coarse and a refine round", g)
	}

	fleetDir := t.TempDir()
	if _, err := camp.SaveTo(profile.Store{Dir: fleetDir}); err != nil {
		t.Fatal(err)
	}
	if ref, got := dirBytes(t, refDir), dirBytes(t, fleetDir); !reflect.DeepEqual(ref, got) {
		t.Fatal("fleet refinement store differs from PrunedSweep store")
	}

	// Resume: every round is cached, so a fresh campaign over the same
	// store must converge without granting a single lease.
	resumed, err := NewRefineCampaign(cfg, []*trace.Kernel{k}, map[string]string{k.Name: tag},
		opts, profile.Store{Dir: roundsDir})
	if err != nil {
		t.Fatal(err)
	}
	coord2, err := NewCoordinator(resumed, Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := coord2.Stats(); st.Tasks != 0 || st.Granted != 0 {
		t.Fatalf("resumed campaign ran %+v, want zero work", st)
	}
	resumeDir := t.TempDir()
	if _, err := resumed.SaveTo(profile.Store{Dir: resumeDir}); err != nil {
		t.Fatal(err)
	}
	if ref, got := dirBytes(t, refDir), dirBytes(t, resumeDir); !reflect.DeepEqual(ref, got) {
		t.Fatal("resumed refinement store differs from PrunedSweep store")
	}
}

// TestWorkerRejectsDriftedCatalogue: an executor prepared against
// traces that do not match the plan's digests must refuse the whole
// plan up front.
func TestWorkerRejectsDriftedCatalogue(t *testing.T) {
	cfg := testutil.TinyConfig()
	k := testutil.ThrashKernel("drift", 20, 12, 4)
	opts := profile.SweepOptions{StepN: 8, StepP: 8}
	plan := profile.BuildPlan("t", cfg, k, opts)
	data, _, err := planUnits(plan)
	if err != nil {
		t.Fatal(err)
	}
	drifted := testutil.ThrashKernel("drift", 20, 13, 4)
	ex := ProfileExecutor{Cfg: cfg, Kernels: map[string]*trace.Kernel{k.Name: drifted}, Opts: opts}
	if _, err := ex.Prepare(data); err == nil {
		t.Fatal("Prepare must reject a kernel whose digest differs from the plan's")
	}
	if _, err := (ProfileExecutor{Cfg: cfg, Kernels: nil, Opts: opts}).Prepare(data); err == nil {
		t.Fatal("Prepare must reject a plan whose kernel is absent")
	}
}

// failExecutor accepts any plan and fails every task — the shape of a
// deterministic executor-side failure.
type failExecutor struct{}

func (failExecutor) Prepare([]byte) (Batch, error) { return failBatch{}, nil }

type failBatch struct{}

func (failBatch) Run(lines []json.RawMessage) ([]json.RawMessage, error) {
	return nil, errors.New("synthetic task failure")
}

// TestFleetTaskErrorFailsCampaignFast: a worker that cannot execute a
// task reports it, and the coordinator fails the whole campaign
// rather than retrying a deterministic failure elsewhere.
func TestFleetTaskErrorFailsCampaignFast(t *testing.T) {
	cfg := testutil.TinyConfig()
	k := testutil.ThrashKernel("failfast", 20, 12, 4)
	opts := profile.SweepOptions{StepN: 8, StepP: 8}
	plan := profile.BuildPlan("t", cfg, k, opts)

	coord, err := NewCoordinator(ProfileCampaign{Plan: plan}, Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	w := &Worker{
		Base: srv.URL, Name: "bad", Poll: 5 * time.Millisecond,
		Executors: map[string]Executor{
			gridplan.ProfilePlanFormat: failExecutor{},
		},
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := w.Run(ctx); err == nil {
		t.Fatal("worker must surface the task error")
	}
	if _, err := coord.Wait(ctx); err == nil {
		t.Fatal("coordinator must fail the campaign on a task error")
	}
}
