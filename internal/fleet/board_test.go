package fleet

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
	"time"
)

// fakeClock drives the board's lazy expiry deterministically.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testUnits(n int) []unit {
	units := make([]unit, n)
	for i := range units {
		key := fmt.Sprintf("k%03d", i)
		units[i] = unit{key: key, line: json.RawMessage(fmt.Sprintf(`{"task":%q}`, key))}
	}
	return units
}

func testBoard(n int, opts Options) (*board, *fakeClock, *Stats) {
	clk := newFakeClock()
	opts.now = clk.now
	stats := &Stats{}
	return newBoard(testUnits(n), opts.withDefaults(), stats), clk, stats
}

func leaseKeys(l *lease) []string {
	keys := make([]string, len(l.pending))
	for i, u := range l.pending {
		keys[i] = u.key
	}
	return keys
}

func TestBoardGrantsKeyOrderedBatches(t *testing.T) {
	b, clk, _ := testBoard(10, Options{LeaseTasks: 4})
	l1, live := b.grant("w1", clk.now())
	if !live || l1 == nil {
		t.Fatal("first grant must succeed")
	}
	if want := []string{"k000", "k001", "k002", "k003"}; !reflect.DeepEqual(leaseKeys(l1), want) {
		t.Fatalf("lease 1 keys %v, want %v", leaseKeys(l1), want)
	}
	l2, _ := b.grant("w2", clk.now())
	if want := []string{"k004", "k005", "k006", "k007"}; !reflect.DeepEqual(leaseKeys(l2), want) {
		t.Fatalf("lease 2 keys %v, want %v", leaseKeys(l2), want)
	}
	l3, _ := b.grant("w3", clk.now())
	if want := []string{"k008", "k009"}; !reflect.DeepEqual(leaseKeys(l3), want) {
		t.Fatalf("lease 3 keys %v, want %v", leaseKeys(l3), want)
	}
}

func TestBoardStealsTailHalfOfLargestLease(t *testing.T) {
	b, clk, stats := testBoard(6, Options{LeaseTasks: 6, StealMin: 2})
	l1, _ := b.grant("w1", clk.now())
	if len(l1.pending) != 6 {
		t.Fatalf("w1 got %d tasks, want all 6", len(l1.pending))
	}
	// Queue is empty: w2's grant must steal the tail half of w1's lease.
	l2, live := b.grant("w2", clk.now())
	if !live || l2 == nil {
		t.Fatal("steal grant must succeed")
	}
	if want := []string{"k003", "k004", "k005"}; !reflect.DeepEqual(leaseKeys(l2), want) {
		t.Fatalf("stolen keys %v, want tail half %v", leaseKeys(l2), want)
	}
	if want := []string{"k000", "k001", "k002"}; !reflect.DeepEqual(leaseKeys(l1), want) {
		t.Fatalf("victim keeps %v, want head half %v", leaseKeys(l1), want)
	}
	if stats.StolenBatches != 1 || stats.StolenTasks != 3 {
		t.Fatalf("stats = %+v, want 1 stolen batch of 3", *stats)
	}
	// Steal again: victim is now w1 (3 pending) vs w2 (3 pending); tie
	// breaks to the lower lease id, deterministically.
	l3, _ := b.grant("w3", clk.now())
	if want := []string{"k002"}; !reflect.DeepEqual(leaseKeys(l3), want) {
		t.Fatalf("second steal %v, want %v from the lower lease id", leaseKeys(l3), want)
	}
}

func TestBoardStealLeavesSmallLeasesAlone(t *testing.T) {
	b, clk, _ := testBoard(2, Options{LeaseTasks: 2, StealMin: 2})
	l1, _ := b.grant("w1", clk.now())
	b.complete(l1.id, "k000", json.RawMessage(`1`), clk.now())
	// w1 holds one pending task — below StealMin, so w2 must wait.
	if l2, live := b.grant("w2", clk.now()); l2 != nil || !live {
		t.Fatalf("grant = (%v, %v), want a wait", l2, live)
	}
}

func TestBoardExpiryRequeuesAndCompletionRenews(t *testing.T) {
	ttl := time.Minute
	b, clk, stats := testBoard(4, Options{LeaseTasks: 2, LeaseTTL: ttl})
	l1, _ := b.grant("w1", clk.now())
	b.grant("w2", clk.now())
	// w1 completes one task just before the deadline: its lease renews.
	clk.advance(ttl - time.Second)
	b.complete(l1.id, "k000", json.RawMessage(`1`), clk.now())
	// w2 completed nothing: one more second passes the original
	// deadline, and the next grant expires w2's lease and requeues it.
	clk.advance(2 * time.Second)
	l3, live := b.grant("w3", clk.now())
	if !live || l3 == nil {
		t.Fatal("w3 must get the expired tasks")
	}
	if want := []string{"k002", "k003"}; !reflect.DeepEqual(leaseKeys(l3), want) {
		t.Fatalf("w3 got %v, want w2's expired tasks %v", leaseKeys(l3), want)
	}
	if stats.Expired != 1 {
		t.Fatalf("Expired = %d, want 1", stats.Expired)
	}
	// w1's renewed lease must still be live.
	if _, ok := b.owned(l1.id); !ok {
		t.Fatal("w1's renewed lease must not have expired")
	}
}

func TestBoardFirstResultWinsAndSettlesRaces(t *testing.T) {
	b, clk, stats := testBoard(4, Options{LeaseTasks: 4, StealMin: 2})
	l1, _ := b.grant("w1", clk.now())
	l2, _ := b.grant("w2", clk.now()) // steals k002, k003
	if want := []string{"k002", "k003"}; !reflect.DeepEqual(leaseKeys(l2), want) {
		t.Fatalf("setup: stolen keys %v, want %v", leaseKeys(l2), want)
	}
	// w1 finishes a stolen task first: recorded, and removed from BOTH
	// leases so w2 skips it.
	b.complete(l1.id, "k002", json.RawMessage(`"w1"`), clk.now())
	if keys, _ := b.owned(l2.id); !reflect.DeepEqual(keys, []string{"k003"}) {
		t.Fatalf("w2 owns %v after the race settled, want [k003]", keys)
	}
	// w2 finishes the same task later: dropped as a duplicate.
	b.complete(l2.id, "k002", json.RawMessage(`"w2"`), clk.now())
	if stats.Duplicates != 1 {
		t.Fatalf("Duplicates = %d, want 1", stats.Duplicates)
	}
	b.complete(l1.id, "k000", json.RawMessage(`1`), clk.now())
	b.complete(l1.id, "k001", json.RawMessage(`1`), clk.now())
	b.complete(l2.id, "k003", json.RawMessage(`1`), clk.now())
	if !b.done() {
		t.Fatal("board must be done after all four tasks completed")
	}
	res := b.finish()
	if len(res) != 4 || res[2].Key != "k002" || string(res[2].Data) != `"w1"` {
		t.Fatalf("finish() = %+v: first result must win and order must be key-sorted", res)
	}
}

func TestBoardFinishIsKeySorted(t *testing.T) {
	b, clk, _ := testBoard(5, Options{LeaseTasks: 5})
	l, _ := b.grant("w", clk.now())
	// Complete in reverse order; finish() must still be key-sorted.
	for i := 4; i >= 0; i-- {
		b.complete(l.id, fmt.Sprintf("k%03d", i), json.RawMessage(`1`), clk.now())
	}
	res := b.finish()
	for i, r := range res {
		if want := fmt.Sprintf("k%03d", i); r.Key != want {
			t.Fatalf("finish()[%d] = %s, want %s", i, r.Key, want)
		}
	}
}
