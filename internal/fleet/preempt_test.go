package fleet

import (
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"reflect"
	"testing"
	"time"

	"poise/internal/profile"
	"poise/internal/sim"
	"poise/internal/snap"
	"poise/internal/testutil"
	"poise/internal/trace"
)

// TestFleetPreemptedWorkerResumesElsewhere is the preemptible-worker
// acceptance invariant: a worker interrupted mid-task (the SIGTERM /
// lease-loss path) checkpoints its in-flight task to the shared store
// and exits WITHOUT completing it; after the lease lapses, a different
// worker process re-leases the task, resumes it from the checkpoint,
// and the campaign's merged output is byte-identical to an
// uninterrupted single-process sweep.
func TestFleetPreemptedWorkerResumesElsewhere(t *testing.T) {
	cfg := testutil.TinyConfig()
	k := testutil.ThrashKernel("fleetpreempt", 20, 12, 4)
	opts := profile.SweepOptions{StepN: 4, StepP: 4}
	tag := "preempttag"
	kernels := map[string]*trace.Kernel{k.Name: k}
	plan := profile.BuildPlan(tag, cfg, k, opts)

	// Reference store from an uninterrupted in-process run.
	ms, err := profile.RunTasks(cfg, kernels, plan.Tasks, opts)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := profile.MergeShards(k.Name, ms)
	if err != nil {
		t.Fatal(err)
	}
	refDir := t.TempDir()
	if err := (profile.Store{Dir: refDir}).Save(tag, pr); err != nil {
		t.Fatal(err)
	}
	// Preempt mid-task: before any point can finish.
	at := ms[0].Cycles
	for _, m := range ms {
		if m.Cycles < at {
			at = m.Cycles
		}
	}
	if at /= 2; at < 1 {
		t.Skipf("tasks too short to interrupt")
	}

	store, err := snap.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(ProfileCampaign{Plan: plan},
		Options{LeaseTasks: 4, LeaseTTL: 200 * time.Millisecond, StealMin: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// Phase 1: the victim leases a batch and is preempted inside its
	// first task. It must exit with ErrInterrupted, leave a checkpoint,
	// and NOT complete the task (the lease lapses instead).
	victimOpts := opts
	victimOpts.Interrupt = &sim.InterruptCtl{AtCycle: at}
	victimOpts.Checkpoints = store
	victim := &Worker{Name: "victim", Base: srv.URL, Poll: 5 * time.Millisecond,
		Executors: profileExecutors(kernels, victimOpts), Logf: t.Logf}
	if err := victim.Run(ctx); !errors.Is(err, sim.ErrInterrupted) {
		t.Fatalf("victim exited with %v, want ErrInterrupted", err)
	}
	ents, err := os.ReadDir(store.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Fatal("victim left no checkpoint in the shared store")
	}
	// Phase 2: a fresh worker process pointed at the same checkpoint
	// store serves the rest of the campaign, picking up the victim's
	// task after its lease expires and resuming it mid-kernel.
	survivorOpts := opts
	survivorOpts.Checkpoints = store
	survivor := &Worker{Name: "survivor", Base: srv.URL, Poll: 5 * time.Millisecond,
		Executors: profileExecutors(kernels, survivorOpts), Logf: t.Logf}
	done := make(chan error, 1)
	go func() { done <- survivor.Run(ctx) }()
	res, err := coord.Wait(ctx)
	if err != nil {
		t.Fatalf("campaign failed: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("survivor: %v", err)
	}
	if st := coord.Stats(); st.Expired < 1 {
		t.Fatalf("stats %+v: the victim's lease never expired", st)
	}

	fleetDir := t.TempDir()
	if _, err := SaveProfiles(profile.Store{Dir: fleetDir}, res); err != nil {
		t.Fatal(err)
	}
	if ref, got := dirBytes(t, refDir), dirBytes(t, fleetDir); !reflect.DeepEqual(ref, got) {
		t.Fatal("resumed fleet store differs from uninterrupted single-process store")
	}
	// The survivor consumed the checkpoint on resume.
	ents, err = os.ReadDir(store.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("%d checkpoint(s) left after the campaign completed", len(ents))
	}
}
