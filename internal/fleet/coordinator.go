package fleet

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

// Coordinator serves a Campaign to workers: it publishes the current
// plan generation, grants leases, accepts streamed completions, and
// advances to the next generation when the current one's results are
// complete. All state mutates under one mutex; handlers do no
// simulation, so the lock is never held across anything slow.
type Coordinator struct {
	opts Options
	camp Campaign

	mu       sync.Mutex
	gen      int
	planData []byte
	board    *board
	stats    Stats
	results  []Result // accumulated across generations, key order per gen
	done     bool
	err      error
	finished chan struct{}
}

// NewCoordinator starts a campaign: the first generation is built
// eagerly, so plan errors surface here rather than on a worker's
// first request.
func NewCoordinator(camp Campaign, opts Options) (*Coordinator, error) {
	c := &Coordinator{
		opts:     opts.withDefaults(),
		camp:     camp,
		gen:      -1,
		finished: make(chan struct{}),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.advanceLocked(nil); err != nil {
		return nil, err
	}
	return c, nil
}

// advanceLocked asks the campaign for the next generation, skipping
// any empty ones, and marks the campaign finished when it is done.
// Called with c.mu held.
func (c *Coordinator) advanceLocked(prev []Result) error {
	for {
		c.gen++
		planData, units, done, err := c.camp.Next(c.gen, prev)
		if err != nil {
			return err
		}
		if done {
			c.done = true
			c.board = nil
			c.opts.Logf("fleet: campaign complete: %s", c.statsLineLocked())
			close(c.finished)
			return nil
		}
		if len(units) > 0 {
			c.planData = planData
			c.board = newBoard(units, c.opts, &c.stats)
			c.stats.Generations++
			c.stats.Tasks += len(units)
			c.opts.Logf("fleet: generation %d: %d tasks", c.gen, len(units))
			return nil
		}
		prev = nil // an empty generation contributes no results
	}
}

func (c *Coordinator) statsLineLocked() string {
	return fmt.Sprintf("%d tasks over %d generations; leases granted %d, expired %d, stolen batches %d (%d tasks), duplicate results %d",
		c.stats.Tasks, c.stats.Generations, c.stats.Granted, c.stats.Expired,
		c.stats.StolenBatches, c.stats.StolenTasks, c.stats.Duplicates)
}

// Stats returns a snapshot of the scheduling counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Wait blocks until the campaign completes (or ctx is cancelled) and
// returns every accepted result in per-generation key order.
func (c *Coordinator) Wait(ctx context.Context) ([]Result, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.finished:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return nil, c.err
	}
	return c.results, nil
}

// failLocked aborts the campaign. Called with c.mu held.
func (c *Coordinator) failLocked(err error) {
	if c.done {
		return
	}
	c.done = true
	c.err = err
	c.board = nil
	c.opts.Logf("fleet: campaign failed: %v", err)
	close(c.finished)
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/plan", c.handlePlan)
	mux.HandleFunc("POST /v1/lease", c.handleLease)
	mux.HandleFunc("POST /v1/complete", c.handleComplete)
	return mux
}

func (c *Coordinator) handlePlan(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	env := planEnvelope{Fleet: "plan", Gen: c.gen, Format: c.camp.Format(), Done: c.done}
	if c.err != nil {
		env.Error = c.err.Error()
	}
	planData := c.planData
	c.mu.Unlock()

	w.Header().Set("Content-Type", "application/jsonl")
	bw := bufio.NewWriter(w)
	if err := json.NewEncoder(bw).Encode(env); err != nil {
		return
	}
	if !env.Done {
		if _, err := bw.Write(planData); err != nil {
			return
		}
	}
	bw.Flush()
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "fleet: bad lease request: "+err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	rep := leaseReply{Fleet: "lease", Gen: c.gen}
	var lines []json.RawMessage
	switch {
	case c.err != nil:
		rep.Status, rep.Error = statusErr, c.err.Error()
	case c.done:
		rep.Status = statusDone
	case req.Gen != c.gen:
		rep.Status = statusGen
	default:
		l, live := c.board.grant(req.Worker, c.opts.now())
		switch {
		case l != nil:
			rep.Status, rep.Lease = statusOK, l.id
			rep.DeadlineMS = time.Until(l.deadline).Milliseconds()
			rep.Count = len(l.pending)
			for _, u := range l.pending {
				rep.Keys = append(rep.Keys, u.key)
				lines = append(lines, u.line)
			}
		case !live:
			// Every task of the generation is done but the campaign has
			// not advanced yet (the final completion's handler does
			// that); tell the worker to poll.
			rep.Status = statusWait
		default:
			rep.Status = statusWait
		}
	}
	c.mu.Unlock()

	w.Header().Set("Content-Type", "application/jsonl")
	writeJSONL(w, rep, lines)
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	br := bufio.NewReader(r.Body)
	var hdr completeHeader
	if err := readHeader(br, &hdr); err != nil {
		http.Error(w, "fleet: bad completion header: "+err.Error(), http.StatusBadRequest)
		return
	}
	rawLines, err := readLines(br, hdr.Count)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	lines := make([]resultLine, len(rawLines))
	for i, raw := range rawLines {
		if err := json.Unmarshal(raw, &lines[i]); err != nil {
			http.Error(w, fmt.Sprintf("fleet: completion line %d: %v", i+1, err), http.StatusBadRequest)
			return
		}
		if lines[i].Key == "" {
			http.Error(w, fmt.Sprintf("fleet: completion line %d has no key", i+1), http.StatusBadRequest)
			return
		}
	}

	c.mu.Lock()
	rep := completeReply{Fleet: "complete"}
	switch {
	case c.err != nil:
		rep.Status, rep.Error = statusErr, c.err.Error()
	case c.done:
		rep.Status = statusDone
	case hdr.Gen != c.gen:
		rep.Status = statusGen
	default:
		rep.Status = statusOK
		now := c.opts.now()
		for _, l := range lines {
			if l.Error != "" {
				// Task failures are deterministic (digest mismatches,
				// invalid tasks): retrying elsewhere cannot succeed, so
				// fail the campaign fast.
				c.failLocked(fmt.Errorf("fleet: task %s failed on worker %s: %s", l.Key, hdr.Worker, l.Error))
				rep.Status, rep.Error = statusErr, c.err.Error()
				break
			}
			before := c.stats.Duplicates
			c.board.complete(hdr.Lease, l.Key, l.Data, now)
			rep.Duplicates += c.stats.Duplicates - before
		}
		if rep.Status == statusOK {
			rep.Owned, _ = c.board.owned(hdr.Lease)
			if c.board.done() {
				genResults := c.board.finish()
				c.results = append(c.results, genResults...)
				if err := c.advanceLocked(genResults); err != nil {
					c.failLocked(err)
					rep.Status, rep.Error = statusErr, c.err.Error()
				}
			}
		}
	}
	c.mu.Unlock()

	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rep)
}

// Serve runs the coordinator's HTTP server on ln-style addr until the
// campaign completes or ctx is cancelled, lingers Options.Linger so
// polling workers observe the final status, then shuts the server
// down and returns the results. The bound address (useful with ":0")
// is reported through addrCh when non-nil.
func (c *Coordinator) Serve(ctx context.Context, addr string, addrCh chan<- string) ([]Result, error) {
	srv := &http.Server{Addr: addr, Handler: c.Handler()}
	errCh := make(chan error, 1)
	ln, err := listen(addr)
	if err != nil {
		return nil, err
	}
	if addrCh != nil {
		addrCh <- ln.Addr().String()
	}
	go func() {
		if serr := srv.Serve(ln); serr != nil && !errors.Is(serr, http.ErrServerClosed) {
			errCh <- serr
		}
	}()
	var res []Result
	var werr error
	select {
	case wr := <-waitCh(ctx, c):
		res, werr = wr.res, wr.err
		// Linger before shutting down so workers mid-poll get one more
		// reply — the done (or failed) status — and exit cleanly
		// instead of dialing a closed port. Skipped on cancellation.
		select {
		case <-ctx.Done():
		case <-time.After(c.opts.Linger):
		}
	case werr = <-errCh:
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	srv.Shutdown(shutdownCtx)
	return res, werr
}

// listen binds the coordinator's TCP listener.
func listen(addr string) (net.Listener, error) { return net.Listen("tcp", addr) }

// waitCh adapts Wait to a channel for Serve's select.
func waitCh(ctx context.Context, c *Coordinator) <-chan waitResult {
	ch := make(chan waitResult, 1)
	go func() {
		res, err := c.Wait(ctx)
		ch <- waitResult{res, err}
	}()
	return ch
}

type waitResult struct {
	res []Result
	err error
}
