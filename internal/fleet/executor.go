package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"

	"poise/internal/config"
	"poise/internal/experiments"
	"poise/internal/gridplan"
	"poise/internal/profile"
	"poise/internal/trace"
)

// ProfileExecutor runs profile sweep tasks against a local kernel
// catalogue via profile.RunTasks — the same executor the file-based
// shard flow uses, so a task's measurement bytes do not depend on
// which process ran it.
type ProfileExecutor struct {
	Cfg     config.Config
	Kernels map[string]*trace.Kernel
	Opts    profile.SweepOptions
}

// Prepare implements Executor: it decodes the plan and fail-fasts on
// any task whose kernel is missing from this worker's catalogue or
// whose content digest disagrees with the local traces — a worker
// launched against the wrong trace set refuses the whole plan before
// leasing anything.
func (e ProfileExecutor) Prepare(planData []byte) (Batch, error) {
	plan, err := gridplan.ReadPlan(bytes.NewReader(planData))
	if err != nil {
		return nil, err
	}
	digests := map[string]string{}
	for _, t := range plan.Tasks {
		k, ok := e.Kernels[t.Kernel]
		if !ok {
			return nil, fmt.Errorf("fleet: plan task %s: kernel not in local catalogue", t.Key())
		}
		d, ok := digests[t.Kernel]
		if !ok {
			d = gridplan.KernelDigest(k)
			digests[t.Kernel] = d
		}
		if t.Digest != "" && t.Digest != d {
			return nil, fmt.Errorf("fleet: plan task %s: kernel digest %s, local traces have %s", t.Key(), t.Digest, d)
		}
	}
	return profileBatch{e}, nil
}

type profileBatch struct{ e ProfileExecutor }

// Run implements Batch.
func (b profileBatch) Run(lines []json.RawMessage) ([]json.RawMessage, error) {
	tasks := make([]gridplan.Task, len(lines))
	for i, l := range lines {
		if err := json.Unmarshal(l, &tasks[i]); err != nil {
			return nil, fmt.Errorf("fleet: task line %d: %w", i+1, err)
		}
	}
	ms, err := profile.RunTasks(b.e.Cfg, b.e.Kernels, tasks, b.e.Opts)
	if err != nil {
		return nil, err
	}
	out := make([]json.RawMessage, len(ms))
	for i, m := range ms {
		raw, err := json.Marshal(m)
		if err != nil {
			return nil, err
		}
		out[i] = raw
	}
	return out, nil
}

// CellExecutor runs experiment-grid cells through a local harness's
// RunCellTasks — again the exact executor the sharded file flow uses.
type CellExecutor struct {
	H *experiments.Harness
}

// Prepare implements Executor: the plan must be a single grid's cells,
// and the harness's whole-plan validation (tag, ordinals, digests)
// must accept it.
func (e CellExecutor) Prepare(planData []byte) (Batch, error) {
	plan, err := gridplan.ReadCellPlan(bytes.NewReader(planData))
	if err != nil {
		return nil, err
	}
	if len(plan.Cells) == 0 {
		return nil, fmt.Errorf("fleet: cell plan is empty")
	}
	grid := plan.Cells[0].Grid
	for _, c := range plan.Cells {
		if c.Grid != grid {
			return nil, fmt.Errorf("fleet: cell plan mixes grids %s and %s", grid, c.Grid)
		}
	}
	if err := e.H.ValidateCellPlan(grid, plan); err != nil {
		return nil, err
	}
	return cellBatch{e.H, grid}, nil
}

type cellBatch struct {
	h    *experiments.Harness
	grid string
}

// Run implements Batch.
func (b cellBatch) Run(lines []json.RawMessage) ([]json.RawMessage, error) {
	tasks := make([]gridplan.CellTask, len(lines))
	for i, l := range lines {
		if err := json.Unmarshal(l, &tasks[i]); err != nil {
			return nil, fmt.Errorf("fleet: cell line %d: %w", i+1, err)
		}
	}
	cells, err := b.h.RunCellTasks(b.grid, tasks)
	if err != nil {
		return nil, err
	}
	out := make([]json.RawMessage, len(cells))
	for i, c := range cells {
		raw, err := json.Marshal(c)
		if err != nil {
			return nil, err
		}
		out[i] = raw
	}
	return out, nil
}
