//go:build race

package fleet

// raceEnabled lets the simulation-heavy byte-identity tests skip when
// the race detector (which slows the cycle engine ~10x) is on; the
// fleet's concurrency structure is still fully exercised under -race
// by the chaos tests over the cheap profile plans.
const raceEnabled = true
