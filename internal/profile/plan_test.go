package profile

import (
	"bytes"
	"errors"
	"os"
	"reflect"
	"testing"

	"poise/internal/gridplan"
	"poise/internal/testutil"
	"poise/internal/trace"
)

// TestShardedSweepMatchesInProcess is the acceptance invariant of the
// sharded sweep engine: splitting a sweep plan into 1, 2 or 3 shards,
// running each shard as its own RunTasks call (as separate processes
// would), and merging the partials must reproduce the in-process
// Sweep reflect.DeepEqual-exactly — including the speedup
// normalisation, whose baseline point lives in only one of the shards.
func TestShardedSweepMatchesInProcess(t *testing.T) {
	cfg := testutil.TinyConfig()
	k := testutil.ThrashKernel("shardeq", 20, 12, 4)
	opts := SweepOptions{StepN: 4, StepP: 4}

	want, err := Sweep(cfg, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	plan := BuildPlan("", cfg, k, opts)
	kernels := map[string]*trace.Kernel{k.Name: k}
	for _, n := range []int{1, 2, 3} {
		var shards [][]gridplan.Measurement
		for i := 0; i < n; i++ {
			sp, err := plan.Shard(i, n)
			if err != nil {
				t.Fatal(err)
			}
			ms, err := RunTasks(cfg, kernels, sp.Tasks, opts)
			if err != nil {
				t.Fatal(err)
			}
			shards = append(shards, ms)
		}
		got, err := MergeShards(k.Name, shards...)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%d-shard merge differs from in-process sweep:\nwant %+v\ngot  %+v", n, want, got)
		}
	}
}

// TestPooledSweepMatchesFresh cross-checks the GPU pool at the sweep
// level: pooled (default) and fresh-GPU-per-point sweeps must agree
// exactly, at one worker and several.
func TestPooledSweepMatchesFresh(t *testing.T) {
	cfg := testutil.TinyConfig()
	k := testutil.ThrashKernel("pooleq", 20, 12, 4)
	for _, workers := range []int{1, 3} {
		pooled, err := Sweep(cfg, k, SweepOptions{StepN: 6, StepP: 6, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := Sweep(cfg, k, SweepOptions{StepN: 6, StepP: 6, Workers: workers, FreshGPUs: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pooled, fresh) {
			t.Fatalf("workers=%d: pooled sweep diverged from fresh-per-point sweep", workers)
		}
	}
}

func TestRunTasksRejectsDigestMismatch(t *testing.T) {
	cfg := testutil.TinyConfig()
	k := testutil.ThrashKernel("digcheck", 16, 8, 2)
	plan := BuildPlan("tag", cfg, k, SweepOptions{StepN: 8, StepP: 8})

	drifted := testutil.ThrashKernel("digcheck", 16, 9, 2) // one extra iteration
	_, err := RunTasks(cfg, map[string]*trace.Kernel{k.Name: drifted}, plan.Tasks, SweepOptions{})
	if err == nil {
		t.Fatal("drifted kernel must fail the digest check")
	}
	if _, err := RunTasks(cfg, map[string]*trace.Kernel{}, plan.Tasks, SweepOptions{}); err == nil {
		t.Fatal("missing kernel must error")
	}
}

func TestMergeShardsNeedsBaseline(t *testing.T) {
	ms := []gridplan.Measurement{
		{Kernel: "k", N: 4, P: 2, IPC: 1},
		{Kernel: "k", N: 6, P: 1, IPC: 1}, // maxN=6, but (6,6) absent
	}
	if _, err := MergeShards("k", ms); err == nil {
		t.Fatal("missing baseline point must fail the merge")
	}
	if _, err := MergeShards("k"); err == nil {
		t.Fatal("empty merge must fail")
	}
	mixed := []gridplan.Measurement{
		{Kernel: "k", N: 2, P: 2, IPC: 1},
		{Kernel: "other", N: 1, P: 1, IPC: 1},
	}
	if _, err := MergeShards("k", mixed); err == nil {
		t.Fatal("mixed kernels must fail the merge")
	}
}

// TestLoadOrSweepReSweepsCorrupt is the corrupt-cache regression test:
// a truncated/garbled cache entry must surface as ErrCorrupt from
// Load, and LoadOrSweep must silently re-sweep and repair the entry
// instead of aborting the run.
func TestLoadOrSweepReSweepsCorrupt(t *testing.T) {
	st := Store{Dir: t.TempDir()}
	cfg := testutil.TinyConfig()
	k := testutil.ThrashKernel("corrupt", 16, 8, 2)
	opts := SweepOptions{StepN: 8, StepP: 8}

	want, err := st.LoadOrSweep("cfg", cfg, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	path := st.path("cfg", k.Name)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for name, corrupt := range map[string][]byte{
		"truncated": good[:len(good)/2],
		"garbled":   []byte(`{"Kernel":`),
		"empty":     nil,
		"wrong":     []byte(`{"Unrelated": true}`),
	} {
		if err := os.WriteFile(path, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Load("cfg", k.Name); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: Load error = %v, want ErrCorrupt", name, err)
		}
		got, err := st.LoadOrSweep("cfg", cfg, k, opts)
		if err != nil {
			t.Fatalf("%s: LoadOrSweep must re-sweep a corrupt entry, got %v", name, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s: re-sweep diverged from the original profile", name)
		}
		// The damaged file must have been repaired.
		repaired, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(repaired, good) {
			t.Fatalf("%s: cache entry not repaired", name)
		}
	}
}

// TestStoreShardPartialsRoundTrip drives the Store's shard partial
// lifecycle end to end: save per-shard measurements, merge them, and
// get back both a cached entry and a Profile identical to Sweep's.
func TestStoreShardPartialsRoundTrip(t *testing.T) {
	st := Store{Dir: t.TempDir()}
	cfg := testutil.TinyConfig()
	k := testutil.ThrashKernel("shardstore", 20, 10, 2)
	opts := SweepOptions{StepN: 6, StepP: 6}
	tag := SweepTag(cfg, opts)

	want, err := Sweep(cfg, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	plan := BuildPlan(tag, cfg, k, opts)
	kernels := map[string]*trace.Kernel{k.Name: k}
	const shards = 3
	for i := 0; i < shards; i++ {
		sp, err := plan.Shard(i, shards)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := RunTasks(cfg, kernels, sp.Tasks, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.SaveShard(tag, k.Name, i, shards, ms); err != nil {
			t.Fatal(err)
		}
	}
	got, err := st.MergeSavedShards(tag, k.Name, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("merged shard partials differ from the in-process sweep")
	}
	// The merge must have produced a regular cache entry.
	cached, err := st.Load(tag, k.Name)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, cached) {
		t.Fatal("cached merged profile differs from the in-process sweep")
	}

	// A lost shard fails the plan-verified merge loudly.
	if err := os.Remove(st.shardPath(tag, k.Name, 1, shards)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.MergeSavedShards(tag, k.Name, plan); err == nil {
		t.Fatal("merge with a missing shard must fail verification")
	}
}
