package profile

import (
	"os"
	"reflect"
	"testing"

	"poise/internal/gridplan"
	"poise/internal/testutil"
	"poise/internal/trace"
)

// prunedTiny runs a pruned sweep of the shared tiny kernel.
func prunedTiny(t *testing.T) (*Profile, RefineStats) {
	t.Helper()
	k := testutil.ThrashKernel("sweep", 20, 15, 4)
	pr, stats, err := PrunedSweep(testutil.TinyConfig(), k, SweepOptions{StepN: 2, StepP: 2})
	if err != nil {
		t.Fatal(err)
	}
	return pr, stats
}

func TestPrunedSweepMatchesExhaustiveTuples(t *testing.T) {
	k := testutil.ThrashKernel("sweep", 20, 15, 4)
	opts := SweepOptions{StepN: 2, StepP: 2}
	ex, err := Sweep(testutil.TinyConfig(), k, opts)
	if err != nil {
		t.Fatal(err)
	}
	pr, stats := prunedTiny(t)
	if pr.Kernel != ex.Kernel || pr.MaxN != ex.MaxN || pr.Baseline != ex.Baseline {
		t.Fatalf("pruned header %+v differs from exhaustive %+v", pr, ex)
	}
	if g, w := pr.Best(), ex.Best(); g != w {
		t.Fatalf("pruned Best %+v != exhaustive %+v", g, w)
	}
	if g, w := pr.BestDiagonal(), ex.BestDiagonal(); g != w {
		t.Fatalf("pruned BestDiagonal %+v != exhaustive %+v", g, w)
	}
	// Every pruned point must be the exhaustive point, bit for bit.
	for _, pt := range pr.Points {
		if xpt, ok := ex.Lookup(pt.N, pt.P); !ok || xpt != pt {
			t.Fatalf("pruned point %+v differs from exhaustive %+v", pt, xpt)
		}
	}
	if stats.Simulated != len(pr.Points) || stats.GridPoints != len(ex.Points) {
		t.Fatalf("stats %+v inconsistent with profiles (%d pruned, %d exhaustive points)",
			stats, len(pr.Points), len(ex.Points))
	}
	if stats.Rounds < 1 {
		t.Fatalf("stats %+v reports no rounds", stats)
	}
}

// TestRefineRoundsShardIdentical is the composition contract with the
// PR 3 shard substrate: executing every refinement round as 1, 2 or 3
// plan shards and merging must reproduce the in-process pruned sweep
// point for point — so a staged multi-process campaign can never
// diverge from PrunedSweep.
func TestRefineRoundsShardIdentical(t *testing.T) {
	cfg := testutil.TinyConfig()
	k := testutil.ThrashKernel("sweep", 20, 15, 4)
	opts := SweepOptions{StepN: 2, StepP: 2}
	want, wantStats := prunedTiny(t)

	for _, shards := range []int{1, 2, 3} {
		var all []gridplan.Measurement
		rounds := 0
		for round := 0; ; round++ {
			plan, done, err := BuildRefinePlan("t", cfg, k, opts, round, all)
			if err != nil {
				t.Fatal(err)
			}
			if done {
				break
			}
			var parts [][]gridplan.Measurement
			for i := 0; i < shards; i++ {
				sp, err := plan.Shard(i, shards)
				if err != nil {
					t.Fatal(err)
				}
				ms, err := RunTasks(cfg, kernelSet(k), sp.Tasks, opts)
				if err != nil {
					t.Fatal(err)
				}
				parts = append(parts, ms)
			}
			merged, err := gridplan.Merge(parts...)
			if err != nil {
				t.Fatal(err)
			}
			if err := plan.Verify(merged); err != nil {
				t.Fatal(err)
			}
			if all, err = gridplan.Merge(all, merged); err != nil {
				t.Fatal(err)
			}
			rounds++
		}
		got, err := MergeShards(k.Name, all)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Points, want.Points) {
			t.Fatalf("%d-shard refinement diverged from in-process pruned sweep", shards)
		}
		if rounds != wantStats.Rounds {
			t.Fatalf("%d-shard refinement took %d rounds, in-process took %d", shards, rounds, wantStats.Rounds)
		}
	}
}

// TestLoadOrSweepPrunedResume pins round persistence: a pruned
// LoadOrSweep caches its rounds and final profile; re-running after
// deleting only the final profile resumes from the cached rounds
// without simulating anything (the refinement is already converged,
// so a poisoned kernel proves no simulation happens); and a corrupt
// round file degrades to a clean re-sweep.
func TestLoadOrSweepPrunedResume(t *testing.T) {
	cfg := testutil.TinyConfig()
	k := testutil.ThrashKernel("sweep", 20, 15, 4)
	opts := SweepOptions{StepN: 2, StepP: 2, Refine: &RefineOptions{}}
	st := Store{Dir: t.TempDir()}

	want, err := st.LoadOrSweep("tag", cfg, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	rounds := st.LoadRounds("tag", k.Name)
	if len(rounds) == 0 {
		t.Fatal("pruned LoadOrSweep persisted no rounds")
	}
	// A second call hits the profile cache.
	again, err := st.LoadOrSweep("tag", cfg, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Points, want.Points) {
		t.Fatal("cached pruned profile differs")
	}

	// Delete the final profile but keep the rounds: the resume must
	// reassemble the identical profile purely from the cached rounds,
	// without simulating — proven by handing it a poisoned same-name
	// kernel whose streams differ, so any re-simulation would change
	// the points.
	if err := os.Remove(st.path("tag", k.Name)); err != nil {
		t.Fatal(err)
	}
	poisoned := testutil.ThrashKernel("sweep", 28, 15, 4)
	resumed, err := st.LoadOrSweep("tag", cfg, poisoned, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed.Points, want.Points) {
		t.Fatal("resumed pruned profile differs from the original (the resume re-simulated?)")
	}

	// Corrupt round 0: the prefix loader stops there, the stale later
	// rounds cannot extend an empty prefix consistently, and the
	// refinement restarts cleanly — same profile, repaired cache.
	if err := os.Remove(st.path("tag", k.Name)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.roundPath("tag", k.Name, 0), []byte("{garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	repaired, err := st.LoadOrSweep("tag", cfg, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(repaired.Points, want.Points) {
		t.Fatal("repaired pruned profile differs from the original")
	}
}

func TestBuildRefinePlanDeterministic(t *testing.T) {
	cfg := testutil.TinyConfig()
	k := testutil.ThrashKernel("sweep", 20, 15, 4)
	opts := SweepOptions{StepN: 2, StepP: 2}
	a, doneA, err := BuildRefinePlan("t", cfg, k, opts, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, doneB, err := BuildRefinePlan("t", cfg, k, opts, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if doneA || doneB {
		t.Fatal("round 0 cannot be empty")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("BuildRefinePlan is not deterministic")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Round 0 must include the corners and the coarse diagonal ends.
	keys := map[gridplan.Coord]bool{}
	maxN := cfg.WarpsPerSched
	for _, task := range a.Tasks {
		keys[gridplan.Coord{N: task.N, P: task.P}] = true
	}
	for _, c := range []gridplan.Coord{{N: 1, P: 1}, {N: maxN, P: 1}, {N: maxN, P: maxN}} {
		if !keys[c] {
			t.Fatalf("round 0 misses corner %+v", c)
		}
	}
	// A measurement off the target grid must be rejected, not silently
	// absorbed into the profile.
	if _, _, err := BuildRefinePlan("t", cfg, k, opts, 1,
		[]gridplan.Measurement{{Kernel: k.Name, N: 2, P: 2, IPC: 1}}); err == nil {
		t.Fatal("off-grid prior measurement must error")
	}
}

func kernelSet(k *trace.Kernel) map[string]*trace.Kernel {
	return map[string]*trace.Kernel{k.Name: k}
}
