package profile

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"poise/internal/config"
)

// The static policy table — the Static-Best, SWL-diagonal and Eq. 12
// scored tuples with their profiled speedups per kernel — is the
// paper's actual deliverable: those three tuples are all any
// experiment (or the decision service) consumes from a profile. The
// derivation lives here so `poisesim -best` and the serve layer's
// /table endpoint are byte-identical by construction, which CI
// enforces with a literal diff.

// BestRow is one kernel's line of the static policy table.
type BestRow struct {
	Kernel string
	Best   Point // Static-Best: global speedup optimum
	Diag   Point // SWL: best p == N point
	Score  Point // Eq. 12 scored optimum (Poise's training target)
}

// String formats the row exactly as `poisesim -best` prints it.
func (r BestRow) String() string {
	return fmt.Sprintf("%-14s best (%2d,%2d) %.4fx  swl (%2d,%2d) %.4fx  score (%2d,%2d) %.4fx",
		r.Kernel, r.Best.N, r.Best.P, r.Best.Speedup, r.Diag.N, r.Diag.P, r.Diag.Speedup,
		r.Score.N, r.Score.P, r.Score.Speedup)
}

// BestTableRows derives the policy table rows from every profile JSON
// in dir, sorted by their printed form (kernel name first, so the
// order is stable across tags). Pruned and exhaustive campaigns of
// the same grid derive identical rows — the optima are exactly what
// pruning preserves.
func BestTableRows(dir string, params config.PoiseParams) ([]BestRow, error) {
	if dir == "" {
		return nil, fmt.Errorf("profile: no profile directory to derive the policy table from")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var rows []BestRow
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		var pr Profile
		if err := json.Unmarshal(data, &pr); err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name(), err)
		}
		pr.buildIndex()
		score, _ := pr.BestScore(params)
		rows = append(rows, BestRow{
			Kernel: pr.Kernel,
			Best:   pr.Best(),
			Diag:   pr.BestDiagonal(),
			Score:  score,
		})
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("no profiles in %s", dir)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].String() < rows[j].String() })
	return rows, nil
}

// BestTable renders the static policy table as text: one row per
// profiled kernel, newline-terminated — byte for byte what `poisesim
// -best` prints for the same directory.
func BestTable(dir string, params config.PoiseParams) (string, error) {
	rows, err := BestTableRows(dir, params)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, r := range rows {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String(), nil
}
