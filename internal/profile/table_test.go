package profile

import (
	"strings"
	"testing"

	"poise/internal/config"
)

// tableProfile builds a tiny synthetic profile whose three optima are
// all distinct: best at (4,1), diagonal best at (2,2), and a scored
// optimum the Eq. 12 neighbourhood weighting selects.
func tableProfile(kernel string) *Profile {
	pr := &Profile{
		Kernel:   kernel,
		MaxN:     4,
		Baseline: Point{N: 4, P: 4, IPC: 1, Speedup: 1},
	}
	for n := 1; n <= 4; n++ {
		for p := 1; p <= n; p++ {
			sp := 1.0
			switch {
			case n == 4 && p == 1:
				sp = 1.5
			case n == 2 && p == 2:
				sp = 1.2
			case n == 3 && p == 1:
				sp = 1.4
			}
			pr.Points = append(pr.Points, Point{N: n, P: p, IPC: sp, Speedup: sp})
		}
	}
	pr.buildIndex()
	return pr
}

func TestBestTable(t *testing.T) {
	dir := t.TempDir()
	st := Store{Dir: dir}
	// Saved under unordered tags: the table must sort by kernel row.
	if err := st.Save("ztag", tableProfile("bk")); err != nil {
		t.Fatal(err)
	}
	if err := st.Save("atag", tableProfile("ak")); err != nil {
		t.Fatal(err)
	}
	table, err := BestTable(dir, config.DefaultPoise())
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(table, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 rows, got %d:\n%s", len(lines), table)
	}
	if !strings.HasPrefix(lines[0], "ak") || !strings.HasPrefix(lines[1], "bk") {
		t.Fatalf("rows not sorted by kernel:\n%s", table)
	}
	if !strings.Contains(lines[0], "best ( 4, 1) 1.5000x") {
		t.Fatalf("Static-Best tuple wrong: %s", lines[0])
	}
	if !strings.Contains(lines[0], "swl ( 2, 2) 1.2000x") {
		t.Fatalf("SWL tuple wrong: %s", lines[0])
	}
	if !strings.HasSuffix(table, "\n") {
		t.Fatal("table must be newline-terminated")
	}

	// The rows API agrees with the rendered text.
	rows, err := BestTableRows(dir, config.DefaultPoise())
	if err != nil {
		t.Fatal(err)
	}
	if got := rows[0].String(); got != lines[0] {
		t.Fatalf("row formatting drifted:\n%s\n%s", got, lines[0])
	}
}

func TestBestTableErrors(t *testing.T) {
	if _, err := BestTable("", config.DefaultPoise()); err == nil {
		t.Fatal("empty dir string must error")
	}
	if _, err := BestTable(t.TempDir(), config.DefaultPoise()); err == nil {
		t.Fatal("directory without profiles must error")
	}
	if _, err := BestTable("/nonexistent-poise-table-dir", config.DefaultPoise()); err == nil {
		t.Fatal("missing directory must error")
	}
}
