package profile

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"poise/internal/config"
	"poise/internal/gridplan"
	"poise/internal/runner"
	"poise/internal/sim"
	"poise/internal/snap"
	"poise/internal/trace"
)

// This file is the sharded face of the sweep: a sweep is planned
// (BuildPlan), executed task by task (RunTasks) — possibly split
// across processes or machines as plan shards — and the measurements
// are merged back into a Profile (MergeShards). The in-process Sweep
// is exactly the one-shard instance of this pipeline, so merging any
// shard decomposition reproduces it bit for bit.

// BuildPlan enumerates the sweep grid of kernel k on cfg as a
// serialisable plan. tag identifies the configuration (the profile
// cache key); the tasks carry k's content digest so a worker process
// can verify its catalogue materialises the same kernel before
// simulating.
func BuildPlan(tag string, cfg config.Config, k *trace.Kernel, opts SweepOptions) *gridplan.Plan {
	opts = opts.withDefaults()
	maxN := kernelMaxN(cfg, k)
	digest := gridplan.KernelDigest(k)
	plan := &gridplan.Plan{Version: gridplan.PlanVersion}
	for _, c := range gridplan.Enumerate(maxN, opts.StepN, opts.StepP) {
		plan.Tasks = append(plan.Tasks, gridplan.Task{
			Tag: tag, Kernel: k.Name, Digest: digest,
			N: c.N, P: c.P, Seed: k.Seed,
		})
	}
	return plan
}

// RunTasks executes plan tasks — typically one shard — and returns
// their raw measurements in task order. Kernels are resolved by name
// from the given set and their content digests are verified against
// the plan before anything simulates. Tasks fan out across
// opts.Workers goroutines; each in-flight task runs on its own GPU
// drawn from a shared pool (reset between runs is bit-identical to
// fresh construction, so reuse cannot perturb results). Measurements
// are raw: speedups are computed at merge time, because the baseline
// point may live in another shard.
func RunTasks(cfg config.Config, kernels map[string]*trace.Kernel, tasks []gridplan.Task, opts SweepOptions) ([]gridplan.Measurement, error) {
	opts = opts.withDefaults()
	digests := map[string]string{}
	for _, t := range tasks {
		k := kernels[t.Kernel]
		if k == nil {
			return nil, fmt.Errorf("profile: plan task %s needs kernel %q, not in the catalogue", t.Key(), t.Kernel)
		}
		if t.Digest == "" {
			continue
		}
		d, ok := digests[t.Kernel]
		if !ok {
			d = gridplan.KernelDigest(k)
			digests[t.Kernel] = d
		}
		if d != t.Digest {
			return nil, fmt.Errorf(
				"profile: kernel %q digest mismatch: plan has %s, catalogue materialises %s (stale plan or drifted catalogue?)",
				t.Kernel, t.Digest, d)
		}
	}

	if opts.FreshGPUs {
		return mapTasks(kernels, tasks, opts,
			func() (*sim.GPU, error) { return sim.New(cfg) }, func(*sim.GPU) {})
	}
	pool, err := sim.NewPool(cfg)
	if err != nil {
		return nil, err
	}
	return mapTasks(kernels, tasks, opts, pool.Get, pool.Put)
}

// taskCheckpointKey names a task's mid-run snapshot in a checkpoint
// store: the full task identity plus the kernel content digest, so a
// checkpoint from a stale plan can never resume against drifted traces.
func taskCheckpointKey(t gridplan.Task) string {
	return "task|" + t.Key() + "|" + t.Digest
}

func mapTasks(kernels map[string]*trace.Kernel, tasks []gridplan.Task, opts SweepOptions,
	get func() (*sim.GPU, error), put func(*sim.GPU)) ([]gridplan.Measurement, error) {
	return runner.MapSlice(opts.Ctx, opts.Workers, tasks,
		func(_ context.Context, _ int, t gridplan.Task) (gridplan.Measurement, error) {
			k := kernels[t.Kernel]
			g, err := get()
			if err != nil {
				return gridplan.Measurement{}, err
			}
			res, err := runTask(g, k, t, opts)
			put(g)
			if err != nil {
				return gridplan.Measurement{}, fmt.Errorf("profile: point (%d,%d) of %s: %w", t.N, t.P, t.Kernel, err)
			}
			return gridplan.Measurement{
				Tag: t.Tag, Kernel: t.Kernel, N: t.N, P: t.P,
				IPC:     res.IPC,
				HitRate: res.L1.HitRate(),
				AML:     res.AML,
				Cycles:  res.Cycles, Instructions: res.Instructions,
			}, nil
		})
}

// runTask simulates one grid point, resuming a stored checkpoint when
// one exists and writing one when the task is preempted. The
// measurement a resumed task produces is bit-identical to an
// uninterrupted run (sim's snapshot covers all live engine state), so
// checkpointing never perturbs merged sweep output.
func runTask(g *sim.GPU, k *trace.Kernel, t gridplan.Task, opts SweepOptions) (sim.KernelResult, error) {
	pol := sim.Fixed{N: t.N, P: t.P}
	ro := sim.RunOptions{MaxCycles: opts.MaxCycles, Interrupt: opts.Interrupt}
	key := taskCheckpointKey(t)
	if opts.Checkpoints != nil {
		if sn, err := opts.Checkpoints.Load(key); err == nil && sn.Kind == snap.KindTask {
			res, rerr := g.ResumeKernel(k, pol, ro, sn.State)
			if rerr == nil {
				// Best effort: a leftover checkpoint only wastes a probe.
				_ = opts.Checkpoints.Delete(key)
				return res, nil
			}
			if errors.Is(rerr, sim.ErrInterrupted) {
				return res, saveTaskCheckpoint(g, pol, t, key, opts, rerr)
			}
			// Unreadable checkpoint: scrub the half-restored GPU and run
			// the task from the start.
			g.Reset()
		}
	}
	res, err := g.Run(k, pol, ro)
	if err != nil {
		if errors.Is(err, sim.ErrInterrupted) && opts.Checkpoints != nil {
			return res, saveTaskCheckpoint(g, pol, t, key, opts, err)
		}
		return res, err
	}
	return res, nil
}

// saveTaskCheckpoint snapshots a preempted task and returns the
// interrupt error (annotated if the save itself failed).
func saveTaskCheckpoint(g *sim.GPU, pol sim.Policy, t gridplan.Task, key string, opts SweepOptions, cause error) error {
	state, err := g.SnapshotKernel(pol)
	if err != nil {
		return fmt.Errorf("profile: checkpointing preempted task: %v (preempted by %w)", err, cause)
	}
	sn := &snap.Snapshot{
		Kind:     snap.KindTask,
		Key:      key,
		Workload: t.Kernel,
		Cycle:    g.Now(),
		State:    state,
	}
	if err := opts.Checkpoints.Save(sn); err != nil {
		return fmt.Errorf("profile: saving task checkpoint: %v (preempted by %w)", err, cause)
	}
	return cause
}

// MergeShards assembles per-shard measurement sets into the kernel's
// Profile, bit-identical to an in-process Sweep of the same grid: the
// merged points sort by (N, P) — the order Sweep emits — speedups are
// normalised against the merged (maxN, maxN) baseline with the same
// float operation Sweep uses, and the baseline's speedup is exactly 1.
func MergeShards(kernel string, shards ...[]gridplan.Measurement) (*Profile, error) {
	ms, err := gridplan.Merge(shards...)
	if err != nil {
		return nil, err
	}
	if len(ms) == 0 {
		return nil, fmt.Errorf("profile: merging %s: no measurements", kernel)
	}
	maxN := 0
	for _, m := range ms {
		if m.Kernel != kernel {
			return nil, fmt.Errorf("profile: merging %s: shard contains measurement for %s", kernel, m.Kernel)
		}
		if m.Tag != ms[0].Tag {
			return nil, fmt.Errorf("profile: merging %s: mixed configuration tags %q and %q", kernel, ms[0].Tag, m.Tag)
		}
		if m.N > maxN {
			maxN = m.N
		}
	}
	var base *gridplan.Measurement
	for i := range ms {
		if ms[i].N == maxN && ms[i].P == maxN {
			base = &ms[i]
			break
		}
	}
	if base == nil {
		return nil, fmt.Errorf("profile: merging %s: baseline point (%d,%d) missing from shards", kernel, maxN, maxN)
	}
	pr := &Profile{
		Kernel: kernel, MaxN: maxN,
		Baseline: Point{
			N: maxN, P: maxN, IPC: base.IPC, Speedup: 1,
			HitRate: base.HitRate, AML: base.AML,
		},
		BaselineCycles: base.Cycles,
		BaselineInstr:  base.Instructions,
	}
	for _, m := range ms {
		pt := Point{N: m.N, P: m.P, IPC: m.IPC, HitRate: m.HitRate, AML: m.AML}
		if m.N == maxN && m.P == maxN {
			pt.Speedup = 1
		} else if base.IPC > 0 {
			pt.Speedup = m.IPC / base.IPC
		}
		pr.Points = append(pr.Points, pt)
	}
	// gridplan.Merge already ordered by key, which is (N, P) order for a
	// single (tag, kernel); keep the explicit sort as a guard so the
	// Profile contract never depends on key formatting.
	sort.Slice(pr.Points, func(i, j int) bool {
		if pr.Points[i].N != pr.Points[j].N {
			return pr.Points[i].N < pr.Points[j].N
		}
		return pr.Points[i].P < pr.Points[j].P
	})
	pr.buildIndex()
	return pr, nil
}

// SweepTag digests the sweep-relevant parts of (configuration, grid
// resolution) into a short cache tag for standalone (non-harness)
// sweeps, e.g. the poisesim plan/shard flow. Two processes agreeing on
// flags agree on the tag, so their plan, shard partials and merged
// profiles key consistently.
func SweepTag(cfg config.Config, opts SweepOptions) string {
	opts = opts.withDefaults()
	s := fmt.Sprintf("%+v|%d.%d", cfg, opts.StepN, opts.StepP)
	if opts.Refine != nil {
		// Pruned profiles carry a subset of the grid, so a pruned
		// campaign must never collide with an exhaustive one — or with
		// a pruned one refined under different parameters.
		s += "|prune" + opts.Refine.Tag()
	}
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:6])
}

// Shard partial persistence: one JSONL measurement file per
// (tag, kernel, shard) in the store directory, merged back into the
// regular profile cache entry by MergeSavedShards.

func (s Store) shardPath(tag, kernel string, index, count int) string {
	return filepath.Join(s.Dir, fmt.Sprintf("%s_%s.shard%03dof%03d.jsonl", tag, kernel, index, count))
}

// SaveShard persists one shard's measurements for (tag, kernel) and
// returns the file path.
func (s Store) SaveShard(tag, kernel string, index, count int, ms []gridplan.Measurement) (string, error) {
	if s.Dir == "" {
		return "", fmt.Errorf("profile: store has no directory for shard partials")
	}
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return "", err
	}
	path := s.shardPath(tag, kernel, index, count)
	if err := gridplan.WriteMeasurementsFile(path, index, count, ms); err != nil {
		return "", err
	}
	return path, nil
}

// LoadShards reads every persisted shard partial for (tag, kernel),
// in sorted file order. It returns os.ErrNotExist when none are
// present.
func (s Store) LoadShards(tag, kernel string) ([][]gridplan.Measurement, error) {
	if s.Dir == "" {
		return nil, os.ErrNotExist
	}
	files, err := filepath.Glob(filepath.Join(s.Dir, fmt.Sprintf("%s_%s.shard*.jsonl", tag, kernel)))
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("profile: no shard partials for %s/%s in %s: %w", tag, kernel, s.Dir, os.ErrNotExist)
	}
	sort.Strings(files)
	var shards [][]gridplan.Measurement
	for _, f := range files {
		ms, err := gridplan.ReadMeasurementsFile(f)
		if err != nil {
			return nil, err
		}
		shards = append(shards, ms)
	}
	return shards, nil
}

// MergeSavedShards merges every persisted shard partial of
// (tag, kernel) into a full Profile, verifies it against plan when one
// is given (exact task coverage — a lost shard fails loudly), caches
// it as the regular profile entry, and returns it.
func (s Store) MergeSavedShards(tag, kernel string, plan *gridplan.Plan) (*Profile, error) {
	shards, err := s.LoadShards(tag, kernel)
	if err != nil {
		return nil, err
	}
	if plan != nil {
		var sub gridplan.Plan
		for _, t := range plan.Tasks {
			if t.Tag == tag && t.Kernel == kernel {
				sub.Tasks = append(sub.Tasks, t)
			}
		}
		merged, err := gridplan.Merge(shards...)
		if err != nil {
			return nil, err
		}
		if err := sub.Verify(merged); err != nil {
			return nil, err
		}
	}
	pr, err := MergeShards(kernel, shards...)
	if err != nil {
		return nil, err
	}
	if err := s.Save(tag, pr); err != nil {
		return nil, err
	}
	return pr, nil
}
