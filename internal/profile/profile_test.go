package profile

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"poise/internal/config"
	"poise/internal/testutil"
)

func sweepTiny(t *testing.T) *Profile {
	t.Helper()
	k := testutil.ThrashKernel("sweep", 20, 15, 4)
	pr, err := Sweep(testutil.TinyConfig(), k, SweepOptions{StepN: 6, StepP: 6})
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func TestSweepBasics(t *testing.T) {
	pr := sweepTiny(t)
	if pr.Kernel != "sweep" {
		t.Fatalf("kernel name %q", pr.Kernel)
	}
	if pr.MaxN != testutil.TinyConfig().WarpsPerSched {
		t.Fatalf("MaxN = %d", pr.MaxN)
	}
	if pr.Baseline.Speedup != 1 {
		t.Fatalf("baseline speedup = %v", pr.Baseline.Speedup)
	}
	if pr.BaselineCycles <= 0 || pr.BaselineInstr <= 0 {
		t.Fatal("baseline bookkeeping missing")
	}
	// The corners the experiments rely on must always be present.
	for _, c := range [][2]int{{pr.MaxN, pr.MaxN}, {pr.MaxN, 1}, {1, 1}} {
		if _, ok := pr.Lookup(c[0], c[1]); !ok {
			t.Fatalf("corner %v missing", c)
		}
	}
	// All points obey 1 <= p <= N <= MaxN and appear once.
	seen := map[[2]int]bool{}
	for _, pt := range pr.Points {
		if pt.P < 1 || pt.P > pt.N || pt.N > pr.MaxN {
			t.Fatalf("invalid point %+v", pt)
		}
		key := [2]int{pt.N, pt.P}
		if seen[key] {
			t.Fatalf("duplicate point %v", key)
		}
		seen[key] = true
	}
}

func TestBestAndDiagonal(t *testing.T) {
	pr := sweepTiny(t)
	best := pr.Best()
	diag := pr.BestDiagonal()
	if diag.N != diag.P {
		t.Fatalf("diagonal best off-diagonal: %+v", diag)
	}
	if best.Speedup < diag.Speedup {
		t.Fatal("global best cannot be below the diagonal best")
	}
	for _, pt := range pr.Points {
		if pt.Speedup > best.Speedup {
			t.Fatal("Best missed a better point")
		}
	}
}

func TestScoreUniformProfile(t *testing.T) {
	// On a synthetic profile with constant speedup, every score equals
	// that speedup regardless of neighbour availability (the boundary
	// normalisation of Eq. 12).
	pr := &Profile{Kernel: "flat", MaxN: 4}
	for n := 1; n <= 4; n++ {
		for p := 1; p <= n; p++ {
			pr.Points = append(pr.Points, Point{N: n, P: p, Speedup: 2})
		}
	}
	for _, pt := range pr.Points {
		s, ok := pr.Score(pt.N, pt.P, 1, 0.5, 0.25)
		if !ok {
			t.Fatalf("score missing at %v", pt)
		}
		if s < 1.999 || s > 2.001 {
			t.Fatalf("flat profile score = %v at (%d,%d), want 2", s, pt.N, pt.P)
		}
	}
}

func TestScorePrefersSafeNeighbourhood(t *testing.T) {
	// A sharp peak beside a cliff must score below a slightly lower
	// plateau — the Fig. 5 behaviour.
	pr := &Profile{Kernel: "cliff", MaxN: 6}
	add := func(n, p int, s float64) {
		pr.Points = append(pr.Points, Point{N: n, P: p, Speedup: s})
	}
	for n := 1; n <= 6; n++ {
		for p := 1; p <= n; p++ {
			add(n, p, 1.0)
		}
	}
	// Peak at (2,1) with a cliff at (3,1); plateau around (5,3).
	set := func(n, p int, s float64) {
		for i := range pr.Points {
			if pr.Points[i].N == n && pr.Points[i].P == p {
				pr.Points[i].Speedup = s
			}
		}
	}
	set(2, 1, 1.50)
	set(3, 1, 0.40) // cliff
	set(5, 3, 1.40)
	set(4, 3, 1.35)
	set(6, 3, 1.35)
	set(5, 2, 1.35)
	set(5, 4, 1.35)
	set(4, 2, 1.30)
	set(6, 4, 1.30)
	best, _ := pr.BestScore(config.DefaultPoise())
	if best.N != 5 || best.P != 3 {
		t.Fatalf("scoring picked (%d,%d), want the safe plateau (5,3)", best.N, best.P)
	}
	// Yet raw Best still finds the sharp peak.
	if raw := pr.Best(); raw.N != 2 || raw.P != 1 {
		t.Fatalf("raw best = %+v, want the (2,1) peak", raw)
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := Store{Dir: dir}
	pr := sweepTiny(t)
	if err := st.Save("tag1", pr); err != nil {
		t.Fatal(err)
	}
	back, err := st.Load("tag1", pr.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	if back.Kernel != pr.Kernel || len(back.Points) != len(pr.Points) {
		t.Fatal("round trip lost data")
	}
	if back.Best() != pr.Best() {
		t.Fatal("round trip changed the optimum")
	}
}

func TestStoreMissAndCorrupt(t *testing.T) {
	st := Store{Dir: t.TempDir()}
	if _, err := st.Load("none", "nothing"); err == nil {
		t.Fatal("missing cache entry must error")
	}
	bad := filepath.Join(st.Dir, "t_k.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load("t", "k"); err == nil {
		t.Fatal("corrupt cache entry must error")
	}
	empty := Store{}
	if err := empty.Save("t", &Profile{Kernel: "k"}); err == nil {
		t.Fatal("dirless store cannot save")
	}
}

// TestLookupIndexMatchesScan pins the O(1) point index against the
// linear-scan semantics it replaced, duplicates included (first
// occurrence wins) — both before the index is built (hand-assembled
// profiles use the fallback scan) and after.
func TestLookupIndexMatchesScan(t *testing.T) {
	pr := &Profile{Kernel: "idx", MaxN: 5}
	for n := 1; n <= 5; n++ {
		for p := 1; p <= n; p++ {
			pr.Points = append(pr.Points, Point{N: n, P: p, IPC: float64(n*10 + p)})
		}
	}
	pr.Points = append(pr.Points, Point{N: 3, P: 2, IPC: -1}) // malformed duplicate
	scan := func(n, p int) (Point, bool) {
		for _, pt := range pr.Points {
			if pt.N == n && pt.P == p {
				return pt, true
			}
		}
		return Point{}, false
	}
	check := func(mode string) {
		for n := 0; n <= 6; n++ {
			for p := 0; p <= 6; p++ {
				got, okGot := pr.Lookup(n, p)
				want, okWant := scan(n, p)
				if okGot != okWant || got != want {
					t.Fatalf("%s Lookup(%d,%d) = %+v,%v, scan says %+v,%v", mode, n, p, got, okGot, want, okWant)
				}
			}
		}
	}
	check("unindexed")
	pr.buildIndex()
	check("indexed")
}

// TestSweptProfilesDeepEqual: profiles from a sweep and from the cache
// must stay reflect.DeepEqual however many queries either has served —
// the index is built eagerly at construction, never mutated by reads.
func TestSweptProfilesDeepEqual(t *testing.T) {
	st := Store{Dir: t.TempDir()}
	pr := sweepTiny(t)
	if err := st.Save("t", pr); err != nil {
		t.Fatal(err)
	}
	back, err := st.Load("t", pr.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	pr.BestScore(config.DefaultPoise()) // exercise lookups on one side only
	if !reflect.DeepEqual(pr, back) {
		t.Fatal("swept and loaded profiles are not DeepEqual")
	}
}

// TestProfileJSONStableAcrossIndex: the index must never leak
// into the serialised form — encode, decode, query (which builds the
// index), and re-encode must be byte-identical.
func TestProfileJSONStableAcrossIndex(t *testing.T) {
	dir := t.TempDir()
	st := Store{Dir: dir}
	pr := sweepTiny(t)
	if err := st.Save("tag", pr); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(st.path("tag", pr.Kernel))
	if err != nil {
		t.Fatal(err)
	}
	back, err := st.Load("tag", pr.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := back.Lookup(1, 1); !ok {
		t.Fatal("decoded profile misses (1,1)")
	}
	if err := st.Save("tag", back); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(st.path("tag", pr.Kernel))
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatal("JSON round trip is not byte-identical after the index is built")
	}
}

// TestSaveAtomic: Save must leave no temporary droppings and must
// replace a corrupt entry wholesale (the rename is the commit point).
func TestSaveAtomic(t *testing.T) {
	st := Store{Dir: t.TempDir()}
	pr := sweepTiny(t)
	// Pre-damage the entry; Save must atomically replace it.
	if err := os.WriteFile(st.path("t", pr.Kernel), []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := st.Save("t", pr); err != nil {
		t.Fatal(err)
	}
	back, err := st.Load("t", pr.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	if back.Best() != pr.Best() {
		t.Fatal("atomic save lost data")
	}
	files, err := filepath.Glob(filepath.Join(st.Dir, "*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 0 {
		t.Fatalf("Save left temporary files behind: %v", files)
	}
}

func TestLoadOrSweepCaches(t *testing.T) {
	st := Store{Dir: t.TempDir()}
	k := testutil.ThrashKernel("los", 16, 10, 4)
	opts := SweepOptions{StepN: 8, StepP: 8}
	cfg := testutil.TinyConfig()
	a, err := st.LoadOrSweep("cfgX", cfg, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Second call must come from disk and agree exactly.
	b, err := st.LoadOrSweep("cfgX", cfg, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Baseline.IPC != b.Baseline.IPC || len(a.Points) != len(b.Points) {
		t.Fatal("cached profile differs from the sweep")
	}
}
