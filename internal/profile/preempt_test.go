package profile

import (
	"errors"
	"os"
	"reflect"
	"testing"

	"poise/internal/sim"
	"poise/internal/snap"
	"poise/internal/testutil"
	"poise/internal/trace"
)

// TestPreemptedSweepResumesIdentically is the sweep-level preemption
// invariant: interrupting a RunTasks call mid-task (as a SIGTERM'd
// worker would), then re-running the same shard against the same
// checkpoint store in a "second process", must merge to a profile
// reflect.DeepEqual-identical to an uninterrupted sweep.
func TestPreemptedSweepResumesIdentically(t *testing.T) {
	cfg := testutil.TinyConfig()
	k := testutil.ThrashKernel("preempt", 20, 12, 4)
	opts := SweepOptions{StepN: 4, StepP: 4}
	kernels := map[string]*trace.Kernel{k.Name: k}
	plan := BuildPlan("", cfg, k, opts)

	clean, err := RunTasks(cfg, kernels, plan.Tasks, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MergeShards(k.Name, clean)
	if err != nil {
		t.Fatal(err)
	}
	// Interrupt early enough that every grid point is still in flight.
	at := clean[0].Cycles
	for _, m := range clean {
		if m.Cycles < at {
			at = m.Cycles
		}
	}
	at /= 2
	if at < 1 {
		t.Skipf("tasks too short (%d cycles) to interrupt", at)
	}

	for _, workers := range []int{1, 3} {
		store, err := snap.NewStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		io := opts
		io.Workers = workers
		io.Interrupt = &sim.InterruptCtl{AtCycle: at}
		io.Checkpoints = store
		if _, err := RunTasks(cfg, kernels, plan.Tasks, io); !errors.Is(err, sim.ErrInterrupted) {
			t.Fatalf("workers=%d: interrupted RunTasks: got %v, want ErrInterrupted", workers, err)
		}
		ents, err := os.ReadDir(store.Dir())
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) == 0 {
			t.Fatalf("workers=%d: preemption left no checkpoints", workers)
		}

		ro := opts
		ro.Workers = workers
		ro.Checkpoints = store
		ms, err := RunTasks(cfg, kernels, plan.Tasks, ro)
		if err != nil {
			t.Fatalf("workers=%d: resumed RunTasks: %v", workers, err)
		}
		got, err := MergeShards(k.Name, ms)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: resumed sweep diverges from uninterrupted sweep:\nwant %+v\ngot  %+v", workers, want, got)
		}
		// Consumed checkpoints are scrubbed so a later sweep with the
		// same store never probes stale state.
		ents, err = os.ReadDir(store.Dir())
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != 0 {
			t.Fatalf("workers=%d: %d checkpoint(s) left after resume", workers, len(ents))
		}
	}
}
