package profile

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"poise/internal/config"
	"poise/internal/gridplan"
	"poise/internal/trace"
)

// Adaptive coarse-to-fine sweep pruning. The paper only ever consumes
// three things from a solution-space profile — the global optimum
// (Static-Best), the best p == N diagonal point (SWL) and the Eq. 12
// neighbourhood-score optimum (the training target) — so exhaustively
// simulating the whole {N, p} grid is mostly dead weight. The refiner
// sweeps a coarse sub-grid first (round 0, with the mandatory p == N
// diagonal, the corner points the figures reference, and an extra
// low-p column where throttling profiles concentrate structure), then
// repeatedly ranks the swept points by speedup and by Eq. 12 score
// and expands only the top-ranked, basin-distinct neighbourhoods to
// the target resolution, terminating when another round would add
// nothing — by construction that means the incumbent optimum's 3x3
// neighbourhood is fully swept, so its score is exact.
//
// Every round is an ordinary gridplan-backed task plan, so pruning
// composes with the shard -> merge substrate: rounds can be emitted as
// plan files, split i/N across processes, and merged back — the next
// round's plan is a pure function of the merged measurements so far,
// which are bit-identical at any shard count.

// RefineOptions tunes the pruned sweep. The zero value selects
// defaults chosen so the catalogue workloads converge to the exact
// exhaustive-sweep optima while simulating well under half of the
// grid (TestPrunedMatchesExhaustiveOnCatalogue pins both properties).
type RefineOptions struct {
	// CoarseN/CoarseP multiply the target StepN/StepP for the round-0
	// sub-grid (default 3: every third target column/row).
	CoarseN, CoarseP int
	// TopK bounds how many candidates each ranking criterion (speedup,
	// Eq. 12 score) nominates per round (default 3).
	TopK int
	// MaxRounds is the safety valve: a refinement still unconverged
	// after this many rounds sweeps the whole remaining grid in one
	// final round, so the result can degrade to the exhaustive sweep
	// but never to a wrong one (default 8).
	MaxRounds int
	// FlatTol is the escalation threshold for throttling-insensitive
	// kernels: when no point the coarse pass observed beats the
	// baseline by more than this fraction, throttling does not help
	// the kernel, its "optimum" is a noise argmax no local search can
	// find, and the refiner escalates to the full grid (default
	// 0.02). The compute-intensive catalogue workloads take this
	// path; the memory-sensitive ones clear the threshold by an order
	// of magnitude.
	FlatTol float64
	// W0/W1/W2 are the Eq. 12 neighbourhood weights used for ranking.
	// They are one unit: leave all three zero for the Table IV
	// defaults (config.DefaultPoise), or set all three explicitly —
	// a partially-set triple is used exactly as given.
	W0, W1, W2 float64
	// SkipDiagonal drops the p == N diagonal climb from refinement.
	// Training sweeps want this: BuildDataset's targets only consume
	// the scored optimum (Best + its Eq. 12 neighbourhood) and the
	// baseline, never BestDiagonal, so climbing the SWL front is dead
	// weight there. Evaluation sweeps (Table IIIa, the SWL rows of the
	// figures) must leave it false.
	SkipDiagonal bool
}

func (o RefineOptions) withDefaults() RefineOptions {
	if o.CoarseN <= 0 {
		o.CoarseN = 3
	}
	if o.CoarseP <= 0 {
		o.CoarseP = 3
	}
	if o.TopK <= 0 {
		o.TopK = 3
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 8
	}
	if o.FlatTol <= 0 {
		o.FlatTol = 0.02
	}
	if o.W0 == 0 && o.W1 == 0 && o.W2 == 0 {
		p := config.DefaultPoise()
		o.W0, o.W1, o.W2 = p.ScoreW0, p.ScoreW1, p.ScoreW2
	}
	return o
}

// Tag digests every parameter that shapes which grid points a pruned
// sweep simulates, after defaulting — the cache-key component for
// pruned campaigns. Two campaigns differing in any refinement
// parameter (coarse factors, front widths, round cap, flatness
// threshold, ranking weights) must never share cached profiles or
// round partials, because their pruned subsets differ.
func (o RefineOptions) Tag() string {
	r := o.withDefaults()
	tag := fmt.Sprintf("%d.%d.%d.%d.%g.%g.%g.%g",
		r.CoarseN, r.CoarseP, r.TopK, r.MaxRounds, r.FlatTol, r.W0, r.W1, r.W2)
	if r.SkipDiagonal {
		// Appended rather than folded into the base format so existing
		// cached campaigns (all diagonal-inclusive) keep their keys.
		tag += ".nodiag"
	}
	return tag
}

// RefineStats reports what a pruned sweep actually simulated.
type RefineStats struct {
	Rounds     int // refinement rounds executed
	Simulated  int // grid points simulated across all rounds
	GridPoints int // size of the exhaustive grid at the target resolution
}

// Fraction returns Simulated / GridPoints.
func (s RefineStats) Fraction() float64 {
	if s.GridPoints == 0 {
		return 0
	}
	return float64(s.Simulated) / float64(s.GridPoints)
}

// kernelMaxN mirrors BuildPlan's warp bound: the configuration's
// per-scheduler limit, clipped by the kernel's own occupancy bound.
func kernelMaxN(cfg config.Config, k *trace.Kernel) int {
	maxN := cfg.WarpsPerSched
	if k.MaxWarpsPerSched > 0 && k.MaxWarpsPerSched < maxN {
		maxN = k.MaxWarpsPerSched
	}
	return maxN
}

// BuildRefinePlan computes refinement round `round` of kernel k as an
// ordinary sweep plan, given every measurement observed in earlier
// rounds (merged across rounds and shards). It is a pure function of
// its arguments — measurements are bit-identical at any shard or
// worker count, so every process of a staged campaign derives the
// same next round. done reports convergence: the returned plan is
// empty and prior already covers everything another round would ask
// for, so the profile can be assembled.
//
// Round 0 (prior empty) is the coarse sub-grid at CoarseN/CoarseP
// times the target steps — the p == N diagonal and the corner points
// included at coarse resolution — plus the second p column at the
// coarse rows. Later rounds rank the swept points by speedup and by
// Eq. 12 score on the partial profile and expand the top candidates'
// neighbourhoods (see refineWants), re-ranking each round until a
// round adds nothing. A space that turns out flat to within FlatTol
// escalates to the full grid, and rounds past MaxRounds request the
// whole remaining grid at once — either way the result degrades to
// the exhaustive sweep, never to a wrong profile.
func BuildRefinePlan(tag string, cfg config.Config, k *trace.Kernel, opts SweepOptions, round int, prior []gridplan.Measurement) (*gridplan.Plan, bool, error) {
	opts = opts.withDefaults()
	ropts := opts.refineOptions()
	maxN := kernelMaxN(cfg, k)
	grid := gridplan.Enumerate(maxN, opts.StepN, opts.StepP)
	inGrid := map[gridplan.Coord]bool{}
	for _, c := range grid {
		inGrid[c] = true
	}
	swept := map[gridplan.Coord]bool{}
	for _, m := range prior {
		c := gridplan.Coord{N: m.N, P: m.P}
		if !inGrid[c] {
			return nil, false, fmt.Errorf(
				"profile: refining %s: prior measurement (%d,%d) is not on the %d-step/%d-step grid (stale rounds from another resolution?)",
				k.Name, m.N, m.P, opts.StepN, opts.StepP)
		}
		swept[c] = true
	}

	var want map[gridplan.Coord]bool
	switch {
	case len(prior) == 0:
		want = coarseRound(maxN, opts, ropts)
	case round >= ropts.MaxRounds:
		want = inGrid
	default:
		pr, err := MergeShards(k.Name, prior)
		if err != nil {
			return nil, false, fmt.Errorf("profile: refining %s: %w", k.Name, err)
		}
		if flat(pr, ropts) {
			// The whole observed space is flat to within noise:
			// throttling does not move this kernel, so its "optimum" is
			// a noise argmax only the full grid can reproduce exactly.
			want = inGrid
		} else {
			want = refineWants(pr, grid, opts, ropts)
		}
	}

	plan := &gridplan.Plan{Version: gridplan.PlanVersion}
	digest := gridplan.KernelDigest(k)
	for _, c := range grid { // deterministic Enumerate order
		if want[c] && !swept[c] {
			plan.Tasks = append(plan.Tasks, gridplan.Task{
				Tag: tag, Kernel: k.Name, Digest: digest,
				N: c.N, P: c.P, Seed: k.Seed,
			})
		}
	}
	return plan, len(plan.Tasks) == 0, nil
}

// coarseRound enumerates round 0: the coarse sub-grid (a subset of the
// target grid, since its steps are integer multiples — the mandatory
// p == N diagonal and the corner points included, via Enumerate's own
// closure rules), plus the second p column at the coarse rows. The
// low-p edge is where throttling profiles concentrate their structure
// (pollution throttling lives at small p — Fig. 2), and narrow low-p
// ridges between coarse columns are exactly what a uniform coarse
// grid misses. The diagonal starts at coarse resolution like the rest
// of the grid; refineWants climbs it to target resolution around the
// incumbent SWL optimum.
func coarseRound(maxN int, opts SweepOptions, ropts RefineOptions) map[gridplan.Coord]bool {
	want := map[gridplan.Coord]bool{}
	for _, c := range gridplan.Enumerate(maxN, opts.StepN*ropts.CoarseN, opts.StepP*ropts.CoarseP) {
		want[c] = true
		if p := 1 + opts.StepP; c.P == 1 && p <= c.N && c.N < maxN {
			want[gridplan.Coord{N: c.N, P: p}] = true
		}
	}
	want[gridplan.Coord{N: maxN, P: maxN}] = true
	return want
}

// flat reports whether throttling is indistinguishable from noise on
// the partial profile: no swept point beats the baseline (speedup 1)
// by at least FlatTol.
func flat(pr *Profile, ropts RefineOptions) bool {
	hi := pr.Points[0].Speedup
	for _, pt := range pr.Points {
		if pt.Speedup > hi {
			hi = pt.Speedup
		}
	}
	return hi < 1+ropts.FlatTol
}

// refineWants ranks the partial profile's points by speedup and by
// Eq. 12 score and returns the union of the top candidates'
// neighbourhoods: axis crosses one grid step wide for the speedup
// fronts (plus the incumbent's exact 3x3 score neighbourhood), the
// 3x3 ring of the score incumbent, and diagonal steps around the top
// diagonal points for the SWL optimum.
func refineWants(pr *Profile, grid []gridplan.Coord, opts SweepOptions, ropts RefineOptions) map[gridplan.Coord]bool {
	bySpeedup := append([]Point(nil), pr.Points...)
	sort.SliceStable(bySpeedup, func(i, j int) bool {
		return bySpeedup[i].Speedup > bySpeedup[j].Speedup
	})
	type scored struct {
		pt    Point
		score float64
	}
	byScore := make([]scored, 0, len(pr.Points))
	for _, pt := range pr.Points {
		s, ok := pr.Score(pt.N, pt.P, ropts.W0, ropts.W1, ropts.W2)
		if !ok {
			continue
		}
		byScore = append(byScore, scored{pt, s})
	}
	sort.SliceStable(byScore, func(i, j int) bool {
		return byScore[i].score > byScore[j].score
	})

	// The expansion reach: one target grid step (never below the 1-cell
	// score neighbourhood).
	reachN, reachP := opts.StepN, opts.StepP
	if reachN < 1 {
		reachN = 1
	}
	if reachP < 1 {
		reachP = 1
	}

	// Speedup candidates are picked with non-max suppression — a point
	// within one grid step of a better candidate is represented by it
	// — so the TopK fronts explore distinct basins instead of crowding
	// the same ridge (two near-tied ridges are common; without
	// suppression every front climbs the one that happens to lead
	// after the coarse pass).
	climbers := suppress(bySpeedup, ropts.TopK, reachN, reachP, nil)
	var topScored []Point
	for _, s := range byScore {
		topScored = append(topScored, s.pt)
	}
	// The score and diagonal fronts are cheaper searches than the full
	// 2-D climb: the score optimum tracks the speedup optimum closely
	// (one front suffices, and it only needs the 3x3 neighbourhood
	// Eq. 12 actually reads), and the diagonal is one-dimensional.
	narrowK := (ropts.TopK + 1) / 2
	ringed := suppress(topScored, 1, reachN, reachP, nil)

	// The SWL optimum lives on the p == N diagonal, which round 0 only
	// sampled coarsely: climb it separately, expanding the top swept
	// diagonal points one diagonal grid step, so BestDiagonal converges
	// to target resolution just like Best does. Training sweeps skip
	// this front — nothing they derive reads BestDiagonal.
	var diagonal []Point
	if !ropts.SkipDiagonal {
		diagonal = suppress(bySpeedup, narrowK, reachN, reachP,
			func(pt Point) bool { return pt.N == pt.P })
	}
	want := map[gridplan.Coord]bool{}
	for _, g := range grid {
		for i, c := range climbers {
			dn, dp := abs(g.N-c.N), abs(g.P-c.P)
			// Every front climbs along the grid axes (a cross, not a
			// full cell — diagonal moves decompose into two axis
			// moves); the incumbent additionally sweeps its 3x3
			// absolute neighbourhood, the points Eq. 12 reads, so at
			// termination the optimum's score is exact.
			if (dn <= reachN && dp == 0) || (dn == 0 && dp <= reachP) {
				want[g] = true
			} else if i == 0 && dn <= 1 && dp <= 1 {
				want[g] = true
			}
		}
		for _, c := range ringed {
			if abs(g.N-c.N) <= 1 && abs(g.P-c.P) <= 1 {
				want[g] = true
			}
		}
		if g.N == g.P {
			for _, c := range diagonal {
				if abs(g.N-c.N) <= reachN {
					want[g] = true
				}
			}
		}
	}
	return want
}

// suppress greedily picks up to k points from the ranked slice,
// skipping any point within (reachN, reachP) of an already-picked one
// (and any not matching the filter, when given): non-max suppression,
// so the picks represent distinct neighbourhoods of the ranking.
func suppress(ranked []Point, k, reachN, reachP int, keep func(Point) bool) []Point {
	var out []Point
	for _, pt := range ranked {
		if len(out) == k {
			break
		}
		if keep != nil && !keep(pt) {
			continue
		}
		near := false
		for _, c := range out {
			if abs(pt.N-c.N) <= reachN && abs(pt.P-c.P) <= reachP {
				near = true
				break
			}
		}
		if !near {
			out = append(out, pt)
		}
	}
	return out
}

// refineOptions resolves the sweep's refinement parameters (the
// defaulted Refine field, or pure defaults when pruning was requested
// without explicit options).
func (o SweepOptions) refineOptions() RefineOptions {
	if o.Refine != nil {
		return o.Refine.withDefaults()
	}
	return RefineOptions{}.withDefaults()
}

// PrunedSweep is the adaptive counterpart of Sweep: it profiles kernel
// k by running BuildRefinePlan rounds until convergence, simulating
// only the coarse pass plus the refined neighbourhoods. The returned
// profile's Points are the subset of the exhaustive grid that was
// simulated, with speedups normalised exactly as Sweep normalises them
// (same baseline point, same float operations), so every point the two
// sweeps share is bit-identical; the refinement is tuned so that
// Best, BestDiagonal and BestScore select the same tuples as the
// exhaustive sweep (the catalogue equivalence tests pin this).
func PrunedSweep(cfg config.Config, k *trace.Kernel, opts SweepOptions) (*Profile, RefineStats, error) {
	opts = opts.withDefaults()
	stats := RefineStats{GridPoints: len(gridplan.Enumerate(kernelMaxN(cfg, k), opts.StepN, opts.StepP))}
	var all []gridplan.Measurement
	kernels := map[string]*trace.Kernel{k.Name: k}
	for round := 0; ; round++ {
		plan, done, err := BuildRefinePlan("", cfg, k, opts, round, all)
		if err != nil {
			return nil, stats, err
		}
		if done {
			break
		}
		ms, err := RunTasks(cfg, kernels, plan.Tasks, opts)
		if err != nil {
			return nil, stats, err
		}
		if all, err = gridplan.Merge(all, ms); err != nil {
			return nil, stats, err
		}
		stats.Rounds++
		stats.Simulated += len(ms)
	}
	pr, err := MergeShards(k.Name, all)
	if err != nil {
		return nil, stats, err
	}
	return pr, stats, nil
}

// Round partial persistence: a pruned sweep's completed rounds are
// cached as one measurement JSONL file per (tag, kernel, round), so a
// crashed or staged campaign resumes from the last completed round
// instead of re-simulating from scratch.

func (s Store) roundPath(tag, kernel string, round int) string {
	return filepath.Join(s.Dir, fmt.Sprintf("%s_%s.prune%03d.jsonl", tag, kernel, round))
}

// SaveRound persists one completed refinement round's measurements.
func (s Store) SaveRound(tag, kernel string, round int, ms []gridplan.Measurement) error {
	if s.Dir == "" {
		return fmt.Errorf("profile: store has no directory for round partials")
	}
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return err
	}
	return gridplan.WriteMeasurementsFile(s.roundPath(tag, kernel, round), round, round+1, ms)
}

// LoadRounds returns the longest readable prefix of persisted
// refinement rounds for (tag, kernel): rounds 0..r-1 where round r is
// the first missing or corrupt file. A truncated write from a crashed
// run therefore costs exactly the rounds from the damaged file on,
// never a wrong resume.
func (s Store) LoadRounds(tag, kernel string) [][]gridplan.Measurement {
	if s.Dir == "" {
		return nil
	}
	var rounds [][]gridplan.Measurement
	for round := 0; ; round++ {
		ms, err := gridplan.ReadMeasurementsFile(s.roundPath(tag, kernel, round))
		if err != nil {
			return rounds
		}
		rounds = append(rounds, ms)
	}
}

// loadOrPrunedSweep is LoadOrSweep's adaptive path: resume from any
// cached rounds, run the remaining rounds (persisting each), and cache
// the assembled profile. Stale or inconsistent round files (e.g. from
// a run with different refinement parameters) restart the refinement
// from round 0 rather than failing.
func (s Store) loadOrPrunedSweep(tag string, cfg config.Config, k *trace.Kernel, opts SweepOptions) (*Profile, error) {
	if s.Dir == "" {
		pr, _, err := PrunedSweep(cfg, k, opts)
		return pr, err
	}
	pr, err := s.resumePrunedRounds(tag, cfg, k, opts, s.LoadRounds(tag, k.Name))
	if err != nil {
		// Cached rounds that cannot be extended (mixed grids, duplicate
		// coverage) are treated like a corrupt cache entry: re-sweep
		// from scratch and overwrite them.
		pr, err = s.resumePrunedRounds(tag, cfg, k, opts, nil)
	}
	return pr, err
}

func (s Store) resumePrunedRounds(tag string, cfg config.Config, k *trace.Kernel, opts SweepOptions, rounds [][]gridplan.Measurement) (*Profile, error) {
	all, err := gridplan.Merge(rounds...)
	if err != nil {
		return nil, err
	}
	kernels := map[string]*trace.Kernel{k.Name: k}
	for round := len(rounds); ; round++ {
		plan, done, err := BuildRefinePlan(tag, cfg, k, opts, round, all)
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
		ms, err := RunTasks(cfg, kernels, plan.Tasks, opts)
		if err != nil {
			return nil, err
		}
		if err := s.SaveRound(tag, k.Name, round, ms); err != nil {
			return nil, err
		}
		if all, err = gridplan.Merge(all, ms); err != nil {
			return nil, err
		}
	}
	pr, err := MergeShards(k.Name, all)
	if err != nil {
		return nil, err
	}
	if err := s.Save(tag, pr); err != nil {
		return nil, err
	}
	return pr, nil
}
