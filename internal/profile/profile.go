// Package profile runs offline {N, p} solution-space sweeps — the
// static profiling step that SWL, PCAL-SWL and Static-Best rely on in
// the paper's evaluation, and the data source for Poise's training
// targets. A Profile stores the speedup of one kernel at every swept
// warp-tuple, normalised to the GTO baseline at maximum warps.
package profile

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"poise/internal/config"
	"poise/internal/sim"
	"poise/internal/snap"
	"poise/internal/trace"
)

// Point is one profiled warp-tuple.
type Point struct {
	N, P    int
	IPC     float64
	Speedup float64 // IPC / baseline IPC
	HitRate float64
	AML     float64
}

// Profile is the solution-space map of one kernel.
type Profile struct {
	Kernel   string
	MaxN     int     // per-scheduler warp bound during the sweep
	Baseline Point   // the (MaxN, MaxN) GTO point
	Points   []Point // all swept points (includes the baseline tuple)

	// BaselineFeatures carries aggregate kernel statistics sampled at
	// the baseline run, used by the training pipeline.
	BaselineCycles int64
	BaselineInstr  int64

	// index maps (N, P) to the point's position in Points, so
	// BestScore's 9-neighbour probes are O(1) per point instead of a
	// linear scan. It is built eagerly wherever profiles are
	// constructed for consumers (MergeShards, Store.Load) — never
	// lazily, so two profiles with the same points always compare
	// reflect.DeepEqual regardless of how many queries either has
	// served. It is unexported and rebuilt after JSON decoding, so
	// serialised profiles are byte-identical to the pre-index format.
	// Hand-assembled profiles (tests, synthetic fixtures) may leave it
	// nil: Lookup falls back to the linear scan. Points must not grow
	// after buildIndex (mutating a point's metrics in place is fine —
	// the index only keys coordinates).
	index map[[2]int]int
}

// Lookup returns the point at (n, p) and whether it was swept.
func (pr *Profile) Lookup(n, p int) (Point, bool) {
	if pr.index != nil {
		if i, ok := pr.index[[2]int{n, p}]; ok {
			return pr.Points[i], true
		}
		return Point{}, false
	}
	for _, pt := range pr.Points {
		if pt.N == n && pt.P == p {
			return pt, true
		}
	}
	return Point{}, false
}

// buildIndex indexes Points by coordinate; the first occurrence wins,
// matching what the linear scan used to return for (malformed)
// profiles with duplicate tuples.
func (pr *Profile) buildIndex() {
	pr.index = make(map[[2]int]int, len(pr.Points))
	for i, pt := range pr.Points {
		key := [2]int{pt.N, pt.P}
		if _, dup := pr.index[key]; !dup {
			pr.index[key] = i
		}
	}
}

// Best returns the highest-speedup point.
func (pr *Profile) Best() Point {
	best := pr.Baseline
	for _, pt := range pr.Points {
		if pt.Speedup > best.Speedup {
			best = pt
		}
	}
	return best
}

// BestDiagonal returns the best point with p == N — the reach of SWL
// (static CCWS), which couples the two knobs.
func (pr *Profile) BestDiagonal() Point {
	best := pr.Baseline
	for _, pt := range pr.Points {
		if pt.N == pt.P && pt.Speedup > best.Speedup {
			best = pt
		}
	}
	return best
}

// Sweep options.
type SweepOptions struct {
	// StepN/StepP control grid resolution (1 = exhaustive). The
	// diagonal p == N is always included at StepN resolution, since the
	// SWL baseline needs it.
	StepN, StepP int
	// MaxCycles guards each run.
	MaxCycles int64
	// Workers bounds the concurrent point simulations (<= 0 means
	// GOMAXPROCS, 1 forces sequential). Every in-flight point runs on
	// its own GPU, so the profile is bit-identical at any worker count.
	Workers int
	// Ctx cancels an in-flight sweep (nil = context.Background()).
	Ctx context.Context
	// FreshGPUs disables the worker-pinned GPU pool and builds a fresh
	// GPU per grid point (the pre-pool behaviour). Results are
	// bit-identical either way — the pool's Reset is verified against
	// fresh construction — so this exists only as a cross-check and for
	// the allocation benchmarks.
	FreshGPUs bool
	// Refine switches sweeps to adaptive coarse-to-fine pruning (see
	// refine.go): LoadOrSweep runs PrunedSweep rounds instead of the
	// exhaustive grid, caching completed rounds for resume. nil means
	// exhaustive. The pruned profile contains only the simulated
	// subset of the grid, so callers that consume more than the
	// Best/BestDiagonal/BestScore optima and the corner points should
	// keep Refine nil.
	Refine *RefineOptions
	// Interrupt, when non-nil, makes the sweep preemptible: a fired
	// control stops in-flight tasks at a safe point with
	// sim.ErrInterrupted (after checkpointing them to Checkpoints, when
	// that is also set). Already-completed task measurements are
	// unaffected.
	Interrupt *sim.InterruptCtl
	// Checkpoints, when non-nil, stores mid-task snapshots keyed by
	// task identity. Before simulating a task, RunTasks probes the
	// store and resumes from a checkpoint instead of starting over —
	// any process pointed at the same directory continues a preempted
	// task bit-identically.
	Checkpoints *snap.Store
}

func (o SweepOptions) withDefaults() SweepOptions {
	if o.StepN <= 0 {
		o.StepN = 1
	}
	if o.StepP <= 0 {
		o.StepP = 1
	}
	return o
}

// Sweep profiles kernel k across the {N, p} space on the given
// configuration. The kernel runs once per grid point; speedups are
// relative to the (max, max) GTO tuple. Points run concurrently on
// opts.Workers goroutines, each in-flight point on its own GPU drawn
// from a reset-verified pool: a kernel run is a pure function of
// (config, kernel, tuple), so the profile is bit-identical at any
// worker count.
//
// Sweep is exactly the one-shard instance of the plan pipeline
// (BuildPlan -> RunTasks -> MergeShards), so a sweep fanned out as
// plan shards across processes merges to the same Profile bit for bit
// — the property TestShardedSweepMatchesInProcess pins down.
func Sweep(cfg config.Config, k *trace.Kernel, opts SweepOptions) (*Profile, error) {
	opts = opts.withDefaults()
	plan := BuildPlan("", cfg, k, opts)
	ms, err := RunTasks(cfg, map[string]*trace.Kernel{k.Name: k}, plan.Tasks, opts)
	if err != nil {
		return nil, err
	}
	return MergeShards(k.Name, ms)
}

// Score implements the paper's Eq. 12 neighbourhood scoring at point
// (a, b): the weighted sum of speedups over the 3x3 neighbourhood,
// normalised by the weights of the neighbours present. Missing
// neighbours (boundary or unswept) are excluded from the normalisation,
// matching the paper's boundary handling.
func (pr *Profile) Score(a, b int, w0, w1, w2 float64) (float64, bool) {
	if _, ok := pr.Lookup(a, b); !ok {
		return 0, false
	}
	weightAt := func(k int) float64 {
		switch k {
		case 0:
			return w0
		case 1:
			return w1
		default:
			return w2
		}
	}
	var sum, norm float64
	for i := -1; i <= 1; i++ {
		for j := -1; j <= 1; j++ {
			pt, ok := pr.Lookup(a+i, b+j)
			if !ok {
				continue
			}
			w := weightAt(abs(i) + abs(j))
			sum += w * pt.Speedup
			norm += w
		}
	}
	if norm == 0 {
		return 0, false
	}
	return sum / norm, true
}

// BestScore returns the point with the highest Eq. 12 score and that
// score. Weights follow Table IV.
func (pr *Profile) BestScore(p config.PoiseParams) (Point, float64) {
	best := pr.Baseline
	bestScore := math.Inf(-1)
	for _, pt := range pr.Points {
		s, ok := pr.Score(pt.N, pt.P, p.ScoreW0, p.ScoreW1, p.ScoreW2)
		if !ok {
			continue
		}
		if s > bestScore {
			bestScore, best = s, pt
		}
	}
	return best, bestScore
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Store caches profiles on disk as JSON, keyed by kernel name and a
// caller-supplied tag (configuration digest), so expensive sweeps run
// once per configuration.
type Store struct {
	Dir string
}

func (s Store) path(tag, kernel string) string {
	return filepath.Join(s.Dir, fmt.Sprintf("%s_%s.json", tag, kernel))
}

// ErrCorrupt tags cache entries that exist but cannot be decoded
// (truncated writes, garbled JSON). Callers distinguish it from
// os.ErrNotExist with errors.Is; LoadOrSweep treats both as "no usable
// cache entry" and re-sweeps.
var ErrCorrupt = errors.New("corrupt profile cache entry")

// Load reads a cached profile; it returns os.ErrNotExist if absent and
// an ErrCorrupt-wrapping error if present but undecodable.
func (s Store) Load(tag, kernel string) (*Profile, error) {
	if s.Dir == "" {
		return nil, os.ErrNotExist
	}
	data, err := os.ReadFile(s.path(tag, kernel))
	if err != nil {
		return nil, err
	}
	var pr Profile
	if err := json.Unmarshal(data, &pr); err != nil {
		return nil, fmt.Errorf("profile: %s: %w (%v)", s.path(tag, kernel), ErrCorrupt, err)
	}
	if pr.Kernel == "" || len(pr.Points) == 0 {
		return nil, fmt.Errorf("profile: %s: %w (decoded to an empty profile)", s.path(tag, kernel), ErrCorrupt)
	}
	pr.buildIndex()
	return &pr, nil
}

// Save writes a profile to the cache. The write is crash-safe: the
// JSON goes to a temporary file in the same directory which is then
// renamed over the entry, so a crash mid-write leaves either the old
// entry or the new one, never a truncated file — the ErrCorrupt
// repair path stays a defence against external damage rather than the
// only thing standing between a crash and a poisoned cache.
func (s Store) Save(tag string, pr *Profile) error {
	if s.Dir == "" {
		return errors.New("profile: store has no directory")
	}
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(pr, "", " ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.Dir, pr.Kernel+".*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Chmod(0o644)
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), s.path(tag, pr.Kernel))
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("profile: saving %s: %w", s.path(tag, pr.Kernel), err)
	}
	return nil
}

// LoadOrSweep returns the cached profile or runs the sweep and caches
// it. A corrupt cache entry (ErrCorrupt) is treated like a miss: the
// sweep re-runs and Save overwrites the damaged file, so a truncated
// write from a crashed run can never abort later runs. With
// opts.Refine set the sweep is the adaptive pruned one, resuming from
// any cached refinement rounds (see refine.go); callers key pruned
// and exhaustive campaigns under different tags, since the cached
// profiles differ in which grid points they carry.
func (s Store) LoadOrSweep(tag string, cfg config.Config, k *trace.Kernel, opts SweepOptions) (*Profile, error) {
	if pr, err := s.Load(tag, k.Name); err == nil {
		return pr, nil
	}
	if opts.Refine != nil {
		return s.loadOrPrunedSweep(tag, cfg, k, opts)
	}
	pr, err := Sweep(cfg, k, opts)
	if err != nil {
		return nil, err
	}
	if s.Dir != "" {
		if err := s.Save(tag, pr); err != nil {
			return nil, err
		}
	}
	return pr, nil
}
