package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		got, err := Map(context.Background(), workers, 100, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: got %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapParallelMatchesSequential(t *testing.T) {
	fn := func(_ context.Context, i int) (int64, error) {
		// A task whose result depends only on its index (via SubSeed),
		// the contract every experiment task must satisfy.
		return SubSeed(42, int64(i)), nil
	}
	seq, err := Map(context.Background(), 1, 64, fn)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Map(context.Background(), 8, 64, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("index %d: sequential %d != parallel %d", i, seq[i], par[i])
		}
	}
}

func TestMapEmptyAndNilContext(t *testing.T) {
	got, err := Map(nil, 4, 0, func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil || got != nil {
		t.Fatalf("empty map: got %v, %v", got, err)
	}
	got, err = Map(nil, 4, 3, func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil || len(got) != 3 {
		t.Fatalf("nil ctx: got %v, %v", got, err)
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 8} {
		_, err := Map(context.Background(), workers, 50, func(_ context.Context, i int) (int, error) {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return 0, fmt.Errorf("task %d failed", i)
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		// With one worker the loop stops at the first failure; with many
		// the lowest-indexed failure must still win even if a later one
		// finished first.
		if got := err.Error(); got != "task 3 failed" {
			t.Fatalf("workers=%d: got error %q, want task 3", workers, got)
		}
	}
}

func TestMapErrorCancelsRemaining(t *testing.T) {
	var started atomic.Int64
	boom := errors.New("boom")
	_, err := Map(context.Background(), 2, 1000, func(ctx context.Context, i int) (int, error) {
		started.Add(1)
		if i == 0 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if n := started.Load(); n > 100 {
		t.Fatalf("error did not stop the pool: %d tasks started", n)
	}
}

func TestMapHonoursCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, 4, 10, func(_ context.Context, i int) (int, error) { return i, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestMapCancellationMidFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := Map(ctx, 2, 10_000, func(ctx context.Context, i int) (int, error) {
			ran.Add(1)
			time.Sleep(100 * time.Microsecond)
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("got %v, want context.Canceled", err)
		}
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	<-done
	if n := ran.Load(); n >= 10_000 {
		t.Fatalf("cancellation had no effect: all %d tasks ran", n)
	}
}

func TestMapSliceAndForEach(t *testing.T) {
	items := []string{"a", "bb", "ccc"}
	got, err := MapSlice(context.Background(), 2, items, func(_ context.Context, i int, s string) (int, error) {
		return len(s) + i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}

	var sum atomic.Int64
	if err := ForEach(context.Background(), 3, []int{1, 2, 3, 4}, func(_ context.Context, _ int, v int) error {
		sum.Add(int64(v))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 10 {
		t.Fatalf("ForEach sum = %d, want 10", sum.Load())
	}
}

func TestNumWorkers(t *testing.T) {
	if NumWorkers(0) < 1 {
		t.Fatal("NumWorkers(0) must be positive")
	}
	if NumWorkers(-3) < 1 {
		t.Fatal("NumWorkers(-3) must be positive")
	}
	if NumWorkers(7) != 7 {
		t.Fatal("explicit worker counts pass through")
	}
}

func TestSubSeedDeterministicAndDecorrelated(t *testing.T) {
	if SubSeed(1, 0) != SubSeed(1, 0) {
		t.Fatal("SubSeed is not a pure function")
	}
	seen := map[int64]bool{}
	for id := int64(0); id < 1000; id++ {
		s := SubSeed(7, id)
		if seen[s] {
			t.Fatalf("collision at id %d", id)
		}
		seen[s] = true
	}
	if SubSeed(1, 5) == SubSeed(2, 5) {
		t.Fatal("different bases must give different streams")
	}
}
