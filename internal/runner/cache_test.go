package runner

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheMemoises(t *testing.T) {
	var c Cache[string, int]
	calls := 0
	get := func() (int, error) { calls++; return 42, nil }
	for i := 0; i < 3; i++ {
		v, err := c.Get("k", get)
		if err != nil || v != 42 {
			t.Fatalf("got %d, %v", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestCacheSingleFlight(t *testing.T) {
	var c Cache[string, int]
	var computes atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, err := c.Get("shared", func() (int, error) {
				computes.Add(1)
				return 7, nil
			})
			if err != nil || v != 7 {
				t.Errorf("got %d, %v", v, err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times under contention, want 1", n)
	}
}

func TestCacheForgetsFailures(t *testing.T) {
	var c Cache[string, int]
	boom := errors.New("boom")
	if _, err := c.Get("k", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatal("failed entry was retained")
	}
	v, err := c.Get("k", func() (int, error) { return 9, nil })
	if err != nil || v != 9 {
		t.Fatalf("retry after failure: got %d, %v", v, err)
	}
}

func TestCacheLookup(t *testing.T) {
	var c Cache[string, int]
	if _, ok := c.Lookup("absent"); ok {
		t.Fatal("Lookup on empty cache reported a hit")
	}
	if _, err := c.Get("k", func() (int, error) { return 5, nil }); err != nil {
		t.Fatal(err)
	}
	v, ok := c.Lookup("k")
	if !ok || v != 5 {
		t.Fatalf("Lookup: got %d, %v", v, ok)
	}
}

func TestCacheIndependentKeysDoNotBlock(t *testing.T) {
	var c Cache[int, int]
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		c.Get(1, func() (int, error) { <-release; return 1, nil })
		close(done)
	}()
	// A different key must compute without waiting for key 1.
	v, err := c.Get(2, func() (int, error) { return 2, nil })
	if err != nil || v != 2 {
		t.Fatalf("independent key blocked: got %d, %v", v, err)
	}
	close(release)
	<-done
}

func TestOnceMemoisesValueAndError(t *testing.T) {
	var o Once[int]
	calls := 0
	for i := 0; i < 3; i++ {
		v, err := o.Do(func() (int, error) { calls++; return 11, nil })
		if err != nil || v != 11 {
			t.Fatalf("got %d, %v", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("Do ran %d times, want 1", calls)
	}

	var fe Once[int]
	boom := errors.New("boom")
	fe.Do(func() (int, error) { return 0, boom })
	if _, err := fe.Do(func() (int, error) { return 1, nil }); !errors.Is(err, boom) {
		t.Fatal("Once must memoise errors")
	}
}
