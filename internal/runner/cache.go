package runner

import "sync"

// Cache is a concurrency-safe memoising cache with single-flight
// semantics: the first Get for a key runs compute while concurrent
// callers for the same key block and share the outcome. Successful
// results are retained forever; failures are forgotten so a later Get
// may retry (a sweep aborted by cancellation must not poison the
// cache). The zero value is ready to use.
//
// The experiment harness keys profiled {N, p} solution spaces on
// kernel name with one of these, so a grid of parallel experiments
// sweeps each kernel exactly once no matter how many workers ask.
type Cache[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*cacheEntry[V]
}

type cacheEntry[V any] struct {
	ready chan struct{}
	val   V
	err   error
}

// Get returns the cached value for key, running compute to fill it on
// first use. compute runs outside the cache lock; concurrent Gets for
// different keys proceed independently.
func (c *Cache[K, V]) Get(key K, compute func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = map[K]*cacheEntry[V]{}
	}
	if e, ok := c.m[key]; ok {
		c.mu.Unlock()
		<-e.ready
		return e.val, e.err
	}
	e := &cacheEntry[V]{ready: make(chan struct{})}
	c.m[key] = e
	c.mu.Unlock()

	e.val, e.err = compute()
	if e.err != nil {
		c.mu.Lock()
		delete(c.m, key)
		c.mu.Unlock()
	}
	close(e.ready)
	return e.val, e.err
}

// Lookup returns the cached value without computing. It reports false
// for absent keys and for keys whose computation is still in flight.
func (c *Cache[K, V]) Lookup(key K) (V, bool) {
	c.mu.Lock()
	e, ok := c.m[key]
	c.mu.Unlock()
	if !ok {
		return *new(V), false
	}
	select {
	case <-e.ready:
		return e.val, e.err == nil
	default:
		return *new(V), false
	}
}

// Len reports the number of resident entries (including in-flight
// computations).
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Once memoises a single fallible computation: the experiment
// harness's dataset and model weights are built at most once even when
// many workers request them concurrently. Unlike Cache, an error is
// memoised too — retrying a deterministic training pipeline would
// fail identically, and callers need agreeing results.
type Once[V any] struct {
	once sync.Once
	val  V
	err  error
}

// Do returns the memoised result, running f on first call.
func (o *Once[V]) Do(f func() (V, error)) (V, error) {
	o.once.Do(func() { o.val, o.err = f() })
	return o.val, o.err
}
