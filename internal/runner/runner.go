// Package runner is the concurrent experiment-execution engine: a
// bounded worker pool that fans independent simulations out across
// GOMAXPROCS goroutines while keeping every observable result
// bit-identical to a sequential run.
//
// Determinism is the design constraint everything here serves. The
// simulator is a pure function of (configuration, kernel, policy), so
// parallel execution preserves results exactly as long as three rules
// hold, and this package enforces all three:
//
//  1. Tasks never share mutable state — each task builds its own GPU
//     and policy instance (Map hands the task only its index).
//  2. Results aggregate in task-index order, never completion order
//     (Map returns a slice indexed like the input).
//  3. Randomised work derives its streams as a pure function of the
//     base seed and a stable identifier — SubSeed(base, id) for
//     decorrelated streams (the workload catalogue), explicit
//     base-plus-index offsets where a canonical seed family must be
//     preserved (random-restart trials) — never from a shared
//     generator whose consumption order would depend on scheduling.
//
// Errors propagate like a sequential loop's: the error of the
// lowest-indexed failing task wins, and the shared Context cancels the
// remaining work so a failing sweep aborts quickly.
package runner

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// NumWorkers normalises a requested worker count: values <= 0 select
// GOMAXPROCS, everything else is returned unchanged.
func NumWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map runs fn(ctx, i) for every i in [0, n) on at most workers
// goroutines (workers <= 0 means GOMAXPROCS) and returns the results
// in index order. The first error — "first" by task index, matching
// the sequential loop it replaces — cancels the derived context and is
// returned after in-flight tasks drain. A nil ctx is treated as
// context.Background(); cancelling ctx stops unstarted tasks and
// returns the cancellation cause.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return nil, ctx.Err()
	}
	w := NumWorkers(workers)
	if w > n {
		w = n
	}
	out := make([]T, n)
	if w == 1 {
		// Dedicated sequential path: no goroutines, so a single-worker
		// run is byte-for-byte the loop it replaces (and trivially
		// race-free under the race detector).
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := fn(ctx, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	tctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu      sync.Mutex
		errIdx  = -1
		taskErr error
		next    atomic.Int64
		wg      sync.WaitGroup
	)
	next.Store(-1)
	fail := func(i int, err error) {
		mu.Lock()
		if errIdx == -1 || i < errIdx {
			errIdx, taskErr = i, err
		}
		mu.Unlock()
		cancel()
	}
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if tctx.Err() != nil {
					return
				}
				v, err := fn(tctx, i)
				if err != nil {
					fail(i, err)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if taskErr != nil {
		return nil, taskErr
	}
	// The parent may have been cancelled mid-run, leaving holes in out;
	// report that rather than returning a partial, hole-filled slice.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// MapSlice is Map over a slice: fn receives each item along with its
// index, and the results come back in input order.
func MapSlice[S, T any](ctx context.Context, workers int, items []S, fn func(ctx context.Context, i int, item S) (T, error)) ([]T, error) {
	return Map(ctx, workers, len(items), func(ctx context.Context, i int) (T, error) {
		return fn(ctx, i, items[i])
	})
}

// ForEach runs fn over every item for its side effects only.
func ForEach[S any](ctx context.Context, workers int, items []S, fn func(ctx context.Context, i int, item S) error) error {
	_, err := MapSlice(ctx, workers, items, func(ctx context.Context, i int, item S) (struct{}, error) {
		return struct{}{}, fn(ctx, i, item)
	})
	return err
}

// SubSeed derives the seed for task id of a run seeded with base: a
// splitmix64 finalisation of the pair, so adjacent ids yield
// decorrelated streams and the mapping is a pure function — the
// property that keeps seeded parallel runs identical to sequential
// ones regardless of which worker picks the task up.
func SubSeed(base, id int64) int64 {
	x := uint64(base)*0x9e3779b97f4a7c15 + uint64(id)*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}
