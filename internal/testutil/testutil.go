// Package testutil provides the shared fixtures of the test suite:
// scaled-down GPU configurations and miniature kernels with known
// properties, so unit and integration tests run in milliseconds while
// exercising the same code paths as the full experiments.
package testutil

import (
	"poise/internal/config"
	"poise/internal/sim"
	"poise/internal/trace"
)

// TinyConfig returns a 2-SM GPU with the baseline per-SM organisation
// and a proportionally scaled memory side — small enough for unit
// tests, structurally identical to the experiment platform.
func TinyConfig() config.Config {
	return config.Default().Scale(2)
}

// TinyParams returns Poise parameters shrunk 20x so inference epochs
// complete several times within a tiny kernel.
func TinyParams() config.PoiseParams {
	return config.DefaultPoise().ScaleTiming(20)
}

// ThrashKernel builds a kernel with strong intra-warp temporal locality
// whose combined footprint thrashes the tiny L1 at full TLP but fits
// when throttled: the canonical Poise-friendly shape. Deterministic;
// ~blocks*8 warps, each iters iterations of a 2-load body.
func ThrashKernel(name string, footprintLines, iters, blocks int) *trace.Kernel {
	b := &trace.BodyBuilder{}
	b.Load(1)
	b.ALU(2)
	b.Load(1)
	b.ALU(2)
	k := &trace.Kernel{
		Name: name,
		Body: b.Body(),
		Patterns: []trace.Pattern{
			trace.PrivateSweep{Region: 901, Lines: footprintLines, Step: 1},
			trace.PrivateSweep{Region: 902, Lines: footprintLines / 2, Step: 1, Dwell: 4},
		},
		Iters:         iters,
		WarpsPerBlock: 8,
		Blocks:        blocks,
		Seed:          7,
	}
	return k
}

// StreamKernel builds a pure-streaming kernel with no recoverable
// locality: throttling cannot help it.
func StreamKernel(name string, iters, blocks int) *trace.Kernel {
	b := &trace.BodyBuilder{}
	b.Load(2)
	b.ALU(3)
	return &trace.Kernel{
		Name:          name,
		Body:          b.Body(),
		Patterns:      []trace.Pattern{trace.Stream{Region: 903, WrapLines: 1 << 15}},
		Iters:         iters,
		WarpsPerBlock: 8,
		Blocks:        blocks,
		Seed:          8,
	}
}

// ComputeKernel builds a compute-bound kernel whose In exceeds the
// compute-intensive cut-off (one load per 60+ instructions).
func ComputeKernel(name string, iters, blocks int) *trace.Kernel {
	b := &trace.BodyBuilder{}
	b.Load(4)
	b.ALU(64)
	return &trace.Kernel{
		Name:          name,
		Body:          b.Body(),
		Patterns:      []trace.Pattern{trace.Stream{Region: 904, WrapLines: 1 << 14, Dwell: 16}},
		Iters:         iters,
		WarpsPerBlock: 8,
		Blocks:        blocks,
		Seed:          9,
	}
}

// SharedKernel builds a kernel dominated by inter-warp reuse of a
// shared region.
func SharedKernel(name string, sharedLines, iters, blocks int) *trace.Kernel {
	b := &trace.BodyBuilder{}
	b.Load(1)
	b.ALU(2)
	return &trace.Kernel{
		Name:          name,
		Body:          b.Body(),
		Patterns:      []trace.Pattern{trace.SharedSweep{Region: 905, Lines: sharedLines, Step: 1, Dwell: 2}},
		Iters:         iters,
		WarpsPerBlock: 8,
		Blocks:        blocks,
		Seed:          10,
	}
}

// Workload wraps kernels into a one-benchmark workload.
func Workload(name string, ks ...*trace.Kernel) *sim.Workload {
	return &sim.Workload{Name: name, Kernels: ks}
}

// RunTiny runs a kernel on the tiny GPU under a policy and panics on
// error (tests use the explicit API when they assert on errors).
func RunTiny(k *trace.Kernel, p sim.Policy) sim.KernelResult {
	g, err := sim.New(TinyConfig())
	if err != nil {
		panic(err)
	}
	res, err := g.Run(k, p, sim.RunOptions{})
	if err != nil {
		panic(err)
	}
	return res
}
