package testutil

import (
	"errors"
	"net/http"
	"sync/atomic"
	"time"
)

// ErrKilled is what a KillSwitch returns once it fires — tests match
// on it to tell a deliberate crash from a real failure.
var ErrKilled = errors.New("testutil: worker killed by kill switch")

// KillSwitch simulates a worker crashing after completing a fixed
// number of tasks. Wire Hook into fleet.Worker.BeforeTask: the switch
// lets After tasks through, then returns ErrKilled forever — the
// worker stops mid-lease, holding whatever it had not finished.
type KillSwitch struct {
	after int64
	seen  atomic.Int64
	fired atomic.Bool
}

// NewKillSwitch returns a switch that fires before task after+1.
func NewKillSwitch(after int) *KillSwitch {
	return &KillSwitch{after: int64(after)}
}

// Hook is a fleet.Worker.BeforeTask function.
func (k *KillSwitch) Hook(done int) error {
	if k.seen.Add(1) > k.after {
		k.fired.Store(true)
		return ErrKilled
	}
	return nil
}

// Fired reports whether the switch has killed its worker.
func (k *KillSwitch) Fired() bool { return k.fired.Load() }

// FlakyTransport wraps an http.RoundTripper with deterministic
// faults, for driving a fleet worker's retry path:
//
//   - FailEvery > 0: every FailEvery-th request fails before reaching
//     the server — a connection refused.
//   - DropReplyEvery > 0: every DropReplyEvery-th request reaches the
//     server and takes full effect there, but its response is
//     discarded and an error returned — the retry then re-delivers a
//     completion the coordinator has already recorded, which is the
//     duplicate-result path.
//   - Delay: added before every delivered request — a slow link.
//
// The two counters are independent, and count only requests the other
// fault let through, so composing them stays deterministic.
type FlakyTransport struct {
	Base           http.RoundTripper
	FailEvery      int
	DropReplyEvery int
	Delay          time.Duration

	sent      atomic.Int64
	delivered atomic.Int64
	// Dropped counts replies discarded after delivery; tests assert it
	// moved to prove the duplicate path actually ran.
	Dropped atomic.Int64
}

// ErrFlaky is the synthetic transport error.
var ErrFlaky = errors.New("testutil: flaky transport fault")

// RoundTrip implements http.RoundTripper.
func (t *FlakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	n := t.sent.Add(1)
	if t.FailEvery > 0 && n%int64(t.FailEvery) == 0 {
		return nil, ErrFlaky
	}
	if t.Delay > 0 {
		time.Sleep(t.Delay)
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	d := t.delivered.Add(1)
	if t.DropReplyEvery > 0 && d%int64(t.DropReplyEvery) == 0 {
		resp.Body.Close()
		t.Dropped.Add(1)
		return nil, ErrFlaky
	}
	return resp, nil
}
