package glm

import (
	"math"
	"testing"

	"poise/internal/linalg"
	"poise/internal/stats"
)

// synthCounts draws counts with mean exp(x·beta); with alpha > 0 the
// counts are NB-overdispersed via a gamma-mixed Poisson.
func synthCounts(rng *stats.RNG, x *linalg.Mat, beta []float64, alpha float64) []float64 {
	y := make([]float64, x.Rows)
	for i := 0; i < x.Rows; i++ {
		mu := math.Exp(linalg.Dot(beta, x.Data[i*x.Cols:(i+1)*x.Cols]))
		lambda := mu
		if alpha > 0 {
			// Gamma(shape=1/alpha, scale=alpha*mu) has mean mu and the
			// NB2 variance profile when mixed into a Poisson.
			shape := 1 / alpha
			lambda = gammaDraw(rng, shape) * alpha * mu
		}
		y[i] = poissonDraw(rng, lambda)
	}
	return y
}

func poissonDraw(rng *stats.RNG, lambda float64) float64 {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		// Normal approximation for large rates.
		v := lambda + math.Sqrt(lambda)*rng.NormFloat64()
		if v < 0 {
			v = 0
		}
		return math.Round(v)
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return float64(k)
		}
		k++
	}
}

func gammaDraw(rng *stats.RNG, shape float64) float64 {
	// Marsaglia-Tsang for shape >= 1; boost for shape < 1.
	if shape < 1 {
		u := rng.Float64()
		return gammaDraw(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x || math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

func designMatrix(rng *stats.RNG, n, p int) *linalg.Mat {
	x := linalg.NewMat(n, p)
	for i := 0; i < n; i++ {
		for j := 0; j < p-1; j++ {
			x.Set(i, j, rng.Float64()*2-1)
		}
		x.Set(i, p-1, 1) // intercept column last, like the Poise vector
	}
	return x
}

func TestPoissonRecoversCoefficients(t *testing.T) {
	rng := stats.NewRNG(101)
	truth := []float64{0.8, -0.5, 1.2}
	x := designMatrix(rng, 800, len(truth))
	y := synthCounts(rng, x, truth, 0)
	m, err := Fit(Poisson, x, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Converged {
		t.Fatal("IRLS did not converge")
	}
	for j, want := range truth {
		if math.Abs(m.Coef[j]-want) > 0.12 {
			t.Fatalf("coef[%d] = %v, want ~%v (all: %v)", j, m.Coef[j], want, m.Coef)
		}
	}
}

func TestNegativeBinomialRecoversCoefficients(t *testing.T) {
	rng := stats.NewRNG(202)
	truth := []float64{0.6, -0.4, 1.5}
	x := designMatrix(rng, 1500, len(truth))
	y := synthCounts(rng, x, truth, 0.4)
	m, err := Fit(NegativeBinomial, x, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for j, want := range truth {
		if math.Abs(m.Coef[j]-want) > 0.15 {
			t.Fatalf("coef[%d] = %v, want ~%v (all: %v)", j, m.Coef[j], want, m.Coef)
		}
	}
	if m.Alpha < 0.1 || m.Alpha > 1.2 {
		t.Fatalf("dispersion = %v, want around 0.4", m.Alpha)
	}
}

func TestNBFixedDispersion(t *testing.T) {
	rng := stats.NewRNG(33)
	truth := []float64{0.5, 1.0}
	x := designMatrix(rng, 400, len(truth))
	y := synthCounts(rng, x, truth, 0.2)
	m, err := Fit(NegativeBinomial, x, y, Options{Alpha: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if m.Alpha != 0.2 {
		t.Fatalf("fixed dispersion changed: %v", m.Alpha)
	}
}

func TestPredictMatchesLink(t *testing.T) {
	m := &Model{Family: Poisson, Coef: []float64{0.5, -1}}
	got := m.Predict([]float64{2, 1})
	want := math.Exp(0.5*2 - 1)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Predict = %v, want %v", got, want)
	}
}

func TestPredictClampsEta(t *testing.T) {
	m := &Model{Family: Poisson, Coef: []float64{1000}}
	if got := m.Predict([]float64{1000}); math.IsInf(got, 0) {
		t.Fatal("Predict must clamp the linear predictor")
	}
}

func TestFitInputValidation(t *testing.T) {
	x := linalg.NewMat(3, 2)
	if _, err := Fit(Poisson, x, []float64{1, 2}, Options{}); err == nil {
		t.Fatal("row/response mismatch must error")
	}
	if _, err := Fit(Poisson, x, []float64{1, -2, 0}, Options{}); err == nil {
		t.Fatal("negative response must error")
	}
	if _, err := Fit(Poisson, x, []float64{1, math.NaN(), 0}, Options{}); err == nil {
		t.Fatal("NaN response must error")
	}
	tall := linalg.NewMat(1, 2)
	if _, err := Fit(Poisson, tall, []float64{1}, Options{}); err == nil {
		t.Fatal("p > n must error")
	}
	if _, err := Fit(Family(99), x, []float64{1, 2, 3}, Options{}); err == nil {
		t.Fatal("unknown family must error")
	}
}

func TestDevianceNonNegativeAndR2(t *testing.T) {
	rng := stats.NewRNG(7)
	truth := []float64{1.0, 0.7}
	x := designMatrix(rng, 300, len(truth))
	y := synthCounts(rng, x, truth, 0)
	m, err := Fit(Poisson, x, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Deviance < 0 {
		t.Fatalf("deviance negative: %v", m.Deviance)
	}
	if m.NullDev < m.Deviance {
		t.Fatalf("null deviance %v below residual %v — model worse than intercept", m.NullDev, m.Deviance)
	}
	r2 := m.PseudoR2()
	if r2 <= 0 || r2 > 1 {
		t.Fatalf("pseudo-R2 = %v out of (0,1]", r2)
	}
}

func TestNBDevianceUnitCases(t *testing.T) {
	// y == mu gives zero deviance contribution for both families.
	if d := unitDeviance(Poisson, 0, 5, 5); math.Abs(d) > 1e-12 {
		t.Fatalf("Poisson deviance at y=mu: %v", d)
	}
	if d := unitDeviance(NegativeBinomial, 0.5, 5, 5); math.Abs(d) > 1e-9 {
		t.Fatalf("NB deviance at y=mu: %v", d)
	}
	// y == 0 must still be non-negative.
	if d := unitDeviance(NegativeBinomial, 0.5, 0, 3); d < 0 {
		t.Fatalf("NB deviance negative at y=0: %v", d)
	}
	if d := unitDeviance(Poisson, 0, 0, 3); d < 0 {
		t.Fatalf("Poisson deviance negative at y=0: %v", d)
	}
}

func TestFamilyString(t *testing.T) {
	if Poisson.String() != "poisson" || NegativeBinomial.String() != "negative-binomial" {
		t.Fatal("family names wrong")
	}
}

func TestPredictAll(t *testing.T) {
	m := &Model{Family: Poisson, Coef: []float64{1}}
	x := linalg.NewMat(3, 1)
	x.Set(0, 0, 0)
	x.Set(1, 0, 1)
	x.Set(2, 0, 2)
	got := m.PredictAll(x)
	for i, want := range []float64{1, math.E, math.E * math.E} {
		if math.Abs(got[i]-want) > 1e-9 {
			t.Fatalf("PredictAll[%d] = %v, want %v", i, got[i], want)
		}
	}
}
