// Package glm implements the generalized linear models the paper's
// machine-learning framework relies on: Poisson regression and —
// Poise's choice — Negative Binomial regression with a log link,
// fitted by iteratively reweighted least squares (IRLS). The negative
// binomial family predicts discrete non-negative targets (warp counts)
// and allows overdispersion, which is exactly the rationale given in
// paper §V-D.
package glm

import (
	"errors"
	"fmt"
	"math"

	"poise/internal/linalg"
)

// Family selects the response distribution of the GLM.
type Family int

const (
	// Poisson: Var(y) = mu.
	Poisson Family = iota
	// NegativeBinomial: Var(y) = mu + alpha*mu^2 (NB2 parameterisation).
	NegativeBinomial
)

func (f Family) String() string {
	switch f {
	case Poisson:
		return "poisson"
	case NegativeBinomial:
		return "negative-binomial"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Options tunes the IRLS fit.
type Options struct {
	MaxIter   int     // IRLS iterations (default 100)
	Tol       float64 // convergence tolerance on coefficient change (default 1e-8)
	Ridge     float64 // diagonal stabiliser for the normal equations (default 1e-8)
	Alpha     float64 // NB dispersion; <= 0 means estimate by method of moments
	AlphaIter int     // outer iterations for dispersion estimation (default 8)
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	if o.Ridge < 0 {
		o.Ridge = 0
	} else if o.Ridge == 0 {
		o.Ridge = 1e-8
	}
	if o.AlphaIter <= 0 {
		o.AlphaIter = 8
	}
	return o
}

// Model is a fitted GLM with a log link: ln E[y] = Xβ.
type Model struct {
	Family Family
	Coef   []float64 // fitted weights, one per feature column
	Alpha  float64   // NB dispersion (0 for Poisson)

	Iters     int     // IRLS iterations used
	Converged bool    // whether the coefficient change dropped below Tol
	Deviance  float64 // residual deviance
	NullDev   float64 // deviance of the intercept-only model
	NumObs    int
	LogLik    float64 // log-likelihood at the fitted coefficients
}

// PseudoR2 returns McFadden-style 1 - deviance/null_deviance, a rough
// goodness-of-fit indicator for count models.
func (m *Model) PseudoR2() float64 {
	if m.NullDev == 0 {
		return 0
	}
	return 1 - m.Deviance/m.NullDev
}

// Predict returns exp(x·β), the expected response for feature vector x.
func (m *Model) Predict(x []float64) float64 {
	return math.Exp(clampEta(linalg.Dot(m.Coef, x)))
}

// PredictAll applies Predict to each row of X.
func (m *Model) PredictAll(x *linalg.Mat) []float64 {
	out := make([]float64, x.Rows)
	for i := 0; i < x.Rows; i++ {
		out[i] = m.Predict(x.Data[i*x.Cols : (i+1)*x.Cols])
	}
	return out
}

const (
	etaMax = 30.0 // exp(30) ~ 1e13: beyond any warp count; keeps IRLS finite
	etaMin = -30.0
)

func clampEta(eta float64) float64 {
	if eta > etaMax {
		return etaMax
	}
	if eta < etaMin {
		return etaMin
	}
	return eta
}

// Fit fits a log-link GLM of family fam to the design matrix x
// (rows = observations, cols = features; include an explicit constant
// column for an intercept) and non-negative responses y.
func Fit(fam Family, x *linalg.Mat, y []float64, opts Options) (*Model, error) {
	opts = opts.withDefaults()
	n, p := x.Rows, x.Cols
	if n != len(y) {
		return nil, fmt.Errorf("glm: %d rows but %d responses", n, len(y))
	}
	if n == 0 {
		return nil, errors.New("glm: no observations")
	}
	if n < p {
		return nil, fmt.Errorf("glm: %d observations cannot identify %d features", n, p)
	}
	for i, v := range y {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("glm: response %d = %v is not a valid count", i, v)
		}
	}

	switch fam {
	case Poisson:
		coef, iters, conv, err := irls(x, y, 0, opts)
		if err != nil {
			return nil, err
		}
		m := &Model{Family: Poisson, Coef: coef, Iters: iters, Converged: conv, NumObs: n}
		m.finishStats(x, y)
		return m, nil
	case NegativeBinomial:
		return fitNB(x, y, opts)
	default:
		return nil, fmt.Errorf("glm: unknown family %v", fam)
	}
}

// fitNB alternates IRLS for the coefficients with a method-of-moments
// update of the dispersion alpha, the standard profile approach.
func fitNB(x *linalg.Mat, y []float64, opts Options) (*Model, error) {
	alpha := opts.Alpha
	estimate := alpha <= 0
	if estimate {
		alpha = 0.1 // neutral starting overdispersion
	}
	var (
		coef  []float64
		iters int
		conv  bool
		err   error
	)
	outer := 1
	if estimate {
		outer = opts.AlphaIter
	}
	for round := 0; round < outer; round++ {
		coef, iters, conv, err = irls(x, y, alpha, opts)
		if err != nil {
			return nil, err
		}
		if !estimate {
			break
		}
		next := momentAlpha(x, y, coef)
		if math.Abs(next-alpha) < 1e-6 {
			alpha = next
			break
		}
		alpha = next
	}
	m := &Model{Family: NegativeBinomial, Coef: coef, Alpha: alpha,
		Iters: iters, Converged: conv, NumObs: len(y)}
	m.finishStats(x, y)
	return m, nil
}

// momentAlpha estimates the NB2 dispersion via the auxiliary moment
// regression alpha = mean[((y-mu)^2 - mu) / mu^2], floored at a small
// positive value (an alpha of exactly zero reduces NB to Poisson).
func momentAlpha(x *linalg.Mat, y, coef []float64) float64 {
	var s float64
	n := 0
	for i := 0; i < x.Rows; i++ {
		row := x.Data[i*x.Cols : (i+1)*x.Cols]
		mu := math.Exp(clampEta(linalg.Dot(coef, row)))
		if mu < 1e-8 {
			continue
		}
		d := y[i] - mu
		s += (d*d - mu) / (mu * mu)
		n++
	}
	if n == 0 {
		return 1e-6
	}
	a := s / float64(n)
	if a < 1e-6 {
		a = 1e-6
	}
	if a > 10 {
		a = 10
	}
	return a
}

// irls runs iteratively reweighted least squares for a log link. With
// alpha == 0 the working weights are Poisson (w = mu); otherwise NB2
// (w = mu / (1 + alpha*mu)).
func irls(x *linalg.Mat, y []float64, alpha float64, opts Options) (coef []float64, iters int, converged bool, err error) {
	n, p := x.Rows, x.Cols
	coef = make([]float64, p)
	// Start from the log-mean intercept if a constant-ish column exists;
	// otherwise zeros are fine because eta is clamped.
	meanY := 0.0
	for _, v := range y {
		meanY += v
	}
	meanY /= float64(n)
	if meanY > 0 {
		// Put the starting mass on the last column when it is constant
		// (our feature vectors carry the intercept last, Table II x8).
		constCol := -1
		for j := 0; j < p; j++ {
			isConst := true
			v0 := x.At(0, j)
			for i := 1; i < n; i++ {
				if x.At(i, j) != v0 {
					isConst = false
					break
				}
			}
			if isConst && v0 != 0 {
				constCol = j
				break
			}
		}
		if constCol >= 0 {
			coef[constCol] = math.Log(meanY) / x.At(0, constCol)
		}
	}

	w := make([]float64, n)
	z := make([]float64, n)
	for iter := 0; iter < opts.MaxIter; iter++ {
		iters = iter + 1
		for i := 0; i < n; i++ {
			row := x.Data[i*p : (i+1)*p]
			eta := clampEta(linalg.Dot(coef, row))
			mu := math.Exp(eta)
			if mu < 1e-10 {
				mu = 1e-10
			}
			wi := mu
			if alpha > 0 {
				wi = mu / (1 + alpha*mu)
			}
			w[i] = wi
			z[i] = eta + (y[i]-mu)/mu
		}
		xtwx, e := linalg.XtWX(x, w)
		if e != nil {
			return nil, iters, false, e
		}
		linalg.Ridge(xtwx, opts.Ridge)
		xtwz, e := linalg.XtWz(x, w, z)
		if e != nil {
			return nil, iters, false, e
		}
		next, e := linalg.SolveSPD(xtwx, xtwz)
		if e != nil {
			return nil, iters, false, fmt.Errorf("glm: IRLS solve failed: %w", e)
		}
		var delta float64
		for j := range next {
			delta += math.Abs(next[j] - coef[j])
		}
		coef = next
		if delta < opts.Tol {
			converged = true
			break
		}
	}
	return coef, iters, converged, nil
}

// finishStats computes deviance, null deviance and log-likelihood for a
// fitted model.
func (m *Model) finishStats(x *linalg.Mat, y []float64) {
	mu := m.PredictAll(x)
	meanY := 0.0
	for _, v := range y {
		meanY += v
	}
	meanY /= float64(len(y))
	if meanY <= 0 {
		meanY = 1e-10
	}
	var dev, nullDev, ll float64
	for i, yi := range y {
		dev += unitDeviance(m.Family, m.Alpha, yi, mu[i])
		nullDev += unitDeviance(m.Family, m.Alpha, yi, meanY)
		ll += logLik(m.Family, m.Alpha, yi, mu[i])
	}
	m.Deviance = dev
	m.NullDev = nullDev
	m.LogLik = ll
}

// unitDeviance is the per-observation deviance contribution.
func unitDeviance(fam Family, alpha, y, mu float64) float64 {
	if mu < 1e-10 {
		mu = 1e-10
	}
	switch fam {
	case Poisson:
		if y == 0 {
			return 2 * mu
		}
		return 2 * (y*math.Log(y/mu) - (y - mu))
	case NegativeBinomial:
		if alpha <= 0 {
			return unitDeviance(Poisson, 0, y, mu)
		}
		ia := 1 / alpha
		t2 := (y + ia) * math.Log((y+ia)/(mu+ia))
		if y == 0 {
			return -2 * t2 // y*log(y/mu) -> 0 as y -> 0
		}
		return 2 * (y*math.Log(y/mu) - t2)
	}
	return 0
}

// logLik is the per-observation log-likelihood (up to y-only constants
// for NB, which cancel in comparisons between fits on the same data).
func logLik(fam Family, alpha, y, mu float64) float64 {
	if mu < 1e-10 {
		mu = 1e-10
	}
	switch fam {
	case Poisson:
		lg, _ := math.Lgamma(y + 1)
		return y*math.Log(mu) - mu - lg
	case NegativeBinomial:
		if alpha <= 0 {
			return logLik(Poisson, 0, y, mu)
		}
		ia := 1 / alpha
		lgNum, _ := math.Lgamma(y + ia)
		lgDen1, _ := math.Lgamma(y + 1)
		lgDen2, _ := math.Lgamma(ia)
		return lgNum - lgDen1 - lgDen2 +
			y*math.Log(alpha*mu/(1+alpha*mu)) - ia*math.Log(1+alpha*mu)
	}
	return 0
}
