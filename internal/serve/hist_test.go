package serve

import "testing"

// TestHistBatchMatchesObserve pins the batching refactor: a histBatch
// flushed into a histogram must leave it indistinguishable from one
// fed the same values through per-observation Observe calls.
func TestHistBatchMatchesObserve(t *testing.T) {
	values := []int64{0, -7, 1, 2, 3, 500, 501, 1 << 20, 1<<20 + 1, 1 << 40, 999, 1000}

	var direct histogram
	for _, v := range values {
		direct.Observe(v)
	}

	var batched histogram
	var hb histBatch
	for i, v := range values {
		hb.Observe(v)
		if i == len(values)/2 {
			hb.FlushTo(&batched) // mid-stream flush: reuse after reset
		}
	}
	hb.FlushTo(&batched)
	hb.FlushTo(&batched) // empty flush is a no-op

	if got, want := batched.count.Load(), direct.count.Load(); got != want {
		t.Fatalf("batched count = %d, want %d", got, want)
	}
	for b := range direct.buckets {
		if got, want := batched.buckets[b].Load(), direct.buckets[b].Load(); got != want {
			t.Fatalf("bucket %d: batched = %d, want %d", b, got, want)
		}
	}
	for _, q := range []float64{0.25, 0.50, 0.90, 0.99, 1.0} {
		if got, want := batched.Quantile(q), direct.Quantile(q); got != want {
			t.Fatalf("Quantile(%g): batched = %d, want %d", q, got, want)
		}
	}
	if hb.n != 0 {
		t.Fatalf("histBatch not reset after flush: n = %d", hb.n)
	}
	for i, c := range hb.counts {
		if c != 0 {
			t.Fatalf("histBatch bucket %d not reset after flush: %d", i, c)
		}
	}
}
