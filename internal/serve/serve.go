// Package serve is Poise's decision service: the request-path face of
// the repo, where everything else is the batch path. The paper's
// deliverable is tiny — trained GLM weights plus a per-workload static
// policy table — and this package serves it: a Decider answers
// "feature vector → (N, p)" from many concurrent callers with zero
// steady-state allocations, memoising per-workload decisions keyed by
// trace-signature digests; a Server exposes the decision path over
// HTTP+JSONL (/decide, /table, /ingest, /stats) with the transport
// idioms of internal/fleet (bounded request bodies, backoff client,
// graceful shutdown); and a Retrainer closes the online-adaptation
// loop — ingested traces append to a versioned sample log and fold
// into poise.Train, hot-swapping the active weights atomically while
// in-flight decisions drain on the old model.
//
// Determinism contract: retraining is a pure function of the sample
// log prefix, so a fixed ingest order yields an identical final
// weights file regardless of how the background retrainer batches the
// work — and a restart over the same log reconverges to the same
// model.
package serve

// Stats is the service's counter snapshot, served by /stats.
type Stats struct {
	// Decisions served (memoised or not), and the table-cache split.
	Decisions   int64 `json:"decisions"`
	CacheHits   int64 `json:"cacheHits"`
	CacheMisses int64 `json:"cacheMisses"`

	// Online-adaptation loop.
	IngestedRecords int64 `json:"ingestedRecords"`
	TotalSamples    int64 `json:"totalSamples"`
	Retrains        int64 `json:"retrains"`
	RetrainErrors   int64 `json:"retrainErrors"`

	// WeightsVersion counts hot-swaps: 1 is the boot model, each
	// successful retrain increments it.
	WeightsVersion int64 `json:"weightsVersion"`

	// Decision latency over the service lifetime, at log2-bucket
	// resolution (an upper bound of the bucket the quantile lands in).
	P50LatencyNS int64 `json:"p50LatencyNS"`
	P99LatencyNS int64 `json:"p99LatencyNS"`
}
