package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client talks to a decision service with the fleet worker's transport
// discipline: connection-level errors retry with exponential backoff
// (a service still binding its port, a reply dropped mid-transfer),
// HTTP-level errors fail immediately — the service answered, so the
// request itself is wrong. Every request here is idempotent except
// /ingest, whose retry on a *connection* error is still safe: the
// request never reached the service.
type Client struct {
	// Base is the service root, e.g. "http://127.0.0.1:9666".
	Base string
	// HTTP is the underlying client (nil = 30s timeout default).
	HTTP *http.Client
	// Retries bounds transport attempts (<= 0 means 10).
	Retries int
}

func (c *Client) client() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// Decide resolves a batch of feature vectors in one round trip,
// preserving order.
func (c *Client) Decide(ctx context.Context, reqs []DecideRequest) ([]DecideReply, error) {
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for _, req := range reqs {
		if err := enc.Encode(req); err != nil {
			return nil, err
		}
	}
	data, err := c.do(ctx, http.MethodPost, "/decide", body.Bytes())
	if err != nil {
		return nil, err
	}
	br := bufio.NewReader(bytes.NewReader(data))
	var hdr decideHeader
	if err := decodeLine(br, &hdr); err != nil {
		return nil, fmt.Errorf("serve: decide reply header: %w", err)
	}
	if hdr.Serve != "decide" {
		return nil, fmt.Errorf("serve: unexpected reply kind %q", hdr.Serve)
	}
	replies := make([]DecideReply, hdr.Count)
	for i := range replies {
		if err := decodeLine(br, &replies[i]); err != nil {
			return nil, fmt.Errorf("serve: decide reply line %d/%d: %w", i+1, hdr.Count, err)
		}
	}
	return replies, nil
}

// IngestRecord submits a pre-characterised record.
func (c *Client) IngestRecord(ctx context.Context, rec Record) (IngestReply, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return IngestReply{}, err
	}
	return c.ingest(ctx, body)
}

// IngestTrace submits a raw poisetrace container (optionally gzipped).
func (c *Client) IngestTrace(ctx context.Context, raw []byte) (IngestReply, error) {
	return c.ingest(ctx, raw)
}

func (c *Client) ingest(ctx context.Context, body []byte) (IngestReply, error) {
	data, err := c.do(ctx, http.MethodPost, "/ingest", body)
	if err != nil {
		return IngestReply{}, err
	}
	var rep IngestReply
	if err := json.Unmarshal(bytes.TrimSpace(data), &rep); err != nil {
		return IngestReply{}, fmt.Errorf("serve: ingest reply: %w", err)
	}
	return rep, nil
}

// Table fetches the static policy table text.
func (c *Client) Table(ctx context.Context) (string, error) {
	data, err := c.do(ctx, http.MethodGet, "/table", nil)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// Stats fetches the service counters.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	data, err := c.do(ctx, http.MethodGet, "/stats", nil)
	if err != nil {
		return Stats{}, err
	}
	var st Stats
	if err := json.Unmarshal(bytes.TrimSpace(data), &st); err != nil {
		return Stats{}, fmt.Errorf("serve: stats reply: %w", err)
	}
	return st, nil
}

func decodeLine(br *bufio.Reader, v any) error {
	line, err := br.ReadBytes('\n')
	if len(line) == 0 && err != nil {
		return err
	}
	return json.Unmarshal(bytes.TrimSpace(line), v)
}

func (c *Client) do(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	retries := c.Retries
	if retries <= 0 {
		retries = 10
	}
	backoff := 50 * time.Millisecond
	var lastErr error
	for attempt := 0; attempt < retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
		}
		req, err := http.NewRequestWithContext(ctx, method, strings.TrimRight(c.Base, "/")+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		resp, err := c.client().Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("serve: %s %s: %s: %s", method, path, resp.Status, strings.TrimSpace(string(data)))
		}
		return data, nil
	}
	return nil, fmt.Errorf("serve: %s %s: giving up after %d attempts: %w", method, path, retries, lastErr)
}
