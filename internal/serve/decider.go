package serve

import (
	"sync"
	"sync/atomic"

	"poise/internal/poise"
)

// MaxTableN bounds the per-key precomputed decision tables: one
// Decision per possible scheduler warp bound, 1..MaxTableN. 64 covers
// every hardware point the simulator models (the baseline exposes 24
// warps per scheduler) with slack for scaled configurations; a request
// beyond the bound still gets an answer, just through the uncached
// predict path.
const MaxTableN = 64

// Decision is one resolved warp-tuple: run N warps, prioritise p.
type Decision struct {
	N int `json:"n"`
	P int `json:"p"`
}

// entry is a memoised workload: the full decision table for every
// possible maxN, precomputed once at first sight of the key so that
// steady-state lookups are a map probe and an array index — no
// floating point, no allocation.
type entry struct {
	dec [MaxTableN + 1]Decision // indexed by maxN; [0] unused
}

// model is one immutable generation of the service: a validated weight
// set plus the decision tables derived from it. A retrain installs a
// whole new model (fresh, empty table) rather than mutating this one,
// so readers mid-decision keep a consistent view and the memo cache
// can never mix predictions from two weight sets.
type model struct {
	weights poise.Weights
	version int64
	tables  sync.Map // memo key (kernel/trace digest) -> *entry
}

// decide answers from the memo table, populating it on first miss.
// The hot path — key present — does not allocate: sync.Map.Load's
// boxed string key stays on the stack (pinned by TestDecideZeroAllocs)
// and the entry holds plain values.
func (m *model) decide(key string, x poise.Vector, maxN int) (Decision, bool) {
	if v, ok := m.tables.Load(key); ok {
		return v.(*entry).dec[maxN], true
	}
	e := new(entry)
	for n := 1; n <= MaxTableN; n++ {
		e.dec[n].N, e.dec[n].P = m.weights.PredictTuple(x, n)
	}
	// LoadOrStore: two racing first-misses agree anyway (the table is a
	// pure function of the weights and x), but returning the stored
	// entry keeps the invariant that one key has one entry.
	if v, loaded := m.tables.LoadOrStore(key, e); loaded {
		e = v.(*entry)
	}
	return e.dec[maxN], false
}

// Decider answers "feature vector → (N, p)" for many concurrent
// callers. The active model hangs off one atomic pointer: decisions
// load it once and never block, a Swap installs a successor without
// disturbing readers draining on the predecessor. All counters are
// atomics; the zero Decider is not usable — construct with NewDecider.
type Decider struct {
	active atomic.Pointer[model]

	// swapMu serialises Swap calls so version numbers are dense and
	// monotonic; it is never taken on the decision path.
	swapMu sync.Mutex

	decisions atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
}

// NewDecider validates w and returns a Decider serving it as version 1.
func NewDecider(w poise.Weights) (*Decider, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	d := &Decider{}
	d.active.Store(&model{weights: w, version: 1})
	return d, nil
}

// Decide resolves a feature vector to a concrete warp-tuple under the
// caller's scheduler bound maxN. A non-empty key — by convention a
// kernel or trace-signature digest — memoises the decision table for
// that workload; cached reports whether this call was answered from
// the table. An empty key, or a maxN outside 1..MaxTableN, predicts
// directly (still allocation-free, just not memoised).
func (d *Decider) Decide(key string, x poise.Vector, maxN int) (n, p int, cached bool) {
	m := d.active.Load()
	d.decisions.Add(1)
	if key == "" || maxN < 1 || maxN > MaxTableN {
		d.misses.Add(1)
		n, p = m.weights.PredictTuple(x, maxN)
		return n, p, false
	}
	dec, hit := m.decide(key, x, maxN)
	if hit {
		d.hits.Add(1)
	} else {
		d.misses.Add(1)
	}
	return dec.N, dec.P, hit
}

// Swap validates w and atomically installs it as the active model,
// returning the new version. The new model starts with an empty memo
// table — the old tables were derived from the old weights and must
// not survive them. In-flight decisions finish on the model they
// loaded; there is no quiescence point and no reader ever blocks.
func (d *Decider) Swap(w poise.Weights) (int64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	d.swapMu.Lock()
	defer d.swapMu.Unlock()
	v := d.active.Load().version + 1
	d.active.Store(&model{weights: w, version: v})
	return v, nil
}

// Weights returns the active weight set and its version.
func (d *Decider) Weights() (poise.Weights, int64) {
	m := d.active.Load()
	return m.weights, m.version
}

// Version returns the active model's version (1 = boot weights).
func (d *Decider) Version() int64 { return d.active.Load().version }

// Counters returns the decision totals: all decisions served, and the
// memo-table hit/miss split.
func (d *Decider) Counters() (decisions, hits, misses int64) {
	return d.decisions.Load(), d.hits.Load(), d.misses.Load()
}
