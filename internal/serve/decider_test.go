package serve

import (
	"fmt"
	"math"
	"testing"
	"time"

	"poise/internal/poise"
)

// testWeights is a plausible hand-built model: mildly positive N
// coefficients, mildly negative p ones, so different feature vectors
// land on different tuples.
func testWeights() poise.Weights {
	w := poise.Weights{TrainKernels: 3, Dropped: -1}
	for i := 0; i < poise.NumFeatures; i++ {
		w.Alpha[i] = 0.35 - 0.04*float64(i)
		w.Beta[i] = 0.25 - 0.06*float64(i)
	}
	return w
}

func testVector(seed int) poise.Vector {
	var x poise.Vector
	for i := range x {
		x[i] = 0.1 + 0.9*math.Abs(math.Sin(float64(seed*7+i*3+1)))
	}
	return x
}

func TestDecideMatchesPredictTuple(t *testing.T) {
	w := testWeights()
	d, err := NewDecider(w)
	if err != nil {
		t.Fatal(err)
	}
	for seed := 0; seed < 8; seed++ {
		x := testVector(seed)
		for _, maxN := range []int{1, 2, 6, 24, 48, MaxTableN, MaxTableN + 7} {
			wantN, wantP := w.PredictTuple(x, maxN)
			// Memoised and keyless paths must agree with the direct
			// prediction exactly.
			n, p, _ := d.Decide(fmt.Sprintf("k%d", seed), x, maxN)
			if n != wantN || p != wantP {
				t.Fatalf("Decide(k%d, maxN=%d) = (%d,%d), want (%d,%d)", seed, maxN, n, p, wantN, wantP)
			}
			n, p, cached := d.Decide("", x, maxN)
			if n != wantN || p != wantP || cached {
				t.Fatalf("keyless Decide(maxN=%d) = (%d,%d,%v), want (%d,%d,false)", maxN, n, p, cached, wantN, wantP)
			}
		}
	}
}

func TestDecideMemoisation(t *testing.T) {
	d, err := NewDecider(testWeights())
	if err != nil {
		t.Fatal(err)
	}
	x := testVector(1)
	if _, _, cached := d.Decide("k", x, 24); cached {
		t.Fatal("first decision for a key cannot be cached")
	}
	if _, _, cached := d.Decide("k", x, 24); !cached {
		t.Fatal("second decision for a key must be cached")
	}
	// A different maxN under the same key still hits: the whole table
	// was precomputed at first sight.
	if _, _, cached := d.Decide("k", x, 7); !cached {
		t.Fatal("same key, different maxN must be cached")
	}
	decisions, hits, misses := d.Counters()
	if decisions != 3 || hits != 2 || misses != 1 {
		t.Fatalf("counters = (%d,%d,%d), want (3,2,1)", decisions, hits, misses)
	}
}

func TestSwap(t *testing.T) {
	w := testWeights()
	d, err := NewDecider(w)
	if err != nil {
		t.Fatal(err)
	}
	if v := d.Version(); v != 1 {
		t.Fatalf("boot version = %d, want 1", v)
	}
	x := testVector(2)
	d.Decide("k", x, 24) // populate the memo under v1

	w2 := w
	for i := range w2.Alpha {
		w2.Alpha[i] *= 1.5
	}
	v, err := d.Swap(w2)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 || d.Version() != 2 {
		t.Fatalf("post-swap version = %d/%d, want 2", v, d.Version())
	}
	// The old memo must not leak through: the first decision after a
	// swap re-derives from the new weights.
	wantN, wantP := w2.PredictTuple(x, 24)
	n, p, cached := d.Decide("k", x, 24)
	if cached {
		t.Fatal("memo table must be empty after a swap")
	}
	if n != wantN || p != wantP {
		t.Fatalf("post-swap Decide = (%d,%d), want (%d,%d)", n, p, wantN, wantP)
	}

	if _, err := d.Swap(poise.Weights{}); err == nil {
		t.Fatal("Swap must reject invalid weights")
	}
	if d.Version() != 2 {
		t.Fatal("rejected swap must not change the version")
	}
}

func TestNewDeciderValidates(t *testing.T) {
	if _, err := NewDecider(poise.Weights{}); err == nil {
		t.Fatal("NewDecider must reject all-zero weights")
	}
}

// TestDecideZeroAllocs pins the acceptance criterion: the steady-state
// decision path — memoised or keyless — performs zero heap
// allocations. This is what lets the service answer millions of
// decisions per second without GC pressure.
func TestDecideZeroAllocs(t *testing.T) {
	d, err := NewDecider(testWeights())
	if err != nil {
		t.Fatal(err)
	}
	x := testVector(3)
	d.Decide("hot", x, 24) // populate
	if avg := testing.AllocsPerRun(1000, func() {
		d.Decide("hot", x, 24)
	}); avg != 0 {
		t.Fatalf("memoised Decide allocates %.2f/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		d.Decide("", x, 24)
	}); avg != 0 {
		t.Fatalf("keyless Decide allocates %.2f/op, want 0", avg)
	}
}

func BenchmarkDecide(b *testing.B) {
	d, err := NewDecider(testWeights())
	if err != nil {
		b.Fatal(err)
	}
	x := testVector(4)
	d.Decide("hot", x, 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Decide("hot", x, 24)
	}
}

func BenchmarkDecideUncached(b *testing.B) {
	d, err := NewDecider(testWeights())
	if err != nil {
		b.Fatal(err)
	}
	x := testVector(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Decide("", x, 24)
	}
}

// BenchmarkDecideParallel measures the concurrent read path: every P
// goroutine hammers the same memoised keys, which is the worst case
// for a lock-based cache and the best case for the atomic-pointer +
// sync.Map design. Throughput should scale with GOMAXPROCS.
//
// The ObserveEach/ObserveBatch pair quantifies the /decide latency
// accounting: ObserveEach is the old per-decision path (two contended
// atomic adds per op), ObserveBatch the handler's current shape — a
// local histBatch flushed once per 64-decision batch.
func BenchmarkDecideParallel(b *testing.B) {
	d, err := NewDecider(testWeights())
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]string, 16)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
		d.Decide(keys[i], testVector(i), 24)
	}
	run := func(b *testing.B, decide func(h *histogram, i int, x poise.Vector)) {
		var h histogram
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			x := testVector(5)
			i := 0
			for pb.Next() {
				decide(&h, i, x)
				i++
			}
		})
	}
	b.Run("Bare", func(b *testing.B) {
		run(b, func(h *histogram, i int, x poise.Vector) {
			d.Decide(keys[i&15], x, 24)
		})
	})
	b.Run("ObserveEach", func(b *testing.B) {
		run(b, func(h *histogram, i int, x poise.Vector) {
			t0 := time.Now()
			d.Decide(keys[i&15], x, 24)
			h.Observe(time.Since(t0).Nanoseconds())
		})
	})
	b.Run("ObserveBatch", func(b *testing.B) {
		var h histogram
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			x := testVector(5)
			var hb histBatch
			i := 0
			for pb.Next() {
				t0 := time.Now()
				d.Decide(keys[i&15], x, 24)
				hb.Observe(time.Since(t0).Nanoseconds())
				if i&63 == 63 {
					hb.FlushTo(&h)
				}
				i++
			}
			hb.FlushTo(&h)
		})
	})
}
