package serve

import (
	"os"
	"path/filepath"
	"testing"

	"poise/internal/poise"
)

func newTestRetrainer(t *testing.T, logPath string, min int) (*Decider, *Retrainer) {
	t.Helper()
	d, err := NewDecider(testWeights())
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRetrainer(d, logPath, RetrainOptions{Min: min})
	if err != nil {
		t.Fatal(err)
	}
	return d, r
}

func TestRetrainerSwapsAfterThreshold(t *testing.T) {
	d, r := newTestRetrainer(t, "", 8)
	defer r.Close()

	// Below the threshold: folded, but no retrain fires.
	if _, _, err := r.Ingest(synthRecord(1, 4)); err != nil {
		t.Fatal(err)
	}
	r.Flush()
	if got := r.Retrains(); got != 0 {
		t.Fatalf("retrained on %d samples below threshold (%d retrains)", 4, got)
	}
	if v := d.Version(); v != 1 {
		t.Fatalf("version moved to %d without a retrain", v)
	}

	// Crossing it: exactly one retrain over the full prefix.
	if _, _, err := r.Ingest(synthRecord(2, 8)); err != nil {
		t.Fatal(err)
	}
	r.Flush()
	if got := r.Retrains(); got < 1 {
		t.Fatal("no retrain after crossing the sample threshold")
	}
	if r.Errors() != 0 {
		t.Fatalf("%d retrain errors", r.Errors())
	}
	if v := d.Version(); v < 2 {
		t.Fatalf("version still %d after retrain", v)
	}
	records, samples := r.Totals()
	if records != 2 || samples != 12 {
		t.Fatalf("totals = (%d,%d), want (2,12)", records, samples)
	}
}

// TestRetrainDeterministic pins the acceptance criterion: the final
// weights are a pure function of the ingest sequence. One service sees
// the records one at a time (a retrain per record), the other gets
// them in a single burst (one retrain); both must land on identical
// weights, and the files written along the way must byte-match.
func TestRetrainDeterministic(t *testing.T) {
	recs := []Record{synthRecord(1, 6), synthRecord(2, 5), synthRecord(3, 7), synthRecord(4, 6)}

	finalWeights := func(flushEach bool) (poise.Weights, []byte) {
		dir := t.TempDir()
		out := filepath.Join(dir, "weights.json")
		d, err := NewDecider(testWeights())
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRetrainer(d, filepath.Join(dir, "samples.jsonl"), RetrainOptions{Min: 8, WeightsOut: out, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if _, _, err := r.Ingest(rec); err != nil {
				t.Fatal(err)
			}
			if flushEach {
				r.Flush()
			}
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		if r.Errors() != 0 {
			t.Fatalf("%d retrain errors", r.Errors())
		}
		w, _ := d.Weights()
		// The written artefact must load back to exactly the active model.
		loaded, err := poise.LoadWeights(out)
		if err != nil {
			t.Fatal(err)
		}
		if loaded != w {
			t.Fatal("weights file does not match the active model")
		}
		raw, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return w, raw
	}

	wStep, rawStep := finalWeights(true)
	wBurst, rawBurst := finalWeights(false)
	if wStep != wBurst {
		t.Fatalf("retrain batching changed the model:\n%+v\n%+v", wStep, wBurst)
	}
	if string(rawStep) != string(rawBurst) {
		t.Fatal("weights files differ between batchings")
	}
}

// TestRetrainerReplaysLog: a restart over an existing sample log
// reconverges to the same model before serving anything new.
func TestRetrainerReplaysLog(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "samples.jsonl")

	d1, r1 := newTestRetrainer(t, logPath, 6)
	if _, _, err := r1.Ingest(synthRecord(1, 9)); err != nil {
		t.Fatal(err)
	}
	r1.Flush()
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}
	w1, _ := d1.Weights()

	d2, r2 := newTestRetrainer(t, logPath, 6)
	r2.Flush()
	defer r2.Close()
	w2, _ := d2.Weights()
	if w1 != w2 {
		t.Fatalf("replayed log produced a different model:\n%+v\n%+v", w1, w2)
	}
	if records, samples := r2.Totals(); records != 1 || samples != 9 {
		t.Fatalf("replayed totals = (%d,%d), want (1,9)", records, samples)
	}
}

func TestIngestAfterCloseFails(t *testing.T) {
	_, r := newTestRetrainer(t, "", 4)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Ingest(synthRecord(1, 1)); err == nil {
		t.Fatal("Ingest after Close must fail")
	}
}
