package serve

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"poise/internal/poise"
)

// RetrainOptions tunes the online-adaptation loop.
type RetrainOptions struct {
	// Min is the sample count required before the first retrain fires
	// (the GLM needs a few observations per feature to be worth
	// fitting); <= 0 means DefaultMinRetrain.
	Min int
	// Train passes through to poise.Train.
	Train poise.TrainOptions
	// WeightsOut, when set, is atomically rewritten (temp + rename,
	// same bytes as Weights.Save) after every successful retrain, so
	// the file on disk is always a complete, loadable artefact.
	WeightsOut string
	// Logf receives retrain progress lines (nil = silent).
	Logf func(format string, args ...any)
}

// DefaultMinRetrain is the default sample threshold for the first
// retrain: two observations per feature, comfortably past the
// identifiability floor of the 8-feature regression.
const DefaultMinRetrain = 2 * poise.NumFeatures

// Retrainer folds ingested samples into poise.Train on a single
// background goroutine and hot-swaps the result into its Decider.
//
// Determinism: every retrain fits the *full* sample prefix in ingest
// order, so the final weights are a pure function of the complete log
// — however the background goroutine batches its work, and whether the
// log was built in one process or replayed across restarts, a fixed
// ingest sequence converges to an identical weights file.
type Retrainer struct {
	d    *Decider
	opts RetrainOptions
	log  *Log // nil = memory-only (no durable sample log)

	mu         sync.Mutex
	cond       *sync.Cond
	samples    []poise.Sample
	replayed   []Record // log history, drained once by the server at boot
	records    int64
	gen        int64 // bumped per ingest
	trainedGen int64 // loop has folded everything up to this gen
	closed     bool
	done       bool // loop has exited

	retrains  atomic.Int64
	trainErrs atomic.Int64
}

// NewRetrainer starts the adaptation loop for d. A non-empty logPath
// opens (or creates) the durable sample log; records already in it are
// folded immediately, so a restarted service reconverges to the same
// model before serving its first ingest.
func NewRetrainer(d *Decider, logPath string, opts RetrainOptions) (*Retrainer, error) {
	if opts.Min <= 0 {
		opts.Min = DefaultMinRetrain
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	r := &Retrainer{d: d, opts: opts}
	r.cond = sync.NewCond(&r.mu)
	if logPath != "" {
		log, recs, err := OpenLog(logPath)
		if err != nil {
			return nil, err
		}
		r.log = log
		r.replayed = recs
		for _, rec := range recs {
			r.records++
			r.samples = append(r.samples, rec.Samples...)
		}
		if len(r.samples) > 0 {
			r.gen++ // wake the loop once for the replayed history
		}
	}
	go r.loop()
	return r, nil
}

// Ingest appends one record to the log (when durable) and hands its
// samples to the background loop. It returns the record and sample
// totals after the append. Ingest order is the determinism anchor:
// callers that need reproducible weights must fix it.
func (r *Retrainer) Ingest(rec Record) (records, totalSamples int64, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return r.records, int64(len(r.samples)), os.ErrClosed
	}
	if r.log != nil {
		// Log first: a failed append leaves at most a torn line, which
		// the next OpenLog truncates — the in-memory state never gets
		// ahead of the durable state.
		if err := r.log.Append(rec); err != nil {
			return r.records, int64(len(r.samples)), err
		}
	}
	r.records++
	r.samples = append(r.samples, rec.Samples...)
	if len(rec.Samples) > 0 {
		r.gen++
		r.cond.Broadcast()
	}
	return r.records, int64(len(r.samples)), nil
}

// DrainReplayed hands over (and releases) the records replayed from the
// sample log at construction, so the server can re-register their
// kernels — a restarted service serves the same /table rows the
// previous life earned through /ingest.
func (r *Retrainer) DrainReplayed() []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	recs := r.replayed
	r.replayed = nil
	return recs
}

// Totals returns the ingested record and sample counts.
func (r *Retrainer) Totals() (records, totalSamples int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.records, int64(len(r.samples))
}

// Retrains returns the successful retrain count.
func (r *Retrainer) Retrains() int64 { return r.retrains.Load() }

// Errors returns the failed retrain count.
func (r *Retrainer) Errors() int64 { return r.trainErrs.Load() }

// Flush blocks until every sample ingested before the call has been
// folded (trained on, or skipped for being under the threshold).
func (r *Retrainer) Flush() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for g := r.gen; r.trainedGen < g && !r.done; {
		r.cond.Wait()
	}
}

// Close drains pending work — a final retrain if samples arrived since
// the last one — then stops the loop and closes the log.
func (r *Retrainer) Close() error {
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		r.cond.Broadcast()
	}
	for !r.done {
		r.cond.Wait()
	}
	r.mu.Unlock()
	if r.log != nil {
		return r.log.Close()
	}
	return nil
}

func (r *Retrainer) loop() {
	r.mu.Lock()
	for {
		for !r.closed && r.trainedGen == r.gen {
			r.cond.Wait()
		}
		if r.trainedGen == r.gen { // closed with nothing pending
			r.done = true
			r.cond.Broadcast()
			r.mu.Unlock()
			return
		}
		g := r.gen
		// Full-prefix snapshot: the backing array is append-only, so the
		// three-index slice is safe to read unlocked.
		s := r.samples[:len(r.samples):len(r.samples)]
		r.mu.Unlock()

		if len(s) >= r.opts.Min {
			r.train(s)
		}

		r.mu.Lock()
		r.trainedGen = g
		r.cond.Broadcast()
	}
}

func (r *Retrainer) train(s []poise.Sample) {
	w, err := poise.Train(&poise.Dataset{Samples: s}, r.opts.Train)
	if err != nil {
		r.trainErrs.Add(1)
		r.opts.Logf("serve: retrain on %d samples failed: %v", len(s), err)
		return
	}
	v, err := r.d.Swap(w)
	if err != nil {
		r.trainErrs.Add(1)
		r.opts.Logf("serve: retrained weights rejected: %v", err)
		return
	}
	r.retrains.Add(1)
	if r.opts.WeightsOut != "" {
		if werr := writeWeightsAtomic(r.opts.WeightsOut, w); werr != nil {
			r.opts.Logf("serve: writing %s: %v", r.opts.WeightsOut, werr)
		}
	}
	r.opts.Logf("serve: retrained on %d samples -> weights v%d", len(s), v)
}

// writeWeightsAtomic writes the same bytes as poise.Weights.Save via a
// same-directory temp file and rename, so a reader (or a crash) never
// sees a half-written weights file.
func writeWeightsAtomic(path string, w poise.Weights) error {
	data, err := json.MarshalIndent(w, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".weights.*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Chmod(0o644)
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		os.Remove(tmp.Name())
	}
	return err
}
