package serve

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// histogram is a lock-free log2-bucketed latency histogram: Observe is
// two atomic adds, cheap enough to sit on the decision path, and
// quantiles come back as the upper bound of the bucket they land in —
// factor-of-two resolution, which is all a p99 counter needs.
type histogram struct {
	count   atomic.Int64
	buckets [64]atomic.Int64 // bucket b holds values with bits.Len64(v) == b
}

// Observe records one latency in nanoseconds.
func (h *histogram) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.buckets[bits.Len64(uint64(ns))].Add(1)
	h.count.Add(1)
}

// histBatch accumulates observations in plain locals so a JSONL decide
// batch costs one flush — one atomic add per touched bucket plus one
// count add — instead of two atomic adds per decision. A batch of n
// same-magnitude latencies goes from 2n contended atomics to 2.
type histBatch struct {
	counts [64]int64
	n      int64
}

// Observe records one latency in nanoseconds, locally.
func (b *histBatch) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	b.counts[bits.Len64(uint64(ns))]++
	b.n++
}

// FlushTo folds the batch into h and resets b for reuse. Buckets land
// before the count, same order as Observe, so a concurrent Quantile
// never sees a count its bucket walk cannot reach.
func (b *histBatch) FlushTo(h *histogram) {
	if b.n == 0 {
		return
	}
	for i := range b.counts {
		if c := b.counts[i]; c != 0 {
			h.buckets[i].Add(c)
			b.counts[i] = 0
		}
	}
	h.count.Add(b.n)
	b.n = 0
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) of
// the observed values, or 0 when nothing has been observed.
func (h *histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for b := range h.buckets {
		cum += h.buckets[b].Load()
		if cum >= target {
			if b == 0 {
				return 0
			}
			return int64(1)<<b - 1
		}
	}
	return math.MaxInt64
}
