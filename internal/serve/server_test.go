package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"poise/internal/config"
	"poise/internal/profile"
	"poise/internal/traceio"
	"poise/internal/workloads"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, &Client{Base: ts.URL, HTTP: ts.Client(), Retries: 3}
}

func TestServeDecideEndpoint(t *testing.T) {
	w := testWeights()
	s, c := newTestServer(t, Config{Weights: w})
	reqs := []DecideRequest{
		{Key: "k1", X: testVector(1), MaxN: 24},
		{Key: "k1", X: testVector(1), MaxN: 24},
		{Key: "", X: testVector(2)}, // MaxN 0: server default (24)
	}
	replies, err := c.Decide(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 3 {
		t.Fatalf("got %d replies, want 3", len(replies))
	}
	for i, req := range reqs {
		maxN := req.MaxN
		if maxN == 0 {
			maxN = 24
		}
		wantN, wantP := w.PredictTuple(req.X, maxN)
		if replies[i].N != wantN || replies[i].P != wantP {
			t.Fatalf("reply %d = (%d,%d), want (%d,%d)", i, replies[i].N, replies[i].P, wantN, wantP)
		}
		if replies[i].Version != 1 {
			t.Fatalf("reply %d version = %d, want 1", i, replies[i].Version)
		}
	}
	if replies[0].Cached || !replies[1].Cached || replies[2].Cached {
		t.Fatalf("cached flags = %v/%v/%v, want false/true/false",
			replies[0].Cached, replies[1].Cached, replies[2].Cached)
	}
	st := s.Stats()
	if st.Decisions != 3 || st.CacheHits != 1 || st.CacheMisses != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.P99LatencyNS <= 0 {
		t.Fatal("latency histogram never observed anything")
	}
}

func TestServeDecideRejectsBadBatch(t *testing.T) {
	_, c := newTestServer(t, Config{Weights: testWeights()})
	for name, body := range map[string]string{
		"empty":    "",
		"bad-json": "{\"x\": not json}\n",
	} {
		resp, err := c.client().Post(c.Base+"/decide", "application/jsonl", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// tableProfile mirrors the profile package's table fixture: distinct
// Static-Best, SWL and scored optima.
func tableProfile(kernel string) *profile.Profile {
	pr := &profile.Profile{
		Kernel:   kernel,
		MaxN:     4,
		Baseline: profile.Point{N: 4, P: 4, IPC: 1, Speedup: 1},
	}
	for n := 1; n <= 4; n++ {
		for p := 1; p <= n; p++ {
			sp := 1.0
			switch {
			case n == 4 && p == 1:
				sp = 1.5
			case n == 2 && p == 2:
				sp = 1.2
			case n == 3 && p == 1:
				sp = 1.4
			}
			pr.Points = append(pr.Points, profile.Point{N: n, P: p, IPC: sp, Speedup: sp})
		}
	}
	return pr
}

// TestServeTableMatchesBestTable pins the byte-identity contract: GET
// /table is exactly profile.BestTable, which is exactly what `poisesim
// -best` prints (CI diffs the two end to end).
func TestServeTableMatchesBestTable(t *testing.T) {
	dir := t.TempDir()
	st := profile.Store{Dir: dir}
	if err := st.Save("tag", tableProfile("bk")); err != nil {
		t.Fatal(err)
	}
	if err := st.Save("tag", tableProfile("ak")); err != nil {
		t.Fatal(err)
	}
	_, c := newTestServer(t, Config{Weights: testWeights(), ProfileDir: dir})
	got, err := c.Table(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := profile.BestTable(dir, config.DefaultPoise())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("/table drifted from profile.BestTable:\n%q\n%q", got, want)
	}
}

func TestServeTableUnconfigured(t *testing.T) {
	_, c := newTestServer(t, Config{Weights: testWeights()})
	if _, err := c.Table(context.Background()); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unconfigured /table: %v, want 404", err)
	}
}

// TestServeTableIncludesIngestedKeys pins the /ingest → /table path:
// profile-backed rows stay byte-identical to profile.BestTable (the
// `poisesim -best` contract), and kernels that arrived via /ingest get
// appended rows answered from the memoised Decider state. The rows
// survive a service restart via the sample log, and the render warms
// the memo table so a later /decide on the same key is a cache hit.
func TestServeTableIncludesIngestedKeys(t *testing.T) {
	dir := t.TempDir()
	st := profile.Store{Dir: dir}
	if err := st.Save("tag", tableProfile("bk")); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(t.TempDir(), "samples.jsonl")
	w := testWeights()
	cfg := Config{Weights: w, ProfileDir: dir, SampleLog: logPath, Retrain: RetrainOptions{Min: 1 << 20}}
	s, c := newTestServer(t, cfg)

	rec := synthRecord(3, 4)
	if _, err := c.IngestRecord(context.Background(), rec); err != nil {
		t.Fatal(err)
	}
	got, err := c.Table(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	profTable, err := profile.BestTable(dir, config.DefaultPoise())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(got, profTable) {
		t.Fatalf("/table no longer starts with the profile-backed rows:\n%q", got)
	}
	// synthRecord's samples share one kernel name, so exactly one
	// memoised row follows, decided by the boot weights (Min is high
	// enough that no retrain fired).
	last := rec.Samples[len(rec.Samples)-1]
	wantN, wantP := w.PredictTuple(last.X, last.MaxN)
	wantRow := fmt.Sprintf("%-14s model (%2d,%2d) weights v1\n", "synth", wantN, wantP)
	if got != profTable+wantRow {
		t.Fatalf("/table = %q, want %q", got, profTable+wantRow)
	}
	// The render went through Decide with the row's memo key, so the
	// same key over HTTP is now answered from the memo table.
	replies, err := c.Decide(context.Background(), []DecideRequest{
		{Key: "ingest/synth/synth", X: last.X, MaxN: last.MaxN},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 1 || !replies[0].Cached {
		t.Fatalf("post-table decide replies = %+v, want one cached reply", replies)
	}

	// A restarted service replays the sample log and re-registers the
	// ingested kernels: same rows, no re-ingest needed.
	s.Close()
	_, c2 := newTestServer(t, cfg)
	got2, err := c2.Table(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got2 != got {
		t.Fatalf("restarted /table = %q, want %q", got2, got)
	}

	// With no profile store at all, ingested rows alone serve /table.
	_, c3 := newTestServer(t, Config{Weights: w, Retrain: RetrainOptions{Min: 1 << 20}})
	if _, err := c3.IngestRecord(context.Background(), rec); err != nil {
		t.Fatal(err)
	}
	got3, err := c3.Table(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got3 != wantRow {
		t.Fatalf("profile-less /table = %q, want %q", got3, wantRow)
	}
}

func TestServeIngestRecord(t *testing.T) {
	s, c := newTestServer(t, Config{Weights: testWeights(), Retrain: RetrainOptions{Min: 8}})
	rep, err := c.IngestRecord(context.Background(), synthRecord(1, 9))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workload != "synth" || rep.Samples != 9 || rep.Records != 1 || rep.TotalSamples != 9 {
		t.Fatalf("ingest reply = %+v", rep)
	}
	s.Flush()
	st := s.Stats()
	if st.Retrains != 1 || st.RetrainErrors != 0 || st.WeightsVersion != 2 {
		t.Fatalf("post-ingest stats = %+v", st)
	}
	// Garbage that is neither trace nor record is a clean 400.
	resp, err := c.client().Post(c.Base+"/ingest", "application/octet-stream", strings.NewReader("garbage"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage ingest: status %d, want 400", resp.StatusCode)
	}
}

// TestServeIngestRawTrace drives the full online pipeline: record a
// real workload to the poisetrace container, upload the raw bytes, and
// watch the service characterise, profile and log it — the online
// analogue of one offline training iteration.
func TestServeIngestRawTrace(t *testing.T) {
	wl := workloads.NewCatalogue(workloads.Small).Must("ii")
	tr, err := traceio.Record(wl)
	if err != nil {
		t.Fatal(err)
	}
	var raw bytes.Buffer
	if err := traceio.Write(&raw, tr, traceio.WriteOptions{Gzip: true}); err != nil {
		t.Fatal(err)
	}

	s, c := newTestServer(t, Config{
		Weights:    testWeights(),
		SimCfg:     config.Default().Scale(1),
		Sweep:      profile.SweepOptions{StepN: 12, StepP: 12},
		SweepCache: t.TempDir(),
	})
	rep, err := c.IngestTrace(context.Background(), raw.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workload != "ii" {
		t.Fatalf("ingested workload = %q, want ii", rep.Workload)
	}
	if rep.Records != 1 {
		t.Fatalf("records = %d, want 1", rep.Records)
	}
	s.Flush()
	st := s.Stats()
	if st.IngestedRecords != 1 {
		t.Fatalf("stats after trace ingest = %+v", st)
	}
	if st.RetrainErrors != 0 {
		t.Fatalf("retrain errors after trace ingest: %+v", st)
	}
}

// TestServeIngestWhileDeciding is the hot-swap chaos test: concurrent
// /decide batches race concurrent /ingest-triggered retrains. Under
// `go test -race` this pins the acceptance criterion that the swap is
// race-clean; the counters then confirm nothing was dropped.
func TestServeIngestWhileDeciding(t *testing.T) {
	s, c := newTestServer(t, Config{Weights: testWeights(), Retrain: RetrainOptions{Min: 8}})
	const (
		deciders     = 4
		decideRounds = 25
		batch        = 3
		ingesters    = 2
		ingestRounds = 5
	)
	var wg sync.WaitGroup
	errCh := make(chan error, deciders+ingesters)
	for g := 0; g < deciders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < decideRounds; i++ {
				reqs := make([]DecideRequest, batch)
				for j := range reqs {
					reqs[j] = DecideRequest{Key: fmt.Sprintf("k%d", (g+i+j)%5), X: testVector(j), MaxN: 24}
				}
				if _, err := c.Decide(context.Background(), reqs); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ingestRounds; i++ {
				if _, err := c.IngestRecord(context.Background(), synthRecord(g*100+i, 8)); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	s.Flush()
	st := s.Stats()
	if want := int64(deciders * decideRounds * batch); st.Decisions != want {
		t.Fatalf("decisions = %d, want %d", st.Decisions, want)
	}
	if want := int64(ingesters * ingestRounds); st.IngestedRecords != want {
		t.Fatalf("ingested = %d, want %d", st.IngestedRecords, want)
	}
	if st.Retrains < 1 || st.RetrainErrors != 0 {
		t.Fatalf("retrains = %d, errors = %d", st.Retrains, st.RetrainErrors)
	}
	if st.WeightsVersion < 2 {
		t.Fatalf("weights never advanced: %+v", st)
	}
}

// TestServeIngestCIFixture keeps the checked-in CI record honest: the
// workflow's round-trip step curls testdata/ci-ingest.json at a live
// service and expects a retrain, so the fixture must keep training
// cleanly.
func TestServeIngestCIFixture(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "ci-ingest.json"))
	if err != nil {
		t.Fatal(err)
	}
	s, c := newTestServer(t, Config{Weights: testWeights(), Retrain: RetrainOptions{Min: 16}})
	rep, err := c.IngestRecord(context.Background(), mustRecord(t, data))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workload != "ci-synth" || rep.Samples != 16 {
		t.Fatalf("fixture ingest reply = %+v", rep)
	}
	s.Flush()
	if st := s.Stats(); st.Retrains != 1 || st.RetrainErrors != 0 {
		t.Fatalf("fixture must train cleanly: %+v", st)
	}
}

func mustRecord(t *testing.T, data []byte) Record {
	t.Helper()
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestServeGracefulShutdown(t *testing.T) {
	s, err := New(Config{Weights: testWeights(), Retrain: RetrainOptions{Min: 8}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, "127.0.0.1:0", addrCh) }()
	addr := <-addrCh

	c := &Client{Base: "http://" + addr}
	// Pending samples at shutdown time must still be folded (and are:
	// Close drains the retrainer before Serve returns).
	if _, err := c.IngestRecord(context.Background(), synthRecord(1, 9)); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v", err)
	}
	if st := s.Stats(); st.Retrains != 1 || st.WeightsVersion != 2 {
		t.Fatalf("shutdown did not drain the retrainer: %+v", st)
	}
}
