package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"poise/internal/poise"
	"poise/internal/traceio"
)

// The sample log is the service's durable adaptation state: one JSON
// header line, then one Record per line, append-only. Retraining is a
// pure function of the log prefix, so the log *is* the model history —
// replaying it through a fresh service reconverges to the same
// weights. A torn trailing line (a crash mid-append) is tolerated and
// truncated on reopen; corruption anywhere else is an error, because a
// silently skipped record would change what the model trains on.

const (
	logFormat  = "poisesamples"
	logVersion = 1
)

// Record is one ingested trace: its locality signature and the
// training samples derived from it (possibly none, when every kernel
// fell to the admission thresholds — the signature is still logged so
// the ingest history stays complete).
type Record struct {
	Signature traceio.Signature `json:"signature"`
	Samples   []poise.Sample    `json:"samples,omitempty"`
}

type logHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
}

// parseLog splits data into records and reports how many leading bytes
// form the valid prefix. A trailing segment without a newline is a
// torn append: dropped from the records, excluded from keep. Anything
// else that fails to parse is an error.
func parseLog(data []byte) (recs []Record, keep int, err error) {
	rest := data
	line := 0
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			break // torn tail
		}
		raw, lineLen := rest[:nl], nl+1
		rest = rest[lineLen:]
		line++
		if line == 1 {
			var hdr logHeader
			if jerr := json.Unmarshal(raw, &hdr); jerr != nil {
				return nil, 0, fmt.Errorf("bad header: %w", jerr)
			}
			if hdr.Format != logFormat {
				return nil, 0, fmt.Errorf("not a %s log (format %q)", logFormat, hdr.Format)
			}
			if hdr.Version > logVersion {
				return nil, 0, fmt.Errorf("log version %d is newer than this build (%d)", hdr.Version, logVersion)
			}
		} else {
			var rec Record
			if jerr := json.Unmarshal(raw, &rec); jerr != nil {
				return nil, 0, fmt.Errorf("record on line %d: %w", line, jerr)
			}
			recs = append(recs, rec)
		}
		keep += lineLen
	}
	if line == 0 {
		return nil, 0, nil // only a torn header: treat as empty
	}
	return recs, keep, nil
}

// ReadLog parses a sample log, tolerating a torn trailing line.
func ReadLog(r io.Reader) ([]Record, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, nil
	}
	recs, _, err := parseLog(data)
	if err != nil {
		return nil, fmt.Errorf("serve: sample log: %w", err)
	}
	return recs, nil
}

// Log is an open append handle on a sample log file.
type Log struct {
	f *os.File
}

// OpenLog opens (creating if needed) the sample log at path for
// appending and returns the records already in it. A torn trailing
// line from a crashed append is truncated away so the next append
// starts on a clean line boundary.
func OpenLog(path string) (*Log, []Record, error) {
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, err
	}
	var recs []Record
	keep := 0
	if len(data) > 0 {
		recs, keep, err = parseLog(data)
		if err != nil {
			return nil, nil, fmt.Errorf("serve: sample log %s: %w", path, err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if keep < len(data) {
		if err := f.Truncate(int64(keep)); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if keep == 0 {
		hdr, _ := json.Marshal(logHeader{Format: logFormat, Version: logVersion})
		if _, err := f.Write(append(hdr, '\n')); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	return &Log{f: f}, recs, nil
}

// Append writes one record. O_APPEND makes the write atomic with
// respect to position; a crash mid-write leaves a torn line the next
// OpenLog truncates.
func (l *Log) Append(rec Record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	_, err = l.f.Write(append(data, '\n'))
	return err
}

// Close closes the underlying file.
func (l *Log) Close() error { return l.f.Close() }
