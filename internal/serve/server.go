package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"poise/internal/config"
	"poise/internal/poise"
	"poise/internal/profile"
	"poise/internal/sim"
	"poise/internal/traceio"
)

// Config assembles a decision service.
type Config struct {
	// Weights is the boot model (version 1).
	Weights poise.Weights

	// ProfileDir backs GET /table: the profile store the static policy
	// table is derived from. Empty disables the endpoint.
	ProfileDir string
	// Params scores the table derivation and admits ingested kernels;
	// the zero value means config.DefaultPoise().
	Params config.PoiseParams

	// SimCfg and Sweep drive sample derivation for raw-trace ingests
	// (each kernel is profiled across the {N, p} grid exactly as the
	// offline trainer would). A zero SimCfg means config.Default().
	SimCfg config.Config
	Sweep  profile.SweepOptions
	// SweepCache is a profile.Store directory for ingest sweeps
	// (empty = no cache, every ingest re-sweeps).
	SweepCache string

	// SampleLog is the durable sample log path (empty = memory-only).
	SampleLog string
	// Retrain tunes the online-adaptation loop.
	Retrain RetrainOptions

	// MaxBody bounds request bodies (decide batches, ingested traces);
	// <= 0 means DefaultMaxBody.
	MaxBody int64
	// Logf receives service log lines (nil = silent).
	Logf func(format string, args ...any)
}

// DefaultMaxBody bounds request bodies: large enough for a gzipped
// multi-kernel trace, small enough that a hostile upload cannot OOM
// the service.
const DefaultMaxBody = 64 << 20

// DecideRequest is one line of a POST /decide body.
type DecideRequest struct {
	// Key memoises the decision table for this workload — by
	// convention a kernel digest or trace-signature digest. Empty
	// skips memoisation.
	Key string `json:"key,omitempty"`
	// X is the Table II feature vector.
	X poise.Vector `json:"x"`
	// MaxN is the scheduler's warp bound; 0 means the service's
	// configured hardware bound.
	MaxN int `json:"maxN,omitempty"`
}

// DecideReply is one line of a /decide response, after its header.
type DecideReply struct {
	N       int   `json:"n"`
	P       int   `json:"p"`
	Version int64 `json:"version"`
	Cached  bool  `json:"cached"`
}

// decideHeader is the first line of a /decide response, fleet-style:
// the count tells the reader how many lines follow.
type decideHeader struct {
	Serve   string `json:"serve"`
	Count   int    `json:"count"`
	Version int64  `json:"version"`
}

// IngestReply answers POST /ingest.
type IngestReply struct {
	// Workload names the ingested trace (from its signature).
	Workload string `json:"workload"`
	// Samples derived from this record; Records and TotalSamples are
	// the log totals after the append.
	Samples      int   `json:"samples"`
	Records      int64 `json:"records"`
	TotalSamples int64 `json:"totalSamples"`
	// WeightsVersion is the active version at reply time — the retrain
	// triggered by this ingest may still be in flight.
	WeightsVersion int64 `json:"weightsVersion"`
}

// Server is the HTTP face of a Decider plus its Retrainer.
type Server struct {
	cfg         Config
	dec         *Decider
	ret         *Retrainer
	hist        histogram
	defaultMaxN int

	// ingested registers the kernels that arrived via /ingest (or were
	// replayed from the sample log), keyed by their memo key, so /table
	// can serve their rows from the memoised Decider state.
	ingMu    sync.Mutex
	ingested map[string]ingestedKernel
}

// ingestedKernel is one /ingest-arrived kernel: the memo key it
// decides under, its feature vector, and the warp bound it trains at.
type ingestedKernel struct {
	name string
	x    poise.Vector
	maxN int
}

// New validates the boot weights and assembles the service, replaying
// any existing sample log before the first request is served.
func New(cfg Config) (*Server, error) {
	if cfg.SimCfg == (config.Config{}) {
		cfg.SimCfg = config.Default()
	}
	if cfg.Params == (config.PoiseParams{}) {
		cfg.Params = config.DefaultPoise()
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = DefaultMaxBody
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Retrain.Logf == nil {
		cfg.Retrain.Logf = cfg.Logf
	}
	dec, err := NewDecider(cfg.Weights)
	if err != nil {
		return nil, err
	}
	ret, err := NewRetrainer(dec, cfg.SampleLog, cfg.Retrain)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg: cfg, dec: dec, ret: ret,
		defaultMaxN: cfg.SimCfg.WarpsPerSched,
		ingested:    make(map[string]ingestedKernel),
	}
	for _, rec := range ret.DrainReplayed() {
		s.registerIngested(rec)
	}
	return s, nil
}

// Decider exposes the in-process decision path (the HTTP layer is for
// remote callers; embedders decide directly).
func (s *Server) Decider() *Decider { return s.dec }

// Flush blocks until every ingest accepted before the call has been
// folded into the model. Test and shutdown hook.
func (s *Server) Flush() { s.ret.Flush() }

// Close drains the retrainer (final retrain, final weights write) and
// closes the sample log.
func (s *Server) Close() error { return s.ret.Close() }

// Stats snapshots the service counters.
func (s *Server) Stats() Stats {
	decisions, hits, misses := s.dec.Counters()
	records, samples := s.ret.Totals()
	return Stats{
		Decisions:       decisions,
		CacheHits:       hits,
		CacheMisses:     misses,
		IngestedRecords: records,
		TotalSamples:    samples,
		Retrains:        s.ret.Retrains(),
		RetrainErrors:   s.ret.Errors(),
		WeightsVersion:  s.dec.Version(),
		P50LatencyNS:    s.hist.Quantile(0.50),
		P99LatencyNS:    s.hist.Quantile(0.99),
	}
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /decide", s.handleDecide)
	mux.HandleFunc("GET /table", s.handleTable)
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

// handleDecide answers a JSONL batch of decisions: one DecideRequest
// per line in, a count header plus one DecideReply per line out. The
// whole batch parses before the first decision so a malformed line is
// a clean 400, never a half-answered stream.
func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	sc := bufio.NewScanner(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var reqs []DecideRequest
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var req DecideRequest
		if err := json.Unmarshal(line, &req); err != nil {
			http.Error(w, fmt.Sprintf("serve: decide line %d: %v", len(reqs)+1, err), http.StatusBadRequest)
			return
		}
		reqs = append(reqs, req)
	}
	if err := sc.Err(); err != nil {
		http.Error(w, "serve: reading decide body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(reqs) == 0 {
		http.Error(w, "serve: empty decide batch", http.StatusBadRequest)
		return
	}

	version := s.dec.Version()
	replies := make([]DecideReply, len(reqs))
	var hb histBatch // one shared-histogram flush per batch, not per decision
	for i, req := range reqs {
		maxN := req.MaxN
		if maxN == 0 {
			maxN = s.defaultMaxN
		}
		t0 := time.Now()
		n, p, cached := s.dec.Decide(req.Key, req.X, maxN)
		hb.Observe(time.Since(t0).Nanoseconds())
		replies[i] = DecideReply{N: n, P: p, Version: version, Cached: cached}
	}
	hb.FlushTo(&s.hist)

	w.Header().Set("Content-Type", "application/jsonl")
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.Encode(decideHeader{Serve: "decide", Count: len(replies), Version: version})
	for _, rep := range replies {
		enc.Encode(rep)
	}
	bw.Flush()
}

// handleTable serves the policy table. Profile-backed rows come first,
// byte for byte what `poisesim -best` prints for the same profile
// directory (both render profile.BestTable — CI diffs them literally).
// Kernels that arrived via /ingest follow, answered from the memoised
// Decider state: each row is the active model's decision for that
// kernel's feature vector, so the rows track every retrain.
func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	var table string
	if s.cfg.ProfileDir != "" {
		var err error
		table, err = profile.BestTable(s.cfg.ProfileDir, s.cfg.Params)
		if err != nil {
			http.Error(w, "serve: deriving policy table: "+err.Error(), http.StatusInternalServerError)
			return
		}
	}
	rows := s.ingestedRows()
	if table == "" && len(rows) == 0 {
		http.Error(w, "serve: no profile store configured and nothing ingested", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, table)
	for _, row := range rows {
		fmt.Fprintln(w, row)
	}
}

// registerIngested records rec's kernels in the /table registry. The
// memo key is workload-qualified so two workloads' same-named kernels
// memoise separately; a re-ingest of the same kernel refreshes its
// feature vector in place.
func (s *Server) registerIngested(rec Record) {
	s.ingMu.Lock()
	defer s.ingMu.Unlock()
	for _, sm := range rec.Samples {
		maxN := sm.MaxN
		if maxN < 1 || maxN > MaxTableN {
			maxN = s.defaultMaxN
		}
		key := "ingest/" + rec.Signature.Workload + "/" + sm.Kernel
		s.ingested[key] = ingestedKernel{name: sm.Kernel, x: sm.X, maxN: maxN}
	}
}

// ingestedRows renders the /ingest-arrived rows of /table through the
// memoised decision path — the same Decide that answers the HTTP
// endpoint, so the first render populates the model's memo table and
// later /decide calls on these keys hit it. Sorted by rendered form,
// matching BestTableRows' ordering discipline.
func (s *Server) ingestedRows() []string {
	s.ingMu.Lock()
	keys := make([]string, 0, len(s.ingested))
	for key := range s.ingested {
		keys = append(keys, key)
	}
	kernels := make([]ingestedKernel, 0, len(keys))
	for _, key := range keys {
		kernels = append(kernels, s.ingested[key])
	}
	s.ingMu.Unlock()
	version := s.dec.Version()
	rows := make([]string, 0, len(kernels))
	for i, k := range kernels {
		n, p, _ := s.dec.Decide(keys[i], k.x, k.maxN)
		rows = append(rows, fmt.Sprintf("%-14s model (%2d,%2d) weights v%d", k.name, n, p, version))
	}
	sort.Strings(rows)
	return rows
}

// handleIngest accepts either a raw poisetrace container (optionally
// gzipped; detected by content) or a pre-characterised JSON Record.
// Raw traces are piped through the streaming trace reader — the body
// flows straight into flat replay arenas, never buffered whole — then
// characterised and profiled on the spot, the online analogue of the
// offline training pipeline; finally the record is appended to the
// sample log and the background retrainer notified.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	body := bufio.NewReader(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	sniff, _ := body.Peek(len(traceMagic))
	var rec Record
	switch {
	case isPoisetrace(sniff):
		var err error
		rec, err = s.recordFromTrace(body)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, errSweep) {
				status = http.StatusInternalServerError
			}
			http.Error(w, err.Error(), status)
			return
		}
	default:
		data, err := io.ReadAll(body)
		if err != nil {
			http.Error(w, "serve: reading ingest body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if err := json.Unmarshal(data, &rec); err != nil {
			http.Error(w, "serve: ingest body is neither a poisetrace nor a JSON record: "+err.Error(), http.StatusBadRequest)
			return
		}
		if rec.Signature.Workload == "" && len(rec.Samples) == 0 {
			http.Error(w, "serve: ingest record is empty", http.StatusBadRequest)
			return
		}
	}

	records, samples, err := s.ret.Ingest(rec)
	if err != nil {
		http.Error(w, "serve: ingest: "+err.Error(), http.StatusInternalServerError)
		return
	}
	s.registerIngested(rec)
	s.cfg.Logf("serve: ingested %s: %d samples (%d records, %d samples total)",
		rec.Signature.Workload, len(rec.Samples), records, samples)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(IngestReply{
		Workload:       rec.Signature.Workload,
		Samples:        len(rec.Samples),
		Records:        records,
		TotalSamples:   samples,
		WeightsVersion: s.dec.Version(),
	})
}

// errSweep tags ingest failures in the profiling stage (server-side)
// as opposed to trace parsing (client-side).
var errSweep = errors.New("serve: profiling ingested trace")

// recordFromTrace turns a raw trace upload into a Record: stream the
// body into replayable form (characterising in the same pass), then
// profile every kernel through the same admission and scoring pipeline
// the offline trainer uses.
func (s *Server) recordFromTrace(body io.Reader) (Record, error) {
	wl, sig, err := traceio.ReadWorkload(body, &traceio.CharacteriseOptions{})
	if err != nil {
		return Record{}, fmt.Errorf("serve: parsing ingested trace: %w", err)
	}
	store := profile.Store{Dir: s.cfg.SweepCache}
	tag := profile.SweepTag(s.cfg.SimCfg, s.cfg.Sweep)
	ds, err := poise.BuildDataset(s.cfg.SimCfg, s.cfg.Params, []*sim.Workload{wl}, s.cfg.Sweep, store, tag)
	if err != nil {
		return Record{}, fmt.Errorf("%w %s: %v", errSweep, wl.Name, err)
	}
	return Record{Signature: sig, Samples: ds.Samples}, nil
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}

// traceMagic is the poisetrace container magic, for content sniffing.
const traceMagic = "POISETRACE\n"

// isPoisetrace sniffs the container magic, including through a gzip
// header (mirrors traceio's content detection: poisetrace is the only
// gzipped format the service ingests).
func isPoisetrace(data []byte) bool {
	return bytes.HasPrefix(data, []byte(traceMagic)) ||
		(len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b)
}

// Serve runs the service on addr until ctx is cancelled or the
// listener fails, then shuts down gracefully: in-flight requests get
// http.Server.Shutdown's drain window, and the retrainer folds any
// still-pending samples (writing the final weights file) before Serve
// returns. The bound address (useful with ":0") is reported through
// addrCh when non-nil.
func (s *Server) Serve(ctx context.Context, addr string, addrCh chan<- string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if addrCh != nil {
		addrCh <- ln.Addr().String()
	}
	srv := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() {
		if serr := srv.Serve(ln); serr != nil && !errors.Is(serr, http.ErrServerClosed) {
			errCh <- serr
		}
	}()
	var serveErr error
	select {
	case <-ctx.Done():
		s.cfg.Logf("serve: shutting down")
	case serveErr = <-errCh:
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	srv.Shutdown(shutdownCtx)
	if cerr := s.Close(); serveErr == nil {
		serveErr = cerr
	}
	return serveErr
}
