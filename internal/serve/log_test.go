package serve

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"poise/internal/poise"
	"poise/internal/traceio"
)

// synthRecord builds a deterministic, trainable record: feature
// vectors in [0, 1] and targets on an exact log-linear surface
// y = exp(a.x), so the Negative Binomial fit converges quickly and
// identically on every run.
func synthRecord(seed, n int) Record {
	alphaTrue := [poise.NumFeatures]float64{0.9, 0.6, 0.4, 0.3, 0.25, 0.2, 0.15, 0.1}
	betaTrue := [poise.NumFeatures]float64{0.5, 0.4, 0.3, 0.2, 0.15, 0.1, 0.1, 0.05}
	rec := Record{Signature: traceio.Signature{Workload: "synth", Kernels: n}}
	for i := 0; i < n; i++ {
		var x poise.Vector
		for j := range x {
			x[j] = 0.5 + 0.5*math.Sin(float64(seed*1013+i*97+j*31))
		}
		var etaN, etaP float64
		for j := range x {
			etaN += alphaTrue[j] * x[j]
			etaP += betaTrue[j] * x[j]
		}
		tn := math.Min(24, math.Max(1, math.Exp(etaN)))
		tp := math.Min(tn, math.Max(1, math.Exp(etaP)))
		rec.Samples = append(rec.Samples, poise.Sample{
			Kernel:  "synth",
			X:       x,
			TargetN: tn,
			TargetP: tp,
			RawN:    int(math.Round(tn)),
			RawP:    int(math.Round(tp)),
			MaxN:    24,
		})
	}
	return rec
}

func TestLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "samples.jsonl")
	l, recs, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log has %d records", len(recs))
	}
	want := []Record{synthRecord(1, 3), synthRecord(2, 2), {Signature: traceio.Signature{Workload: "empty"}}}
	for _, rec := range want {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything comes back.
	l2, recs, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs) != len(want) {
		t.Fatalf("reopened log has %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if recs[i].Signature.Workload != want[i].Signature.Workload ||
			len(recs[i].Samples) != len(want[i].Samples) {
			t.Fatalf("record %d mismatch: %+v", i, recs[i].Signature)
		}
		for j := range want[i].Samples {
			if recs[i].Samples[j] != want[i].Samples[j] {
				t.Fatalf("record %d sample %d drifted through the log", i, j)
			}
		}
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fromReader, err := ReadLog(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromReader) != len(want) {
		t.Fatalf("ReadLog: %d records, want %d", len(fromReader), len(want))
	}
}

func TestLogTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "samples.jsonl")
	l, _, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(synthRecord(1, 2)); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Simulate a crash mid-append: valid prefix + torn partial line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"signature":{"workload":"to`)
	f.Close()

	l2, recs, err := OpenLog(path)
	if err != nil {
		t.Fatalf("torn tail must be tolerated: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want the 1 intact one", len(recs))
	}
	// The torn bytes are gone: the next append starts a clean line.
	if err := l2.Append(synthRecord(2, 1)); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	_, recs, err = OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("after truncate+append: %d records, want 2", len(recs))
	}
}

func TestLogRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"bad-header":   "{\"format\":\"something-else\",\"version\":1}\n",
		"new-version":  "{\"format\":\"poisesamples\",\"version\":99}\n",
		"bad-mid-line": "{\"format\":\"poisesamples\",\"version\":1}\nnot json\n{\"signature\":{\"workload\":\"x\"}}\n",
	}
	for name, content := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := OpenLog(path); err == nil {
			t.Errorf("%s: OpenLog accepted corrupt log", name)
		}
		if _, err := ReadLog(strings.NewReader(content)); err == nil {
			t.Errorf("%s: ReadLog accepted corrupt log", name)
		}
	}
}
