package cache

// VictimTags is the per-warp victim tag array used by CCWS (Rogers et
// al., MICRO 2012) to detect lost intra-warp locality: when a warp
// misses on a line whose tag sits in its own victim array, the miss is
// locality that thrashing destroyed. The CCWS policy raises the warp's
// lost-locality score on such events and throttles multithreading in
// response.
type VictimTags struct {
	perWarp int
	tags    [][]uint64 // ring buffer per warp
	next    []int

	// LostHits counts detections per warp since the last Drain.
	lost []int64
}

// NewVictimTags builds an array holding entriesPerWarp tags for each of
// warps warps (indexed by global warp id modulo warps).
func NewVictimTags(entriesPerWarp, warps int) *VictimTags {
	if entriesPerWarp < 1 {
		entriesPerWarp = 1
	}
	if warps < 1 {
		warps = 1
	}
	v := &VictimTags{
		perWarp: entriesPerWarp,
		tags:    make([][]uint64, warps),
		next:    make([]int, warps),
		lost:    make([]int64, warps),
	}
	for i := range v.tags {
		v.tags[i] = make([]uint64, entriesPerWarp)
	}
	return v
}

func (v *VictimTags) slot(warp int32) int {
	w := int(warp)
	if w < 0 {
		w = -w
	}
	return w % len(v.tags)
}

// NoteEviction records that the line with tag la owned by warp was
// evicted.
func (v *VictimTags) NoteEviction(warp int32, la uint64) {
	s := v.slot(warp)
	// Tag 0 is reserved as "empty"; offset stored tags by 1.
	v.tags[s][v.next[s]] = la + 1
	v.next[s] = (v.next[s] + 1) % v.perWarp
}

// NoteMiss checks whether warp's miss on line la matches one of its
// victim tags; if so the lost-locality counter is bumped and the tag
// consumed.
func (v *VictimTags) NoteMiss(warp int32, la uint64) {
	s := v.slot(warp)
	for i, t := range v.tags[s] {
		if t == la+1 {
			v.lost[s]++
			v.tags[s][i] = 0
			return
		}
	}
}

// Drain returns the accumulated lost-locality counts per warp slot and
// resets them.
func (v *VictimTags) Drain() []int64 {
	out := append([]int64(nil), v.lost...)
	for i := range v.lost {
		v.lost[i] = 0
	}
	return out
}

// TotalLost returns the sum of the current lost-locality counters
// without resetting them.
func (v *VictimTags) TotalLost() int64 {
	var s int64
	for _, x := range v.lost {
		s += x
	}
	return s
}
