package cache

import (
	"testing"
	"testing/quick"

	"poise/internal/config"
)

func mustSmallCache(index config.IndexFn) *Cache {
	c, err := New(config.CacheConfig{
		SizeBytes: 4 * 2 * 128, // 4 sets x 2 ways
		LineBytes: 128,
		Ways:      2,
		MSHRs:     4,
		Index:     index,
	})
	if err != nil {
		panic(err)
	}
	return c
}

func smallCache(t *testing.T, index config.IndexFn) *Cache {
	t.Helper()
	return mustSmallCache(index)
}

func TestNewRejectsBadGeometry(t *testing.T) {
	if _, err := New(config.CacheConfig{SizeBytes: 100, LineBytes: 128, Ways: 2}); err == nil {
		t.Fatal("indivisible size must be rejected")
	}
	if _, err := New(config.CacheConfig{SizeBytes: 0, LineBytes: 128, Ways: 2}); err == nil {
		t.Fatal("zero size must be rejected")
	}
}

func TestMissThenFillThenHit(t *testing.T) {
	c := smallCache(t, config.IndexLinear)
	const addr = 0x1000
	if r := c.Lookup(addr, 1, 0, true); r.Hit {
		t.Fatal("cold access must miss")
	}
	c.Fill(addr, 1, 0, true)
	if r := c.Lookup(addr, 1, 0, true); !r.Hit {
		t.Fatal("post-fill access must hit")
	}
	if c.Stats.Accesses != 2 || c.Stats.Hits != 1 {
		t.Fatalf("stats wrong: %+v", c.Stats)
	}
}

func TestBypassFillDoesNotAllocate(t *testing.T) {
	c := smallCache(t, config.IndexLinear)
	c.Lookup(0x2000, 1, 0, false)
	c.Fill(0x2000, 1, 0, false)
	if c.Contains(0x2000) {
		t.Fatal("bypassed fill must not install the line")
	}
	if c.Stats.Bypasses != 1 {
		t.Fatalf("Bypasses = %d, want 1", c.Stats.Bypasses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := smallCache(t, config.IndexLinear)
	// Three lines mapping to set 0 (4 sets, stride 4 lines): 2-way set.
	a0 := uint64(0 * 4 * 128)
	a1 := uint64(1 * 4 * 4 * 128 / 4) // 4 lines * 128 = one full wrap
	a1 = uint64(4 * 128)
	a2 := uint64(8 * 128)
	c.Fill(a0, 1, 0, true)
	c.Fill(a1, 1, 0, true)
	// Touch a0 so a1 becomes LRU.
	c.Lookup(a0, 1, 0, true)
	c.Fill(a2, 1, 0, true) // must evict a1
	if !c.Contains(a0) || !c.Contains(a2) {
		t.Fatal("a0 and a2 must be resident")
	}
	if c.Contains(a1) {
		t.Fatal("a1 should have been the LRU victim")
	}
	if c.Stats.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", c.Stats.Evictions)
	}
}

func TestIntraInterWarpClassification(t *testing.T) {
	c := smallCache(t, config.IndexLinear)
	c.Fill(0x3000, 7, 0, true)
	if r := c.Lookup(0x3000, 7, 0, true); !r.Hit || !r.IntraWarp {
		t.Fatal("same-warp reuse must classify intra-warp")
	}
	if r := c.Lookup(0x3000, 8, 0, true); !r.Hit || r.IntraWarp {
		t.Fatal("cross-warp reuse must classify inter-warp")
	}
	// Ownership transferred to warp 8: its next hit is intra again.
	if r := c.Lookup(0x3000, 8, 0, true); !r.IntraWarp {
		t.Fatal("after transfer the new toucher owns the line")
	}
	if c.Stats.IntraWarpHits != 2 || c.Stats.InterWarpHits != 1 {
		t.Fatalf("split wrong: %+v", c.Stats)
	}
}

func TestPolluteClassCounters(t *testing.T) {
	c := smallCache(t, config.IndexLinear)
	c.Fill(0x4000, 1, 0, true)
	c.Lookup(0x4000, 1, 0, true)  // pollute hit
	c.Lookup(0x4000, 2, 0, false) // non-pollute hit
	c.Lookup(0x5000, 2, 0, false) // non-pollute miss
	s := c.Stats
	if s.PolluteAccesses != 1 || s.PolluteHits != 1 {
		t.Fatalf("pollute class wrong: %+v", s)
	}
	if s.NoPollAccesses != 2 || s.NoPollHits != 1 {
		t.Fatalf("non-pollute class wrong: %+v", s)
	}
	if s.PolluteHitRate() != 1 || s.NoPollHitRate() != 0.5 {
		t.Fatalf("class hit rates wrong: %v %v", s.PolluteHitRate(), s.NoPollHitRate())
	}
}

func TestStatsSubWindow(t *testing.T) {
	c := smallCache(t, config.IndexLinear)
	c.Fill(0x100, 1, 0, true)
	c.Lookup(0x100, 1, 0, true)
	before := c.Stats
	c.Lookup(0x100, 1, 0, true)
	c.Lookup(0x900, 1, 0, true)
	d := c.Stats.Sub(before)
	if d.Accesses != 2 || d.Hits != 1 {
		t.Fatalf("window delta wrong: %+v", d)
	}
}

func TestFlushAndOccupancy(t *testing.T) {
	c := smallCache(t, config.IndexLinear)
	c.Fill(0x100, 1, 0, true)
	c.Fill(0x200, 1, 0, true)
	if c.Occupancy() != 2 {
		t.Fatalf("Occupancy = %d, want 2", c.Occupancy())
	}
	c.Flush()
	if c.Occupancy() != 0 || c.Contains(0x100) {
		t.Fatal("Flush must clear contents")
	}
}

// Property: occupancy never exceeds capacity, and fills minus evictions
// equals occupancy.
func TestOccupancyInvariant(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := mustSmallCache(config.IndexHash)
		for _, a := range addrs {
			addr := uint64(a) * 128
			if r := c.Lookup(addr, 1, 0, true); !r.Hit {
				c.Fill(addr, 1, 0, true)
			}
		}
		if c.Occupancy() > 8 {
			return false
		}
		return int64(c.Occupancy()) == c.Stats.Fills-c.Stats.Evictions
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Contains agrees with a subsequent Lookup hit.
func TestContainsAgreesWithLookup(t *testing.T) {
	f := func(addrs []uint8) bool {
		c := mustSmallCache(config.IndexLinear)
		for i, a := range addrs {
			addr := uint64(a) * 128
			want := c.Contains(addr)
			got := c.Lookup(addr, int32(i%4), 0, true).Hit
			if want != got {
				return false
			}
			if !got {
				c.Fill(addr, int32(i%4), 0, true)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHashSpreadsStridedAddresses(t *testing.T) {
	// Power-of-two strides collapse onto one set under linear indexing
	// but spread under hashing — the reason the baseline uses a hash.
	lin := smallCache(t, config.IndexLinear)
	hsh := smallCache(t, config.IndexHash)
	setsHitLin := map[uint64]bool{}
	setsHitHash := map[uint64]bool{}
	for i := 0; i < 32; i++ {
		addr := uint64(i) * 4 * 128 // stride = set count
		setsHitLin[lin.setIndex(lin.LineAddr(addr))] = true
		setsHitHash[hsh.setIndex(hsh.LineAddr(addr))] = true
	}
	if len(setsHitLin) != 1 {
		t.Fatalf("linear indexing should collapse the stride, got %d sets", len(setsHitLin))
	}
	if len(setsHitHash) < 3 {
		t.Fatalf("hash indexing should spread the stride, got %d sets", len(setsHitHash))
	}
}

func TestDoubleFillRefreshesOnly(t *testing.T) {
	c := smallCache(t, config.IndexLinear)
	c.Fill(0x700, 1, 0, true)
	fills := c.Stats.Fills
	c.Fill(0x700, 2, 0, true)
	if c.Stats.Fills != fills {
		t.Fatal("re-fill of resident line must not count as a new fill")
	}
	if c.Occupancy() != 1 {
		t.Fatal("re-fill must not duplicate the line")
	}
}
